package wire

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzWireFrame throws arbitrary bytes at the two decode surfaces a
// hostile peer can reach — the hello and the frame stream. Malformed
// input (truncated frames, bad CRC, version skew, lying length
// prefixes) must error; nothing may panic or over-allocate.
func FuzzWireFrame(f *testing.F) {
	frame := func(typ byte, body []byte) []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, typ, body); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	hello := func(version uint16) []byte {
		var buf bytes.Buffer
		if err := WriteHello(&buf); err != nil {
			f.Fatal(err)
		}
		h := buf.Bytes()
		binary.LittleEndian.PutUint16(h[8:], version)
		return h
	}

	// Seeds: a valid hello + frame stream, plus one of each malformation.
	valid := append(hello(FormatVersion), frame(0x01, []byte("submit body"))...)
	valid = append(valid, frame(0x10, nil)...)
	f.Add(valid)
	f.Add(hello(FormatVersion + 7))                      // version skew
	f.Add([]byte("NOTWIRE\x00\x01\x00"))                 // bad magic
	f.Add(frame(0x02, []byte("lonely frame, no hello"))) // frame where hello expected
	trunc := frame(0x03, bytes.Repeat([]byte{0xCD}, 300))
	f.Add(trunc[:len(trunc)-17]) // truncated body
	badCRC := append([]byte(nil), frame(0x04, []byte("crc victim"))...)
	badCRC[len(badCRC)-1] ^= 0xFF
	f.Add(badCRC)
	lying := append([]byte(nil), frame(0x05, nil)...)
	binary.LittleEndian.PutUint32(lying[1:], 1<<30) // huge length, no body
	f.Add(lying)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Surface 1: hello then frames, as a server-side connection reads.
		r := bytes.NewReader(data)
		if _, err := ReadHello(r); err == nil {
			for {
				_, body, err := ReadFrame(r)
				if err != nil {
					break
				}
				if len(body) > MaxBody {
					t.Fatalf("decoded body of %d bytes exceeds cap", len(body))
				}
			}
		}

		// Surface 2: a bare frame stream (mid-connection bytes).
		r = bytes.NewReader(data)
		for {
			_, body, err := ReadFrame(r)
			if err != nil {
				break
			}
			// Decoded frames must verify: re-framing them reproduces a
			// stream that decodes to the same body.
			if crc32.ChecksumIEEE(body) != crc32.ChecksumIEEE(append([]byte(nil), body...)) {
				t.Fatal("body bytes unstable")
			}
		}
	})
}
