package wire

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"net"
	"testing"
	"time"
)

func TestFrameRoundtrip(t *testing.T) {
	bodies := [][]byte{
		nil,
		{},
		[]byte("x"),
		bytes.Repeat([]byte{0xAB}, 1<<16),
	}
	for _, want := range bodies {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, 0x42, want); err != nil {
			t.Fatal(err)
		}
		typ, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if typ != 0x42 || !bytes.Equal(got, want) {
			t.Fatalf("roundtrip: type %#x, %d bytes, want %d", typ, len(got), len(want))
		}
		if buf.Len() != 0 {
			t.Fatalf("%d trailing bytes after frame", buf.Len())
		}
	}
}

func TestFrameErrors(t *testing.T) {
	var good bytes.Buffer
	if err := WriteFrame(&good, 1, []byte("hello frame")); err != nil {
		t.Fatal(err)
	}
	raw := good.Bytes()

	// Truncations at every prefix must error, never panic.
	for i := 0; i < len(raw); i++ {
		if _, _, err := ReadFrame(bytes.NewReader(raw[:i])); err == nil {
			t.Fatalf("truncation at %d bytes accepted", i)
		}
	}

	// A flipped body byte fails the CRC.
	bad := append([]byte(nil), raw...)
	bad[len(bad)-1] ^= 0xFF
	if _, _, err := ReadFrame(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupted body passed CRC")
	}

	// A length prefix over the cap is rejected before any body read.
	huge := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(huge[1:], MaxBody+1)
	if _, _, err := ReadFrame(bytes.NewReader(huge)); err == nil {
		t.Fatal("oversized length prefix accepted")
	}

	// Oversized writes are refused too.
	if err := WriteFrame(&bytes.Buffer{}, 1, make([]byte, MaxBody+1)); err == nil {
		t.Fatal("oversized frame body written")
	}
}

func TestHelloVersionSkew(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHello(&buf); err != nil {
		t.Fatal(err)
	}
	flags, err := ReadHello(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("matching hello rejected: %v", err)
	}
	if flags != HelloFlags {
		t.Fatalf("hello flags %#x, want %#x", flags, HelloFlags)
	}
	if flags&HelloFlagTraceContext == 0 {
		t.Fatal("our own hello does not advertise trace context")
	}

	skew := append([]byte(nil), buf.Bytes()...)
	binary.LittleEndian.PutUint16(skew[8:], FormatVersion+1)
	var ve *VersionError
	if _, err := ReadHello(bytes.NewReader(skew)); !errors.As(err, &ve) || ve.Got != FormatVersion+1 {
		t.Fatalf("version skew: %v, want *VersionError", err)
	}
	// A v1 hello (no flags word) is rejected on the version word alone,
	// before the flags read could block on the missing bytes.
	v1 := append([]byte(nil), buf.Bytes()[:10]...)
	binary.LittleEndian.PutUint16(v1[8:], 1)
	if _, err := ReadHello(bytes.NewReader(v1)); !errors.As(err, &ve) || ve.Got != 1 {
		t.Fatalf("v1 hello: %v, want *VersionError{1}", err)
	}

	if _, err := ReadHello(bytes.NewReader([]byte("NOTWIRE\x00\x01\x00"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ReadHello(bytes.NewReader(buf.Bytes()[:5])); err == nil {
		t.Fatal("short hello accepted")
	}
	// Truncated after the version word: the flags read must error.
	if _, err := ReadHello(bytes.NewReader(buf.Bytes()[:10])); err == nil {
		t.Fatal("flagless current-version hello accepted")
	}
}

// TestServerPoolRoundtrip runs a real TCP echo server and exercises the
// client pool: handshake, frame roundtrip, and idle-connection reuse.
func TestServerPoolRoundtrip(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(l, func(c *Conn) {
		for {
			typ, body, err := c.ReadFrame()
			if err != nil {
				return
			}
			if err := c.WriteFrame(typ+1, body); err != nil {
				return
			}
		}
	})
	defer srv.Close()

	p := NewPool(l.Addr().String())
	defer p.Close()

	call := func(wantReused bool) {
		t.Helper()
		c, reused, err := p.Get(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if reused != wantReused {
			t.Fatalf("reused=%v, want %v", reused, wantReused)
		}
		c.SetDeadline(time.Now().Add(5 * time.Second))
		if err := c.WriteFrame(7, []byte("ping")); err != nil {
			t.Fatal(err)
		}
		typ, body, err := c.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if typ != 8 || string(body) != "ping" {
			t.Fatalf("echo: type %d body %q", typ, body)
		}
		p.Put(c)
	}
	call(false)
	call(true)

	st := p.Stats()
	if st.Dials != 1 || st.Reuses != 1 {
		t.Fatalf("pool stats %+v, want 1 dial / 1 reuse", st)
	}
}
