// Package wire is the binary fast path for the hot service endpoints:
// a length-prefixed, CRC-framed protocol over persistent TCP
// connections, replacing per-request HTTP/JSON overhead with one frame
// round trip on a pooled connection.
//
// The protocol is deliberately tiny. A connection opens with a
// symmetric hello exchange:
//
//	magic "BUMPWIR\x00" (8) | format version u16 LE (2) | flags u16 LE (2)
//
// and then carries frames in both directions:
//
//	type u8 | body len u32 LE | CRC32-IEEE(body) u32 LE | body
//
// Frame types and body encodings belong to the layer above
// (internal/service encodes bodies with the snapshot canonical codec);
// this package only moves validated frames. A version mismatch at
// hello time is a typed *VersionError so clients can permanently fall
// back to the HTTP/JSON slow path for that server.
//
// Decoding is hostile-input safe: body length is capped, buffers grow
// incrementally against the actual stream (a lying length prefix
// cannot force a huge allocation), CRC mismatches and truncation are
// errors, and no input can panic the decoder (see FuzzWireFrame).
package wire

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"
)

// FormatVersion is the wire protocol version, exchanged in the hello.
// Bump it on any incompatible change to the hello, the frame layout, or
// the body encodings layered on top (which reuse the snapshot codec:
// a snapshot.FormatVersion bump implies a wire bump too). Peers with
// different versions refuse the connection at hello time and fall back
// to HTTP/JSON, so mixed-version fleets degrade instead of corrupting.
//
// History: v1 had no hello flags; v2 added the flags word and the
// trace-context field in job-carrying bodies (the snapshot codec is
// positional, so the extra JobSpec field alone forces the bump).
const FormatVersion = 2

// Hello flag bits, advertised symmetrically in the hello's flags word.
const (
	// HelloFlagTraceContext advertises that this peer reads and
	// propagates the JobSpec trace-context field. A client clears
	// outbound trace IDs when the server lacks the flag.
	HelloFlagTraceContext uint16 = 1 << 0
)

// HelloFlags is what this build advertises.
const HelloFlags = HelloFlagTraceContext

// MaxBody bounds a frame body, mirroring the 64MB HTTP response cap in
// service.Client.
const MaxBody = 64 << 20

const magic = "BUMPWIR\x00"

const (
	helloLen    = len(magic) + 2 + 2
	frameHdrLen = 1 + 4 + 4
)

// VersionError reports a hello whose format version differs from ours.
type VersionError struct {
	Got uint16
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("wire: format version %d, want %d", e.Got, FormatVersion)
}

func errf(format string, args ...any) error {
	return fmt.Errorf("wire: "+format, args...)
}

// WriteHello writes our hello (magic + format version + flags).
func WriteHello(w io.Writer) error {
	var h [helloLen]byte
	copy(h[:], magic)
	binary.LittleEndian.PutUint16(h[len(magic):], FormatVersion)
	binary.LittleEndian.PutUint16(h[len(magic)+2:], HelloFlags)
	_, err := w.Write(h[:])
	return err
}

// ReadHello reads and validates the peer's hello, returning its flags
// word. A recognizable hello with a different format version is a
// *VersionError. The version is validated before the flags are read:
// a v1 peer's hello is two bytes shorter, and reading its flags would
// steal the first frame's bytes — but v1 is rejected on the version
// word alone, and the connection is dropped, so the short read never
// corrupts framing.
func ReadHello(r io.Reader) (uint16, error) {
	var h [len(magic) + 2]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return 0, errf("short hello: %v", err)
	}
	if string(h[:len(magic)]) != magic {
		return 0, errf("bad hello magic")
	}
	if v := binary.LittleEndian.Uint16(h[len(magic):]); v != FormatVersion {
		return 0, &VersionError{Got: v}
	}
	var fl [2]byte
	if _, err := io.ReadFull(r, fl[:]); err != nil {
		return 0, errf("short hello flags: %v", err)
	}
	return binary.LittleEndian.Uint16(fl[:]), nil
}

// WriteFrame writes one frame: type, length, body CRC, body.
func WriteFrame(w io.Writer, typ byte, body []byte) error {
	if len(body) > MaxBody {
		return errf("frame body %d bytes exceeds cap %d", len(body), MaxBody)
	}
	var hdr [frameHdrLen]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[5:], crc32.ChecksumIEEE(body))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadFrame reads and validates one frame, returning its type and body.
// The body buffer is freshly allocated and owned by the caller.
func ReadFrame(r io.Reader) (byte, []byte, error) {
	var hdr [frameHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, errf("short frame header: %v", err)
	}
	typ := hdr[0]
	n := binary.LittleEndian.Uint32(hdr[1:])
	wantCRC := binary.LittleEndian.Uint32(hdr[5:])
	if n > MaxBody {
		return 0, nil, errf("frame body %d bytes exceeds cap %d", n, MaxBody)
	}
	// Grow against the actual stream so a lying length prefix on a
	// truncated input cannot force a giant allocation.
	var buf bytes.Buffer
	if n < 1<<20 {
		buf.Grow(int(n))
	} else {
		buf.Grow(1 << 20)
	}
	copied, err := io.Copy(&buf, io.LimitReader(r, int64(n)))
	if err != nil {
		return 0, nil, errf("frame body: %v", err)
	}
	if copied != int64(n) {
		return 0, nil, errf("truncated frame body: %d of %d bytes", copied, n)
	}
	body := buf.Bytes()
	if crc32.ChecksumIEEE(body) != wantCRC {
		return 0, nil, errf("frame CRC mismatch")
	}
	return typ, body, nil
}

// ---- Conn -------------------------------------------------------------

// Conn is one framed connection: a net.Conn with buffered IO and the
// hello already exchanged (after Handshake).
type Conn struct {
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer
	// peerFlags is the peer's hello flags word (valid after Handshake).
	peerFlags uint16
}

// NewConn wraps a net connection; call Handshake before framing.
func NewConn(nc net.Conn) *Conn {
	return &Conn{nc: nc, br: bufio.NewReader(nc), bw: bufio.NewWriter(nc)}
}

// Handshake exchanges hellos symmetrically (write ours, read theirs)
// within timeout. Both sides write first, so neither blocks the other.
func (c *Conn) Handshake(timeout time.Duration) error {
	if timeout > 0 {
		c.nc.SetDeadline(time.Now().Add(timeout))
		defer c.nc.SetDeadline(time.Time{})
	}
	if err := WriteHello(c.bw); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	flags, err := ReadHello(c.br)
	if err != nil {
		return err
	}
	c.peerFlags = flags
	return nil
}

// PeerFlags returns the peer's hello flags word (zero before
// Handshake).
func (c *Conn) PeerFlags() uint16 { return c.peerFlags }

// TraceContext reports whether the peer advertised trace-context
// support in its hello.
func (c *Conn) TraceContext() bool { return c.peerFlags&HelloFlagTraceContext != 0 }

// WriteFrame writes and flushes one frame.
func (c *Conn) WriteFrame(typ byte, body []byte) error {
	if err := WriteFrame(c.bw, typ, body); err != nil {
		return err
	}
	return c.bw.Flush()
}

// ReadFrame reads one frame.
func (c *Conn) ReadFrame() (byte, []byte, error) {
	return ReadFrame(c.br)
}

// SetDeadline bounds both directions of the next IO operations.
func (c *Conn) SetDeadline(t time.Time) error { return c.nc.SetDeadline(t) }

// SetReadDeadline bounds the next reads.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.nc.SetReadDeadline(t) }

// RemoteAddr names the peer.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.nc.Close() }

// ---- Client pool ------------------------------------------------------

// PoolStats counts connection reuse on a client pool.
type PoolStats struct {
	Dials  uint64 `json:"dials"`
	Reuses uint64 `json:"reuses"`
}

// Pool is a client-side freelist of framed connections to one address.
// Get pops an idle connection or dials a new one; Put returns a healthy
// connection for reuse; Discard drops a broken one.
type Pool struct {
	addr        string
	dialTimeout time.Duration
	maxIdle     int

	mu     sync.Mutex
	idle   []*Conn
	closed bool
	stats  PoolStats
}

// NewPool returns a pool dialing addr ("host:port").
func NewPool(addr string) *Pool {
	return &Pool{addr: addr, dialTimeout: 10 * time.Second, maxIdle: 4}
}

// Get returns a ready connection and whether it was reused from the
// idle list (false = freshly dialed and handshaken).
func (p *Pool) Get(ctx context.Context) (*Conn, bool, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, false, errf("pool closed")
	}
	if n := len(p.idle); n > 0 {
		c := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.stats.Reuses++
		p.mu.Unlock()
		return c, true, nil
	}
	p.mu.Unlock()

	d := net.Dialer{Timeout: p.dialTimeout}
	nc, err := d.DialContext(ctx, "tcp", p.addr)
	if err != nil {
		return nil, false, err
	}
	c := NewConn(nc)
	if err := c.Handshake(p.dialTimeout); err != nil {
		c.Close()
		return nil, false, err
	}
	p.mu.Lock()
	p.stats.Dials++
	p.mu.Unlock()
	return c, false, nil
}

// Put returns a healthy connection to the idle list (closed if the
// pool is full or closed).
func (p *Pool) Put(c *Conn) {
	c.SetDeadline(time.Time{})
	p.mu.Lock()
	if p.closed || len(p.idle) >= p.maxIdle {
		p.mu.Unlock()
		c.Close()
		return
	}
	p.idle = append(p.idle, c)
	p.mu.Unlock()
}

// Discard closes a connection whose state is no longer trustworthy.
func (p *Pool) Discard(c *Conn) { c.Close() }

// Stats returns cumulative dial/reuse counts.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Close closes every idle connection and rejects further Gets.
func (p *Pool) Close() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.closed = true
	p.mu.Unlock()
	for _, c := range idle {
		c.Close()
	}
}

// ---- Server -----------------------------------------------------------

// Server accepts framed connections and runs a handler per connection.
// The handler owns the connection until it returns; the server closes
// it afterwards and on shutdown.
type Server struct {
	l       net.Listener
	handler func(*Conn)

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Serve starts accepting on l. Each connection is handshaken (and
// dropped on version skew) before handler runs on its own goroutine.
func Serve(l net.Listener, handler func(*Conn)) *Server {
	s := &Server{l: l, handler: handler, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr is the listen address.
func (s *Server) Addr() net.Addr { return s.l.Addr() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			time.Sleep(10 * time.Millisecond)
			continue
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return
		}
		s.conns[nc] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, nc)
				s.mu.Unlock()
				nc.Close()
			}()
			c := NewConn(nc)
			if err := c.Handshake(10 * time.Second); err != nil {
				return
			}
			s.handler(c)
		}()
	}
}

// Close stops accepting, severs every live connection, and waits for
// handlers to return.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for nc := range s.conns {
		conns = append(conns, nc)
	}
	s.mu.Unlock()
	s.l.Close()
	for _, nc := range conns {
		nc.Close()
	}
	s.wg.Wait()
}
