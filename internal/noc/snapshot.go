package noc

import "bump/internal/snapshot"

// SnapshotTo serializes the crossbar's message counters (its only
// mutable state; the latency is configuration).
func (x *Crossbar) SnapshotTo(w *snapshot.Writer) {
	w.Section("noc")
	w.Any(x.stats)
}

// RestoreFrom replaces the counters with a snapshot's.
func (x *Crossbar) RestoreFrom(r *snapshot.Reader) error {
	r.Section("noc")
	r.AnyInto(&x.stats)
	return r.Err()
}
