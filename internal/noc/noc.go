// Package noc models the on-chip interconnect between the cores' L1
// caches and the banked LLC: a 16x8 crossbar with a fixed 5-cycle
// traversal (Table II). The simulator is latency/traffic oriented — the
// crossbar never saturates for server workloads (Section V.F, "NOC
// bandwidth utilization is low") — so the model is a constant delay plus
// message accounting for the Fig. 12 overhead analysis.
package noc

// Kind classifies crossbar messages for traffic/energy accounting.
type Kind uint8

const (
	// Control is an address-sized message (request, writeback command).
	Control Kind = iota
	// Data is a cache-block-sized message (fill, writeback data).
	Data
)

// Stats holds message counts.
type Stats struct {
	ControlMsgs uint64
	DataMsgs    uint64
	// PCMsgs counts control messages that carried the triggering
	// instruction's PC (BuMP's requirement; half of BuMP's NOC energy
	// overhead per Section V.F).
	PCMsgs uint64
}

// Total returns all messages.
func (s Stats) Total() uint64 { return s.ControlMsgs + s.DataMsgs }

// Crossbar is the CMP interconnect.
type Crossbar struct {
	// Latency is the traversal time in CPU cycles.
	Latency uint64
	stats   Stats
}

// New returns a crossbar with the given traversal latency.
func New(latency uint64) *Crossbar { return &Crossbar{Latency: latency} }

// Send accounts one message and returns its delivery latency.
func (x *Crossbar) Send(kind Kind, withPC bool) uint64 {
	switch kind {
	case Control:
		x.stats.ControlMsgs++
	default:
		x.stats.DataMsgs++
	}
	if withPC {
		x.stats.PCMsgs++
	}
	return x.Latency
}

// Stats returns a copy of the counters.
func (x *Crossbar) Stats() Stats { return x.stats }

// AbsorbStats folds src's counters into x and zeroes src. The parallel
// simulator gives each shard a private crossbar for delta accounting and
// merges them into the authoritative one at observation boundaries.
func (x *Crossbar) AbsorbStats(src *Crossbar) {
	x.stats.ControlMsgs += src.stats.ControlMsgs
	x.stats.DataMsgs += src.stats.DataMsgs
	x.stats.PCMsgs += src.stats.PCMsgs
	src.stats = Stats{}
}
