package noc

import "testing"

func TestSendCountsAndLatency(t *testing.T) {
	x := New(5)
	if got := x.Send(Control, false); got != 5 {
		t.Errorf("latency = %d", got)
	}
	x.Send(Control, true)
	x.Send(Data, false)
	x.Send(Data, false)
	s := x.Stats()
	if s.ControlMsgs != 2 || s.DataMsgs != 2 || s.PCMsgs != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.Total() != 4 {
		t.Errorf("total = %d", s.Total())
	}
}
