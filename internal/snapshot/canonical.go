package snapshot

import (
	"crypto/sha256"
	"fmt"
	"io"
	"reflect"
)

// CanonicalDigest hashes a configuration value into a stable identity:
// a SHA-256 over a reflective walk of the structure in declared field
// order, prefixed with a caller-chosen version string. Two values digest
// equal iff every identity-bearing field is equal. The simulator uses it
// for the snapshot structural-compatibility check and the warm-checkpoint
// key (config minus measured params).
//
// Func-typed fields must be nil — code has no canonical value — and
// maps, pointers, channels and interfaces are rejected so a new config
// field can never be hashed non-deterministically by accident.
func CanonicalDigest(prefix string, v any) ([32]byte, error) {
	h := sha256.New()
	io.WriteString(h, prefix)
	if err := writeCanonical(h, reflect.ValueOf(v), "v"); err != nil {
		return [32]byte{}, err
	}
	var d [32]byte
	copy(d[:], h.Sum(nil))
	return d, nil
}

func writeCanonical(w io.Writer, v reflect.Value, path string) error {
	switch v.Kind() {
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				return fmt.Errorf("snapshot: unexported config field %s.%s", path, f.Name)
			}
			if err := writeCanonical(w, v.Field(i), path+"."+f.Name); err != nil {
				return err
			}
		}
		return nil
	case reflect.Func:
		if !v.IsNil() {
			return fmt.Errorf("snapshot: config field %s holds code and cannot be digested", path)
		}
		return nil
	case reflect.Slice, reflect.Array:
		fmt.Fprintf(w, "%s.len=%d\n", path, v.Len())
		for i := 0; i < v.Len(); i++ {
			if err := writeCanonical(w, v.Index(i), fmt.Sprintf("%s[%d]", path, i)); err != nil {
				return err
			}
		}
		return nil
	case reflect.Bool, reflect.String,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64:
		fmt.Fprintf(w, "%s=%v\n", path, v.Interface())
		return nil
	default:
		return fmt.Errorf("snapshot: cannot canonically encode %s (kind %s)", path, v.Kind())
	}
}
