package snapshot

import (
	"bytes"
	"testing"
)

// fuzzSeed builds a small valid snapshot covering every primitive, so
// the fuzzer starts from structurally interesting input.
func fuzzSeed() []byte {
	w := NewWriter()
	w.Section("meta")
	w.String("bump")
	w.U64(123456)
	w.Section("body")
	w.U8(7)
	w.U16(8)
	w.U32(9)
	w.I64(-10)
	w.F64(1.5)
	w.Bool(true)
	w.Bytes([]byte{1, 2, 3, 4})
	w.U32(2)
	w.U64(11)
	w.U64(12)
	var buf bytes.Buffer
	if err := w.Flush(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzReader feeds arbitrary bytes through the container layer and the
// primitive decoders: any input must either decode or error — never
// panic, and never allocate beyond the input's own size.
func FuzzReader(f *testing.F) {
	f.Add(fuzzSeed())
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejected at the container layer: fine
		}
		// Drain the body through a representative mix of typed reads.
		r.Section("meta")
		_ = r.String()
		r.U64()
		r.Section("body")
		r.U8()
		r.U16()
		r.U32()
		r.I64()
		r.F64()
		r.Bool()
		r.Bytes()
		n := r.Len(8)
		for i := 0; i < n; i++ {
			r.U64()
		}
		var fx struct {
			A uint64
			B []int64
			C string
		}
		r.AnyInto(&fx)
		_ = r.Finish()
	})
}
