// Package snapshot implements the simulator's versioned, deterministic
// binary checkpoint format.
//
// A snapshot is a framed byte stream:
//
//	magic (8B) | format version (u16) | CRC32-IEEE of body (u32) |
//	body length (u64) | body
//
// The body is a flat little-endian sequence of primitive values written
// by the component serializers (sim.System orchestrates the order). The
// encoding is *canonical*: serializing the same semantic simulator state
// always produces the same bytes — maps are emitted in sorted key order,
// pooled free slots are reduced to their live links, and transient
// scratch state is skipped — which is what lets the golden-state
// regression corpus compare checkpoints byte-for-byte.
//
// Decoding is defensive by construction: every length field is validated
// against the bytes actually present before any allocation, the body is
// read incrementally (a corrupt length prefix cannot force a large
// allocation), booleans must be 0 or 1, and the CRC is verified before
// the reader hands out a single value. Corrupt or truncated input yields
// an error, never a panic or an out-of-memory allocation — the fuzz
// harnesses in this package and in internal/sim enforce that.
//
// Format versioning policy: FormatVersion is bumped whenever the byte
// layout of any serialized component changes (fields added, removed,
// reordered, or re-encoded). Readers reject snapshots from any other
// version — checkpoints are cheap to regenerate, so there is no
// cross-version migration path.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

const (
	// FormatVersion identifies the snapshot byte layout. Bump it on any
	// change to the serialized state of any component.
	FormatVersion = 1

	magic     = "BUMPSNP\x00"
	headerLen = len(magic) + 2 + 4 + 8
)

// ErrFormat wraps all container-level decode failures (bad magic,
// version mismatch, truncation, CRC).
type errFormat struct{ msg string }

func (e *errFormat) Error() string { return "snapshot: " + e.msg }

func formatErrf(format string, args ...any) error {
	return &errFormat{msg: fmt.Sprintf(format, args...)}
}

// ---- Writer -----------------------------------------------------------

// Writer accumulates a snapshot body in memory; Flush frames it with the
// header and writes the whole snapshot out. Writer methods never fail
// (the body is an in-memory buffer); errors surface at Flush.
type Writer struct {
	buf bytes.Buffer
}

// NewWriter returns an empty snapshot writer.
func NewWriter() *Writer { return &Writer{} }

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.buf.WriteByte(v) }

// U16 writes a little-endian uint16.
func (w *Writer) U16(v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	w.buf.Write(b[:])
}

// U32 writes a little-endian uint32.
func (w *Writer) U32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.buf.Write(b[:])
}

// U64 writes a little-endian uint64.
func (w *Writer) U64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.buf.Write(b[:])
}

// I64 writes an int64 as its two's-complement uint64 image.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F64 writes a float64 as its IEEE-754 bit image.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool writes a boolean as one canonical byte (0 or 1).
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Bytes writes a u32 length prefix followed by the raw bytes.
func (w *Writer) Bytes(b []byte) {
	w.U32(uint32(len(b)))
	w.buf.Write(b)
}

// String writes a length-prefixed UTF-8 string.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf.WriteString(s)
}

// Section writes a named section marker. Readers verify markers in
// order, so a mis-sequenced decode fails with a descriptive error
// instead of silently misinterpreting bytes.
func (w *Writer) Section(name string) {
	w.U8(0x5E)
	w.String(name)
}

// Len returns the current body size in bytes.
func (w *Writer) Len() int { return w.buf.Len() }

// Body returns the accumulated body bytes without the container header.
// The slice aliases the writer's buffer: it is valid until the next
// write and must not be mutated. Transports that carry their own
// framing (internal/wire) embed bodies directly instead of paying for
// the full container of Flush.
func (w *Writer) Body() []byte { return w.buf.Bytes() }

// Flush frames the accumulated body and writes the full snapshot to out.
func (w *Writer) Flush(out io.Writer) error {
	body := w.buf.Bytes()
	var hdr [headerLen]byte
	copy(hdr[:], magic)
	binary.LittleEndian.PutUint16(hdr[8:], FormatVersion)
	binary.LittleEndian.PutUint32(hdr[10:], crc32.ChecksumIEEE(body))
	binary.LittleEndian.PutUint64(hdr[14:], uint64(len(body)))
	if _, err := out.Write(hdr[:]); err != nil {
		return err
	}
	_, err := out.Write(body)
	return err
}

// ---- Reader -----------------------------------------------------------

// Reader decodes a snapshot body. Errors are sticky: after the first
// failure every read returns a zero value, so component decoders can run
// straight-line and check Err (or Finish) once at the end.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader validates the snapshot header, reads and CRC-checks the
// body, and returns a reader positioned at its start.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, formatErrf("short header: %v", err)
	}
	if string(hdr[:len(magic)]) != magic {
		return nil, formatErrf("bad magic")
	}
	if v := binary.LittleEndian.Uint16(hdr[8:]); v != FormatVersion {
		return nil, formatErrf("format version %d, this build reads %d", v, FormatVersion)
	}
	wantCRC := binary.LittleEndian.Uint32(hdr[10:])
	bodyLen := binary.LittleEndian.Uint64(hdr[14:])

	// Read the body incrementally: a lying length prefix cannot force a
	// large allocation, because the buffer only grows as real bytes
	// arrive (pre-growing is capped at 1MB).
	var buf bytes.Buffer
	if bodyLen < 1<<20 {
		buf.Grow(int(bodyLen))
	}
	n, err := io.Copy(&buf, io.LimitReader(r, int64(bodyLen)))
	if err != nil {
		return nil, formatErrf("body read: %v", err)
	}
	if uint64(n) != bodyLen {
		return nil, formatErrf("truncated body: %d of %d bytes", n, bodyLen)
	}
	if got := crc32.ChecksumIEEE(buf.Bytes()); got != wantCRC {
		return nil, formatErrf("body CRC mismatch: %08x != %08x", got, wantCRC)
	}
	return &Reader{data: buf.Bytes()}, nil
}

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// Fail records a decode error (the first one wins).
func (r *Reader) Fail(err error) {
	if r.err == nil && err != nil {
		r.err = err
	}
}

// Failf records a formatted decode error.
func (r *Reader) Failf(format string, args ...any) {
	r.Fail(formatErrf(format, args...))
}

// Remaining returns the unread body byte count.
func (r *Reader) Remaining() int { return len(r.data) - r.off }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.Remaining() < n {
		r.Failf("truncated: need %d bytes, have %d", n, r.Remaining())
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads a canonical boolean; any byte other than 0 or 1 is an
// error.
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.Failf("non-canonical boolean")
		return false
	}
}

// Len reads a u32 element count for a sequence whose elements occupy at
// least elemMin encoded bytes each, rejecting counts that could not
// possibly fit in the remaining body. This is the OOM guard: decoders
// size allocations from Len, never from a raw U32.
func (r *Reader) Len(elemMin int) int {
	if elemMin <= 0 {
		elemMin = 1
	}
	n := r.U32()
	if r.err != nil {
		return 0
	}
	if uint64(n)*uint64(elemMin) > uint64(r.Remaining()) {
		r.Failf("sequence length %d exceeds remaining %d bytes", n, r.Remaining())
		return 0
	}
	return int(n)
}

// Bytes reads a length-prefixed byte slice.
func (r *Reader) Bytes() []byte {
	n := r.Len(1)
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Len(1)
	b := r.take(n)
	return string(b)
}

// Section verifies the next section marker names `name`.
func (r *Reader) Section(name string) {
	if m := r.U8(); r.err == nil && m != 0x5E {
		r.Failf("section %q: bad marker byte %#x", name, m)
		return
	}
	got := r.String()
	if r.err == nil && got != name {
		r.Failf("section order: have %q, want %q", got, name)
	}
}

// NewBodyReader returns a reader over bare body bytes produced by
// Writer.Body — no container header, no CRC. The caller's transport is
// responsible for integrity (internal/wire frames carry their own CRC).
// The reader aliases data; the slice must stay immutable while read.
func NewBodyReader(data []byte) *Reader { return &Reader{data: data} }

// Finish returns the sticky error, or an error if unread body bytes
// remain (a layout mismatch that happened to stay in bounds).
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.Remaining() != 0 {
		return formatErrf("%d trailing bytes after final section", r.Remaining())
	}
	return nil
}
