// Package snapshot implements the simulator's versioned, deterministic
// binary checkpoint format.
//
// A snapshot is a framed byte stream:
//
//	magic (8B) | format version (u16) | CRC32-IEEE of body (u32) |
//	body length (u64) | meta length (u32) | CRC32-IEEE of meta (u32) |
//	meta | body
//
// The meta block (v2) is a small, independently CRC-framed node
// descriptor (NodeMeta): which structural configuration the body
// belongs to, the engine cycle it was cut at, and the
// measured-parameter trajectory it has followed. Checkpoint stores and
// transports classify a snapshot from the meta block alone (see
// PeekNodeMeta) without decoding simulator state.
//
// The body is a flat little-endian sequence of primitive values written
// by the component serializers (sim.System orchestrates the order). The
// encoding is *canonical*: serializing the same semantic simulator state
// always produces the same bytes — maps are emitted in sorted key order,
// pooled free slots are reduced to their live links, and transient
// scratch state is skipped — which is what lets the golden-state
// regression corpus compare checkpoints byte-for-byte.
//
// Decoding is defensive by construction: every length field is validated
// against the bytes actually present before any allocation, the body is
// read incrementally (a corrupt length prefix cannot force a large
// allocation), booleans must be 0 or 1, and the CRC is verified before
// the reader hands out a single value. Corrupt or truncated input yields
// an error, never a panic or an out-of-memory allocation — the fuzz
// harnesses in this package and in internal/sim enforce that.
//
// Format versioning policy: FormatVersion is bumped whenever the byte
// layout of any serialized component changes (fields added, removed,
// reordered, or re-encoded). Readers reject snapshots from any other
// version — checkpoints are cheap to regenerate, so there is no
// cross-version migration path.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

const (
	// FormatVersion identifies the snapshot byte layout. Bump it on any
	// change to the serialized state of any component.
	// v2: the container gained the node-metadata block (checkpoint-tree
	// forking) — header grew the meta length/CRC fields.
	FormatVersion = 2

	magic     = "BUMPSNP\x00"
	headerLen = len(magic) + 2 + 4 + 8 + 4 + 4

	// maxMetaLen bounds the meta block — a node descriptor is tens of
	// bytes; anything larger is a corrupt length field.
	maxMetaLen = 4096
)

// NodeMeta identifies a checkpoint-tree node: which structural
// configuration the snapshot belongs to, the engine cycle it was cut
// at, and the measured-parameter trajectory the state has followed. A
// zero NodeMeta encodes as an empty meta block.
type NodeMeta struct {
	// Structural is the producer's structural-configuration digest
	// (sim's structuralDigest; 32 bytes, nil when unset).
	Structural []byte
	// Cut is the absolute engine cycle the snapshot was taken at.
	Cut uint64
	// ForkAt is the cycle at which deferred measured parameters bind
	// (0 = bound from the start of the run).
	ForkAt uint64
	// Prefix names the measured-parameter trajectory the state followed
	// up to Cut; "" is the canonical (all-zero) trunk.
	Prefix string
}

// isZero reports whether the meta carries no information (legacy
// callers that never set it).
func (m NodeMeta) isZero() bool {
	return len(m.Structural) == 0 && m.Cut == 0 && m.ForkAt == 0 && m.Prefix == ""
}

func (m NodeMeta) encode() []byte {
	if m.isZero() {
		return nil
	}
	out := make([]byte, 0, 8+8+4+len(m.Structural)+4+len(m.Prefix))
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], m.Cut)
	out = append(out, b8[:]...)
	binary.LittleEndian.PutUint64(b8[:], m.ForkAt)
	out = append(out, b8[:]...)
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], uint32(len(m.Structural)))
	out = append(out, b4[:]...)
	out = append(out, m.Structural...)
	binary.LittleEndian.PutUint32(b4[:], uint32(len(m.Prefix)))
	out = append(out, b4[:]...)
	out = append(out, m.Prefix...)
	return out
}

func decodeNodeMeta(data []byte) (NodeMeta, error) {
	var m NodeMeta
	if len(data) == 0 {
		return m, nil
	}
	off := 0
	need := func(n int) ([]byte, error) {
		if len(data)-off < n {
			return nil, formatErrf("truncated meta block: need %d bytes, have %d", n, len(data)-off)
		}
		b := data[off : off+n]
		off += n
		return b, nil
	}
	b, err := need(8)
	if err != nil {
		return m, err
	}
	m.Cut = binary.LittleEndian.Uint64(b)
	if b, err = need(8); err != nil {
		return m, err
	}
	m.ForkAt = binary.LittleEndian.Uint64(b)
	if b, err = need(4); err != nil {
		return m, err
	}
	n := int(binary.LittleEndian.Uint32(b))
	if b, err = need(n); err != nil {
		return m, err
	}
	m.Structural = append([]byte(nil), b...)
	if b, err = need(4); err != nil {
		return m, err
	}
	n = int(binary.LittleEndian.Uint32(b))
	if b, err = need(n); err != nil {
		return m, err
	}
	m.Prefix = string(b)
	if off != len(data) {
		return m, formatErrf("%d trailing bytes in meta block", len(data)-off)
	}
	return m, nil
}

// ErrFormat wraps all container-level decode failures (bad magic,
// version mismatch, truncation, CRC).
type errFormat struct{ msg string }

func (e *errFormat) Error() string { return "snapshot: " + e.msg }

func formatErrf(format string, args ...any) error {
	return &errFormat{msg: fmt.Sprintf(format, args...)}
}

// ---- Writer -----------------------------------------------------------

// Writer accumulates a snapshot body in memory; Flush frames it with the
// header and writes the whole snapshot out. Writer methods never fail
// (the body is an in-memory buffer); errors surface at Flush.
type Writer struct {
	buf  bytes.Buffer
	meta NodeMeta
}

// SetNodeMeta attaches the node descriptor the container's meta block
// will carry. Call any time before Flush; the zero value (the default)
// writes an empty block.
func (w *Writer) SetNodeMeta(m NodeMeta) { w.meta = m }

// NewWriter returns an empty snapshot writer.
func NewWriter() *Writer { return &Writer{} }

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.buf.WriteByte(v) }

// U16 writes a little-endian uint16.
func (w *Writer) U16(v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	w.buf.Write(b[:])
}

// U32 writes a little-endian uint32.
func (w *Writer) U32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.buf.Write(b[:])
}

// U64 writes a little-endian uint64.
func (w *Writer) U64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.buf.Write(b[:])
}

// I64 writes an int64 as its two's-complement uint64 image.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F64 writes a float64 as its IEEE-754 bit image.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool writes a boolean as one canonical byte (0 or 1).
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Bytes writes a u32 length prefix followed by the raw bytes.
func (w *Writer) Bytes(b []byte) {
	w.U32(uint32(len(b)))
	w.buf.Write(b)
}

// String writes a length-prefixed UTF-8 string.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf.WriteString(s)
}

// Section writes a named section marker. Readers verify markers in
// order, so a mis-sequenced decode fails with a descriptive error
// instead of silently misinterpreting bytes.
func (w *Writer) Section(name string) {
	w.U8(0x5E)
	w.String(name)
}

// Len returns the current body size in bytes.
func (w *Writer) Len() int { return w.buf.Len() }

// Body returns the accumulated body bytes without the container header.
// The slice aliases the writer's buffer: it is valid until the next
// write and must not be mutated. Transports that carry their own
// framing (internal/wire) embed bodies directly instead of paying for
// the full container of Flush.
func (w *Writer) Body() []byte { return w.buf.Bytes() }

// Flush frames the accumulated body and writes the full snapshot to out.
func (w *Writer) Flush(out io.Writer) error {
	body := w.buf.Bytes()
	meta := w.meta.encode()
	var hdr [headerLen]byte
	copy(hdr[:], magic)
	binary.LittleEndian.PutUint16(hdr[8:], FormatVersion)
	binary.LittleEndian.PutUint32(hdr[10:], crc32.ChecksumIEEE(body))
	binary.LittleEndian.PutUint64(hdr[14:], uint64(len(body)))
	binary.LittleEndian.PutUint32(hdr[22:], uint32(len(meta)))
	binary.LittleEndian.PutUint32(hdr[26:], crc32.ChecksumIEEE(meta))
	if _, err := out.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := out.Write(meta); err != nil {
		return err
	}
	_, err := out.Write(body)
	return err
}

// ---- Reader -----------------------------------------------------------

// Reader decodes a snapshot body. Errors are sticky: after the first
// failure every read returns a zero value, so component decoders can run
// straight-line and check Err (or Finish) once at the end.
type Reader struct {
	data []byte
	off  int
	err  error
	meta NodeMeta
}

// NodeMeta returns the node descriptor carried by the container's meta
// block (the zero value for snapshots written without one, and always
// for bare-body readers).
func (r *Reader) NodeMeta() NodeMeta { return r.meta }

// readHeader validates magic/version and decodes the CRC-framed meta
// block, leaving r positioned at the start of the body.
func readHeader(r io.Reader) (meta NodeMeta, bodyCRC uint32, bodyLen uint64, err error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return NodeMeta{}, 0, 0, formatErrf("short header: %v", err)
	}
	if string(hdr[:len(magic)]) != magic {
		return NodeMeta{}, 0, 0, formatErrf("bad magic")
	}
	if v := binary.LittleEndian.Uint16(hdr[8:]); v != FormatVersion {
		return NodeMeta{}, 0, 0, formatErrf("format version %d, this build reads %d", v, FormatVersion)
	}
	bodyCRC = binary.LittleEndian.Uint32(hdr[10:])
	bodyLen = binary.LittleEndian.Uint64(hdr[14:])
	metaLen := binary.LittleEndian.Uint32(hdr[22:])
	metaCRC := binary.LittleEndian.Uint32(hdr[26:])
	if metaLen > maxMetaLen {
		return NodeMeta{}, 0, 0, formatErrf("meta block of %d bytes exceeds the %d-byte bound", metaLen, maxMetaLen)
	}
	metaBytes := make([]byte, metaLen)
	if _, err := io.ReadFull(r, metaBytes); err != nil {
		return NodeMeta{}, 0, 0, formatErrf("short meta block: %v", err)
	}
	if got := crc32.ChecksumIEEE(metaBytes); got != metaCRC {
		return NodeMeta{}, 0, 0, formatErrf("meta CRC mismatch: %08x != %08x", got, metaCRC)
	}
	meta, err = decodeNodeMeta(metaBytes)
	if err != nil {
		return NodeMeta{}, 0, 0, err
	}
	return meta, bodyCRC, bodyLen, nil
}

// PeekNodeMeta decodes only the container header and meta block —
// enough to classify a checkpoint (structural digest, cut cycle,
// trajectory prefix) without reading the body. The reader is left
// positioned at the body's first byte.
func PeekNodeMeta(r io.Reader) (NodeMeta, error) {
	meta, _, _, err := readHeader(r)
	return meta, err
}

// NewReader validates the snapshot header, decodes the meta block, and
// reads and CRC-checks the body, returning a reader positioned at its
// start.
func NewReader(r io.Reader) (*Reader, error) {
	meta, wantCRC, bodyLen, err := readHeader(r)
	if err != nil {
		return nil, err
	}

	// Read the body incrementally: a lying length prefix cannot force a
	// large allocation, because the buffer only grows as real bytes
	// arrive (pre-growing is capped at 1MB).
	var buf bytes.Buffer
	if bodyLen < 1<<20 {
		buf.Grow(int(bodyLen))
	}
	n, err := io.Copy(&buf, io.LimitReader(r, int64(bodyLen)))
	if err != nil {
		return nil, formatErrf("body read: %v", err)
	}
	if uint64(n) != bodyLen {
		return nil, formatErrf("truncated body: %d of %d bytes", n, bodyLen)
	}
	if got := crc32.ChecksumIEEE(buf.Bytes()); got != wantCRC {
		return nil, formatErrf("body CRC mismatch: %08x != %08x", got, wantCRC)
	}
	return &Reader{data: buf.Bytes(), meta: meta}, nil
}

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// Fail records a decode error (the first one wins).
func (r *Reader) Fail(err error) {
	if r.err == nil && err != nil {
		r.err = err
	}
}

// Failf records a formatted decode error.
func (r *Reader) Failf(format string, args ...any) {
	r.Fail(formatErrf(format, args...))
}

// Remaining returns the unread body byte count.
func (r *Reader) Remaining() int { return len(r.data) - r.off }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.Remaining() < n {
		r.Failf("truncated: need %d bytes, have %d", n, r.Remaining())
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads a canonical boolean; any byte other than 0 or 1 is an
// error.
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.Failf("non-canonical boolean")
		return false
	}
}

// Len reads a u32 element count for a sequence whose elements occupy at
// least elemMin encoded bytes each, rejecting counts that could not
// possibly fit in the remaining body. This is the OOM guard: decoders
// size allocations from Len, never from a raw U32.
func (r *Reader) Len(elemMin int) int {
	if elemMin <= 0 {
		elemMin = 1
	}
	n := r.U32()
	if r.err != nil {
		return 0
	}
	if uint64(n)*uint64(elemMin) > uint64(r.Remaining()) {
		r.Failf("sequence length %d exceeds remaining %d bytes", n, r.Remaining())
		return 0
	}
	return int(n)
}

// Bytes reads a length-prefixed byte slice.
func (r *Reader) Bytes() []byte {
	n := r.Len(1)
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Len(1)
	b := r.take(n)
	return string(b)
}

// Section verifies the next section marker names `name`.
func (r *Reader) Section(name string) {
	if m := r.U8(); r.err == nil && m != 0x5E {
		r.Failf("section %q: bad marker byte %#x", name, m)
		return
	}
	got := r.String()
	if r.err == nil && got != name {
		r.Failf("section order: have %q, want %q", got, name)
	}
}

// NewBodyReader returns a reader over bare body bytes produced by
// Writer.Body — no container header, no CRC. The caller's transport is
// responsible for integrity (internal/wire frames carry their own CRC).
// The reader aliases data; the slice must stay immutable while read.
func NewBodyReader(data []byte) *Reader { return &Reader{data: data} }

// Finish returns the sticky error, or an error if unread body bytes
// remain (a layout mismatch that happened to stay in bounds).
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.Remaining() != 0 {
		return formatErrf("%d trailing bytes after final section", r.Remaining())
	}
	return nil
}
