package snapshot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func roundTrip(t *testing.T, w *Writer) *Reader {
	t.Helper()
	var buf bytes.Buffer
	if err := w.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestPrimitiveRoundTrip(t *testing.T) {
	w := NewWriter()
	w.Section("prims")
	w.U8(0xAB)
	w.U16(0xBEEF)
	w.U32(0xDEADBEEF)
	w.U64(math.MaxUint64)
	w.I64(-42)
	w.F64(3.14159)
	w.Bool(true)
	w.Bool(false)
	w.Bytes([]byte{1, 2, 3})
	w.String("hello")

	r := roundTrip(t, w)
	r.Section("prims")
	if got := r.U8(); got != 0xAB {
		t.Errorf("U8 = %#x", got)
	}
	if got := r.U16(); got != 0xBEEF {
		t.Errorf("U16 = %#x", got)
	}
	if got := r.U32(); got != 0xDEADBEEF {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U64(); got != math.MaxUint64 {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.F64(); got != 3.14159 {
		t.Errorf("F64 = %v", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip")
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", got)
	}
	if got := r.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicBytes(t *testing.T) {
	build := func() []byte {
		w := NewWriter()
		w.Section("a")
		w.U64(7)
		w.String("x")
		var buf bytes.Buffer
		if err := w.Flush(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("identical writes produced different bytes")
	}
}

func TestCorruptionDetected(t *testing.T) {
	w := NewWriter()
	w.Section("s")
	for i := 0; i < 64; i++ {
		w.U64(uint64(i))
	}
	var buf bytes.Buffer
	if err := w.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Flip every byte in turn: each corruption must be rejected by the
	// header checks or the CRC.
	for i := range good {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0xFF
		if _, err := NewReader(bytes.NewReader(bad)); err == nil {
			t.Fatalf("corruption at byte %d accepted", i)
		}
	}
	// Every truncation must be rejected too.
	for n := 0; n < len(good); n++ {
		if _, err := NewReader(bytes.NewReader(good[:n])); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

func TestSectionOrderEnforced(t *testing.T) {
	w := NewWriter()
	w.Section("first")
	w.Section("second")
	r := roundTrip(t, w)
	r.Section("first")
	r.Section("wrong")
	if err := r.Finish(); err == nil || !strings.Contains(err.Error(), "section order") {
		t.Fatalf("section mismatch not detected: %v", err)
	}
}

func TestLenGuardsAllocation(t *testing.T) {
	// A sequence length far beyond the remaining bytes must fail before
	// any allocation is attempted.
	w := NewWriter()
	w.U32(1 << 30) // claimed length
	w.U64(0)       // only 8 real bytes
	r := roundTrip(t, w)
	if n := r.Len(8); n != 0 || r.Err() == nil {
		t.Fatalf("Len accepted impossible count: n=%d err=%v", n, r.Err())
	}
}

func TestNonCanonicalBoolRejected(t *testing.T) {
	w := NewWriter()
	w.U8(2)
	r := roundTrip(t, w)
	r.Bool()
	if r.Err() == nil {
		t.Fatal("bool byte 2 accepted")
	}
}

func TestFinishRejectsTrailingBytes(t *testing.T) {
	w := NewWriter()
	w.U64(1)
	w.U64(2)
	r := roundTrip(t, w)
	r.U64()
	if err := r.Finish(); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

type anyFixture struct {
	A uint64
	B int32
	C float64
	D bool
	E string
	F [3]uint64
	G []int64
	H struct {
		X uint32
		Y uint64
	}
}

func TestAnyRoundTrip(t *testing.T) {
	in := anyFixture{A: 1, B: -2, C: 0.5, D: true, E: "s", F: [3]uint64{4, 5, 6}, G: []int64{-7, 8}}
	in.H.X, in.H.Y = 9, 10
	w := NewWriter()
	w.Any(in)
	r := roundTrip(t, w)
	var out anyFixture
	r.AnyInto(&out)
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	if out.A != in.A || out.B != in.B || out.C != in.C || out.D != in.D ||
		out.E != in.E || out.F != in.F || len(out.G) != 2 || out.G[0] != -7 ||
		out.H != in.H {
		t.Fatalf("Any round trip mismatch: %+v != %+v", out, in)
	}
}

func TestNodeMetaRoundTrip(t *testing.T) {
	structural := bytes.Repeat([]byte{0xA5}, 32)
	in := NodeMeta{Structural: structural, Cut: 1_234_567, ForkAt: 900_000, Prefix: "streak=8@900000"}
	w := NewWriter()
	w.Section("body")
	w.U64(42)
	w.SetNodeMeta(in)
	var buf bytes.Buffer
	if err := w.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// PeekNodeMeta reads the descriptor without touching the body.
	peeked, err := PeekNodeMeta(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(peeked.Structural, in.Structural) || peeked.Cut != in.Cut ||
		peeked.ForkAt != in.ForkAt || peeked.Prefix != in.Prefix {
		t.Fatalf("peeked meta %+v != written %+v", peeked, in)
	}

	// The full reader carries the same descriptor alongside the body.
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	got := r.NodeMeta()
	if !bytes.Equal(got.Structural, in.Structural) || got.Cut != in.Cut ||
		got.ForkAt != in.ForkAt || got.Prefix != in.Prefix {
		t.Fatalf("reader meta %+v != written %+v", got, in)
	}
	r.Section("body")
	if v := r.U64(); v != 42 {
		t.Fatalf("body U64 = %d", v)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestNodeMetaZeroOmitted(t *testing.T) {
	w := NewWriter()
	w.U64(1)
	var buf bytes.Buffer
	if err := w.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	meta, err := PeekNodeMeta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !(len(meta.Structural) == 0 && meta.Cut == 0 && meta.ForkAt == 0 && meta.Prefix == "") {
		t.Fatalf("descriptor-less container peeked non-zero meta %+v", meta)
	}
}

func TestNodeMetaCorruptionDetected(t *testing.T) {
	w := NewWriter()
	w.SetNodeMeta(NodeMeta{Structural: bytes.Repeat([]byte{3}, 32), Cut: 99, Prefix: "p"})
	w.Section("s")
	w.U64(7)
	var buf bytes.Buffer
	if err := w.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	// With a non-zero meta block present, every single-byte corruption —
	// header, meta, or body — must still be rejected.
	for i := range good {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0xFF
		if _, err := NewReader(bytes.NewReader(bad)); err == nil {
			t.Fatalf("corruption at byte %d accepted", i)
		}
	}
	for n := 0; n < len(good); n++ {
		if _, err := NewReader(bytes.NewReader(good[:n])); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

func TestCanonicalDigest(t *testing.T) {
	type cfg struct {
		N    int
		Name string
		Hook func()
	}
	a, err := CanonicalDigest("v1", cfg{N: 1, Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CanonicalDigest("v1", cfg{N: 1, Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("equal values digest differently")
	}
	c, err := CanonicalDigest("v1", cfg{N: 2, Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different values digest equal")
	}
	d, err := CanonicalDigest("v2", cfg{N: 1, Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if a == d {
		t.Fatal("prefix does not separate digest spaces")
	}
	if _, err := CanonicalDigest("v1", cfg{Hook: func() {}}); err == nil {
		t.Fatal("non-nil func field accepted")
	}
	if _, err := CanonicalDigest("v1", map[string]int{}); err == nil {
		t.Fatal("map accepted")
	}
}
