package snapshot

import (
	"reflect"
)

// Any serializes a plain value — exported scalar fields, strings,
// arrays, slices, and nested structs of the same — in declared field
// order. It exists for the simulator's many flat statistics structs
// (cache.Stats, dram.Stats, sim.Counters, ...), whose field-by-field
// encoding would otherwise be pure boilerplate. Unsupported kinds and
// unexported fields panic: Any is for our own types at encode time, and
// a type that stops being plain must fail tests immediately.
func (w *Writer) Any(v any) { w.anyValue(reflect.ValueOf(v)) }

func (w *Writer) anyValue(v reflect.Value) {
	switch v.Kind() {
	case reflect.Bool:
		w.Bool(v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		w.I64(v.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		w.U64(v.Uint())
	case reflect.Float32, reflect.Float64:
		w.F64(v.Float())
	case reflect.String:
		w.String(v.String())
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			w.anyValue(v.Index(i))
		}
	case reflect.Slice:
		w.U32(uint32(v.Len()))
		for i := 0; i < v.Len(); i++ {
			w.anyValue(v.Index(i))
		}
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			if !t.Field(i).IsExported() {
				panic("snapshot: Any cannot encode unexported field " + t.String() + "." + t.Field(i).Name)
			}
			w.anyValue(v.Field(i))
		}
	default:
		panic("snapshot: Any cannot encode kind " + v.Kind().String())
	}
}

// AnyInto decodes a value written by Any into *ptr. Decode-side failures
// (truncation, overflow, non-plain target) are recorded on the reader,
// never panicked: AnyInto sits on the fuzzed path.
func (r *Reader) AnyInto(ptr any) {
	v := reflect.ValueOf(ptr)
	if v.Kind() != reflect.Pointer || v.IsNil() {
		r.Failf("AnyInto target must be a non-nil pointer")
		return
	}
	r.anyInto(v.Elem())
}

func (r *Reader) anyInto(v reflect.Value) {
	if r.err != nil {
		return
	}
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(r.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		x := r.I64()
		if v.OverflowInt(x) {
			r.Failf("value %d overflows %s", x, v.Type())
			return
		}
		v.SetInt(x)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		x := r.U64()
		if v.OverflowUint(x) {
			r.Failf("value %d overflows %s", x, v.Type())
			return
		}
		v.SetUint(x)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(r.F64())
	case reflect.String:
		v.SetString(r.String())
	case reflect.Array:
		for i := 0; i < v.Len() && r.err == nil; i++ {
			r.anyInto(v.Index(i))
		}
	case reflect.Slice:
		n := r.Len(1)
		if r.err != nil {
			return
		}
		v.Set(reflect.MakeSlice(v.Type(), n, n))
		for i := 0; i < n && r.err == nil; i++ {
			r.anyInto(v.Index(i))
		}
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField() && r.err == nil; i++ {
			if !t.Field(i).IsExported() {
				r.Failf("AnyInto cannot decode unexported field %s.%s", t.String(), t.Field(i).Name)
				return
			}
			r.anyInto(v.Field(i))
		}
	default:
		r.Failf("AnyInto cannot decode kind %s", v.Kind())
	}
}
