package sim

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"bump/internal/workload"
)

// TestForkRestoreConformance is the fork restore-point conformance
// test: a run snapshotted by the AtCycle hook at randomized
// mid-measurement cuts and restored into a fresh system must finish
// with the exact Result and the exact final machine state of an
// uninterrupted run — across a stationary workload and a multi-tenant
// scenario. One trunk run captures all cuts (the AtCycles contract);
// each cut then replays its tail independently.
func TestForkRestoreConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("differential fork test is not short")
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"stationary/bump-web-search", smallConfig(BuMP, workload.WebSearch(), 21)},
		{"stationary/sms-vwq-data-serving", smallConfig(SMSVWQ, workload.DataServing(), 22)},
		{"scenario/bump-test-swap", smallScenarioConfig(BuMP, testSwapSpec(), 23)},
	}
	rng := rand.New(rand.NewSource(4242))
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			total := tc.cfg.WarmupCycles + tc.cfg.MeasureCycles

			ref := mustNewSys(t, tc.cfg)
			refRes, err := ref.RunWithHooks(Hooks{})
			if err != nil {
				t.Fatal(err)
			}
			refFinal := snapBytes(t, ref)

			cutSet := map[uint64]struct{}{}
			for len(cutSet) < 3 {
				cutSet[tc.cfg.WarmupCycles+1+uint64(rng.Int63n(int64(tc.cfg.MeasureCycles-1)))] = struct{}{}
			}
			cuts := make([]uint64, 0, len(cutSet))
			for c := range cutSet {
				cuts = append(cuts, c)
			}
			sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })

			snaps := make(map[uint64][]byte, len(cuts))
			trunk := mustNewSys(t, tc.cfg)
			_, err = trunk.RunWithHooks(Hooks{
				AtCycles: cuts,
				AtCycle: func(cut uint64) error {
					var buf bytes.Buffer
					if err := trunk.Snapshot(&buf); err != nil {
						return err
					}
					snaps[cut] = buf.Bytes()
					return nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}

			for _, cut := range cuts {
				if cut >= total {
					t.Fatalf("generated cut %d outside measurement window", cut)
				}
				restored := mustNewSys(t, tc.cfg)
				if err := restored.Restore(bytes.NewReader(snaps[cut])); err != nil {
					t.Fatalf("cut %d: restore: %v", cut, err)
				}
				res, err := restored.RunWithHooks(Hooks{})
				if err != nil {
					t.Fatalf("cut %d: continue: %v", cut, err)
				}
				if !reflect.DeepEqual(res, refRes) {
					t.Fatalf("cut %d: restored result diverges from uninterrupted run:\n got %+v\nwant %+v", cut, res, refRes)
				}
				if final := snapBytes(t, restored); !bytes.Equal(final, refFinal) {
					t.Fatalf("cut %d: final machine state diverges from uninterrupted run", cut)
				}
			}
		})
	}
}

// TestForkSweepOneTrunkManyBranches is the checkpoint-tree acceptance
// test: a 16-point late-binding fairness sweep with one mid-measurement
// cut simulates exactly one warmup, extends the trunk to the cut
// exactly once, and runs sixteen branch tails each shorter than the
// full measurement window — and every point is byte-identical to its
// own cold sequential run.
func TestForkSweepOneTrunkManyBranches(t *testing.T) {
	if testing.Short() {
		t.Skip("differential fork test is not short")
	}
	cfg := smallConfig(BuMP, workload.WebSearch(), 31)
	total := cfg.WarmupCycles + cfg.MeasureCycles
	cut := cfg.WarmupCycles + cfg.MeasureCycles/2

	ws := NewWarmStore(8)
	const points = 16
	for i := 0; i < points; i++ {
		pt := cfg
		pt.MaxRowHitStreak = i
		pt.ForkAt = cut
		pt.ForkCycles = []uint64{cut}

		res, err := ws.Run(pt)
		if err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
		cold, err := RunOne(pt)
		if err != nil {
			t.Fatalf("point %d cold: %v", i, err)
		}
		if !reflect.DeepEqual(res, cold) {
			t.Fatalf("point %d: forked result diverges from cold sequential run:\n got %+v\nwant %+v", i, res, cold)
		}
	}

	st := ws.Stats()
	if st.Misses != 1 || st.ForkMisses != 1 {
		t.Fatalf("tree built %d roots / %d nodes, want exactly 1 / 1 (stats %+v)", st.Misses, st.ForkMisses, st)
	}
	if st.WarmupCyclesSimulated != cfg.WarmupCycles {
		t.Fatalf("simulated %d warmup cycles, want exactly one warmup (%d)", st.WarmupCyclesSimulated, cfg.WarmupCycles)
	}
	if st.TrunkCyclesSimulated != cut-cfg.WarmupCycles {
		t.Fatalf("simulated %d trunk cycles, want exactly one extension (%d)", st.TrunkCyclesSimulated, cut-cfg.WarmupCycles)
	}
	if want := uint64(points) * (total - cut); st.BranchCyclesSimulated != want {
		t.Fatalf("simulated %d branch cycles, want %d (16 tails)", st.BranchCyclesSimulated, want)
	}
	if st.BranchCyclesSimulated/points >= cfg.MeasureCycles {
		t.Fatalf("branch tails (%d cycles each) are not shorter than the measurement window (%d)",
			st.BranchCyclesSimulated/points, cfg.MeasureCycles)
	}
	if st.Hits != points-1 || st.ForkHits != points-1 {
		t.Fatalf("%d hits / %d fork hits, want %d / %d", st.Hits, st.ForkHits, points-1, points-1)
	}
	if want := uint64(points-1) * (cut - cfg.WarmupCycles); st.ForkCyclesReused != want {
		t.Fatalf("reused %d fork cycles, want %d", st.ForkCyclesReused, want)
	}
}

// TestForkTrunkPublishesDeeperNodes: a canonical (zero measured
// parameter) point whose measured tail passes configured cuts beyond
// its own restore target publishes those tree nodes in-run, for free —
// a later what-if fork at the deeper cycle restores instead of
// extending the trunk.
func TestForkTrunkPublishesDeeperNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("differential fork test is not short")
	}
	cfg := smallConfig(BuMP, workload.DataServing(), 33)
	c1 := cfg.WarmupCycles + cfg.MeasureCycles/4
	c2 := cfg.WarmupCycles + cfg.MeasureCycles/2
	cuts := []uint64{c1, c2}

	ws := NewWarmStore(8)

	// Point A: canonical cap, forks at the shallow cut; its tail crosses
	// c2 and publishes that node as a side effect.
	a := cfg
	a.ForkAt = c1
	a.ForkCycles = cuts
	if _, err := ws.Run(a); err != nil {
		t.Fatal(err)
	}
	if key, ok := ForkNodeKey(cfg, c2); !ok {
		t.Fatal("config not tree-keyable")
	} else if _, have := ws.Checkpoint(key); !have {
		t.Fatal("canonical run did not publish the deeper tree node it passed")
	}

	// Point B: a what-if fork from the deeper cycle. The node must come
	// from A's in-run publication — no further trunk extension.
	b := cfg
	b.MaxRowHitStreak = 3
	b.ForkAt = c2
	b.ForkCycles = cuts
	res, err := ws.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := RunOne(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, cold) {
		t.Fatal("what-if fork diverges from its cold sequential run")
	}
	st := ws.Stats()
	if st.TrunkCyclesSimulated != c1-cfg.WarmupCycles {
		t.Fatalf("simulated %d trunk cycles, want only the shallow extension (%d): the deep node should come from in-run publication",
			st.TrunkCyclesSimulated, c1-cfg.WarmupCycles)
	}
	if st.ForkHits != 1 {
		t.Fatalf("fork hits %d, want 1 (point B restoring the published node)", st.ForkHits)
	}
}

// forkFakeBackend is an in-memory WarmBackend whose entries can be
// corrupted out of band, for poisoning-recovery tests.
type forkFakeBackend struct {
	mu      sync.Mutex
	m       map[string][]byte
	deletes int
}

func newForkFakeBackend() *forkFakeBackend {
	return &forkFakeBackend{m: make(map[string][]byte)}
}

func (b *forkFakeBackend) Get(key string) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	data, ok := b.m[key]
	return data, ok
}

func (b *forkFakeBackend) Put(key string, data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m[key] = append([]byte(nil), data...)
	return nil
}

func (b *forkFakeBackend) Delete(key string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.m, key)
	b.deletes++
}

func (b *forkFakeBackend) Keys() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	keys := make([]string, 0, len(b.m))
	for k := range b.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TestWarmStorePoisonedCheckpointRecovers is the key-poisoning
// regression test: a cached checkpoint whose restore fails must be
// evicted from the memory tier AND the backend, the run must fall
// through to re-warm as leader, and the hit counter must reflect only
// successful restores. Before the fix, the corrupt entry was never
// evicted (every future run of the key failed forever) and Hits was
// charged before the restore was attempted.
func TestWarmStorePoisonedCheckpointRecovers(t *testing.T) {
	cfg := smallConfig(BuMP, workload.WebSearch(), 41)
	backend := newForkFakeBackend()

	// Seed the backend with a valid checkpoint, then corrupt it.
	seed := NewWarmStoreBacked(4, backend)
	if _, err := seed.Run(cfg); err != nil {
		t.Fatal(err)
	}
	key, ok := WarmKey(cfg)
	if !ok {
		t.Fatal("config not warm-cacheable")
	}
	good, ok := backend.Get(key)
	if !ok {
		t.Fatal("leader did not spill its checkpoint to the backend")
	}
	bad := append([]byte(nil), good...)
	for i := len(bad) / 2; i < len(bad); i++ {
		bad[i] ^= 0xff
	}
	if err := backend.Put(key, bad); err != nil {
		t.Fatal(err)
	}

	// A fresh store (cold memory tier) promotes the poisoned bytes,
	// fails the restore, evicts both tiers, and re-warms as leader.
	ws := NewWarmStoreBacked(4, backend)
	res, err := ws.Run(cfg)
	if err != nil {
		t.Fatalf("poisoned checkpoint not recovered: %v", err)
	}
	cold, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, cold) {
		t.Fatal("recovered run diverges from cold run")
	}
	st := ws.Stats()
	if st.Evicted != 1 {
		t.Fatalf("evicted %d entries, want 1", st.Evicted)
	}
	if st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("%d hits / %d misses after recovery, want 0 / 1 (a failed restore is not a hit)", st.Hits, st.Misses)
	}
	if backend.deletes != 1 {
		t.Fatalf("backend saw %d deletes, want 1 (poisoned bytes must not outlive the process)", backend.deletes)
	}

	// The re-warmed checkpoint replaced the poisoned one: the next run
	// is a plain hit, from both tiers' perspective.
	repaired, ok := backend.Get(key)
	if !ok || bytes.Equal(repaired, bad) {
		t.Fatal("backend still serves the poisoned bytes")
	}
	next := cfg
	next.MaxRowHitStreak = 2
	if _, err := ws.Run(next); err != nil {
		t.Fatal(err)
	}
	if st := ws.Stats(); st.Hits != 1 {
		t.Fatalf("post-recovery run: %d hits, want 1", st.Hits)
	}
}
