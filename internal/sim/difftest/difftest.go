// Package difftest is the differential-equivalence harness that pins
// the parallel simulation engine to the sequential one: the same Config
// executed at any Workers count must produce byte-identical Result JSON
// and byte-identical machine snapshots (warmup-end checkpoint and
// end-of-run state). The harness is reusable — the randomized matrix
// test drives it across mechanisms, workload kinds and restore paths,
// and any future engine work can call it directly on a suspect Config.
package difftest

import (
	"bytes"
	"encoding/json"
	"testing"

	"bump/internal/sim"
)

// Artifacts collects every observable output of one run for byte-level
// comparison.
type Artifacts struct {
	// ResultJSON is the indented JSON encoding of the run's Result.
	ResultJSON []byte
	// WarmSnap holds the warmup-end checkpoint bytes (nil when the
	// config has no warmup window).
	WarmSnap []byte
	// EndSnap holds the full machine snapshot taken after the run.
	EndSnap []byte
	// Parallel reports the parallel runner's execution statistics
	// (zero for sequential runs).
	Parallel sim.ParallelStats
}

func marshalResult(tb testing.TB, res sim.Result) []byte {
	tb.Helper()
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// RunCold builds a fresh system for cfg with the given Workers value and
// runs it cold, capturing all comparison artifacts.
func RunCold(tb testing.TB, cfg sim.Config, workers int) Artifacts {
	tb.Helper()
	cfg.Workers = workers
	s, err := sim.New(cfg)
	if err != nil {
		tb.Fatalf("workers=%d: %v", workers, err)
	}
	var a Artifacts
	h := sim.Hooks{Parallel: func(st sim.ParallelStats) { a.Parallel = st }}
	if cfg.WarmupCycles > 0 {
		var warm bytes.Buffer
		h.AtWarmupEnd = func() error { return s.Snapshot(&warm) }
		defer func() { a.WarmSnap = warm.Bytes() }()
	}
	res, err := s.RunWithHooks(h)
	if err != nil {
		tb.Fatalf("workers=%d: %v", workers, err)
	}
	a.ResultJSON = marshalResult(tb, res)
	var end bytes.Buffer
	if err := s.Snapshot(&end); err != nil {
		tb.Fatalf("workers=%d: end snapshot: %v", workers, err)
	}
	a.EndSnap = end.Bytes()
	return a
}

// Equivalence runs cfg sequentially (the reference) and at each workers
// count, asserting byte-identical Result JSON, warmup-end snapshot and
// end-of-run snapshot. It also asserts that at least one workers count
// actually exercised parallel windows — a harness that silently falls
// back to inline execution everywhere proves nothing. Returns the
// reference artifacts for further checks.
func Equivalence(tb testing.TB, cfg sim.Config, workers ...int) Artifacts {
	tb.Helper()
	ref := RunCold(tb, cfg, 0)
	anyParallel := false
	for _, w := range workers {
		got := RunCold(tb, cfg, w)
		compare(tb, w, ref, got)
		if got.Parallel.ParallelWindows > 0 {
			anyParallel = true
		}
	}
	if !anyParallel {
		tb.Errorf("no workers count in %v executed a single parallel window — the config is too sparse (or GOMAXPROCS too low) for this differential to mean anything", workers)
	}
	return ref
}

func compare(tb testing.TB, workers int, ref, got Artifacts) {
	tb.Helper()
	if !bytes.Equal(got.ResultJSON, ref.ResultJSON) {
		tb.Errorf("workers=%d: Result JSON diverges from sequential.\ngot:\n%s\nwant:\n%s",
			workers, got.ResultJSON, ref.ResultJSON)
	}
	if !bytes.Equal(got.WarmSnap, ref.WarmSnap) {
		tb.Errorf("workers=%d: warmup-end snapshot diverges from sequential (%d vs %d bytes)",
			workers, len(got.WarmSnap), len(ref.WarmSnap))
	}
	if !bytes.Equal(got.EndSnap, ref.EndSnap) {
		tb.Errorf("workers=%d: end-of-run snapshot diverges from sequential (%d vs %d bytes)",
			workers, len(got.EndSnap), len(ref.EndSnap))
	}
}

// EquivalenceWarm exercises the warm/fork restore paths: for each
// workers count a fresh WarmStore runs cfg twice — the first run builds
// the trunk nodes (under the parallel engine), the second restores them
// — and both results must match the sequential cold reference byte for
// byte. Works for plain warm restores (ForkAt zero) and checkpoint-tree
// forks (ForkAt / ForkCycles set) alike.
func EquivalenceWarm(tb testing.TB, cfg sim.Config, workers ...int) {
	tb.Helper()
	ref := RunCold(tb, cfg, 0)
	for _, w := range workers {
		wcfg := cfg
		wcfg.Workers = w
		ws := sim.NewWarmStore(16)
		for pass, label := range []string{"build", "restore"} {
			res, err := ws.Run(wcfg)
			if err != nil {
				tb.Fatalf("workers=%d %s pass: %v", w, label, err)
			}
			if got := marshalResult(tb, res); !bytes.Equal(got, ref.ResultJSON) {
				tb.Errorf("workers=%d warm %s pass: Result JSON diverges from sequential cold run.\ngot:\n%s\nwant:\n%s",
					w, label, got, ref.ResultJSON)
			}
			_ = pass
		}
		st := ws.Stats()
		if st.Misses == 0 {
			tb.Errorf("workers=%d: warm store never built a node (harness wired wrong?)", w)
		}
	}
}
