package difftest

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"bump/internal/scenario"
	"bump/internal/sim"
	"bump/internal/workload"
)

// matrixWorkers is the Workers sweep every differential case runs
// against the sequential reference.
var matrixWorkers = []int{2, 4, 8}

// setProcs raises GOMAXPROCS to n for the test when the machine has
// fewer Ps, so the GOMAXPROCS cap in effectiveWorkers doesn't silently
// collapse the differential to sequential-vs-sequential on small CI
// boxes. Correctness (unlike speedup) doesn't need real cores — the
// workers' spin loops yield, so oversubscribed shards still make
// progress.
func setProcs(tb testing.TB, n int) {
	old := runtime.GOMAXPROCS(0)
	if n <= old {
		return
	}
	runtime.GOMAXPROCS(n)
	tb.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// matrixSeed picks the randomized matrix's seed: BUMP_DIFFTEST_SEED for
// replaying a logged failure, wall clock otherwise. The seed is logged
// unconditionally so any red run is reproducible.
func matrixSeed(tb testing.TB) int64 {
	if s := os.Getenv("BUMP_DIFFTEST_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			tb.Fatalf("BUMP_DIFFTEST_SEED: %v", err)
		}
		tb.Logf("matrix seed %d (from BUMP_DIFFTEST_SEED)", v)
		return v
	}
	v := time.Now().UnixNano()
	tb.Logf("matrix seed %d (replay with BUMP_DIFFTEST_SEED=%d)", v, v)
	return v
}

// denseConfig builds a parallel-worthy configuration: enough cores that
// a 5-cycle lookahead window carries well past Floor events, with small
// caches and short windows to keep the matrix fast. Dimensions are drawn
// from rng so every CI run probes a different point of the space.
func denseConfig(rng *rand.Rand, m sim.Mechanism, w workload.Params) sim.Config {
	cfg := sim.DefaultConfig(m, w)
	cfg.Cores = 24 + 8*rng.Intn(3) // 24, 32 or 40
	cfg.L1Bytes = 8 << 10
	cfg.LLCBytes = 256 << 10
	cfg.Seed = rng.Int63()
	cfg.WarmupCycles = 4_000 + uint64(rng.Intn(3))*2_000
	cfg.MeasureCycles = 8_000 + uint64(rng.Intn(3))*4_000
	return cfg
}

// denseScenario composes a multi-tenant scenario across all cores so the
// scenario subsystem (phase boundaries, task-bounded phases, load
// scaling) runs under the parallel engine too.
func denseScenario(rng *rand.Rand, m sim.Mechanism) sim.Config {
	cfg := denseConfig(rng, m, workload.WebSearch())
	half := cfg.Cores / 2
	sc := scenario.Spec{Name: "difftest-mix", Tenants: []scenario.Tenant{
		{Name: "swap", Cores: scenario.CoreRange{First: 0, Last: half - 1}, Repeat: true, Phases: []scenario.Phase{
			{Preset: "data-serving", Accesses: 1200 + uint64(rng.Intn(800))},
			{Preset: "media-streaming", Accesses: 800 + uint64(rng.Intn(600))},
		}},
		{Name: "burst", Cores: scenario.CoreRange{First: half, Last: cfg.Cores - 1}, Repeat: true, Phases: []scenario.Phase{
			{Preset: "web-search", Tasks: 60 + uint64(rng.Intn(40))},
			{Preset: "online-analytics", Tasks: 30 + uint64(rng.Intn(20)), WriteScale: 2, LoadScale: 1.5},
		}},
	}}
	cfg.Workload = workload.Params{}
	cfg.Scenario = sc
	return cfg
}

// TestParallelEquivalenceMatrix is the main differential: 4 mechanisms ×
// stationary/scenario workloads, each compared sequential vs Workers ∈
// {2,4,8} on Result JSON, warmup-end snapshot and end-of-run snapshot,
// plus warm-restore and checkpoint-tree fork paths on a sub-matrix.
func TestParallelEquivalenceMatrix(t *testing.T) {
	setProcs(t, 8)
	rng := rand.New(rand.NewSource(matrixSeed(t)))
	mechanisms := []sim.Mechanism{sim.BuMP, sim.SMSVWQ, sim.BaseClose, sim.VWQOnly}
	stationary := []workload.Params{
		workload.WebSearch(), workload.DataServing(),
		workload.OnlineAnalytics(), workload.MediaStreaming(),
	}

	for i, m := range mechanisms {
		cfg := denseConfig(rng, m, stationary[i])
		t.Run(fmt.Sprintf("cold/%s/%s", m, cfg.Workload.Name), func(t *testing.T) {
			Equivalence(t, cfg, matrixWorkers...)
		})
		scfg := denseScenario(rng, m)
		t.Run(fmt.Sprintf("cold/%s/scenario", m), func(t *testing.T) {
			Equivalence(t, scfg, matrixWorkers...)
		})
	}

	// Restore paths on one stationary and one scenario point: a plain
	// warm restore, and a checkpoint-tree fork (deferred MaxRowHitStreak
	// bound mid-measurement, one published cut).
	warmCfg := denseConfig(rng, sim.BuMP, workload.DataServing())
	t.Run("warm/bump/data-serving", func(t *testing.T) {
		EquivalenceWarm(t, warmCfg, matrixWorkers...)
	})
	warmScen := denseScenario(rng, sim.SMSVWQ)
	t.Run("warm/sms+vwq/scenario", func(t *testing.T) {
		EquivalenceWarm(t, warmScen, matrixWorkers...)
	})
	forkCfg := denseConfig(rng, sim.BaseClose, workload.WebSearch())
	forkCfg.MaxRowHitStreak = 4
	forkCfg.ForkAt = forkCfg.WarmupCycles + forkCfg.MeasureCycles/4
	forkCfg.ForkCycles = []uint64{forkCfg.ForkAt}
	t.Run("fork/base-close/web-search", func(t *testing.T) {
		EquivalenceWarm(t, forkCfg, matrixWorkers...)
	})
}

// TestParallelDeterminismGOMAXPROCS pins schedule independence: the same
// Workers=8 run under GOMAXPROCS 1, 2 and NumCPU must produce identical
// bytes — and identical to the sequential reference — so goroutine
// scheduling (including the degenerate one-P case, where the effective
// worker count collapses to sequential) can never leak into results.
func TestParallelDeterminismGOMAXPROCS(t *testing.T) {
	rng := rand.New(rand.NewSource(matrixSeed(t)))
	cfg := denseConfig(rng, sim.BuMP, workload.WebSearch())
	ref := RunCold(t, cfg, 0)

	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for _, p := range []int{1, 2, runtime.NumCPU()} {
		runtime.GOMAXPROCS(p)
		got := RunCold(t, cfg, 8)
		runtime.GOMAXPROCS(old)
		t.Logf("GOMAXPROCS=%d: effective workers %d, %d parallel windows",
			p, got.Parallel.Workers, got.Parallel.ParallelWindows)
		compare(t, 8, ref, got)
	}
}

// TestParallelSoak hammers the Workers=8 engine in a loop (2s by
// default, BUMP_SOAK_SECONDS stretches it for the CI race soak),
// re-verifying byte identity every iteration. Under -race this is the
// data-race net for the barrier/merge machinery.
func TestParallelSoak(t *testing.T) {
	secs := 2
	if s := os.Getenv("BUMP_SOAK_SECONDS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("BUMP_SOAK_SECONDS: %v", err)
		}
		secs = v
	}
	setProcs(t, 8)
	rng := rand.New(rand.NewSource(matrixSeed(t)))
	cfg := denseConfig(rng, sim.BuMP, workload.DataServing())
	cfg.WarmupCycles = 2_000
	cfg.MeasureCycles = 4_000
	ref := RunCold(t, cfg, 0)

	deadline := time.Now().Add(time.Duration(secs) * time.Second)
	iters := 0
	for time.Now().Before(deadline) {
		got := RunCold(t, cfg, 8)
		compare(t, 8, ref, got)
		if t.Failed() {
			t.Fatalf("diverged on soak iteration %d", iters)
		}
		iters++
	}
	t.Logf("soak: %d iterations in %ds", iters, secs)
}
