package sim

import (
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sort"

	"bump/internal/core"
	"bump/internal/dram"
	"bump/internal/mem"
	"bump/internal/memctrl"
	"bump/internal/prefetch"
	"bump/internal/scenario"
	"bump/internal/snapshot"
	"bump/internal/workload"
)

// structuralDigestVersion versions the structural-compatibility check.
// Bump alongside snapshot.FormatVersion when restore semantics change.
// v2: Config gained the Scenario field (covered by the digest walk), so
// v1 checkpoints are rejected with a clear incompatibility error.
// v3: ForkAt/ForkCycles joined MeasureCycles and MaxRowHitStreak as
// measured (digest-excluded) parameters — a checkpoint-tree node is
// shared across every fork schedule of the same structure.
const structuralDigestVersion = "bump-snapshot-struct-v3"

// Stable event-receiver references for the engine snapshot.
const (
	objRefSystem   = 0
	objRefMemctrl  = 1
	objRefCoreBase = 16
)

// structuralConfig mirrors Config's structural fields — everything the
// digest covers, with the same names, order and types, so the canonical
// walk produces the same bytes it did when it walked Config directly.
// Execution-resource knobs (Workers) are deliberately absent: they never
// change what a run computes, so adding them here would needlessly split
// the warm-checkpoint space and invalidate every committed digest. Any
// new *structural* Config field must be added to both structs (a
// conversion test guards the field sets).
type structuralConfig struct {
	Cores int

	WindowSize      int
	RetireWidth     int
	L1MSHRs         int
	L1Bytes         int
	L1Ways          int
	L1LatencyCycles uint64

	LLCBytes         int
	LLCWays          int
	LLCLatencyCycles uint64

	NOCLatencyCycles uint64

	Mechanism            Mechanism
	DisablePrefetcher    bool
	ForceBlockInterleave bool
	MaxRowHitStreak      int
	BuMP                 core.Config
	DRAM                 dram.Config

	Workload workload.Params
	Scenario scenario.Spec
	Streams  func(core int) workload.Stream
	Seed     int64

	WarmupCycles  uint64
	MeasureCycles uint64

	ForkAt     uint64
	ForkCycles []uint64
}

// structuralDigest identifies the configurations a snapshot can restore
// into: every structural Config field except the *measured* parameters —
// MeasureCycles and MaxRowHitStreak, which shape only the measurement
// window, never the structure or the warmed state. Sweeping a measured
// parameter across a shared warm checkpoint is therefore exact
// functional warmup, not an approximation of a different machine.
func structuralDigest(cfg Config) ([32]byte, error) {
	c := structuralConfig{
		Cores:                cfg.Cores,
		WindowSize:           cfg.WindowSize,
		RetireWidth:          cfg.RetireWidth,
		L1MSHRs:              cfg.L1MSHRs,
		L1Bytes:              cfg.L1Bytes,
		L1Ways:               cfg.L1Ways,
		L1LatencyCycles:      cfg.L1LatencyCycles,
		LLCBytes:             cfg.LLCBytes,
		LLCWays:              cfg.LLCWays,
		LLCLatencyCycles:     cfg.LLCLatencyCycles,
		NOCLatencyCycles:     cfg.NOCLatencyCycles,
		Mechanism:            cfg.Mechanism,
		DisablePrefetcher:    cfg.DisablePrefetcher,
		ForceBlockInterleave: cfg.ForceBlockInterleave,
		BuMP:                 cfg.BuMP,
		DRAM:                 cfg.DRAM,
		Workload:             cfg.Workload,
		Scenario:             cfg.Scenario,
		Seed:                 cfg.Seed,
		WarmupCycles:         cfg.WarmupCycles,
	}
	prefix := structuralDigestVersion
	if cfg.Streams != nil {
		// Code has no canonical value: the digest records only that the
		// streams were custom. Callers restoring such snapshots must
		// supply the same streams themselves.
		prefix += "+custom-streams"
	}
	return snapshot.CanonicalDigest(prefix, c)
}

// latePrefix names the measured-parameter trajectory the simulated
// state has followed up to absolute cycle `at`: "" while every measured
// parameter still held its canonical zero value (the shared trunk), or
// the bound values and their bind cycle once they apply. Snapshots
// embed it in their node metadata so a restore can refuse state whose
// pre-cut trajectory diverges from what the target config would have
// simulated.
func latePrefix(cfg Config, at uint64) string {
	if cfg.MaxRowHitStreak == 0 {
		return ""
	}
	if cfg.ForkAt > 0 && at <= cfg.ForkAt {
		return ""
	}
	bind := cfg.ForkAt
	return fmt.Sprintf("streak=%d@%d", cfg.MaxRowHitStreak, bind)
}

// forkNodeVersion versions checkpoint-tree node keying. Bump alongside
// structuralDigestVersion.
const forkNodeVersion = "bump-warmtree-v1"

// ForkNodeKey returns the checkpoint-tree node key for cfg's canonical
// trunk at the given cut cycle. Cuts at or before the warmup boundary
// collapse onto the tree root — the plain WarmKey — so warmup-end
// checkpoints keep their established digest across replication,
// heartbeat advertisement and the blob tier. Deeper nodes get their own
// content address over (structural digest, cut). Keys are lowercase
// hex, blob-store safe. ok is false when cfg is not warm-cacheable.
func ForkNodeKey(cfg Config, cut uint64) (key string, ok bool) {
	if cut <= cfg.WarmupCycles {
		return WarmKey(cfg)
	}
	if cfg.Streams != nil || cfg.WarmupCycles == 0 {
		return "", false
	}
	sd, err := structuralDigest(cfg)
	if err != nil {
		return "", false
	}
	d, err := snapshot.CanonicalDigest(forkNodeVersion, struct {
		Structural [32]byte
		Cut        uint64
	}{sd, cut})
	if err != nil {
		return "", false
	}
	return hex.EncodeToString(d[:]), true
}

// WarmKey returns the warm-checkpoint cache key for cfg: configurations
// with equal keys share identical warmup trajectories and may restore
// one another's warmup-end checkpoints. ok is false for configurations
// that cannot be warm-cached (custom streams, no warmup window).
func WarmKey(cfg Config) (key string, ok bool) {
	if cfg.Streams != nil || cfg.WarmupCycles == 0 {
		return "", false
	}
	d, err := structuralDigest(cfg)
	if err != nil {
		return "", false
	}
	return hex.EncodeToString(d[:]), true
}

func (s *System) encodeEventObj(obj any) (uint32, error) {
	switch o := obj.(type) {
	case *System:
		if o == s {
			return objRefSystem, nil
		}
	case *memctrl.Controller:
		if o == s.mc {
			return objRefMemctrl, nil
		}
	case *coreRunner:
		if o.sys == s && o.id < len(s.cores) && s.cores[o.id] == o {
			return objRefCoreBase + uint32(o.id), nil
		}
	}
	return 0, fmt.Errorf("receiver %T does not belong to this system", obj)
}

func (s *System) decodeEventObj(ref uint32) (any, error) {
	switch {
	case ref == objRefSystem:
		return s, nil
	case ref == objRefMemctrl:
		return s.mc, nil
	case ref >= objRefCoreBase && int(ref-objRefCoreBase) < len(s.cores):
		return s.cores[ref-objRefCoreBase], nil
	}
	return nil, fmt.Errorf("sim: snapshot references unknown event receiver %d", ref)
}

// Snapshot serializes the complete simulator state — event queue, caches
// and MSHRs, predictor tables, memory-system queues and bank state,
// workload stream positions, and every statistics counter — as one
// versioned, deterministic, CRC-framed binary blob. Restoring it into a
// freshly built System of the same structural configuration resumes the
// run bit-identically: the continued run dispatches the exact event
// sequence, and reports the exact statistics, of an uninterrupted one.
func (s *System) Snapshot(out io.Writer) error {
	w := snapshot.NewWriter()
	if err := s.writeState(w); err != nil {
		return err
	}
	return w.Flush(out)
}

func (s *System) writeState(w *snapshot.Writer) error {
	digest, err := structuralDigest(s.cfg)
	if err != nil {
		return fmt.Errorf("sim: snapshot: %w", err)
	}
	w.SetNodeMeta(snapshot.NodeMeta{
		Structural: digest[:],
		Cut:        s.eng.Now(),
		ForkAt:     s.cfg.ForkAt,
		Prefix:     latePrefix(s.cfg, s.eng.Now()),
	})
	w.Section("meta")
	w.Bytes(digest[:])
	w.U8(uint8(s.cfg.Mechanism))
	w.String(s.cfg.WorkloadLabel())
	w.I64(s.cfg.Seed)
	w.U32(uint32(s.cfg.Cores))
	w.U64(s.eng.Now())

	if err := s.eng.Snapshot(w, s.encodeEventObj); err != nil {
		return fmt.Errorf("sim: snapshot: %w", err)
	}

	w.Section("system")
	w.Bool(s.primed)
	w.Any(s.counters)
	w.Bool(s.baseTaken)
	if s.baseTaken {
		writeStatsSnap(w, s.base)
	}

	// Region dirty counts, sorted for canonical bytes.
	regions := make([]mem.RegionAddr, 0, len(s.dirtyCount))
	for r := range s.dirtyCount {
		regions = append(regions, r)
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i] < regions[j] })
	w.U32(uint32(len(regions)))
	for _, r := range regions {
		w.U64(uint64(r))
		w.I64(int64(s.dirtyCount[r]))
	}

	// Waiter slab: preserved slot-for-slot (tokens in flight embed slot
	// indices and generations). Free slots reduce to their generation
	// and free-list link.
	w.U32(uint32(len(s.waiters)))
	for i := range s.waiters {
		sl := &s.waiters[i]
		w.U8(sl.state)
		w.U32(sl.gen)
		if sl.state == waiterFree {
			w.I64(int64(sl.next))
			continue
		}
		writeAccess(w, sl.acc)
		w.U64(sl.pos)
		w.U64(sl.issue)
		w.I64(int64(sl.core))
		w.U32(sl.chain)
		w.Bool(sl.load)
	}
	w.I64(int64(s.freeWaiter))
	s.loadLatency.SnapshotTo(w)

	writeProfile(w, s.prof)
	s.llc.SnapshotTo(w)
	s.llcMSHRs.SnapshotTo(w)
	s.xbar.SnapshotTo(w)
	s.mc.SnapshotTo(w)
	s.dram.SnapshotTo(w)

	w.Section("mechanism")
	w.Bool(s.bump != nil)
	if s.bump != nil {
		s.bump.SnapshotTo(w)
	}
	w.Bool(s.pf != nil)
	if s.pf != nil {
		sn, ok := s.pf.(prefetch.Snapshotter)
		if !ok {
			return fmt.Errorf("sim: snapshot: prefetcher %T is not checkpointable", s.pf)
		}
		sn.SnapshotTo(w)
	}
	w.Bool(s.vwq != nil)
	if s.vwq != nil {
		s.vwq.SnapshotTo(w)
	}

	w.Section("cores")
	for _, c := range s.cores {
		writeAccess(w, c.cur)
		w.Bool(c.hasCur)
		w.U64(c.freeAt)
		w.U64(c.pos)
		w.U32(uint32(len(c.pending)))
		for _, p := range c.pending {
			w.U64(p)
		}
		w.I64(int64(c.mshrs))
		chains := make([]uint32, 0, len(c.chains))
		for ch := range c.chains {
			chains = append(chains, ch)
		}
		sort.Slice(chains, func(i, j int) bool { return chains[i] < chains[j] })
		w.U32(uint32(len(chains)))
		for _, ch := range chains {
			w.U32(ch)
		}
		w.U64(c.instructions)
		w.Bool(c.armed)
		c.l1.SnapshotTo(w)
		seek, ok := c.stream.(workload.Seekable)
		if !ok {
			return fmt.Errorf("sim: snapshot: core %d stream %T is not checkpointable", c.id, c.stream)
		}
		w.U64(seek.StreamFingerprint())
		w.U64(seek.StreamPos())
	}
	return nil
}

// Restore replaces a freshly built System's state with a checkpoint's.
// The system must have been built from a structurally identical
// configuration (same everything except the measured parameters —
// MeasureCycles and MaxRowHitStreak may differ, which is what warmed
// sweeps exploit). Restore into a system that has already run is an
// error. On failure the system is in an undefined state and must be
// discarded.
func (s *System) Restore(in io.Reader) error {
	if s.primed || s.eng.Executed > 0 || s.eng.Now() > 0 {
		return errors.New("sim: Restore requires a freshly built System")
	}
	r, err := snapshot.NewReader(in)
	if err != nil {
		return err
	}
	if err := s.readState(r); err != nil {
		return err
	}
	return r.Finish()
}

func (s *System) readState(r *snapshot.Reader) error {
	want, err := structuralDigest(s.cfg)
	if err != nil {
		return fmt.Errorf("sim: restore: %w", err)
	}
	r.Section("meta")
	got := r.Bytes()
	mech := r.U8()
	wl := r.String()
	seed := r.I64()
	cores := r.U32()
	cycle := r.U64()
	if r.Err() != nil {
		return r.Err()
	}
	if string(got) != string(want[:]) {
		return fmt.Errorf("sim: snapshot of %s/%s seed %d (%d cores, cycle %d) is structurally incompatible with this configuration",
			Mechanism(mech), wl, seed, cores, cycle)
	}
	// A node cut past the warmup boundary has simulated part of the
	// measurement window; its measured-parameter trajectory up to the
	// cut must match what this configuration would itself have
	// simulated. (Warmup-end checkpoints stay permissive: sharing them
	// across measured-parameter changes is the documented functional-
	// warmup methodology.)
	if meta := r.NodeMeta(); meta.Cut > s.cfg.WarmupCycles {
		if want := latePrefix(s.cfg, meta.Cut); meta.Prefix != want {
			return fmt.Errorf("sim: checkpoint cut at cycle %d followed measured-parameter trajectory %q; this configuration expects %q",
				meta.Cut, meta.Prefix, want)
		}
	}

	if err := s.eng.Restore(r, s.decodeEventObj); err != nil {
		return err
	}

	r.Section("system")
	s.primed = r.Bool()
	r.AnyInto(&s.counters)
	s.baseTaken = r.Bool()
	if s.baseTaken {
		if err := readStatsSnap(r, &s.base); err != nil {
			return err
		}
	} else {
		s.base = snap{}
	}

	nDirty := r.Len(8 + 8)
	if r.Err() != nil {
		return r.Err()
	}
	s.dirtyCount = make(map[mem.RegionAddr]int, nDirty)
	for i := 0; i < nDirty; i++ {
		region := mem.RegionAddr(r.U64())
		count := int(r.I64())
		if r.Err() != nil {
			return r.Err()
		}
		if count <= 0 {
			return fmt.Errorf("sim: restore: non-positive dirty count for region %#x", uint64(region))
		}
		s.dirtyCount[region] = count
	}

	nWaiters := r.Len(1 + 4)
	if r.Err() != nil {
		return r.Err()
	}
	s.waiters = make([]waiterSlot, nWaiters)
	for i := range s.waiters {
		sl := &s.waiters[i]
		sl.state = r.U8()
		sl.gen = r.U32()
		if r.Err() != nil {
			return r.Err()
		}
		if sl.state > waiterClaimed {
			return fmt.Errorf("sim: restore: bad waiter state %d", sl.state)
		}
		if sl.state == waiterFree {
			next := r.I64()
			if next < -1 || next >= int64(nWaiters) {
				return fmt.Errorf("sim: restore: waiter free link %d out of range", next)
			}
			sl.next = int32(next)
			continue
		}
		acc, err := readAccess(r)
		if err != nil {
			return err
		}
		sl.acc = acc
		sl.pos = r.U64()
		sl.issue = r.U64()
		core := r.I64()
		if core < 0 || core >= int64(len(s.cores)) {
			return fmt.Errorf("sim: restore: waiter core %d out of range", core)
		}
		sl.core = int32(core)
		sl.chain = r.U32()
		sl.load = r.Bool()
		sl.next = -1
	}
	freeWaiter := r.I64()
	if r.Err() != nil {
		return r.Err()
	}
	if freeWaiter < -1 || freeWaiter >= int64(nWaiters) {
		return fmt.Errorf("sim: restore: waiter free head %d out of range", freeWaiter)
	}
	s.freeWaiter = int32(freeWaiter)
	if err := s.loadLatency.RestoreFrom(r); err != nil {
		return err
	}

	if err := readProfile(r, s.prof); err != nil {
		return err
	}
	if err := s.llc.RestoreFrom(r); err != nil {
		return err
	}
	if err := s.llcMSHRs.RestoreFrom(r); err != nil {
		return err
	}
	if err := s.xbar.RestoreFrom(r); err != nil {
		return err
	}
	if err := s.mc.RestoreFrom(r); err != nil {
		return err
	}
	if err := s.dram.RestoreFrom(r); err != nil {
		return err
	}

	r.Section("mechanism")
	if hasBump := r.Bool(); r.Err() == nil {
		if hasBump != (s.bump != nil) {
			return errors.New("sim: restore: predictor presence mismatch")
		}
		if hasBump {
			if err := s.bump.RestoreFrom(r); err != nil {
				return err
			}
		}
	}
	if hasPf := r.Bool(); r.Err() == nil {
		if hasPf != (s.pf != nil) {
			return errors.New("sim: restore: prefetcher presence mismatch")
		}
		if hasPf {
			sn, ok := s.pf.(prefetch.Snapshotter)
			if !ok {
				return fmt.Errorf("sim: restore: prefetcher %T is not checkpointable", s.pf)
			}
			if err := sn.RestoreFrom(r); err != nil {
				return err
			}
		}
	}
	if hasVWQ := r.Bool(); r.Err() == nil {
		if hasVWQ != (s.vwq != nil) {
			return errors.New("sim: restore: VWQ presence mismatch")
		}
		if hasVWQ {
			if err := s.vwq.RestoreFrom(r); err != nil {
				return err
			}
		}
	}
	if r.Err() != nil {
		return r.Err()
	}

	r.Section("cores")
	for _, c := range s.cores {
		acc, err := readAccess(r)
		if err != nil {
			return err
		}
		c.cur = acc
		c.hasCur = r.Bool()
		c.freeAt = r.U64()
		c.pos = r.U64()
		nPending := r.Len(8)
		if r.Err() != nil {
			return r.Err()
		}
		c.pending = make([]uint64, nPending)
		for i := range c.pending {
			c.pending[i] = r.U64()
		}
		c.mshrs = int(r.I64())
		nChains := r.Len(4)
		if r.Err() != nil {
			return r.Err()
		}
		c.chains = make(map[uint32]bool, nChains)
		for i := 0; i < nChains; i++ {
			c.chains[r.U32()] = true
		}
		c.instructions = r.U64()
		c.armed = r.Bool()
		if err := c.l1.RestoreFrom(r); err != nil {
			return err
		}
		fp := r.U64()
		pos := r.U64()
		if r.Err() != nil {
			return r.Err()
		}
		seek, ok := c.stream.(workload.Seekable)
		if !ok {
			return fmt.Errorf("sim: restore: core %d stream %T is not checkpointable", c.id, c.stream)
		}
		// The config digest cannot see inside a custom Streams hook, so
		// the per-stream content fingerprint is what stops a checkpoint
		// saved under one trace from silently resuming under another.
		if got := seek.StreamFingerprint(); got != fp {
			return fmt.Errorf("sim: restore: core %d stream carries a different access sequence than the checkpoint", c.id)
		}
		if err := seek.SeekStream(pos); err != nil {
			return err
		}
	}
	return r.Err()
}

func writeAccess(w *snapshot.Writer, a mem.Access) {
	w.U64(uint64(a.PC))
	w.U64(uint64(a.Addr))
	w.U8(uint8(a.Type))
	w.U32(a.Work)
	w.U32(a.Chain)
}

func readAccess(r *snapshot.Reader) (mem.Access, error) {
	var a mem.Access
	a.PC = mem.PC(r.U64())
	a.Addr = mem.Addr(r.U64())
	t := r.U8()
	if r.Err() != nil {
		return a, r.Err()
	}
	if t > uint8(mem.Store) {
		return a, fmt.Errorf("sim: restore: bad access type %d", t)
	}
	a.Type = mem.AccessType(t)
	a.Work = r.U32()
	a.Chain = r.U32()
	return a, r.Err()
}

func writeStatsSnap(w *snapshot.Writer, sn snap) {
	w.U64(sn.cycles)
	w.Any(sn.dram)
	w.Any(sn.ctrl)
	w.Any(sn.llc)
	w.Any(sn.noc)
	w.Any(sn.prof)
	w.Any(sn.cnt)
}

func readStatsSnap(r *snapshot.Reader, sn *snap) error {
	sn.cycles = r.U64()
	r.AnyInto(&sn.dram)
	r.AnyInto(&sn.ctrl)
	r.AnyInto(&sn.llc)
	r.AnyInto(&sn.noc)
	r.AnyInto(&sn.prof)
	r.AnyInto(&sn.cnt)
	return r.Err()
}

func writeProfile(w *snapshot.Writer, p *Profile) {
	w.Section("profile")
	w.U32(uint32(p.regionShift))
	w.Any(p.ProfileCounters)
	readRegions := make([]mem.RegionAddr, 0, len(p.readGens))
	for r := range p.readGens {
		readRegions = append(readRegions, r)
	}
	sort.Slice(readRegions, func(i, j int) bool { return readRegions[i] < readRegions[j] })
	w.U32(uint32(len(readRegions)))
	for _, region := range readRegions {
		g := p.readGens[region]
		w.U64(uint64(region))
		w.U64(g.pattern)
		w.U64(g.reads)
	}
	writeRegions := make([]mem.RegionAddr, 0, len(p.writeGens))
	for r := range p.writeGens {
		writeRegions = append(writeRegions, r)
	}
	sort.Slice(writeRegions, func(i, j int) bool { return writeRegions[i] < writeRegions[j] })
	w.U32(uint32(len(writeRegions)))
	for _, region := range writeRegions {
		g := p.writeGens[region]
		w.U64(uint64(region))
		w.U64(g.dirtied)
		w.U64(g.writebacks)
		w.Bool(g.closed)
	}
}

func readProfile(r *snapshot.Reader, p *Profile) error {
	r.Section("profile")
	shift := r.U32()
	if r.Err() != nil {
		return r.Err()
	}
	if uint(shift) != p.regionShift {
		return fmt.Errorf("sim: restore: profile region shift %d, have %d", shift, p.regionShift)
	}
	r.AnyInto(&p.ProfileCounters)
	nRead := r.Len(8 * 3)
	if r.Err() != nil {
		return r.Err()
	}
	p.readGens = make(map[mem.RegionAddr]readGen, nRead)
	for i := 0; i < nRead; i++ {
		region := mem.RegionAddr(r.U64())
		p.readGens[region] = readGen{pattern: r.U64(), reads: r.U64()}
	}
	nWrite := r.Len(8*3 + 1)
	if r.Err() != nil {
		return r.Err()
	}
	p.writeGens = make(map[mem.RegionAddr]writeGen, nWrite)
	for i := 0; i < nWrite; i++ {
		region := mem.RegionAddr(r.U64())
		p.writeGens[region] = writeGen{dirtied: r.U64(), writebacks: r.U64(), closed: r.Bool()}
	}
	return r.Err()
}
