package sim

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"

	"bump/internal/scenario"
	"bump/internal/workload"
)

// The golden-state regression corpus: canonical warmup-end checkpoints
// and full-run results for three seed configurations, committed under
// testdata/golden/. Any change that perturbs simulator state — event
// ordering, counter accounting, predictor behaviour, RNG consumption —
// fails this test loudly at the byte level, which is a far stronger
// drift guard than output-level determinism checks.
//
// To regenerate after an *intentional* behaviour or format change:
//
//	go test ./internal/sim -run TestGoldenState -update
//
// and bump snapshot.FormatVersion if the byte layout changed.
var updateGolden = flag.Bool("update", false, "regenerate the golden-state corpus")

const goldenDir = "../../testdata/golden"

type goldenCase struct {
	name string
	cfg  Config
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{"bump-web-search", smallGolden(BuMP, workload.WebSearch(), 1)},
		{"sms-vwq-data-serving", smallGolden(SMSVWQ, workload.DataServing(), 2)},
		{"base-close-online-analytics", smallGolden(BaseClose, workload.OnlineAnalytics(), 3)},
		{"bump-scenario-swap", scenarioGolden(4)},
	}
}

// scenarioGolden drives the golden corpus' scenario entry: a two-core
// phase-swap with boundaries small enough that the warmup and
// measurement windows cross several of them, plus a task-bounded
// write-amplified phase on core 1.
func scenarioGolden(seed int64) Config {
	sc := scenario.Spec{Name: "golden-swap", Tenants: []scenario.Tenant{
		{Name: "swap", Cores: scenario.CoreRange{First: 0, Last: 0}, Repeat: true, Phases: []scenario.Phase{
			{Preset: "data-serving", Accesses: 1500},
			{Preset: "media-streaming", Accesses: 1000},
		}},
		{Name: "burst", Cores: scenario.CoreRange{First: 1, Last: 1}, Repeat: true, Phases: []scenario.Phase{
			{Preset: "web-search", Tasks: 80},
			{Preset: "data-serving", Tasks: 40, WriteScale: 2, LoadScale: 1.5},
		}},
	}}
	cfg := DefaultScenarioConfig(BuMP, sc)
	cfg.Cores = 2
	cfg.L1Bytes = 8 << 10
	cfg.LLCBytes = 128 << 10
	cfg.Seed = seed
	cfg.WarmupCycles = 40_000
	cfg.MeasureCycles = 80_000
	return cfg
}

// smallGolden keeps committed checkpoints small (a few hundred KB of
// state, tens of KB gzipped) while covering the predictor, SMS, VWQ,
// stride and close-row paths across the three cases.
func smallGolden(m Mechanism, w workload.Params, seed int64) Config {
	cfg := DefaultConfig(m, w)
	cfg.Cores = 2
	cfg.L1Bytes = 8 << 10
	cfg.LLCBytes = 128 << 10
	cfg.Seed = seed
	cfg.WarmupCycles = 40_000
	cfg.MeasureCycles = 80_000
	return cfg
}

// runGolden produces the case's warmup-end checkpoint and final result.
func runGolden(t *testing.T, cfg Config) ([]byte, Result) {
	t.Helper()
	s := mustNewSys(t, cfg)
	var ck bytes.Buffer
	res, err := s.RunWithHooks(Hooks{AtWarmupEnd: func() error { return s.Snapshot(&ck) }})
	if err != nil {
		t.Fatal(err)
	}
	return ck.Bytes(), res
}

func goldenPaths(name string) (snapPath, resultPath string) {
	return filepath.Join(goldenDir, name+".snap.gz"),
		filepath.Join(goldenDir, name+".result.json")
}

func marshalResult(t *testing.T, res Result) []byte {
	t.Helper()
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}

func TestGoldenState(t *testing.T) {
	for _, gc := range goldenCases() {
		t.Run(gc.name, func(t *testing.T) {
			snap, res := runGolden(t, gc.cfg)
			resJSON := marshalResult(t, res)
			snapPath, resultPath := goldenPaths(gc.name)

			if *updateGolden {
				if err := os.MkdirAll(goldenDir, 0o755); err != nil {
					t.Fatal(err)
				}
				var gz bytes.Buffer
				zw, _ := gzip.NewWriterLevel(&gz, gzip.BestCompression)
				if _, err := zw.Write(snap); err != nil {
					t.Fatal(err)
				}
				if err := zw.Close(); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(snapPath, gz.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(resultPath, resJSON, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("regenerated %s (%d bytes state, %d gz)", gc.name, len(snap), gz.Len())
				return
			}

			wantSnap := readGoldenSnap(t, snapPath)
			if !bytes.Equal(snap, wantSnap) {
				t.Errorf("%s: warmup-end machine state diverges from the committed golden checkpoint (%d vs %d bytes).\n"+
					"This PR changed simulator state evolution. If intentional, regenerate with:\n"+
					"  go test ./internal/sim -run TestGoldenState -update\n"+
					"and bump snapshot.FormatVersion if the byte layout changed.",
					gc.name, len(snap), len(wantSnap))
			}
			wantJSON, err := os.ReadFile(resultPath)
			if err != nil {
				t.Fatalf("missing golden result (run with -update to create): %v", err)
			}
			if !bytes.Equal(resJSON, wantJSON) {
				t.Errorf("%s: full-run result diverges from the committed golden result.\ngot:\n%s\nwant:\n%s",
					gc.name, resJSON, wantJSON)
			}
		})
	}
}

// TestGoldenCheckpointsRestorable: the committed checkpoints must load
// into freshly built systems and resume to the committed results —
// guarding the decode path (not just the encode path) against drift.
func TestGoldenCheckpointsRestorable(t *testing.T) {
	if *updateGolden {
		t.Skip("regenerating")
	}
	for _, gc := range goldenCases() {
		t.Run(gc.name, func(t *testing.T) {
			snapPath, resultPath := goldenPaths(gc.name)
			snap := readGoldenSnap(t, snapPath)
			s := mustNewSys(t, gc.cfg)
			if err := s.Restore(bytes.NewReader(snap)); err != nil {
				t.Fatalf("committed checkpoint no longer restores: %v", err)
			}
			res, err := s.RunWithHooks(Hooks{})
			if err != nil {
				t.Fatal(err)
			}
			wantJSON, err := os.ReadFile(resultPath)
			if err != nil {
				t.Fatal(err)
			}
			if got := marshalResult(t, res); !bytes.Equal(got, wantJSON) {
				t.Errorf("restored run result diverges from committed golden result.\ngot:\n%s\nwant:\n%s", got, wantJSON)
			}
		})
	}
}

func readGoldenSnap(t *testing.T, path string) []byte {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("missing golden checkpoint (run with -update to create): %v", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if err := zr.Close(); err != nil {
		t.Fatal(err)
	}
	return data
}

// TestGoldenCorpusCoversConfiguredMechanisms is a tripwire: if the
// golden cases rot (e.g. a mechanism rename), fail with a clear message
// rather than opaque file errors.
func TestGoldenCorpusCoversConfiguredMechanisms(t *testing.T) {
	seen := map[Mechanism]bool{}
	for _, gc := range goldenCases() {
		if err := gc.cfg.Validate(); err != nil {
			t.Fatalf("golden case %s invalid: %v", gc.name, err)
		}
		seen[gc.cfg.Mechanism] = true
	}
	for _, m := range []Mechanism{BuMP, SMSVWQ, BaseClose} {
		if !seen[m] {
			t.Errorf("golden corpus lost coverage of %s", m)
		}
	}
}
