package sim

import (
	"testing"

	"bump/internal/workload"
)

// fastConfig shrinks the measurement windows so integration tests stay
// quick while still exercising hundreds of thousands of events.
func fastConfig(m Mechanism, w workload.Params) Config {
	cfg := DefaultConfig(m, w)
	// A smaller LLC reaches write-back steady state within the short
	// warmup window.
	cfg.LLCBytes = 1 << 20
	cfg.WarmupCycles = 300_000
	cfg.MeasureCycles = 600_000
	return cfg
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig(BaseOpen, workload.WebSearch())
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config: %v", err)
	}
	bad := cfg
	bad.Cores = 0
	if _, err := New(bad); err == nil {
		t.Error("zero cores must fail")
	}
	bad = cfg
	bad.MeasureCycles = 0
	if _, err := New(bad); err == nil {
		t.Error("zero measure window must fail")
	}
	bad = cfg
	bad.Mechanism = Mechanism(99)
	if _, err := New(bad); err == nil {
		t.Error("unknown mechanism must fail")
	}
	bad = cfg
	bad.Workload.OpenTasks = 0
	if _, err := New(bad); err == nil {
		t.Error("invalid workload must fail")
	}
}

func TestMechanismStrings(t *testing.T) {
	want := map[Mechanism]string{
		BaseClose: "base-close", BaseOpen: "base-open", SMSOnly: "sms",
		VWQOnly: "vwq", SMSVWQ: "sms+vwq", FullRegion: "full-region", BuMP: "bump",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), s)
		}
	}
	if Mechanism(42).String() == "" {
		t.Error("unknown mechanism must render")
	}
	if len(Mechanisms()) != 7 {
		t.Error("seven mechanisms expected")
	}
}

func TestBaselineRunProducesActivity(t *testing.T) {
	r, err := RunOne(fastConfig(BaseOpen, workload.WebSearch()))
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles != 600_000 {
		t.Errorf("Cycles = %d", r.Cycles)
	}
	if r.Instructions == 0 || r.IPC() <= 0 {
		t.Error("no instructions retired")
	}
	if r.MemoryAccesses() == 0 {
		t.Error("no DRAM accesses")
	}
	if r.DRAM.ReadBursts == 0 || r.DRAM.WriteBursts == 0 {
		t.Errorf("missing reads/writes: %+v", r.DRAM)
	}
	if r.Profile.Reads() == 0 || r.Profile.Writes == 0 {
		t.Error("profiler saw no traffic")
	}
	if r.Energy.Total() <= 0 {
		t.Error("no energy accounted")
	}
	if r.EPATotal <= 0 {
		t.Error("no per-access energy")
	}
	// Sanity: writes are a significant minority of traffic (Fig. 3).
	wf := float64(r.Profile.Writes) / float64(r.Profile.Accesses())
	if wf < 0.10 || wf > 0.50 {
		t.Errorf("write fraction %.2f out of range", wf)
	}
}

func TestCloseRowHasZeroHits(t *testing.T) {
	r, err := RunOne(fastConfig(BaseClose, workload.WebSearch()))
	if err != nil {
		t.Fatal(err)
	}
	if r.DRAM.RowHits != 0 {
		t.Errorf("close-row policy produced %d row hits", r.DRAM.RowHits)
	}
}

func TestBuMPImprovesOverBaseline(t *testing.T) {
	base, err := RunOne(fastConfig(BaseOpen, workload.WebSearch()))
	if err != nil {
		t.Fatal(err)
	}
	bmp, err := RunOne(fastConfig(BuMP, workload.WebSearch()))
	if err != nil {
		t.Fatal(err)
	}
	if bmp.RowHitRatio() <= base.RowHitRatio()+0.1 {
		t.Errorf("BuMP hit %.2f must clearly beat baseline %.2f",
			bmp.RowHitRatio(), base.RowHitRatio())
	}
	if bmp.EPATotal >= base.EPATotal {
		t.Errorf("BuMP energy/access %.2g must beat baseline %.2g",
			bmp.EPATotal, base.EPATotal)
	}
	if bmp.IPC() <= base.IPC() {
		t.Errorf("BuMP IPC %.2f must beat baseline %.2f", bmp.IPC(), base.IPC())
	}
	if bmp.ReadCoverage() < 0.2 {
		t.Errorf("read coverage %.2f implausibly low", bmp.ReadCoverage())
	}
	if bmp.WriteCoverage() < 0.3 {
		t.Errorf("write coverage %.2f implausibly low", bmp.WriteCoverage())
	}
	if bmp.Counters.BulkReads == 0 || bmp.Counters.EagerWrites == 0 {
		t.Error("BuMP issued no bulk transfers")
	}
	st := bmp.Counters
	if st.LateBulkReads == 0 {
		t.Log("note: no late bulk reads observed (all fills timely)")
	}
	_ = st
}

func TestFullRegionOverfetches(t *testing.T) {
	fr, err := RunOne(fastConfig(FullRegion, workload.DataServing()))
	if err != nil {
		t.Fatal(err)
	}
	bmp, err := RunOne(fastConfig(BuMP, workload.DataServing()))
	if err != nil {
		t.Fatal(err)
	}
	if fr.ReadOverfetch() <= 2*bmp.ReadOverfetch() {
		t.Errorf("Full-region overfetch %.2f must far exceed BuMP %.2f",
			fr.ReadOverfetch(), bmp.ReadOverfetch())
	}
	if fr.IPC() >= bmp.IPC() {
		t.Errorf("Full-region IPC %.2f must trail BuMP %.2f (bandwidth saturation)",
			fr.IPC(), bmp.IPC())
	}
}

func TestSMSAndVWQLandBetweenBaseAndBuMP(t *testing.T) {
	w := workload.WebServing()
	base, _ := RunOne(fastConfig(BaseOpen, w))
	sms, _ := RunOne(fastConfig(SMSOnly, w))
	vwq, _ := RunOne(fastConfig(VWQOnly, w))
	bmp, _ := RunOne(fastConfig(BuMP, w))
	if sms.RowHitRatio() <= base.RowHitRatio() {
		t.Errorf("SMS hit %.2f must beat base %.2f", sms.RowHitRatio(), base.RowHitRatio())
	}
	if vwq.RowHitRatio() <= base.RowHitRatio() {
		t.Errorf("VWQ hit %.2f must beat base %.2f", vwq.RowHitRatio(), base.RowHitRatio())
	}
	if bmp.RowHitRatio() <= sms.RowHitRatio() || bmp.RowHitRatio() <= vwq.RowHitRatio() {
		t.Errorf("BuMP %.2f must beat SMS %.2f and VWQ %.2f",
			bmp.RowHitRatio(), sms.RowHitRatio(), vwq.RowHitRatio())
	}
	// VWQ improves write locality specifically.
	if vwq.WriteCoverage() == 0 {
		t.Error("VWQ must generate eager writebacks")
	}
	if sms.WriteCoverage() != 0 {
		t.Error("SMS must not generate eager writebacks")
	}
}

func TestIdealBoundsEveryone(t *testing.T) {
	w := workload.OnlineAnalytics()
	base, _ := RunOne(fastConfig(BaseOpen, w))
	bmp, _ := RunOne(fastConfig(BuMP, w))
	ideal := base.Profile.IdealHitRatio()
	if ideal <= base.RowHitRatio() {
		t.Errorf("ideal %.2f must exceed baseline %.2f", ideal, base.RowHitRatio())
	}
	// BuMP recovers a large share of, but not more than, ideal locality
	// (small tolerance for run-to-run variation between configs).
	if bmp.RowHitRatio() > ideal+0.12 {
		t.Errorf("BuMP %.2f exceeds ideal %.2f", bmp.RowHitRatio(), ideal)
	}
}

func TestDeterministicResults(t *testing.T) {
	a, _ := RunOne(fastConfig(BuMP, workload.WebSearch()))
	b, _ := RunOne(fastConfig(BuMP, workload.WebSearch()))
	if a.DRAM != b.DRAM || a.Instructions != b.Instructions || a.Counters != b.Counters {
		t.Error("identical configs must produce identical results")
	}
	c := fastConfig(BuMP, workload.WebSearch())
	c.Seed = 99
	r3, _ := RunOne(c)
	if r3.DRAM == a.DRAM {
		t.Error("different seeds should perturb results")
	}
}

func TestDensityProfilerShape(t *testing.T) {
	r, _ := RunOne(fastConfig(BaseOpen, workload.MediaStreaming()))
	p := r.Profile
	if got := p.HighDensityReadFraction(); got < 0.5 {
		t.Errorf("media streaming high-density reads %.2f, want majority", got)
	}
	if got := p.HighDensityWriteFraction(); got < 0.5 {
		t.Errorf("media streaming high-density writes %.2f, want majority", got)
	}
	if p.ReadGenerations == 0 || p.WriteEpochs == 0 {
		t.Error("profiler recorded no generations")
	}
	if lf := p.LateWriteFraction(); lf > 0.25 {
		t.Errorf("late writes %.2f should be small (Table I)", lf)
	}
}

func TestStoreTriggeredReadsTracked(t *testing.T) {
	r, _ := RunOne(fastConfig(BaseOpen, workload.WebServing()))
	if r.Profile.StoreReads == 0 {
		t.Error("store-triggered reads must appear (Fig. 3)")
	}
	frac := float64(r.Profile.StoreReads) / float64(r.Profile.Reads())
	if frac < 0.05 || frac > 0.7 {
		t.Errorf("store-read fraction %.2f out of range", frac)
	}
}

func TestBuMPPredictorWired(t *testing.T) {
	s, err := New(fastConfig(BuMP, workload.WebSearch()))
	if err != nil {
		t.Fatal(err)
	}
	if s.Predictor() == nil {
		t.Fatal("BuMP system must expose its predictor")
	}
	s.Run()
	ps := s.Predictor().Stats()
	if ps.HighDensityRegions == 0 || ps.BHTHits == 0 || ps.BulkReads == 0 {
		t.Errorf("predictor saw no action: %+v", ps)
	}
	base, _ := New(fastConfig(BaseOpen, workload.WebSearch()))
	if base.Predictor() != nil {
		t.Error("baseline must not have a predictor")
	}
}

func TestDesignSpaceConfigsRun(t *testing.T) {
	// Fig. 11's region-size/threshold grid must all be runnable.
	for _, shift := range []uint{9, 10, 11} {
		blocks := uint(1) << (shift - 6)
		for _, pct := range []uint{25, 50, 100} {
			cfg := fastConfig(BuMP, workload.WebSearch())
			cfg.MeasureCycles = 200_000
			cfg.BuMP.RegionShift = shift
			cfg.BuMP.DensityThreshold = blocks * pct / 100
			if cfg.BuMP.DensityThreshold == 0 {
				cfg.BuMP.DensityThreshold = 1
			}
			r, err := RunOne(cfg)
			if err != nil {
				t.Fatalf("shift %d pct %d: %v", shift, pct, err)
			}
			if r.MemoryAccesses() == 0 {
				t.Errorf("shift %d pct %d: no traffic", shift, pct)
			}
		}
	}
}

func TestDensityClassStrings(t *testing.T) {
	if LowDensity.String() != "low" || MediumDensity.String() != "medium" || HighDensity.String() != "high" {
		t.Error("density class strings")
	}
	if classify(3, 16) != LowDensity || classify(4, 16) != MediumDensity || classify(8, 16) != HighDensity {
		t.Error("classification boundaries (Fig. 5: <25%, 25-50%, >=50%)")
	}
}

func TestBuMPVWQExtension(t *testing.T) {
	w := workload.WebServing()
	bm, err := RunOne(fastConfig(BuMP, w))
	if err != nil {
		t.Fatal(err)
	}
	bv, err := RunOne(fastConfig(BuMPVWQ, w))
	if err != nil {
		t.Fatal(err)
	}
	// The combination must add write coverage over plain BuMP (VWQ
	// catches the non-high-density dirty evictions).
	if bv.WriteCoverage() <= bm.WriteCoverage() {
		t.Errorf("BuMP+VWQ write coverage %.2f must exceed BuMP %.2f",
			bv.WriteCoverage(), bm.WriteCoverage())
	}
	if BuMPVWQ.String() != "bump+vwq" {
		t.Error("mechanism name")
	}
}

func TestNOCPCTransportOnlyForBuMP(t *testing.T) {
	base, _ := RunOne(fastConfig(BaseOpen, workload.WebSearch()))
	bmp, _ := RunOne(fastConfig(BuMP, workload.WebSearch()))
	if base.NOC.PCMsgs != 0 {
		t.Error("baseline requests must not carry the PC")
	}
	if bmp.NOC.PCMsgs == 0 {
		t.Error("BuMP requests must carry the PC (Fig. 12 overhead)")
	}
	if bmp.NOC.PCMsgs != bmp.NOC.ControlMsgs {
		t.Error("every BuMP request message carries the PC")
	}
}

func TestRefreshOccursInLongRuns(t *testing.T) {
	cfg := fastConfig(BaseOpen, workload.WebSearch())
	r, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 600k CPU cycles = 200k memory cycles = ~32 tREFI intervals per
	// touched rank.
	if r.DRAM.Refreshes == 0 {
		t.Error("refreshes must occur during a full run")
	}
}

// Conservation: DRAM reads equal demand + bulk + prefetch reads issued
// (modulo transactions still in flight at the snapshot boundaries), and
// writes equal demand + eager writebacks.
func TestTrafficConservation(t *testing.T) {
	for _, m := range []Mechanism{BaseOpen, BuMP, VWQOnly} {
		r, err := RunOne(fastConfig(m, workload.OnlineAnalytics()))
		if err != nil {
			t.Fatal(err)
		}
		issuedReads := r.Counters.DemandReads + r.Counters.BulkReads + r.Counters.PrefetchReads
		slackR := float64(r.DRAM.ReadBursts) / float64(issuedReads)
		if slackR < 0.9 || slackR > 1.1 {
			t.Errorf("%v: DRAM reads %d vs issued %d", m, r.DRAM.ReadBursts, issuedReads)
		}
		issuedWrites := r.Counters.DemandWrites + r.Counters.EagerWrites
		slackW := float64(r.DRAM.WriteBursts) / float64(issuedWrites)
		if slackW < 0.85 || slackW > 1.15 {
			t.Errorf("%v: DRAM writes %d vs issued %d", m, r.DRAM.WriteBursts, issuedWrites)
		}
	}
}

func TestFootprintSystemRuns(t *testing.T) {
	cfg := fastConfig(BuMP, workload.WebSearch())
	cfg.BuMP.Footprint = true
	fp, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	whole, _ := RunOne(fastConfig(BuMP, workload.WebSearch()))
	// Footprint streaming must not overfetch more than whole-region.
	if fp.ReadOverfetch() > whole.ReadOverfetch()+0.02 {
		t.Errorf("footprint overfetch %.3f must not exceed whole-region %.3f",
			fp.ReadOverfetch(), whole.ReadOverfetch())
	}
	if fp.Counters.BulkReads == 0 {
		t.Error("footprint mode must still stream")
	}
}

func TestFairnessCapSystemRuns(t *testing.T) {
	cfg := fastConfig(BuMP, workload.WebSearch())
	cfg.MaxRowHitStreak = 4
	capped, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if capped.MemoryAccesses() == 0 {
		t.Fatal("capped run produced no traffic")
	}
	uncapped, _ := RunOne(fastConfig(BuMP, workload.WebSearch()))
	// The cap can only reduce (or match) the row-hit ratio.
	if capped.RowHitRatio() > uncapped.RowHitRatio()+0.05 {
		t.Errorf("cap raised hit ratio: %.3f vs %.3f", capped.RowHitRatio(), uncapped.RowHitRatio())
	}
}

func TestLoadLatencyTracking(t *testing.T) {
	base, err := RunOne(fastConfig(BaseOpen, workload.WebSearch()))
	if err != nil {
		t.Fatal(err)
	}
	if base.LoadLatencyN == 0 {
		t.Fatal("no load latencies sampled")
	}
	// Round trips include at least NOC out + LLC + NOC back.
	if base.LoadLatencyMean < 18 {
		t.Errorf("mean load latency %.1f implausibly low", base.LoadLatencyMean)
	}
	if base.LoadLatencyP95 < base.LoadLatencyMean {
		t.Error("P95 below the mean")
	}
	// BuMP turns misses into LLC hits: mean demand-load latency drops.
	bmp, _ := RunOne(fastConfig(BuMP, workload.WebSearch()))
	if bmp.LoadLatencyMean >= base.LoadLatencyMean {
		t.Errorf("BuMP load latency %.1f must beat baseline %.1f",
			bmp.LoadLatencyMean, base.LoadLatencyMean)
	}
}
