package sim

import (
	"runtime"
	"sync"

	"bump/internal/stats"
)

// RunSeeds runs the configuration once per seed, in parallel, and returns
// the per-seed results in seed order. This reproduces the paper's
// measurement discipline (SMARTS sampling at 95% confidence) in a
// deterministic form: each seed is an independent sample of the workload.
func RunSeeds(cfg Config, seeds []int64) ([]Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	results := make([]Result, len(seeds))
	errs := make([]error, len(seeds))
	// A counting semaphore caps in-flight simulations at the CPU count
	// (GOMAXPROCS respects user/cgroup limits), so arbitrarily large seed
	// sweeps never oversubscribe the machine.
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := range seeds {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			c := cfg
			c.Seed = seeds[i]
			results[i], errs[i] = RunOne(c)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Aggregate summarises the headline metrics of a multi-seed run with 95%
// confidence half-widths.
type Aggregate struct {
	N int

	RowHitRatio, RowHitRatioCI   float64
	IPC, IPCCI                   float64
	EPATotal, EPATotalCI         float64
	ReadCoverage, ReadCoverageCI float64
}

// Aggregate computes the summary over per-seed results.
func AggregateResults(rs []Result) Aggregate {
	var hit, ipc, epa, cov []float64
	for _, r := range rs {
		hit = append(hit, r.RowHitRatio())
		ipc = append(ipc, r.IPC())
		epa = append(epa, r.EPATotal)
		cov = append(cov, r.ReadCoverage())
	}
	var a Aggregate
	a.N = len(rs)
	a.RowHitRatio, a.RowHitRatioCI = stats.MeanCI95(hit)
	a.IPC, a.IPCCI = stats.MeanCI95(ipc)
	a.EPATotal, a.EPATotalCI = stats.MeanCI95(epa)
	a.ReadCoverage, a.ReadCoverageCI = stats.MeanCI95(cov)
	return a
}
