package sim

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"bump/internal/scenario"
	"bump/internal/workload"
)

// testSwapSpec: two tenants swapping data-serving and media-streaming on
// access-count boundaries small enough that a test window crosses many
// of them.
func testSwapSpec() scenario.Spec {
	return scenario.Spec{Name: "test-swap", Tenants: []scenario.Tenant{
		{Name: "a", Cores: scenario.CoreRange{First: 0, Last: 1}, Repeat: true, Phases: []scenario.Phase{
			{Preset: "data-serving", Accesses: 2000},
			{Preset: "media-streaming", Accesses: 1500},
		}},
		{Name: "b", Cores: scenario.CoreRange{First: 2, Last: 3}, Repeat: true, Phases: []scenario.Phase{
			{Preset: "media-streaming", Accesses: 1500},
			{Preset: "data-serving", Accesses: 2000},
		}},
	}}
}

// testBurstSpec mixes duration kinds: a non-repeating steady tenant with
// an open-ended tail, and a task-bounded bursty tenant with load ramps.
func testBurstSpec() scenario.Spec {
	return scenario.Spec{Name: "test-burst", Tenants: []scenario.Tenant{
		{Name: "steady", Cores: scenario.CoreRange{First: 0, Last: 2}, Phases: []scenario.Phase{
			{Preset: "web-search", Accesses: 2500},
			{Preset: "web-serving"},
		}},
		{Name: "burst", Cores: scenario.CoreRange{First: 3, Last: 3}, Repeat: true, Phases: []scenario.Phase{
			{Preset: "web-search", Tasks: 120},
			{Preset: "data-serving", Tasks: 60, WriteScale: 2, LoadScale: 1.5},
		}},
	}}
}

// smallScenarioConfig mirrors smallConfig for scenario-driven runs.
func smallScenarioConfig(m Mechanism, sc scenario.Spec, seed int64) Config {
	cfg := DefaultScenarioConfig(m, sc)
	cfg.Cores = 4
	cfg.L1Bytes = 16 << 10
	cfg.LLCBytes = 256 << 10
	cfg.Seed = seed
	cfg.WarmupCycles = 60_000
	cfg.MeasureCycles = 120_000
	return cfg
}

// TestScenarioSnapshotRestoreBitIdentical is the scenario acceptance
// test: a scenario run checkpointed at an arbitrary mid-phase cycle and
// restored produces bit-identical results — and bit-identical final
// machine state — to the uninterrupted run, across two scenarios and
// randomized split points in the warmup, at the boundary, and in the
// measurement window.
func TestScenarioSnapshotRestoreBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("differential snapshot test is not short")
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"bump/test-swap", smallScenarioConfig(BuMP, testSwapSpec(), 1)},
		{"sms+vwq/test-burst", smallScenarioConfig(SMSVWQ, testBurstSpec(), 2)},
	}
	rng := rand.New(rand.NewSource(1234))
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			total := tc.cfg.WarmupCycles + tc.cfg.MeasureCycles

			ref := mustNewSys(t, tc.cfg)
			refRes, err := ref.RunWithHooks(Hooks{})
			if err != nil {
				t.Fatal(err)
			}
			refFinal := snapBytes(t, ref)

			splits := []uint64{
				uint64(rng.Int63n(int64(tc.cfg.WarmupCycles))),
				tc.cfg.WarmupCycles,
				tc.cfg.WarmupCycles + uint64(rng.Int63n(int64(tc.cfg.MeasureCycles-1))) + 1,
			}
			for _, split := range splits {
				if split >= total {
					split = total - 1
				}
				data := runSplit(t, tc.cfg, split, 1+uint64(rng.Int63n(5000)))

				restored := mustNewSys(t, tc.cfg)
				if err := restored.Restore(bytes.NewReader(data)); err != nil {
					t.Fatalf("split %d: restore: %v", split, err)
				}
				res, err := restored.RunWithHooks(Hooks{})
				if err != nil {
					t.Fatalf("split %d: continue: %v", split, err)
				}
				if !reflect.DeepEqual(res, refRes) {
					t.Fatalf("split %d: restored scenario result diverges:\n got %+v\nwant %+v", split, res, refRes)
				}
				if final := snapBytes(t, restored); !bytes.Equal(final, refFinal) {
					t.Fatalf("split %d: final machine state diverges from uninterrupted scenario run", split)
				}
			}
		})
	}
}

// TestScenarioRestoreRejectsSpecChanges: the structural digest covers
// the scenario spec, so a checkpoint can never restore under a modified
// scenario — a tweaked duration, ramp, preset or tenant layout.
func TestScenarioRestoreRejectsSpecChanges(t *testing.T) {
	cfg := smallScenarioConfig(BuMP, testSwapSpec(), 3)
	data := runSplit(t, cfg, cfg.WarmupCycles/2, 4096)

	variants := map[string]func(*scenario.Spec){
		"duration": func(s *scenario.Spec) { s.Tenants[0].Phases[0].Accesses = 2001 },
		"preset":   func(s *scenario.Spec) { s.Tenants[0].Phases[1].Preset = "web-search" },
		"ramp":     func(s *scenario.Spec) { s.Tenants[1].Phases[0].WorkScale = 1.25 },
		"layout": func(s *scenario.Spec) {
			s.Tenants[0].Cores.Last = 2
			s.Tenants[1].Cores.First = 3
		},
		"name": func(s *scenario.Spec) { s.Name = "renamed" },
	}
	for name, mutate := range variants {
		sc := testSwapSpec()
		mutate(&sc)
		bad := smallScenarioConfig(BuMP, sc, 3)
		s := mustNewSys(t, bad)
		if err := s.Restore(bytes.NewReader(data)); err == nil {
			t.Errorf("scenario variant %q accepted a foreign checkpoint", name)
		}
	}
	// The unmodified scenario still restores.
	s := mustNewSys(t, cfg)
	if err := s.Restore(bytes.NewReader(runSplit(t, cfg, cfg.WarmupCycles/2, 4096))); err != nil {
		t.Fatalf("identical scenario rejected: %v", err)
	}
}

// TestScenarioWarmSweepOneWarmup is the warmed-sweep acceptance for
// scenarios: a multi-point sweep over a measured parameter under a
// scenario simulates exactly one warmup, and the canonical point is
// bit-identical to its cold run.
func TestScenarioWarmSweepOneWarmup(t *testing.T) {
	cfg := smallScenarioConfig(BuMP, testSwapSpec(), 5)
	cold, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWarmStore(4)
	const points = 5
	results := make([]Result, points)
	for i := 0; i < points; i++ {
		c := cfg
		c.MaxRowHitStreak = i
		if results[i], err = ws.Run(c); err != nil {
			t.Fatal(err)
		}
	}
	st := ws.Stats()
	if st.Misses != 1 || st.Hits != points-1 || st.Skipped != 0 {
		t.Fatalf("scenario warm sweep: %+v, want 1 miss / %d hits / 0 skipped", st, points-1)
	}
	if st.WarmupCyclesSimulated != cfg.WarmupCycles {
		t.Fatalf("simulated %d warmup cycles, want exactly one warmup (%d)", st.WarmupCyclesSimulated, cfg.WarmupCycles)
	}
	if !reflect.DeepEqual(results[0], cold) {
		t.Fatal("canonical scenario point diverges from cold run")
	}
}

// TestScenarioConfigValidation: the scenario/workload/streams exclusivity
// rules, and the workload label.
func TestScenarioConfigValidation(t *testing.T) {
	cfg := smallScenarioConfig(BuMP, testSwapSpec(), 1)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid scenario config rejected: %v", err)
	}
	if got := cfg.WorkloadLabel(); got != "scenario:test-swap" {
		t.Errorf("WorkloadLabel = %q", got)
	}

	withWorkload := cfg
	withWorkload.Workload = workload.WebSearch()
	if withWorkload.Validate() == nil {
		t.Error("scenario config with a non-zero Workload accepted")
	}
	withStreams := cfg
	withStreams.Streams = func(core int) workload.Stream {
		g, _ := workload.NewGenerator(workload.WebSearch(), 1)
		return g
	}
	if withStreams.Validate() == nil {
		t.Error("scenario config with a Streams hook accepted")
	}
	tooFewCores := cfg
	tooFewCores.Cores = 2 // spec claims cores 0-3
	if tooFewCores.Validate() == nil {
		t.Error("scenario exceeding the core count accepted")
	}

	// Scenario results are labelled with the scenario name.
	res, err := RunOne(Config{}) // invalid, must error not panic
	_ = res
	if err == nil {
		t.Error("zero config accepted")
	}
}
