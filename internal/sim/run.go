package sim

import (
	"errors"
	"time"

	"bump/internal/cache"
	"bump/internal/dram"
	"bump/internal/energy"
	"bump/internal/memctrl"
	"bump/internal/noc"
	"bump/internal/stats"
)

// ErrCanceled is returned by RunWithHooks when the Cancel hook reports
// that the run should stop (job cancellation, timeout, shutdown).
var ErrCanceled = errors.New("sim: run canceled")

// Result holds the measurement-window deltas and derived metrics of one
// run.
type Result struct {
	Mechanism Mechanism
	Workload  string

	Cycles       uint64
	Instructions uint64
	// Events is the total number of discrete events the engine dispatched
	// over the whole run (warmup + measurement) — the simulator's own
	// unit of work, used for engine-throughput tracking.
	Events uint64

	DRAM     dram.Stats
	Ctrl     memctrl.Stats
	LLC      cache.Stats
	NOC      noc.Stats
	Profile  ProfileCounters
	Counters Counters

	// Load latency (cycles): demand-load round trips inside the window.
	LoadLatencyMean float64
	LoadLatencyP95  float64
	LoadLatencyN    int

	Energy energy.Breakdown
	// Energy-per-access components (Fig. 9/13): joules per DRAM access.
	EPATotal      float64
	EPAActivation float64
	EPABurstIO    float64
}

// IPC returns the aggregate committed instructions per cycle — the
// paper's system-throughput metric (Section V.A).
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// RowHitRatio returns the DRAM row-buffer hit ratio (Fig. 2, Table IV).
func (r Result) RowHitRatio() float64 { return r.DRAM.HitRatio() }

// usefulReads is the Fig. 8 denominator: DRAM reads that served the
// processor — demand fetches, late (merged) bulk fills, and timely
// predicted fills.
func (r Result) usefulReads() uint64 {
	return r.Counters.DemandReads + r.Counters.LateBulkReads + r.LLC.PrefetchUsed
}

// ReadCoverage returns the fraction of useful DRAM reads that were
// predicted — fetched by a bulk/prefetch fill *before* the processor
// asked (Fig. 8 left, "Predicted").
func (r Result) ReadCoverage() float64 {
	return stats.Ratio(r.LLC.PrefetchUsed, r.usefulReads())
}

// ReadOverfetch returns overfetched fills (never referenced before
// eviction) relative to useful reads — Fig. 8 left, "Overfetch".
func (r Result) ReadOverfetch() float64 {
	return stats.Ratio(r.LLC.PrefetchUnused, r.usefulReads())
}

// WriteCoverage returns the fraction of DRAM writes issued eagerly (bulk
// writeback) — Fig. 8 right, "Predicted".
func (r Result) WriteCoverage() float64 {
	total := r.Counters.DemandWrites + r.Counters.EagerWrites
	return stats.Ratio(r.Counters.EagerWrites, total)
}

// ExtraWritebacks returns premature writebacks relative to all writes —
// Fig. 8 right, "Extra writebacks".
func (r Result) ExtraWritebacks() float64 {
	total := r.Counters.DemandWrites + r.Counters.EagerWrites
	return stats.Ratio(r.Counters.PrematureWrites, total)
}

// LLCTraffic returns the LLC operation count (lookups + fills + probe
// scans), the Fig. 12 traffic metric.
func (r Result) LLCTraffic() uint64 {
	return r.LLC.Lookups + r.LLC.Fills + r.Counters.LLCProbes
}

// NOCTrafficBytes returns crossbar traffic in bytes: 8B control, 72B
// data (block + header), 8B extra per PC-carrying request (Fig. 12).
func (r Result) NOCTrafficBytes() uint64 {
	return 8*r.NOC.ControlMsgs + 72*r.NOC.DataMsgs + 8*r.NOC.PCMsgs
}

// MemoryAccesses returns total DRAM accesses in the window.
func (r Result) MemoryAccesses() uint64 { return r.DRAM.Accesses() }

func subCache(a, b cache.Stats) cache.Stats {
	return cache.Stats{
		Lookups:        a.Lookups - b.Lookups,
		Hits:           a.Hits - b.Hits,
		Misses:         a.Misses - b.Misses,
		Fills:          a.Fills - b.Fills,
		Evictions:      a.Evictions - b.Evictions,
		DirtyEvicts:    a.DirtyEvicts - b.DirtyEvicts,
		PrefetchUnused: a.PrefetchUnused - b.PrefetchUnused,
		PrefetchUsed:   a.PrefetchUsed - b.PrefetchUsed,
	}
}

func subDRAM(a, b dram.Stats) dram.Stats {
	return dram.Stats{
		Activations:  a.Activations - b.Activations,
		ReadBursts:   a.ReadBursts - b.ReadBursts,
		WriteBursts:  a.WriteBursts - b.WriteBursts,
		RowHits:      a.RowHits - b.RowHits,
		RowClosed:    a.RowClosed - b.RowClosed,
		RowConflicts: a.RowConflicts - b.RowConflicts,
		Refreshes:    a.Refreshes - b.Refreshes,
		BusyCycles:   a.BusyCycles - b.BusyCycles,
	}
}

func subCtrl(a, b memctrl.Stats) memctrl.Stats {
	return memctrl.Stats{
		Reads:           a.Reads - b.Reads,
		Writes:          a.Writes - b.Writes,
		ReadQueueDelay:  a.ReadQueueDelay - b.ReadQueueDelay,
		WriteQueueDelay: a.WriteQueueDelay - b.WriteQueueDelay,
		WriteDrains:     a.WriteDrains - b.WriteDrains,
		MaxQueue:        a.MaxQueue,
	}
}

func subNOC(a, b noc.Stats) noc.Stats {
	return noc.Stats{
		ControlMsgs: a.ControlMsgs - b.ControlMsgs,
		DataMsgs:    a.DataMsgs - b.DataMsgs,
		PCMsgs:      a.PCMsgs - b.PCMsgs,
	}
}

func subCounters(a, b Counters) Counters {
	return Counters{
		DemandReads:     a.DemandReads - b.DemandReads,
		LateBulkReads:   a.LateBulkReads - b.LateBulkReads,
		BulkReads:       a.BulkReads - b.BulkReads,
		PrefetchReads:   a.PrefetchReads - b.PrefetchReads,
		DemandWrites:    a.DemandWrites - b.DemandWrites,
		EagerWrites:     a.EagerWrites - b.EagerWrites,
		PrematureWrites: a.PrematureWrites - b.PrematureWrites,
		LLCProbes:       a.LLCProbes - b.LLCProbes,
		Instructions:    a.Instructions - b.Instructions,
		WindowStalls:    a.WindowStalls - b.WindowStalls,
		MSHRStalls:      a.MSHRStalls - b.MSHRStalls,
		ChainStalls:     a.ChainStalls - b.ChainStalls,
	}
}

type snap struct {
	cycles uint64
	dram   dram.Stats
	ctrl   memctrl.Stats
	llc    cache.Stats
	noc    noc.Stats
	prof   ProfileCounters
	cnt    Counters
}

func (s *System) statsSnapshot() snap {
	c := s.counters
	c.Instructions = 0
	for _, cr := range s.cores {
		c.Instructions += cr.instructions
	}
	return snap{
		cycles: s.eng.Now(),
		dram:   s.dram.Stats(),
		ctrl:   s.mc.Stats(),
		llc:    s.llc.Stats(),
		noc:    s.xbar.Stats(),
		prof:   s.prof.ProfileCounters,
		cnt:    c,
	}
}

// Progress is a periodic mid-run engine snapshot delivered to a
// Hooks.Progress observer (the service layer streams these to clients).
type Progress struct {
	// Cycle and TotalCycles locate the run: Cycle advances from 0 to
	// TotalCycles (= warmup + measurement window).
	Cycle       uint64
	TotalCycles uint64
	// Events is the cumulative count of engine events dispatched so far.
	Events uint64
	// Instructions is the cumulative committed instruction count across
	// all cores (warmup included).
	Instructions uint64
	// Measuring is true once the warmup window has completed.
	Measuring bool
}

// Hooks attaches observation and control to a run. The zero value runs
// each window in a single uninterrupted chunk, exactly like Run.
type Hooks struct {
	// Interval is the cycle stride between hook invocations; 0 picks
	// 1/64 of the run when an observer is attached.
	Interval uint64
	// Progress, if non-nil, is called after every interval with the
	// current engine snapshot. It runs on the simulation goroutine, so
	// it must not block.
	Progress func(Progress)
	// Cancel, if non-nil, is polled at every interval; returning true
	// aborts the run with ErrCanceled.
	Cancel func() bool
	// AtWarmupEnd, if non-nil, runs exactly once per system, at the
	// cycle the warmup window completes (immediately after the
	// measurement baseline is captured). The checkpointing layers use it
	// to snapshot warmed state. Returning an error aborts the run. It is
	// not invoked on systems restored at or past the warmup boundary —
	// their baseline was captured before the checkpoint.
	AtWarmupEnd func() error
	// AtCycles lists absolute engine cycles (sorted ascending, each
	// inside the measurement window) at which AtCycle fires — the
	// checkpoint-tree cut points. Cycles the system is already at or
	// past are skipped: a restored system resumes beyond its own cut.
	AtCycles []uint64
	// AtCycle, if non-nil, runs when the engine reaches each AtCycles
	// entry, after every event before the cut has dispatched and before
	// any event at or after it. The checkpoint tree uses it to snapshot
	// trunk state mid-measurement. Returning an error aborts the run.
	AtCycle func(cycle uint64) error
	// Parallel, if non-nil, receives the parallel runner's execution
	// statistics when a run with Config.Workers > 1 finishes (including
	// canceled runs). Never called for sequential runs. The numbers
	// describe the execution, not the simulated machine, which is why
	// they are not part of Result.
	Parallel func(ParallelStats)
	// Phase, if non-nil, receives coarse wall-clock phase timings: the
	// engine calls it a handful of times per run (never inside the event
	// loop) with the phase name and its start/end instants. The
	// observability layer feeds these to the per-job span recorder and
	// the phase-latency histograms. Phase names emitted by the engine:
	// "warmup", "measure", "encode"; the warm store adds "warm.resolve",
	// "restore" and "trunk.extend". A nil hook costs nothing — the hot
	// path stays allocation-free (bench-guarded by
	// TestTracingDisabledAddsNoAllocs).
	Phase func(name string, start, end time.Time)
}

// stride returns the chunk size for hooked runs over `total` cycles.
func (h Hooks) stride(total uint64) uint64 {
	if h.Progress == nil && h.Cancel == nil {
		return total // unobserved: one chunk per window
	}
	if h.Interval > 0 {
		return h.Interval
	}
	if step := total / 64; step > 0 {
		return step
	}
	return 1
}

// runUntil advances the engine to `target` in hook-interval chunks,
// invoking the progress and cancellation hooks between chunks. Chunked
// execution dispatches the exact same event sequence as a single
// eng.Run(target) call, so hooked and unhooked runs stay bit-identical.
func (s *System) runUntil(target uint64, h Hooks, step, total uint64) error {
	for {
		now := s.eng.Now()
		if now >= target {
			return nil
		}
		next := now + step
		if next > target {
			next = target
		}
		s.advanceTo(next)
		if h.Progress != nil {
			var instr uint64
			for _, c := range s.cores {
				instr += c.instructions
			}
			h.Progress(Progress{
				Cycle:        s.eng.Now(),
				TotalCycles:  total,
				Events:       s.eng.Executed,
				Instructions: instr,
				Measuring:    s.eng.Now() >= s.cfg.WarmupCycles,
			})
		}
		if h.Cancel != nil && h.Cancel() {
			return ErrCanceled
		}
	}
}

// Run executes the configured warmup and measurement windows and returns
// the measurement-window result.
func (s *System) Run() Result {
	res, _ := s.RunWithHooks(Hooks{}) // zero hooks cannot cancel
	return res
}

// RunWithHooks executes the run with periodic progress callbacks and
// cancellation polling. On cancellation it returns ErrCanceled and a
// zero Result.
//
// A freshly built system runs warmup then measurement; a system restored
// from a checkpoint resumes wherever the checkpoint was taken (its
// initial core events, measurement baseline and clock all travel with
// the snapshot), so restore-then-run dispatches the exact event sequence
// the uninterrupted run would have.
func (s *System) RunWithHooks(h Hooks) (Result, error) {
	if !s.primed {
		for _, c := range s.cores {
			c.arm(0)
		}
		s.primed = true
	}
	if w := s.effectiveWorkers(); w > 1 {
		s.startParallel(w)
		defer func() {
			s.stopParallel()
			if h.Parallel != nil {
				h.Parallel(s.lastParallel)
			}
		}()
	}
	total := s.cfg.WarmupCycles + s.cfg.MeasureCycles
	step := h.stride(total)
	var phaseT0 time.Time
	if h.Phase != nil {
		phaseT0 = time.Now()
	}
	if err := s.runUntil(s.cfg.WarmupCycles, h, step, total); err != nil {
		return Result{}, err
	}
	if !s.baseTaken {
		s.base = s.statsSnapshot()
		s.baseTaken = true
		if h.AtWarmupEnd != nil {
			if err := h.AtWarmupEnd(); err != nil {
				return Result{}, err
			}
		}
	}
	if h.Phase != nil {
		now := time.Now()
		h.Phase("warmup", phaseT0, now)
		phaseT0 = now
	}
	// Deferred measured parameters (Config.ForkAt) bind at the fork
	// cycle: run canonically up to it, then apply the configured values.
	// Splitting the window at the bind point dispatches the exact event
	// sequence of an unsplit run (see runUntil), so a system restored
	// from a trunk node at the fork cycle is byte-identical to this cold
	// path.
	if s.cfg.ForkAt > 0 && !s.measuredBound {
		if err := s.runUntil(s.cfg.ForkAt, h, step, total); err != nil {
			return Result{}, err
		}
		s.bindMeasured()
	}
	if h.AtCycle != nil {
		for _, cut := range h.AtCycles {
			if cut <= s.eng.Now() || cut >= total {
				continue
			}
			if err := s.runUntil(cut, h, step, total); err != nil {
				return Result{}, err
			}
			if err := h.AtCycle(cut); err != nil {
				return Result{}, err
			}
		}
	}
	if err := s.runUntil(total, h, step, total); err != nil {
		return Result{}, err
	}
	if h.Phase != nil {
		now := time.Now()
		h.Phase("measure", phaseT0, now)
		phaseT0 = now
	}
	s.prof.Flush()
	before := s.base
	after := s.statsSnapshot()

	res := Result{
		Mechanism:    s.cfg.Mechanism,
		Workload:     s.cfg.WorkloadLabel(),
		Events:       s.eng.Executed,
		Cycles:       after.cycles - before.cycles,
		Instructions: after.cnt.Instructions - before.cnt.Instructions,
		DRAM:         subDRAM(after.dram, before.dram),
		Ctrl:         subCtrl(after.ctrl, before.ctrl),
		LLC:          subCache(after.llc, before.llc),
		NOC:          subNOC(after.noc, before.noc),
		Profile:      after.prof.Sub(before.prof),
		Counters:     subCounters(after.cnt, before.cnt),
	}

	res.LoadLatencyMean = s.loadLatency.Mean()
	res.LoadLatencyP95 = s.loadLatency.Percentile(95)
	res.LoadLatencyN = s.loadLatency.N()

	model := energy.NewModel()
	in := energy.Inputs{
		Cycles:          res.Cycles,
		Cores:           s.cfg.Cores,
		Instructions:    res.Instructions,
		LLCReads:        res.LLC.Lookups + res.Counters.LLCProbes,
		LLCWrites:       res.LLC.Fills,
		NOCControl:      res.NOC.ControlMsgs,
		NOCData:         res.NOC.DataMsgs,
		NOCPC:           res.NOC.PCMsgs,
		DRAMActivations: res.DRAM.Activations,
		DRAMReads:       res.DRAM.ReadBursts,
		DRAMWrites:      res.DRAM.WriteBursts,
	}
	res.Energy = model.Compute(in)
	// Energy per access uses a *useful-access* denominator, so that
	// overfetched fills and premature writebacks raise the metric (the
	// paper's Fig. 9 penalises Full-region this way): useful = demand
	// reads + covered bulk/prefetch fills + writebacks that were not
	// premature duplicates.
	useful := res.Counters.DemandReads + res.Counters.LateBulkReads +
		res.LLC.PrefetchUsed +
		res.Counters.DemandWrites + res.Counters.EagerWrites
	if useful > res.Counters.PrematureWrites {
		useful -= res.Counters.PrematureWrites
	}
	if useful > 0 {
		n := float64(useful)
		res.EPATotal = res.Energy.MemoryDynamic() / n
		res.EPAActivation = res.Energy.DRAMActivation / n
		res.EPABurstIO = res.Energy.BurstIO() / n
	}
	if h.Phase != nil {
		h.Phase("encode", phaseT0, time.Now())
	}
	return res, nil
}

// RunOne is the convenience entry point: build and run one configuration.
func RunOne(cfg Config) (Result, error) {
	return RunOneWithHooks(cfg, Hooks{})
}

// RunOneWithHooks builds and runs one configuration with observation and
// cancellation hooks attached.
func RunOneWithHooks(cfg Config, h Hooks) (Result, error) {
	s, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	return s.RunWithHooks(h)
}
