// Package sim wires the substrates into the paper's 16-core CMP and runs
// the evaluation: trace-driven cores with a bounded out-of-order window,
// per-core L1-D caches, a shared LLC, the BuMP predictor (or a baseline
// mechanism) beside the LLC, FR-FCFS memory controllers and DDR3 DRAM,
// with energy accounting and the region-density profiler that produces
// the characterisation figures.
package sim

import (
	"math/bits"

	"bump/internal/mem"
)

// DensityClass buckets region access density as in Fig. 5: low (<25% of
// blocks), medium (25-50%), high (>=50%).
type DensityClass int

// Density classes (Fig. 5).
const (
	LowDensity DensityClass = iota
	MediumDensity
	HighDensity
)

func (c DensityClass) String() string {
	switch c {
	case LowDensity:
		return "low"
	case MediumDensity:
		return "medium"
	default:
		return "high"
	}
}

func classify(blocks, perRegion uint) DensityClass {
	switch {
	case 4*blocks < perRegion:
		return LowDensity
	case 2*blocks < perRegion:
		return MediumDensity
	default:
		return HighDensity
	}
}

// ProfileCounters are the numeric results of the profiler; they support
// subtraction so the simulator can report measurement-window deltas.
type ProfileCounters struct {
	// Fig. 3: DRAM access mix.
	LoadReads  uint64
	StoreReads uint64
	Writes     uint64

	// Fig. 5: DRAM reads/writes by region density class.
	ReadsByClass  [3]uint64
	WritesByClass [3]uint64

	// Ideal row-buffer locality: region generations (reads) and write
	// epochs, each costing exactly one activation in the ideal system.
	ReadGenerations uint64
	WriteEpochs     uint64

	// Table I: blocks dirtied after their region's first dirty eviction
	// vs. all dirtied blocks.
	LateDirtyBlocks  uint64
	TotalDirtyBlocks uint64
}

// Sub returns c - o, counter-wise.
func (c ProfileCounters) Sub(o ProfileCounters) ProfileCounters {
	r := c
	r.LoadReads -= o.LoadReads
	r.StoreReads -= o.StoreReads
	r.Writes -= o.Writes
	for i := range r.ReadsByClass {
		r.ReadsByClass[i] -= o.ReadsByClass[i]
		r.WritesByClass[i] -= o.WritesByClass[i]
	}
	r.ReadGenerations -= o.ReadGenerations
	r.WriteEpochs -= o.WriteEpochs
	r.LateDirtyBlocks -= o.LateDirtyBlocks
	r.TotalDirtyBlocks -= o.TotalDirtyBlocks
	return r
}

// Profile is the region-density characterisation of one run. It feeds
// Fig. 3 (access mix), Fig. 5 (density breakdown), Table I (late writes)
// and the Ideal system of Figs. 2/13 (one activation per region
// generation).
type Profile struct {
	ProfileCounters

	regionShift uint
	perRegion   uint

	// Generation state is held by value: the maps churn once per region
	// residency, and boxing every generation behind a pointer made the
	// profiler a leading allocation site.
	readGens  map[mem.RegionAddr]readGen
	writeGens map[mem.RegionAddr]writeGen
}

type readGen struct {
	pattern uint64
	reads   uint64
}

type writeGen struct {
	dirtied    uint64 // distinct blocks dirtied this epoch
	writebacks uint64
	closed     bool // first dirty eviction seen
}

// NewProfile builds a profiler for the given region size.
func NewProfile(regionShift uint) *Profile {
	return &Profile{
		regionShift: regionShift,
		perRegion:   mem.BlocksPerRegion(regionShift),
		readGens:    make(map[mem.RegionAddr]readGen),
		writeGens:   make(map[mem.RegionAddr]writeGen),
	}
}

// OnDemandAccess observes every demand access reaching the LLC, opening a
// read generation for the region if none is active.
func (p *Profile) OnDemandAccess(b mem.BlockAddr) {
	r := b.Region(p.regionShift)
	g, ok := p.readGens[r]
	if !ok {
		p.ReadGenerations++
	}
	g.pattern |= 1 << b.Offset(p.regionShift)
	p.readGens[r] = g
}

// OnDRAMRead attributes one DRAM read (demand miss) to its region's
// active generation and to the Fig. 3 mix. storeTriggered distinguishes
// store-triggered reads.
func (p *Profile) OnDRAMRead(b mem.BlockAddr, storeTriggered bool) {
	if storeTriggered {
		p.StoreReads++
	} else {
		p.LoadReads++
	}
	r := b.Region(p.regionShift)
	if g, ok := p.readGens[r]; ok {
		g.reads++
		p.readGens[r] = g
	}
}

// OnDirty observes a block becoming dirty in the LLC (store completion).
func (p *Profile) OnDirty(b mem.BlockAddr) {
	r := b.Region(p.regionShift)
	g, ok := p.writeGens[r]
	if !ok {
		p.WriteEpochs++
	}
	bit := uint64(1) << b.Offset(p.regionShift)
	if g.dirtied&bit == 0 {
		g.dirtied |= bit
		p.TotalDirtyBlocks++
		if g.closed {
			p.LateDirtyBlocks++
		}
	}
	p.writeGens[r] = g
}

// OnDRAMWrite attributes one DRAM write (writeback) to its region's write
// epoch, classifying it by the epoch's modified-block density (Fig. 5 W).
func (p *Profile) OnDRAMWrite(b mem.BlockAddr) {
	p.Writes++
	r := b.Region(p.regionShift)
	g, ok := p.writeGens[r]
	if !ok {
		// Writeback with no recorded store (e.g. warmup leakage):
		// attribute as a single-block epoch.
		g = writeGen{dirtied: 1}
		p.WriteEpochs++
	}
	g.writebacks++
	g.closed = true
	p.writeGens[r] = g
	p.WritesByClass[classify(uint(bits.OnesCount64(g.dirtied)), p.perRegion)]++
}

// OnEvict observes an LLC eviction, closing the region's read generation
// (the paper's generation boundary: first eviction of a block of the
// region) and classifying its DRAM reads by final density.
func (p *Profile) OnEvict(b mem.BlockAddr, dirty bool) {
	r := b.Region(p.regionShift)
	if g, ok := p.readGens[r]; ok {
		p.ReadsByClass[classify(uint(bits.OnesCount64(g.pattern)), p.perRegion)] += g.reads
		delete(p.readGens, r)
	}
	_ = dirty
}

// OnWriteEpochEnd closes a write epoch once the region has no dirty
// blocks left in the LLC; the next store opens a fresh epoch.
func (p *Profile) OnWriteEpochEnd(b mem.BlockAddr) {
	delete(p.writeGens, b.Region(p.regionShift))
}

// Flush closes all open generations (end of measurement).
func (p *Profile) Flush() {
	for r, g := range p.readGens {
		p.ReadsByClass[classify(uint(bits.OnesCount64(g.pattern)), p.perRegion)] += g.reads
		delete(p.readGens, r)
	}
	for r := range p.writeGens {
		delete(p.writeGens, r)
	}
}

// Reads returns total DRAM demand reads.
func (c ProfileCounters) Reads() uint64 { return c.LoadReads + c.StoreReads }

// Accesses returns total DRAM accesses (demand reads + writes).
func (c ProfileCounters) Accesses() uint64 { return c.Reads() + c.Writes }

// IdealHitRatio returns the row-buffer hit ratio of the ideal system: all
// row-buffer locality within a region's LLC residency is exploited, so
// each read generation and write epoch costs exactly one activation.
func (c ProfileCounters) IdealHitRatio() float64 {
	acc := c.Accesses()
	gens := c.ReadGenerations + c.WriteEpochs
	if acc == 0 || gens > acc {
		return 0
	}
	return float64(acc-gens) / float64(acc)
}

// IdealActivations returns the activation count of the ideal system (one
// per read generation / write epoch), for the Fig. 13 energy bar.
func (c ProfileCounters) IdealActivations() uint64 {
	return c.ReadGenerations + c.WriteEpochs
}

// LateWriteFraction returns Table I's metric: the fraction of dirtied
// blocks that were modified after their region's first dirty eviction.
func (c ProfileCounters) LateWriteFraction() float64 {
	if c.TotalDirtyBlocks == 0 {
		return 0
	}
	return float64(c.LateDirtyBlocks) / float64(c.TotalDirtyBlocks)
}

// HighDensityReadFraction returns the share of DRAM reads to high-density
// regions (Fig. 5 R, the paper's 57-75%).
func (c ProfileCounters) HighDensityReadFraction() float64 {
	total := c.ReadsByClass[0] + c.ReadsByClass[1] + c.ReadsByClass[2]
	if total == 0 {
		return 0
	}
	return float64(c.ReadsByClass[HighDensity]) / float64(total)
}

// HighDensityWriteFraction returns the share of DRAM writes to
// high-density modified regions (Fig. 5 W, the paper's 62-86%).
func (c ProfileCounters) HighDensityWriteFraction() float64 {
	total := c.WritesByClass[0] + c.WritesByClass[1] + c.WritesByClass[2]
	if total == 0 {
		return 0
	}
	return float64(c.WritesByClass[HighDensity]) / float64(total)
}
