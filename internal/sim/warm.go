package sim

import (
	"bytes"
	"errors"
	"sort"
	"sync"
	"time"
)

// WarmStats counts warm-checkpoint store activity. The headline metric
// is WarmupCyclesSimulated vs WarmupCyclesReused: a warmed N-point sweep
// simulates one warmup and reuses it N-1 times.
type WarmStats struct {
	// Hits counts runs started from a restored warm checkpoint; Misses
	// counts runs that had to simulate their warmup (and published a
	// checkpoint); Skipped counts runs that were not warm-cacheable
	// (custom streams, zero warmup window).
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Skipped uint64 `json:"skipped"`
	// WarmupCyclesSimulated totals warmup cycles of *completed* warmups
	// (a leader canceled mid-warmup charges nothing);
	// WarmupCyclesReused totals warmup cycles satisfied by restoring a
	// checkpoint instead.
	WarmupCyclesSimulated uint64 `json:"warmup_cycles_simulated"`
	WarmupCyclesReused    uint64 `json:"warmup_cycles_reused"`
	// Installed counts checkpoints published from outside the store —
	// transferred from a peer worker instead of simulated locally.
	Installed uint64 `json:"installed"`
}

// WarmBackend persists warm checkpoints beyond the in-memory cache —
// a content-addressed blob store (internal/blob) in production. The
// store consults it on a cache miss and writes published checkpoints
// through to it. Implementations must be safe for concurrent use.
type WarmBackend interface {
	Get(key string) ([]byte, bool)
	Put(key string, data []byte) error
	Keys() []string
}

// WarmStore caches warmup-end checkpoints keyed by WarmKey, so a sweep
// over measured parameters (MeasureCycles, MaxRowHitStreak) restores one
// shared warm state instead of re-simulating the warmup per point.
// Warming is single-flight per key: concurrent runs needing the same
// warm state wait for the first one to publish its checkpoint rather
// than warming redundantly. Safe for concurrent use.
type WarmStore struct {
	mu      sync.Mutex
	max     int
	backend WarmBackend // optional durable tier; nil = memory only
	entries map[string][]byte
	order   []string // insertion order, for bounded eviction
	pending map[string]chan struct{}
	stats   WarmStats
}

// NewWarmStore returns a store retaining at most max checkpoints
// (default 16 when max <= 0).
func NewWarmStore(max int) *WarmStore {
	return NewWarmStoreBacked(max, nil)
}

// NewWarmStoreBacked returns a store layered over a durable backend:
// misses fall through to it before simulating, and published
// checkpoints are written through so they survive restarts and can be
// transferred to peers.
func NewWarmStoreBacked(max int, backend WarmBackend) *WarmStore {
	if max <= 0 {
		max = 16
	}
	return &WarmStore{
		max:     max,
		backend: backend,
		entries: make(map[string][]byte),
		pending: make(map[string]chan struct{}),
	}
}

// Stats returns a copy of the counters.
func (ws *WarmStore) Stats() WarmStats {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.stats
}

func (ws *WarmStore) put(key string, data []byte) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	ws.putLocked(key, data, true)
}

// putLocked inserts under mu. spill=false for promotions of entries the
// backend already holds (no point writing them back).
func (ws *WarmStore) putLocked(key string, data []byte, spill bool) {
	if _, ok := ws.entries[key]; ok {
		return
	}
	for len(ws.entries) >= ws.max && len(ws.order) > 0 {
		delete(ws.entries, ws.order[0])
		ws.order = ws.order[1:]
	}
	ws.entries[key] = data
	ws.order = append(ws.order, key)
	if spill && ws.backend != nil {
		// Best effort: a full or failing blob store degrades durability
		// and transfer, never the simulation itself.
		_ = ws.backend.Put(key, data)
	}
}

// lookupLocked returns the checkpoint from memory or, failing that, the
// backend (promoting backend hits into the memory tier).
func (ws *WarmStore) lookupLocked(key string) ([]byte, bool) {
	if data, ok := ws.entries[key]; ok {
		return data, true
	}
	if ws.backend != nil {
		if data, ok := ws.backend.Get(key); ok {
			ws.putLocked(key, data, false)
			return data, true
		}
	}
	return nil, false
}

// Install publishes a checkpoint transferred from a peer (see
// /v1/checkpoints/{digest}): it satisfies future runs exactly like a
// locally simulated warmup and wakes any single-flight waiters, which
// then restore instead of warming. The caller is responsible for
// validating the bytes first.
func (ws *WarmStore) Install(key string, data []byte) {
	ws.mu.Lock()
	ws.putLocked(key, data, true)
	ws.stats.Installed++
	ws.mu.Unlock()
	// Waking waiters is safe even while a leader is mid-warmup: retries
	// find the entry and restore; the leader's own publish is a no-op.
	ws.release(key)
}

// Checkpoint returns the stored warm checkpoint for key, if any.
func (ws *WarmStore) Checkpoint(key string) ([]byte, bool) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.lookupLocked(key)
}

// Keys lists every warm key currently satisfiable — the memory tier
// plus the backend — sorted, for heartbeat advertisement.
func (ws *WarmStore) Keys() []string {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	set := make(map[string]struct{}, len(ws.entries))
	for k := range ws.entries {
		set[k] = struct{}{}
	}
	if ws.backend != nil {
		for _, k := range ws.backend.Keys() {
			set[k] = struct{}{}
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// release wakes any waiters for key's in-flight warmup. Idempotent.
func (ws *WarmStore) release(key string) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if ch, ok := ws.pending[key]; ok {
		delete(ws.pending, key)
		close(ch)
	}
}

// Run executes cfg through the warm store (see RunWithHooks).
func (ws *WarmStore) Run(cfg Config) (Result, error) {
	return ws.RunWithHooks(cfg, Hooks{})
}

// errWarmCheckpointed aborts a leader's warmup-only run once the
// checkpoint has been captured.
var errWarmCheckpointed = errors.New("sim: warm checkpoint captured")

// RunWithHooks executes one configuration, reusing a cached warm
// checkpoint when an equivalent warmup has already been simulated, and
// publishing one when it has not.
//
// The warmup is always simulated under the *canonical* warm
// configuration — cfg with its measured parameters (MaxRowHitStreak) at
// their zero values — and every point, the warming leader included,
// measures from that restored state. Results are therefore a
// deterministic function of each point's configuration, independent of
// submission order or which concurrent job happened to warm first. A
// point whose measured parameters are already zero is bit-identical to
// its cold run; points with non-zero measured parameters get the
// shared-functional-warmup methodology (policy applied in the
// measurement window) by construction.
func (ws *WarmStore) RunWithHooks(cfg Config, h Hooks) (Result, error) {
	key, cacheable := WarmKey(cfg)
	if !cacheable {
		ws.mu.Lock()
		ws.stats.Skipped++
		ws.mu.Unlock()
		return RunOneWithHooks(cfg, h)
	}
	// The store owns the warmup-end moment on cacheable runs (warm hits
	// restore past it and would never fire a caller's hook); reject a
	// caller hook rather than dropping it silently.
	if h.AtWarmupEnd != nil {
		return Result{}, errors.New("sim: WarmStore owns Hooks.AtWarmupEnd for warm-cacheable configs")
	}

	restored := func(data []byte) (Result, error) {
		s, err := New(cfg)
		if err != nil {
			return Result{}, err
		}
		if err := s.Restore(bytes.NewReader(data)); err != nil {
			return Result{}, err
		}
		return s.RunWithHooks(h)
	}

	for {
		ws.mu.Lock()
		if data, ok := ws.lookupLocked(key); ok {
			ws.stats.Hits++
			ws.stats.WarmupCyclesReused += cfg.WarmupCycles
			ws.mu.Unlock()
			return restored(data)
		}
		if ch, busy := ws.pending[key]; busy {
			ws.mu.Unlock()
			// Another run is warming this key: wait for it (polling the
			// caller's cancel hook) and retry. If the warmer fails or is
			// canceled it releases without publishing, and the retry
			// takes over leadership.
			for waiting := true; waiting; {
				select {
				case <-ch:
					waiting = false
				case <-time.After(20 * time.Millisecond):
					if h.Cancel != nil && h.Cancel() {
						return Result{}, ErrCanceled
					}
				}
			}
			continue
		}
		// Leader: simulate the canonical warmup, publish the checkpoint,
		// then measure from it like any other point. Miss statistics
		// are charged only once the warmup actually completes, so a
		// canceled leader plus its retrying successor never
		// double-counts.
		ws.pending[key] = make(chan struct{})
		ws.mu.Unlock()
		break
	}

	defer ws.release(key) // wakes waiters on every exit path

	warmCfg := cfg
	warmCfg.MaxRowHitStreak = 0
	s, err := New(warmCfg)
	if err != nil {
		return Result{}, err
	}
	var ck bytes.Buffer
	_, err = s.RunWithHooks(Hooks{
		Interval: h.Interval,
		Progress: h.Progress,
		Cancel:   h.Cancel,
		AtWarmupEnd: func() error {
			if err := s.Snapshot(&ck); err != nil {
				return err
			}
			return errWarmCheckpointed
		},
	})
	if !errors.Is(err, errWarmCheckpointed) {
		if err == nil {
			// Unreachable for cacheable configs (WarmupCycles > 0), but
			// never let a warm-store bug silently drop a run.
			err = errors.New("sim: warmup completed without checkpoint")
		}
		return Result{}, err
	}
	ws.mu.Lock()
	ws.stats.Misses++
	ws.stats.WarmupCyclesSimulated += cfg.WarmupCycles
	ws.mu.Unlock()
	ws.put(key, ck.Bytes())
	ws.release(key)
	return restored(ck.Bytes())
}
