package sim

import (
	"bytes"
	"errors"
	"sort"
	"sync"
	"time"
)

// WarmStats counts warm-checkpoint store activity. The headline metric
// is WarmupCyclesSimulated vs WarmupCyclesReused: a warmed N-point sweep
// simulates one warmup and reuses it N-1 times. The Fork* counters
// extend the same ledger to checkpoint-tree nodes cut past the warmup
// boundary: a forked N-point sweep simulates one trunk and N short
// branch tails.
type WarmStats struct {
	// Hits counts runs started from a restored warm checkpoint; Misses
	// counts runs that had to simulate their warmup (and published a
	// checkpoint); Skipped counts runs that were not warm-cacheable
	// (custom streams, zero warmup window).
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Skipped uint64 `json:"skipped"`
	// WarmupCyclesSimulated totals warmup cycles of *completed* warmups
	// (a leader canceled mid-warmup charges nothing);
	// WarmupCyclesReused totals warmup cycles satisfied by restoring a
	// checkpoint instead.
	WarmupCyclesSimulated uint64 `json:"warmup_cycles_simulated"`
	WarmupCyclesReused    uint64 `json:"warmup_cycles_reused"`
	// Installed counts checkpoints published from outside the store —
	// transferred from a peer worker instead of simulated locally.
	Installed uint64 `json:"installed"`

	// ForkHits counts runs that restored a checkpoint-tree node cut
	// past the warmup boundary; ForkMisses counts tree nodes built by
	// extending the trunk from a shallower ancestor.
	ForkHits   uint64 `json:"fork_hits"`
	ForkMisses uint64 `json:"fork_misses"`
	// TrunkCyclesSimulated totals post-warmup cycles simulated to
	// extend the trunk to a cut; BranchCyclesSimulated totals the
	// measured-tail cycles forked runs simulated past their restore
	// point; ForkCyclesReused totals post-warmup cycles satisfied by
	// restoring a tree node instead of simulating them.
	TrunkCyclesSimulated  uint64 `json:"trunk_cycles_simulated"`
	BranchCyclesSimulated uint64 `json:"branch_cycles_simulated"`
	ForkCyclesReused      uint64 `json:"fork_cycles_reused"`
	// Evicted counts poisoned checkpoints purged after a failed
	// restore (corrupt blob-tier bytes, version skew).
	Evicted uint64 `json:"evicted"`
}

// WarmBackend persists warm checkpoints beyond the in-memory cache —
// a content-addressed blob store (internal/blob) in production. The
// store consults it on a cache miss and writes published checkpoints
// through to it. Implementations must be safe for concurrent use.
type WarmBackend interface {
	Get(key string) ([]byte, bool)
	Put(key string, data []byte) error
	// Delete drops a key, best effort — the store uses it to purge
	// checkpoints whose restore failed, so poisoned bytes cannot
	// satisfy (and fail) every future run of the key.
	Delete(key string)
	Keys() []string
}

// WarmStore caches canonical trunk checkpoints keyed by ForkNodeKey —
// warmup-end state under the plain WarmKey (the tree root), plus
// mid-measurement nodes at the configured fork cycles — so a sweep over
// measured parameters (MeasureCycles, MaxRowHitStreak) restores shared
// trunk state instead of re-simulating it per point. Warming and trunk
// extension are single-flight per node: concurrent runs needing the
// same node wait for the first one to publish it rather than simulating
// redundantly. Safe for concurrent use.
type WarmStore struct {
	mu      sync.Mutex
	max     int
	backend WarmBackend // optional durable tier; nil = memory only
	entries map[string][]byte
	order   []string // insertion order, for bounded eviction
	pending map[string]chan struct{}
	stats   WarmStats
}

// NewWarmStore returns a store retaining at most max checkpoints
// (default 16 when max <= 0).
func NewWarmStore(max int) *WarmStore {
	return NewWarmStoreBacked(max, nil)
}

// NewWarmStoreBacked returns a store layered over a durable backend:
// misses fall through to it before simulating, and published
// checkpoints are written through so they survive restarts and can be
// transferred to peers.
func NewWarmStoreBacked(max int, backend WarmBackend) *WarmStore {
	if max <= 0 {
		max = 16
	}
	return &WarmStore{
		max:     max,
		backend: backend,
		entries: make(map[string][]byte),
		pending: make(map[string]chan struct{}),
	}
}

// Stats returns a copy of the counters.
func (ws *WarmStore) Stats() WarmStats {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.stats
}

func (ws *WarmStore) put(key string, data []byte) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	ws.putLocked(key, data, true)
}

// putLocked inserts under mu. spill=false for promotions of entries the
// backend already holds (no point writing them back).
func (ws *WarmStore) putLocked(key string, data []byte, spill bool) {
	if _, ok := ws.entries[key]; ok {
		return
	}
	for len(ws.entries) >= ws.max && len(ws.order) > 0 {
		delete(ws.entries, ws.order[0])
		ws.order = ws.order[1:]
	}
	ws.entries[key] = data
	ws.order = append(ws.order, key)
	if spill && ws.backend != nil {
		// Best effort: a full or failing blob store degrades durability
		// and transfer, never the simulation itself.
		_ = ws.backend.Put(key, data)
	}
}

// lookupLocked returns the checkpoint from memory or, failing that, the
// backend (promoting backend hits into the memory tier).
func (ws *WarmStore) lookupLocked(key string) ([]byte, bool) {
	if data, ok := ws.entries[key]; ok {
		return data, true
	}
	if ws.backend != nil {
		if data, ok := ws.backend.Get(key); ok {
			ws.putLocked(key, data, false)
			return data, true
		}
	}
	return nil, false
}

// evict removes a checkpoint from the memory tier *and* the backend —
// the poisoning recovery path. A checkpoint whose restore failed must
// not keep satisfying lookups, or every future run of its key inherits
// the failure; purging both tiers makes the next run re-warm as leader.
func (ws *WarmStore) evict(key string) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	delete(ws.entries, key)
	for i, k := range ws.order {
		if k == key {
			ws.order = append(ws.order[:i], ws.order[i+1:]...)
			break
		}
	}
	if ws.backend != nil {
		ws.backend.Delete(key)
	}
	ws.stats.Evicted++
}

// Install publishes a checkpoint transferred from a peer (see
// /v1/checkpoints/{digest}): it satisfies future runs exactly like a
// locally simulated warmup and wakes any single-flight waiters, which
// then restore instead of warming. The caller is responsible for
// validating the bytes first.
func (ws *WarmStore) Install(key string, data []byte) {
	ws.mu.Lock()
	ws.putLocked(key, data, true)
	ws.stats.Installed++
	ws.mu.Unlock()
	// Waking waiters is safe even while a leader is mid-warmup: retries
	// find the entry and restore; the leader's own publish is a no-op.
	ws.release(key)
}

// publish installs a locally produced tree node and wakes any
// single-flight waiters on its key.
func (ws *WarmStore) publish(key string, data []byte) {
	ws.put(key, data)
	ws.release(key)
}

// Checkpoint returns the stored warm checkpoint for key, if any.
func (ws *WarmStore) Checkpoint(key string) ([]byte, bool) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.lookupLocked(key)
}

// Keys lists every warm key currently satisfiable — the memory tier
// plus the backend — sorted, for heartbeat advertisement. Tree nodes
// appear alongside warmup-end roots; both replicate and transfer the
// same way.
func (ws *WarmStore) Keys() []string {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	set := make(map[string]struct{}, len(ws.entries))
	for k := range ws.entries {
		set[k] = struct{}{}
	}
	if ws.backend != nil {
		for _, k := range ws.backend.Keys() {
			set[k] = struct{}{}
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// release wakes any waiters for key's in-flight warmup. Idempotent.
func (ws *WarmStore) release(key string) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if ch, ok := ws.pending[key]; ok {
		delete(ws.pending, key)
		close(ch)
	}
}

// warmPollInterval is the cadence at which a single-flight waiter polls
// its caller's cancel hook while the leader simulates.
const warmPollInterval = 20 * time.Millisecond

// waitPending blocks until the leader releases ch, polling the caller's
// cancel hook on one reused timer (a large coalesced sweep parks many
// waiters; a fresh time.After per poll would churn allocations).
func (ws *WarmStore) waitPending(ch <-chan struct{}, h Hooks) error {
	if h.Cancel == nil {
		<-ch
		return nil
	}
	t := time.NewTimer(warmPollInterval)
	defer t.Stop()
	for {
		select {
		case <-ch:
			return nil
		case <-t.C:
			if h.Cancel() {
				return ErrCanceled
			}
			t.Reset(warmPollInterval)
		}
	}
}

// Run executes cfg through the warm store (see RunWithHooks).
func (ws *WarmStore) Run(cfg Config) (Result, error) {
	return ws.RunWithHooks(cfg, Hooks{})
}

// errWarmCheckpointed aborts a trunk run once its checkpoint has been
// captured (at warmup end for the root, at the cut for deeper nodes).
var errWarmCheckpointed = errors.New("sim: warm checkpoint captured")

// parentCut returns the deepest cut strictly below `cut` on cfg's trunk
// chain — the warmup boundary when no configured fork cycle precedes
// it.
func parentCut(cfg Config, cut uint64) uint64 {
	parent := cfg.WarmupCycles
	for _, c := range cfg.ForkCycles {
		if c < cut && c > parent {
			parent = c
		}
	}
	return parent
}

// nodeData returns the checkpoint-tree node for cfg's canonical trunk
// at cut, building it (single-flight per node) when absent. built
// reports whether this call simulated to produce it — builders do not
// count their own node as a hit.
func (ws *WarmStore) nodeData(cfg Config, cut uint64, h Hooks) (data []byte, built bool, err error) {
	key, ok := ForkNodeKey(cfg, cut)
	if !ok {
		return nil, false, errors.New("sim: configuration is not warm-cacheable")
	}
	for {
		ws.mu.Lock()
		if data, ok := ws.lookupLocked(key); ok {
			ws.mu.Unlock()
			return data, false, nil
		}
		if ch, busy := ws.pending[key]; busy {
			ws.mu.Unlock()
			// Another run is producing this node: wait for it (polling
			// the caller's cancel hook) and retry. If the producer fails
			// or is canceled it releases without publishing, and the
			// retry takes over leadership.
			if err := ws.waitPending(ch, h); err != nil {
				return nil, false, err
			}
			continue
		}
		ws.pending[key] = make(chan struct{})
		ws.mu.Unlock()
		break
	}
	var t0 time.Time
	if h.Phase != nil {
		t0 = time.Now()
	}
	data, err = ws.buildNode(cfg, cut, h)
	ws.release(key) // wakes waiters on every exit path
	if err != nil {
		return nil, false, err
	}
	if h.Phase != nil {
		h.Phase("trunk.extend", t0, time.Now())
	}
	return data, true, nil
}

// buildNode simulates cfg's canonical trunk up to cut and publishes the
// node. The root (cut at the warmup boundary) warms from scratch;
// deeper nodes restore their parent — the next shallower node on the
// chain, built recursively — and simulate only (parent, cut]. Miss
// statistics are charged only once the simulation actually completes,
// so a canceled builder plus its retrying successor never double-counts.
func (ws *WarmStore) buildNode(cfg Config, cut uint64, h Hooks) ([]byte, error) {
	// The trunk is cfg with its measured parameters at their canonical
	// zero values: structurally identical, shared by every sibling.
	trunk := cfg
	trunk.MaxRowHitStreak = 0
	trunk.ForkAt = 0
	trunk.ForkCycles = nil
	key, _ := ForkNodeKey(cfg, cut)
	hk := Hooks{Interval: h.Interval, Progress: h.Progress, Cancel: h.Cancel}

	if cut <= cfg.WarmupCycles {
		// Tree root: simulate the canonical warmup.
		s, err := New(trunk)
		if err != nil {
			return nil, err
		}
		var ck bytes.Buffer
		hk.AtWarmupEnd = func() error {
			if err := s.Snapshot(&ck); err != nil {
				return err
			}
			return errWarmCheckpointed
		}
		if _, err = s.RunWithHooks(hk); !errors.Is(err, errWarmCheckpointed) {
			if err == nil {
				// Unreachable for cacheable configs (WarmupCycles > 0),
				// but never let a warm-store bug silently drop a run.
				err = errors.New("sim: warmup completed without checkpoint")
			}
			return nil, err
		}
		ws.mu.Lock()
		ws.stats.Misses++
		ws.stats.WarmupCyclesSimulated += cfg.WarmupCycles
		ws.mu.Unlock()
		ws.put(key, ck.Bytes())
		return ck.Bytes(), nil
	}

	// Deeper node: extend the trunk from its parent. Recursion over
	// strictly decreasing cuts bottoms out at the root, so concurrent
	// single-flight producers can never deadlock on one another.
	parent := parentCut(cfg, cut)
	for attempt := 0; ; attempt++ {
		pdata, pbuilt, err := ws.nodeData(cfg, parent, h)
		if err != nil {
			return nil, err
		}
		s, err := New(trunk)
		if err != nil {
			return nil, err
		}
		if err := s.Restore(bytes.NewReader(pdata)); err != nil {
			// Poisoned ancestor: evict it from both tiers and rebuild,
			// rather than failing this node forever.
			pkey, _ := ForkNodeKey(cfg, parent)
			ws.evict(pkey)
			if attempt >= 1 {
				return nil, err
			}
			continue
		}
		ws.accountReuse(pbuilt, cfg, parent)
		var ck bytes.Buffer
		hk.AtCycles = []uint64{cut}
		hk.AtCycle = func(uint64) error {
			if err := s.Snapshot(&ck); err != nil {
				return err
			}
			return errWarmCheckpointed
		}
		if _, err = s.RunWithHooks(hk); !errors.Is(err, errWarmCheckpointed) {
			if err == nil {
				err = errors.New("sim: trunk run passed its cut without checkpointing")
			}
			return nil, err
		}
		ws.mu.Lock()
		ws.stats.ForkMisses++
		ws.stats.TrunkCyclesSimulated += cut - parent
		ws.mu.Unlock()
		ws.put(key, ck.Bytes())
		return ck.Bytes(), nil
	}
}

// accountReuse charges the cycle-reuse counters for a successful
// restore of the node at cut. A caller that just built the node charges
// nothing — its cycles were already recorded as simulated.
func (ws *WarmStore) accountReuse(built bool, cfg Config, cut uint64) {
	if built {
		return
	}
	ws.mu.Lock()
	ws.stats.WarmupCyclesReused += cfg.WarmupCycles
	if cut > cfg.WarmupCycles {
		ws.stats.ForkCyclesReused += cut - cfg.WarmupCycles
	}
	ws.mu.Unlock()
}

// RunWithHooks executes one configuration, restoring the deepest shared
// checkpoint-tree node when an equivalent trunk has already been
// simulated, and publishing trunk state when it has not.
//
// The trunk is always simulated under the *canonical* configuration —
// cfg with its measured parameters (MaxRowHitStreak) at their zero
// values — and every point, the builders included, measures from
// restored trunk state. Results are therefore a deterministic function
// of each point's configuration, independent of submission order or
// which concurrent job happened to build which node. A point whose
// measured parameters are already zero is bit-identical to its cold
// run; points with non-zero measured parameters get the
// shared-functional-warmup methodology (policy applied from
// ForkAt, or from the warmup boundary when ForkAt is zero) by
// construction — also bit-identical to their own cold sequential runs,
// because a cold run of the same Config binds its measured parameters
// at the same cycle.
//
// A cached node whose restore fails (corrupt blob-tier bytes, version
// skew) is evicted from both tiers and re-simulated; hits are counted
// only after a successful restore.
func (ws *WarmStore) RunWithHooks(cfg Config, h Hooks) (Result, error) {
	if _, cacheable := WarmKey(cfg); !cacheable {
		ws.mu.Lock()
		ws.stats.Skipped++
		ws.mu.Unlock()
		return RunOneWithHooks(cfg, h)
	}
	// The store owns the checkpoint moments on cacheable runs (warm
	// hits restore past them and would never fire a caller's hook);
	// reject caller hooks rather than dropping them silently.
	if h.AtWarmupEnd != nil || h.AtCycle != nil {
		return Result{}, errors.New("sim: WarmStore owns the checkpoint hooks (AtWarmupEnd/AtCycle) for warm-cacheable configs")
	}

	// The restore point: the fork cycle when the configuration defers
	// its measured parameters, the warmup boundary otherwise.
	target := cfg.WarmupCycles
	if cfg.ForkAt > target {
		target = cfg.ForkAt
	}
	total := cfg.WarmupCycles + cfg.MeasureCycles

	for attempt := 0; ; attempt++ {
		var t0 time.Time
		if h.Phase != nil {
			t0 = time.Now()
		}
		data, built, err := ws.nodeData(cfg, target, h)
		if err != nil {
			return Result{}, err
		}
		if h.Phase != nil {
			now := time.Now()
			h.Phase("warm.resolve", t0, now)
			t0 = now
		}
		s, err := New(cfg)
		if err != nil {
			return Result{}, err
		}
		if err := s.Restore(bytes.NewReader(data)); err != nil {
			// Poisoned checkpoint: evict it from both tiers and fall
			// through to re-warm as leader instead of failing this key
			// on every future run.
			if nkey, ok := ForkNodeKey(cfg, target); ok {
				ws.evict(nkey)
			}
			if attempt >= 1 {
				return Result{}, err
			}
			continue
		}
		if h.Phase != nil {
			h.Phase("restore", t0, time.Now())
		}
		// Only a successful restore counts as a hit.
		if !built {
			ws.mu.Lock()
			ws.stats.Hits++
			ws.stats.WarmupCyclesReused += cfg.WarmupCycles
			if target > cfg.WarmupCycles {
				ws.stats.ForkHits++
				ws.stats.ForkCyclesReused += target - cfg.WarmupCycles
			}
			ws.mu.Unlock()
		}

		hr := h
		if cfg.MaxRowHitStreak == 0 {
			// This point *is* the canonical trunk past its restore
			// point: snapshot tree nodes at the configured cuts as the
			// run passes them, so later forks restore instead of
			// extending.
			var cuts []uint64
			for _, c := range cfg.ForkCycles {
				if c > target && c < total {
					cuts = append(cuts, c)
				}
			}
			if len(cuts) > 0 {
				hr.AtCycles = cuts
				hr.AtCycle = func(cut uint64) error {
					nkey, ok := ForkNodeKey(cfg, cut)
					if !ok {
						return nil
					}
					if _, have := ws.Checkpoint(nkey); have {
						return nil
					}
					var buf bytes.Buffer
					if err := s.Snapshot(&buf); err != nil {
						return nil // best effort: never fail the run over a publish
					}
					ws.publish(nkey, buf.Bytes())
					return nil
				}
			}
		}

		res, err := s.RunWithHooks(hr)
		if err != nil {
			return Result{}, err
		}
		if target > cfg.WarmupCycles {
			ws.mu.Lock()
			ws.stats.BranchCyclesSimulated += total - target
			ws.mu.Unlock()
		}
		return res, nil
	}
}
