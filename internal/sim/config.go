package sim

import (
	"fmt"

	"bump/internal/core"
	"bump/internal/dram"
	"bump/internal/mem"
	"bump/internal/memctrl"
	"bump/internal/scenario"
	"bump/internal/workload"
)

// Mechanism selects the memory-system configuration under evaluation
// (the bars of Figs. 2, 9, 10, 13).
type Mechanism uint8

// The evaluated systems.
const (
	// BaseClose: stride prefetcher, FR-FCFS close-row, block-interleaved
	// addressing (maximum bank-level parallelism).
	BaseClose Mechanism = iota
	// BaseOpen: stride prefetcher, FR-FCFS open-row, region-interleaved
	// addressing (same memory controller as BuMP).
	BaseOpen
	// SMSOnly: Spatial Memory Streaming next to the LLC, open-row.
	SMSOnly
	// VWQOnly: stride prefetcher plus eager writeback of adjacent dirty
	// blocks, open-row.
	VWQOnly
	// SMSVWQ combines SMSOnly and VWQOnly.
	SMSVWQ
	// FullRegion bulk-transfers every region on any miss/dirty eviction
	// (no prediction).
	FullRegion
	// BuMP is the paper's mechanism.
	BuMP
	// BuMPVWQ combines BuMP with VWQ-style eager writeback for dirty
	// evictions outside high-density regions — the extension the paper
	// proposes in Section V.G's footnote.
	BuMPVWQ
)

func (m Mechanism) String() string {
	switch m {
	case BaseClose:
		return "base-close"
	case BaseOpen:
		return "base-open"
	case SMSOnly:
		return "sms"
	case VWQOnly:
		return "vwq"
	case SMSVWQ:
		return "sms+vwq"
	case FullRegion:
		return "full-region"
	case BuMP:
		return "bump"
	case BuMPVWQ:
		return "bump+vwq"
	default:
		return fmt.Sprintf("Mechanism(%d)", uint8(m))
	}
}

// Mechanisms lists all evaluated systems in figure order.
func Mechanisms() []Mechanism {
	return []Mechanism{BaseClose, BaseOpen, SMSOnly, VWQOnly, SMSVWQ, FullRegion, BuMP}
}

// MechanismByName resolves a mechanism from its String form (including
// the bump+vwq extension, which Mechanisms omits from figure order).
func MechanismByName(name string) (Mechanism, bool) {
	for m := BaseClose; m <= BuMPVWQ; m++ {
		if m.String() == name {
			return m, true
		}
	}
	return 0, false
}

// Config is the full-system configuration (Table II defaults).
type Config struct {
	Cores int

	// Core model.
	WindowSize      int // 48-entry ROB
	RetireWidth     int // 3-way
	L1MSHRs         int // 10
	L1Bytes         int // 32KB
	L1Ways          int // 2
	L1LatencyCycles uint64

	// LLC.
	LLCBytes         int // 4MB
	LLCWays          int // 16
	LLCLatencyCycles uint64

	// NOC.
	NOCLatencyCycles uint64

	Mechanism Mechanism
	// DisablePrefetcher removes the mechanism's prefetcher. The
	// characterisation experiments (Figs. 3 and 5, Table I, the Ideal
	// system) use this so prefetch absorption does not distort the
	// demand-traffic density profile.
	DisablePrefetcher bool
	// ForceBlockInterleave runs an open-row mechanism on the
	// block-interleaved address mapping (ablation: without
	// region-interleaving, a bulk transfer spans many banks/rows and no
	// longer amortises a single activation).
	ForceBlockInterleave bool
	// MaxRowHitStreak caps consecutive row-hit-first scheduler picks
	// (fairness-aware FR-FCFS, Section VI). 0 disables the cap.
	MaxRowHitStreak int
	BuMP            core.Config
	DRAM            dram.Config

	Workload workload.Params
	// Scenario, when non-empty, drives the per-core streams with a
	// multi-phase, multi-tenant composition of presets instead of the
	// single stationary Workload (which must then be left zero).
	// Unlike a Streams hook the scenario is pure data, so the service
	// config hash, the snapshot structural digest and the warm-checkpoint
	// key all cover it: scenario runs cache, checkpoint and warm-share
	// exactly like stationary ones.
	Scenario scenario.Spec
	// Streams optionally overrides the per-core access streams (e.g.
	// trace replay); when set it must return a stream for every core
	// index. Workload is still used for identification and validation.
	// Mutually exclusive with Scenario.
	Streams func(core int) workload.Stream
	Seed    int64

	// Measurement windows in CPU cycles.
	WarmupCycles  uint64
	MeasureCycles uint64

	// ForkAt, when non-zero, defers the *measured* parameters
	// (MaxRowHitStreak): the run simulates the canonical zero-valued
	// policy up to absolute cycle ForkAt and binds the configured values
	// there, so every sibling of a checkpoint-tree sweep shares one
	// trunk trajectory through ForkAt and diverges only in the tail.
	// Must lie in [WarmupCycles, WarmupCycles+MeasureCycles). ForkAt ==
	// WarmupCycles is exactly the classic functional-warmup methodology.
	ForkAt uint64
	// ForkCycles lists mid-measurement cut cycles (strictly increasing,
	// each in (WarmupCycles, WarmupCycles+MeasureCycles)) at which a
	// canonical trunk run publishes checkpoint-tree nodes via a
	// WarmStore. The cuts never alter simulated behaviour — they only
	// tell the store where future forks may restore.
	ForkCycles []uint64

	// Workers requests parallel in-run execution with that many shards
	// (one uncore shard plus core shards); 0 or 1 selects the sequential
	// engine, and the effective count is capped by GOMAXPROCS and
	// Cores+1. Results are byte-identical at every Workers value, so
	// like Priority or a timeout it is a pure execution-resource knob:
	// it is excluded from the snapshot structural digest and the service
	// config hash, and never affects warm-checkpoint sharing or result
	// coalescing.
	Workers int
}

// DefaultConfig returns the paper's system (Table II) for the given
// mechanism and workload, with simulation windows sized for statistical
// stability at tractable runtime.
func DefaultConfig(m Mechanism, w workload.Params) Config {
	return Config{
		Cores:            16,
		WindowSize:       48,
		RetireWidth:      3,
		L1MSHRs:          10,
		L1Bytes:          32 << 10,
		L1Ways:           2,
		L1LatencyCycles:  2,
		LLCBytes:         4 << 20,
		LLCWays:          16,
		LLCLatencyCycles: 8,
		NOCLatencyCycles: 5,
		Mechanism:        m,
		BuMP:             core.DefaultConfig(),
		DRAM:             dram.DefaultConfig(),
		Workload:         w,
		Seed:             1,
		WarmupCycles:     1_000_000,
		MeasureCycles:    2_400_000,
	}
}

// DefaultScenarioConfig returns the paper's system (Table II) driven by
// a scenario instead of a stationary workload.
func DefaultScenarioConfig(m Mechanism, sc scenario.Spec) Config {
	cfg := DefaultConfig(m, workload.Params{})
	cfg.Scenario = sc
	return cfg
}

// WorkloadLabel names what drives the streams: the stationary workload's
// preset name, or "scenario:<name>" for scenario runs.
func (c Config) WorkloadLabel() string {
	if c.Scenario.Enabled() {
		return "scenario:" + c.Scenario.Name
	}
	return c.Workload.Name
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("sim: cores must be positive")
	}
	if c.WindowSize <= 0 || c.RetireWidth <= 0 || c.L1MSHRs <= 0 {
		return fmt.Errorf("sim: core model parameters must be positive")
	}
	if c.MeasureCycles == 0 {
		return fmt.Errorf("sim: measure window must be positive")
	}
	if c.Mechanism > BuMPVWQ {
		return fmt.Errorf("sim: unknown mechanism %d", c.Mechanism)
	}
	if c.Workers < 0 {
		return fmt.Errorf("sim: workers must be non-negative")
	}
	if err := c.BuMP.Validate(); err != nil {
		return err
	}
	if err := c.DRAM.Validate(); err != nil {
		return err
	}
	total := c.WarmupCycles + c.MeasureCycles
	if c.ForkAt != 0 && (c.ForkAt < c.WarmupCycles || c.ForkAt >= total) {
		return fmt.Errorf("sim: ForkAt %d outside [WarmupCycles, WarmupCycles+MeasureCycles) = [%d, %d)",
			c.ForkAt, c.WarmupCycles, total)
	}
	for i, cut := range c.ForkCycles {
		if cut <= c.WarmupCycles || cut >= total {
			return fmt.Errorf("sim: fork cycle %d outside (WarmupCycles, WarmupCycles+MeasureCycles) = (%d, %d)",
				cut, c.WarmupCycles, total)
		}
		if i > 0 && cut <= c.ForkCycles[i-1] {
			return fmt.Errorf("sim: fork cycles must be strictly increasing")
		}
	}
	if c.Scenario.Enabled() {
		if c.Streams != nil {
			return fmt.Errorf("sim: Scenario and Streams are mutually exclusive")
		}
		if c.Workload != (workload.Params{}) {
			return fmt.Errorf("sim: scenario runs must leave Workload zero (the scenario names its workloads)")
		}
		if err := c.Scenario.Validate(c.Cores); err != nil {
			return err
		}
	} else if err := c.Workload.Validate(); err != nil {
		return err
	}
	return nil
}

// controllerConfig derives the memory-controller configuration from the
// mechanism (Section V.A): Base-close uses close-row + block interleave;
// everything else uses BuMP's open-row + region interleave.
func (c Config) controllerConfig() memctrl.Config {
	if c.Mechanism == BaseClose {
		return memctrl.DefaultConfig(memctrl.CloseRow, memctrl.BlockInterleave)
	}
	if c.ForceBlockInterleave {
		return memctrl.DefaultConfig(memctrl.OpenRow, memctrl.BlockInterleave)
	}
	mc := memctrl.DefaultConfig(memctrl.OpenRow, memctrl.RegionInterleave)
	mc.RegionShift = c.BuMP.RegionShift
	if mc.RegionShift == 0 {
		mc.RegionShift = mem.DefaultRegionShift
	}
	mc.MaxRowHitStreak = c.MaxRowHitStreak
	return mc
}
