package sim

import (
	"bytes"
	"os"
	"runtime"
	"testing"
)

// TestGoldenStateParallel proves the committed golden corpus is valid
// under the parallel engine without regeneration: every case, run cold
// at Workers=4, must reproduce the committed warmup-end checkpoint and
// result bytes exactly, and every committed checkpoint must restore into
// a Workers=4 system and resume to the committed result. Bit-identity
// (not statistical closeness) is the whole contract of the parallel
// engine, and this pins it to state the repo has already shipped.
func TestGoldenStateParallel(t *testing.T) {
	if *updateGolden {
		t.Skip("regenerating (sequential TestGoldenState owns -update)")
	}
	// The golden configs have 2 cores, so the effective worker count is
	// capped at 3; raise GOMAXPROCS so the cap is the core count, not
	// the machine size.
	if old := runtime.GOMAXPROCS(0); old < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(old)
	}
	for _, gc := range goldenCases() {
		t.Run(gc.name, func(t *testing.T) {
			cfg := gc.cfg
			cfg.Workers = 4
			snapPath, resultPath := goldenPaths(gc.name)
			wantSnap := readGoldenSnap(t, snapPath)
			wantJSON, err := os.ReadFile(resultPath)
			if err != nil {
				t.Fatalf("missing golden result (run sequential TestGoldenState -update to create): %v", err)
			}

			snap, res := runGolden(t, cfg)
			if !bytes.Equal(snap, wantSnap) {
				t.Errorf("%s: Workers=4 warmup-end state diverges from the committed golden checkpoint (%d vs %d bytes) — the parallel engine is not bit-identical",
					gc.name, len(snap), len(wantSnap))
			}
			if got := marshalResult(t, res); !bytes.Equal(got, wantJSON) {
				t.Errorf("%s: Workers=4 result diverges from the committed golden result.\ngot:\n%s\nwant:\n%s",
					gc.name, got, wantJSON)
			}

			s := mustNewSys(t, cfg)
			if err := s.Restore(bytes.NewReader(wantSnap)); err != nil {
				t.Fatalf("committed checkpoint does not restore into a Workers=4 system: %v", err)
			}
			rres, err := s.RunWithHooks(Hooks{})
			if err != nil {
				t.Fatal(err)
			}
			if got := marshalResult(t, rres); !bytes.Equal(got, wantJSON) {
				t.Errorf("%s: Workers=4 restored run diverges from the committed golden result.\ngot:\n%s\nwant:\n%s",
					gc.name, got, wantJSON)
			}
		})
	}
}
