package sim

import (
	"reflect"
	"testing"

	"bump/internal/workload"
)

// digestExcluded lists Config fields that are execution-resource knobs:
// deliberately invisible to the structural digest (and, downstream, to
// warm-checkpoint keys and service config hashes) because they never
// change what a run computes.
var digestExcluded = map[string]bool{"Workers": true}

// TestStructuralConfigMirrorsConfig guards the digest mirror: every
// Config field except the declared resource knobs must appear in
// structuralConfig with the same name, type and relative order, and the
// mirror must have no extras. A new structural Config field that is not
// added to structuralConfig fails here instead of silently dropping out
// of the digest.
func TestStructuralConfigMirrorsConfig(t *testing.T) {
	ct := reflect.TypeOf(Config{})
	st := reflect.TypeOf(structuralConfig{})
	j := 0
	for i := 0; i < ct.NumField(); i++ {
		cf := ct.Field(i)
		if digestExcluded[cf.Name] {
			continue
		}
		if j >= st.NumField() {
			t.Fatalf("structuralConfig is missing Config field %s — add it to the mirror (and keep digest bytes in mind)", cf.Name)
		}
		sf := st.Field(j)
		if sf.Name != cf.Name || sf.Type != cf.Type {
			t.Fatalf("structuralConfig field %d is %s %v, want %s %v (mirror out of sync with Config)",
				j, sf.Name, sf.Type, cf.Name, cf.Type)
		}
		j++
	}
	if j != st.NumField() {
		t.Fatalf("structuralConfig has %d extra trailing field(s) starting at %s", st.NumField()-j, st.Field(j).Name)
	}
}

// TestWorkersExcludedFromWarmKey pins the hash policy: any Workers value
// shares one warm-checkpoint identity, so parallel and sequential runs
// warm one another.
func TestWorkersExcludedFromWarmKey(t *testing.T) {
	cfg := DefaultConfig(BuMP, workload.WebSearch())
	base, ok := WarmKey(cfg)
	if !ok {
		t.Fatal("default config must be warm-cacheable")
	}
	for _, w := range []int{1, 4, 8} {
		c := cfg
		c.Workers = w
		got, ok := WarmKey(c)
		if !ok || got != base {
			t.Fatalf("Workers=%d changed the warm key: %s vs %s", w, got, base)
		}
	}
	c := cfg
	c.Seed++
	if k, _ := WarmKey(c); k == base {
		t.Fatal("sanity: a structural change must change the warm key")
	}
}
