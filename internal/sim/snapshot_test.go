package sim

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"bump/internal/mem"
	"bump/internal/workload"
)

// smallConfig is a fast configuration for snapshot tests: fewer cores
// and smaller caches keep each run (and each checkpoint) small while
// still exercising every subsystem.
func smallConfig(m Mechanism, w workload.Params, seed int64) Config {
	cfg := DefaultConfig(m, w)
	cfg.Cores = 4
	cfg.L1Bytes = 16 << 10
	cfg.LLCBytes = 256 << 10
	cfg.Seed = seed
	cfg.WarmupCycles = 60_000
	cfg.MeasureCycles = 120_000
	return cfg
}

func mustNewSys(t *testing.T, cfg Config) *System {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// snapBytes serializes a system and returns the raw snapshot.
func snapBytes(t *testing.T, s *System) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// runSplit runs cfg until the engine clock reaches at least `split`
// (cancelling at the next hook interval), snapshots, and returns the
// checkpoint bytes.
func runSplit(t *testing.T, cfg Config, split, interval uint64) []byte {
	t.Helper()
	s := mustNewSys(t, cfg)
	_, err := s.RunWithHooks(Hooks{
		Interval: interval,
		Cancel:   func() bool { return s.Engine().Now() >= split },
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("split run finished without cancel (split=%d): %v", split, err)
	}
	return snapBytes(t, s)
}

// TestSnapshotRestoreBitIdentical is the randomized differential test:
// for a spread of mechanisms (covering the predictor, SMS, stride, VWQ
// and close-row paths) and random split points — mid-warmup, at the
// warmup boundary, and mid-measurement — a run that is checkpointed and
// restored across the split must produce the exact Result (stats,
// event counts) and the exact final machine state of an uninterrupted
// run.
func TestSnapshotRestoreBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("differential snapshot test is not short")
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"bump/web-search", smallConfig(BuMP, workload.WebSearch(), 1)},
		{"bump+vwq/data-serving", smallConfig(BuMPVWQ, workload.DataServing(), 2)},
		{"sms+vwq/web-serving", smallConfig(SMSVWQ, workload.WebServing(), 3)},
		{"base-close/media-streaming", smallConfig(BaseClose, workload.MediaStreaming(), 4)},
	}
	rng := rand.New(rand.NewSource(42))
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			total := tc.cfg.WarmupCycles + tc.cfg.MeasureCycles

			// Reference: uninterrupted run, then its final state.
			ref := mustNewSys(t, tc.cfg)
			refRes, err := ref.RunWithHooks(Hooks{})
			if err != nil {
				t.Fatal(err)
			}
			refFinal := snapBytes(t, ref)

			splits := []uint64{
				uint64(rng.Int63n(int64(tc.cfg.WarmupCycles))), // mid-warmup
				tc.cfg.WarmupCycles,                            // boundary
				tc.cfg.WarmupCycles + uint64(rng.Int63n(int64(tc.cfg.MeasureCycles-1))) + 1, // mid-measurement
			}
			for _, split := range splits {
				if split >= total {
					split = total - 1
				}
				data := runSplit(t, tc.cfg, split, 1+uint64(rng.Int63n(5000)))

				restored := mustNewSys(t, tc.cfg)
				if err := restored.Restore(bytes.NewReader(data)); err != nil {
					t.Fatalf("split %d: restore: %v", split, err)
				}
				res, err := restored.RunWithHooks(Hooks{})
				if err != nil {
					t.Fatalf("split %d: continue: %v", split, err)
				}
				if !reflect.DeepEqual(res, refRes) {
					t.Fatalf("split %d: restored result diverges from uninterrupted run:\n got %+v\nwant %+v", split, res, refRes)
				}
				if final := snapBytes(t, restored); !bytes.Equal(final, refFinal) {
					t.Fatalf("split %d: final machine state diverges from uninterrupted run", split)
				}
			}
		})
	}
}

// TestSnapshotCanonicalBytes: snapshotting, restoring, and snapshotting
// again yields identical bytes (pool layouts and map orders never leak).
func TestSnapshotCanonicalBytes(t *testing.T) {
	cfg := smallConfig(BuMP, workload.OnlineAnalytics(), 7)
	data := runSplit(t, cfg, cfg.WarmupCycles, 4096)
	s := mustNewSys(t, cfg)
	if err := s.Restore(bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	if again := snapBytes(t, s); !bytes.Equal(again, data) {
		t.Fatal("restore + re-snapshot changed the canonical bytes")
	}
}

// TestRestoreAcceptsMeasuredParamChanges: MeasureCycles and
// MaxRowHitStreak are measured parameters — a warm checkpoint restores
// into configs differing only in them (the warmed-sweep contract).
func TestRestoreAcceptsMeasuredParamChanges(t *testing.T) {
	cfg := smallConfig(BuMP, workload.WebSearch(), 9)
	data := runSplit(t, cfg, cfg.WarmupCycles, 4096)

	swept := cfg
	swept.MeasureCycles = 90_000
	swept.MaxRowHitStreak = 8
	s := mustNewSys(t, swept)
	if err := s.Restore(bytes.NewReader(data)); err != nil {
		t.Fatalf("measured-param variant rejected: %v", err)
	}
	if _, err := s.RunWithHooks(Hooks{}); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreRejectsStructuralMismatch: any structural difference —
// seed, mechanism, cache geometry, warmup window — must be rejected.
func TestRestoreRejectsStructuralMismatch(t *testing.T) {
	cfg := smallConfig(BuMP, workload.WebSearch(), 9)
	data := runSplit(t, cfg, cfg.WarmupCycles/2, 4096)

	variants := map[string]func(*Config){
		"seed":      func(c *Config) { c.Seed = 10 },
		"mechanism": func(c *Config) { c.Mechanism = BaseOpen },
		"llc":       func(c *Config) { c.LLCBytes = 512 << 10 },
		"warmup":    func(c *Config) { c.WarmupCycles = 50_000 },
		"threshold": func(c *Config) { c.BuMP.DensityThreshold = 4 },
	}
	for name, mutate := range variants {
		bad := cfg
		mutate(&bad)
		s := mustNewSys(t, bad)
		if err := s.Restore(bytes.NewReader(data)); err == nil {
			t.Errorf("structural variant %q accepted", name)
		}
	}
}

// TestRestoreRejectsDifferentStreamContent: the config digest cannot
// see inside a custom Streams hook, so the per-stream content
// fingerprint must stop a checkpoint saved under one access sequence
// from silently resuming under another.
func TestRestoreRejectsDifferentStreamContent(t *testing.T) {
	mkAccesses := func(seed int64, n int) []mem.Access {
		gen, err := workload.NewGenerator(workload.WebSearch(), seed)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]mem.Access, n)
		for i := range out {
			out[i] = gen.Next()
		}
		return out
	}
	withReplay := func(accs []mem.Access) Config {
		cfg := smallConfig(BaseOpen, workload.WebSearch(), 1)
		cfg.Streams = func(core int) workload.Stream {
			r, err := workload.NewReplay(accs)
			if err != nil {
				t.Fatal(err)
			}
			return r
		}
		return cfg
	}

	cfgA := withReplay(mkAccesses(100, 5000))
	data := runSplit(t, cfgA, cfgA.WarmupCycles/2, 4096)

	// Same trace content restores fine...
	same := mustNewSys(t, withReplay(mkAccesses(100, 5000)))
	if err := same.Restore(bytes.NewReader(data)); err != nil {
		t.Fatalf("identical trace content rejected: %v", err)
	}
	// ...different content must be rejected, not silently resumed.
	other := mustNewSys(t, withReplay(mkAccesses(200, 5000)))
	if err := other.Restore(bytes.NewReader(data)); err == nil {
		t.Fatal("checkpoint restored under a different access sequence")
	}
}

func TestRestoreRequiresFreshSystem(t *testing.T) {
	cfg := smallConfig(BuMP, workload.WebSearch(), 3)
	data := runSplit(t, cfg, cfg.WarmupCycles/2, 4096)
	s := mustNewSys(t, cfg)
	if _, err := s.RunWithHooks(Hooks{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(bytes.NewReader(data)); err == nil {
		t.Fatal("restore into a used system accepted")
	}
}

// TestWarmStoreSharesOneWarmup: N configurations differing only in a
// measured parameter simulate exactly one warmup between them.
func TestWarmStoreSharesOneWarmup(t *testing.T) {
	cfg := smallConfig(BuMP, workload.WebSearch(), 5)
	ws := NewWarmStore(4)
	const points = 6
	for i := 0; i < points; i++ {
		c := cfg
		c.MaxRowHitStreak = i
		if _, err := ws.Run(c); err != nil {
			t.Fatal(err)
		}
	}
	st := ws.Stats()
	if st.Misses != 1 || st.Hits != points-1 {
		t.Fatalf("warm store: %d misses / %d hits, want 1 / %d", st.Misses, st.Hits, points-1)
	}
	if st.WarmupCyclesSimulated != cfg.WarmupCycles {
		t.Fatalf("simulated %d warmup cycles, want exactly one warmup (%d)", st.WarmupCyclesSimulated, cfg.WarmupCycles)
	}
	if st.WarmupCyclesReused != (points-1)*cfg.WarmupCycles {
		t.Fatalf("reused %d warmup cycles, want %d", st.WarmupCyclesReused, (points-1)*cfg.WarmupCycles)
	}
}

// TestWarmStoreIdenticalConfigBitIdentical: a warm-restored run of the
// *same* configuration matches a cold run exactly.
func TestWarmStoreIdenticalConfigBitIdentical(t *testing.T) {
	cfg := smallConfig(BuMPVWQ, workload.WebServing(), 6)
	cold, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWarmStore(2)
	first, err := ws.Run(cfg) // miss: simulates warmup, publishes checkpoint
	if err != nil {
		t.Fatal(err)
	}
	second, err := ws.Run(cfg) // hit: restores the checkpoint
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, cold) || !reflect.DeepEqual(second, cold) {
		t.Fatal("warm-restored run diverges from cold run for an identical config")
	}
	if st := ws.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("warm store stats %+v, want 1 hit / 1 miss", st)
	}
}

// TestWarmStoreOrderIndependent: warmed-sweep results are a function of
// each point's configuration only — never of which point happened to
// warm first. Two stores visiting the same points in opposite orders
// must agree point-for-point (the warmup is always simulated under the
// canonical warm configuration, so the leader's own measured parameters
// cannot leak into the shared checkpoint).
func TestWarmStoreOrderIndependent(t *testing.T) {
	cfg := smallConfig(BuMP, workload.DataServing(), 11)
	caps := []int{5, 0, 9}

	runOrder := func(order []int) map[int]Result {
		ws := NewWarmStore(4)
		out := make(map[int]Result, len(order))
		for _, c := range order {
			pt := cfg
			pt.MaxRowHitStreak = c
			res, err := ws.Run(pt)
			if err != nil {
				t.Fatal(err)
			}
			out[c] = res
		}
		return out
	}
	fwd := runOrder(caps)
	rev := runOrder([]int{9, 0, 5})
	for _, c := range caps {
		if !reflect.DeepEqual(fwd[c], rev[c]) {
			t.Fatalf("cap %d: result depends on sweep order", c)
		}
	}

	// The zero-measured-param point is additionally bit-identical to
	// its cold run.
	cold, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fwd[0], cold) {
		t.Fatal("canonical point diverges from cold run")
	}
}

// TestWarmStoreSkipsCustomStreams: non-hashable stream configs bypass
// the store.
func TestWarmStoreSkipsCustomStreams(t *testing.T) {
	cfg := smallConfig(BaseOpen, workload.WebSearch(), 2)
	gen := func(core int) workload.Stream {
		g, err := workload.NewGenerator(cfg.Workload, workload.CoreSeed(cfg.Seed, core))
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	cfg.Streams = gen
	ws := NewWarmStore(2)
	if _, err := ws.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if st := ws.Stats(); st.Skipped != 1 || st.Misses != 0 {
		t.Fatalf("custom-stream run not skipped: %+v", st)
	}
}
