package sim

import (
	"testing"

	"bump/internal/mem"
	"bump/internal/workload"
)

// recordStream materialises the first n accesses of a stream.
func recordStream(s workload.Stream, n int) []mem.Access {
	out := make([]mem.Access, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

func TestRunSeedsParallelAndOrdered(t *testing.T) {
	cfg := fastConfig(BaseOpen, workload.WebSearch())
	cfg.MeasureCycles = 300_000
	rs, err := RunSeeds(cfg, []int64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("results = %d", len(rs))
	}
	// Each seed must be a valid, distinct sample.
	for i, r := range rs {
		if r.MemoryAccesses() == 0 {
			t.Errorf("seed %d: no traffic", i)
		}
	}
	if rs[0].DRAM == rs[1].DRAM && rs[1].DRAM == rs[2].DRAM {
		t.Error("different seeds should differ")
	}
	// Determinism: rerunning a seed reproduces it exactly.
	again, err := RunSeeds(cfg, []int64{20})
	if err != nil {
		t.Fatal(err)
	}
	if again[0].DRAM != rs[1].DRAM {
		t.Error("seed 20 must reproduce exactly")
	}
}

func TestRunSeedsValidates(t *testing.T) {
	cfg := fastConfig(BaseOpen, workload.WebSearch())
	cfg.Cores = 0
	if _, err := RunSeeds(cfg, []int64{1}); err == nil {
		t.Error("invalid config must error")
	}
}

func TestAggregateResults(t *testing.T) {
	cfg := fastConfig(BuMP, workload.WebSearch())
	cfg.MeasureCycles = 300_000
	rs, err := RunSeeds(cfg, []int64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	a := AggregateResults(rs)
	if a.N != 4 {
		t.Errorf("N = %d", a.N)
	}
	if a.RowHitRatio <= 0 || a.IPC <= 0 || a.EPATotal <= 0 {
		t.Error("aggregate means must be positive")
	}
	if a.RowHitRatioCI < 0 || a.IPCCI < 0 {
		t.Error("confidence half-widths must be non-negative")
	}
	// Mean must lie within the per-seed extremes.
	min, max := rs[0].RowHitRatio(), rs[0].RowHitRatio()
	for _, r := range rs[1:] {
		if h := r.RowHitRatio(); h < min {
			min = h
		} else if h > max {
			max = h
		}
	}
	if a.RowHitRatio < min || a.RowHitRatio > max {
		t.Errorf("mean %.3f outside [%.3f, %.3f]", a.RowHitRatio, min, max)
	}
}

func TestTraceReplayDrivesSimulator(t *testing.T) {
	// Record per-core traces from the generator, then drive the
	// simulator from the recordings: results must match the
	// generator-driven run exactly (the replay is a faithful stand-in).
	w := workload.WebSearch()
	cfg := fastConfig(BaseOpen, w)
	cfg.MeasureCycles = 200_000
	direct, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const traceLen = 200_000 // long enough that the replay never wraps
	cfg2 := cfg
	cfg2.Streams = func(core int) workload.Stream {
		gen, err := workload.NewGenerator(w, cfg.Seed+int64(core)*7919)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := workload.NewReplay(recordStream(gen, traceLen))
		if err != nil {
			t.Fatal(err)
		}
		return rp
	}
	replayed, err := RunOne(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if direct.DRAM != replayed.DRAM || direct.Instructions != replayed.Instructions {
		t.Error("trace replay must reproduce the generator-driven run")
	}
}

func TestReplayWrapsAround(t *testing.T) {
	g, _ := workload.NewGenerator(workload.WebSearch(), 1)
	rec := recordStream(g, 10)
	rp, err := workload.NewReplay(rec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		rp.Next()
	}
	if rp.Next() != rec[0] {
		t.Error("replay must wrap to the start")
	}
	if _, err := workload.NewReplay(nil); err == nil {
		t.Error("empty trace must be rejected")
	}
}
