package sim

import (
	"errors"
	"testing"

	"bump/internal/trace"
	"bump/internal/workload"
)

// captureStreams materialises a deterministic trace and returns its
// replay hook plus the trace itself.
func captureStreams(t *testing.T, n int) (*trace.Trace, func(core int) workload.Stream) {
	t.Helper()
	tr, err := trace.Capture(workload.WebSearch(), 0, 1, n)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := tr.Streams()
	if err != nil {
		t.Fatal(err)
	}
	return tr, streams
}

// TestReplayDrivenRunIsDeterministic is the satellite acceptance test:
// a sim run driven by a recorded trace is deterministic — rerunning the
// same trace reproduces the result bit-for-bit — and actually exercises
// the replayed accesses.
func TestReplayDrivenRunIsDeterministic(t *testing.T) {
	tr, streams := captureStreams(t, 50_000)
	cfg := fastConfig(BuMP, workload.WebSearch())
	cfg.Streams = streams

	first, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.MemoryAccesses() == 0 || first.Instructions == 0 {
		t.Fatal("replay run produced no activity")
	}

	// Rerun from a fresh decode-equivalent of the same trace.
	streams2, err := tr.Streams()
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := fastConfig(BuMP, workload.WebSearch())
	cfg2.Streams = streams2
	second, err := RunOne(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if first.DRAM != second.DRAM || first.Counters != second.Counters ||
		first.Instructions != second.Instructions || first.LLC != second.LLC {
		t.Error("identical trace replays must produce identical results")
	}

	// Replay is a different stream shape than the generators (every
	// core plays the same recorded stream), so it must diverge from the
	// synthetic run of the same preset.
	synth, err := RunOne(fastConfig(BuMP, workload.WebSearch()))
	if err != nil {
		t.Fatal(err)
	}
	if synth.DRAM == first.DRAM {
		t.Error("replay unexpectedly matched the synthetic generator run")
	}
}

func TestRunWithHooksProgressAndEquivalence(t *testing.T) {
	cfg := fastConfig(BuMP, workload.WebSearch())
	plain, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var snaps []Progress
	hooked, err := RunOneWithHooks(cfg, Hooks{
		Interval: 50_000,
		Progress: func(p Progress) { snaps = append(snaps, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Chunked execution must not perturb the simulation.
	if hooked.DRAM != plain.DRAM || hooked.Counters != plain.Counters {
		t.Error("hooked run diverged from plain run")
	}
	total := cfg.WarmupCycles + cfg.MeasureCycles
	if len(snaps) != int(total/50_000) {
		t.Errorf("%d progress snapshots, want %d", len(snaps), total/50_000)
	}
	for i, p := range snaps {
		if p.TotalCycles != total {
			t.Errorf("snapshot %d total %d, want %d", i, p.TotalCycles, total)
		}
		if i > 0 && (p.Cycle <= snaps[i-1].Cycle || p.Events < snaps[i-1].Events) {
			t.Errorf("snapshot %d not monotonic", i)
		}
	}
	final := snaps[len(snaps)-1]
	if final.Cycle != total || !final.Measuring || final.Instructions == 0 {
		t.Errorf("final snapshot %+v", final)
	}
}

func TestRunWithHooksCancel(t *testing.T) {
	cfg := fastConfig(BuMP, workload.WebSearch())
	var polls int
	_, err := RunOneWithHooks(cfg, Hooks{
		Interval: 10_000,
		Cancel:   func() bool { polls++; return polls >= 3 },
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled run returned %v, want ErrCanceled", err)
	}
	if polls != 3 {
		t.Errorf("cancel polled %d times, want 3", polls)
	}
}
