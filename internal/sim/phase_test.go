package sim

import (
	"testing"
	"time"

	"bump/internal/workload"
)

// TestPhaseHookTimings pins the coarse phase-timer contract: a hooked
// run emits warmup, measure and encode exactly once, in order, with
// contiguous non-negative intervals covering the whole run.
func TestPhaseHookTimings(t *testing.T) {
	w, _ := workload.ByName("web-search")
	cfg := smallConfig(mustMech(t, "bump"), w, 1)

	type ph struct {
		name       string
		start, end time.Time
	}
	var phases []ph
	started := time.Now()
	_, err := RunOneWithHooks(cfg, Hooks{
		Phase: func(name string, start, end time.Time) {
			phases = append(phases, ph{name, start, end})
		},
	})
	finished := time.Now()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"warmup", "measure", "encode"}
	if len(phases) != len(want) {
		t.Fatalf("phases = %v, want %v", phases, want)
	}
	for i, p := range phases {
		if p.name != want[i] {
			t.Fatalf("phase %d = %q, want %q", i, p.name, want[i])
		}
		if p.end.Before(p.start) {
			t.Fatalf("phase %q ends before it starts", p.name)
		}
		if i > 0 && !p.start.Equal(phases[i-1].end) {
			t.Fatalf("phase %q does not start where %q ended", p.name, phases[i-1].name)
		}
	}
	if phases[0].start.Before(started) || phases[len(phases)-1].end.After(finished) {
		t.Fatal("phase timings extend outside the run")
	}
}

// TestWarmPhaseHooks pins the warm store's phase emissions: a warm hit
// reports warm.resolve and restore; the leader that built the node
// reports trunk.extend.
func TestWarmPhaseHooks(t *testing.T) {
	w, _ := workload.ByName("web-search")
	cfg := smallConfig(mustMech(t, "bump"), w, 1)
	ws := NewWarmStore(4)

	record := func() map[string]int {
		seen := map[string]int{}
		_, err := ws.RunWithHooks(cfg, Hooks{
			Phase: func(name string, _, _ time.Time) { seen[name]++ },
		})
		if err != nil {
			t.Fatal(err)
		}
		return seen
	}
	leader := record()
	if leader["trunk.extend"] != 1 || leader["warm.resolve"] != 1 || leader["restore"] != 1 {
		t.Fatalf("leader phases = %v, want trunk.extend, warm.resolve and restore", leader)
	}
	hit := record()
	if hit["trunk.extend"] != 0 || hit["warm.resolve"] != 1 || hit["restore"] != 1 {
		t.Fatalf("warm-hit phases = %v, want warm.resolve and restore only", hit)
	}
}

// TestTracingDisabledAddsNoAllocs is the bench guard for the tracing
// layer: attaching a Phase hook may only cost O(1) allocations per run
// — never per event — so with tracing disabled (nil hook, the
// BenchmarkSimulatorThroughput configuration) the hot loop is untouched.
func TestTracingDisabledAddsNoAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is slow")
	}
	w, _ := workload.ByName("web-search")
	cfg := smallConfig(mustMech(t, "bump"), w, 1)
	cfg.WarmupCycles = 20_000
	cfg.MeasureCycles = 40_000

	var events uint64
	bare := testing.AllocsPerRun(2, func() {
		res, err := RunOne(cfg)
		if err != nil {
			t.Fatal(err)
		}
		events = res.Events
	})
	hooked := testing.AllocsPerRun(2, func() {
		if _, err := RunOneWithHooks(cfg, Hooks{
			Phase: func(string, time.Time, time.Time) {},
		}); err != nil {
			t.Fatal(err)
		}
	})
	// The hook fires 3 times per run; allow slack for the closure and
	// timer plumbing, but any per-event cost would blow far past this.
	const slack = 64
	if hooked > bare+slack {
		t.Fatalf("Phase hook added %v allocs/run over %v events (> %d): tracing is on the hot path",
			hooked-bare, events, slack)
	}
}

func mustMech(t *testing.T, name string) Mechanism {
	t.Helper()
	m, ok := MechanismByName(name)
	if !ok {
		t.Fatalf("unknown mechanism %q", name)
	}
	return m
}
