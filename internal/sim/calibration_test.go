package sim

import (
	"fmt"
	"testing"

	"bump/internal/workload"
)

// TestCalibrationReport prints the per-workload calibration summary used
// to populate EXPERIMENTS.md. It asserts only broad shape invariants; run
// with -v to see the numbers.
func TestCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full-window calibration is slow")
	}
	for _, w := range workload.All() {
		ro, err := RunOne(DefaultConfig(BaseOpen, w))
		if err != nil {
			t.Fatal(err)
		}
		rb, err := RunOne(DefaultConfig(BuMP, w))
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("%-18s base: hit=%4.1f%% highR=%4.1f%% highW=%4.1f%% wrFrac=%4.1f%% storeRd=%4.1f%% ideal=%4.1f%% | bump: hit=%4.1f%% cov=%4.1f%% ovf=%4.1f%% wcov=%4.1f%% dEPA=%+5.1f%% dIPC=%+5.1f%%\n",
			w.Name,
			100*ro.RowHitRatio(), 100*ro.Profile.HighDensityReadFraction(), 100*ro.Profile.HighDensityWriteFraction(),
			100*float64(ro.Profile.Writes)/float64(ro.Profile.Accesses()),
			100*float64(ro.Profile.StoreReads)/float64(ro.Profile.Reads()),
			100*ro.Profile.IdealHitRatio(),
			100*rb.RowHitRatio(), 100*rb.ReadCoverage(), 100*rb.ReadOverfetch(), 100*rb.WriteCoverage(),
			100*(rb.EPATotal/ro.EPATotal-1), 100*(rb.IPC()/ro.IPC()-1))
		if rb.RowHitRatio() <= ro.RowHitRatio() {
			t.Errorf("%s: BuMP must improve row-buffer locality", w.Name)
		}
		if rb.EPATotal >= ro.EPATotal {
			t.Errorf("%s: BuMP must reduce energy per access", w.Name)
		}
	}
}
