package sim

import (
	"math"

	"bump/internal/cache"
	"bump/internal/core"
	"bump/internal/dram"
	"bump/internal/event"
	"bump/internal/mem"
	"bump/internal/memctrl"
	"bump/internal/noc"
	"bump/internal/prefetch"
	"bump/internal/scenario"
	"bump/internal/stats"
	"bump/internal/workload"
	"bump/internal/writeback"
)

// Counters are the simulator-level event counts used by the coverage and
// overhead analyses (Figs. 8 and 12).
type Counters struct {
	// DemandReads counts read transactions sent to DRAM for demand
	// misses (a demand miss that merges onto an in-flight bulk fill
	// does not count — the bulk transfer covered it).
	DemandReads uint64
	// BulkReads counts region-streaming reads issued by BuMP or
	// Full-region; PrefetchReads counts stride/SMS prefetch fills.
	BulkReads     uint64
	PrefetchReads uint64
	// LateBulkReads counts demand accesses that merged onto an
	// in-flight bulk/prefetch fill: the DRAM read was shared but the
	// data did not arrive before the request, so the paper's coverage
	// metric counts it as on-demand, not predicted.
	LateBulkReads uint64
	// DemandWrites counts ordinary dirty-eviction writebacks;
	// EagerWrites counts bulk/VWQ writebacks of still-resident blocks.
	DemandWrites uint64
	EagerWrites  uint64
	// PrematureWrites counts eagerly written-back blocks that were
	// re-dirtied before eviction (each caused an extra DRAM write).
	PrematureWrites uint64
	// LLCProbes counts generation-logic and VWQ lookups into the LLC
	// (traffic beyond demand lookups, Fig. 12).
	LLCProbes uint64
	// Instructions is the committed work+memory-op count across cores.
	Instructions uint64
	// WindowStalls/MSHRStalls/ChainStalls count core stall episodes.
	WindowStalls uint64
	MSHRStalls   uint64
	ChainStalls  uint64
}

// waiterSlot is one pooled demand-transaction record, tracking a memory
// access from core issue to data delivery. Slots live in the System's
// slab, indexed by token; next is the free-list link. A token packs the
// slot index (low 32 bits, +1 so tokens are non-zero) with the slot's
// generation (high 32 bits), so a stale token can never touch a recycled
// slot.
type waiterSlot struct {
	acc   mem.Access // the access in flight to the LLC
	pos   uint64
	issue uint64 // cycle the access left the core (for latency stats)
	core  int32
	chain uint32
	gen   uint32
	load  bool
	state uint8
	next  int32
}

const (
	waiterFree    uint8 = iota
	waiterActive        // in NOC flight to the LLC, or parked on an MSHR
	waiterClaimed       // data on its way back to the core
)

// Closure-free event handlers (event.Handler): the receiver rides in
// obj; payload words carry the token / chain id / block address. They
// are registered with the event package so pending events survive a
// checkpoint (internal/snapshot).
var coreAdvanceH, chainDoneH, llcAccessH, deliverH event.Handler

func init() {
	coreAdvanceH = event.RegisterHandler("sim.coreAdvance", func(obj any, _, _ uint64) { obj.(*coreRunner).advance() })
	chainDoneH = event.RegisterHandler("sim.chainDone", func(obj any, chain, _ uint64) { obj.(*coreRunner).chainDone(uint32(chain)) })
	llcAccessH = event.RegisterHandler("sim.llcAccess", func(obj any, tok, _ uint64) { obj.(*System).llcAccess(tok) })
	deliverH = event.RegisterHandler("sim.deliver", func(obj any, tok, blk uint64) { obj.(*System).deliver(tok, mem.BlockAddr(blk)) })
}

// System is one fully wired simulated server.
type System struct {
	cfg Config
	eng *event.Engine
	// unc is the uncore's posting endpoint (the LLC/memory path and the
	// memory controller post through it). It forwards to eng outside
	// parallel windows; the parallel runner binds it to shard 0 inside
	// them (see parallel.go).
	unc *event.Port

	cores    []*coreRunner
	llc      *cache.Cache
	llcMSHRs *cache.MSHRTable
	xbar     *noc.Crossbar
	mc       *memctrl.Controller
	dram     *dram.DRAM
	prof     *Profile

	bump        *core.Predictor
	pf          prefetch.Prefetcher
	vwq         *writeback.VWQ
	regionShift uint
	carriesPC   bool

	dirtyCount map[mem.RegionAddr]int
	waiters    []waiterSlot
	freeWaiter int32

	counters Counters
	// scratch is the reusable buffer for region scans on the bulk
	// generation paths.
	scratch []mem.BlockAddr
	// loadLatency samples demand-load round trips (issue to data back at
	// the core) within the measurement window.
	loadLatency stats.Dist

	// primed records that the cores' initial advance events have been
	// posted; a restored system arrives primed (its events are in the
	// queue) and must not be re-armed.
	primed bool
	// base is the measurement baseline: the counter snapshot taken the
	// moment the warmup window completes. It is part of the
	// checkpointable state so a run split after the warmup boundary
	// still reports exact measurement-window deltas.
	base      snap
	baseTaken bool
	// measuredBound records that the deferred measured parameters
	// (Config.ForkAt) have been applied. Derived from cfg and the engine
	// clock, never serialized: a system built with ForkAt > 0 starts
	// canonical and binds when the run reaches the fork cycle.
	measuredBound bool

	// par is the active parallel-execution state (nil when running the
	// sequential engine); lastParallel keeps the most recent run's
	// parallel statistics readable after the runner is stopped. Neither
	// is simulated state: snapshots and results never include them.
	par          *parallelState
	lastParallel ParallelStats
}

// New builds a system from cfg.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng := event.New()
	unc := event.NewPort(eng)
	d := dram.New(cfg.DRAM)
	ctrlCfg := cfg
	if cfg.ForkAt > 0 {
		// Deferred measured parameters: the machine is built canonical
		// (cap = 0) and bindMeasured applies the configured values when
		// the run reaches the fork cycle, so the pre-fork trajectory is
		// byte-shared with every sibling branch.
		ctrlCfg.MaxRowHitStreak = 0
	}
	mc, err := memctrl.New(ctrlCfg.controllerConfig(), d, unc)
	if err != nil {
		return nil, err
	}
	s := &System{
		cfg:         cfg,
		eng:         eng,
		unc:         unc,
		llc:         cache.New(cfg.LLCBytes, cfg.LLCWays),
		llcMSHRs:    cache.NewMSHRTable(1 << 16), // effectively unbounded fill queue
		xbar:        noc.New(cfg.NOCLatencyCycles),
		mc:          mc,
		dram:        d,
		prof:        NewProfile(cfg.BuMP.RegionShift),
		regionShift: cfg.BuMP.RegionShift,
		dirtyCount:  make(map[mem.RegionAddr]int),
		freeWaiter:  -1,

		measuredBound: cfg.ForkAt == 0,
	}
	mc.Handler = s.onMemComplete

	switch cfg.Mechanism {
	case BaseClose, BaseOpen:
		s.pf = prefetch.DefaultStride()
	case SMSOnly:
		s.pf = prefetch.DefaultSMS()
	case VWQOnly:
		s.pf = prefetch.DefaultStride()
		s.vwq = writeback.Default()
	case SMSVWQ:
		s.pf = prefetch.DefaultSMS()
		s.vwq = writeback.Default()
	case FullRegion:
		bc := cfg.BuMP
		bc.FullRegion = true
		s.bump = core.New(bc)
	case BuMP:
		s.bump = core.New(cfg.BuMP)
		s.carriesPC = true
	case BuMPVWQ:
		s.bump = core.New(cfg.BuMP)
		s.carriesPC = true
		s.vwq = writeback.Default()
	}
	if cfg.DisablePrefetcher {
		s.pf = nil
	}

	s.cores = make([]*coreRunner, cfg.Cores)
	for i := range s.cores {
		var stream workload.Stream
		switch {
		case cfg.Streams != nil:
			stream = cfg.Streams(i)
		case cfg.Scenario.Enabled():
			tl, err := cfg.Scenario.TimelineFor(i)
			if err != nil {
				return nil, err
			}
			comp, err := scenario.NewComposite(tl, workload.CoreSeed(cfg.Seed, i))
			if err != nil {
				return nil, err
			}
			stream = comp
		default:
			gen, err := workload.NewGenerator(cfg.Workload, workload.CoreSeed(cfg.Seed, i))
			if err != nil {
				return nil, err
			}
			stream = gen
		}
		s.cores[i] = &coreRunner{
			id:     i,
			sys:    s,
			stream: stream,
			l1:     cache.New(cfg.L1Bytes, cfg.L1Ways),
			chains: make(map[uint32]bool),
			port:   event.NewPort(eng),
			ctr:    &s.counters,
			xbar:   s.xbar,
		}
	}
	return s, nil
}

// Engine exposes the event engine (tests drive it directly).
func (s *System) Engine() *event.Engine { return s.eng }

// bindMeasured applies the deferred measured parameters at the fork
// cycle. The cap honours the same mechanism gating as construction:
// close-row and forced-block-interleave controllers never see it, so
// binding sets exactly the value a cold build of cfg would have used.
func (s *System) bindMeasured() {
	s.measuredBound = true
	s.mc.SetMaxRowHitStreak(s.cfg.controllerConfig().MaxRowHitStreak)
}

// Predictor exposes the BuMP predictor, if the mechanism has one.
func (s *System) Predictor() *core.Predictor { return s.bump }

// newToken hands the issuing core a waiter token for an access leaving
// for the LLC. Sequentially it allocates the slab slot on the spot;
// inside a parallel window the allocation is logged for the barrier
// replay and a provisional token stands in (see parallel.go) — only the
// posted llcAccess event ever carries it, and that event is patched to
// the real token before entering the engine.
func (s *System) newToken(acc mem.Access, core int, load bool, pos uint64, issue uint64) uint64 {
	if sr := s.cores[core].port.Shard(); sr != nil {
		sh := &s.par.shards[s.cores[core].port.Tag]
		id := uint64(len(sh.allocs))
		sh.allocs = append(sh.allocs, allocRec{acc: acc, pos: pos, issue: issue, core: int32(core), load: load})
		sh.realTok = append(sh.realTok, 0)
		sr.Op(opAllocWaiter, id)
		return provTokFlag | uint64(s.cores[core].port.Tag)<<provTokShardShift | id
	}
	return s.allocWaiter(acc, core, load, pos, issue)
}

// allocWaiter is the sequential slab allocation.
func (s *System) allocWaiter(acc mem.Access, core int, load bool, pos uint64, issue uint64) uint64 {
	idx := s.freeWaiter
	if idx >= 0 {
		s.freeWaiter = s.waiters[idx].next
	} else {
		s.waiters = append(s.waiters, waiterSlot{})
		idx = int32(len(s.waiters) - 1)
	}
	w := &s.waiters[idx]
	w.acc, w.core, w.load, w.pos, w.chain, w.issue = acc, int32(core), load, pos, acc.Chain, issue
	w.state = waiterActive
	return uint64(w.gen)<<32 | uint64(uint32(idx+1))
}

// waiterByTok resolves a token, returning nil for stale or invalid ones.
func (s *System) waiterByTok(tok uint64) (int32, *waiterSlot) {
	idx := int32(uint32(tok)) - 1
	if idx < 0 || int(idx) >= len(s.waiters) {
		return -1, nil
	}
	w := &s.waiters[idx]
	if w.gen != uint32(tok>>32) || w.state == waiterFree {
		return -1, nil
	}
	return idx, w
}

func (s *System) freeWaiterSlot(idx int32) {
	w := &s.waiters[idx]
	w.gen++
	w.state = waiterFree
	w.next = s.freeWaiter
	s.freeWaiter = idx
}

// ---- core model ------------------------------------------------------

type coreRunner struct {
	id     int
	sys    *System
	stream workload.Stream
	l1     *cache.Cache
	// port is the core's posting endpoint; ctr and xbar are where its
	// stall counters and NOC sends land. Sequentially they alias the
	// system's authoritative structures; under parallel execution they
	// point at the core's shard-private deltas (merged at barriers).
	port *event.Port
	ctr  *Counters
	xbar *noc.Crossbar

	cur     mem.Access
	hasCur  bool
	freeAt  uint64
	pos     uint64   // retired-instruction position
	pending []uint64 // program positions of outstanding blocking loads
	mshrs   int
	chains  map[uint32]bool

	instructions uint64
	armed        bool
}

func (c *coreRunner) arm(at uint64) {
	if c.armed {
		return
	}
	c.armed = true
	c.port.Post(at, coreAdvanceH, c, 0, 0)
}

func (c *coreRunner) wake() {
	if !c.armed {
		c.arm(c.port.Now())
	}
}

// advance is the core's issue loop: consume work, respect the
// out-of-order window, dependent chains and MSHR limits, then hand memory
// accesses to the LLC over the NOC.
func (c *coreRunner) advance() {
	c.armed = false
	s := c.sys
	now := c.port.Now()
	if now < c.freeAt {
		c.arm(c.freeAt)
		return
	}
	for spins := 0; spins < 64; spins++ {
		if !c.hasCur {
			c.cur = c.stream.Next()
			c.hasCur = true
		}
		a := &c.cur

		// Data dependency: a chained access waits for the previous
		// link's data.
		if a.Chain != 0 && c.chains[a.Chain] {
			c.ctr.ChainStalls++
			return // chain completion wakes us
		}
		// Window: the oldest outstanding load blocks retirement; we
		// cannot run more than WindowSize instructions past it.
		newPos := c.pos + uint64(a.Work) + 1
		if len(c.pending) > 0 && newPos-c.pending[0] > uint64(s.cfg.WindowSize) {
			c.ctr.WindowStalls++
			return // load completion wakes us
		}

		isLoad := a.Type == mem.Load
		block := a.Addr.Block()
		l1Hit := isLoad && c.l1.Lookup(block, true) != nil
		if !l1Hit && c.mshrs >= s.cfg.L1MSHRs {
			c.ctr.MSHRStalls++
			return // MSHR release wakes us
		}

		// Commit the access.
		c.pos = newPos
		c.instructions += uint64(a.Work) + 1
		acc := c.cur
		c.hasCur = false
		w := (uint64(a.Work) + uint64(s.cfg.RetireWidth) - 1) / uint64(s.cfg.RetireWidth)
		issueAt := now + w
		c.freeAt = issueAt

		if l1Hit {
			if acc.Chain != 0 {
				c.chains[acc.Chain] = true
				done := issueAt + s.cfg.L1LatencyCycles
				c.port.Post(done, chainDoneH, c, uint64(acc.Chain), 0)
			}
		} else {
			c.mshrs++
			if isLoad {
				c.pending = append(c.pending, c.pos)
				if acc.Chain != 0 {
					c.chains[acc.Chain] = true
				}
			}
			tok := s.newToken(acc, c.id, isLoad, c.pos, issueAt)
			lat := c.xbar.Send(noc.Control, s.carriesPC)
			c.port.Post(issueAt+lat, llcAccessH, s, tok, 0)
		}

		if c.freeAt > now {
			c.arm(c.freeAt)
			return
		}
	}
	// Yield after many zero-work issues to keep events bounded.
	c.arm(now + 1)
}

func (c *coreRunner) chainDone(chain uint32) {
	delete(c.chains, chain)
	c.wake()
}

// ---- LLC and memory path ---------------------------------------------

// llcAccess handles a demand access arriving at the LLC. The access
// itself rides in the token's waiter slot.
func (s *System) llcAccess(tok uint64) {
	_, w := s.waiterByTok(tok)
	if w == nil || w.state != waiterActive {
		return
	}
	a := w.acc
	b := a.Addr.Block()
	isStore := a.Type == mem.Store
	now := s.unc.Now()

	s.prof.OnDemandAccess(b)
	if s.bump != nil {
		s.bump.Touch(a.PC, b, isStore)
	}

	core := int(w.core)
	line := s.llc.Lookup(b, true)
	if line != nil {
		if isStore {
			s.markDirty(line)
		}
		s.finishWaiter(tok, b, now+s.cfg.LLCLatencyCycles)
		if !isStore && s.pf != nil {
			s.issuePrefetches(s.pf.OnAccess(core, a.PC, b, false), a.PC)
		}
		return
	}

	// LLC miss.
	if _, merged, _ := s.llcMSHRs.Allocate(b, true, tok); !merged {
		kind := mem.ReadDemandLoad
		if isStore {
			kind = mem.ReadDemandStore
		}
		s.counters.DemandReads++
		s.mc.Enqueue(mem.Request{
			Op: mem.MemRead, Kind: kind, Addr: b.Addr(), PC: a.PC,
			Core: core, Issue: now,
		})
		if s.bump != nil {
			if stream, pattern := s.bump.ReadMissFootprint(a.PC, b); stream {
				s.generateBulkRead(a.PC, b, pattern)
			}
		}
	}
	if !isStore && s.pf != nil {
		s.issuePrefetches(s.pf.OnAccess(core, a.PC, b, true), a.PC)
	}
}

// generateBulkRead is BuMP's access generation logic: stream every
// not-yet-cached block of the region covered by the predicted pattern
// (except the demand trigger). The paper's design passes a whole-region
// pattern; the footprint ablation restricts it.
func (s *System) generateBulkRead(pc mem.PC, trigger mem.BlockAddr, pattern uint64) {
	region := trigger.Region(s.regionShift)
	// The generation logic reads the region's tags in wide, banked
	// tag-array accesses (4 tags per probe).
	s.counters.LLCProbes += uint64(mem.BlocksPerRegion(s.regionShift)+3) / 4
	s.scratch = s.llc.AppendMissingBlocksInRegion(s.scratch[:0], region, s.regionShift, trigger)
	for _, nb := range s.scratch {
		if pattern&(1<<nb.Offset(s.regionShift)) == 0 {
			continue
		}
		if _, outstanding := s.llcMSHRs.Lookup(nb); outstanding {
			continue
		}
		s.llcMSHRs.Allocate(nb, false, 0)
		s.counters.BulkReads++
		s.mc.Enqueue(mem.Request{
			Op: mem.MemRead, Kind: mem.ReadPrefetch, Addr: nb.Addr(), PC: pc,
			Bulk: true, BulkGroup: uint64(region) + 1, Issue: s.unc.Now(),
		})
	}
}

// issuePrefetches files stride/SMS prefetch candidates.
func (s *System) issuePrefetches(blocks []mem.BlockAddr, pc mem.PC) {
	for _, nb := range blocks {
		if s.llc.Contains(nb) {
			continue
		}
		if _, outstanding := s.llcMSHRs.Lookup(nb); outstanding {
			continue
		}
		s.llcMSHRs.Allocate(nb, false, 0)
		s.counters.PrefetchReads++
		s.mc.Enqueue(mem.Request{
			Op: mem.MemRead, Kind: mem.ReadPrefetch, Addr: nb.Addr(), PC: pc,
			Issue: s.unc.Now(),
		})
	}
}

// finishWaiter claims a waiter and starts the data (or store-ack) trip
// back to the requesting core; deliver completes it.
func (s *System) finishWaiter(tok uint64, b mem.BlockAddr, at uint64) {
	_, w := s.waiterByTok(tok)
	if w == nil || w.state != waiterActive {
		return
	}
	w.state = waiterClaimed
	if w.load {
		s.xbar.Send(noc.Data, false)
	}
	s.unc.Post(at+s.cfg.NOCLatencyCycles, deliverH, s, tok, uint64(b))
}

// deliver lands the response at the core: latency accounting, MSHR and
// window release, L1 fill for loads, and a core wakeup. The waiter slot
// is recycled here.
func (s *System) deliver(tok uint64, b mem.BlockAddr) {
	idx, w := s.waiterByTok(tok)
	if w == nil || w.state != waiterClaimed {
		return
	}
	load, pos, chain, issue := w.load, w.pos, w.chain, w.issue
	cr := s.cores[w.core]
	now := cr.port.Now()
	if sr := cr.port.Shard(); sr != nil {
		// Parallel window: the slot free and the latency sample are slab
		// side effects — log them for the barrier replay (global order).
		// The slot stays claimed until then, which is invisible inside
		// the window: its only other readers run in later windows.
		sr.Op(opFreeWaiter, uint64(idx))
		if load && now >= s.cfg.WarmupCycles && now < s.cfg.WarmupCycles+s.cfg.MeasureCycles {
			sr.Op(opLoadSample, math.Float64bits(float64(now-issue)))
		}
	} else {
		s.freeWaiterSlot(idx)
		if load && now >= s.cfg.WarmupCycles && now < s.cfg.WarmupCycles+s.cfg.MeasureCycles {
			s.loadLatency.Add(float64(now - issue))
		}
	}
	cr.mshrs--
	if load {
		for i, p := range cr.pending {
			if p == pos {
				cr.pending = append(cr.pending[:i], cr.pending[i+1:]...)
				break
			}
		}
		if chain != 0 {
			delete(cr.chains, chain)
		}
		cr.l1.Fill(b, 0, cr.id, false)
	}
	cr.wake()
}

// markDirty transitions an LLC line to dirty, maintaining the region
// dirty-count and premature-writeback accounting.
func (s *System) markDirty(line *cache.Line) {
	if line.Dirty {
		return
	}
	if line.Cleaned {
		s.counters.PrematureWrites++
		line.Cleaned = false
	}
	line.Dirty = true
	s.dirtyCount[line.Block.Region(s.regionShift)]++
	s.prof.OnDirty(line.Block)
}

func (s *System) decDirty(r mem.RegionAddr, b mem.BlockAddr) {
	s.dirtyCount[r]--
	if s.dirtyCount[r] <= 0 {
		delete(s.dirtyCount, r)
		s.prof.OnWriteEpochEnd(b)
	}
}

// onMemComplete handles DRAM completions: writebacks finish silently;
// read fills install blocks, trigger evictions, and wake waiters.
func (s *System) onMemComplete(cp memctrl.Completion) {
	b := cp.Req.Addr.Block()
	if cp.Req.Op == mem.MemWrite {
		s.prof.OnDRAMWrite(b)
		return
	}

	if cp.Req.Kind != mem.ReadPrefetch {
		s.prof.OnDRAMRead(b, cp.Req.Kind == mem.ReadDemandStore)
	}
	prefetched := cp.Req.Kind == mem.ReadPrefetch
	line, ev := s.llc.Fill(b, cp.Req.PC, cp.Req.Core, prefetched)
	if ev.Valid {
		s.onEvict(ev.Line)
	}
	if m, ok := s.llcMSHRs.Complete(b); ok {
		now := s.unc.Now()
		for _, tok := range m.Waiters {
			_, w := s.waiterByTok(tok)
			if w == nil || w.state != waiterActive {
				continue
			}
			if line.Prefetched && !line.Referenced {
				// The demand request raced the bulk/prefetch fill:
				// the block is used, but it was not timely.
				s.counters.LateBulkReads++
				line.Referenced = true
			}
			if !w.load {
				s.markDirty(line)
			}
			s.finishWaiter(tok, b, now+s.cfg.LLCLatencyCycles)
		}
		s.llcMSHRs.Release(m)
	}
}

// llcProber adapts the LLC for VWQ's adjacent-block search.
type llcProber struct{ s *System }

// ProbeDirty implements writeback.DirtyProber.
func (p llcProber) ProbeDirty(b mem.BlockAddr) bool {
	p.s.counters.LLCProbes++
	l := p.s.llc.Lookup(b, false)
	return l != nil && l.Dirty
}

// onEvict processes an LLC eviction: writeback, BuMP termination/DRT,
// VWQ eager writeback, SMS generation closure, density profiling.
func (s *System) onEvict(l cache.Line) {
	b := l.Block
	region := b.Region(s.regionShift)
	s.prof.OnEvict(b, l.Dirty)
	if s.pf != nil {
		s.pf.OnEvict(b)
	}

	var bulkWB bool
	if s.bump != nil {
		bulkWB = s.bump.Evict(b, l.Dirty)
	}

	if l.Dirty {
		s.counters.DemandWrites++
		s.mc.Enqueue(mem.Request{Op: mem.MemWrite, Addr: b.Addr(), Issue: s.unc.Now()})
		s.decDirty(region, b)
		// With BuMP+VWQ, VWQ handles only the dirty evictions BuMP did
		// not claim (non-high-density regions, Section V.G footnote).
		if s.vwq != nil && !bulkWB {
			for _, nb := range s.vwq.OnDirtyEvict(b, llcProber{s}) {
				s.llc.CleanBlock(nb)
				s.counters.EagerWrites++
				s.decDirty(nb.Region(s.regionShift), nb)
				s.mc.Enqueue(mem.Request{Op: mem.MemWrite, Addr: nb.Addr(), Bulk: true, Issue: s.unc.Now()})
			}
		}
	}

	if bulkWB {
		s.counters.LLCProbes += uint64(mem.BlocksPerRegion(s.regionShift)+3) / 4
		s.scratch = s.llc.AppendDirtyBlocksInRegion(s.scratch[:0], region, s.regionShift)
		for _, db := range s.scratch {
			s.llc.CleanBlock(db)
			s.counters.EagerWrites++
			s.decDirty(region, db)
			s.mc.Enqueue(mem.Request{
				Op: mem.MemWrite, Addr: db.Addr(), Bulk: true,
				BulkGroup: uint64(region) + 1, Issue: s.unc.Now(),
			})
		}
	}
}
