package sim

import (
	"math"
	"runtime"

	"bump/internal/event"
	"bump/internal/mem"
	"bump/internal/noc"
)

// Parallel execution of one run: the system's event stream is split into
// conservative-lookahead windows (L = the NOC latency, the minimum
// core<->uncore traversal), each window's events are partitioned across
// shards — shard 0 owns the whole uncore (LLC, MSHRs, predictor,
// profiler, memory controller, DRAM), shards 1..W-1 own disjoint sets of
// cores — executed concurrently, and the window is committed through the
// event package's sequencer replay so the engine state, waiter slab,
// statistics and latency samples evolve byte-for-byte as the sequential
// engine's would. See internal/event/parallel.go for the ordering
// argument.
//
// Shared-state discipline inside a window:
//   - Core shards mutate only their cores' private state (L1, MSHR
//     counts, chains, pending, stream) plus per-shard delta counters and
//     a per-shard private crossbar; the three waiter-slab side effects a
//     core handler needs (slot allocation, slot free, latency sample)
//     are logged as Ops and applied at the barrier in global order.
//   - The uncore shard mutates its own structures directly (it runs on
//     the coordinating goroutine) and reads waiter slots; slots it reads
//     were written at least one barrier earlier, and slots it writes
//     (claiming) are read by core shards at least one barrier later
//     (the return NOC latency exceeds the lookahead).

// ParallelStats summarises the parallel engine's work over one run.
// Deliberately not part of Result: a Result must be byte-identical at
// every Workers count, while these numbers describe the execution, not
// the simulated machine.
type ParallelStats struct {
	// Workers is the effective shard count the run used (1 = the
	// sequential engine; the configured value is capped by GOMAXPROCS
	// and Cores+1).
	Workers int `json:"workers"`
	// Windows counts lookahead windows considered; ParallelWindows the
	// subset dense enough to fan out (the rest ran inline).
	Windows         uint64 `json:"windows"`
	ParallelWindows uint64 `json:"parallel_windows"`
	// Barriers counts epoch barriers (one per parallel window).
	Barriers uint64 `json:"barriers"`
	// InlineEvents/ParallelEvents split dispatched events by mode.
	InlineEvents   uint64 `json:"inline_events"`
	ParallelEvents uint64 `json:"parallel_events"`
	// BarrierStallNs is coordinator time spent waiting on workers;
	// RunNs is total wall time inside the parallel runner.
	BarrierStallNs int64 `json:"barrier_stall_ns"`
	RunNs          int64 `json:"run_ns"`
}

// Sequenced side-effect operations core shards log during a window (see
// ShardRun.Op); applyShardOp executes them at the barrier in global
// dispatch order, reproducing the sequential slab and sample evolution.
const (
	opAllocWaiter uint8 = 1
	opFreeWaiter  uint8 = 2
	opLoadSample  uint8 = 3
)

// Provisional waiter tokens: a core shard cannot allocate a slab slot
// mid-window, so newToken hands the posted llcAccess event a placeholder
// encoding (shard, per-window alloc index); the replay allocates the
// real slot in order and patches the event payload before it enters the
// engine. Bit 63 flags a placeholder — real tokens are gen<<32|idx+1
// and a slot generation never plausibly reaches 2^31.
const (
	provTokFlag       = uint64(1) << 63
	provTokShardShift = 48
)

type allocRec struct {
	acc        mem.Access
	pos, issue uint64
	core       int32
	load       bool
}

// shardDeltas is the per-shard private state for one run: stall-counter
// deltas and a private crossbar (merged into the authoritative ones
// after every engine advance), plus the per-window allocation log.
type shardDeltas struct {
	ctr     Counters
	xbar    *noc.Crossbar
	allocs  []allocRec
	realTok []uint64
}

type parallelState struct {
	run       *event.Sharded
	shards    []shardDeltas
	coreShard []int32
}

// effectiveWorkers resolves cfg.Workers to the shard count a run will
// actually use: capped by GOMAXPROCS (no oversubscription) and by
// Cores+1 (one uncore shard plus at most one shard per core). Any value
// below 2 means the sequential engine.
func (s *System) effectiveWorkers() int {
	w := s.cfg.Workers
	if w > runtime.GOMAXPROCS(0) {
		w = runtime.GOMAXPROCS(0)
	}
	if w > s.cfg.Cores+1 {
		w = s.cfg.Cores + 1
	}
	if w < 2 {
		return 1
	}
	return w
}

// startParallel builds the sharded runner and rebinds the cores' ports,
// counters and crossbars to their shards. Workers > 1 changes how the
// event stream is executed, never what it computes.
func (s *System) startParallel(w int) {
	if s.par != nil {
		return
	}
	par := &parallelState{
		shards:    make([]shardDeltas, w),
		coreShard: make([]int32, s.cfg.Cores),
	}
	for i := range par.shards {
		par.shards[i].xbar = noc.New(s.cfg.NOCLatencyCycles)
	}
	for i := range par.coreShard {
		par.coreShard[i] = int32(1 + i%(w-1))
	}
	ports := make([]*event.Port, 0, 1+len(s.cores))
	binding := make([]int, 0, 1+len(s.cores))
	ports = append(ports, s.unc)
	binding = append(binding, 0)
	for _, c := range s.cores {
		ports = append(ports, c.port)
		binding = append(binding, int(par.coreShard[c.id]))
	}
	lookahead := s.cfg.NOCLatencyCycles
	if lookahead == 0 {
		lookahead = 1
	}
	s.par = par
	par.run = event.NewSharded(s.eng, event.ShardedConfig{
		Shards:       w,
		Lookahead:    lookahead,
		Floor:        w + 1,
		SpreadFloor:  w,
		Route:        s.routeEvent,
		Local:        s.shardLocal,
		Apply:        s.applyShardOp,
		Patch:        s.patchShardPost,
		BeforeWindow: s.resetShardWindow,
		Ports:        ports,
		Binding:      binding,
	})
	for _, c := range s.cores {
		sh := par.coreShard[c.id]
		c.ctr = &par.shards[sh].ctr
		c.xbar = par.shards[sh].xbar
	}
}

// stopParallel releases the worker goroutines and restores the cores'
// sequential bindings. The accumulated runner statistics stay readable
// through lastParallel.
func (s *System) stopParallel() {
	if s.par == nil {
		return
	}
	s.lastParallel = s.parallelStats()
	s.par.run.Stop()
	for _, c := range s.cores {
		c.ctr = &s.counters
		c.xbar = s.xbar
		c.port.Tag = 0
	}
	s.unc.Tag = 0
	s.par = nil
}

func (s *System) parallelStats() ParallelStats {
	st := s.par.run.Stats()
	return ParallelStats{
		Workers:         st.Shards,
		Windows:         st.Windows,
		ParallelWindows: st.ParallelWindows,
		Barriers:        st.Barriers,
		InlineEvents:    st.InlineEvents,
		ParallelEvents:  st.ParallelEvents,
		BarrierStallNs:  st.BarrierStallNs,
		RunNs:           st.RunNs,
	}
}

// LastParallelStats reports the parallel runner's work for the most
// recent RunWithHooks call (zero value after sequential runs).
func (s *System) LastParallelStats() ParallelStats { return s.lastParallel }

// advanceTo is runUntil's engine step: the sequential engine at
// Workers=1, the windowed parallel runner otherwise. Shard deltas are
// merged on return, so every external observation point (stats
// snapshots, checkpoints, hooks) sees the authoritative counters.
func (s *System) advanceTo(target uint64) {
	if s.par == nil {
		s.eng.Run(target)
		return
	}
	s.par.run.Run(target)
	for i := range s.par.shards {
		sh := &s.par.shards[i]
		addCounters(&s.counters, &sh.ctr)
		sh.ctr = Counters{}
		s.xbar.AbsorbStats(sh.xbar)
	}
}

func addCounters(dst, src *Counters) {
	dst.DemandReads += src.DemandReads
	dst.BulkReads += src.BulkReads
	dst.PrefetchReads += src.PrefetchReads
	dst.LateBulkReads += src.LateBulkReads
	dst.DemandWrites += src.DemandWrites
	dst.EagerWrites += src.EagerWrites
	dst.PrematureWrites += src.PrematureWrites
	dst.LLCProbes += src.LLCProbes
	dst.Instructions += src.Instructions
	dst.WindowStalls += src.WindowStalls
	dst.MSHRStalls += src.MSHRStalls
	dst.ChainStalls += src.ChainStalls
}

// routeEvent partitions a pending event at peel time. Core events carry
// their coreRunner; System events carry a waiter token — an active
// waiter is an access on its way to the LLC (uncore), a claimed one is
// data returning to its core. Stale tokens route to the uncore, where
// the handler no-ops exactly as it would sequentially.
func (s *System) routeEvent(obj any, a0 uint64) int {
	switch o := obj.(type) {
	case *coreRunner:
		return int(s.par.coreShard[o.id])
	case *System:
		if _, w := s.waiterByTok(a0); w != nil && w.state == waiterClaimed {
			return int(s.par.coreShard[w.core])
		}
		return 0
	default:
		// The memory controller (and anything unrecognised) is uncore.
		return 0
	}
}

// shardLocal is the intra-window post tripwire: the only legitimate
// posters of events landing inside the lookahead window are a core to
// itself and the uncore to itself.
func (s *System) shardLocal(shard int, obj any) bool {
	if o, ok := obj.(*coreRunner); ok {
		return int(s.par.coreShard[o.id]) == shard
	}
	return shard == 0
}

// resetShardWindow clears the per-window allocation logs (the runner
// calls it before each parallel window).
func (s *System) resetShardWindow() {
	for i := range s.par.shards {
		sh := &s.par.shards[i]
		sh.allocs = sh.allocs[:0]
		sh.realTok = sh.realTok[:0]
	}
}

// applyShardOp executes one logged side effect at the barrier, in global
// dispatch order — the exact moment the sequential run would have
// performed it, so the slab free list, slot generations and the latency
// distribution's insertion order all evolve identically.
func (s *System) applyShardOp(shard int, code uint8, arg uint64) {
	sh := &s.par.shards[shard]
	switch code {
	case opAllocWaiter:
		a := &sh.allocs[arg]
		sh.realTok[arg] = s.allocWaiter(a.acc, int(a.core), a.load, a.pos, a.issue)
	case opFreeWaiter:
		s.freeWaiterSlot(int32(arg))
	case opLoadSample:
		s.loadLatency.Add(math.Float64frombits(arg))
	}
}

// patchShardPost swaps a provisional waiter token for the real one the
// replay allocated. Only core-posted llcAccess events carry provisional
// tokens, and they always land beyond the window (the NOC latency is the
// lookahead), so no provisional token is ever dispatched locally.
func (s *System) patchShardPost(obj any, a0, a1 uint64) (uint64, uint64) {
	if a0&provTokFlag != 0 {
		sh := int(a0 >> provTokShardShift & 0x7fff)
		idx := a0 & (1<<provTokShardShift - 1)
		return s.par.shards[sh].realTok[idx], a1
	}
	return a0, a1
}
