package sim

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"bump/internal/workload"
)

// fuzzRestoreConfig is deliberately tiny: the fuzzer builds a fresh
// System per input.
func fuzzRestoreConfig() Config {
	cfg := DefaultConfig(BuMP, workload.WebSearch())
	cfg.Cores = 1
	cfg.L1Bytes = 4 << 10
	cfg.LLCBytes = 64 << 10
	cfg.WarmupCycles = 1_500
	cfg.MeasureCycles = 2_500
	return cfg
}

var fuzzSeedSnapshot = sync.OnceValue(func() []byte {
	cfg := fuzzRestoreConfig()
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	if _, err := s.RunWithHooks(Hooks{
		Interval: 250,
		Cancel:   func() bool { return s.Engine().Now() >= 1_000 },
	}); !errors.Is(err, ErrCanceled) {
		panic("fuzz seed run did not split")
	}
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
})

// FuzzSystemRestore drives the full multi-component decode path with
// arbitrary bytes: every input must either restore cleanly or return an
// error — never panic, hang, or allocate beyond the input's own size.
func FuzzSystemRestore(f *testing.F) {
	seed := fuzzSeedSnapshot()
	f.Add(seed)
	// Truncations of a valid snapshot probe every section boundary.
	f.Add(seed[:len(seed)/2])
	f.Add(seed[:len(seed)/4])
	f.Add([]byte{})
	cfg := fuzzRestoreConfig()
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Restore(bytes.NewReader(data)); err != nil {
			return // rejected: fine
		}
		// A snapshot that decodes fully must also resume and complete.
		if _, err := s.RunWithHooks(Hooks{}); err != nil {
			t.Fatalf("restored system failed to run: %v", err)
		}
	})
}
