package prefetch

import "bump/internal/mem"

// SMS implements Spatial Memory Streaming (Somogyi et al., ISCA 2006),
// the state-of-the-art spatial prefetcher the paper compares against.
//
// SMS records, per "spatial region generation", the bit pattern of blocks
// accessed between the first access to a region and the eviction of any of
// its blocks. Patterns are stored in a pattern history table (PHT) indexed
// by the PC+offset of the generation's trigger access. On a later trigger
// (first access to an inactive region), the PHT's pattern — if any — is
// prefetched.
//
// Differences from BuMP that the paper calls out (Section II.C): SMS keys
// per-block footprints rather than whole regions, and — critically — it
// observes only load-triggered traffic: store misses and writebacks
// neither train it nor trigger streams. The simulator therefore only
// feeds loads to OnAccess (see internal/sim).
type SMS struct {
	regionShift uint

	// Active generation table: region -> accumulating pattern.
	agt map[mem.RegionAddr]*smsGen
	// agtCap bounds the AGT like the hardware's filter/accumulation
	// tables; overflowing generations are ended (trained) early.
	agtCap  int
	agtFIFO []mem.RegionAddr

	pht *phtTable

	// Trained counts generations committed to the PHT; Triggered counts
	// PHT hits that started a stream.
	Trained   uint64
	Triggered uint64
}

type smsGen struct {
	pc      mem.PC
	offset  uint
	pattern uint64
}

// phtTable is a set-associative pattern history table.
type phtTable struct {
	sets, ways int
	tags       []uint64
	pats       []uint64
	valid      []bool
	use        []uint64
	tick       uint64
}

func newPHT(entries, ways int) *phtTable {
	sets := entries / ways
	if sets <= 0 || sets&(sets-1) != 0 || entries%ways != 0 {
		panic("prefetch: PHT geometry invalid")
	}
	return &phtTable{
		sets: sets, ways: ways,
		tags:  make([]uint64, entries),
		pats:  make([]uint64, entries),
		valid: make([]bool, entries),
		use:   make([]uint64, entries),
	}
}

func (t *phtTable) lookup(sig uint64) (uint64, bool) {
	s := int(sig % uint64(t.sets))
	for i := s * t.ways; i < (s+1)*t.ways; i++ {
		if t.valid[i] && t.tags[i] == sig {
			t.tick++
			t.use[i] = t.tick
			return t.pats[i], true
		}
	}
	return 0, false
}

func (t *phtTable) insert(sig, pattern uint64) {
	s := int(sig % uint64(t.sets))
	victim := s * t.ways
	for i := s * t.ways; i < (s+1)*t.ways; i++ {
		if t.valid[i] && t.tags[i] == sig {
			victim = i
			break
		}
		if !t.valid[i] {
			victim = i
			break
		}
		if t.use[i] < t.use[victim] {
			victim = i
		}
	}
	t.tick++
	t.tags[victim] = sig
	t.pats[victim] = pattern
	t.valid[victim] = true
	t.use[victim] = t.tick
}

// NewSMS builds an SMS prefetcher over regions of 2^regionShift bytes
// with the given PHT geometry and active-generation capacity.
func NewSMS(regionShift uint, phtEntries, phtWays, agtCap int) *SMS {
	if agtCap <= 0 {
		panic("prefetch: AGT capacity must be positive")
	}
	return &SMS{
		regionShift: regionShift,
		agt:         make(map[mem.RegionAddr]*smsGen, agtCap),
		agtCap:      agtCap,
		pht:         newPHT(phtEntries, phtWays),
	}
}

// DefaultSMS returns the LLC-side configuration used in the evaluation:
// 2K-pattern PHT over 1KB regions (roughly the 3x-BuMP storage the paper
// quotes), 128 active generations (the aggregate of the per-core filter
// and accumulation tables of the original design).
func DefaultSMS() *SMS { return NewSMS(mem.DefaultRegionShift, 2048, 16, 128) }

func (s *SMS) signature(pc mem.PC, offset uint) uint64 {
	return uint64(pc)<<4 ^ uint64(offset)
}

// OnAccess implements Prefetcher. Only load accesses should be fed here
// (the caller filters), matching SMS's load-only scope. The core id is
// ignored: SMS's prediction metadata is shared across cores, one of the
// benefits of placing it next to the LLC (Section V.A).
func (s *SMS) OnAccess(_ int, pc mem.PC, b mem.BlockAddr, miss bool) []mem.BlockAddr {
	region := b.Region(s.regionShift)
	off := b.Offset(s.regionShift)
	bit := uint64(1) << off

	if g, ok := s.agt[region]; ok {
		g.pattern |= bit
		return nil
	}

	// Trigger access: open a generation and consult the PHT.
	if len(s.agt) >= s.agtCap {
		// Retire the oldest generation early.
		old := s.agtFIFO[0]
		s.agtFIFO = s.agtFIFO[1:]
		if g, ok := s.agt[old]; ok {
			s.train(g)
			delete(s.agt, old)
		}
	}
	s.agt[region] = &smsGen{pc: pc, offset: off, pattern: bit}
	s.agtFIFO = append(s.agtFIFO, region)

	pattern, ok := s.pht.lookup(s.signature(pc, off))
	if !ok {
		return nil
	}
	s.Triggered++
	var out []mem.BlockAddr
	n := mem.BlocksPerRegion(s.regionShift)
	for i := uint(0); i < n; i++ {
		if i != off && pattern&(1<<i) != 0 {
			out = append(out, region.Block(s.regionShift, i))
		}
	}
	return out
}

func (s *SMS) train(g *smsGen) {
	// Single-block generations carry no spatial information.
	if g.pattern&(g.pattern-1) == 0 {
		return
	}
	s.pht.insert(s.signature(g.pc, g.offset), g.pattern)
	s.Trained++
}

// OnEvict implements Prefetcher: an eviction inside an active generation
// ends it and commits its pattern to the PHT.
func (s *SMS) OnEvict(b mem.BlockAddr) {
	region := b.Region(s.regionShift)
	g, ok := s.agt[region]
	if !ok {
		return
	}
	s.train(g)
	delete(s.agt, region)
	for i, r := range s.agtFIFO {
		if r == region {
			s.agtFIFO = append(s.agtFIFO[:i], s.agtFIFO[i+1:]...)
			break
		}
	}
}

// ActiveGenerations returns the AGT occupancy (introspection).
func (s *SMS) ActiveGenerations() int { return len(s.agt) }
