// Package prefetch implements the comparison prefetchers of the paper's
// evaluation: the baseline stride prefetcher (Section V.A) and SMS —
// Spatial Memory Streaming (Somogyi et al. [44]) — relocated next to the
// LLC as the paper does.
package prefetch

import "bump/internal/mem"

// Prefetcher consumes the LLC demand-access stream and emits block
// addresses to prefetch into the LLC.
type Prefetcher interface {
	// OnAccess observes a demand access (hit or miss) and returns blocks
	// to prefetch. core identifies the requesting core: per-core
	// mechanisms (stride) separate their training state by it, shared
	// mechanisms (SMS) may ignore it. miss reports whether the access
	// missed in the LLC.
	OnAccess(core int, pc mem.PC, b mem.BlockAddr, miss bool) []mem.BlockAddr
	// OnEvict observes an LLC eviction (SMS closes pattern generations
	// at eviction time).
	OnEvict(b mem.BlockAddr)
}

// Nil is a no-op prefetcher.
type Nil struct{}

// OnAccess implements Prefetcher.
func (Nil) OnAccess(int, mem.PC, mem.BlockAddr, bool) []mem.BlockAddr { return nil }

// OnEvict implements Prefetcher.
func (Nil) OnEvict(mem.BlockAddr) {}
