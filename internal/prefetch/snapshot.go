package prefetch

import (
	"fmt"

	"bump/internal/mem"
	"bump/internal/snapshot"
)

// Snapshotter is the optional checkpointing interface a Prefetcher may
// implement; the simulator refuses to snapshot configurations whose
// prefetcher does not.
type Snapshotter interface {
	SnapshotTo(w *snapshot.Writer)
	RestoreFrom(r *snapshot.Reader) error
}

// SnapshotTo serializes the stride prefetcher's reference-prediction
// table. Invalid entries collapse to one byte so equal states encode
// identically.
func (s *Stride) SnapshotTo(w *snapshot.Writer) {
	w.Section("stride")
	w.U32(uint32(s.degree))
	w.U32(uint32(len(s.entries)))
	w.U64(s.Issued)
	for i := range s.entries {
		e := &s.entries[i]
		if !e.valid {
			w.Bool(false)
			continue
		}
		w.Bool(true)
		w.U64(uint64(e.pc))
		w.U64(uint64(e.last))
		w.I64(e.stride)
		w.Bool(e.confirmed)
	}
}

// RestoreFrom replaces the stride state with a snapshot's.
func (s *Stride) RestoreFrom(r *snapshot.Reader) error {
	r.Section("stride")
	degree, entries := r.U32(), r.U32()
	if r.Err() != nil {
		return r.Err()
	}
	if int(degree) != s.degree || int(entries) != len(s.entries) {
		return fmt.Errorf("prefetch: stride geometry %d/%d, have %d/%d", degree, entries, s.degree, len(s.entries))
	}
	s.Issued = r.U64()
	for i := range s.entries {
		if !r.Bool() {
			s.entries[i] = strideEntry{}
			continue
		}
		s.entries[i] = strideEntry{
			pc:        mem.PC(r.U64()),
			last:      mem.BlockAddr(r.U64()),
			stride:    r.I64(),
			confirmed: r.Bool(),
			valid:     true,
		}
		if r.Err() != nil {
			return r.Err()
		}
	}
	return r.Err()
}

// SnapshotTo serializes SMS: the active generation table in FIFO order
// (which rebuilds both the map and the retirement queue) and the pattern
// history table.
func (s *SMS) SnapshotTo(w *snapshot.Writer) {
	w.Section("sms")
	w.U32(uint32(s.regionShift))
	w.U32(uint32(s.agtCap))
	w.U64(s.Trained)
	w.U64(s.Triggered)
	w.U32(uint32(len(s.agtFIFO)))
	for _, region := range s.agtFIFO {
		w.U64(uint64(region))
		g, ok := s.agt[region]
		w.Bool(ok)
		if ok {
			w.U64(uint64(g.pc))
			w.U32(uint32(g.offset))
			w.U64(g.pattern)
		}
	}
	// PHT.
	t := s.pht
	w.U32(uint32(t.sets))
	w.U32(uint32(t.ways))
	w.U64(t.tick)
	for i := range t.tags {
		if !t.valid[i] {
			w.Bool(false)
			continue
		}
		w.Bool(true)
		w.U64(t.tags[i])
		w.U64(t.pats[i])
		w.U64(t.use[i])
	}
}

// RestoreFrom replaces the SMS state with a snapshot's.
func (s *SMS) RestoreFrom(r *snapshot.Reader) error {
	r.Section("sms")
	shift, agtCap := r.U32(), r.U32()
	if r.Err() != nil {
		return r.Err()
	}
	if uint(shift) != s.regionShift || int(agtCap) != s.agtCap {
		return fmt.Errorf("prefetch: SMS geometry shift=%d cap=%d, have shift=%d cap=%d", shift, agtCap, s.regionShift, s.agtCap)
	}
	s.Trained = r.U64()
	s.Triggered = r.U64()
	n := r.Len(8 + 1)
	if r.Err() != nil {
		return r.Err()
	}
	if n > s.agtCap {
		return fmt.Errorf("prefetch: %d active generations exceed capacity %d", n, s.agtCap)
	}
	s.agt = make(map[mem.RegionAddr]*smsGen, n)
	s.agtFIFO = make([]mem.RegionAddr, 0, n)
	for i := 0; i < n; i++ {
		region := mem.RegionAddr(r.U64())
		hasGen := r.Bool()
		if r.Err() != nil {
			return r.Err()
		}
		s.agtFIFO = append(s.agtFIFO, region)
		if hasGen {
			if _, dup := s.agt[region]; dup {
				return fmt.Errorf("prefetch: duplicate active generation for region %#x", uint64(region))
			}
			s.agt[region] = &smsGen{
				pc:      mem.PC(r.U64()),
				offset:  uint(r.U32()),
				pattern: r.U64(),
			}
		}
	}
	t := s.pht
	sets, ways := r.U32(), r.U32()
	if r.Err() != nil {
		return r.Err()
	}
	if int(sets) != t.sets || int(ways) != t.ways {
		return fmt.Errorf("prefetch: PHT geometry %dx%d, have %dx%d", sets, ways, t.sets, t.ways)
	}
	t.tick = r.U64()
	for i := range t.tags {
		ok := r.Bool()
		if r.Err() != nil {
			return r.Err()
		}
		t.valid[i] = ok
		if !ok {
			t.tags[i], t.pats[i], t.use[i] = 0, 0, 0
			continue
		}
		t.tags[i] = r.U64()
		t.pats[i] = r.U64()
		t.use[i] = r.U64()
		if r.Err() == nil && int(t.tags[i]%uint64(t.sets)) != i/t.ways {
			return fmt.Errorf("prefetch: PHT entry %d holds signature %#x belonging to set %d", i, t.tags[i], t.tags[i]%uint64(t.sets))
		}
	}
	return r.Err()
}

// Nil streams have no state.

// SnapshotTo implements Snapshotter.
func (Nil) SnapshotTo(w *snapshot.Writer) { w.Section("nil-prefetcher") }

// RestoreFrom implements Snapshotter.
func (Nil) RestoreFrom(r *snapshot.Reader) error {
	r.Section("nil-prefetcher")
	return r.Err()
}
