package prefetch

import (
	"testing"

	"bump/internal/mem"
)

func TestNilPrefetcher(t *testing.T) {
	var n Nil
	if got := n.OnAccess(0, 1, 2, true); got != nil {
		t.Error("Nil must not prefetch")
	}
	n.OnEvict(2) // must not panic
}

func TestStrideDetection(t *testing.T) {
	s := DefaultStride()
	pc := mem.PC(0x400)
	if got := s.OnAccess(0, pc, 100, true); got != nil {
		t.Error("first access must not prefetch")
	}
	if got := s.OnAccess(0, pc, 101, true); got != nil {
		t.Error("one stride sample must not prefetch")
	}
	got := s.OnAccess(0, pc, 102, true)
	if len(got) != 4 {
		t.Fatalf("confirmed stride must prefetch 4 blocks, got %v", got)
	}
	for i, b := range got {
		if b != mem.BlockAddr(103+i) {
			t.Errorf("prefetch[%d] = %d, want %d", i, b, 103+i)
		}
	}
	// Continuing the stream keeps prefetching ahead.
	got = s.OnAccess(0, pc, 103, true)
	if len(got) != 4 || got[0] != 104 {
		t.Errorf("stream continuation: %v", got)
	}
	if s.Issued != 8 {
		t.Errorf("Issued = %d", s.Issued)
	}
}

func TestStrideNegativeAndChange(t *testing.T) {
	s := DefaultStride()
	pc := mem.PC(0x400)
	s.OnAccess(0, pc, 100, true)
	s.OnAccess(0, pc, 98, true)
	got := s.OnAccess(0, pc, 96, true)
	if len(got) != 4 || got[0] != 94 {
		t.Errorf("negative stride: %v", got)
	}
	// Changing the stride resets confirmation.
	if got := s.OnAccess(0, pc, 90, true); got != nil {
		t.Error("stride change must pause prefetching")
	}
	// Descending below zero truncates.
	s2 := DefaultStride()
	s2.OnAccess(0, pc, 2, true)
	s2.OnAccess(0, pc, 1, true)
	if got := s2.OnAccess(0, pc, 0, true); len(got) != 0 {
		t.Errorf("prefetch below address zero: %v", got)
	}
}

func TestStrideZeroStrideIgnored(t *testing.T) {
	s := DefaultStride()
	pc := mem.PC(0x400)
	s.OnAccess(0, pc, 100, true)
	s.OnAccess(0, pc, 100, true)
	s.OnAccess(0, pc, 100, true)
	if got := s.OnAccess(0, pc, 100, true); got != nil {
		t.Error("zero stride must never prefetch")
	}
}

func TestStridePerPCTracking(t *testing.T) {
	s := DefaultStride()
	// Interleaved streams from two PCs must both be detected (the PCs
	// must not collide in the 256-entry direct-mapped table).
	a, b := mem.PC(0x400), mem.PC(0x504)
	s.OnAccess(0, a, 100, true)
	s.OnAccess(0, b, 5000, true)
	s.OnAccess(0, a, 110, true)
	s.OnAccess(0, b, 5002, true)
	ga := s.OnAccess(0, a, 120, true)
	gb := s.OnAccess(0, b, 5004, true)
	if len(ga) != 4 || ga[0] != 130 {
		t.Errorf("stream a: %v", ga)
	}
	if len(gb) != 4 || gb[0] != 5006 {
		t.Errorf("stream b: %v", gb)
	}
}

func TestStrideValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewStride(0, 16) },
		func() { NewStride(4, 0) },
		func() { NewStride(4, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func region(r uint64, off uint) mem.BlockAddr {
	return mem.RegionAddr(r).Block(mem.DefaultRegionShift, off)
}

func TestSMSTrainAndTrigger(t *testing.T) {
	s := DefaultSMS()
	pc := mem.PC(0x400)
	// Generation in region 1: blocks 0,2,5 accessed, then eviction.
	s.OnAccess(0, pc, region(1, 0), true)
	s.OnAccess(0, pc, region(1, 2), false)
	s.OnAccess(0, pc, region(1, 5), false)
	s.OnEvict(region(1, 2))
	if s.Trained != 1 {
		t.Fatalf("Trained = %d", s.Trained)
	}
	// New region, same trigger PC+offset: prefetch the learned footprint
	// minus the trigger block.
	got := s.OnAccess(0, pc, region(7, 0), true)
	if len(got) != 2 {
		t.Fatalf("prefetch = %v", got)
	}
	want := map[mem.BlockAddr]bool{region(7, 2): true, region(7, 5): true}
	for _, b := range got {
		if !want[b] {
			t.Errorf("unexpected prefetch %v", b)
		}
	}
	if s.Triggered != 1 {
		t.Errorf("Triggered = %d", s.Triggered)
	}
}

func TestSMSOffsetSensitivity(t *testing.T) {
	s := DefaultSMS()
	pc := mem.PC(0x400)
	s.OnAccess(0, pc, region(1, 3), true)
	s.OnAccess(0, pc, region(1, 4), false)
	s.OnEvict(region(1, 3))
	if got := s.OnAccess(0, pc, region(2, 0), true); got != nil {
		t.Error("different trigger offset must not stream")
	}
	if got := s.OnAccess(0, pc, region(3, 3), true); len(got) != 1 {
		t.Errorf("matching offset must stream: %v", got)
	}
}

func TestSMSSingleBlockGenerationsNotTrained(t *testing.T) {
	s := DefaultSMS()
	pc := mem.PC(0x400)
	s.OnAccess(0, pc, region(1, 0), true)
	s.OnEvict(region(1, 0))
	if s.Trained != 0 {
		t.Error("single-block generation must not train")
	}
	if got := s.OnAccess(0, pc, region(2, 0), true); got != nil {
		t.Error("nothing learned: no stream")
	}
}

func TestSMSAGTCapacityRetiresOldest(t *testing.T) {
	s := NewSMS(mem.DefaultRegionShift, 256, 16, 2)
	pc := mem.PC(0x400)
	s.OnAccess(0, pc, region(1, 0), true)
	s.OnAccess(0, pc, region(1, 1), false)
	s.OnAccess(0, pc, region(2, 0), true)
	if s.ActiveGenerations() != 2 {
		t.Fatalf("AGT = %d", s.ActiveGenerations())
	}
	// Third generation forces region 1 out, training its 2-block pattern.
	s.OnAccess(0, pc, region(3, 0), true)
	if s.ActiveGenerations() != 2 {
		t.Errorf("AGT = %d after overflow", s.ActiveGenerations())
	}
	if s.Trained != 1 {
		t.Errorf("Trained = %d", s.Trained)
	}
}

func TestSMSEvictOutsideGenerationIgnored(t *testing.T) {
	s := DefaultSMS()
	s.OnEvict(region(9, 0)) // no active generation: no-op
	if s.Trained != 0 {
		t.Error("eviction without generation must not train")
	}
}

func TestSMSValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewSMS(10, 0, 16, 4) },
		func() { NewSMS(10, 48, 16, 4) }, // 3 sets: not a power of two
		func() { NewSMS(10, 256, 16, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
