package prefetch

import "bump/internal/mem"

// Stride is the baseline stride prefetcher of Section V.A: it "predicts
// strided accesses if two consecutive addresses accessed are separated by
// the same stride, and prefetches the subsequent four cache blocks into
// the last-level cache". Stride state is tracked per PC in a small
// direct-mapped table, as in classic reference-prediction tables.
type Stride struct {
	degree  int
	entries []strideEntry
	mask    uint64

	// Issued counts prefetch addresses generated.
	Issued uint64
}

type strideEntry struct {
	pc        mem.PC
	last      mem.BlockAddr
	stride    int64
	confirmed bool
	valid     bool
}

// NewStride builds a stride prefetcher with the given degree and table
// size (power of two).
func NewStride(degree, tableEntries int) *Stride {
	if degree <= 0 || tableEntries <= 0 || tableEntries&(tableEntries-1) != 0 {
		panic("prefetch: stride degree/table invalid")
	}
	return &Stride{
		degree:  degree,
		entries: make([]strideEntry, tableEntries),
		mask:    uint64(tableEntries - 1),
	}
}

// DefaultStride returns the paper's degree-4 configuration.
func DefaultStride() *Stride { return NewStride(4, 256) }

// OnAccess implements Prefetcher. Stride state is tracked per (core, PC)
// so the interleaved request streams of a many-core LLC do not corrupt
// each other's stride history.
func (s *Stride) OnAccess(core int, pc mem.PC, b mem.BlockAddr, miss bool) []mem.BlockAddr {
	key := uint64(pc) ^ uint64(core)<<56
	e := &s.entries[(uint64(pc)+uint64(core)*131)&s.mask]
	if !e.valid || uint64(e.pc) != key {
		*e = strideEntry{pc: mem.PC(key), last: b, valid: true}
		return nil
	}
	stride := int64(b) - int64(e.last)
	if stride == 0 {
		return nil // same block re-touched; keep state
	}
	if stride == e.stride {
		if e.confirmed {
			e.last = b
			out := make([]mem.BlockAddr, 0, s.degree)
			for i := 1; i <= s.degree; i++ {
				next := int64(b) + stride*int64(i)
				if next < 0 {
					break
				}
				out = append(out, mem.BlockAddr(next))
			}
			s.Issued += uint64(len(out))
			return out
		}
		e.confirmed = true
		e.last = b
		// Two consecutive equal strides: start prefetching.
		out := make([]mem.BlockAddr, 0, s.degree)
		for i := 1; i <= s.degree; i++ {
			next := int64(b) + stride*int64(i)
			if next < 0 {
				break
			}
			out = append(out, mem.BlockAddr(next))
		}
		s.Issued += uint64(len(out))
		return out
	}
	e.stride = stride
	e.confirmed = false
	e.last = b
	return nil
}

// OnEvict implements Prefetcher (stride learns nothing from evictions).
func (s *Stride) OnEvict(mem.BlockAddr) {}
