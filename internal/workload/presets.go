package workload

// The six evaluated workloads (Section V.A). Parameter choices encode each
// application's memory behaviour as characterised in Sections II-III and
// Figs. 3-5; comments give the targets each preset aims for. Exact
// fractions measured by the density profiler are recorded in
// EXPERIMENTS.md against the paper's numbers.

// DataServing models a NoSQL key-value store (Cassandra in CloudSuite):
// hash/tree index walks to locate rows (fine-grained), row reads and row
// updates (coarse), plus metadata updates. The paper reports the lowest
// read high-density share (~57%) and substantial write traffic.
func DataServing() Params {
	return Params{
		Name:              "data-serving",
		ScanWeight:        0.32,
		ChaseWeight:       0.50,
		WriteBurstWeight:  0.16,
		SparseWriteWeight: 0.09,
		ScanRegionsMin:    1,
		ScanRegionsMax:    2,
		CoverageMin:       0.65,
		CoverageMax:       1.0,
		UnalignedFrac:     0.15,
		ScanTinyFrac:      0.32,
		ScanStoreFrac:     0.25,
		ChaseLenMin:       4,
		ChaseLenMax:       10,
		SparseWriteBlocks: 4,
		WriteRevisitFrac:  0.30,
		WorkMin:           20,
		WorkMax:           80,
		ChaseWorkMin:      60,
		ChaseWorkMax:      200,
		OpenTasks:         6,
		ScanPCs:           6,
		ChasePCs:          48,
		WritePCs:          4,
		PhaseTasks:        90,
		PhasePool:         64,
		FootprintBlocks:   1 << 28, // 16GB
		ReuseFrac:         0.04,
	}
}

// MediaStreaming models a video streaming server (Darwin in CloudSuite):
// long sequential reads of media chunks copied into per-client packet
// buffers. Highest coarse-grained share (reads ~75% high-density, writes
// ~86%), lowest write fraction (~21%), high MLP.
func MediaStreaming() Params {
	return Params{
		Name:              "media-streaming",
		ScanWeight:        0.42,
		ChaseWeight:       0.40,
		WriteBurstWeight:  0.15,
		SparseWriteWeight: 0.02,
		ScanRegionsMin:    2,
		ScanRegionsMax:    3,
		CoverageMin:       0.70,
		CoverageMax:       1.0,
		UnalignedFrac:     0.08,
		ScanTinyFrac:      0.30,
		ScanStoreFrac:     0.05,
		ChaseLenMin:       2,
		ChaseLenMax:       6,
		SparseWriteBlocks: 2,
		WriteRevisitFrac:  0.35,
		WorkMin:           10,
		WorkMax:           40,
		ChaseWorkMin:      40,
		ChaseWorkMax:      120,
		OpenTasks:         10,
		ScanPCs:           4,
		ChasePCs:          24,
		WritePCs:          3,
		PhaseTasks:        70,
		PhasePool:         64,
		FootprintBlocks:   1 << 28,
		ReuseFrac:         0.02,
	}
}

// OnlineAnalytics models TPC-H queries 1/6/13/16 on a commercial DBMS:
// scan-bound queries stream table columns (coarse), the join-bound query
// probes hash tables (fine), and intermediate results are materialised
// (write bursts).
func OnlineAnalytics() Params {
	return Params{
		Name:              "online-analytics",
		ScanWeight:        0.36,
		ChaseWeight:       0.42,
		WriteBurstWeight:  0.17,
		SparseWriteWeight: 0.05,
		ScanRegionsMin:    1,
		ScanRegionsMax:    3,
		CoverageMin:       0.70,
		CoverageMax:       1.0,
		UnalignedFrac:     0.12,
		ScanTinyFrac:      0.28,
		ScanStoreFrac:     0.10,
		ChaseLenMin:       3,
		ChaseLenMax:       8,
		SparseWriteBlocks: 3,
		WriteRevisitFrac:  0.20,
		WorkMin:           15,
		WorkMax:           60,
		ChaseWorkMin:      50,
		ChaseWorkMax:      150,
		OpenTasks:         8,
		ScanPCs:           8,
		ChasePCs:          32,
		WritePCs:          5,
		PhaseTasks:        100,
		PhasePool:         64,
		FootprintBlocks:   1 << 28,
		ReuseFrac:         0.05,
	}
}

// SoftwareTesting models the Klee SAT-solver instances (one per core):
// constraint structures are scanned and updated, but a very large number
// of objects is live at once — the paper attributes BuMP's lowest
// coverage (28% of reads) to RDTT thrashing from the many active regions.
// OpenTasks is the distinguishing parameter: 24 interleaved tasks per
// core ≈ 380+ simultaneously active regions across the CMP, far beyond
// the 256-entry density table.
func SoftwareTesting() Params {
	return Params{
		Name:              "software-testing",
		ScanWeight:        0.38,
		ChaseWeight:       0.40,
		WriteBurstWeight:  0.20,
		SparseWriteWeight: 0.08,
		ScanRegionsMin:    1,
		ScanRegionsMax:    2,
		CoverageMin:       0.60,
		CoverageMax:       1.0,
		UnalignedFrac:     0.15,
		ScanTinyFrac:      0.30,
		ScanStoreFrac:     0.30,
		ChaseLenMin:       3,
		ChaseLenMax:       9,
		SparseWriteBlocks: 4,
		WriteRevisitFrac:  0.12,
		WorkMin:           15,
		WorkMax:           70,
		ChaseWorkMin:      40,
		ChaseWorkMax:      140,
		OpenTasks:         32,
		ScanPCs:           10,
		ChasePCs:          40,
		WritePCs:          6,
		PhaseTasks:        60,
		PhasePool:         64,
		FootprintBlocks:   1 << 28,
		ReuseFrac:         0.06,
	}
}

// WebSearch models the index-serving node of a search engine: term
// lookups walk a hash table (fine-grained) and then stream index pages
// with rank metadata (coarse, Fig. 4). Read-dominated with high
// high-density shares; few distinct accessor functions.
func WebSearch() Params {
	return Params{
		Name:              "web-search",
		ScanWeight:        0.36,
		ChaseWeight:       0.46,
		WriteBurstWeight:  0.15,
		SparseWriteWeight: 0.05,
		ScanRegionsMin:    1,
		ScanRegionsMax:    3,
		CoverageMin:       0.75,
		CoverageMax:       1.0,
		UnalignedFrac:     0.30,
		ScanTinyFrac:      0.30,
		ScanStoreFrac:     0.05,
		ChaseLenMin:       3,
		ChaseLenMax:       8,
		SparseWriteBlocks: 2,
		WriteRevisitFrac:  0.20,
		WorkMin:           15,
		WorkMax:           60,
		ChaseWorkMin:      50,
		ChaseWorkMax:      160,
		OpenTasks:         6,
		ScanPCs:           4,
		ChasePCs:          32,
		WritePCs:          3,
		PhaseTasks:        100,
		PhasePool:         64,
		FootprintBlocks:   1 << 28,
		ReuseFrac:         0.05,
	}
}

// WebServing models the frontend web/PHP tier: request parsing walks
// session and interpreter structures (fine-grained), while generated
// pages and static objects are copied through software caches and socket
// buffers (coarse writes).
func WebServing() Params {
	return Params{
		Name:              "web-serving",
		ScanWeight:        0.33,
		ChaseWeight:       0.42,
		WriteBurstWeight:  0.20,
		SparseWriteWeight: 0.09,
		ScanRegionsMin:    1,
		ScanRegionsMax:    2,
		CoverageMin:       0.70,
		CoverageMax:       1.0,
		UnalignedFrac:     0.12,
		ScanTinyFrac:      0.28,
		ScanStoreFrac:     0.15,
		ChaseLenMin:       3,
		ChaseLenMax:       9,
		SparseWriteBlocks: 3,
		WriteRevisitFrac:  0.28,
		WorkMin:           20,
		WorkMax:           70,
		ChaseWorkMin:      50,
		ChaseWorkMax:      170,
		OpenTasks:         6,
		ScanPCs:           6,
		ChasePCs:          40,
		WritePCs:          5,
		PhaseTasks:        90,
		PhasePool:         64,
		FootprintBlocks:   1 << 28,
		ReuseFrac:         0.05,
	}
}

// All returns the six evaluated workloads in the paper's figure order.
func All() []Params {
	return []Params{
		DataServing(),
		MediaStreaming(),
		OnlineAnalytics(),
		SoftwareTesting(),
		WebSearch(),
		WebServing(),
	}
}

// ByName returns the named workload preset.
func ByName(name string) (Params, bool) {
	for _, p := range All() {
		if p.Name == name {
			return p, true
		}
	}
	return Params{}, false
}
