package workload_test

import (
	"testing"

	"bump/internal/mem"
	"bump/internal/workload"
	"bump/internal/workload/streamtest"
)

// TestSeekableConformance runs the shared stream-conformance harness
// over the generator (two presets at the workload extremes) and the
// trace replay stream. The scenario composite runs the same harness
// from internal/scenario.
func TestSeekableConformance(t *testing.T) {
	genCase := func(name string, p workload.Params, seed, otherSeed int64) streamtest.Case {
		return streamtest.Case{
			Name: name,
			New: func() (workload.Stream, error) {
				return workload.NewGenerator(p, seed)
			},
			Other: func() (workload.Stream, error) {
				return workload.NewGenerator(p, otherSeed)
			},
			MaxSplit: 20000,
		}
	}

	// A replay stream over a captured slice of a generator run. The
	// trace is longer than MaxSplit+Tail so in-cycle positions never
	// wrap during the harness checks.
	const traceLen = 6000
	capture := func(seed int64) []mem.Access {
		g, err := workload.NewGenerator(workload.MediaStreaming(), seed)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]mem.Access, traceLen)
		for i := range out {
			out[i] = g.Next()
		}
		return out
	}
	trA, trB := capture(7), capture(8)

	streamtest.Run(t, []streamtest.Case{
		genCase("generator/web-search", workload.WebSearch(), 42, 43),
		genCase("generator/software-testing", workload.SoftwareTesting(), 1, 2),
		{
			Name:     "replay/media-streaming-slice",
			New:      func() (workload.Stream, error) { return workload.NewReplay(trA) },
			Other:    func() (workload.Stream, error) { return workload.NewReplay(trB) },
			MaxSplit: 4000,
			Tail:     500,
		},
	})
}

// TestGeneratorFingerprintSeparatesParams: tweaked parameters under the
// same preset name must not fingerprint equal — for custom stream hooks
// this inequality is the only restore-time guard.
func TestGeneratorFingerprintSeparatesParams(t *testing.T) {
	base, err := workload.NewGenerator(workload.WebSearch(), 1)
	if err != nil {
		t.Fatal(err)
	}
	p := workload.WebSearch()
	p.ChaseWeight *= 1.5 // same Name, different sequence
	tweaked, err := workload.NewGenerator(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if base.StreamFingerprint() == tweaked.StreamFingerprint() {
		t.Fatal("tweaked params fingerprint equal to the preset")
	}
}

// TestPresetInvariants pins the documented invariants of the six
// presets: positive task-weight sum, ordered chase and coverage bounds,
// coverage within (0, 1], positive PC pools and open-task counts, and a
// footprint large enough to be DRAM-resident.
func TestPresetInvariants(t *testing.T) {
	all := workload.All()
	if len(all) != 6 {
		t.Fatalf("preset catalogue has %d entries, want 6", len(all))
	}
	for _, p := range all {
		t.Run(p.Name, func(t *testing.T) {
			if err := p.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if sum := p.ScanWeight + p.ChaseWeight + p.WriteBurstWeight + p.SparseWriteWeight; sum <= 0 {
				t.Errorf("task weights sum %v, want > 0", sum)
			}
			if p.ChaseLenMin > p.ChaseLenMax {
				t.Errorf("ChaseLenMin %d > ChaseLenMax %d", p.ChaseLenMin, p.ChaseLenMax)
			}
			if p.CoverageMin <= 0 || p.CoverageMin > p.CoverageMax || p.CoverageMax > 1 {
				t.Errorf("coverage bounds [%v, %v] violate 0 < min <= max <= 1", p.CoverageMin, p.CoverageMax)
			}
			if p.ScanRegionsMin <= 0 || p.ScanRegionsMin > p.ScanRegionsMax {
				t.Errorf("scan region bounds [%d, %d] invalid", p.ScanRegionsMin, p.ScanRegionsMax)
			}
			if p.WorkMin > p.WorkMax || p.ChaseWorkMin > p.ChaseWorkMax {
				t.Errorf("work gap bounds inverted: [%d,%d] / [%d,%d]", p.WorkMin, p.WorkMax, p.ChaseWorkMin, p.ChaseWorkMax)
			}
			if p.OpenTasks <= 0 || p.ScanPCs <= 0 || p.ChasePCs <= 0 || p.WritePCs <= 0 {
				t.Error("OpenTasks and PC pools must be positive")
			}
			if p.FootprintBlocks < 1<<16 {
				t.Errorf("footprint %d blocks too small to be DRAM-resident", p.FootprintBlocks)
			}
			if p.PhaseTasks > 0 && p.PhasePool <= 1 {
				t.Errorf("phasing enabled (PhaseTasks %d) with trivial PhasePool %d", p.PhaseTasks, p.PhasePool)
			}
		})
	}
}

// TestWeightRenormalizationInvariance: the generator normalises task
// weights, so scaling all four by one constant must leave the stream
// bit-identical (the scenario layer's WriteScale ramp relies on exactly
// this renormalisation).
func TestWeightRenormalizationInvariance(t *testing.T) {
	// Power-of-two factors scale the weights exactly in IEEE arithmetic,
	// so the normalised ratios are bit-identical, not merely close.
	for _, k := range []float64{0.25, 4, 16} {
		p := workload.DataServing()
		q := p
		q.ScanWeight *= k
		q.ChaseWeight *= k
		q.WriteBurstWeight *= k
		q.SparseWriteWeight *= k
		a, err := workload.NewGenerator(p, 11)
		if err != nil {
			t.Fatal(err)
		}
		b, err := workload.NewGenerator(q, 11)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20000; i++ {
			if x, y := a.Next(), b.Next(); x != y {
				t.Fatalf("k=%v: streams diverge at access %d: %+v vs %+v", k, i, x, y)
			}
		}
	}
}
