// Package workload generates the per-core memory access streams of the
// six server applications in the paper's evaluation (CloudSuite 2.0's
// Data Serving, Media Streaming, Software Testing, Web Search and Web
// Serving, plus TPC-H-style Online Analytics).
//
// The real applications are not available in this environment, so each
// workload is a synthetic model parameterised from the paper's own
// characterisation (Section III, Figs. 3-5): server software touches
// memory either coarsely — scans over multi-block software objects
// (database rows, index pages, media chunks, object-cache entries) driven
// by a small set of accessor functions — or finely — pointer chasing
// through hash tables, trees and OS structures spread over a vast
// address space. The generators reproduce that bimodal structure: the
// fraction of DRAM reads/writes falling in high-density 1KB regions, the
// read/write traffic mix, the store-triggered read share, the code↔data
// correlation (few PCs trigger coarse objects), and the degree of
// inter-object interleaving (which controls how many regions are active
// at once — the property that separates Software Testing from the rest).
package workload

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"bump/internal/mem"
	"bump/internal/snapshot"
)

// Stream produces an infinite access stream for one core.
type Stream interface {
	// Next returns the core's next memory access.
	Next() mem.Access
}

// Seekable is the optional checkpointing interface a Stream may
// implement: a stream's state is its position in a deterministic
// sequence, so a checkpoint records StreamPos and a restore rebuilds the
// stream fresh and seeks it forward. The simulator refuses to snapshot
// configurations whose streams are not Seekable.
type Seekable interface {
	// StreamPos returns the number of accesses consumed so far (for
	// cyclic streams, the canonical in-cycle position).
	StreamPos() uint64
	// SeekStream advances a freshly constructed stream to pos. Seeking
	// backwards (or to an impossible position) is an error.
	SeekStream(pos uint64) error
	// StreamFingerprint identifies the underlying access sequence (not
	// the position within it). A checkpoint records it so restoring
	// under a *different* sequence — e.g. a different replay trace with
	// otherwise identical configuration flags — errors instead of
	// silently resuming with wrong accesses.
	StreamFingerprint() uint64
}

// CoreSeed derives the per-core generator seed from a run's base seed.
// The simulator, the trace capturer and the service all use this
// derivation, so a captured trace reproduces the simulator's stream for
// the same (seed, core) pair.
func CoreSeed(base int64, core int) int64 { return base + int64(core)*7919 }

// Replay is a Stream that cycles through a recorded trace. It lets
// captured traces (cmd/tracegen) drive the simulator in place of the
// synthetic generators.
type Replay struct {
	accesses []mem.Access
	pos      int
	fp       uint64 // lazily computed content fingerprint
}

// NewReplay wraps a non-empty trace in a cyclic Stream.
func NewReplay(accesses []mem.Access) (*Replay, error) {
	if len(accesses) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	return &Replay{accesses: accesses}, nil
}

// Next implements Stream.
func (r *Replay) Next() mem.Access {
	a := r.accesses[r.pos]
	r.pos++
	if r.pos == len(r.accesses) {
		r.pos = 0
	}
	return a
}

// StreamPos implements Seekable: the cursor within the trace cycle.
func (r *Replay) StreamPos() uint64 { return uint64(r.pos) }

// SeekStream implements Seekable.
func (r *Replay) SeekStream(pos uint64) error {
	if pos >= uint64(len(r.accesses)) {
		return fmt.Errorf("workload: replay position %d outside %d-access trace", pos, len(r.accesses))
	}
	if uint64(r.pos) > pos {
		return fmt.Errorf("workload: cannot seek replay backwards (%d > %d)", r.pos, pos)
	}
	r.pos = int(pos)
	return nil
}

// StreamFingerprint implements Seekable: an FNV-1a hash over the
// recorded accesses, so two replays resume-compatible only when they
// carry the same trace content.
func (r *Replay) StreamFingerprint() uint64 {
	if r.fp != 0 {
		return r.fp
	}
	h := fnvOffset
	h = fnvMix(h, uint64(len(r.accesses)))
	for i := range r.accesses {
		a := &r.accesses[i]
		h = fnvMix(h, uint64(a.PC))
		h = fnvMix(h, uint64(a.Addr))
		h = fnvMix(h, uint64(a.Type))
		h = fnvMix(h, uint64(a.Work))
		h = fnvMix(h, uint64(a.Chain))
	}
	if h == 0 {
		h = 1 // keep 0 as the "not yet computed" sentinel
	}
	r.fp = h
	return h
}

// FNV-1a over uint64 words.
const fnvOffset uint64 = 0xcbf29ce484222325

func fnvMix(h, w uint64) uint64 {
	const prime = 0x100000001b3
	for i := 0; i < 8; i++ {
		h ^= w & 0xFF
		h *= prime
		w >>= 8
	}
	return h
}

// Params defines a synthetic server workload.
type Params struct {
	Name string

	// Task mix (weights; normalised internally). A task is a burst of
	// related accesses: a coarse object scan, a pointer chase, a write
	// burst into a fresh object, or a sparse update.
	ScanWeight        float64
	ChaseWeight       float64
	WriteBurstWeight  float64
	SparseWriteWeight float64

	// Coarse-object geometry: objects cover ScanRegionsMin..Max regions;
	// within each region, CoverageMin..Max of the blocks are touched
	// (sequentially). UnalignedFrac of objects start mid-region,
	// producing the paper's medium-density accesses.
	ScanRegionsMin, ScanRegionsMax int
	CoverageMin, CoverageMax       float64
	UnalignedFrac                  float64

	// ScanStoreFrac is the probability that a coarse scan also modifies
	// the object (read-modify-write), dirtying the blocks it touches.
	ScanStoreFrac float64

	// ScanTinyFrac is the probability that a scan task turns out tiny —
	// the accessor function touches only 1-3 blocks (small object,
	// early termination). Tiny scans weaken the code↔data correlation:
	// the same PCs that trigger bulk-worthy objects sometimes touch
	// sparse ones, which is what bounds BuMP's coverage and produces
	// its overfetch in the paper (Fig. 8).
	ScanTinyFrac float64

	// ChaseLenMin/Max is the number of dependent hops per pointer chase.
	ChaseLenMin, ChaseLenMax int

	// SparseWriteBlocks is how many scattered blocks a sparse update
	// dirties.
	SparseWriteBlocks int

	// WriteRevisitFrac is the probability that a write burst gets a
	// delayed follow-up: a couple of extra stores to the same object
	// hundreds-to-thousands of tasks later (append to a buffer, update
	// a header). Revisits that land after the region's first dirty LLC
	// eviction produce the paper's "late writes" (Table I) and, under
	// eager writeback, premature-writeback traffic (Fig. 8 right).
	WriteRevisitFrac float64

	// Work gaps (non-memory instructions before each access). Chase
	// steps are dependent, so they carry their own (larger) gap.
	WorkMin, WorkMax           int
	ChaseWorkMin, ChaseWorkMax int

	// OpenTasks is the number of tasks a core interleaves round-robin;
	// it controls memory-level parallelism and the number of
	// simultaneously active regions (Software Testing's defining
	// feature).
	OpenTasks int

	// PC pools: a few accessor functions touch coarse objects, many
	// distinct code paths do pointer chasing.
	ScanPCs, ChasePCs, WritePCs int

	// PhaseTasks makes the workload non-stationary: every PhaseTasks
	// tasks, the accessor-PC pools shift to a different code/dataset
	// phase (changing query mixes, JIT recompilation, dataset churn).
	// Predictors must retrain each phase, which is what bounds BuMP's
	// and SMS's coverage below the high-density access share in the
	// paper (Fig. 8). 0 disables phasing.
	PhaseTasks int
	// PhasePool is the number of distinct phases cycled through; large
	// pools exceed the BHT/PHT capacity so old training is lost.
	PhasePool int

	// FootprintBlocks is the size of the dataset in cache blocks;
	// object and chase targets are sampled uniformly from it, giving
	// the paper's "vast DRAM-resident dataset with poor temporal reuse".
	FootprintBlocks uint64

	// ReuseFrac is the probability a new task revisits a recently used
	// object (bounded temporal locality).
	ReuseFrac float64
}

// Validate checks generator parameters.
func (p Params) Validate() error {
	if p.ScanWeight+p.ChaseWeight+p.WriteBurstWeight+p.SparseWriteWeight <= 0 {
		return fmt.Errorf("workload %s: task weights must be positive", p.Name)
	}
	if p.ScanRegionsMin <= 0 || p.ScanRegionsMax < p.ScanRegionsMin {
		return fmt.Errorf("workload %s: scan region bounds invalid", p.Name)
	}
	if p.CoverageMin <= 0 || p.CoverageMax > 1 || p.CoverageMax < p.CoverageMin {
		return fmt.Errorf("workload %s: coverage bounds invalid", p.Name)
	}
	if p.ChaseLenMin <= 0 || p.ChaseLenMax < p.ChaseLenMin {
		return fmt.Errorf("workload %s: chase bounds invalid", p.Name)
	}
	if p.OpenTasks <= 0 {
		return fmt.Errorf("workload %s: OpenTasks must be positive", p.Name)
	}
	if p.FootprintBlocks < 1<<16 {
		return fmt.Errorf("workload %s: footprint too small", p.Name)
	}
	if p.ScanPCs <= 0 || p.ChasePCs <= 0 || p.WritePCs <= 0 {
		return fmt.Errorf("workload %s: PC pools must be positive", p.Name)
	}
	return nil
}

// task is one in-flight activity on a core. Finished tasks are refilled
// in place, reusing the accesses backing array, so steady-state
// generation does not allocate.
type task struct {
	accesses []mem.Access // pre-materialised access sequence
	pos      int
}

// reset prepares a task for refilling.
func (t *task) reset() { t.accesses, t.pos = t.accesses[:0], 0 }

// Generator implements Stream for one core.
type Generator struct {
	p         Params
	seed      int64
	rng       *rand.Rand
	tasks     []*task
	rr        int
	recent    []mem.Addr // recently used object bases, for ReuseFrac
	weights   [4]float64
	nextChain uint32
	taskCount int
	revisits  []revisit
	fp        uint64 // lazily computed stream fingerprint
	// calls counts Next() invocations. A generator's entire state is a
	// deterministic function of (Params, seed, calls), which is what
	// makes checkpointing a stream as cheap as recording this counter:
	// restore rebuilds the generator from its seed and replays `calls`
	// draws (far cheaper than simulating them) instead of serializing
	// the math/rand internals.
	calls uint64
}

// revisit is a deferred follow-up write to an earlier write burst.
type revisit struct {
	base    mem.Addr
	pc      mem.PC
	matures int // taskCount at which the revisit runs
}

// NewGenerator builds a deterministic per-core stream. Different cores of
// the same workload should use different seeds.
func NewGenerator(p Params, seed int64) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		p:    p,
		seed: seed,
		rng:  rand.New(rand.NewSource(seed)),
	}
	total := p.ScanWeight + p.ChaseWeight + p.WriteBurstWeight + p.SparseWriteWeight
	g.weights = [4]float64{
		p.ScanWeight / total,
		p.ChaseWeight / total,
		p.WriteBurstWeight / total,
		p.SparseWriteWeight / total,
	}
	g.tasks = make([]*task, p.OpenTasks)
	for i := range g.tasks {
		g.tasks[i] = &task{}
		g.fillTask(g.tasks[i])
	}
	return g, nil
}

func (g *Generator) intBetween(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + g.rng.Intn(hi-lo+1)
}

func (g *Generator) floatBetween(lo, hi float64) float64 {
	return lo + g.rng.Float64()*(hi-lo)
}

func (g *Generator) pc(base uint64, pool int) mem.PC {
	return mem.PC(base + g.phaseShift() + 8*uint64(g.rng.Intn(pool)))
}

// phaseShift relocates the accessor-PC pools for the current phase.
func (g *Generator) phaseShift() uint64 {
	if g.p.PhaseTasks <= 0 || g.p.PhasePool <= 1 {
		return 0
	}
	phase := (g.taskCount / g.p.PhaseTasks) % g.p.PhasePool
	return uint64(phase) * 0x400
}

func (g *Generator) work(lo, hi int) uint32 { return uint32(g.intBetween(lo, hi)) }

// objectBase picks the base address of a fresh (or reused) object that
// spans `regions` regions.
func (g *Generator) objectBase(regions int) mem.Addr {
	if len(g.recent) > 0 && g.rng.Float64() < g.p.ReuseFrac {
		return g.recent[g.rng.Intn(len(g.recent))]
	}
	maxRegion := g.p.FootprintBlocks >> (mem.DefaultRegionShift - mem.BlockShift)
	r := mem.RegionAddr(g.rng.Int63n(int64(maxRegion - uint64(regions))))
	base := r.BaseAddr(mem.DefaultRegionShift)
	g.recent = append(g.recent, base)
	if len(g.recent) > 32 {
		g.recent = g.recent[1:]
	}
	return base
}

// PC pool bases keep the workload's code regions disjoint.
const (
	scanPCBase  = 0x40_0000
	chasePCBase = 0x50_0000
	writePCBase = 0x60_0000
)

// newScan materialises a coarse-object scan: sequential block reads (or
// read-modify-writes) over most of each region the object covers, all
// issued by one accessor PC — the paper's code↔data correlation.
func (g *Generator) newScan(t *task) {
	p := g.p
	regions := g.intBetween(p.ScanRegionsMin, p.ScanRegionsMax)
	base := g.objectBase(regions + 1)
	pc := g.pc(scanPCBase, p.ScanPCs)
	store := g.rng.Float64() < p.ScanStoreFrac
	typ := mem.Load
	if store {
		typ = mem.Store
	}

	startOff := uint(0)
	if g.rng.Float64() < p.UnalignedFrac {
		startOff = uint(g.intBetween(4, 12))
	}

	acc := t.accesses
	blocksPer := mem.BlocksPerRegion(mem.DefaultRegionShift)
	firstBlock := base.Block() + mem.BlockAddr(startOff)
	totalBlocks := uint(regions)*blocksPer - startOff
	covered := uint(float64(totalBlocks) * g.floatBetween(p.CoverageMin, p.CoverageMax))
	if g.rng.Float64() < p.ScanTinyFrac {
		covered = uint(g.intBetween(1, 3))
	}
	if covered == 0 {
		covered = 1
	}
	for i := uint(0); i < covered; i++ {
		acc = append(acc, mem.Access{
			PC:   pc,
			Addr: (firstBlock + mem.BlockAddr(i)).Addr(),
			Type: typ,
			Work: g.work(p.WorkMin, p.WorkMax),
		})
	}
	t.accesses = acc
}

// newChase materialises a dependent pointer chase across the footprint:
// one block per hop, long work gaps, a diverse PC pool — the paper's
// fine-grained, unpredictable traffic.
func (g *Generator) newChase(t *task) {
	p := g.p
	hops := g.intBetween(p.ChaseLenMin, p.ChaseLenMax)
	g.nextChain++
	if g.nextChain == 0 {
		g.nextChain = 1
	}
	chain := g.nextChain
	acc := t.accesses
	for i := 0; i < hops; i++ {
		b := mem.BlockAddr(g.rng.Int63n(int64(p.FootprintBlocks)))
		acc = append(acc, mem.Access{
			PC:    g.pc(chasePCBase, p.ChasePCs),
			Addr:  b.Addr(),
			Type:  mem.Load,
			Work:  g.work(p.ChaseWorkMin, p.ChaseWorkMax),
			Chain: chain, // each hop depends on the previous one's data
		})
	}
	t.accesses = acc
}

// newWriteBurst materialises the population of a fresh coarse object with
// stores (software caches, packet buffers, socket buffers): the stores
// fetch the blocks (store-triggered reads) and leave them dirty, to be
// written back on eviction.
func (g *Generator) newWriteBurst(t *task) {
	p := g.p
	regions := g.intBetween(p.ScanRegionsMin, p.ScanRegionsMax)
	base := g.objectBase(regions + 1)
	pc := g.pc(writePCBase, p.WritePCs)
	acc := t.accesses
	blocksPer := mem.BlocksPerRegion(mem.DefaultRegionShift)
	totalBlocks := uint(regions) * blocksPer
	covered := uint(float64(totalBlocks) * g.floatBetween(p.CoverageMin, p.CoverageMax))
	if g.rng.Float64() < p.ScanTinyFrac {
		covered = uint(g.intBetween(1, 3))
	}
	if covered == 0 {
		covered = 1
	}
	first := base.Block()
	for i := uint(0); i < covered; i++ {
		acc = append(acc, mem.Access{
			PC:   pc,
			Addr: (first + mem.BlockAddr(i)).Addr(),
			Type: mem.Store,
			Work: g.work(p.WorkMin, p.WorkMax),
		})
	}
	if g.rng.Float64() < p.WriteRevisitFrac {
		g.revisits = append(g.revisits, revisit{
			base:    base,
			pc:      pc,
			matures: g.taskCount + g.intBetween(200, 3000),
		})
	}
	t.accesses = acc
}

// newRevisit materialises a matured follow-up write: one or two stores
// into a previously written object.
func (g *Generator) newRevisit(t *task, rv revisit) {
	p := g.p
	n := g.intBetween(1, 2)
	acc := t.accesses
	first := rv.base.Block()
	for i := 0; i < n; i++ {
		off := mem.BlockAddr(g.rng.Intn(mem.DefaultBlocksPerRegion))
		acc = append(acc, mem.Access{
			PC:   rv.pc,
			Addr: (first + off).Addr(),
			Type: mem.Store,
			Work: g.work(p.WorkMin, p.WorkMax),
		})
	}
	t.accesses = acc
}

// newSparseWrite dirties a handful of scattered blocks (metadata updates,
// counters): low-density write traffic.
func (g *Generator) newSparseWrite(t *task) {
	p := g.p
	acc := t.accesses
	for i := 0; i < p.SparseWriteBlocks; i++ {
		b := mem.BlockAddr(g.rng.Int63n(int64(p.FootprintBlocks)))
		acc = append(acc, mem.Access{
			PC:   g.pc(chasePCBase, p.ChasePCs),
			Addr: b.Addr(),
			Type: mem.Store,
			Work: g.work(p.ChaseWorkMin, p.ChaseWorkMax),
		})
	}
	t.accesses = acc
}

// StreamPos implements Seekable: the number of accesses drawn so far.
func (g *Generator) StreamPos() uint64 { return g.calls }

// Tasks returns the number of tasks the generator has started, including
// the OpenTasks materialised at construction. The scenario layer uses it
// to end task-bounded phases at a deterministic point in the stream.
func (g *Generator) Tasks() int { return g.taskCount }

// StreamFingerprint implements Seekable. A generator's sequence is a
// pure function of (Params, seed), so the fingerprint digests every
// Params field plus the seed — two generators with tweaked weights but
// the same name must not fingerprint equal, because for custom Streams
// hooks this check is the only thing standing between a checkpoint and
// silently resuming a different sequence.
func (g *Generator) StreamFingerprint() uint64 {
	if g.fp != 0 {
		return g.fp
	}
	d, err := snapshot.CanonicalDigest("workload-generator-v1", g.p)
	if err != nil {
		// Params is a plain struct today; an unhashable field is a
		// programming error that must fail loudly, not degrade the
		// restore guard.
		panic("workload: Params not canonically hashable: " + err.Error())
	}
	h := fnvMix(binary.LittleEndian.Uint64(d[:8]), uint64(g.seed))
	if h == 0 {
		h = 1
	}
	g.fp = h
	return h
}

// SeekStream implements Seekable by replaying pos draws on a freshly
// seeded generator. Determinism makes this exact: after the replay the
// generator's state (tasks, RNG, revisit queue, phase counters) is
// bit-identical to the checkpointed one.
func (g *Generator) SeekStream(pos uint64) error {
	if g.calls > pos {
		return fmt.Errorf("workload: cannot seek stream backwards (%d > %d)", g.calls, pos)
	}
	for g.calls < pos {
		g.Next()
	}
	return nil
}

// fillTask refills t in place with the next generated activity.
func (g *Generator) fillTask(t *task) {
	t.reset()
	g.taskCount++
	if len(g.revisits) > 0 && g.revisits[0].matures <= g.taskCount {
		rv := g.revisits[0]
		g.revisits = g.revisits[1:]
		g.newRevisit(t, rv)
		return
	}
	x := g.rng.Float64()
	switch {
	case x < g.weights[0]:
		g.newScan(t)
	case x < g.weights[0]+g.weights[1]:
		g.newChase(t)
	case x < g.weights[0]+g.weights[1]+g.weights[2]:
		g.newWriteBurst(t)
	default:
		g.newSparseWrite(t)
	}
}

// Next implements Stream: round-robin over the open tasks, replacing each
// finished task with a fresh one.
func (g *Generator) Next() mem.Access {
	g.calls++
	for {
		g.rr = (g.rr + 1) % len(g.tasks)
		t := g.tasks[g.rr]
		if t.pos < len(t.accesses) {
			a := t.accesses[t.pos]
			t.pos++
			return a
		}
		g.fillTask(t)
	}
}
