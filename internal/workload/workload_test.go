package workload

import (
	"testing"

	"bump/internal/mem"
)

func TestAllPresetsValid(t *testing.T) {
	all := All()
	if len(all) != 6 {
		t.Fatalf("expected 6 workloads, got %d", len(all))
	}
	seen := map[string]bool{}
	for _, p := range all {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate workload name %s", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestByName(t *testing.T) {
	if p, ok := ByName("web-search"); !ok || p.Name != "web-search" {
		t.Error("ByName(web-search) failed")
	}
	if _, ok := ByName("no-such"); ok {
		t.Error("unknown name must not resolve")
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	for _, mut := range []func(*Params){
		func(p *Params) { p.ScanWeight, p.ChaseWeight, p.WriteBurstWeight, p.SparseWriteWeight = 0, 0, 0, 0 },
		func(p *Params) { p.ScanRegionsMin = 0 },
		func(p *Params) { p.ScanRegionsMax = 0 },
		func(p *Params) { p.CoverageMin = 0 },
		func(p *Params) { p.CoverageMax = 1.5 },
		func(p *Params) { p.ChaseLenMin = 0 },
		func(p *Params) { p.OpenTasks = 0 },
		func(p *Params) { p.FootprintBlocks = 100 },
		func(p *Params) { p.ScanPCs = 0 },
	} {
		p := WebSearch()
		mut(&p)
		if p.Validate() == nil {
			t.Errorf("mutated params must be invalid: %+v", p)
		}
		if _, err := NewGenerator(p, 1); err == nil {
			t.Error("NewGenerator must reject invalid params")
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := NewGenerator(WebSearch(), 42)
	b, _ := NewGenerator(WebSearch(), 42)
	for i := 0; i < 10000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("streams diverge at access %d", i)
		}
	}
	c, _ := NewGenerator(WebSearch(), 43)
	same := true
	a2, _ := NewGenerator(WebSearch(), 42)
	for i := 0; i < 100; i++ {
		if a2.Next() != c.Next() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds must produce different streams")
	}
}

func TestAddressesWithinFootprint(t *testing.T) {
	for _, p := range All() {
		g, err := NewGenerator(p, 7)
		if err != nil {
			t.Fatal(err)
		}
		limit := mem.BlockAddr(p.FootprintBlocks)
		for i := 0; i < 20000; i++ {
			a := g.Next()
			if a.Addr.Block() >= limit+mem.BlockAddr(mem.DefaultBlocksPerRegion*8) {
				t.Fatalf("%s: address %#x beyond footprint", p.Name, uint64(a.Addr))
			}
		}
	}
}

func TestPCPoolsAreDisjointAndBounded(t *testing.T) {
	p := WebSearch()
	g, _ := NewGenerator(p, 3)
	pcs := map[mem.PC]bool{}
	for i := 0; i < 50000; i++ {
		pcs[g.Next().PC] = true
	}
	max := (p.ScanPCs + p.ChasePCs + p.WritePCs) * p.PhasePool
	if len(pcs) > max {
		t.Errorf("distinct PCs = %d, want <= %d", len(pcs), max)
	}
	// Scan PCs must be few per phase — this is the code↔data
	// correlation BuMP exploits.
	scanPCs := 0
	for pc := range pcs {
		if pc >= scanPCBase && pc < chasePCBase {
			scanPCs++
		}
	}
	if scanPCs == 0 || scanPCs > p.ScanPCs*p.PhasePool {
		t.Errorf("scan PCs = %d, want 1..%d", scanPCs, p.ScanPCs*p.PhasePool)
	}
}

// measureMix replays n accesses and classifies them by region density the
// way Fig. 5 does at trace level: for every region touched, count the
// distinct blocks referenced within a sliding window of the stream.
func measureMix(t *testing.T, p Params, n int) (storeFrac float64, highReadFrac float64) {
	t.Helper()
	g, err := NewGenerator(p, 11)
	if err != nil {
		t.Fatal(err)
	}
	type gen struct {
		blocks map[mem.BlockAddr]bool
		reads  int
	}
	regions := map[mem.RegionAddr]*gen{}
	var stores, total int
	var reads int
	var order []mem.RegionAddr
	finish := func(rg *gen) (highReads int) {
		if len(rg.blocks) >= 8 {
			return rg.reads
		}
		return 0
	}
	high := 0
	for i := 0; i < n; i++ {
		a := g.Next()
		total++
		if a.Type == mem.Store {
			stores++
		}
		r := a.Addr.Region(mem.DefaultRegionShift)
		rg, ok := regions[r]
		if !ok {
			rg = &gen{blocks: map[mem.BlockAddr]bool{}}
			regions[r] = rg
			order = append(order, r)
			// Bound active set like an LLC would: retire oldest.
			if len(order) > 4096 {
				old := order[0]
				order = order[1:]
				if og, ok := regions[old]; ok {
					high += finish(og)
					delete(regions, old)
				}
			}
		}
		rg.blocks[a.Addr.Block()] = true
		rg.reads++
		reads++
	}
	for _, rg := range regions {
		high += finish(rg)
	}
	return float64(stores) / float64(total), float64(high) / float64(reads)
}

func TestWorkloadBimodalShape(t *testing.T) {
	// Trace-level sanity: every workload must show the paper's bimodal
	// structure — a majority of accesses to dense regions, a
	// non-trivial store share. (Exact DRAM-level fractions are measured
	// by the simulator's profiler; see internal/sim and EXPERIMENTS.md.)
	for _, p := range All() {
		storeFrac, highFrac := measureMix(t, p, 200000)
		if storeFrac < 0.05 || storeFrac > 0.60 {
			t.Errorf("%s: store fraction %.2f out of plausible range", p.Name, storeFrac)
		}
		if highFrac < 0.45 || highFrac > 0.97 {
			t.Errorf("%s: high-density access fraction %.2f out of range", p.Name, highFrac)
		}
	}
}

func TestMediaStreamingIsDensestAndDataServingSparsest(t *testing.T) {
	_, media := measureMix(t, MediaStreaming(), 200000)
	_, data := measureMix(t, DataServing(), 200000)
	if media <= data {
		t.Errorf("media streaming (%.2f) must be denser than data serving (%.2f)", media, data)
	}
}

func TestWorkGapsWithinBounds(t *testing.T) {
	p := WebSearch()
	g, _ := NewGenerator(p, 5)
	lo, hi := uint32(p.WorkMin), uint32(p.ChaseWorkMax)
	for i := 0; i < 10000; i++ {
		a := g.Next()
		if a.Work < lo || a.Work > hi {
			t.Fatalf("work gap %d outside [%d,%d]", a.Work, lo, hi)
		}
	}
}
