// Package streamtest is the reusable Seekable-conformance harness for
// workload.Stream implementations. Every stream type that wants to be
// checkpointable (the simulator refuses to snapshot anything else) runs
// the same table-driven contract checks: seek-then-draw must equal an
// uninterrupted draw at randomized split points, fingerprints must be
// stable across fresh instances and unaffected by drawing, distinct
// sequences must fingerprint differently (the restore-time foreign-
// checkpoint guard), and backward seeks must be rejected.
package streamtest

import (
	"math/rand"
	"testing"

	"bump/internal/workload"
)

// Case describes one stream type (or one configuration of it) under
// conformance test.
type Case struct {
	// Name labels the subtest.
	Name string
	// New returns a fresh stream of the case's fixed configuration.
	// Every call must yield an identically configured, unconsumed
	// stream whose Seekable state starts at position 0.
	New func() (workload.Stream, error)
	// Other returns a stream carrying a *different* access sequence
	// (different seed, trace, or parameters): its fingerprint must not
	// collide with New's. Leave nil to skip the foreign-fingerprint
	// check.
	Other func() (workload.Stream, error)
	// MaxSplit bounds the randomized split points (default 20000 draws).
	MaxSplit uint64
	// Splits is the number of randomized split points (default 5).
	Splits int
	// Tail is how many accesses are compared after each seek
	// (default 2000).
	Tail int
}

// Run executes the conformance suite for every case.
func Run(t *testing.T, cases []Case) {
	for _, c := range cases {
		t.Run(c.Name, func(t *testing.T) { runCase(t, c) })
	}
}

func (c *Case) defaults() {
	if c.MaxSplit == 0 {
		c.MaxSplit = 20000
	}
	if c.Splits == 0 {
		c.Splits = 5
	}
	if c.Tail == 0 {
		c.Tail = 2000
	}
}

func mustSeekable(t *testing.T, s workload.Stream) workload.Seekable {
	t.Helper()
	seek, ok := s.(workload.Seekable)
	if !ok {
		t.Fatalf("stream %T does not implement workload.Seekable", s)
	}
	return seek
}

func runCase(t *testing.T, c Case) {
	c.defaults()
	// Deterministic per-case randomness: the split points vary across
	// cases but never across runs, so a failure always reproduces.
	rng := rand.New(rand.NewSource(int64(len(c.Name)) + hashName(c.Name)))

	fresh := func() (workload.Stream, workload.Seekable) {
		t.Helper()
		s, err := c.New()
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return s, mustSeekable(t, s)
	}

	// Fingerprint stability: fresh instances agree, and consuming the
	// stream never changes its identity.
	s1, k1 := fresh()
	_, k2 := fresh()
	fp := k1.StreamFingerprint()
	if fp == 0 {
		t.Error("fingerprint must be non-zero")
	}
	if got := k2.StreamFingerprint(); got != fp {
		t.Errorf("fresh instances fingerprint differently: %#x vs %#x", got, fp)
	}
	if k1.StreamPos() != 0 {
		t.Errorf("fresh stream at position %d, want 0", k1.StreamPos())
	}
	for i := 0; i < 64; i++ {
		s1.Next()
	}
	if got := k1.StreamFingerprint(); got != fp {
		t.Errorf("drawing changed the fingerprint: %#x vs %#x", got, fp)
	}
	if got := k1.StreamPos(); got != 64 {
		t.Errorf("position after 64 draws = %d", got)
	}

	// Foreign fingerprints: a different sequence must not collide —
	// this inequality is the entire restore-time guard for custom
	// streams, where the config digest cannot see the content.
	if c.Other != nil {
		o, err := c.Other()
		if err != nil {
			t.Fatalf("Other: %v", err)
		}
		if got := mustSeekable(t, o).StreamFingerprint(); got == fp {
			t.Errorf("foreign stream shares fingerprint %#x", got)
		}
	}

	// Seek-then-draw equals uninterrupted draw at randomized splits.
	for i := 0; i < c.Splits; i++ {
		split := 1 + uint64(rng.Int63n(int64(c.MaxSplit)))
		ref, _ := fresh()
		for j := uint64(0); j < split; j++ {
			ref.Next()
		}
		seeked, sk := fresh()
		if err := sk.SeekStream(split); err != nil {
			t.Fatalf("split %d: SeekStream: %v", split, err)
		}
		if got := sk.StreamPos(); got != split {
			t.Fatalf("split %d: position after seek = %d", split, got)
		}
		for j := 0; j < c.Tail; j++ {
			want := ref.Next()
			if got := seeked.Next(); got != want {
				t.Fatalf("split %d: draw %d after seek diverges:\n got %+v\nwant %+v", split, j, got, want)
			}
		}
		if got, want := sk.StreamPos(), split+uint64(c.Tail); got != want {
			t.Fatalf("split %d: position after tail = %d, want %d", split, got, want)
		}

		// Backward seeks must be rejected, not silently rewound.
		if err := sk.SeekStream(split); err == nil {
			t.Fatalf("split %d: backward seek accepted", split)
		}
	}
}

// hashName folds a case name into a seed (FNV-1a).
func hashName(name string) int64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 0x100000001b3
	}
	return int64(h & 0x7fffffff)
}
