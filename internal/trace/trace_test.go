package trace

import (
	"path/filepath"
	"testing"

	"bump/internal/workload"
)

func TestCaptureRoundTrip(t *testing.T) {
	tr, err := Capture(workload.WebSearch(), 2, 7, 5_000)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Workload != "web-search" || tr.Core != 2 || tr.Seed != 7 || len(tr.Accesses) != 5_000 {
		t.Fatalf("capture metadata: %+v", tr)
	}

	path := filepath.Join(t.TempDir(), "t.gob")
	if err := WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Workload != tr.Workload || got.Core != tr.Core || got.Seed != tr.Seed {
		t.Fatalf("metadata changed across round trip: %+v", got)
	}
	if len(got.Accesses) != len(tr.Accesses) {
		t.Fatalf("access count %d, want %d", len(got.Accesses), len(tr.Accesses))
	}
	for i := range got.Accesses {
		if got.Accesses[i] != tr.Accesses[i] {
			t.Fatalf("access %d changed across round trip", i)
		}
	}
}

func TestCaptureMatchesSimulatorSeedDerivation(t *testing.T) {
	// The trace of (seed, core) must equal the stream the simulator
	// would generate for that core.
	tr, err := Capture(workload.WebSearch(), 3, 1, 1_000)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(workload.WebSearch(), workload.CoreSeed(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range tr.Accesses {
		if want := gen.Next(); a != want {
			t.Fatalf("access %d: trace %+v, simulator stream %+v", i, a, want)
		}
	}
}

func TestStreamsCycle(t *testing.T) {
	tr, err := Capture(workload.WebSearch(), 0, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := tr.Streams()
	if err != nil {
		t.Fatal(err)
	}
	s := streams(0)
	first := make([]any, 10)
	for i := range first {
		first[i] = s.Next()
	}
	for i := 0; i < 10; i++ { // second lap repeats the trace
		if s.Next() != first[i] {
			t.Fatalf("cyclic replay diverged at %d", i)
		}
	}
	// Independent per-core cursors.
	a, b := streams(0), streams(1)
	a.Next()
	if got := b.Next(); got != first[0] {
		t.Errorf("core streams share a cursor: %+v vs %+v", got, first[0])
	}

	empty := &Trace{}
	if _, err := empty.Streams(); err == nil {
		t.Error("empty trace must not produce streams")
	}

	if _, err := Capture(workload.WebSearch(), 0, 1, 0); err == nil {
		t.Error("zero-length capture must fail")
	}
}
