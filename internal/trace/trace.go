// Package trace defines the on-disk access-trace format shared by
// cmd/tracegen (capture), cmd/bumpsim (replay) and the simulation
// service. A trace is one core's materialised access stream plus enough
// metadata to reproduce it; replaying cycles through the recorded
// accesses via workload.Replay.
package trace

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"bump/internal/mem"
	"bump/internal/workload"
)

// Trace is the gob-serialised form of a captured access stream.
type Trace struct {
	// Workload names the generator preset the trace was captured from
	// (e.g. "web-search").
	Workload string
	// Core is the core index whose per-core seed produced the stream.
	Core int
	// Seed is the base seed the capture used.
	Seed int64
	// Accesses is the recorded stream in issue order.
	Accesses []mem.Access
}

// Capture materialises n accesses of the named workload's stream for one
// core, using the same per-core seed derivation as the simulator.
func Capture(w workload.Params, core int, seed int64, n int) (*Trace, error) {
	if n <= 0 {
		return nil, fmt.Errorf("trace: access count must be positive")
	}
	gen, err := workload.NewGenerator(w, workload.CoreSeed(seed, core))
	if err != nil {
		return nil, err
	}
	t := &Trace{Workload: w.Name, Core: core, Seed: seed, Accesses: make([]mem.Access, n)}
	for i := range t.Accesses {
		t.Accesses[i] = gen.Next()
	}
	return t, nil
}

// Encode writes the trace in gob format.
func (t *Trace) Encode(w io.Writer) error {
	return gob.NewEncoder(w).Encode(t)
}

// Decode reads a gob-encoded trace.
func Decode(r io.Reader) (*Trace, error) {
	var t Trace
	if err := gob.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	return &t, nil
}

// WriteFile writes the trace to path.
func WriteFile(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads a trace from path.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}

// Streams returns a sim.Config.Streams-shaped hook that replays the
// trace on every core. Each core gets its own cyclic cursor over the
// shared access slice, so replay runs are deterministic and allocate
// only the per-core Replay wrappers.
func (t *Trace) Streams() (func(core int) workload.Stream, error) {
	if len(t.Accesses) == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	accesses := t.Accesses
	return func(core int) workload.Stream {
		r, err := workload.NewReplay(accesses)
		if err != nil {
			// Non-emptiness was checked above; Replay cannot fail.
			panic(err)
		}
		return r
	}, nil
}
