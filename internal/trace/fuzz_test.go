package trace

import (
	"bytes"
	"testing"

	"bump/internal/workload"
)

// FuzzDecode feeds arbitrary bytes through the gob trace decoder: any
// input must either decode or error — never panic or OOM — and a trace
// that decodes must be replayable.
func FuzzDecode(f *testing.F) {
	// Seed: a small valid capture.
	tr, err := Capture(workload.WebSearch(), 0, 1, 32)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("not a gob stream"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine
		}
		streams, err := tr.Streams()
		if err != nil {
			return // e.g. decoded but empty
		}
		s := streams(0)
		for i := 0; i < 4; i++ {
			_ = s.Next()
		}
	})
}
