package scenario

import (
	"encoding/binary"
	"fmt"

	"bump/internal/mem"
	"bump/internal/snapshot"
	"bump/internal/workload"
)

// Timeline is the resolved, per-core form of a tenant's phase sequence:
// effective parameters per phase with durations. It is pure data with
// exported fields only, so snapshot.CanonicalDigest covers it — the
// composite's stream fingerprint is a digest of the timeline plus seed.
type Timeline struct {
	Phases []ResolvedPhase
	Repeat bool
}

// ResolvedPhase is one timeline segment with its ramps already applied.
type ResolvedPhase struct {
	Params   workload.Params
	Accesses uint64
	Tasks    uint64
}

// validate enforces the duration rules NewComposite relies on (Spec
// validation enforces the same rules earlier for spec-built timelines;
// hand-built timelines get the check here).
func (tl Timeline) validate() error {
	if len(tl.Phases) == 0 {
		return fmt.Errorf("scenario: timeline has no phases")
	}
	for i, ph := range tl.Phases {
		if ph.Accesses > 0 && ph.Tasks > 0 {
			return fmt.Errorf("scenario: timeline phase %d: Accesses and Tasks are mutually exclusive", i)
		}
		bounded := ph.Accesses > 0 || ph.Tasks > 0
		final := i == len(tl.Phases)-1
		switch {
		case tl.Repeat && !bounded:
			return fmt.Errorf("scenario: timeline phase %d: repeating timelines need bounded phases", i)
		case !tl.Repeat && !final && !bounded:
			return fmt.Errorf("scenario: timeline phase %d: only the final phase may be open-ended", i)
		case !tl.Repeat && final && bounded:
			return fmt.Errorf("scenario: timeline final phase must be open-ended (or set Repeat)")
		}
		if err := ph.Params.Validate(); err != nil {
			return fmt.Errorf("scenario: timeline phase %d: %w", i, err)
		}
	}
	return nil
}

// phaseSeedStride separates per-phase generator seeds. Each phase runs a
// *fresh* generator seeded by (composite seed, absolute phase index), so
// phases are independent deterministic sequences: a checkpoint seek can
// skip completed access-bounded phases arithmetically, and a repeated
// phase (loop 2 of a diurnal cycle) re-trains predictors on new data
// rather than replaying loop 1 verbatim.
const phaseSeedStride = 15485863 // the 1,000,000th prime

// Composite is the phase-aware workload.Stream for one core: it plays
// its timeline's phases in order (looping when Repeat), drawing each
// phase from a freshly seeded workload.Generator. The entire stream is a
// deterministic function of (Timeline, seed, draw count), which makes
// Seekable checkpointing exact: StreamPos is the draw count, and
// SeekStream rebuilds only the phase the position lands in.
type Composite struct {
	tl   Timeline
	seed int64

	cur       *workload.Generator // current phase's generator (lazily built)
	baseTasks int                 // cur's task count at construction
	idx       int                 // absolute phase index (keeps counting across loops)
	drawn     uint64              // draws within the current phase
	calls     uint64              // total draws (StreamPos)
	fp        uint64              // lazily computed stream fingerprint
}

// NewComposite builds the stream for one core. Different cores of the
// same tenant should use different seeds (workload.CoreSeed).
func NewComposite(tl Timeline, seed int64) (*Composite, error) {
	if err := tl.validate(); err != nil {
		return nil, err
	}
	return &Composite{tl: tl, seed: seed}, nil
}

// phase returns the resolved phase for the current index.
func (c *Composite) phase() ResolvedPhase {
	n := len(c.tl.Phases)
	if c.tl.Repeat {
		return c.tl.Phases[c.idx%n]
	}
	// Non-repeating timelines never advance past their (open-ended)
	// final phase, so idx < n always holds here.
	return c.tl.Phases[c.idx]
}

// phaseSeed derives the current phase's generator seed.
func (c *Composite) phaseSeed() int64 {
	return c.seed + int64(c.idx+1)*phaseSeedStride
}

// advance moves to the next phase, discarding the finished generator.
func (c *Composite) advance() {
	c.idx++
	c.drawn = 0
	c.cur = nil
	c.baseTasks = 0
}

// ensureGen lazily constructs the current phase's generator. Parameters
// were validated at construction, so failure is a programming error.
func (c *Composite) ensureGen(p ResolvedPhase) {
	if c.cur != nil {
		return
	}
	g, err := workload.NewGenerator(p.Params, c.phaseSeed())
	if err != nil {
		panic("scenario: validated phase params rejected by generator: " + err.Error())
	}
	c.cur = g
	c.baseTasks = g.Tasks()
}

// Next implements workload.Stream.
func (c *Composite) Next() mem.Access {
	for {
		p := c.phase()
		if p.Accesses > 0 && c.drawn >= p.Accesses {
			c.advance()
			continue
		}
		c.ensureGen(p)
		if p.Tasks > 0 && uint64(c.cur.Tasks()-c.baseTasks) >= p.Tasks {
			c.advance()
			continue
		}
		c.calls++
		c.drawn++
		return c.cur.Next()
	}
}

// Phase returns the absolute phase index the next draw comes from
// (loops keep counting: the first phase of loop 2 of a two-phase
// timeline is index 2). Exposed for tests and reports.
func (c *Composite) Phase() int {
	// Resolve any pending boundary so the report reflects the phase the
	// *next* access belongs to without consuming a draw.
	for {
		p := c.phase()
		if p.Accesses > 0 && c.drawn >= p.Accesses {
			c.advance()
			continue
		}
		if p.Tasks > 0 && c.cur != nil && uint64(c.cur.Tasks()-c.baseTasks) >= p.Tasks {
			c.advance()
			continue
		}
		return c.idx
	}
}

// StreamPos implements workload.Seekable: total accesses drawn.
func (c *Composite) StreamPos() uint64 { return c.calls }

// SeekStream implements workload.Seekable. Completed access-bounded
// phases are skipped arithmetically — their generators are never built,
// because each phase's sequence depends only on (params, phase seed) —
// so seek cost is proportional to the draws inside task-bounded phases
// and the final, partially played phase, not the whole run.
func (c *Composite) SeekStream(pos uint64) error {
	if c.calls > pos {
		return fmt.Errorf("scenario: cannot seek stream backwards (%d > %d)", c.calls, pos)
	}
	for c.calls < pos {
		p := c.phase()
		if p.Accesses > 0 {
			if rem := p.Accesses - c.drawn; c.calls+rem <= pos {
				c.calls += rem
				c.advance()
				continue
			}
		}
		c.Next()
	}
	return nil
}

// StreamFingerprint implements workload.Seekable: a canonical digest of
// the resolved timeline and seed. Two composites fingerprint equal iff
// every phase parameter, duration, the repeat flag and the seed agree,
// so a checkpoint saved under one scenario can never silently resume
// under another.
func (c *Composite) StreamFingerprint() uint64 {
	if c.fp != 0 {
		return c.fp
	}
	d, err := snapshot.CanonicalDigest("scenario-composite-v1", struct {
		Timeline Timeline
		Seed     int64
	}{c.tl, c.seed})
	if err != nil {
		// Timeline is plain data; an unhashable field is a programming
		// error that must fail loudly, not degrade the restore guard.
		panic("scenario: timeline not canonically hashable: " + err.Error())
	}
	h := binary.LittleEndian.Uint64(d[:8])
	if h == 0 {
		h = 1 // keep 0 as the "not yet computed" sentinel
	}
	c.fp = h
	return h
}
