// Package scenario composes the six workload presets into declarative
// multi-phase, multi-tenant runs — the consolidation regime the paper
// targets (many server applications sharing one CMP, each moving through
// load and code/dataset phases) that a single stationary workload.Params
// per core cannot express.
//
// A Spec is pure data: per-tenant core ranges, each with an ordered
// timeline of phases naming a preset (or carrying inline parameters)
// plus an access-count or task-count duration and optional load-shift
// ramps. Because the spec is structs, slices and scalars only — no maps,
// pointers or code — it is covered verbatim by the simulator's canonical
// digests: the service config hash, the snapshot structural-compatibility
// check, and the warm-checkpoint key all see the full scenario, so
// scenario runs cache, checkpoint and warm-share exactly like stationary
// ones.
//
// The executable form is Composite (composite.go): a phase-aware
// workload.Stream that is fully deterministic per seed and implements
// workload.Seekable, so PR 3's snapshot/warm-start machinery works on
// scenario runs unchanged.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"bump/internal/workload"
)

// Spec is a validated, declarative scenario: a named composition of
// per-tenant phase timelines over disjoint core ranges.
type Spec struct {
	// Name identifies the scenario (reports, result labels, digests).
	Name string `json:"name"`
	// Tenants assign phase timelines to disjoint core ranges; together
	// the ranges must cover every simulated core.
	Tenants []Tenant `json:"tenants"`
}

// Tenant is one colocated application: a core range and the phase
// timeline its cores run.
type Tenant struct {
	// Name labels the tenant (optional, for reports).
	Name string `json:"name,omitempty"`
	// Cores is the inclusive core range the tenant occupies.
	Cores CoreRange `json:"cores"`
	// Repeat loops the timeline indefinitely (diurnal cycles, phase
	// swaps). When true every phase needs a duration; when false the
	// final phase is open-ended and durations on it are rejected.
	Repeat bool `json:"repeat,omitempty"`
	// Phases is the ordered timeline.
	Phases []Phase `json:"phases"`
}

// CoreRange is an inclusive [First, Last] range of core indices.
type CoreRange struct {
	First int `json:"first"`
	Last  int `json:"last"`
}

// Contains reports whether core lies in the range.
func (r CoreRange) Contains(core int) bool { return core >= r.First && core <= r.Last }

// Phase is one segment of a tenant's timeline: a workload (preset name
// or inline parameters), a duration, and optional load-shift ramps.
type Phase struct {
	// Preset names one of the workload presets (e.g. "web-search").
	// When empty, Inline supplies the full parameters instead.
	Preset string `json:"preset,omitempty"`
	// Inline is a complete workload.Params used when Preset is empty
	// (scenario files can define workloads the preset catalogue lacks).
	Inline workload.Params `json:"inline,omitzero"`

	// Accesses bounds the phase in stream accesses drawn; Tasks bounds
	// it in generator tasks started beyond the initial window. Exactly
	// one may be set; both zero marks the open-ended final phase of a
	// non-repeating timeline.
	Accesses uint64 `json:"accesses,omitempty"`
	// Tasks ends the phase once its generator has started this many
	// fresh tasks. The boundary lands at the first access draw at which
	// the count is reached, so it is exact and deterministic but not
	// predictable without running the phase (checkpoint seeks replay
	// task-bounded phases; access-bounded ones are skipped arithmetically).
	Tasks uint64 `json:"tasks,omitempty"`

	// Load-shift ramps (0 = leave the preset value unchanged; otherwise
	// a multiplier in [1/16, 16]).
	//
	// LoadScale scales OpenTasks — the number of interleaved tasks per
	// core, i.e. offered load and memory-level parallelism.
	LoadScale float64 `json:"load_scale,omitempty"`
	// WorkScale scales the work gaps (WorkMin/Max, ChaseWorkMin/Max):
	// <1 is a compute-light high-pressure phase, >1 a quiet one.
	WorkScale float64 `json:"work_scale,omitempty"`
	// WriteScale scales the write-burst and sparse-write task weights
	// (renormalised by the generator), shifting the read/write mix.
	WriteScale float64 `json:"write_scale,omitempty"`
}

// scaleBounds for the ramp multipliers.
const scaleMin, scaleMax = 1.0 / 16, 16.0

// bounded reports whether the phase has a duration.
func (ph Phase) bounded() bool { return ph.Accesses > 0 || ph.Tasks > 0 }

// Params resolves the phase's effective workload parameters: preset (or
// inline) with the ramps applied.
func (ph Phase) Params() (workload.Params, error) {
	var p workload.Params
	if ph.Preset != "" {
		if ph.Inline != (workload.Params{}) {
			// Never pick one silently: the ignored half would also leak
			// into the config hash, splitting identical simulations
			// across cache keys.
			return p, fmt.Errorf("scenario: phase sets both preset %q and inline params", ph.Preset)
		}
		var ok bool
		p, ok = workload.ByName(ph.Preset)
		if !ok {
			return p, fmt.Errorf("scenario: unknown preset %q", ph.Preset)
		}
	} else {
		p = ph.Inline
		if p.Name == "" {
			return p, fmt.Errorf("scenario: phase needs a preset name or inline params with a Name")
		}
	}
	for _, s := range []float64{ph.LoadScale, ph.WorkScale, ph.WriteScale} {
		if s != 0 && (s < scaleMin || s > scaleMax) {
			return p, fmt.Errorf("scenario: phase %s: scale %g outside [%g, %g]", p.Name, s, scaleMin, scaleMax)
		}
	}
	if ph.LoadScale > 0 {
		p.OpenTasks = scaleInt(p.OpenTasks, ph.LoadScale)
	}
	if ph.WorkScale > 0 {
		p.WorkMin = scaleInt(p.WorkMin, ph.WorkScale)
		p.WorkMax = scaleInt(p.WorkMax, ph.WorkScale)
		p.ChaseWorkMin = scaleInt(p.ChaseWorkMin, ph.WorkScale)
		p.ChaseWorkMax = scaleInt(p.ChaseWorkMax, ph.WorkScale)
	}
	if ph.WriteScale > 0 {
		p.WriteBurstWeight *= ph.WriteScale
		p.SparseWriteWeight *= ph.WriteScale
	}
	if err := p.Validate(); err != nil {
		return p, fmt.Errorf("scenario: phase resolves to invalid params: %w", err)
	}
	return p, nil
}

// scaleInt multiplies with round-half-up, clamped to at least 1 so a
// hard downscale never zeroes a structural parameter.
func scaleInt(v int, s float64) int {
	out := int(float64(v)*s + 0.5)
	if out < 1 {
		return 1
	}
	return out
}

// Enabled reports whether the spec describes a scenario (the zero Spec
// means "no scenario" wherever a Spec is embedded, e.g. sim.Config).
func (s Spec) Enabled() bool { return len(s.Tenants) > 0 }

// Validate checks the spec against a core count: named presets resolve,
// ramps are in range, resolved parameters are valid, durations follow
// the Repeat rules, and the tenant core ranges partition [0, cores)
// exactly. cores <= 0 skips the partition check (spec-only validation).
func (s Spec) Validate(cores int) error {
	if !s.Enabled() {
		return fmt.Errorf("scenario: spec has no tenants")
	}
	if s.Name == "" {
		return fmt.Errorf("scenario: spec needs a name")
	}
	var owner []int
	if cores > 0 {
		owner = make([]int, cores)
		for i := range owner {
			owner[i] = -1
		}
	}
	for ti, tn := range s.Tenants {
		label := tn.Name
		if label == "" {
			label = fmt.Sprintf("#%d", ti)
		}
		if tn.Cores.First < 0 || tn.Cores.Last < tn.Cores.First {
			return fmt.Errorf("scenario %s: tenant %s: bad core range [%d, %d]", s.Name, label, tn.Cores.First, tn.Cores.Last)
		}
		if owner != nil {
			if tn.Cores.Last >= cores {
				return fmt.Errorf("scenario %s: tenant %s: core range [%d, %d] exceeds %d cores", s.Name, label, tn.Cores.First, tn.Cores.Last, cores)
			}
			for c := tn.Cores.First; c <= tn.Cores.Last; c++ {
				if owner[c] >= 0 {
					return fmt.Errorf("scenario %s: core %d claimed by tenants %d and %d", s.Name, c, owner[c], ti)
				}
				owner[c] = ti
			}
		}
		if len(tn.Phases) == 0 {
			return fmt.Errorf("scenario %s: tenant %s has no phases", s.Name, label)
		}
		for pi, ph := range tn.Phases {
			if ph.Accesses > 0 && ph.Tasks > 0 {
				return fmt.Errorf("scenario %s: tenant %s phase %d: Accesses and Tasks are mutually exclusive", s.Name, label, pi)
			}
			final := pi == len(tn.Phases)-1
			switch {
			case tn.Repeat && !ph.bounded():
				return fmt.Errorf("scenario %s: tenant %s phase %d: repeating timelines need a duration on every phase", s.Name, label, pi)
			case !tn.Repeat && !final && !ph.bounded():
				return fmt.Errorf("scenario %s: tenant %s phase %d: only the final phase of a non-repeating timeline may be open-ended", s.Name, label, pi)
			case !tn.Repeat && final && ph.bounded():
				return fmt.Errorf("scenario %s: tenant %s phase %d: the final phase of a non-repeating timeline is open-ended (drop its duration or set repeat)", s.Name, label, pi)
			}
			if _, err := ph.Params(); err != nil {
				return fmt.Errorf("scenario %s: tenant %s phase %d: %w", s.Name, label, pi, err)
			}
		}
	}
	if owner != nil {
		for c, t := range owner {
			if t < 0 {
				return fmt.Errorf("scenario %s: core %d has no tenant (ranges must cover all %d cores)", s.Name, c, cores)
			}
		}
	}
	return nil
}

// TimelineFor resolves the phase timeline driving one core.
func (s Spec) TimelineFor(core int) (Timeline, error) {
	for _, tn := range s.Tenants {
		if !tn.Cores.Contains(core) {
			continue
		}
		tl := Timeline{Repeat: tn.Repeat, Phases: make([]ResolvedPhase, len(tn.Phases))}
		for i, ph := range tn.Phases {
			p, err := ph.Params()
			if err != nil {
				return Timeline{}, err
			}
			tl.Phases[i] = ResolvedPhase{Params: p, Accesses: ph.Accesses, Tasks: ph.Tasks}
		}
		return tl, nil
	}
	return Timeline{}, fmt.Errorf("scenario %s: no tenant covers core %d", s.Name, core)
}

// Parse decodes a scenario spec from its canonical JSON file format,
// rejecting unknown fields so a typoed knob fails loudly instead of
// silently running the default.
func Parse(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: parse: %w", err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("scenario: parse: trailing data after spec")
	}
	return s, nil
}

// Load reads and parses a scenario file.
func Load(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
