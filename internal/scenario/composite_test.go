package scenario

import (
	"testing"
	"testing/quick"

	"bump/internal/workload"
	"bump/internal/workload/streamtest"
)

func rp(t *testing.T, preset string, accesses, tasks uint64) ResolvedPhase {
	t.Helper()
	p, ok := workload.ByName(preset)
	if !ok {
		t.Fatalf("unknown preset %s", preset)
	}
	return ResolvedPhase{Params: p, Accesses: accesses, Tasks: tasks}
}

func mustComposite(t *testing.T, tl Timeline, seed int64) *Composite {
	t.Helper()
	c, err := NewComposite(tl, seed)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestScenarioCompositeDeterminism: a composite stream is a pure
// function of (timeline, seed) — equal inputs replay bit-identically,
// different seeds diverge.
func TestScenarioCompositeDeterminism(t *testing.T) {
	tl := Timeline{Repeat: true, Phases: []ResolvedPhase{
		rp(t, "data-serving", 3000, 0),
		rp(t, "media-streaming", 0, 150), // task-bounded middle phase
		rp(t, "web-search", 2000, 0),
	}}
	a := mustComposite(t, tl, 42)
	b := mustComposite(t, tl, 42)
	for i := 0; i < 30000; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("identical composites diverge at draw %d", i)
		}
	}
	c := mustComposite(t, tl, 43)
	a2 := mustComposite(t, tl, 42)
	same := true
	for i := 0; i < 200; i++ {
		if a2.Next() != c.Next() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produce the same composite stream")
	}
}

// TestScenarioPhaseBoundaryDeterminism: access-bounded phase boundaries
// land at fixed draw positions regardless of seed — re-seeding a
// scenario moves the content of every phase but never its schedule.
func TestScenarioPhaseBoundaryDeterminism(t *testing.T) {
	tl := Timeline{Repeat: true, Phases: []ResolvedPhase{
		rp(t, "data-serving", 2500, 0),
		rp(t, "web-serving", 1500, 0),
	}}
	boundaries := func(seed int64, draws int) []uint64 {
		c := mustComposite(t, tl, seed)
		var out []uint64
		last := c.Phase()
		for i := 0; i < draws; i++ {
			c.Next()
			if p := c.Phase(); p != last {
				out = append(out, c.StreamPos())
				last = p
			}
		}
		return out
	}
	a := boundaries(1, 20000)
	b := boundaries(999, 20000)
	if len(a) == 0 {
		t.Fatal("no phase boundaries crossed")
	}
	if len(a) != len(b) {
		t.Fatalf("boundary counts differ across seeds: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("boundary %d at draw %d for seed 1 but %d for seed 999", i, a[i], b[i])
		}
		if want := uint64(0); a[i]%4000 != 2500 && a[i]%4000 != want {
			t.Fatalf("boundary %d at draw %d, not on the 2500/4000 schedule", i, a[i])
		}
	}
}

// TestScenarioAccessConservation: splitting an access-bounded phase
// into consecutive sub-phases of the same total conserves the position
// at which downstream phases begin (the phase *schedule* is additive,
// whatever the phase contents do).
func TestScenarioAccessConservation(t *testing.T) {
	marker := rp(t, "web-search", 0, 0) // open-ended final phase
	startOfMarker := func(pre []ResolvedPhase, markerIdx int) uint64 {
		tl := Timeline{Phases: append(append([]ResolvedPhase{}, pre...), marker)}
		c := mustComposite(t, tl, 7)
		for c.Phase() != markerIdx {
			c.Next()
		}
		return c.StreamPos()
	}

	whole := startOfMarker([]ResolvedPhase{rp(t, "data-serving", 6000, 0)}, 1)
	split := startOfMarker([]ResolvedPhase{
		rp(t, "data-serving", 2500, 0),
		rp(t, "data-serving", 3500, 0),
	}, 2)
	if whole != 6000 || split != 6000 {
		t.Fatalf("marker phase starts at %d (whole) / %d (split), want 6000", whole, split)
	}

	// The same property over randomized splits (testing/quick).
	prop := func(d1, d2 uint16) bool {
		a, b := uint64(d1%5000)+1, uint64(d2%5000)+1
		got := startOfMarker([]ResolvedPhase{
			rp(t, "media-streaming", a, 0),
			rp(t, "data-serving", b, 0),
		}, 2)
		return got == a+b
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestScenarioRenormalizationInvariance: scaling every task weight of a
// phase's inline parameters by one power-of-two constant leaves the
// composite stream bit-identical (the generator renormalises weights;
// exact in IEEE arithmetic for power-of-two factors).
func TestScenarioRenormalizationInvariance(t *testing.T) {
	scale := func(p workload.Params, k float64) workload.Params {
		p.ScanWeight *= k
		p.ChaseWeight *= k
		p.WriteBurstWeight *= k
		p.SparseWriteWeight *= k
		return p
	}
	mk := func(k float64) *Composite {
		ds, _ := workload.ByName("data-serving")
		ws, _ := workload.ByName("web-serving")
		tl := Timeline{Repeat: true, Phases: []ResolvedPhase{
			{Params: scale(ds, k), Accesses: 2000},
			{Params: scale(ws, k), Accesses: 3000},
		}}
		return mustComposite(t, tl, 21)
	}
	a, b := mk(1), mk(8)
	for i := 0; i < 15000; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("weight-scaled composite diverges at draw %d", i)
		}
	}
}

// TestScenarioTaskBoundedPhase: a task-bounded phase ends after the
// configured number of fresh tasks, at a deterministic draw position.
func TestScenarioTaskBoundedPhase(t *testing.T) {
	tl := Timeline{Repeat: true, Phases: []ResolvedPhase{
		rp(t, "web-search", 0, 50),
		rp(t, "data-serving", 1000, 0),
	}}
	end := func(seed int64) uint64 {
		c := mustComposite(t, tl, seed)
		for c.Phase() == 0 {
			c.Next()
		}
		return c.StreamPos()
	}
	e1, e1b, e2 := end(5), end(5), end(6)
	if e1 == 0 {
		t.Fatal("task-bounded phase never ended")
	}
	if e1 != e1b {
		t.Fatalf("task boundary not deterministic: %d vs %d", e1, e1b)
	}
	// Different seeds draw different task mixes, so the boundary
	// position (unlike an access-bounded one) generally moves.
	if e2 == 0 {
		t.Fatal("task-bounded phase never ended for seed 6")
	}
}

// TestScenarioStreamConformance runs the shared Seekable-conformance
// harness over composites whose split points cross several phase
// boundaries — exercising both the draw-replay and the phase-skip paths
// of SeekStream.
func TestScenarioStreamConformance(t *testing.T) {
	access := Timeline{Repeat: true, Phases: []ResolvedPhase{
		rp(t, "data-serving", 3000, 0),
		rp(t, "media-streaming", 2000, 0),
	}}
	mixed := Timeline{Phases: []ResolvedPhase{
		rp(t, "web-search", 0, 120),
		rp(t, "online-analytics", 4000, 0),
		rp(t, "web-serving", 0, 0), // open-ended tail
	}}
	caseOf := func(name string, tl Timeline, seed, otherSeed int64) streamtest.Case {
		return streamtest.Case{
			Name:     name,
			New:      func() (workload.Stream, error) { return NewComposite(tl, seed) },
			Other:    func() (workload.Stream, error) { return NewComposite(tl, otherSeed) },
			MaxSplit: 20000,
		}
	}
	streamtest.Run(t, []streamtest.Case{
		caseOf("composite/access-bounded-repeat", access, 42, 43),
		caseOf("composite/task-bounded-mixed", mixed, 7, 8),
	})

	// Different timelines must also fingerprint apart (not just
	// different seeds).
	a := mustComposite(t, access, 1)
	b := mustComposite(t, mixed, 1)
	if a.StreamFingerprint() == b.StreamFingerprint() {
		t.Fatal("distinct timelines share a fingerprint")
	}
	shifted := access
	shifted.Phases = append([]ResolvedPhase{}, access.Phases...)
	shifted.Phases[0].Accesses++
	c := mustComposite(t, shifted, 1)
	if a.StreamFingerprint() == c.StreamFingerprint() {
		t.Fatal("duration tweak did not change the fingerprint")
	}
}

// TestScenarioSeekSkipsCompletedPhases: seeking far into a repeating
// access-bounded timeline must not construct (or draw) the skipped
// phases — observable through cost: the seek below touches at most one
// phase's worth of draws. Guarded indirectly by equivalence here and by
// the conformance harness above; this test pins the position math at
// exact phase boundaries.
func TestScenarioSeekSkipsCompletedPhases(t *testing.T) {
	tl := Timeline{Repeat: true, Phases: []ResolvedPhase{
		rp(t, "data-serving", 1000, 0),
		rp(t, "web-search", 500, 0),
	}}
	for _, pos := range []uint64{1000, 1500, 3000, 3001, 2999} {
		ref := mustComposite(t, tl, 3)
		for i := uint64(0); i < pos; i++ {
			ref.Next()
		}
		seeked := mustComposite(t, tl, 3)
		if err := seeked.SeekStream(pos); err != nil {
			t.Fatalf("seek %d: %v", pos, err)
		}
		if seeked.StreamPos() != pos {
			t.Fatalf("seek %d landed at %d", pos, seeked.StreamPos())
		}
		for i := 0; i < 800; i++ {
			if x, y := ref.Next(), seeked.Next(); x != y {
				t.Fatalf("seek %d: draw %d diverges", pos, i)
			}
		}
	}
}
