package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"bump/internal/workload"
)

// twoTenant is a small valid spec used across the tests.
func twoTenant() Spec {
	return Spec{Name: "t", Tenants: []Tenant{
		{Name: "a", Cores: CoreRange{0, 1}, Repeat: true, Phases: []Phase{
			{Preset: "data-serving", Accesses: 5000},
			{Preset: "media-streaming", Accesses: 5000},
		}},
		{Name: "b", Cores: CoreRange{2, 3}, Phases: []Phase{
			{Preset: "web-search", Accesses: 4000},
			{Preset: "web-serving"},
		}},
	}}
}

func TestScenarioSpecValidates(t *testing.T) {
	if err := twoTenant().Validate(4); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	// Spec-only validation (unknown core count).
	if err := twoTenant().Validate(0); err != nil {
		t.Fatalf("spec-only validation rejected: %v", err)
	}
}

func TestScenarioValidateRejects(t *testing.T) {
	cases := map[string]struct {
		mut   func(*Spec)
		cores int
	}{
		"no tenants":      {func(s *Spec) { s.Tenants = nil }, 4},
		"no name":         {func(s *Spec) { s.Name = "" }, 4},
		"unknown preset":  {func(s *Spec) { s.Tenants[0].Phases[0].Preset = "no-such" }, 4},
		"overlap":         {func(s *Spec) { s.Tenants[1].Cores.First = 1 }, 4},
		"gap":             {func(s *Spec) { s.Tenants[1].Cores.First = 3 }, 4},
		"range past end":  {func(s *Spec) { s.Tenants[1].Cores.Last = 4 }, 4},
		"inverted range":  {func(s *Spec) { s.Tenants[0].Cores = CoreRange{1, 0} }, 4},
		"no phases":       {func(s *Spec) { s.Tenants[0].Phases = nil }, 4},
		"both durations":  {func(s *Spec) { s.Tenants[0].Phases[0].Tasks = 10 }, 4},
		"repeat unbound":  {func(s *Spec) { s.Tenants[0].Phases[1].Accesses = 0 }, 4},
		"mid open-ended":  {func(s *Spec) { s.Tenants[1].Phases[0].Accesses = 0 }, 4},
		"final bounded":   {func(s *Spec) { s.Tenants[1].Phases[1].Accesses = 100 }, 4},
		"scale too big":   {func(s *Spec) { s.Tenants[0].Phases[0].LoadScale = 64 }, 4},
		"scale too small": {func(s *Spec) { s.Tenants[0].Phases[0].WorkScale = 0.01 }, 4},
		"preset and inline": {func(s *Spec) {
			s.Tenants[0].Phases[0].Inline = workload.WebSearch()
		}, 4},
		"bad resolved params": {func(s *Spec) {
			// Inline params that fail workload validation.
			s.Tenants[0].Phases[0].Preset = ""
			s.Tenants[0].Phases[0].Inline = workload.Params{Name: "broken"}
		}, 4},
	}
	for name, tc := range cases {
		s := twoTenant()
		tc.mut(&s)
		if err := s.Validate(tc.cores); err == nil {
			t.Errorf("%s: invalid spec accepted", name)
		}
	}
}

func TestScenarioPhaseRamps(t *testing.T) {
	base, _ := workload.ByName("web-serving")
	ph := Phase{Preset: "web-serving", LoadScale: 2, WorkScale: 0.5, WriteScale: 2}
	p, err := ph.Params()
	if err != nil {
		t.Fatal(err)
	}
	if p.OpenTasks != base.OpenTasks*2 {
		t.Errorf("OpenTasks %d, want %d", p.OpenTasks, base.OpenTasks*2)
	}
	if p.WorkMin != scaleInt(base.WorkMin, 0.5) || p.ChaseWorkMax != scaleInt(base.ChaseWorkMax, 0.5) {
		t.Error("WorkScale not applied to the work-gap bounds")
	}
	if p.WriteBurstWeight != base.WriteBurstWeight*2 || p.SparseWriteWeight != base.SparseWriteWeight*2 {
		t.Error("WriteScale not applied to the write weights")
	}
	if p.ScanWeight != base.ScanWeight || p.ChaseWeight != base.ChaseWeight {
		t.Error("WriteScale leaked into read weights")
	}

	// A hard downscale never zeroes a structural parameter.
	hard := Phase{Preset: "web-serving", LoadScale: 1.0 / 16}
	p, err = hard.Params()
	if err != nil {
		t.Fatal(err)
	}
	if p.OpenTasks < 1 {
		t.Errorf("LoadScale 1/16 produced OpenTasks %d", p.OpenTasks)
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	s := twoTenant()
	s.Tenants[0].Phases[0].LoadScale = 1.5
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(s)
	bj, _ := json.Marshal(back)
	if string(aj) != string(bj) {
		t.Fatalf("round trip changed the spec:\n%s\nvs\n%s", aj, bj)
	}
	// Inline params stay out of the wire format when unused.
	if strings.Contains(string(data), "inline") {
		t.Errorf("preset-only spec serialised inline params:\n%s", data)
	}
}

func TestScenarioParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"name":"x","tenants":[],"typo":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := Parse([]byte(`{"name":"x","tenants":[]} trailing`)); err == nil {
		t.Fatal("trailing data accepted")
	}
}

func TestScenarioLibrary(t *testing.T) {
	names := Library()
	want := []string{"bursty-writer", "consolidated", "diurnal-shift", "phase-swap"}
	if len(names) != len(want) {
		t.Fatalf("library %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("library %v, want %v", names, want)
		}
	}
	// Every built-in validates at the paper's 16 cores and at the
	// 2-core test configurations.
	for _, cores := range []int{2, 16, 5} {
		for _, name := range names {
			sc, ok := ByName(name, cores)
			if !ok {
				t.Fatalf("ByName(%q) failed", name)
			}
			if sc.Name != name {
				t.Errorf("ByName(%q) returned %q", name, sc.Name)
			}
			if err := sc.Validate(cores); err != nil {
				t.Errorf("%s at %d cores: %v", name, cores, err)
			}
		}
	}
	if _, ok := ByName("no-such", 16); ok {
		t.Error("unknown scenario resolved")
	}
}

// TestScenarioResolve: the shared CLI resolution rule — known names
// win, other strings are spec file paths, and a typo reports the
// library rather than a bare file error.
func TestScenarioResolve(t *testing.T) {
	sc, err := Resolve("phase-swap", 8)
	if err != nil || sc.Name != "phase-swap" {
		t.Fatalf("built-in not resolved: %v", err)
	}
	sc, err = Resolve("../../testdata/scenarios/tidal-colocation.json", 16)
	if err != nil || sc.Name != "tidal-colocation" {
		t.Fatalf("spec file not resolved: %v", err)
	}
	_, err = Resolve("phase-sawp", 16)
	if err == nil {
		t.Fatal("typo resolved")
	}
	if !strings.Contains(err.Error(), "phase-swap") {
		t.Errorf("typo error does not name the library: %v", err)
	}
	if !Known("phase-swap") || Known("phase-sawp") {
		t.Error("Known misclassifies")
	}
}

func TestScenarioRegister(t *testing.T) {
	if err := Register(Spec{}); err == nil {
		t.Error("unnamed spec registered")
	}
	if err := Register(Consolidated(16)); err == nil {
		t.Error("built-in name hijacked")
	}
	s := twoTenant()
	s.Name = "registered-test"
	if err := Register(s); err != nil {
		t.Fatal(err)
	}
	got, ok := ByName("registered-test", 99) // cores ignored for registered specs
	if !ok || len(got.Tenants) != 2 {
		t.Fatal("registered spec not resolvable")
	}
}

// TestScenarioFilesLoad keeps the committed example spec files honest:
// they parse, validate at 16 cores, and the phase-swap reference file
// stays in sync with the built-in it documents.
func TestScenarioFilesLoad(t *testing.T) {
	dir := "../../testdata/scenarios"
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no committed scenario files")
	}
	for _, e := range entries {
		sc, err := Load(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Errorf("%s: %v", e.Name(), err)
			continue
		}
		if err := sc.Validate(16); err != nil {
			t.Errorf("%s: %v", e.Name(), err)
		}
	}
	ref, err := Load(filepath.Join(dir, "phase-swap-16.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, PhaseSwap(16)) {
		t.Error("phase-swap-16.json drifted from the built-in PhaseSwap(16)")
	}
}

func TestScenarioTimelineFor(t *testing.T) {
	s := twoTenant()
	tl, err := s.TimelineFor(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Phases) != 2 || tl.Repeat {
		t.Fatalf("core 2 timeline %+v", tl)
	}
	if tl.Phases[0].Params.Name != "web-search" {
		t.Errorf("core 2 phase 0 runs %s", tl.Phases[0].Params.Name)
	}
	if _, err := s.TimelineFor(7); err == nil {
		t.Error("uncovered core resolved a timeline")
	}
}
