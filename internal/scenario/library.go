package scenario

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The built-in scenario library: the consolidation patterns the ROADMAP's
// "as many scenarios as you can imagine" axis starts from. Each builder
// takes the core count so the same scenario scales from the 2-core test
// configurations to the paper's 16-core CMP (and beyond).

// split halves the core range: [0, mid-1] and [mid, cores-1].
func split(cores int) int {
	mid := cores / 2
	if mid == 0 {
		mid = 1
	}
	return mid
}

// Consolidated is the basic colocation scenario: the front half of the
// cores serve a NoSQL store (data-serving) while the back half stream
// media — two stationary tenants with sharply different density profiles
// contending for the LLC, memory controllers and DRAM banks.
func Consolidated(cores int) Spec {
	if cores < 2 {
		return Spec{Name: "consolidated", Tenants: []Tenant{{
			Name: "data", Cores: CoreRange{0, cores - 1},
			Phases: []Phase{{Preset: "data-serving"}},
		}}}
	}
	mid := split(cores)
	return Spec{Name: "consolidated", Tenants: []Tenant{
		{Name: "data", Cores: CoreRange{0, mid - 1},
			Phases: []Phase{{Preset: "data-serving"}}},
		{Name: "media", Cores: CoreRange{mid, cores - 1},
			Phases: []Phase{{Preset: "media-streaming"}}},
	}}
}

// DiurnalShift models a web tier's daily load cycle on every core:
// trough (half the open tasks, longer compute gaps), shoulder (the
// preset as published), and peak (double load, compressed gaps),
// repeating. Predictors and row-buffer locality must survive the load
// swings rather than train once on a stationary mix.
func DiurnalShift(cores int) Spec {
	return Spec{Name: "diurnal-shift", Tenants: []Tenant{{
		Name: "web", Cores: CoreRange{0, cores - 1}, Repeat: true,
		Phases: []Phase{
			{Preset: "web-serving", Accesses: 60_000, LoadScale: 0.5, WorkScale: 1.5},
			{Preset: "web-serving", Accesses: 60_000},
			{Preset: "web-serving", Accesses: 60_000, LoadScale: 2, WorkScale: 0.6},
		},
	}}}
}

// PhaseSwap colocates data-serving and media-streaming and swaps the
// halves at every phase boundary: the access patterns each predictor
// trained on migrate to the other cores, stressing the code↔data
// correlation tables exactly where the paper's coverage bounds live
// (Figs. 5 and 8).
func PhaseSwap(cores int) Spec {
	if cores < 2 {
		return Spec{Name: "phase-swap", Tenants: []Tenant{{
			Name: "front", Cores: CoreRange{0, cores - 1}, Repeat: true,
			Phases: []Phase{
				{Preset: "data-serving", Accesses: 50_000},
				{Preset: "media-streaming", Accesses: 50_000},
			},
		}}}
	}
	mid := split(cores)
	return Spec{Name: "phase-swap", Tenants: []Tenant{
		{Name: "front", Cores: CoreRange{0, mid - 1}, Repeat: true,
			Phases: []Phase{
				{Preset: "data-serving", Accesses: 50_000},
				{Preset: "media-streaming", Accesses: 50_000},
			}},
		{Name: "back", Cores: CoreRange{mid, cores - 1}, Repeat: true,
			Phases: []Phase{
				{Preset: "media-streaming", Accesses: 50_000},
				{Preset: "data-serving", Accesses: 50_000},
			}},
	}}
}

// BurstyWriter keeps most cores on steady read-dominated web-search
// while one quarter of the CMP alternates (on task-count boundaries)
// between that background and short write-amplified data-serving bursts
// — the log-flush/compaction pattern that stresses the dirty-region
// table and eager-writeback paths.
func BurstyWriter(cores int) Spec {
	if cores < 2 {
		return Spec{Name: "bursty-writer", Tenants: []Tenant{{
			Name: "burst", Cores: CoreRange{0, cores - 1}, Repeat: true,
			Phases: []Phase{
				{Preset: "web-search", Tasks: 400},
				{Preset: "data-serving", Tasks: 120, WriteScale: 3, LoadScale: 1.5},
			},
		}}}
	}
	burst := cores / 4
	if burst == 0 {
		burst = 1
	}
	steadyLast := cores - burst - 1
	return Spec{Name: "bursty-writer", Tenants: []Tenant{
		{Name: "steady", Cores: CoreRange{0, steadyLast},
			Phases: []Phase{{Preset: "web-search"}}},
		{Name: "burst", Cores: CoreRange{steadyLast + 1, cores - 1}, Repeat: true,
			Phases: []Phase{
				{Preset: "web-search", Tasks: 400},
				{Preset: "data-serving", Tasks: 120, WriteScale: 3, LoadScale: 1.5},
			}},
	}}
}

// builtins maps library names to their builders.
var builtins = map[string]func(cores int) Spec{
	"consolidated":  Consolidated,
	"diurnal-shift": DiurnalShift,
	"phase-swap":    PhaseSwap,
	"bursty-writer": BurstyWriter,
}

// Library returns the built-in scenario names, sorted.
func Library() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// registry holds scenarios registered at runtime (bumpd -scenario): the
// daemon loads spec files once and jobs reference them by name.
var (
	regMu    sync.RWMutex
	registry = map[string]Spec{}
)

// Register adds a named scenario to the process-wide registry so job
// specs can reference it by name. Built-in names are reserved;
// re-registering a name replaces the previous spec.
func Register(s Spec) error {
	if s.Name == "" {
		return fmt.Errorf("scenario: cannot register an unnamed spec")
	}
	if _, ok := builtins[s.Name]; ok {
		return fmt.Errorf("scenario: %q is a built-in scenario name", s.Name)
	}
	if err := s.Validate(0); err != nil {
		return err
	}
	regMu.Lock()
	registry[s.Name] = s
	regMu.Unlock()
	return nil
}

// ByName resolves a scenario by name: built-ins are generated for the
// given core count; registered specs are returned as authored (their
// fixed core ranges are validated against the run's core count later,
// by sim.Config.Validate).
func ByName(name string, cores int) (Spec, bool) {
	if b, ok := builtins[name]; ok {
		return b(cores), true
	}
	regMu.RLock()
	s, ok := registry[name]
	regMu.RUnlock()
	return s, ok
}

// Known reports whether name resolves to a built-in or registered
// scenario (as opposed to a spec file path).
func Known(name string) bool {
	if _, ok := builtins[name]; ok {
		return true
	}
	regMu.RLock()
	_, ok := registry[name]
	regMu.RUnlock()
	return ok
}

// Resolve is the CLI-facing resolution rule shared by bumpsim, sweep
// and figures: a known scenario name (built-in or registered) wins,
// anything else is treated as a JSON spec file path. The error for a
// string that is neither names the library so a typoed built-in does
// not surface as a bare file-not-found.
func Resolve(nameOrPath string, cores int) (Spec, error) {
	if sc, ok := ByName(nameOrPath, cores); ok {
		return sc, nil
	}
	sc, err := Load(nameOrPath)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %q is neither a known scenario name (have: %s) nor a readable spec file: %w",
			nameOrPath, strings.Join(Library(), ", "), err)
	}
	return sc, nil
}
