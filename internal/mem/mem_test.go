package mem

import (
	"testing"
	"testing/quick"
)

func TestBlockGeometry(t *testing.T) {
	cases := []struct {
		addr  Addr
		block BlockAddr
		base  Addr
	}{
		{0, 0, 0},
		{63, 0, 0},
		{64, 1, 64},
		{65, 1, 64},
		{1023, 15, 960},
		{1024, 16, 1024},
		{0xdeadbeef, 0xdeadbeef >> 6, 0xdeadbeef &^ 63},
	}
	for _, c := range cases {
		if got := c.addr.Block(); got != c.block {
			t.Errorf("Addr(%#x).Block() = %#x, want %#x", uint64(c.addr), uint64(got), uint64(c.block))
		}
		if got := c.addr.BlockBase(); got != c.base {
			t.Errorf("Addr(%#x).BlockBase() = %#x, want %#x", uint64(c.addr), uint64(got), uint64(c.base))
		}
	}
}

func TestRegionGeometryDefaultShift(t *testing.T) {
	const shift = DefaultRegionShift
	if got := BlocksPerRegion(shift); got != 16 {
		t.Fatalf("BlocksPerRegion(%d) = %d, want 16", shift, got)
	}
	a := Addr(3*DefaultRegionBytes + 5*BlockBytes + 7)
	if got := a.Region(shift); got != 3 {
		t.Errorf("Region = %d, want 3", got)
	}
	b := a.Block()
	if got := b.Region(shift); got != 3 {
		t.Errorf("block Region = %d, want 3", got)
	}
	if got := b.Offset(shift); got != 5 {
		t.Errorf("Offset = %d, want 5", got)
	}
	r := RegionAddr(3)
	if got := r.BaseAddr(shift); got != 3*DefaultRegionBytes {
		t.Errorf("BaseAddr = %d, want %d", got, 3*DefaultRegionBytes)
	}
	if got := r.Block(shift, 5); got != b {
		t.Errorf("Block(5) = %#x, want %#x", uint64(got), uint64(b))
	}
}

func TestRegionGeometryOtherShifts(t *testing.T) {
	for _, shift := range []uint{9, 10, 11} {
		n := BlocksPerRegion(shift)
		if n != 1<<(shift-BlockShift) {
			t.Fatalf("BlocksPerRegion(%d) = %d", shift, n)
		}
		// Every block of region 7 must map back to region 7 with the
		// right offset.
		r := RegionAddr(7)
		for i := uint(0); i < n; i++ {
			b := r.Block(shift, i)
			if b.Region(shift) != r {
				t.Errorf("shift %d: block %d maps to region %d", shift, i, b.Region(shift))
			}
			if b.Offset(shift) != i {
				t.Errorf("shift %d: offset = %d, want %d", shift, b.Offset(shift), i)
			}
		}
	}
}

// Property: decomposing an address into (region, offset, byte-in-block) and
// recomposing is the identity, for all region shifts we use.
func TestAddressRoundTripProperty(t *testing.T) {
	for _, shift := range []uint{9, 10, 11} {
		shift := shift
		f := func(raw uint64) bool {
			a := Addr(raw % (1 << 40)) // keep within simulated physical space
			r := a.Region(shift)
			b := a.Block()
			off := b.Offset(shift)
			back := r.Block(shift, off).Addr() + (a - a.BlockBase())
			return back == a
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("shift %d: %v", shift, err)
		}
	}
}

func TestStringers(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" {
		t.Error("AccessType strings wrong")
	}
	if AccessType(9).String() == "" {
		t.Error("unknown AccessType must still render")
	}
	if MemRead.String() != "read" || MemWrite.String() != "write" {
		t.Error("MemOp strings wrong")
	}
	if ReadDemandLoad.String() != "load-read" || ReadDemandStore.String() != "store-read" || ReadPrefetch.String() != "prefetch-read" {
		t.Error("ReadKind strings wrong")
	}
	r := Request{Op: MemRead, Addr: 0x1000, PC: 0x40, Core: 3}
	if r.String() == "" {
		t.Error("Request.String empty")
	}
}
