package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestRatioAndPct(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("Ratio with zero denominator must be 0")
	}
	if !almostEq(Ratio(1, 4), 0.25) {
		t.Error("Ratio(1,4)")
	}
	if !almostEq(Pct(1, 4), 25) {
		t.Error("Pct(1,4)")
	}
}

func TestImprovementAndSpeedup(t *testing.T) {
	if !almostEq(Improvement(100, 77), 0.23) {
		t.Errorf("Improvement = %v", Improvement(100, 77))
	}
	if Improvement(0, 5) != 0 {
		t.Error("Improvement base 0")
	}
	if !almostEq(Speedup(100, 111), 0.11) {
		t.Errorf("Speedup = %v", Speedup(100, 111))
	}
	if Speedup(0, 5) != 0 {
		t.Error("Speedup base 0")
	}
}

func TestMeans(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil)")
	}
	if !almostEq(Mean([]float64{1, 2, 3}), 2) {
		t.Error("Mean")
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil)")
	}
	if !almostEq(GeoMean([]float64{2, 8}), 4) {
		t.Errorf("GeoMean = %v", GeoMean([]float64{2, 8}))
	}
	// Non-positive values are skipped, not poison.
	if !almostEq(GeoMean([]float64{0, 4}), 4) {
		t.Error("GeoMean skips zeros")
	}
}

func TestDist(t *testing.T) {
	var d Dist
	if d.Mean() != 0 || d.Percentile(50) != 0 {
		t.Error("empty Dist must report zeros")
	}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		d.Add(v)
	}
	if d.N() != 5 || d.Min() != 1 || d.Max() != 5 {
		t.Errorf("N/Min/Max = %d/%v/%v", d.N(), d.Min(), d.Max())
	}
	if !almostEq(d.Mean(), 3) {
		t.Errorf("Mean = %v", d.Mean())
	}
	if got := d.Percentile(50); got != 3 {
		t.Errorf("P50 = %v", got)
	}
	if got := d.Percentile(100); got != 5 {
		t.Errorf("P100 = %v", got)
	}
	if got := d.Percentile(0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
}

// Property: for any sample set, min <= mean <= max and P0 <= P50 <= P100.
func TestDistInvariantsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var d Dist
		for _, r := range raw {
			d.Add(float64(r))
		}
		if d.Mean() < d.Min() || d.Mean() > d.Max() {
			return false
		}
		p0, p50, p100 := d.Percentile(0), d.Percentile(50), d.Percentile(100)
		return p0 <= p50 && p50 <= p100 && p0 == d.Min() && p100 == d.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0.25, 0.5)
	for _, v := range []float64{0.1, 0.3, 0.25, 0.7, 0.5} {
		h.Add(v)
	}
	// Buckets: [<0.25), [0.25,0.5), [>=0.5]
	if h.Counts[0] != 1 || h.Counts[1] != 2 || h.Counts[2] != 2 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Total() != 5 {
		t.Errorf("total = %d", h.Total())
	}
	if !almostEq(h.Fraction(1), 0.4) {
		t.Errorf("fraction = %v", h.Fraction(1))
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-ascending bounds")
		}
	}()
	NewHistogram(1, 1)
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Figure X", "workload", "value")
	tb.AddRow("web-search", 0.12345)
	tb.AddRow("data-serving", 42.0)
	s := tb.String()
	for _, want := range []string{"Figure X", "workload", "web-search", "0.123", "42"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("got %d lines, want 5:\n%s", len(lines), s)
	}
}

func TestFormatFloat(t *testing.T) {
	if FormatFloat(3) != "3" {
		t.Error("integral floats render without decimals")
	}
	if FormatFloat(3.14159) != "3.142" {
		t.Errorf("got %s", FormatFloat(3.14159))
	}
}

func TestMeanCI95(t *testing.T) {
	if m, h := MeanCI95(nil); m != 0 || h != 0 {
		t.Error("empty input")
	}
	if m, h := MeanCI95([]float64{5}); m != 5 || h != 0 {
		t.Error("single sample has zero CI")
	}
	// Identical samples: zero half-width.
	if _, h := MeanCI95([]float64{2, 2, 2, 2}); h != 0 {
		t.Errorf("identical samples: CI = %v", h)
	}
	// Known case: {1,2,3}, mean 2, sd 1, t(2)=4.303 -> half = 4.303/sqrt(3).
	m, h := MeanCI95([]float64{1, 2, 3})
	if !almostEq(m, 2) {
		t.Errorf("mean = %v", m)
	}
	want := 4.303 / math.Sqrt(3)
	if math.Abs(h-want) > 1e-3 {
		t.Errorf("half = %v, want %v", h, want)
	}
	// Large n falls back to z=1.96.
	big := make([]float64, 30)
	for i := range big {
		big[i] = float64(i % 2)
	}
	_, h = MeanCI95(big)
	if h <= 0 {
		t.Error("large-sample CI must be positive")
	}
}
