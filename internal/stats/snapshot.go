package stats

import "bump/internal/snapshot"

// SnapshotTo serializes the distribution's samples in insertion order;
// min/max/sum are recomputed on restore (same insertion order, so the
// floating-point sum is bit-identical).
func (d *Dist) SnapshotTo(w *snapshot.Writer) {
	w.Section("dist")
	w.U32(uint32(len(d.vals)))
	for _, v := range d.vals {
		w.F64(v)
	}
}

// RestoreFrom replaces the distribution with a snapshot's samples.
func (d *Dist) RestoreFrom(r *snapshot.Reader) error {
	r.Section("dist")
	n := r.Len(8)
	if r.Err() != nil {
		return r.Err()
	}
	*d = Dist{vals: make([]float64, 0, n)}
	for i := 0; i < n; i++ {
		d.Add(r.F64())
	}
	return r.Err()
}
