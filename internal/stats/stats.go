// Package stats provides the small statistical toolkit used across the
// simulator: counters, ratios, weighted means, online distributions, and
// fixed-width text tables for the figure/table regeneration harness.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Ratio returns num/den, or 0 when den == 0. The simulator reports many
// ratios over event counts that can legitimately be zero in short runs.
func Ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Pct returns 100*num/den, or 0 when den == 0.
func Pct(num, den uint64) float64 { return 100 * Ratio(num, den) }

// Improvement returns the relative improvement of value over base as a
// fraction: (base-value)/base. Positive means "value is lower/better".
func Improvement(base, value float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - value) / base
}

// Speedup returns value/base - 1 as a fraction. Positive means faster.
func Speedup(base, value float64) float64 {
	if base == 0 {
		return 0
	}
	return value/base - 1
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs, ignoring non-positive values.
func GeoMean(xs []float64) float64 {
	var s float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			s += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// MeanCI95 returns the sample mean and the half-width of its 95%
// confidence interval (Student's t for small samples). The paper reports
// performance "at a 95% confidence level and an average error below 2%"
// (SMARTS methodology); multi-seed runs reproduce that discipline.
func MeanCI95(xs []float64) (mean, half float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	mean = Mean(xs)
	if n == 1 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	// Two-sided 95% t quantiles for n-1 degrees of freedom.
	t := []float64{0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228}
	q := 1.96
	if n-1 < len(t) {
		q = t[n-1]
	}
	return mean, q * sd / math.Sqrt(float64(n))
}

// Dist is an online distribution accumulator (count/mean/min/max and an
// exact reservoir of values for percentile queries; the simulator produces
// at most a few hundred thousand samples per Dist, which fits in memory).
type Dist struct {
	vals []float64
	min  float64
	max  float64
	sum  float64
}

// Add records one sample.
func (d *Dist) Add(x float64) {
	if len(d.vals) == 0 {
		d.min, d.max = x, x
	} else {
		if x < d.min {
			d.min = x
		}
		if x > d.max {
			d.max = x
		}
	}
	d.vals = append(d.vals, x)
	d.sum += x
}

// N returns the number of samples.
func (d *Dist) N() int { return len(d.vals) }

// Mean returns the sample mean (0 if empty).
func (d *Dist) Mean() float64 {
	if len(d.vals) == 0 {
		return 0
	}
	return d.sum / float64(len(d.vals))
}

// Min returns the smallest sample (0 if empty).
func (d *Dist) Min() float64 { return d.min }

// Max returns the largest sample (0 if empty).
func (d *Dist) Max() float64 { return d.max }

// Percentile returns the p-th percentile (0..100) by nearest-rank.
func (d *Dist) Percentile(p float64) float64 {
	if len(d.vals) == 0 {
		return 0
	}
	s := append([]float64(nil), d.vals...)
	sort.Float64s(s)
	rank := int(math.Ceil(p/100*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

// Histogram counts samples into fixed buckets [bounds[i-1], bounds[i]).
type Histogram struct {
	Bounds []float64
	Counts []uint64
	total  uint64
}

// NewHistogram builds a histogram with the given ascending upper bounds.
// A final implicit bucket catches values >= the last bound.
func NewHistogram(bounds ...float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{Bounds: bounds, Counts: make([]uint64, len(bounds)+1)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	i := sort.SearchFloat64s(h.Bounds, x)
	// SearchFloat64s returns the first index with bounds[i] >= x; a value
	// exactly equal to a bound belongs in the next bucket.
	if i < len(h.Bounds) && h.Bounds[i] == x {
		i++
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() uint64 { return h.total }

// Fraction returns the fraction of samples in bucket i.
func (h *Histogram) Fraction(i int) float64 { return Ratio(h.Counts[i], h.total) }

// Table renders fixed-width text tables; the figure harness uses it so
// every regenerated figure prints the same way in tests, benches and cmds.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// FormatFloat renders floats compactly: integers without decimals,
// otherwise 3 significant decimals.
func FormatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3f", v)
}

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.headers))
	for i, h := range t.headers {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
