package event

import (
	"container/heap"
	"math/rand"
	"testing"
)

// ---- reference scheduler ----------------------------------------------
//
// refEngine is a straight container/heap implementation of the engine's
// documented contract — time order, FIFO within a cycle by scheduling
// order, past times clamped to now — used as the oracle for the
// differential tests below.

type refItem struct {
	at  uint64
	seq uint64
	fn  func()
}

type refQueue []refItem

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q refQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *refQueue) Push(x interface{}) { *q = append(*q, x.(refItem)) }
func (q *refQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

type refEngine struct {
	now uint64
	seq uint64
	q   refQueue
}

func (e *refEngine) At(t uint64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.q, refItem{at: t, seq: e.seq, fn: fn})
}

func (e *refEngine) Drain() {
	for len(e.q) > 0 {
		it := heap.Pop(&e.q).(refItem)
		e.now = it.at
		it.fn()
	}
}

// ---- wheel/overflow boundary tests ------------------------------------

// TestWheelOverflowFIFO pins same-cycle FIFO order across the
// wheel/overflow boundary: an event scheduled beyond the horizon (into
// the overflow heap) must still run before a same-cycle event scheduled
// later but directly into the wheel.
func TestWheelOverflowFIFO(t *testing.T) {
	e := New()
	far := uint64(2 * wheelSize)
	var got []int
	e.At(far, func() { got = append(got, 1) }) // overflow at now=0
	// From within the horizon, schedule a second event at the same
	// far-future cycle — this one lands in the wheel.
	e.At(far-10, func() { e.At(far, func() { got = append(got, 2) }) })
	e.Drain()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("dispatch order = %v, want [1 2]", got)
	}
	if e.Now() != far {
		t.Errorf("Now = %d, want %d", e.Now(), far)
	}
}

// TestWheelWrapAround exercises bucket reuse across several full laps of
// the ring.
func TestWheelWrapAround(t *testing.T) {
	e := New()
	const laps = 5
	var fired []uint64
	// All these cycles map to the same bucket (congruent mod wheelSize).
	for lap := uint64(1); lap <= laps; lap++ {
		at := lap * wheelSize
		e.At(at, func() { fired = append(fired, e.Now()) })
	}
	// Neighbouring buckets on different laps, scheduled out of order.
	e.At(3*wheelSize+1, func() { fired = append(fired, e.Now()) })
	e.At(wheelSize-1, func() { fired = append(fired, e.Now()) })
	e.Drain()
	want := []uint64{wheelSize - 1, wheelSize, 2 * wheelSize, 3 * wheelSize,
		3*wheelSize + 1, 4 * wheelSize, 5 * wheelSize}
	if len(fired) != len(want) {
		t.Fatalf("fired %d events, want %d", len(fired), len(want))
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Errorf("fired[%d] = %d, want %d", i, fired[i], want[i])
		}
	}
}

// TestRunBoundaryAcrossHorizon pins Run(until) semantics when the next
// events sit beyond the wheel horizon: events at exactly `until` run, the
// clock lands exactly on `until`, and later events stay pending.
func TestRunBoundaryAcrossHorizon(t *testing.T) {
	e := New()
	fired := 0
	e.At(wheelSize+500, func() { fired++ })
	e.At(wheelSize+500, func() { fired++ }) // same cycle, FIFO
	e.At(3*wheelSize, func() { fired++ })
	if n := e.Run(wheelSize + 500); n != 2 || fired != 2 {
		t.Errorf("Run dispatched %d (fired %d), want 2", n, fired)
	}
	if e.Now() != wheelSize+500 {
		t.Errorf("Now = %d, want %d", e.Now(), wheelSize+500)
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	// The clock jump brought the far event inside the horizon; it must
	// still fire at its own time, not before.
	if n := e.Run(3*wheelSize - 1); n != 0 {
		t.Errorf("early Run dispatched %d, want 0", n)
	}
	if n := e.Run(3 * wheelSize); n != 1 || fired != 3 {
		t.Errorf("final Run dispatched %d (fired %d), want 1", n, fired)
	}
}

// TestPastSchedulingFromOverflowDispatch schedules into the past from a
// handler that was itself dispatched out of the overflow heap.
func TestPastSchedulingFromOverflowDispatch(t *testing.T) {
	e := New()
	var at uint64
	e.At(2*wheelSize, func() {
		e.At(10, func() { at = e.Now() }) // in the past: clamps to now
	})
	e.Drain()
	if at != 2*wheelSize {
		t.Errorf("clamped event fired at %d, want %d", at, uint64(2*wheelSize))
	}
}

// TestPostPayload checks the closure-free path end to end: receiver and
// both payload words arrive intact, in FIFO order with At events.
func TestPostPayload(t *testing.T) {
	e := New()
	type rec struct {
		a0, a1 uint64
	}
	var recv []rec
	h := func(obj any, a0, a1 uint64) {
		*(obj.(*[]rec)) = append(*(obj.(*[]rec)), rec{a0, a1})
	}
	e.Post(5, h, &recv, 1, 100)
	e.At(5, func() { recv = append(recv, rec{2, 200}) })
	e.PostAfter(5, h, &recv, 3, 300)
	e.Drain()
	want := []rec{{1, 100}, {2, 200}, {3, 300}}
	if len(recv) != 3 {
		t.Fatalf("received %d events, want 3", len(recv))
	}
	for i := range want {
		if recv[i] != want[i] {
			t.Errorf("recv[%d] = %+v, want %+v", i, recv[i], want[i])
		}
	}
}

// ---- randomized differential test -------------------------------------

// scenario drives an engine-shaped scheduler through a deterministic but
// random-looking cascade: every dispatched event appends its id and may
// schedule children at deltas spanning the wheel, the horizon boundary
// and the deep overflow range. The trace (id, time) must be identical
// between the timing-wheel engine and the reference heap.
type scheduler interface {
	At(t uint64, fn func())
}

func runScenario(seed int64, sched scheduler, now func() uint64, drain func()) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	var trace []uint64
	nextID := uint64(0)
	var spawn func(depth int) func()
	spawn = func(depth int) func() {
		id := nextID
		nextID++
		// Pre-draw this event's behaviour so it depends only on the
		// scheduling sequence, not on dispatch interleaving.
		kids := rng.Intn(3)
		deltas := make([]uint64, kids)
		for i := range deltas {
			switch rng.Intn(4) {
			case 0: // same cycle / near past (clamps)
				deltas[i] = 0
			case 1: // inside the wheel
				deltas[i] = uint64(rng.Intn(wheelSize - 1))
			case 2: // straddling the horizon
				deltas[i] = wheelSize - 2 + uint64(rng.Intn(5))
			default: // deep overflow
				deltas[i] = wheelSize + uint64(rng.Intn(3*wheelSize))
			}
		}
		return func() {
			trace = append(trace, id, now())
			if depth <= 0 {
				return
			}
			for _, d := range deltas {
				sched.At(now()+d, spawn(depth-1))
			}
		}
	}
	for i := 0; i < 40; i++ {
		sched.At(uint64(rng.Intn(4*wheelSize)), spawn(3))
	}
	drain()
	return trace
}

func TestDifferentialAgainstReferenceHeap(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		e := New()
		gotTrace := runScenario(seed, e, e.Now, func() { e.Drain() })

		r := &refEngine{}
		wantTrace := runScenario(seed, r, func() uint64 { return r.now }, r.Drain)

		if len(gotTrace) != len(wantTrace) {
			t.Fatalf("seed %d: trace lengths differ: wheel %d vs heap %d",
				seed, len(gotTrace), len(wantTrace))
		}
		for i := range gotTrace {
			if gotTrace[i] != wantTrace[i] {
				t.Fatalf("seed %d: traces diverge at %d: wheel %d vs heap %d",
					seed, i, gotTrace[i], wantTrace[i])
			}
		}
		if e.Pending() != 0 {
			t.Errorf("seed %d: %d events left pending", seed, e.Pending())
		}
	}
}
