package event

import (
	"bytes"
	"math/rand"
	"testing"

	"bump/internal/snapshot"
)

// test handlers: the receiver is a *recorder, payloads identify events.
type recorder struct {
	fired []uint64
	eng   *Engine
}

var recordH = RegisterHandler("event.test.record", func(obj any, a0, _ uint64) {
	obj.(*recorder).fired = append(obj.(*recorder).fired, a0)
})

// chainH reschedules itself a few times to exercise post-restore
// scheduling.
var chainH Handler

func init() {
	chainH = RegisterHandler("event.test.chain", func(obj any, a0, a1 uint64) {
		rec := obj.(*recorder)
		rec.fired = append(rec.fired, a0)
		if a1 > 0 {
			rec.eng.PostAfter(3, chainH, rec, a0+100, a1-1)
		}
	})
}

func snapEngine(t *testing.T, e *Engine, enc func(any) (uint32, error)) []byte {
	t.Helper()
	w := snapshot.NewWriter()
	if err := e.Snapshot(w, enc); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := w.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func restoreEngine(t *testing.T, data []byte, dec func(uint32) (any, error)) *Engine {
	t.Helper()
	r, err := snapshot.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	e := New()
	if err := e.Restore(r, dec); err != nil {
		t.Fatal(err)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestEngineSnapshotRoundTrip runs a randomized schedule split at an
// arbitrary point: the restored engine must dispatch the exact same
// remaining sequence as the uninterrupted one.
func TestEngineSnapshotRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))

		build := func(rec *recorder) *Engine {
			e := New()
			rec.eng = e
			for i := 0; i < 500; i++ {
				at := uint64(rng.Intn(3 * wheelSize))
				if rng.Intn(4) == 0 {
					e.Post(at, chainH, rec, uint64(i), uint64(rng.Intn(3)))
				} else {
					e.Post(at, recordH, rec, uint64(i), 0)
				}
			}
			return e
		}

		// Reference: run to completion in one go.
		rngRef := rand.New(rand.NewSource(seed))
		_ = rngRef
		recRef := &recorder{}
		rngSave := *rng
		eRef := build(recRef)
		eRef.Drain()

		// Split run: same schedule, snapshot mid-flight, restore, drain.
		*rng = rngSave // not needed (build consumed rng); rebuild fresh
		rng = rand.New(rand.NewSource(seed))
		recA := &recorder{}
		eA := build(recA)
		split := uint64(rng.Intn(2 * wheelSize))
		eA.Run(split)

		recB := &recorder{}
		enc := func(obj any) (uint32, error) { return 0, nil }
		dec := func(ref uint32) (any, error) { return recB, nil }
		data := snapEngine(t, eA, enc)
		eB := restoreEngine(t, data, dec)
		recB.eng = eB

		if eB.Now() != eA.Now() || eB.Pending() != eA.Pending() || eB.Executed != eA.Executed {
			t.Fatalf("seed %d: restored clock/pending/executed mismatch", seed)
		}
		eB.Drain()

		got := append(append([]uint64(nil), recA.fired...), recB.fired...)
		if len(got) != len(recRef.fired) {
			t.Fatalf("seed %d: %d events fired, want %d", seed, len(got), len(recRef.fired))
		}
		for i := range got {
			if got[i] != recRef.fired[i] {
				t.Fatalf("seed %d: event %d = %d, want %d", seed, i, got[i], recRef.fired[i])
			}
		}
		if eB.Executed != eRef.Executed {
			t.Fatalf("seed %d: executed %d, want %d", seed, eB.Executed, eRef.Executed)
		}
	}
}

// TestEngineSnapshotCanonical: a restored engine re-serializes to the
// exact bytes it was restored from (slab/heap layout differences never
// leak into the encoding).
func TestEngineSnapshotCanonical(t *testing.T) {
	rec := &recorder{}
	e := New()
	rec.eng = e
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		e.Post(uint64(rng.Intn(4*wheelSize)), recordH, rec, uint64(i), 0)
	}
	e.Run(wheelSize / 2)

	enc := func(obj any) (uint32, error) { return 0, nil }
	dec := func(ref uint32) (any, error) { return rec, nil }
	data := snapEngine(t, e, enc)
	e2 := restoreEngine(t, data, dec)
	data2 := snapEngine(t, e2, enc)
	if !bytes.Equal(data, data2) {
		t.Fatal("restored engine serializes to different bytes")
	}
}

// TestSnapshotRejectsClosures: At/After events are unregistered closures
// and must fail a snapshot loudly.
func TestSnapshotRejectsClosures(t *testing.T) {
	e := New()
	e.At(10, func() {})
	w := snapshot.NewWriter()
	err := e.Snapshot(w, func(any) (uint32, error) { return 0, nil })
	if err == nil {
		t.Fatal("closure event accepted by Snapshot")
	}
}

func TestRegisterHandlerDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	RegisterHandler("event.test.dup", func(any, uint64, uint64) {})
	RegisterHandler("event.test.dup", func(any, uint64, uint64) {})
}

func TestRestoreRejectsUnknownHandler(t *testing.T) {
	rec := &recorder{}
	e := New()
	e.Post(5, recordH, rec, 1, 0)
	data := snapEngine(t, e, func(any) (uint32, error) { return 0, nil })

	// Corrupt the handler name by rebuilding a snapshot that names a
	// never-registered handler. Simpler: restoring with a decoder that
	// errors must propagate.
	r, err := snapshot.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	e2 := New()
	wantErr := restoreErr{}
	if err := e2.Restore(r, func(uint32) (any, error) { return nil, wantErr }); err == nil {
		t.Fatal("object-decode error not propagated")
	}
}

type restoreErr struct{}

func (restoreErr) Error() string { return "no such object" }
