package event

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"
)

// This file implements the deterministic parallel execution mode of the
// engine: conservative-lookahead windows peeled off the single global
// timing wheel, executed concurrently by per-shard mini-schedulers, then
// committed back through a single-threaded sequencer replay that
// reproduces the sequential engine's global sequence numbers exactly.
//
// The invariants that make a parallel run byte-identical to the
// sequential one:
//
//   - A window [T0, Tend) never exceeds the lookahead L, and components
//     guarantee every cross-shard event is posted at least L cycles
//     ahead. Within a window each shard therefore only dispatches its
//     own peeled events plus its own same-shard posts — no cross-shard
//     communication happens inside a window.
//   - Peeled events keep their real sequence numbers; events posted
//     during a window get provisional keys that are resolved to real
//     sequence numbers during replay. Any post's final sequence number
//     exceeds every peeled event's, and within one shard posting order
//     equals sequential posting order, so ordering peeled-before-
//     provisional and provisional-by-post-order inside a shard is exact.
//   - The replay walks all shards' dispatch logs in (cycle, sequence)
//     order — the sequential dispatch order — assigning e.seq++ to each
//     logged post exactly where the sequential run would have, and
//     applying logged side-effect operations (Apply) in that order. The
//     engine's clock, sequence counter, Executed count and pending-event
//     multiset after the barrier are those of the sequential run.
type Sink interface {
	// Now returns the current cycle as seen by the posting component.
	Now() uint64
	// Post schedules h(obj, a0, a1) at absolute cycle t (clamped to Now).
	Post(t uint64, h Handler, obj any, a0, a1 uint64)
	// PostAfter schedules h(obj, a0, a1) d cycles from Now.
	PostAfter(d uint64, h Handler, obj any, a0, a1 uint64)
}

var (
	_ Sink = (*Engine)(nil)
	_ Sink = (*Port)(nil)
	_ Sink = (*ShardRun)(nil)
)

// Port is a component's stable posting endpoint. Outside parallel
// windows it forwards to the engine; during a parallel window the
// runner binds it to the executing shard. Components hold Ports for the
// lifetime of the system, so the same component code runs unmodified in
// sequential and parallel mode.
type Port struct {
	eng *Engine
	sr  *ShardRun
	// Tag is free for the owning simulator; the sharded runner sets it
	// to the port's shard index.
	Tag int
}

// NewPort returns a port bound to e, in sequential (pass-through) mode.
func NewPort(e *Engine) *Port { return &Port{eng: e} }

// Shard returns the shard currently executing through this port, or nil
// outside parallel windows. Components branch on it for side effects
// that must be sequenced at the barrier (slab allocation, stat samples).
func (p *Port) Shard() *ShardRun { return p.sr }

// Now implements Sink.
func (p *Port) Now() uint64 {
	if p.sr != nil {
		return p.sr.now
	}
	return p.eng.now
}

// Post implements Sink.
func (p *Port) Post(t uint64, h Handler, obj any, a0, a1 uint64) {
	if p.sr != nil {
		p.sr.Post(t, h, obj, a0, a1)
		return
	}
	p.eng.Post(t, h, obj, a0, a1)
}

// PostAfter implements Sink.
func (p *Port) PostAfter(d uint64, h Handler, obj any, a0, a1 uint64) {
	p.Post(p.Now()+d, h, obj, a0, a1)
}

// Peeled is one event lifted out of the global engine for a window.
type Peeled struct {
	At, Seq uint64
	A0, A1  uint64
	H       Handler
	Obj     any
}

// Record kinds in a shard's dispatch log.
const (
	recDispatch = iota
	recPost
	recOp
)

// provKey marks a dispatch-log key as a provisional post id rather than
// a real global sequence number. Provisional ids are window-local and
// resolved during replay.
const provKey = uint64(1) << 63

type rec struct {
	kind uint8
	code uint8  // recOp: caller-defined operation code
	at   uint64 // recDispatch: dispatch cycle
	a    uint64 // recDispatch: key; recPost: post index; recOp: argument
}

type postRec struct {
	at     uint64
	a0, a1 uint64
	h      Handler
	obj    any
	local  bool // dispatched inside the window (no engine insert at replay)
}

// ShardRun is one shard's execution context for a single window: its
// peeled events, a local schedule of same-shard posts landing inside the
// window, and the dispatch log the replay consumes. It implements Sink
// for the duration of the window.
type ShardRun struct {
	runner *Sharded
	shard  int

	now  uint64
	tend uint64

	events []Peeled
	ei     int

	heap     []int32 // post indices, ordered by (at, index)
	posts    []postRec
	recs     []rec
	provSeq  []uint64
	ri       int // replay cursor into recs
	executed uint64
}

// Now implements Sink.
func (sr *ShardRun) Now() uint64 { return sr.now }

// Post implements Sink. Posts landing inside the current window are
// dispatched locally (they must target this shard — anything else is a
// lookahead violation); later posts are buffered and inserted into the
// global engine at the barrier with their replay-assigned sequence.
func (sr *ShardRun) Post(t uint64, h Handler, obj any, a0, a1 uint64) {
	if t < sr.now {
		t = sr.now
	}
	id := len(sr.posts)
	sr.posts = append(sr.posts, postRec{at: t, a0: a0, a1: a1, h: h, obj: obj})
	sr.recs = append(sr.recs, rec{kind: recPost, a: uint64(id)})
	if t < sr.tend {
		if lc := sr.runner.cfg.Local; lc != nil && !lc(sr.shard, obj) {
			panic(fmt.Sprintf("event: cross-shard post inside lookahead window (shard %d, t=%d < tend=%d)", sr.shard, t, sr.tend))
		}
		sr.posts[id].local = true
		sr.heapPush(int32(id))
	}
}

// PostAfter implements Sink.
func (sr *ShardRun) PostAfter(d uint64, h Handler, obj any, a0, a1 uint64) {
	sr.Post(sr.now+d, h, obj, a0, a1)
}

// Op logs a caller-defined side-effect operation (slab allocation, slot
// free, stat sample...). The runner's Apply callback executes it at the
// barrier, in exact global dispatch order.
func (sr *ShardRun) Op(code uint8, arg uint64) {
	sr.recs = append(sr.recs, rec{kind: recOp, code: code, a: arg})
}

func (sr *ShardRun) reset(now, tend uint64) {
	sr.now, sr.tend = now, tend
	sr.events = sr.events[:0]
	sr.ei = 0
	sr.heap = sr.heap[:0]
	sr.posts = sr.posts[:0]
	sr.recs = sr.recs[:0]
	sr.ri = 0
	sr.executed = 0
}

// Local-schedule heap over post indices, ordered by (at, index). Within
// one shard, post index order is posting order is sequential seq order,
// so this is the sequential tie-break.
func (sr *ShardRun) heapLess(i, j int32) bool {
	a, b := sr.posts[i].at, sr.posts[j].at
	if a != b {
		return a < b
	}
	return i < j
}

func (sr *ShardRun) heapPush(idx int32) {
	sr.heap = append(sr.heap, idx)
	i := len(sr.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !sr.heapLess(sr.heap[i], sr.heap[parent]) {
			break
		}
		sr.heap[i], sr.heap[parent] = sr.heap[parent], sr.heap[i]
		i = parent
	}
}

func (sr *ShardRun) heapPop() int32 {
	h := sr.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	sr.heap = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= last {
			break
		}
		c := l
		if r < last && sr.heapLess(sr.heap[r], sr.heap[l]) {
			c = r
		}
		if !sr.heapLess(sr.heap[c], sr.heap[i]) {
			break
		}
		sr.heap[i], sr.heap[c] = sr.heap[c], sr.heap[i]
		i = c
	}
	return top
}

// run executes the shard's slice of the window: peeled events merged
// with locally scheduled posts, in (cycle, sequence) order. A peeled
// event always precedes a same-cycle local post (its real seq is smaller
// than any new post's), so local posts run only at strictly earlier
// cycles or after the peeled events of their cycle.
func (sr *ShardRun) run() {
	for {
		hasEv := sr.ei < len(sr.events)
		hasLoc := len(sr.heap) > 0
		if !hasEv && !hasLoc {
			return
		}
		if hasLoc && (!hasEv || sr.posts[sr.heap[0]].at < sr.events[sr.ei].At) {
			id := sr.heapPop()
			p := sr.posts[id] // copy: the slice may grow during the handler
			sr.now = p.at
			sr.recs = append(sr.recs, rec{kind: recDispatch, at: p.at, a: provKey | uint64(id)})
			sr.executed++
			p.h(p.obj, p.a0, p.a1)
		} else {
			ev := sr.events[sr.ei]
			sr.ei++
			sr.now = ev.At
			sr.recs = append(sr.recs, rec{kind: recDispatch, at: ev.At, a: ev.Seq})
			sr.executed++
			ev.H(ev.Obj, ev.A0, ev.A1)
		}
	}
}

// ShardedConfig wires a Sharded runner to its owning simulator.
type ShardedConfig struct {
	// Shards is the number of concurrent execution shards. Shard 0 runs
	// on the coordinating goroutine; shards 1..Shards-1 each get a
	// worker goroutine.
	Shards int
	// Lookahead is the conservative window length L: components promise
	// every cross-shard event is posted >= L cycles ahead.
	Lookahead uint64
	// Floor is the minimum number of already-pending events in a window
	// for parallel execution; sparser windows run inline on the global
	// engine (sequential dispatch is trivially byte-identical and far
	// cheaper than a barrier at low density).
	Floor int
	// SpreadFloor additionally requires that many pending events OUTSIDE
	// the window's most-loaded shard before fanning out: a window whose
	// events pile onto one shard gains nothing from a barrier. 0 disables
	// the gate. Like Floor it only picks inline vs parallel execution of
	// a window — either path leaves byte-identical engine state.
	SpreadFloor int
	// Route maps a pending event to its shard (by receiver and payload).
	Route func(obj any, a0 uint64) int
	// Local, if non-nil, reports whether obj belongs to the shard; it is
	// asserted on every intra-window post as a lookahead-violation
	// tripwire.
	Local func(shard int, obj any) bool
	// Apply executes one logged Op at the barrier, in exact global
	// dispatch order. Required if any handler logs Ops.
	Apply func(shard int, code uint8, arg uint64)
	// Patch, if non-nil, translates the payload of each buffered
	// (post-window) post at replay time — e.g. provisional resource
	// tokens to the real ones allocated by Apply.
	Patch func(obj any, a0, a1 uint64) (uint64, uint64)
	// BeforeWindow, if non-nil, runs on the coordinator before each
	// parallel window (the owner resets its per-window record buffers).
	BeforeWindow func()
	// Ports are the component endpoints to bind to shards during
	// parallel windows; Binding[i] names the shard Ports[i] belongs to.
	// The runner sets each port's Tag to its binding.
	Ports   []*Port
	Binding []int
}

// ShardedStats summarises a runner's work.
type ShardedStats struct {
	Shards          int
	Windows         uint64 // windows considered (inline + parallel)
	ParallelWindows uint64
	Barriers        uint64
	InlineEvents    uint64
	ParallelEvents  uint64
	BarrierStallNs  int64 // coordinator time spent waiting on workers
	RunNs           int64 // total wall time inside Run
}

const stopEpoch = ^uint64(0)

type pworker struct {
	epoch  atomic.Uint64
	parked atomic.Uint32
	wake   chan struct{}
	sr     *ShardRun
	done   *atomic.Int64
}

func (w *pworker) release(e uint64) {
	w.epoch.Store(e)
	if w.parked.Load() != 0 {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
}

// await spins briefly for the next epoch, then parks on the wake
// channel. Spurious wakeups (stale tokens) just re-check the epoch.
func (w *pworker) await(last uint64) uint64 {
	for spins := 0; ; spins++ {
		if t := w.epoch.Load(); t != last {
			return t
		}
		if spins < 4096 {
			if spins&63 == 63 {
				runtime.Gosched()
			}
			continue
		}
		w.parked.Store(1)
		if w.epoch.Load() == last {
			<-w.wake
		}
		w.parked.Store(0)
	}
}

func (w *pworker) loop() {
	last := uint64(0)
	for {
		t := w.await(last)
		if t == stopEpoch {
			return
		}
		w.sr.run()
		last = t
		w.done.Add(-1)
	}
}

// Sharded executes an engine's event stream through deterministic
// parallel windows. Construct with NewSharded, drive with Run (in place
// of Engine.Run), and Stop when done to release the worker goroutines.
type Sharded struct {
	eng     *Engine
	cfg     ShardedConfig
	shards  []*ShardRun
	workers []*pworker
	epoch   uint64
	done    atomic.Int64
	peelBuf []Peeled
	spread  []int // per-shard pending counts for the SpreadFloor gate
	stats   ShardedStats
	stopped bool
}

// NewSharded builds a runner and starts its worker goroutines.
func NewSharded(e *Engine, cfg ShardedConfig) *Sharded {
	if cfg.Shards < 2 {
		panic("event: sharded runner needs at least 2 shards")
	}
	if cfg.Lookahead == 0 {
		panic("event: sharded runner needs a positive lookahead")
	}
	if cfg.Lookahead >= wheelSize {
		panic("event: lookahead exceeds the wheel horizon")
	}
	if len(cfg.Ports) != len(cfg.Binding) {
		panic("event: ports/binding length mismatch")
	}
	r := &Sharded{eng: e, cfg: cfg}
	r.stats.Shards = cfg.Shards
	r.spread = make([]int, cfg.Shards)
	r.shards = make([]*ShardRun, cfg.Shards)
	for i := range r.shards {
		r.shards[i] = &ShardRun{runner: r, shard: i}
	}
	for i, p := range cfg.Ports {
		p.Tag = cfg.Binding[i]
	}
	r.workers = make([]*pworker, cfg.Shards-1)
	for i := range r.workers {
		w := &pworker{wake: make(chan struct{}, 1), sr: r.shards[i+1], done: &r.done}
		r.workers[i] = w
		go w.loop()
	}
	return r
}

// Port returns the i-th port handed to NewSharded.
func (r *Sharded) Port(i int) *Port { return r.cfg.Ports[i] }

// Stats returns the runner's cumulative statistics.
func (r *Sharded) Stats() ShardedStats { return r.stats }

// Stop terminates the worker goroutines. The runner must not be used
// afterwards.
func (r *Sharded) Stop() {
	if r.stopped {
		return
	}
	r.stopped = true
	for _, w := range r.workers {
		w.release(stopEpoch)
	}
}

// Run advances the engine to `until`, dispatching every event at or
// before it — the parallel equivalent of Engine.Run(until). The engine
// state at return (clock, sequence counter, Executed, pending events) is
// byte-identical to what the sequential call would leave.
func (r *Sharded) Run(until uint64) {
	start := time.Now()
	e := r.eng
	for {
		idx := e.next()
		if idx == nilIdx || e.nodes[idx].at > until {
			break
		}
		t0 := e.nodes[idx].at
		if t0 > e.now {
			// Advance the clock to the window start (dispatches nothing,
			// migrates horizon-entering events) so bucket scans below
			// stay within the wheel horizon.
			e.Run(t0 - 1)
		}
		tend := t0 + r.cfg.Lookahead
		if tend > until {
			tend = until + 1
		}
		r.stats.Windows++
		if e.countUntil(tend, r.cfg.Floor) < r.cfg.Floor {
			r.stats.InlineEvents += e.Run(tend - 1)
			continue
		}
		if r.cfg.SpreadFloor > 0 {
			for i := range r.spread {
				r.spread[i] = 0
			}
			total := e.spreadUntil(tend, r.cfg.Route, r.spread)
			max := 0
			for _, c := range r.spread {
				if c > max {
					max = c
				}
			}
			if total-max < r.cfg.SpreadFloor {
				r.stats.InlineEvents += e.Run(tend - 1)
				continue
			}
		}
		r.runWindow(tend)
	}
	e.Run(until)
	r.stats.RunNs += time.Since(start).Nanoseconds()
}

func (r *Sharded) runWindow(tend uint64) {
	e := r.eng
	if r.cfg.BeforeWindow != nil {
		r.cfg.BeforeWindow()
	}

	// Peel every event inside the window off the wheel and partition it
	// by shard. Peeling scans cycles in ascending order and buckets in
	// FIFO (= seq) order, so each shard's slice arrives sorted.
	buf := e.peelWindow(tend, r.peelBuf[:0])
	r.peelBuf = buf
	for _, sr := range r.shards {
		sr.reset(e.now, tend)
	}
	for i := range buf {
		sh := r.cfg.Route(buf[i].Obj, buf[i].A0)
		sr := r.shards[sh]
		sr.events = append(sr.events, buf[i])
	}

	// Bind ports to shards and release the workers.
	for i, p := range r.cfg.Ports {
		p.sr = r.shards[r.cfg.Binding[i]]
	}
	r.epoch++
	r.done.Store(int64(len(r.workers)))
	for _, w := range r.workers {
		w.release(r.epoch)
	}

	// The coordinator executes shard 0 (the uncore shard in the
	// simulator), then waits for the workers.
	r.shards[0].run()
	wait := time.Now()
	for r.done.Load() != 0 {
		runtime.Gosched()
	}
	r.stats.BarrierStallNs += time.Since(wait).Nanoseconds()
	for _, p := range r.cfg.Ports {
		p.sr = nil
	}

	r.replay(tend)
	for _, sr := range r.shards {
		e.Executed += sr.executed
		r.stats.ParallelEvents += sr.executed
	}
	if n := e.Run(tend - 1); n != 0 {
		panic("event: parallel window left undispatched events behind")
	}
	r.stats.Barriers++
	r.stats.ParallelWindows++
}

// replay is the single-threaded sequencer: it merges the shards'
// dispatch logs in (cycle, sequence) order — the order the sequential
// engine would have dispatched — assigning real sequence numbers to
// every logged post, inserting the non-local ones into the engine, and
// applying logged side-effect Ops through the Apply callback.
func (r *Sharded) replay(tend uint64) {
	e := r.eng
	for _, sr := range r.shards {
		sr.provSeq = sr.provSeq[:0]
		for range sr.posts {
			sr.provSeq = append(sr.provSeq, 0)
		}
	}
	for {
		best := -1
		var bAt, bSeq uint64
		for si, sr := range r.shards {
			if sr.ri >= len(sr.recs) {
				continue
			}
			rc := &sr.recs[sr.ri]
			seq := rc.a
			if seq&provKey != 0 {
				// The poster dispatched earlier on this shard, so its
				// recPost has already been consumed and the id resolves.
				seq = sr.provSeq[rc.a&^provKey]
				if seq == 0 {
					panic("event: unresolved provisional dispatch key in replay")
				}
			}
			if best < 0 || rc.at < bAt || (rc.at == bAt && seq < bSeq) {
				best, bAt, bSeq = si, rc.at, seq
			}
		}
		if best < 0 {
			return
		}
		sr := r.shards[best]
		sr.ri++ // consume the dispatch record
		for sr.ri < len(sr.recs) && sr.recs[sr.ri].kind != recDispatch {
			rc := &sr.recs[sr.ri]
			sr.ri++
			switch rc.kind {
			case recPost:
				id := rc.a
				e.seq++
				sr.provSeq[id] = e.seq
				p := &sr.posts[id]
				if !p.local {
					if p.at < tend {
						panic("event: buffered post lands inside its own window")
					}
					a0, a1 := p.a0, p.a1
					if r.cfg.Patch != nil {
						a0, a1 = r.cfg.Patch(p.obj, a0, a1)
					}
					e.insertSeq(p.at, e.seq, p.h, p.obj, a0, a1)
				}
			case recOp:
				r.cfg.Apply(best, rc.code, rc.a)
			}
		}
	}
}

// ---- engine hooks for the windowed runner ----------------------------

// countUntil counts pending events in [now, tend), stopping at limit.
// Requires tend - now <= wheelSize (the caller's lookahead guarantees
// it), so every such event sits in its wheel bucket.
func (e *Engine) countUntil(tend uint64, limit int) int {
	cnt := 0
	for c := e.now; c < tend; c++ {
		for idx := e.buckets[c&wheelMask].head; idx != nilIdx; idx = e.nodes[idx].next {
			cnt++
			if cnt >= limit {
				return cnt
			}
		}
	}
	return cnt
}

// spreadUntil counts pending events in [now, tend) per routing shard,
// accumulating into counts (len = shard count) and returning the total.
// The same bucket walk as countUntil, without the early exit; callers
// run it only on windows already past Floor.
func (e *Engine) spreadUntil(tend uint64, route func(any, uint64) int, counts []int) int {
	total := 0
	for c := e.now; c < tend; c++ {
		for idx := e.buckets[c&wheelMask].head; idx != nilIdx; idx = e.nodes[idx].next {
			n := &e.nodes[idx]
			counts[route(n.obj, n.a0)]++
			total++
		}
	}
	return total
}

// peelWindow removes every pending event in [now, tend) from the wheel
// and appends it to buf in (cycle, seq) order. The wheel invariant plus
// tend - now <= wheelSize guarantee no such event hides in the overflow
// heap.
func (e *Engine) peelWindow(tend uint64, buf []Peeled) []Peeled {
	if tend-e.now > wheelSize {
		panic("event: peel window exceeds the wheel horizon")
	}
	e.migrate()
	for c := e.now; c < tend; c++ {
		b := &e.buckets[c&wheelMask]
		for idx := b.head; idx != nilIdx; {
			n := &e.nodes[idx]
			buf = append(buf, Peeled{At: n.at, Seq: n.seq, A0: n.a0, A1: n.a1, H: n.h, Obj: n.obj})
			next := n.next
			e.release(idx)
			e.wheelCount--
			idx = next
		}
		b.head, b.tail = nilIdx, nilIdx
	}
	return buf
}

// insertSeq files an event with an externally assigned sequence number
// (the replay's genealogical assignment). Callers insert in increasing
// seq order, preserving the bucket-FIFO = seq-order invariant.
func (e *Engine) insertSeq(at, seq uint64, h Handler, obj any, a0, a1 uint64) {
	idx := e.alloc()
	n := &e.nodes[idx]
	n.at, n.seq, n.h, n.obj, n.a0, n.a1, n.next = at, seq, h, obj, a0, a1, nilIdx
	e.insert(idx)
}
