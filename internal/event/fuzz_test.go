package event

import (
	"fmt"
	"testing"
)

// The merge fuzzer drives the sharded runner with a synthetic component
// fabric and checks it against the sequential engine as an oracle. Each
// fhNode owns a Port and a running hash; dispatching an event mixes the
// payload and cycle into the node's hash (order-sensitive per node),
// folds an operation into a global accumulator (order-sensitive across
// ALL shards — logged via Op during windows, exactly the simulator's
// side-effect discipline), and pseudo-randomly posts follow-up events:
// to itself at any distance (exercising the in-window local schedule and
// the buffered replay insert), and to other nodes at >= lookahead
// (exercising cross-shard hand-off). Any divergence in merge order,
// sequence assignment or barrier placement shows up as a hash, seq,
// Executed or pending-set mismatch.

type fhSim struct {
	eng    *Engine
	nodes  []*fhNode
	global uint64
	look   uint64
}

type fhNode struct {
	sim   *fhSim
	id    int
	shard int
	port  *Port
	hash  uint64
}

func fhMix(h, v uint64) uint64 {
	h ^= v
	h *= 0x9e3779b97f4a7c15
	h ^= h >> 29
	return h
}

// applyOp folds one operation into the global accumulator. Non-
// commutative on purpose: applying the same multiset of ops in a
// different order yields a different value.
func (s *fhSim) applyOp(arg uint64) {
	s.global = s.global*0x100000001b3 + arg
}

var fhH Handler

func init() {
	fhH = RegisterHandler("event.fuzz-merge", fhDispatch)
}

func fhDispatch(obj any, a0, a1 uint64) {
	n := obj.(*fhNode)
	s := n.sim
	now := n.port.Now()
	n.hash = fhMix(n.hash, fhMix(a0, now^a1))
	op := uint64(n.id)<<48 ^ a0<<8 ^ now
	if sr := n.port.Shard(); sr != nil {
		sr.Op(1, op)
	} else {
		s.applyOp(op)
	}
	budget := a0 & 0xf
	if budget == 0 {
		return
	}
	h := n.hash
	if h>>4&3 != 0 {
		// Same-node follow-up at any distance: inside the window it runs
		// on the shard's local schedule, beyond it it takes the buffered
		// replay path.
		dt := (h >> 8) % (2 * s.look)
		n.port.Post(now+dt, fhH, n, h>>16<<4|(budget-1), a1+1)
	}
	if h>>6&3 != 0 {
		// Cross-node follow-up, conservatively >= lookahead ahead — the
		// promise every real component makes for cross-shard traffic.
		tgt := s.nodes[(h>>16)%uint64(len(s.nodes))]
		dt := s.look + (h>>24)%s.look
		n.port.Post(now+dt, fhH, tgt, h>>20<<4|(budget-1), a1+1)
	}
}

type fhEvent struct {
	node int
	at   uint64
	a0   uint64
}

// fhParams decodes the fuzz input: a 3-byte header (shards, lookahead,
// node count) followed by 4-byte initial-event records.
func fhDecode(data []byte) (shards int, look uint64, nodes int, evs []fhEvent) {
	if len(data) < 7 {
		return 0, 0, 0, nil
	}
	shards = 2 + int(data[0])%7   // 2..8
	look = 1 + uint64(data[1])%63 // 1..63
	nodes = 1 + int(data[2])%24   // 1..24
	for i := 3; i+4 <= len(data) && len(evs) < 64; i += 4 {
		evs = append(evs, fhEvent{
			node: int(data[i]) % nodes,
			at:   uint64(data[i+1]) | uint64(data[i+2])<<4,
			a0:   uint64(data[i+3])&^0xf | uint64(data[i+3])&0x3, // budget capped at 3
		})
	}
	return
}

func fhBuild(shards int, look uint64, nodes int, evs []fhEvent) *fhSim {
	s := &fhSim{eng: New(), look: look}
	for i := 0; i < nodes; i++ {
		n := &fhNode{sim: s, id: i, shard: i % shards, port: NewPort(s.eng), hash: uint64(i) * 0x9e3779b97f4a7c15}
		s.nodes = append(s.nodes, n)
	}
	for _, ev := range evs {
		s.eng.Post(ev.at, fhH, s.nodes[ev.node], ev.a0, 0)
	}
	return s
}

// fhUntil bounds the run: initial events land below 1<<12 and every
// budget-3 chain adds at most 4 hops of < 2*lookahead cycles.
func fhUntil(look uint64) uint64 { return 1<<12 + 8*look + 16 }

// fhCheck runs the oracle and the sharded subject over identical inputs
// and compares every observable: per-node hashes, the order-sensitive
// global accumulator, engine clock/sequence/Executed, and the pending
// multiset.
func fhCheck(t *testing.T, data []byte) {
	t.Helper()
	shards, look, nodes, evs := fhDecode(data)
	if shards == 0 || len(evs) == 0 {
		return
	}
	oracle := fhBuild(shards, look, nodes, evs)
	subject := fhBuild(shards, look, nodes, evs)

	until := fhUntil(look)
	oracle.eng.Run(until)

	ports := make([]*Port, nodes)
	binding := make([]int, nodes)
	for i, n := range subject.nodes {
		ports[i], binding[i] = n.port, n.shard
	}
	run := NewSharded(subject.eng, ShardedConfig{
		Shards:    shards,
		Lookahead: look,
		Floor:     2,
		Route:     func(obj any, _ uint64) int { return obj.(*fhNode).shard },
		Local:     func(shard int, obj any) bool { return obj.(*fhNode).shard == shard },
		Apply:     func(_ int, _ uint8, arg uint64) { subject.applyOp(arg) },
		Ports:     ports,
		Binding:   binding,
	})
	defer run.Stop()
	run.Run(until)

	if subject.global != oracle.global {
		t.Fatalf("global accumulator diverged: %#x vs %#x (op apply order differs from sequential)", subject.global, oracle.global)
	}
	for i := range oracle.nodes {
		if subject.nodes[i].hash != oracle.nodes[i].hash {
			t.Fatalf("node %d hash diverged: %#x vs %#x", i, subject.nodes[i].hash, oracle.nodes[i].hash)
		}
	}
	oe, se := oracle.eng, subject.eng
	if se.now != oe.now || se.seq != oe.seq || se.Executed != oe.Executed {
		t.Fatalf("engine state diverged: now %d/%d seq %d/%d executed %d/%d",
			se.now, oe.now, se.seq, oe.seq, se.Executed, oe.Executed)
	}
	op, sp := oe.liveOrder(), se.liveOrder()
	if len(op) != len(sp) {
		t.Fatalf("pending count diverged: %d vs %d", len(sp), len(op))
	}
	for i := range op {
		on, sn := &oe.nodes[op[i]], &se.nodes[sp[i]]
		if on.at != sn.at || on.seq != sn.seq || on.a0 != sn.a0 || on.a1 != sn.a1 {
			t.Fatalf("pending event %d diverged: (at=%d seq=%d a0=%#x) vs (at=%d seq=%d a0=%#x)",
				i, sn.at, sn.seq, sn.a0, on.at, on.seq, on.a0)
		}
	}
}

// FuzzParallelMerge fuzzes the barrier/merge scheduler with random
// shard counts, lookaheads, topologies and event timings; the property
// is exact equality with the sequential oracle on every observable.
func FuzzParallelMerge(f *testing.F) {
	// Seed corpus: one dense multi-shard mix, a 2-shard minimum, a
	// single-node self-feeding chain, a lookahead-1 stress, and a burst
	// of same-cycle events (the tie-break path).
	f.Add([]byte{3, 4, 11, 0, 10, 1, 0x33, 1, 20, 2, 0x17, 5, 0, 3, 0x2f, 9, 200, 0, 0x43, 7, 64, 1, 0x11})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0x03})
	f.Add([]byte{6, 62, 0, 0, 1, 0, 0x73, 0, 1, 0, 0x72})
	f.Add([]byte{1, 0, 7, 2, 5, 0, 0xff, 3, 5, 0, 0xfe, 4, 5, 0, 0xfd})
	f.Add([]byte{5, 9, 23, 0, 8, 0, 0x63, 1, 8, 0, 0x62, 2, 8, 0, 0x61, 3, 8, 0, 0x60, 4, 8, 0, 0x5f})
	f.Fuzz(fhCheck)
}

// TestParallelMergeSeeds pins the fuzz seeds as a plain deterministic
// test (and names the property in ordinary test runs, where fuzz
// targets only execute their corpus).
func TestParallelMergeSeeds(t *testing.T) {
	seeds := [][]byte{
		{3, 4, 11, 0, 10, 1, 0x33, 1, 20, 2, 0x17, 5, 0, 3, 0x2f, 9, 200, 0, 0x43, 7, 64, 1, 0x11},
		{0, 0, 0, 0, 0, 0, 0x03},
		{6, 62, 0, 0, 1, 0, 0x73, 0, 1, 0, 0x72},
		{1, 0, 7, 2, 5, 0, 0xff, 3, 5, 0, 0xfe, 4, 5, 0, 0xfd},
		{5, 9, 23, 0, 8, 0, 0x63, 1, 8, 0, 0x62, 2, 8, 0, 0x61, 3, 8, 0, 0x60, 4, 8, 0, 0x5f},
	}
	for i, s := range seeds {
		t.Run(fmt.Sprint(i), func(t *testing.T) { fhCheck(t, s) })
	}
}
