package event

import (
	"fmt"
	"reflect"
	"sort"
	"sync"

	"bump/internal/snapshot"
)

// Handler registry: checkpointing an engine requires naming the handler
// of every pending event, so handlers used on steady-state simulation
// paths register themselves under a stable string key at package init.
// Closure events (At/After) are intentionally unregistered — they cannot
// be serialized — and snapshotting an engine with one pending is an
// error.
var handlerReg = struct {
	sync.RWMutex
	byName map[string]Handler
	byPtr  map[uintptr]string
}{
	byName: make(map[string]Handler),
	byPtr:  make(map[uintptr]string),
}

// RegisterHandler records h under a stable name for snapshot/restore and
// returns h (so call sites can register at var-initialization time).
// Registering two different handlers under one name panics.
func RegisterHandler(name string, h Handler) Handler {
	ptr := reflect.ValueOf(h).Pointer()
	handlerReg.Lock()
	defer handlerReg.Unlock()
	if old, ok := handlerReg.byName[name]; ok && reflect.ValueOf(old).Pointer() != ptr {
		panic("event: handler name registered twice: " + name)
	}
	handlerReg.byName[name] = h
	handlerReg.byPtr[ptr] = name
	return h
}

func handlerName(h Handler) (string, bool) {
	handlerReg.RLock()
	defer handlerReg.RUnlock()
	name, ok := handlerReg.byPtr[reflect.ValueOf(h).Pointer()]
	return name, ok
}

func handlerByName(name string) (Handler, bool) {
	handlerReg.RLock()
	defer handlerReg.RUnlock()
	h, ok := handlerReg.byName[name]
	return h, ok
}

// liveOrder returns the indices of all pending events in canonical
// dispatch-independent order: wheel events by cycle then FIFO position,
// followed by overflow events sorted by (at, seq). Two engines holding
// the same pending-event multiset serialize identically regardless of
// slab layout or heap history.
func (e *Engine) liveOrder() []int32 {
	order := make([]int32, 0, e.wheelCount+len(e.overflow))
	if e.wheelCount > 0 {
		for k := uint64(0); k < wheelSize; k++ {
			for idx := e.buckets[(e.now+k)&wheelMask].head; idx != nilIdx; idx = e.nodes[idx].next {
				order = append(order, idx)
			}
		}
	}
	ovf := append([]int32(nil), e.overflow...)
	sort.Slice(ovf, func(i, j int) bool { return e.heapLess(ovf[i], ovf[j]) })
	return append(order, ovf...)
}

// Snapshot serializes the engine: clock, sequence counter, executed
// count, and every pending event as (at, seq, payload, handler name,
// object reference). encObj maps each event's receiver to a stable
// reference the owning simulator defines; it must reject objects it does
// not recognise.
func (e *Engine) Snapshot(w *snapshot.Writer, encObj func(any) (uint32, error)) error {
	w.Section("engine")
	w.U64(e.now)
	w.U64(e.seq)
	w.U64(e.Executed)

	order := e.liveOrder()

	// Handler name table, in first-appearance order.
	names := make([]string, 0, 8)
	nameIdx := make(map[string]uint32, 8)
	for _, idx := range order {
		n := &e.nodes[idx]
		name, ok := handlerName(n.h)
		if !ok {
			return fmt.Errorf("event: pending event at cycle %d has an unregistered handler (closure events cannot be checkpointed)", n.at)
		}
		if _, seen := nameIdx[name]; !seen {
			nameIdx[name] = uint32(len(names))
			names = append(names, name)
		}
	}
	w.U32(uint32(len(names)))
	for _, name := range names {
		w.String(name)
	}

	w.U32(uint32(len(order)))
	for _, idx := range order {
		n := &e.nodes[idx]
		obj, err := encObj(n.obj)
		if err != nil {
			return fmt.Errorf("event: pending event at cycle %d: %w", n.at, err)
		}
		w.U64(n.at)
		w.U64(n.seq)
		w.U64(n.a0)
		w.U64(n.a1)
		w.U32(nameIdx[handlerMustName(n.h)])
		w.U32(obj)
	}
	return nil
}

func handlerMustName(h Handler) string {
	name, _ := handlerName(h)
	return name
}

// Restore replaces the engine's entire state with the snapshot's. decObj
// resolves the object references encObj produced. The engine's previous
// events, clock and counters are discarded.
func (e *Engine) Restore(r *snapshot.Reader, decObj func(uint32) (any, error)) error {
	r.Section("engine")
	now := r.U64()
	seq := r.U64()
	executed := r.U64()

	nNames := r.Len(5) // string: u32 len + >=1 byte
	handlers := make([]Handler, 0, nNames)
	for i := 0; i < nNames; i++ {
		name := r.String()
		if r.Err() != nil {
			return r.Err()
		}
		h, ok := handlerByName(name)
		if !ok {
			return fmt.Errorf("event: snapshot references unknown handler %q", name)
		}
		handlers = append(handlers, h)
	}

	nEvents := r.Len(8*4 + 4 + 4)
	if r.Err() != nil {
		return r.Err()
	}

	// Reset the engine before loading: restore is wholesale replacement.
	e.now = now
	e.seq = seq
	e.Executed = executed
	e.nodes = e.nodes[:0]
	e.free = nilIdx
	e.wheelCount = 0
	e.overflow = e.overflow[:0]
	for i := range e.buckets {
		e.buckets[i] = bucket{head: nilIdx, tail: nilIdx}
	}

	for i := 0; i < nEvents; i++ {
		at := r.U64()
		evSeq := r.U64()
		a0 := r.U64()
		a1 := r.U64()
		hIdx := r.U32()
		objRef := r.U32()
		if r.Err() != nil {
			return r.Err()
		}
		if int(hIdx) >= len(handlers) {
			return fmt.Errorf("event: handler index %d out of range", hIdx)
		}
		if at < now {
			return fmt.Errorf("event: pending event at cycle %d predates clock %d", at, now)
		}
		if evSeq > seq {
			return fmt.Errorf("event: event sequence %d beyond counter %d", evSeq, seq)
		}
		obj, err := decObj(objRef)
		if err != nil {
			return err
		}
		idx := e.alloc()
		n := &e.nodes[idx]
		n.at, n.seq, n.h, n.obj, n.a0, n.a1, n.next = at, evSeq, handlers[hIdx], obj, a0, a1, nilIdx
		// Inserting in snapshot order reproduces each bucket's FIFO
		// chain exactly; overflow events re-heapify by (at, seq), which
		// is a total order, so pop order is preserved too.
		e.insert(idx)
	}
	return r.Err()
}
