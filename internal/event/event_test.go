package event

import (
	"testing"
	"testing/quick"
)

func TestOrdering(t *testing.T) {
	e := New()
	var got []int
	e.At(10, func() { got = append(got, 1) })
	e.At(5, func() { got = append(got, 0) })
	e.At(10, func() { got = append(got, 2) }) // same cycle: FIFO
	e.Drain()
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("order = %v", got)
	}
	if e.Now() != 10 {
		t.Errorf("Now = %d", e.Now())
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	e := New()
	e.At(100, func() {
		e.At(50, func() {}) // in the past: must run at 100, not 50
	})
	e.Drain()
	if e.Now() != 100 {
		t.Errorf("Now = %d, want 100", e.Now())
	}
}

func TestAfter(t *testing.T) {
	e := New()
	var at uint64
	e.At(7, func() {
		e.After(3, func() { at = e.Now() })
	})
	e.Drain()
	if at != 10 {
		t.Errorf("After fired at %d, want 10", at)
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	fired := 0
	for _, c := range []uint64{1, 2, 3, 10, 20} {
		e.At(c, func() { fired++ })
	}
	n := e.Run(5)
	if n != 3 || fired != 3 {
		t.Errorf("Run(5) dispatched %d (fired %d), want 3", n, fired)
	}
	if e.Pending() != 2 {
		t.Errorf("Pending = %d", e.Pending())
	}
	// Boundary: events at exactly `until` run.
	n = e.Run(10)
	if n != 1 || fired != 4 {
		t.Errorf("Run(10) dispatched %d", n)
	}
}

func TestRunAdvancesClockWhenEmpty(t *testing.T) {
	e := New()
	e.Run(1000)
	if e.Now() != 1000 {
		t.Errorf("Now = %d, want 1000 after empty Run", e.Now())
	}
}

func TestCascade(t *testing.T) {
	// An event chain scheduled from within events must all execute.
	e := New()
	depth := 0
	var step func()
	step = func() {
		depth++
		if depth < 100 {
			e.After(1, step)
		}
	}
	e.At(0, step)
	e.Drain()
	if depth != 100 {
		t.Errorf("depth = %d", depth)
	}
	if e.Executed != 100 {
		t.Errorf("Executed = %d", e.Executed)
	}
}

// Property: events always dispatch in non-decreasing time order regardless
// of the scheduling order.
func TestTimeMonotonicProperty(t *testing.T) {
	f := func(times []uint16) bool {
		e := New()
		var fired []uint64
		for _, at := range times {
			at := uint64(at)
			e.At(at, func() { fired = append(fired, at) })
		}
		e.Drain()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(times)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
