// Package event provides the discrete-event engine that drives the
// simulator. Components schedule callbacks at absolute or relative CPU
// cycles; the engine runs them in time order (FIFO within a cycle, in
// scheduling order, so component interactions are deterministic).
package event

import "container/heap"

type item struct {
	at  uint64
	seq uint64
	fn  func()
}

type queue []item

func (q queue) Len() int { return len(q) }
func (q queue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q queue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *queue) Push(x interface{}) { *q = append(*q, x.(item)) }
func (q *queue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Engine is a discrete-event scheduler over a 64-bit CPU-cycle clock.
type Engine struct {
	now uint64
	seq uint64
	q   queue
	// Executed counts dispatched events (useful for run-away detection
	// in tests).
	Executed uint64
}

// New returns an engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current cycle.
func (e *Engine) Now() uint64 { return e.now }

// At schedules fn to run at absolute cycle t. Scheduling in the past runs
// the event at the current cycle (never before: time is monotonic).
func (e *Engine) At(t uint64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.q, item{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d uint64, fn func()) { e.At(e.now+d, fn) }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.q) }

// Step dispatches the next event, advancing the clock to its time.
// Returns false if no events remain.
func (e *Engine) Step() bool {
	if len(e.q) == 0 {
		return false
	}
	it := heap.Pop(&e.q).(item)
	e.now = it.at
	e.Executed++
	it.fn()
	return true
}

// Run dispatches events until the queue is empty or the clock would pass
// `until`; it returns the number of events dispatched. Events scheduled at
// exactly `until` still run.
func (e *Engine) Run(until uint64) uint64 {
	var n uint64
	for len(e.q) > 0 && e.q[0].at <= until {
		e.Step()
		n++
	}
	// All events at or before `until` have run; the clock stands at
	// exactly `until` (remaining events are strictly later).
	if e.now < until {
		e.now = until
	}
	return n
}

// Drain dispatches every remaining event.
func (e *Engine) Drain() uint64 {
	var n uint64
	for e.Step() {
		n++
	}
	return n
}
