// Package event provides the discrete-event engine that drives the
// simulator. Components schedule callbacks at absolute or relative CPU
// cycles; the engine runs them in time order (FIFO within a cycle, in
// scheduling order, so component interactions are deterministic).
//
// The scheduler is a bucketed timing wheel: a power-of-two ring of
// per-cycle FIFO buckets covers the near horizon (the common case —
// core, NOC, LLC and DRAM latencies are small constants), and a typed
// min-heap holds the overflow of far-future events. Event records are
// intrusive nodes recycled through a free list, so steady-state
// scheduling performs no allocation. The hot path is closure-free: the
// Post family carries a fixed (handler, receiver, two-word payload)
// record instead of a heap-allocated func() closure. At/After remain for
// call sites where the closure cost does not matter.
package event

// wheelBits sizes the timing wheel. The horizon must comfortably exceed
// the longest common scheduling delta (worst-case DRAM transaction
// latency including refresh is well under 2k CPU cycles); rarer events
// land in the overflow heap, which is correct at any distance.
const (
	wheelBits = 12
	wheelSize = 1 << wheelBits
	wheelMask = wheelSize - 1
)

// Handler is a closure-free event callback: obj is the receiver
// (typically a component pointer) and a0/a1 are payload words whose
// meaning the handler defines.
type Handler func(obj any, a0, a1 uint64)

// closureH adapts the legacy func() interface onto the handler path.
// A func value stored in an interface carries no extra allocation beyond
// the closure itself.
var closureH Handler = func(obj any, _, _ uint64) { obj.(func())() }

const nilIdx = -1

// node is one pooled event record. Nodes live in the engine's slab and
// link into a bucket FIFO (wheel) or sit in the overflow heap; next
// doubles as the free-list link.
type node struct {
	at   uint64
	seq  uint64
	a0   uint64
	a1   uint64
	h    Handler
	obj  any
	next int32
}

type bucket struct{ head, tail int32 }

// Engine is a discrete-event scheduler over a 64-bit CPU-cycle clock.
type Engine struct {
	now uint64
	seq uint64
	// Executed counts dispatched events (throughput metric; also useful
	// for run-away detection in tests).
	Executed uint64

	nodes []node
	free  int32 // free-list head into nodes

	buckets    [wheelSize]bucket
	wheelCount int // events currently in the wheel

	// overflow holds node indices of events at or beyond now+wheelSize,
	// heap-ordered by (at, seq).
	overflow []int32
}

// New returns an engine with the clock at zero.
func New() *Engine {
	e := &Engine{free: nilIdx}
	for i := range e.buckets {
		e.buckets[i] = bucket{head: nilIdx, tail: nilIdx}
	}
	return e
}

// Now returns the current cycle.
func (e *Engine) Now() uint64 { return e.now }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return e.wheelCount + len(e.overflow) }

// At schedules fn to run at absolute cycle t. Scheduling in the past runs
// the event at the current cycle (never before: time is monotonic).
func (e *Engine) At(t uint64, fn func()) { e.Post(t, closureH, fn, 0, 0) }

// After schedules fn to run d cycles from now.
func (e *Engine) After(d uint64, fn func()) { e.Post(e.now+d, closureH, fn, 0, 0) }

// Post schedules h(obj, a0, a1) at absolute cycle t without allocating a
// closure. Past times clamp to the current cycle, like At.
func (e *Engine) Post(t uint64, h Handler, obj any, a0, a1 uint64) {
	if t < e.now {
		t = e.now
	}
	idx := e.alloc()
	n := &e.nodes[idx]
	e.seq++
	n.at, n.seq, n.h, n.obj, n.a0, n.a1, n.next = t, e.seq, h, obj, a0, a1, nilIdx
	e.insert(idx)
}

// PostAfter schedules h(obj, a0, a1) d cycles from now.
func (e *Engine) PostAfter(d uint64, h Handler, obj any, a0, a1 uint64) {
	e.Post(e.now+d, h, obj, a0, a1)
}

func (e *Engine) alloc() int32 {
	if e.free != nilIdx {
		idx := e.free
		e.free = e.nodes[idx].next
		return idx
	}
	e.nodes = append(e.nodes, node{})
	return int32(len(e.nodes) - 1)
}

func (e *Engine) release(idx int32) {
	n := &e.nodes[idx]
	n.h, n.obj = nil, nil // drop references for the GC
	n.next = e.free
	e.free = idx
}

// insert files a node into the wheel (within the horizon) or the
// overflow heap. Invariant: the wheel holds exactly the events with
// at - now < wheelSize, so each bucket contains events of a single
// absolute cycle, appended in scheduling order.
func (e *Engine) insert(idx int32) {
	n := &e.nodes[idx]
	if n.at-e.now < wheelSize {
		b := &e.buckets[n.at&wheelMask]
		if b.tail == nilIdx {
			b.head = idx
		} else {
			e.nodes[b.tail].next = idx
		}
		b.tail = idx
		e.wheelCount++
		return
	}
	e.heapPush(idx)
}

// migrate moves overflow events that entered the horizon into the wheel.
// It must run every time now advances, before any dispatch or new
// insertion, so bucket FIFO order stays global scheduling order: events
// migrating out of the heap were scheduled earlier (smaller seq) than any
// wheel insertion that could target the same cycle afterwards, and the
// heap pops equal-cycle events in seq order.
func (e *Engine) migrate() {
	for len(e.overflow) > 0 {
		top := e.overflow[0]
		if e.nodes[top].at-e.now >= wheelSize {
			return
		}
		e.heapPop()
		e.insert(top)
	}
}

// next returns the index of the earliest pending event, or nilIdx. The
// wheel invariant makes the scan exact: if any wheel event exists it is
// strictly earlier than every overflow event, and scanning buckets from
// now upward visits cycles in increasing order.
func (e *Engine) next() int32 {
	if e.wheelCount > 0 {
		for k := uint64(0); k < wheelSize; k++ {
			if idx := e.buckets[(e.now+k)&wheelMask].head; idx != nilIdx {
				return idx
			}
		}
		panic("event: wheel count positive but no bucket occupied")
	}
	if len(e.overflow) > 0 {
		return e.overflow[0]
	}
	return nilIdx
}

// dispatch removes event idx (which must be the earliest: a bucket head
// or the overflow top), advances the clock, and runs its handler.
func (e *Engine) dispatch(idx int32) {
	n := &e.nodes[idx]
	b := &e.buckets[n.at&wheelMask]
	if b.head == idx {
		b.head = n.next
		if b.head == nilIdx {
			b.tail = nilIdx
		}
		e.wheelCount--
	} else {
		e.heapPop()
	}
	e.now = n.at
	e.migrate()
	h, obj, a0, a1 := n.h, n.obj, n.a0, n.a1
	e.release(idx)
	e.Executed++
	h(obj, a0, a1)
}

// Step dispatches the next event, advancing the clock to its time.
// Returns false if no events remain.
func (e *Engine) Step() bool {
	idx := e.next()
	if idx == nilIdx {
		return false
	}
	e.dispatch(idx)
	return true
}

// Run dispatches events until the queue is empty or the clock would pass
// `until`; it returns the number of events dispatched. Events scheduled at
// exactly `until` still run.
func (e *Engine) Run(until uint64) uint64 {
	var n uint64
	for {
		idx := e.next()
		if idx == nilIdx || e.nodes[idx].at > until {
			break
		}
		e.dispatch(idx)
		n++
	}
	// All events at or before `until` have run; the clock stands at
	// exactly `until` (remaining events are strictly later).
	if e.now < until {
		e.now = until
		e.migrate()
	}
	return n
}

// Drain dispatches every remaining event.
func (e *Engine) Drain() uint64 {
	var n uint64
	for e.Step() {
		n++
	}
	return n
}

// ---- overflow heap (typed, index-based, ordered by (at, seq)) ---------

func (e *Engine) heapLess(i, j int32) bool {
	a, b := &e.nodes[i], &e.nodes[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) heapPush(idx int32) {
	e.overflow = append(e.overflow, idx)
	i := len(e.overflow) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.heapLess(e.overflow[i], e.overflow[parent]) {
			break
		}
		e.overflow[i], e.overflow[parent] = e.overflow[parent], e.overflow[i]
		i = parent
	}
}

func (e *Engine) heapPop() int32 {
	h := e.overflow
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	e.overflow = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= last {
			break
		}
		c := l
		if r < last && e.heapLess(e.overflow[r], e.overflow[l]) {
			c = r
		}
		if !e.heapLess(e.overflow[c], e.overflow[i]) {
			break
		}
		e.overflow[i], e.overflow[c] = e.overflow[c], e.overflow[i]
		i = c
	}
	return top
}
