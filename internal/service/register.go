package service

import (
	"context"
	"encoding/json"
	"net/http"
	"time"
)

// RegisterRequest is a worker's heartbeat self-registration, posted to
// a coordinator's POST /v1/cluster/register. URL is the worker's
// advertised base URL (how the coordinator should reach it); Version is
// the snapshot format version the worker speaks.
type RegisterRequest struct {
	URL     string `json:"url"`
	Version int    `json:"version"`
	// WireAddr advertises the worker's binary fast-path listener (empty
	// = HTTP/JSON only).
	WireAddr string `json:"wire_addr,omitempty"`
	// Checkpoints lists warm-checkpoint digests the worker can serve via
	// GET /v1/checkpoints/{digest}, so the coordinator can route
	// failover placements to a peer holding the warm state.
	Checkpoints []string `json:"checkpoints,omitempty"`
}

// RegisterResponse echoes the coordinator's view of the worker: its
// assigned registry ID, health/admission state and lifecycle.
type RegisterResponse struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Lifecycle string `json:"lifecycle"`
}

// Register posts one heartbeat self-registration to the coordinator
// behind this client.
func (c *Client) Register(ctx context.Context, req RegisterRequest) (RegisterResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return RegisterResponse{}, err
	}
	var resp RegisterResponse
	if err := c.doJSON(ctx, http.MethodPost, c.base+"/v1/cluster/register", body, &resp); err != nil {
		return RegisterResponse{}, err
	}
	return resp, nil
}

// Heartbeat registers immediately and then re-registers every interval
// until ctx is canceled. Failures are reported to report (may be nil)
// and retried on the next tick — a worker outliving a coordinator
// restart re-joins the fresh coordinator by just continuing to beat.
func (c *Client) Heartbeat(ctx context.Context, req RegisterRequest, interval time.Duration, report func(RegisterResponse, error)) {
	c.HeartbeatFunc(ctx, func() RegisterRequest { return req }, interval, report)
}

// HeartbeatFunc is Heartbeat with a per-beat request builder, for
// fields that change over a worker's lifetime (the warm-checkpoint
// digests it advertises).
func (c *Client) HeartbeatFunc(ctx context.Context, reqFn func() RegisterRequest, interval time.Duration, report func(RegisterResponse, error)) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	beat := func() {
		resp, err := c.Register(ctx, reqFn())
		if report != nil && ctx.Err() == nil {
			report(resp, err)
		}
	}
	beat()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			beat()
		}
	}
}
