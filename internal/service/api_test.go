package service

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, opts Options) (*httptest.Server, *Pool) {
	t.Helper()
	if opts.ProgressInterval == 0 {
		opts.ProgressInterval = 2_000
	}
	p := NewPool(opts)
	srv := httptest.NewServer(NewHandler(p))
	t.Cleanup(func() {
		srv.Close()
		p.Close()
	})
	return srv, p
}

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	name string
	data string
}

// readSSE consumes an event stream until it ends, returning the events.
func readSSE(t *testing.T, url string) []sseEvent {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %s", url, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.name != "" {
				events = append(events, cur)
			}
			cur = sseEvent{}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read SSE: %v", err)
	}
	return events
}

// TestAPISessionSubmitPollStreamResult is the acceptance-criteria
// session: submit → SSE progress stream → terminal event → poll →
// cached resubmission → result-by-hash.
func TestAPISessionSubmitPollStreamResult(t *testing.T) {
	srv, _ := newTestServer(t, Options{Workers: 1})
	client := NewClient(srv.URL)
	client.PollInterval = 20 * time.Millisecond

	// Submit: big enough that the SSE subscription attaches mid-run.
	spec := specFixture()
	spec.MeasureCycles = 2_000_000
	st, err := client.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Hash == "" || st.State.Terminal() {
		t.Fatalf("fresh submission: %+v", st)
	}

	// Stream progress until the terminal event.
	events := readSSE(t, srv.URL+"/v1/jobs/"+st.ID+"/events")
	if len(events) == 0 {
		t.Fatal("empty SSE stream")
	}
	var progress int
	for _, ev := range events[:len(events)-1] {
		if ev.name != "progress" {
			t.Errorf("unexpected mid-stream event %q", ev.name)
		}
		progress++
	}
	if progress == 0 {
		t.Error("no progress events before the terminal event")
	}
	last := events[len(events)-1]
	if last.name != string(StateDone) {
		t.Fatalf("terminal event %q, want %q", last.name, StateDone)
	}
	if !strings.Contains(last.data, `"row_hit_ratio"`) {
		t.Error("terminal event payload missing derived metrics")
	}

	// Poll: done with result and metrics.
	final, err := client.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Result == nil {
		t.Fatalf("final state %s, result=%v", final.State, final.Result != nil)
	}
	if final.Result.Cycles != spec.MeasureCycles {
		t.Errorf("result cycles %d, want %d", final.Result.Cycles, spec.MeasureCycles)
	}

	// Resubmission of the same config: HTTP 200, served from cache.
	resub, err := client.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if resub.State != StateDone || !resub.Cached {
		t.Fatalf("resubmission state=%s cached=%v", resub.State, resub.Cached)
	}
	if resub.Hash != st.Hash {
		t.Errorf("hash changed across submissions: %s vs %s", resub.Hash, st.Hash)
	}

	// Result by hash.
	res, ok, err := client.ResultByHash(context.Background(), st.Hash)
	if err != nil || !ok {
		t.Fatalf("ResultByHash: ok=%v err=%v", ok, err)
	}
	if res.Cycles != final.Result.Cycles || res.Instructions != final.Result.Instructions {
		t.Error("hash lookup returned a different result")
	}

	// SSE on a terminal job: terminal event only.
	tail := readSSE(t, srv.URL+"/v1/jobs/"+st.ID+"/events")
	if len(tail) != 1 || tail[0].name != string(StateDone) {
		t.Fatalf("terminal-job stream: %+v", tail)
	}

	// Health reflects exactly one execution.
	h, err := client.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Stats.Executions != 1 {
		t.Errorf("health %q, executions %d (want 1)", h.Status, h.Stats.Executions)
	}
}

func TestAPIErrorPaths(t *testing.T) {
	srv, _ := newTestServer(t, Options{Workers: 1})
	client := NewClient(srv.URL)

	// Malformed and invalid specs.
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: %d, want 400", resp.StatusCode)
	}
	if _, err := client.Submit(context.Background(), JobSpec{Workload: "nope"}); err == nil {
		t.Error("unknown workload must be rejected")
	}

	// Unknown job and hash.
	if _, err := client.Job(context.Background(), "j-missing"); err == nil {
		t.Error("unknown job must 404")
	}
	if _, ok, err := client.ResultByHash(context.Background(), "deadbeef"); err != nil || ok {
		t.Errorf("unknown hash: ok=%v err=%v", ok, err)
	}
	resp, err = http.Get(srv.URL + "/v1/jobs/j-missing/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("events for unknown job: %d, want 404", resp.StatusCode)
	}
}

func TestAPICancelEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, Options{Workers: 1})
	client := NewClient(srv.URL)
	st, err := client.Submit(context.Background(), longSpec())
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d, want 200", resp.StatusCode)
	}
	final, err := client.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCanceled {
		t.Errorf("state %s after cancel, want canceled", final.State)
	}
}

// TestConcurrentAPISubmissions hammers the API from many goroutines
// with a mix of duplicate and distinct configs (run under -race in CI).
func TestConcurrentAPISubmissions(t *testing.T) {
	srv, pool := newTestServer(t, Options{Workers: 4})
	client := NewClient(srv.URL)
	client.PollInterval = 20 * time.Millisecond

	const clients = 12
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			spec := specFixture()
			spec.Seed = int64(i%3 + 1) // 3 distinct configs, 4 submitters each
			_, err := client.Run(context.Background(), spec)
			errs <- err
		}(i)
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if st := pool.Stats(); st.Executions != 3 {
		t.Errorf("%d executions for 3 distinct configs, want 3", st.Executions)
	}
}
