package service

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"bump/internal/sim"
	"bump/internal/wire"
)

// wireState is the client's view of one server's binary fast path:
// negotiated lazily (the wire address comes from /v1/healthz unless
// pinned), pooled persistent connections, and a health latch — a
// transport fault demotes the client to HTTP/JSON for wireRetryAfter,
// a version skew or a server without a listener demotes it permanently.
type wireState struct {
	mu        sync.Mutex
	pool      *wire.Pool
	off       bool // permanent: no listener, version skew, or Close
	probed    bool
	downUntil time.Time

	calls     atomic.Uint64
	fallbacks atomic.Uint64
}

// wireRetryAfter is how long a transport fault keeps the client on the
// JSON slow path before the wire is retried.
const wireRetryAfter = 5 * time.Second

// WireStats counts a client's fast-path usage: Calls completed over the
// wire, Fallbacks demoted to HTTP/JSON after a wire fault, and the
// connection pool's dial/reuse counters.
type WireStats struct {
	Calls     uint64 `json:"calls"`
	Fallbacks uint64 `json:"fallbacks"`
	Dials     uint64 `json:"dials"`
	Reuses    uint64 `json:"reuses"`
}

// WireStats returns cumulative fast-path counters.
func (c *Client) WireStats() WireStats {
	st := WireStats{
		Calls:     c.wire.calls.Load(),
		Fallbacks: c.wire.fallbacks.Load(),
	}
	c.wire.mu.Lock()
	if c.wire.pool != nil {
		ps := c.wire.pool.Stats()
		st.Dials, st.Reuses = ps.Dials, ps.Reuses
	}
	c.wire.mu.Unlock()
	return st
}

func (c *Client) closeWire() {
	c.wire.mu.Lock()
	p := c.wire.pool
	c.wire.pool = nil
	c.wire.off = true
	c.wire.mu.Unlock()
	if p != nil {
		p.Close()
	}
}

// wireDown demotes to JSON temporarily (transport fault).
func (c *Client) wireDown() {
	c.wire.mu.Lock()
	c.wire.downUntil = time.Now().Add(wireRetryAfter)
	c.wire.mu.Unlock()
}

// wireDisable demotes to JSON permanently (format-version skew).
func (c *Client) wireDisable() {
	c.wire.mu.Lock()
	p := c.wire.pool
	c.wire.pool = nil
	c.wire.off = true
	c.wire.mu.Unlock()
	if p != nil {
		p.Close()
	}
}

// wirePool returns the connection pool for the server's wire listener,
// negotiating the address on first use — nil means "use HTTP/JSON".
func (c *Client) wirePool(ctx context.Context) *wire.Pool {
	if c.DisableWire {
		return nil
	}
	c.wire.mu.Lock()
	defer c.wire.mu.Unlock()
	if c.wire.off || time.Now().Before(c.wire.downUntil) {
		return nil
	}
	if c.wire.pool != nil {
		return c.wire.pool
	}
	addr := c.WireAddr
	if addr == "" {
		if c.wire.probed {
			c.wire.off = true // server advertises no wire listener
			return nil
		}
		h, err := c.Health(ctx)
		if err != nil {
			// Server unreachable: let the caller's JSON path surface the
			// real error; re-probe after the demotion window.
			c.wire.downUntil = time.Now().Add(wireRetryAfter)
			return nil
		}
		c.wire.probed = true
		if h.WireAddr == "" {
			c.wire.off = true
			return nil
		}
		addr = h.WireAddr
	}
	resolved, err := c.resolveWireAddr(addr)
	if err != nil {
		c.wire.off = true
		return nil
	}
	c.wire.pool = wire.NewPool(resolved)
	return c.wire.pool
}

// resolveWireAddr fills a wildcard or empty host (":8345", "[::]:8345")
// from the HTTP base URL — servers advertise their listen address,
// which often names no reachable host.
func (c *Client) resolveWireAddr(addr string) (string, error) {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "", err
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		if u, uerr := url.Parse(c.base); uerr == nil && u.Hostname() != "" {
			host = u.Hostname()
		} else {
			host = "127.0.0.1"
		}
	}
	return net.JoinHostPort(host, port), nil
}

// wireGet acquires a connection, translating failures into the right
// demotion. ok=false means "fall back to JSON".
func (c *Client) wireGet(ctx context.Context, p *wire.Pool) (*wire.Conn, bool, bool) {
	conn, reused, err := p.Get(ctx)
	if err != nil {
		var ve *wire.VersionError
		if errors.As(err, &ve) {
			c.wireDisable()
		} else {
			c.wireDown()
		}
		c.wire.fallbacks.Add(1)
		return nil, false, false
	}
	return conn, reused, true
}

func (c *Client) wireProtoErr(format string, args ...any) error {
	return fmt.Errorf("service: %s: wire: %s", c.base, fmt.Sprintf(format, args...))
}

// wireErrFrom maps a wmErr frame back to the same *APIError the JSON
// path would have produced.
func (c *Client) wireErrFrom(body []byte) error {
	var em wireErrMsg
	if err := decodeMsg(body, &em); err != nil {
		return c.wireProtoErr("bad error frame: %v", err)
	}
	return &APIError{Code: em.Code, Message: em.Message, Worker: c.base}
}

// appError wraps application-level stream errors (bad payload, wmErr)
// so wireStream can tell them from transport faults: app errors
// surface to the caller, transport faults fall back to JSON.
type appError struct{ err error }

func (e *appError) Error() string { return e.err.Error() }

// wireCall performs one unary request. handled=false → use JSON.
func (c *Client) wireCall(ctx context.Context, req byte, reqBody []byte) (byte, []byte, bool, error) {
	return c.wireCallBody(ctx, req, func(*wire.Conn) []byte { return reqBody })
}

// wireCallBody is wireCall with the request body built per connection,
// so the encoding can consult the peer's negotiated hello flags (e.g.
// dropping trace context for peers that did not advertise it).
func (c *Client) wireCallBody(ctx context.Context, req byte, mkBody func(*wire.Conn) []byte) (byte, []byte, bool, error) {
	p := c.wirePool(ctx)
	if p == nil {
		return 0, nil, false, nil
	}
	deadline := time.Now().Add(c.requestTimeout())
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	for attempt := 0; attempt < 2; attempt++ {
		if err := ctx.Err(); err != nil {
			return 0, nil, true, err
		}
		conn, reused, ok := c.wireGet(ctx, p)
		if !ok {
			return 0, nil, false, nil
		}
		stop := watchCtx(ctx, conn)
		conn.SetDeadline(deadline)
		err := conn.WriteFrame(req, mkBody(conn))
		var typ byte
		var body []byte
		if err == nil {
			typ, body, err = conn.ReadFrame()
		}
		stop()
		if err != nil {
			p.Discard(conn)
			if cerr := ctx.Err(); cerr != nil {
				return 0, nil, true, cerr
			}
			if reused {
				continue // stale keep-alive: retry once on a fresh dial
			}
			c.wireDown()
			c.wire.fallbacks.Add(1)
			return 0, nil, false, nil
		}
		// Clear the per-call deadline before pooling the conn: a stale
		// deadline would fire mid-IO on whichever future call reuses it,
		// surfacing as a spurious timeout long after this call returned.
		conn.SetDeadline(time.Time{})
		p.Put(conn)
		c.wire.calls.Add(1)
		if typ == wmErr {
			return 0, nil, true, c.wireErrFrom(body)
		}
		return typ, body, true, nil
	}
	// Both attempts rode stale pooled connections.
	c.wireDown()
	c.wire.fallbacks.Add(1)
	return 0, nil, false, nil
}

// watchCtx severs the connection when ctx is canceled mid-IO, so wire
// calls stay as context-responsive as HTTP ones. The returned stop must
// be called once the call's IO is done.
func watchCtx(ctx context.Context, conn *wire.Conn) (stop func()) {
	if ctx.Done() == nil {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-done:
		}
	}()
	return func() { close(done) }
}

// wireStream performs one streaming request: onFrame consumes frames
// until it reports done. handled=false → restart the call over JSON.
func (c *Client) wireStream(ctx context.Context, req byte, reqBody []byte, onFrame func(typ byte, body []byte) (bool, error)) (bool, error) {
	p := c.wirePool(ctx)
	if p == nil {
		return false, nil
	}
	// Streams outlive the unary budget (a watch legitimately runs for a
	// job's lifetime); the idle bound only catches dead peers.
	idle := c.requestTimeout()
	if idle < 15*time.Minute {
		idle = 15 * time.Minute
	}
	for attempt := 0; attempt < 2; attempt++ {
		if err := ctx.Err(); err != nil {
			return true, err
		}
		conn, reused, ok := c.wireGet(ctx, p)
		if !ok {
			return false, nil
		}
		stop := watchCtx(ctx, conn)
		gotFrames, err := c.runStream(conn, req, reqBody, idle, onFrame)
		stop()
		if err == nil {
			if ctx.Err() != nil {
				// The watchdog may have severed the conn at the same
				// moment the stream finished; don't pool a dead conn.
				p.Discard(conn)
			} else {
				p.Put(conn)
			}
			c.wire.calls.Add(1)
			return true, nil
		}
		p.Discard(conn)
		var ae *appError
		if errors.As(err, &ae) {
			c.wire.calls.Add(1)
			return true, ae.err
		}
		if cerr := ctx.Err(); cerr != nil {
			return true, cerr
		}
		if reused && !gotFrames {
			continue // stale keep-alive died before the stream started
		}
		c.wireDown()
		c.wire.fallbacks.Add(1)
		return false, nil
	}
	c.wireDown()
	c.wire.fallbacks.Add(1)
	return false, nil
}

// runStream writes the request and pumps response frames through
// onFrame. Transport errors come back bare; handler errors wrapped in
// *appError.
func (c *Client) runStream(conn *wire.Conn, req byte, reqBody []byte, idle time.Duration, onFrame func(byte, []byte) (bool, error)) (bool, error) {
	conn.SetDeadline(time.Now().Add(c.requestTimeout()))
	if err := conn.WriteFrame(req, reqBody); err != nil {
		return false, err
	}
	got := false
	for {
		conn.SetDeadline(time.Now().Add(idle))
		typ, body, err := conn.ReadFrame()
		if err != nil {
			return got, err
		}
		got = true
		done, err := onFrame(typ, body)
		if err != nil {
			return got, &appError{err: err}
		}
		if done {
			conn.SetDeadline(time.Time{})
			return got, nil
		}
	}
}

// ---- Wire-first call implementations ---------------------------------

func (c *Client) decodeWireStatus(typ byte, body []byte) (JobStatus, error) {
	if typ != wmStatus {
		return JobStatus{}, c.wireProtoErr("unexpected frame type %#x, want status", typ)
	}
	var ws wireStatus
	if err := decodeMsg(body, &ws); err != nil {
		return JobStatus{}, c.wireProtoErr("bad status frame: %v", err)
	}
	return ws.status(), nil
}

func (c *Client) wireSubmit(ctx context.Context, spec JobSpec) (JobStatus, bool, error) {
	typ, body, handled, err := c.wireCallBody(ctx, wmSubmit, func(conn *wire.Conn) []byte {
		// Trace context is flag-gated: a peer that did not advertise it
		// gets a cleared TraceID (pure observability, results unchanged).
		if spec.TraceID != "" && !conn.TraceContext() {
			s := spec
			s.TraceID = ""
			return encodeMsg(wireJobSpec{Spec: s})
		}
		return encodeMsg(wireJobSpec{Spec: spec})
	})
	if !handled || err != nil {
		return JobStatus{}, handled, err
	}
	st, err := c.decodeWireStatus(typ, body)
	return st, true, err
}

func (c *Client) wireJob(ctx context.Context, id string) (JobStatus, bool, error) {
	typ, body, handled, err := c.wireCall(ctx, wmJob, encodeMsg(wireRef{Ref: id}))
	if !handled || err != nil {
		return JobStatus{}, handled, err
	}
	st, err := c.decodeWireStatus(typ, body)
	return st, true, err
}

func (c *Client) wireResult(ctx context.Context, hash string) (sim.Result, bool, bool, error) {
	typ, body, handled, err := c.wireCall(ctx, wmResult, encodeMsg(wireRef{Ref: hash}))
	if !handled {
		return sim.Result{}, false, false, nil
	}
	if err != nil {
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.Code == 404 {
			return sim.Result{}, false, true, nil
		}
		return sim.Result{}, false, true, err
	}
	if typ != wmResultPayload {
		return sim.Result{}, false, true, c.wireProtoErr("unexpected frame type %#x, want result", typ)
	}
	var rm wireResultMsg
	if err := decodeMsg(body, &rm); err != nil {
		return sim.Result{}, false, true, c.wireProtoErr("bad result frame: %v", err)
	}
	return rm.Result, rm.Found, true, nil
}

func (c *Client) wireWatch(ctx context.Context, id string, onProgress func(sim.Progress)) (JobStatus, bool, error) {
	var final JobStatus
	sawFinal := false
	handled, err := c.wireStream(ctx, wmWatch, encodeMsg(wireRef{Ref: id}), func(typ byte, body []byte) (bool, error) {
		switch typ {
		case wmProgress:
			var pr sim.Progress
			if err := decodeMsg(body, &pr); err != nil {
				return true, c.wireProtoErr("bad progress frame: %v", err)
			}
			if onProgress != nil {
				onProgress(pr)
			}
			return false, nil
		case wmStatus:
			st, err := c.decodeWireStatus(typ, body)
			if err != nil {
				return true, err
			}
			final, sawFinal = st, true
			return true, nil
		case wmErr:
			return true, c.wireErrFrom(body)
		default:
			return true, c.wireProtoErr("unexpected frame type %#x in watch stream", typ)
		}
	})
	if !handled || err != nil {
		return JobStatus{}, handled, err
	}
	if !sawFinal {
		return JobStatus{}, true, c.wireProtoErr("watch stream ended without a terminal status")
	}
	return final, true, nil
}

func (c *Client) wireBatch(ctx context.Context, spec BatchSpec, onPoint func(BatchPoint)) (BatchResult, bool, error) {
	pts := make([]BatchPoint, len(spec.Specs))
	seen := make([]bool, len(spec.Specs))
	count := 0
	var res BatchResult
	sawDone := false
	handled, err := c.wireStream(ctx, wmBatch, encodeMsg(wireBatchSpec{Specs: spec.Specs}), func(typ byte, body []byte) (bool, error) {
		switch typ {
		case wmPoint:
			var wp wirePoint
			if err := decodeMsg(body, &wp); err != nil {
				return true, c.wireProtoErr("bad point frame: %v", err)
			}
			if wp.Index < 0 || wp.Index >= len(pts) {
				return true, c.wireProtoErr("point index %d out of range", wp.Index)
			}
			// Metrics are derived client-side: same deterministic function
			// the server's JSON path uses, so both paths are byte-identical.
			pt := BatchPoint{Index: wp.Index, Worker: wp.Worker, Status: PayloadFor(wp.Status.status())}
			if !seen[wp.Index] {
				seen[wp.Index] = true
				count++
			}
			pts[wp.Index] = pt
			if onPoint != nil {
				onPoint(pt)
			}
			return false, nil
		case wmBatchDone:
			var bd wireBatchDone
			if err := decodeMsg(body, &bd); err != nil {
				return true, c.wireProtoErr("bad batch-done frame: %v", err)
			}
			res = BatchResult{Points: pts, Failed: bd.Failed}
			sawDone = true
			return true, nil
		case wmErr:
			return true, c.wireErrFrom(body)
		default:
			return true, c.wireProtoErr("unexpected frame type %#x in batch stream", typ)
		}
	})
	if !handled || err != nil {
		return BatchResult{}, handled, err
	}
	if !sawDone || count != len(pts) {
		return BatchResult{}, true, c.wireProtoErr("batch stream delivered %d/%d points", count, len(pts))
	}
	return res, true, nil
}
