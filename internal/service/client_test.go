package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"bump/internal/chaos/faultserver"
)

// faultServer runs a fault-injecting handler (see
// internal/chaos/faultserver, shared with the cluster tests) and
// returns a fast-polling client pointed at it.
func faultServer(t *testing.T, h faultserver.Handler) *Client {
	t.Helper()
	c := NewClient(faultserver.New(t, h).URL)
	c.PollInterval = 5 * time.Millisecond
	return c
}

func TestClientNonJSONErrorBody(t *testing.T) {
	c := faultServer(t, faultserver.NonJSON500())
	_, err := c.Job(context.Background(), "j1")
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want APIError, got %v", err)
	}
	if apiErr.Code != http.StatusInternalServerError {
		t.Errorf("code %d, want 500", apiErr.Code)
	}
	if apiErr.Worker != c.Base() {
		t.Errorf("worker %q, want %q", apiErr.Worker, c.Base())
	}
	// The HTML body must not leak into the message; the HTTP status is
	// the fallback.
	if !strings.Contains(apiErr.Message, "500") {
		t.Errorf("message %q does not carry the status", apiErr.Message)
	}
}

func TestClientJSONErrorBody(t *testing.T) {
	c := faultServer(t, faultserver.JSONError(http.StatusNotFound, "no such job"))
	_, err := c.Job(context.Background(), "j1")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != 404 || apiErr.Message != "no such job" {
		t.Fatalf("got %v, want 404 'no such job'", err)
	}
	if !strings.Contains(apiErr.Error(), c.Base()) {
		t.Errorf("error string %q does not identify the worker", apiErr.Error())
	}
}

func TestClientGarbage200Body(t *testing.T) {
	c := faultServer(t, faultserver.Garbage200())
	if _, err := c.Job(context.Background(), "j1"); err == nil || !strings.Contains(err.Error(), "decode") {
		t.Fatalf("garbage 200 body must fail decoding, got %v", err)
	}
}

// TestClientHungServer: a server that accepts and never answers must
// not block calls past RequestTimeout — the bug that used to wedge
// Wait forever against a hung worker.
func TestClientHungServer(t *testing.T) {
	c := faultServer(t, faultserver.Hung())
	c.RequestTimeout = 50 * time.Millisecond

	for name, call := range map[string]func() error{
		"Job":    func() error { _, err := c.Job(context.Background(), "j1"); return err },
		"Submit": func() error { _, err := c.Submit(context.Background(), JobSpec{Mechanism: "bump"}); return err },
		"Health": func() error { _, err := c.Health(context.Background()); return err },
		"Wait":   func() error { _, err := c.Wait(context.Background(), "j1"); return err },
	} {
		start := time.Now()
		err := call()
		if err == nil {
			t.Fatalf("%s against a hung server must fail", name)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("%s blocked %s despite a 50ms request timeout", name, elapsed)
		}
	}
}

func TestClientCanceledContext(t *testing.T) {
	c := faultServer(t, func(w http.ResponseWriter, r *http.Request, stop <-chan struct{}) {
		fmt.Fprint(w, `{}`)
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Job(ctx, "j1"); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled context: %v", err)
	}
	if _, err := c.Submit(ctx, JobSpec{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled context: %v", err)
	}
}

// TestClientWaitCanceledBetweenPolls: the server always reports the job
// running; Wait must honor its context instead of polling forever.
func TestClientWaitCanceledBetweenPolls(t *testing.T) {
	c := faultServer(t, func(w http.ResponseWriter, r *http.Request, stop <-chan struct{}) {
		fmt.Fprint(w, `{"id":"j1","state":"running"}`)
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Wait(ctx, "j1")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("Wait ignored its context")
	}
}

// TestClientSlowSSE: an events stream that dribbles forever is
// abandoned cleanly when the caller's context expires, delivering the
// events received so far.
func TestClientSlowSSE(t *testing.T) {
	c := faultServer(t, faultserver.SlowSSE(20*time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	var got int
	err := c.Events(ctx, "j1", func(ev Event) error {
		if ev.Name == "progress" {
			got++
		}
		return nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("slow stream: %v", err)
	}
	if got == 0 {
		t.Error("no events delivered before abandoning the slow stream")
	}
}

// TestClientSSEConnectTimeout: a server that hangs before sending SSE
// headers is bounded by RequestTimeout even though streams have no
// overall deadline.
func TestClientSSEConnectTimeout(t *testing.T) {
	c := faultServer(t, faultserver.Hung())
	c.RequestTimeout = 50 * time.Millisecond
	start := time.Now()
	err := c.Events(context.Background(), "j1", func(Event) error { return nil })
	if err == nil {
		t.Fatal("hung SSE connect must fail")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("SSE connect ignored the request timeout")
	}
}

// TestClientEventsCallbackError: fn's error aborts the stream and
// propagates.
func TestClientEventsCallbackError(t *testing.T) {
	c := faultServer(t, func(w http.ResponseWriter, r *http.Request, stop <-chan struct{}) {
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, "event: progress\ndata: {}\n\n")
	})
	sentinel := errors.New("stop")
	if err := c.Events(context.Background(), "j1", func(Event) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("callback error not propagated: %v", err)
	}
}

// TestClientAgainstRealServer exercises the happy path of the new
// client surface (Cancel, Events, Batch) against a live pool handler.
func TestClientAgainstRealServer(t *testing.T) {
	srv, _ := newTestServer(t, Options{Workers: 2})
	c := NewClient(srv.URL)
	c.PollInterval = 10 * time.Millisecond

	// Batch: points stream in and the aggregate is ordered.
	specs := []JobSpec{specFixture(), specFixture(), specFixture()}
	specs[1].Seed = 2
	specs[2].Seed = 3
	var streamed int
	res, err := c.Batch(context.Background(), BatchSpec{Specs: specs}, func(BatchPoint) { streamed++ })
	if err != nil {
		t.Fatal(err)
	}
	if streamed != len(specs) || res.Failed != 0 || len(res.Points) != len(specs) {
		t.Fatalf("batch: streamed=%d failed=%d points=%d", streamed, res.Failed, len(res.Points))
	}
	for i, pt := range res.Points {
		if pt.Index != i || pt.Status.Result == nil {
			t.Fatalf("point %d misordered or missing result", i)
		}
	}
	payloads, err := res.Results()
	if err != nil || len(payloads) != len(specs) {
		t.Fatalf("Results(): %v", err)
	}

	// Events on a fresh long job, then Cancel it mid-stream.
	long := longSpec()
	st, err := c.Submit(context.Background(), long)
	if err != nil {
		t.Fatal(err)
	}
	sawTerminal := ""
	done := make(chan error, 1)
	go func() {
		done <- c.Events(context.Background(), st.ID, func(ev Event) error {
			if ev.Terminal() {
				sawTerminal = ev.Name
			}
			return nil
		})
	}()
	time.Sleep(20 * time.Millisecond)
	if _, err := c.Cancel(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if sawTerminal != string(StateCanceled) {
		t.Fatalf("terminal event %q, want canceled", sawTerminal)
	}

	// Empty batch is rejected.
	if _, err := c.Batch(context.Background(), BatchSpec{}, nil); err == nil {
		t.Fatal("empty batch must be rejected")
	}
}
