package service

import (
	"bytes"
	"container/heap"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"bump/internal/obs"
	"bump/internal/sim"
	"bump/internal/snapshot"
)

// State is a job's lifecycle position.
type State string

// Job lifecycle: queued → running → {done, failed, canceled}. A
// cache-hit submission is born done.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Options configures a Pool. Zero values pick production defaults.
type Options struct {
	// Workers bounds concurrent simulations (default: GOMAXPROCS, which
	// respects user and cgroup CPU limits).
	Workers int
	// SimWorkers is the default in-run shard count for jobs that do not
	// set spec.Workers (0 = sequential). A resource knob only: results,
	// hashes and coalescing are identical at any value.
	SimWorkers int
	// CacheEntries sizes the LRU result cache (default 256).
	CacheEntries int
	// RetainJobs bounds terminal job records kept for status queries
	// (default 4096; oldest are dropped first).
	RetainJobs int
	// DefaultTimeout applies to jobs that do not set TimeoutMS
	// (default: no timeout).
	DefaultTimeout time.Duration
	// ProgressInterval is the cycle stride between progress events
	// (default: 1/64 of each run).
	ProgressInterval uint64
	// WarmStarts enables the warm-checkpoint store: jobs that share a
	// warmup trajectory (identical configs up to the measured
	// parameters — MeasureCycles and MaxRowHitStreak) simulate one
	// canonical warmup (measured parameters at their zero values),
	// checkpoint it, and all measure from the restored state. A sweep
	// over a measured parameter then costs one warmup total, and every
	// point's result is a deterministic function of its own config,
	// independent of job order. Off by default: clients opt in to the
	// shared-warmup methodology explicitly (a point with non-zero
	// measured parameters applies them in the measurement window only,
	// which differs from its cold whole-run-under-policy result).
	WarmStarts bool
	// WarmEntries bounds retained warm checkpoints (default 16).
	WarmEntries int
	// WarmBackend layers a durable tier (internal/blob) under the warm
	// store: checkpoints spill to it, survive restarts, and become
	// transferable to peers via /v1/checkpoints/{digest}. Implies
	// WarmStarts when non-nil.
	WarmBackend sim.WarmBackend
	// Metrics, when non-nil, registers the pool's series on the given
	// registry: phase-latency histograms updated on the job path, plus
	// scrape-time collectors adapting PoolStats/CacheStats/WarmStats/
	// ParallelPoolStats (everything /v1/healthz reports).
	Metrics *obs.Registry
	// Tracer, when non-nil, records per-job spans (queue wait, warm-key
	// resolution, restore, trunk extension, warmup, measurement,
	// sequencer barriers, encode) for GET /v1/jobs/{id}/trace. Trace IDs
	// arrive on JobSpec.TraceID or are minted at submit.
	Tracer *obs.Tracer
	// TraceSample additionally records fine-grained per-interval slice
	// spans for one in every TraceSample executions (0 = off, the
	// default — the hot loop stays allocation-free).
	TraceSample int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 256
	}
	if o.RetainJobs <= 0 {
		o.RetainJobs = 4096
	}
	return o
}

// job is the pool-internal record; JobStatus is its exported snapshot.
type job struct {
	id        string
	hash      string
	spec      JobSpec
	cfg       sim.Config
	priority  int
	seq       uint64
	timeout   time.Duration
	traceID   string
	submitted time.Time

	heapIndex int // position in the queue heap; -1 when not queued

	state       State
	cached      bool
	result      sim.Result
	errMsg      string
	progress    sim.Progress
	hasProgress bool

	subs    map[int]chan sim.Progress
	nextSub int
	cancel  context.CancelFunc // set while running
	done    chan struct{}      // closed at terminal state
}

// JobStatus is a point-in-time snapshot of a job.
type JobStatus struct {
	ID       string  `json:"id"`
	Hash     string  `json:"hash"`
	State    State   `json:"state"`
	Cached   bool    `json:"cached,omitempty"`
	Priority int     `json:"priority,omitempty"`
	Spec     JobSpec `json:"spec"`
	// Progress is the latest engine snapshot (running jobs only).
	Progress *sim.Progress `json:"progress,omitempty"`
	// Result is set once State is done.
	Result *sim.Result `json:"result,omitempty"`
	Error  string      `json:"error,omitempty"`
}

// PoolStats summarises pool health (served by /v1/healthz).
type PoolStats struct {
	Workers    int        `json:"workers"`
	Queued     int        `json:"queued"`
	Running    int        `json:"running"`
	Completed  uint64     `json:"completed"`
	Executions uint64     `json:"executions"`
	Coalesced  uint64     `json:"coalesced"`
	Cache      CacheStats `json:"cache"`
	// Warm reports warm-checkpoint reuse (zero value when WarmStarts is
	// off).
	Warm sim.WarmStats `json:"warm"`
	// Parallel reports in-run shard parallelism and the CPU-token budget
	// bounding pool×shard concurrency.
	Parallel ParallelPoolStats `json:"parallel"`
}

// ParallelPoolStats aggregates the parallel engine's work across the
// pool's runs, plus the token budget that keeps pool-level and in-run
// parallelism from oversubscribing the machine.
type ParallelPoolStats struct {
	// Tokens is the CPU-token budget; TokensInUse is the current
	// aggregate cost of running jobs (a job costs min(max(1, Workers),
	// Tokens) tokens).
	Tokens      int `json:"tokens"`
	TokensInUse int `json:"tokens_in_use"`
	// Runs counts completed runs that used the parallel engine;
	// MaxWorkers is the largest effective shard count observed.
	Runs       uint64 `json:"runs"`
	MaxWorkers int    `json:"max_workers"`
	// Barriers totals epoch barriers across parallel runs;
	// BarriersPerSec and BarrierStallPct are derived from the runners'
	// wall time (barrier rate, and the share of it the coordinator spent
	// waiting on shards).
	Barriers        uint64  `json:"barriers"`
	BarriersPerSec  float64 `json:"barriers_per_sec"`
	BarrierStallPct float64 `json:"barrier_stall_pct"`
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("service: pool is closed")

// ErrUnknownJob is returned for job IDs the pool no longer (or never)
// tracks.
var ErrUnknownJob = errors.New("service: unknown job")

// Pool executes simulation jobs on a bounded set of workers with
// priority scheduling, duplicate coalescing and result caching.
type Pool struct {
	opts  Options
	cache *resultCache
	// warm is the warm-checkpoint store (nil when WarmStarts is off).
	warm *sim.WarmStore
	// tracer records per-job spans; phaseHist holds one latency
	// histogram per phase name. Both nil when observability is off.
	tracer    *obs.Tracer
	phaseHist map[string]*obs.Histogram

	mu     sync.Mutex
	cond   *sync.Cond
	queue  jobQueue
	jobs   map[string]*job
	byHash map[string]*job // active (queued/running) job per config hash
	retain []string        // terminal job ids, oldest first
	seq    uint64
	closed bool

	running    int
	completed  uint64
	executions uint64
	coalesced  uint64

	// CPU-token budget: pool slots cost the job's effective Workers
	// count, so in-run shard parallelism and pool-level job parallelism
	// together stay bounded by max(GOMAXPROCS, Workers option).
	tokens      int
	tokensInUse int
	// Parallel-engine aggregates (runs that used the sharded runner).
	parRuns       uint64
	parMaxWorkers int
	parBarriers   uint64
	parStallNs    int64
	parRunNs      int64

	wg sync.WaitGroup
}

// NewPool starts a pool with opts' worker count.
func NewPool(opts Options) *Pool {
	p := &Pool{
		opts:   opts.withDefaults(),
		jobs:   make(map[string]*job),
		byHash: make(map[string]*job),
	}
	p.cache = newResultCache(p.opts.CacheEntries)
	p.tracer = p.opts.Tracer
	if p.opts.Metrics != nil {
		p.phaseHist = make(map[string]*obs.Histogram)
		for _, name := range []string{
			"queue", "warm.resolve", "restore", "trunk.extend",
			"warmup", "measure", "encode", "execute", "parallel.barriers",
		} {
			p.phaseHist[name] = p.opts.Metrics.Histogram(
				"bump_sim_phase_seconds",
				"Simulation job phase latency in seconds.",
				obs.DurationBuckets, "phase", name)
		}
		RegisterPoolCollectors(p.opts.Metrics, p)
	}
	p.tokens = runtime.GOMAXPROCS(0)
	if p.opts.Workers > p.tokens {
		p.tokens = p.opts.Workers
	}
	if p.opts.WarmStarts || p.opts.WarmBackend != nil {
		p.warm = sim.NewWarmStoreBacked(p.opts.WarmEntries, p.opts.WarmBackend)
	}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < p.opts.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Submit enqueues a job (or joins an equivalent one). Three outcomes:
// a cached result returns a job born done; a hash matching an active
// job coalesces onto it (the returned status carries the *existing*
// job's ID — both submitters observe one execution); otherwise a fresh
// job is queued.
func (p *Pool) Submit(spec JobSpec) (JobStatus, error) {
	cfg, err := spec.Config()
	if err != nil {
		return JobStatus{}, err
	}
	hash, err := Hash(cfg)
	if err != nil {
		return JobStatus{}, err
	}
	// Mint the trace ID at submit when no upstream layer has: every span
	// this job produces anywhere in the fleet shares it.
	if p.tracer != nil && spec.TraceID == "" {
		spec.TraceID = obs.NewTraceID()
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return JobStatus{}, ErrClosed
	}

	// Coalesce onto an in-flight duplicate; a higher-priority duplicate
	// promotes the queued original.
	if active, ok := p.byHash[hash]; ok {
		p.coalesced++
		if spec.Priority > active.priority && active.heapIndex >= 0 {
			active.priority = spec.Priority
			heap.Fix(&p.queue, active.heapIndex)
		}
		if p.tracer != nil {
			p.tracer.Instant(active.id, "coalesced", time.Now(),
				obs.SpanArg{Key: "joiner_trace_id", Val: spec.TraceID})
		}
		return p.statusLocked(active), nil
	}

	j := p.newJobLocked(spec, cfg, hash)
	if res, ok := p.cache.get(hash); ok {
		j.state = StateDone
		j.cached = true
		j.result = res
		if p.tracer != nil {
			p.tracer.Instant(j.id, "cache.hit", time.Now(),
				obs.SpanArg{Key: "hash", Val: j.hash})
		}
		close(j.done)
		p.retainTerminalLocked(j)
		return p.statusLocked(j), nil
	}

	j.state = StateQueued
	p.byHash[hash] = j
	heap.Push(&p.queue, j)
	p.cond.Signal()
	return p.statusLocked(j), nil
}

func (p *Pool) newJobLocked(spec JobSpec, cfg sim.Config, hash string) *job {
	p.seq++
	timeout := p.opts.DefaultTimeout
	if spec.TimeoutMS > 0 {
		timeout = time.Duration(spec.TimeoutMS) * time.Millisecond
	}
	j := &job{
		id:        fmt.Sprintf("j%08d", p.seq),
		hash:      hash,
		spec:      spec,
		cfg:       cfg,
		priority:  spec.Priority,
		seq:       p.seq,
		timeout:   timeout,
		traceID:   spec.TraceID,
		submitted: time.Now(),
		heapIndex: -1,
		done:      make(chan struct{}),
	}
	if p.tracer != nil {
		j.traceID = p.tracer.Begin(j.id, j.traceID)
		j.spec.TraceID = j.traceID
	}
	p.jobs[j.id] = j
	return j
}

// span records a completed interval on a job's trace (no-op without a
// tracer).
func (p *Pool) span(j *job, name string, start, end time.Time, args ...obs.SpanArg) {
	if p.tracer != nil {
		p.tracer.Span(j.id, name, start, end, args...)
	}
}

// observePhase feeds the bump_sim_phase_seconds histogram for one phase
// (no-op without a metrics registry).
func (p *Pool) observePhase(name string, seconds float64) {
	if h, ok := p.phaseHist[name]; ok {
		h.Observe(seconds)
	}
}

// Job returns a job's current status.
func (p *Pool) Job(id string) (JobStatus, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	return p.statusLocked(j), nil
}

// ResultByHash returns the cached result for a config hash, if present.
func (p *Pool) ResultByHash(hash string) (sim.Result, bool) {
	return p.cache.get(hash)
}

// Wait blocks until the job reaches a terminal state (or ctx expires)
// and returns its final status.
func (p *Pool) Wait(ctx context.Context, id string) (JobStatus, error) {
	p.mu.Lock()
	j, ok := p.jobs[id]
	p.mu.Unlock()
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.statusLocked(j), nil
}

// Run is the synchronous convenience path (cmd/sweep's in-process
// mode): submit, wait, and unwrap the result.
func (p *Pool) Run(ctx context.Context, spec JobSpec) (sim.Result, error) {
	st, err := p.Submit(spec)
	if err != nil {
		return sim.Result{}, err
	}
	st, err = p.Wait(ctx, st.ID)
	if err != nil {
		return sim.Result{}, err
	}
	switch st.State {
	case StateDone:
		return *st.Result, nil
	case StateCanceled:
		return sim.Result{}, sim.ErrCanceled
	default:
		return sim.Result{}, fmt.Errorf("service: job %s %s: %s", st.ID, st.State, st.Error)
	}
}

// Subscribe returns a channel of progress snapshots for a job. The
// channel closes when the job reaches a terminal state (read the final
// status via Job). The returned cancel function detaches the
// subscription; it is safe to call multiple times. Slow subscribers
// lose intermediate snapshots, never the closure.
func (p *Pool) Subscribe(id string) (<-chan sim.Progress, func(), error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	if !ok {
		return nil, nil, ErrUnknownJob
	}
	ch := make(chan sim.Progress, 16)
	if j.state.Terminal() {
		close(ch)
		return ch, func() {}, nil
	}
	if j.subs == nil {
		j.subs = make(map[int]chan sim.Progress)
	}
	key := j.nextSub
	j.nextSub++
	j.subs[key] = ch
	cancel := func() {
		p.mu.Lock()
		defer p.mu.Unlock()
		if c, ok := j.subs[key]; ok {
			delete(j.subs, key)
			close(c)
		}
	}
	return ch, cancel, nil
}

// Cancel aborts a job: a queued job is dequeued immediately, a running
// one has its context canceled (the simulation stops at the next hook
// interval). Returns false for unknown or already-terminal jobs.
func (p *Pool) Cancel(id string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	if !ok || j.state.Terminal() {
		return false
	}
	if j.heapIndex >= 0 { // still queued
		heap.Remove(&p.queue, j.heapIndex)
		j.state = StateCanceled
		p.finishLocked(j)
		return true
	}
	if j.cancel != nil {
		j.cancel()
		p.cond.Broadcast() // a token-blocked worker re-checks its context
	}
	return true
}

// recordParallel folds one finished run's parallel-engine statistics
// into the pool aggregates.
func (p *Pool) recordParallel(st sim.ParallelStats) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.parRuns++
	if st.Workers > p.parMaxWorkers {
		p.parMaxWorkers = st.Workers
	}
	p.parBarriers += st.Barriers
	p.parStallNs += st.BarrierStallNs
	p.parRunNs += st.RunNs
}

// Stats snapshots pool health.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	st := PoolStats{
		Workers:    p.opts.Workers,
		Queued:     len(p.queue),
		Running:    p.running,
		Completed:  p.completed,
		Executions: p.executions,
		Coalesced:  p.coalesced,
		Parallel: ParallelPoolStats{
			Tokens:      p.tokens,
			TokensInUse: p.tokensInUse,
			Runs:        p.parRuns,
			MaxWorkers:  p.parMaxWorkers,
			Barriers:    p.parBarriers,
		},
	}
	if p.parRunNs > 0 {
		secs := float64(p.parRunNs) / 1e9
		st.Parallel.BarriersPerSec = float64(p.parBarriers) / secs
		st.Parallel.BarrierStallPct = 100 * float64(p.parStallNs) / float64(p.parRunNs)
	}
	p.mu.Unlock()
	st.Cache = p.cache.stats()
	if p.warm != nil {
		st.Warm = p.warm.Stats()
	}
	return st
}

// WarmKeys lists the warm-checkpoint digests this pool can serve (the
// memory tier plus any durable backend), sorted — advertised in
// heartbeats so peers know where to fetch a checkpoint from. Nil when
// warm starts are off.
func (p *Pool) WarmKeys() []string {
	if p.warm == nil {
		return nil
	}
	return p.warm.Keys()
}

// WarmCheckpoint returns the raw warm checkpoint for a digest, served
// by GET /v1/checkpoints/{digest}.
func (p *Pool) WarmCheckpoint(key string) ([]byte, bool) {
	if p.warm == nil {
		return nil, false
	}
	return p.warm.Checkpoint(key)
}

// InstallWarmCheckpoint publishes a checkpoint transferred from a peer:
// the bytes are validated as a well-formed snapshot container before
// they can satisfy any run. The digest key is trusted from the caller —
// WarmKey digests are config hashes, not content hashes.
func (p *Pool) InstallWarmCheckpoint(key string, data []byte) error {
	if p.warm == nil {
		return errors.New("service: warm starts are disabled")
	}
	if _, err := snapshot.NewReader(bytes.NewReader(data)); err != nil {
		return fmt.Errorf("service: checkpoint %s: %w", key, err)
	}
	p.warm.Install(key, data)
	return nil
}

// Close shuts the pool down: queued jobs are canceled, running jobs'
// contexts are canceled (they stop at the next hook interval), and
// Close returns once every worker has exited.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		for len(p.queue) > 0 {
			j := heap.Pop(&p.queue).(*job)
			j.state = StateCanceled
			p.finishLocked(j)
		}
		for _, j := range p.jobs {
			if j.state == StateRunning && j.cancel != nil {
				j.cancel()
			}
		}
		p.cond.Broadcast()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// worker pops and executes jobs until the pool closes.
func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 {
			p.mu.Unlock()
			return
		}
		j := heap.Pop(&p.queue).(*job)
		j.state = StateRunning
		p.running++
		p.executions++
		// Acquire the job's CPU tokens: a Workers=N job costs N of the
		// shared budget, so pool×shard concurrency never oversubscribes.
		// The job is already claimed (other workers keep draining the
		// queue), and cost <= tokens, so every waiter eventually runs.
		if j.cfg.Workers == 0 && p.opts.SimWorkers > 0 {
			j.cfg.Workers = p.opts.SimWorkers
		}
		cost := j.cfg.Workers
		if cost < 1 {
			cost = 1
		}
		if cost > p.tokens {
			cost = p.tokens
		}
		ctx, cancel := context.WithCancel(context.Background())
		if j.timeout > 0 {
			ctx, cancel = context.WithTimeout(context.Background(), j.timeout)
		}
		j.cancel = cancel // set before the token wait so Cancel reaches a token-blocked job
		for p.tokensInUse+cost > p.tokens && !p.closed && ctx.Err() == nil {
			p.cond.Wait()
		}
		p.tokensInUse += cost
		p.mu.Unlock()

		started := time.Now()
		p.span(j, "queue", j.submitted, started,
			obs.SpanArg{Key: "priority", Val: j.priority})
		p.observePhase("queue", started.Sub(j.submitted).Seconds())

		hooks := sim.Hooks{
			Interval: p.opts.ProgressInterval,
			Progress: func(pr sim.Progress) { p.publish(j, pr) },
			Cancel:   func() bool { return ctx.Err() != nil },
			Parallel: func(st sim.ParallelStats) {
				p.recordParallel(st)
				if st.Barriers > 0 {
					// The engine reports aggregate stall, not per-barrier
					// intervals; render it as one synthetic span ending now.
					end := time.Now()
					p.span(j, "parallel.barriers", end.Add(-time.Duration(st.BarrierStallNs)), end,
						obs.SpanArg{Key: "barriers", Val: st.Barriers},
						obs.SpanArg{Key: "workers", Val: st.Workers})
					p.observePhase("parallel.barriers", float64(st.BarrierStallNs)/1e9)
				}
			},
		}
		if p.tracer != nil || p.phaseHist != nil {
			hooks.Phase = func(name string, start, end time.Time) {
				p.span(j, name, start, end)
				p.observePhase(name, end.Sub(start).Seconds())
			}
		}
		// Sampled jobs additionally trace per-interval slices — fine-
		// grained, so opt-in via TraceSample (1 in N executions).
		if p.tracer != nil && p.opts.TraceSample > 0 && j.seq%uint64(p.opts.TraceSample) == 0 {
			inner := hooks.Progress
			last := started
			var lastCycle uint64
			hooks.Progress = func(pr sim.Progress) {
				inner(pr)
				now := time.Now()
				name := "slice.warmup"
				if pr.Measuring {
					name = "slice.measure"
				}
				p.span(j, name, last, now,
					obs.SpanArg{Key: "cycle", Val: pr.Cycle},
					obs.SpanArg{Key: "from_cycle", Val: lastCycle})
				last, lastCycle = now, pr.Cycle
			}
		}
		var res sim.Result
		var err error
		if p.warm != nil {
			res, err = p.warm.RunWithHooks(j.cfg, hooks)
		} else {
			res, err = sim.RunOneWithHooks(j.cfg, hooks)
		}
		timedOut := errors.Is(ctx.Err(), context.DeadlineExceeded)
		cancel()

		finished := time.Now()
		p.span(j, "execute", started, finished,
			obs.SpanArg{Key: "hash", Val: j.hash},
			obs.SpanArg{Key: "workers", Val: j.cfg.Workers})
		p.observePhase("execute", finished.Sub(started).Seconds())

		p.mu.Lock()
		p.running--
		p.tokensInUse -= cost
		p.cond.Broadcast() // wake token waiters (Signal could pick a queue waiter)
		j.cancel = nil
		switch {
		case err == nil:
			j.state = StateDone
			j.result = res
			p.cache.put(j.hash, res)
		case errors.Is(err, sim.ErrCanceled) && timedOut:
			j.state = StateFailed
			j.errMsg = fmt.Sprintf("timeout after %s", j.timeout)
		case errors.Is(err, sim.ErrCanceled):
			j.state = StateCanceled
		default:
			j.state = StateFailed
			j.errMsg = err.Error()
		}
		p.finishLocked(j)
		p.mu.Unlock()
	}
}

// publish delivers a progress snapshot to the job record and its
// subscribers (drop-on-full: a stalled subscriber only loses
// intermediate snapshots).
func (p *Pool) publish(j *job, pr sim.Progress) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j.progress = pr
	j.hasProgress = true
	for _, ch := range j.subs {
		select {
		case ch <- pr:
		default:
		}
	}
}

// finishLocked moves a job into its (already set) terminal state:
// releases the hash reservation, closes subscriber channels and the
// done gate, and enrolls the record in the bounded retention window.
func (p *Pool) finishLocked(j *job) {
	if p.byHash[j.hash] == j {
		delete(p.byHash, j.hash)
	}
	for k, ch := range j.subs {
		delete(j.subs, k)
		close(ch)
	}
	close(j.done)
	p.completed++
	p.retainTerminalLocked(j)
}

// retainTerminalLocked bounds the terminal-job history.
func (p *Pool) retainTerminalLocked(j *job) {
	p.retain = append(p.retain, j.id)
	for len(p.retain) > p.opts.RetainJobs {
		delete(p.jobs, p.retain[0])
		p.retain = p.retain[1:]
	}
}

// statusLocked snapshots a job (result and progress are copied so the
// caller can use them outside the lock).
func (p *Pool) statusLocked(j *job) JobStatus {
	st := JobStatus{
		ID:       j.id,
		Hash:     j.hash,
		State:    j.state,
		Cached:   j.cached,
		Priority: j.priority,
		Spec:     j.spec,
		Error:    j.errMsg,
	}
	if j.hasProgress && !j.state.Terminal() {
		pr := j.progress
		st.Progress = &pr
	}
	if j.state == StateDone {
		r := j.result
		st.Result = &r
	}
	return st
}
