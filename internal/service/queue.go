package service

// jobQueue is a max-heap of queued jobs ordered by (priority desc,
// submission order asc): higher priority runs first, FIFO within a
// priority level. It is guarded by the owning Pool's mutex.
type jobQueue []*job

func (q jobQueue) Len() int { return len(q) }

func (q jobQueue) Less(i, j int) bool {
	if q[i].priority != q[j].priority {
		return q[i].priority > q[j].priority
	}
	return q[i].seq < q[j].seq
}

func (q jobQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].heapIndex = i
	q[j].heapIndex = j
}

func (q *jobQueue) Push(x any) {
	j := x.(*job)
	j.heapIndex = len(*q)
	*q = append(*q, j)
}

func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.heapIndex = -1
	*q = old[:n-1]
	return j
}
