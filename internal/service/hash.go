package service

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"reflect"

	"bump/internal/sim"
)

// ErrNotHashable marks configurations whose identity cannot be captured
// by value — today, configs carrying a Streams hook (the stream is code,
// not data, so two hooks can never be proven equivalent).
var ErrNotHashable = errors.New("service: config with custom Streams is not hashable")

// hashVersion is bumped whenever the canonical encoding (or the meaning
// of an encoded field) changes, so stale cached results can never be
// returned across incompatible versions.
// v2: sim.Config gained the Scenario field (walked canonically like the
// rest of the structure).
const hashVersion = "bump-config-v2"

// Hash returns the canonical content hash of a resolved configuration:
// two configs hash equal iff every identity-bearing field is equal. The
// encoding walks the config structure reflectively in declared field
// order, so adding a field to any config struct automatically changes
// the hash space (no silently-unhashed knobs).
func Hash(cfg sim.Config) (string, error) {
	if cfg.Streams != nil {
		return "", ErrNotHashable
	}
	h := sha256.New()
	io.WriteString(h, hashVersion)
	if err := writeCanonical(h, reflect.ValueOf(cfg), "cfg"); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// HashSpec resolves and hashes a job spec in one step.
func HashSpec(spec JobSpec) (string, error) {
	cfg, err := spec.Config()
	if err != nil {
		return "", err
	}
	return Hash(cfg)
}

// writeCanonical emits a deterministic byte encoding of v: structs
// recurse in declared field order, scalars print as "path=value\n".
// Func-typed fields must be nil (checked by Hash for Streams; any other
// non-nil func is an error so it can never be silently ignored).
func writeCanonical(w io.Writer, v reflect.Value, path string) error {
	switch v.Kind() {
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				return fmt.Errorf("service: unexported config field %s.%s", path, f.Name)
			}
			if err := writeCanonical(w, v.Field(i), path+"."+f.Name); err != nil {
				return err
			}
		}
		return nil
	case reflect.Func:
		if !v.IsNil() {
			return fmt.Errorf("service: config field %s holds code and cannot be hashed", path)
		}
		return nil
	case reflect.Slice, reflect.Array:
		fmt.Fprintf(w, "%s.len=%d\n", path, v.Len())
		for i := 0; i < v.Len(); i++ {
			if err := writeCanonical(w, v.Index(i), fmt.Sprintf("%s[%d]", path, i)); err != nil {
				return err
			}
		}
		return nil
	case reflect.Bool, reflect.String,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64:
		fmt.Fprintf(w, "%s=%v\n", path, v.Interface())
		return nil
	default:
		// Maps, pointers, channels, interfaces: no config struct uses
		// them today; fail loudly if one appears rather than hash it
		// non-deterministically.
		return fmt.Errorf("service: cannot canonically encode %s (kind %s)", path, v.Kind())
	}
}
