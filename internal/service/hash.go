package service

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"reflect"
	"strconv"
	"sync"

	"bump/internal/sim"
)

// ErrNotHashable marks configurations whose identity cannot be captured
// by value — today, configs carrying a Streams hook (the stream is code,
// not data, so two hooks can never be proven equivalent).
var ErrNotHashable = errors.New("service: config with custom Streams is not hashable")

// hashVersion is bumped whenever the canonical encoding (or the meaning
// of an encoded field) changes, so stale cached results can never be
// returned across incompatible versions.
// v2: sim.Config gained the Scenario field (walked canonically like the
// rest of the structure).
// v3: sim.Config gained ForkAt and ForkCycles (checkpoint-tree sweeps).
// v4: sim.Config gained Workers; it is zeroed before the walk (a
// resource knob must never split job identity — a Workers=8 submit
// coalesces with, and is served from the cache of, a sequential one).
const hashVersion = "bump-config-v4"

// canonBuf holds the reusable scratch state of one canonical encoding:
// the output bytes and the current field path. Hashing runs on every
// submit, so the encoder appends into pooled buffers instead of
// allocating per field.
type canonBuf struct {
	out  []byte
	path []byte
}

var canonPool = sync.Pool{New: func() any { return new(canonBuf) }}

var stringerType = reflect.TypeOf((*fmt.Stringer)(nil)).Elem()

// Hash returns the canonical content hash of a resolved configuration:
// two configs hash equal iff every identity-bearing field is equal. The
// encoding walks the config structure reflectively in declared field
// order, so adding a field to any config struct automatically changes
// the hash space (no silently-unhashed knobs).
func Hash(cfg sim.Config) (string, error) {
	if cfg.Streams != nil {
		return "", ErrNotHashable
	}
	cfg.Workers = 0 // execution-resource knob, not identity
	b := canonPool.Get().(*canonBuf)
	defer canonPool.Put(b)
	b.out = append(b.out[:0], hashVersion...)
	b.path = append(b.path[:0], "cfg"...)
	if err := b.writeCanonical(reflect.ValueOf(cfg)); err != nil {
		return "", err
	}
	sum := sha256.Sum256(b.out)
	return hex.EncodeToString(sum[:]), nil
}

// HashSpec resolves and hashes a job spec in one step.
func HashSpec(spec JobSpec) (string, error) {
	cfg, err := spec.Config()
	if err != nil {
		return "", err
	}
	return Hash(cfg)
}

// writeCanonical appends a deterministic byte encoding of v: structs
// recurse in declared field order, scalars print as "path=value\n"
// (value formatted exactly as fmt's %v would — the encoding predates
// this allocation-free encoder and must stay byte-identical to it).
// Func-typed fields must be nil (checked by Hash for Streams; any other
// non-nil func is an error so it can never be silently ignored).
func (b *canonBuf) writeCanonical(v reflect.Value) error {
	switch v.Kind() {
	case reflect.Struct:
		t := v.Type()
		n := len(b.path)
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				return fmt.Errorf("service: unexported config field %s.%s", b.path[:n], f.Name)
			}
			b.path = append(append(b.path[:n], '.'), f.Name...)
			if err := b.writeCanonical(v.Field(i)); err != nil {
				return err
			}
		}
		b.path = b.path[:n]
		return nil
	case reflect.Func:
		if !v.IsNil() {
			return fmt.Errorf("service: config field %s holds code and cannot be hashed", b.path)
		}
		return nil
	case reflect.Slice, reflect.Array:
		n := len(b.path)
		b.out = append(b.out, b.path...)
		b.out = append(b.out, ".len="...)
		b.out = strconv.AppendInt(b.out, int64(v.Len()), 10)
		b.out = append(b.out, '\n')
		for i := 0; i < v.Len(); i++ {
			b.path = append(b.path[:n], '[')
			b.path = strconv.AppendInt(b.path, int64(i), 10)
			b.path = append(b.path, ']')
			if err := b.writeCanonical(v.Index(i)); err != nil {
				return err
			}
		}
		b.path = b.path[:n]
		return nil
	case reflect.Bool, reflect.String,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64:
		b.out = append(b.out, b.path...)
		b.out = append(b.out, '=')
		if v.Type().Implements(stringerType) {
			// %v prints via Stringer (e.g. sim.Mechanism renders as its
			// name, not its ordinal); keep that rendering.
			b.out = append(b.out, v.Interface().(fmt.Stringer).String()...)
			b.out = append(b.out, '\n')
			return nil
		}
		switch v.Kind() {
		case reflect.Bool:
			b.out = strconv.AppendBool(b.out, v.Bool())
		case reflect.String:
			b.out = append(b.out, v.String()...)
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			b.out = strconv.AppendInt(b.out, v.Int(), 10)
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			b.out = strconv.AppendUint(b.out, v.Uint(), 10)
		case reflect.Float32:
			b.out = strconv.AppendFloat(b.out, v.Float(), 'g', -1, 32)
		case reflect.Float64:
			b.out = strconv.AppendFloat(b.out, v.Float(), 'g', -1, 64)
		}
		b.out = append(b.out, '\n')
		return nil
	default:
		// Maps, pointers, channels, interfaces: no config struct uses
		// them today; fail loudly if one appears rather than hash it
		// non-deterministically.
		return fmt.Errorf("service: cannot canonically encode %s (kind %s)", b.path, v.Kind())
	}
}
