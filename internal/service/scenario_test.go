package service

import (
	"context"
	"net/http/httptest"
	"testing"

	"bump/internal/scenario"
)

// scenarioFixture is a scenario job with short windows: the built-in
// phase-swap resolved by name at submit time.
func scenarioFixture() JobSpec {
	return JobSpec{
		Scenario:      "phase-swap",
		Mechanism:     "bump",
		WarmupCycles:  20_000,
		MeasureCycles: 40_000,
	}
}

func TestScenarioSpecResolution(t *testing.T) {
	cfg, err := scenarioFixture().Config()
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Scenario.Enabled() || cfg.Scenario.Name != "phase-swap" {
		t.Fatalf("scenario not resolved: %+v", cfg.Scenario)
	}
	if cfg.Workload.Name != "" {
		t.Errorf("scenario config carries workload %q", cfg.Workload.Name)
	}

	bad := scenarioFixture()
	bad.Workload = "web-search"
	if _, err := bad.Config(); err == nil {
		t.Error("workload+scenario spec accepted")
	}
	unknown := scenarioFixture()
	unknown.Scenario = "no-such"
	if _, err := unknown.Config(); err == nil {
		t.Error("unknown scenario resolved")
	}

	// An inline spec wins over (and works without) a name.
	inline := JobSpec{Mechanism: "bump", ScenarioSpec: scenario.DiurnalShift(16)}
	cfg, err = inline.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Scenario.Name != "diurnal-shift" {
		t.Fatalf("inline scenario not used: %+v", cfg.Scenario.Name)
	}
}

// TestScenarioHashing: the config hash covers the scenario spec
// canonically — equal scenarios hash equal (by name or inline), any
// field tweak separates, and scenarios never collide with stationary
// workloads.
func TestScenarioHashing(t *testing.T) {
	byName := mustHash(t, scenarioFixture())
	if byName != mustHash(t, scenarioFixture()) {
		t.Fatal("identical scenario specs hash differently")
	}

	// The same scenario submitted inline hashes identically to the
	// name-resolved one (both resolve to the same sim.Config), so
	// clients coalesce however they spell the scenario.
	inline := scenarioFixture()
	inline.Scenario = ""
	inline.ScenarioSpec = scenario.PhaseSwap(16)
	if mustHash(t, inline) != byName {
		t.Error("inline spec of the same scenario hashes differently from its name form")
	}

	tweaked := inline
	tweaked.ScenarioSpec.Tenants[0].Phases[0].Accesses++
	if mustHash(t, tweaked) == byName {
		t.Error("duration tweak did not change the hash")
	}
	ramped := scenarioFixture()
	ramped.Scenario = "diurnal-shift"
	if mustHash(t, ramped) == byName {
		t.Error("different scenarios hash equal")
	}
	wl := specFixture()
	wl.WarmupCycles = scenarioFixture().WarmupCycles
	wl.MeasureCycles = scenarioFixture().MeasureCycles
	if mustHash(t, wl) == byName {
		t.Error("scenario and workload configs hash equal")
	}
}

// TestScenarioWarmSweepThroughPool is the CLI acceptance path in
// miniature: sweep -scenario ... -warm submits N points differing only
// in a measured parameter; the pool must simulate exactly one warmup.
func TestScenarioWarmSweepThroughPool(t *testing.T) {
	p := newTestPool(t, Options{Workers: 4, WarmStarts: true})
	const points = 4
	base := scenarioFixture()
	ids := make([]string, points)
	for i := 0; i < points; i++ {
		spec := base
		spec.MaxRowHitStreak = i
		st, err := p.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}
	for _, id := range ids {
		st, err := p.Wait(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("job %s: %s (%s)", id, st.State, st.Error)
		}
	}
	st := p.Stats()
	if st.Warm.Misses != 1 || st.Warm.Hits != points-1 || st.Warm.Skipped != 0 {
		t.Fatalf("scenario warm sweep: %+v, want 1 miss / %d hits / 0 skipped", st.Warm, points-1)
	}
	if st.Warm.WarmupCyclesSimulated != base.WarmupCycles {
		t.Errorf("simulated %d warmup cycles, want exactly one (%d)", st.Warm.WarmupCyclesSimulated, base.WarmupCycles)
	}
}

// TestScenarioJobOverHTTP: an inline scenario spec survives the HTTP
// wire format end to end and coalesces with its duplicate.
func TestScenarioJobOverHTTP(t *testing.T) {
	p := newTestPool(t, Options{Workers: 2})
	srv := httptest.NewServer(NewHandler(p))
	defer srv.Close()
	client := NewClient(srv.URL)

	spec := JobSpec{
		Mechanism:     "bump",
		ScenarioSpec:  scenario.Consolidated(16),
		WarmupCycles:  15_000,
		MeasureCycles: 30_000,
	}
	st, err := client.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := client.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone || fin.Result == nil {
		t.Fatalf("scenario job over HTTP: %s (%s)", fin.State, fin.Error)
	}
	if fin.Result.Workload != "scenario:consolidated" {
		t.Errorf("result labelled %q", fin.Result.Workload)
	}
	// A resubmission hits the result cache by config hash.
	again, err := client.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !again.State.Terminal() || !again.Cached {
		t.Errorf("duplicate scenario submission not served from cache: %+v", again.State)
	}
}
