package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"bump/internal/sim"
)

// Client talks to a bumpd server over the /v1 API. The zero poll
// interval defaults to 250ms.
type Client struct {
	base string
	http *http.Client
	// PollInterval paces Wait's status polling.
	PollInterval time.Duration
}

// NewClient returns a client for a server base URL (e.g.
// "http://localhost:8344").
func NewClient(base string) *Client {
	return &Client{
		base: strings.TrimRight(base, "/"),
		http: &http.Client{Timeout: 30 * time.Second},
	}
}

// APIError is a non-2xx server response; Code carries the HTTP status
// so callers can branch on it (e.g. 404 = not found).
type APIError struct {
	Code    int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("service: server returned %d: %s", e.Code, e.Message)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		apiErr := &APIError{Code: resp.StatusCode, Message: resp.Status}
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			apiErr.Message = e.Error
		}
		return apiErr
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			return fmt.Errorf("service: decode response: %w", err)
		}
	}
	return nil
}

// Submit posts a job spec and returns the server's status snapshot
// (which may already be done on a cache hit).
func (c *Client) Submit(spec JobSpec) (JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return JobStatus{}, err
	}
	req, err := http.NewRequest(http.MethodPost, c.base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return JobStatus{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	var p JobPayload
	if err := c.do(req, &p); err != nil {
		return JobStatus{}, err
	}
	return p.JobStatus, nil
}

// Job fetches a job's current status.
func (c *Client) Job(id string) (JobStatus, error) {
	req, err := http.NewRequest(http.MethodGet, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return JobStatus{}, err
	}
	var p JobPayload
	if err := c.do(req, &p); err != nil {
		return JobStatus{}, err
	}
	return p.JobStatus, nil
}

// ResultByHash fetches a cached result by config hash.
func (c *Client) ResultByHash(hash string) (sim.Result, bool, error) {
	req, err := http.NewRequest(http.MethodGet, c.base+"/v1/results/"+hash, nil)
	if err != nil {
		return sim.Result{}, false, err
	}
	var p ResultPayload
	if err := c.do(req, &p); err != nil {
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.Code == http.StatusNotFound {
			return sim.Result{}, false, nil
		}
		return sim.Result{}, false, err
	}
	return p.Result, true, nil
}

// Health fetches /v1/healthz.
func (c *Client) Health() (HealthPayload, error) {
	req, err := http.NewRequest(http.MethodGet, c.base+"/v1/healthz", nil)
	if err != nil {
		return HealthPayload{}, err
	}
	var h HealthPayload
	if err := c.do(req, &h); err != nil {
		return HealthPayload{}, err
	}
	return h, nil
}

// Wait polls until the job reaches a terminal state or ctx expires.
func (c *Client) Wait(ctx context.Context, id string) (JobStatus, error) {
	poll := c.PollInterval
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	for {
		st, err := c.Job(id)
		if err != nil {
			return JobStatus{}, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return JobStatus{}, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Run submits a spec and blocks for its result — the remote counterpart
// of Pool.Run.
func (c *Client) Run(ctx context.Context, spec JobSpec) (sim.Result, error) {
	st, err := c.Submit(spec)
	if err != nil {
		return sim.Result{}, err
	}
	if !st.State.Terminal() {
		st, err = c.Wait(ctx, st.ID)
		if err != nil {
			return sim.Result{}, err
		}
	}
	if st.State != StateDone || st.Result == nil {
		return sim.Result{}, fmt.Errorf("service: job %s %s: %s", st.ID, st.State, st.Error)
	}
	return *st.Result, nil
}
