package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"bump/internal/sim"
)

// Client talks to a bumpd (or bumpctl) server over the /v1 API. Every
// call takes a context and is additionally bounded by RequestTimeout,
// so a hung server can never block a caller indefinitely — the failure
// surfaces as an error carrying the worker's identity and the cluster
// layer routes around it.
type Client struct {
	base string
	http *http.Client
	// PollInterval paces Wait's status polling (default 250ms).
	PollInterval time.Duration
	// RequestTimeout bounds each non-streaming HTTP call (default 30s).
	// Streaming calls (Events, Batch) are bounded by their context only:
	// a progress stream legitimately outlives any fixed request budget.
	RequestTimeout time.Duration
	// WireAddr pins the server's binary fast-path address ("host:port";
	// an empty host is filled from the base URL). When empty the client
	// discovers it from /v1/healthz on first use.
	WireAddr string
	// DisableWire forces every call onto the HTTP/JSON slow path.
	DisableWire bool

	wire wireState
}

// NewClient returns a client for a server base URL (e.g.
// "http://localhost:8344").
//
// Hot calls (Submit, Job, ResultByHash, Batch, Watch) prefer the
// server's binary wire protocol on persistent pooled connections,
// negotiated at first use and falling back to HTTP/JSON transparently
// — against servers without a wire listener, after transport faults,
// and on wire format-version skew. Both paths return byte-identical
// results.
func NewClient(base string) *Client {
	return &Client{
		base: strings.TrimRight(base, "/"),
		// No http.Client.Timeout: it would sever SSE streams mid-job.
		// Non-streaming calls get per-request context deadlines instead.
		// The transport is shared process-wide for keep-alive reuse.
		http: &http.Client{Transport: sharedTransport},
	}
}

// Close releases the client's pooled wire connections. Safe to skip for
// short-lived clients; idle connections also die with the process.
func (c *Client) Close() { c.closeWire() }

// Base returns the server base URL — the worker's identity in cluster
// topologies.
func (c *Client) Base() string { return c.base }

func (c *Client) requestTimeout() time.Duration {
	if c.RequestTimeout > 0 {
		return c.RequestTimeout
	}
	return 30 * time.Second
}

// APIError is a non-2xx server response; Code carries the HTTP status
// so callers can branch on it (e.g. 404 = not found) and Worker names
// the server that produced it, so cluster failover can attribute the
// failure to the right backend.
type APIError struct {
	Code    int
	Message string
	Worker  string
}

func (e *APIError) Error() string {
	if e.Worker != "" {
		return fmt.Sprintf("service: %s returned %d: %s", e.Worker, e.Code, e.Message)
	}
	return fmt.Sprintf("service: server returned %d: %s", e.Code, e.Message)
}

// doJSON issues a request bounded by ctx plus RequestTimeout and
// decodes the JSON response into out (when non-nil). hdr is optional
// extra header key/value pairs.
func (c *Client) doJSON(ctx context.Context, method, url string, body []byte, out any, hdr ...string) error {
	ctx, cancel := context.WithTimeout(ctx, c.requestTimeout())
	defer cancel()
	ctx = traceConns(ctx)
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for i := 0; i+1 < len(hdr); i += 2 {
		req.Header.Set(hdr[i], hdr[i+1])
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("service: %s %s: %w", c.base, method, err)
	}
	defer resp.Body.Close()
	// 64MB matches the server-side batch request bound: a full
	// MaxBatchPoints aggregate with per-point results must fit.
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("service: %s: read response: %w", c.base, err)
	}
	if resp.StatusCode >= 400 {
		return c.apiError(resp.StatusCode, resp.Status, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("service: %s: decode response: %w", c.base, err)
		}
	}
	return nil
}

// apiError builds an APIError from a non-2xx response, tolerating
// non-JSON bodies (proxies, panics) by falling back to the HTTP status.
func (c *Client) apiError(code int, status string, body []byte) *APIError {
	apiErr := &APIError{Code: code, Message: status, Worker: c.base}
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		apiErr.Message = e.Error
	}
	return apiErr
}

// Submit posts a job spec and returns the server's status snapshot
// (which may already be done on a cache hit).
func (c *Client) Submit(ctx context.Context, spec JobSpec) (JobStatus, error) {
	if st, handled, err := c.wireSubmit(ctx, spec); handled {
		return st, err
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return JobStatus{}, err
	}
	// The spec body already carries trace_id; the header duplicates it
	// for intermediaries that route on headers without parsing bodies.
	var hdr []string
	if spec.TraceID != "" {
		hdr = []string{TraceHeader, spec.TraceID}
	}
	var p JobPayload
	if err := c.doJSON(ctx, http.MethodPost, c.base+"/v1/jobs", body, &p, hdr...); err != nil {
		return JobStatus{}, err
	}
	return p.JobStatus, nil
}

// JobTrace fetches a job's recorded spans as raw Chrome trace-event
// JSON (GET /v1/jobs/{id}/trace). The coordinator uses it to stitch a
// worker's spans onto its own routing timeline.
func (c *Client) JobTrace(ctx context.Context, id string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, c.requestTimeout())
	defer cancel()
	ctx = traceConns(ctx)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/trace", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("service: %s: trace: %w", c.base, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("service: %s: trace: %w", c.base, err)
	}
	if resp.StatusCode >= 400 {
		return nil, c.apiError(resp.StatusCode, resp.Status, data)
	}
	return data, nil
}

// Job fetches a job's current status.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	if st, handled, err := c.wireJob(ctx, id); handled {
		return st, err
	}
	var p JobPayload
	if err := c.doJSON(ctx, http.MethodGet, c.base+"/v1/jobs/"+id, nil, &p); err != nil {
		return JobStatus{}, err
	}
	return p.JobStatus, nil
}

// Cancel aborts a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var p JobPayload
	if err := c.doJSON(ctx, http.MethodDelete, c.base+"/v1/jobs/"+id, nil, &p); err != nil {
		return JobStatus{}, err
	}
	return p.JobStatus, nil
}

// ResultByHash fetches a cached result by config hash.
func (c *Client) ResultByHash(ctx context.Context, hash string) (sim.Result, bool, error) {
	if res, ok, handled, err := c.wireResult(ctx, hash); handled {
		return res, ok, err
	}
	var p ResultPayload
	if err := c.doJSON(ctx, http.MethodGet, c.base+"/v1/results/"+hash, nil, &p); err != nil {
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.Code == http.StatusNotFound {
			return sim.Result{}, false, nil
		}
		return sim.Result{}, false, err
	}
	return p.Result, true, nil
}

// Health fetches /v1/healthz.
func (c *Client) Health(ctx context.Context) (HealthPayload, error) {
	var h HealthPayload
	if err := c.doJSON(ctx, http.MethodGet, c.base+"/v1/healthz", nil, &h); err != nil {
		return HealthPayload{}, err
	}
	return h, nil
}

// Checkpoint fetches a warm checkpoint's raw bytes by digest. ok=false
// means the server does not hold it (not an error).
func (c *Client) Checkpoint(ctx context.Context, digest string) ([]byte, bool, error) {
	ctx, cancel := context.WithTimeout(ctx, c.requestTimeout())
	defer cancel()
	ctx = traceConns(ctx)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/checkpoints/"+digest, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, false, fmt.Errorf("service: %s: checkpoint: %w", c.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		return nil, false, nil
	}
	if resp.StatusCode >= 400 {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return nil, false, c.apiError(resp.StatusCode, resp.Status, data)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, false, fmt.Errorf("service: %s: checkpoint: %w", c.base, err)
	}
	return data, true, nil
}

// FetchCheckpoint asks the server to pull a checkpoint digest from the
// listed peer base URLs (POST /v1/checkpoints/fetch). It returns
// whether the server now holds the digest.
func (c *Client) FetchCheckpoint(ctx context.Context, digest string, sources []string) (bool, error) {
	body, err := json.Marshal(checkpointFetchRequest{Digest: digest, Sources: sources})
	if err != nil {
		return false, err
	}
	var resp checkpointFetchResponse
	if err := c.doJSON(ctx, http.MethodPost, c.base+"/v1/checkpoints/fetch", body, &resp); err != nil {
		return false, err
	}
	return resp.Fetched, nil
}

// Wait polls until the job reaches a terminal state or ctx expires.
// Each poll is individually bounded by RequestTimeout, so a worker that
// hangs mid-wait yields an error instead of blocking forever.
func (c *Client) Wait(ctx context.Context, id string) (JobStatus, error) {
	poll := c.PollInterval
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return JobStatus{}, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return JobStatus{}, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Run submits a spec and blocks for its result — the remote counterpart
// of Pool.Run.
func (c *Client) Run(ctx context.Context, spec JobSpec) (sim.Result, error) {
	st, err := c.Submit(ctx, spec)
	if err != nil {
		return sim.Result{}, err
	}
	if !st.State.Terminal() {
		st, err = c.Wait(ctx, st.ID)
		if err != nil {
			return sim.Result{}, err
		}
	}
	if st.State != StateDone || st.Result == nil {
		return sim.Result{}, fmt.Errorf("service: job %s %s: %s", st.ID, st.State, st.Error)
	}
	return *st.Result, nil
}

// Event is one parsed Server-Sent Event: the event name and its raw
// JSON data payload.
type Event struct {
	Name string
	Data json.RawMessage
}

// Terminal reports whether the event closes a job stream (named after a
// terminal job state, or a batch stream's final aggregate).
func (e Event) Terminal() bool {
	return State(e.Name).Terminal() || e.Name == "batch"
}

// stream issues a streaming request and delivers each SSE event to fn
// until the stream ends, fn returns an error, or ctx is canceled. The
// connection setup (headers received) is bounded by RequestTimeout;
// the stream itself is bounded by ctx only.
func (c *Client) stream(ctx context.Context, method, url string, body []byte, fn func(Event) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ctx = traceConns(ctx)
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set("Accept", "text/event-stream")
	connTimer := time.AfterFunc(c.requestTimeout(), cancel)
	resp, err := c.http.Do(req)
	connTimer.Stop()
	if err != nil {
		return fmt.Errorf("service: %s: stream: %w", c.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return c.apiError(resp.StatusCode, resp.Status, data)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		return fmt.Errorf("service: %s: stream: unexpected content type %q", c.base, ct)
	}

	sc := bufio.NewScanner(resp.Body)
	// The terminal `batch` event carries a whole sweep's aggregate in
	// one data line; allow it to grow to the same 64MB bound as JSON
	// responses.
	sc.Buffer(make([]byte, 64<<10), 64<<20)
	var cur Event
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.Name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = json.RawMessage(strings.TrimPrefix(line, "data: "))
		case line == "":
			if cur.Name != "" {
				if err := fn(cur); err != nil {
					return err
				}
			}
			cur = Event{}
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("service: %s: stream: %w", c.base, err)
	}
	return nil
}

// Events follows a job's SSE progress stream, delivering every event
// (progress snapshots, then one terminal event) to fn. It returns when
// the stream ends, fn errors, or ctx is canceled — a slow or stalled
// stream is abandoned cleanly via ctx.
func (c *Client) Events(ctx context.Context, id string, fn func(Event) error) error {
	return c.stream(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil, fn)
}

// Batch submits a whole sweep in one request (POST /v1/batch) and
// streams per-point completions to onPoint (which may be nil) as they
// finish, returning the aggregate in submission order.
func (c *Client) Batch(ctx context.Context, spec BatchSpec, onPoint func(BatchPoint)) (BatchResult, error) {
	if res, handled, err := c.wireBatch(ctx, spec, onPoint); handled {
		return res, err
	}
	// A wire stream severed mid-batch falls through here and restarts
	// the batch over JSON: onPoint may then see some points twice
	// (delivery is at-least-once across a transport failure), but the
	// pool coalesces re-submitted points so nothing re-executes and the
	// aggregate is unaffected.
	body, err := json.Marshal(spec)
	if err != nil {
		return BatchResult{}, err
	}
	var res BatchResult
	var sawBatch bool
	err = c.stream(ctx, http.MethodPost, c.base+"/v1/batch", body, func(ev Event) error {
		switch ev.Name {
		case "point":
			var pt BatchPoint
			if err := json.Unmarshal(ev.Data, &pt); err != nil {
				return fmt.Errorf("service: %s: decode batch point: %w", c.base, err)
			}
			if onPoint != nil {
				onPoint(pt)
			}
		case "batch":
			if err := json.Unmarshal(ev.Data, &res); err != nil {
				return fmt.Errorf("service: %s: decode batch result: %w", c.base, err)
			}
			sawBatch = true
		case "error":
			var e struct {
				Error string `json:"error"`
			}
			if json.Unmarshal(ev.Data, &e) == nil && e.Error != "" {
				return &APIError{Code: http.StatusInternalServerError, Message: e.Error, Worker: c.base}
			}
			return &APIError{Code: http.StatusInternalServerError, Message: "batch failed", Worker: c.base}
		}
		return nil
	})
	if err != nil {
		return BatchResult{}, err
	}
	if !sawBatch {
		return BatchResult{}, fmt.Errorf("service: %s: batch stream ended without aggregate", c.base)
	}
	return res, nil
}

// Watch follows a job to completion, delivering progress snapshots to
// onProgress (which may be nil) and returning the terminal status —
// the structured form of Events, served over the wire fast path when
// available and the SSE stream otherwise.
func (c *Client) Watch(ctx context.Context, id string, onProgress func(sim.Progress)) (JobStatus, error) {
	if st, handled, err := c.wireWatch(ctx, id, onProgress); handled {
		return st, err
	}
	var final JobStatus
	sawTerminal := false
	err := c.Events(ctx, id, func(ev Event) error {
		switch {
		case ev.Name == "progress":
			if onProgress != nil {
				var pr sim.Progress
				if err := json.Unmarshal(ev.Data, &pr); err != nil {
					return fmt.Errorf("service: %s: decode progress: %w", c.base, err)
				}
				onProgress(pr)
			}
		case State(ev.Name).Terminal():
			var p JobPayload
			if err := json.Unmarshal(ev.Data, &p); err != nil {
				return fmt.Errorf("service: %s: decode terminal event: %w", c.base, err)
			}
			final = p.JobStatus
			sawTerminal = true
		}
		return nil
	})
	if err != nil {
		return JobStatus{}, err
	}
	if !sawTerminal {
		return JobStatus{}, fmt.Errorf("service: %s: event stream ended without a terminal state", c.base)
	}
	return final, nil
}
