package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"bump/internal/obs"
	"bump/internal/sim"
	"bump/internal/snapshot"
)

// Metrics are the headline derived metrics of a completed run, included
// alongside the raw Result so curl/browser clients need no client-side
// arithmetic.
type Metrics struct {
	IPC           float64 `json:"ipc"`
	RowHitRatio   float64 `json:"row_hit_ratio"`
	EPATotalNJ    float64 `json:"epa_nj"`
	ReadCoverage  float64 `json:"read_coverage"`
	ReadOverfetch float64 `json:"read_overfetch"`
	WriteCoverage float64 `json:"write_coverage"`
}

func MetricsFor(r sim.Result) *Metrics {
	return &Metrics{
		IPC:           r.IPC(),
		RowHitRatio:   r.RowHitRatio(),
		EPATotalNJ:    r.EPATotal * 1e9,
		ReadCoverage:  r.ReadCoverage(),
		ReadOverfetch: r.ReadOverfetch(),
		WriteCoverage: r.WriteCoverage(),
	}
}

// JobPayload is the API representation of a job: the status snapshot
// plus derived metrics once done.
type JobPayload struct {
	JobStatus
	Metrics *Metrics `json:"metrics,omitempty"`
}

func PayloadFor(st JobStatus) JobPayload {
	p := JobPayload{JobStatus: st}
	if st.Result != nil {
		p.Metrics = MetricsFor(*st.Result)
	}
	return p
}

// ResultPayload is served by GET /v1/results/{hash}.
type ResultPayload struct {
	Hash    string     `json:"hash"`
	Result  sim.Result `json:"result"`
	Metrics *Metrics   `json:"metrics"`
}

// HealthPayload is served by GET /v1/healthz.
type HealthPayload struct {
	Status string `json:"status"`
	// Version is the snapshot.FormatVersion this build speaks. Warm
	// checkpoints, snapshots and warm keys are not portable across
	// format versions, so a cluster coordinator admits only workers
	// whose version matches its own.
	Version int `json:"version"`
	// Uptime is seconds since this server started.
	Uptime float64   `json:"uptime_s"`
	Stats  PoolStats `json:"stats"`
	// WireAddr is the server's binary fast-path listener ("host:port";
	// the host may be empty — clients fill it from the base URL). Absent
	// when no wire listener is serving.
	WireAddr string `json:"wire_addr,omitempty"`
	// Checkpoints lists the warm-checkpoint digests this server can
	// serve via GET /v1/checkpoints/{digest} (sorted; absent when warm
	// starts are off). The cluster registry mirrors these from probes so
	// failover placements know where to fetch a warm state from.
	Checkpoints []string `json:"checkpoints,omitempty"`
	// Conns reports HTTP connection reuse for the process-wide shared
	// transport.
	Conns ConnStats `json:"conns"`
	// WAL reports a cluster coordinator's durability state (absent on
	// plain workers).
	WAL *WALStats `json:"wal,omitempty"`
}

// WALStats summarises a coordinator's write-ahead log and recovery
// state for /v1/healthz.
type WALStats struct {
	// Durable is false for memory-only coordinators (no -data-dir).
	Durable bool `json:"durable"`
	// Segments/SizeBytes describe the live log files.
	Segments  int   `json:"segments"`
	SizeBytes int64 `json:"size_bytes"`
	// ReplayedRecords/AppendedRecords count WAL records read at startup
	// and written since.
	ReplayedRecords uint64 `json:"replayed_records"`
	AppendedRecords uint64 `json:"appended_records"`
	// TornTailHealed reports that startup truncated a torn final record.
	TornTailHealed bool `json:"torn_tail_healed,omitempty"`
	// Compactions counts checkpoint compactions; LastCompaction is the
	// RFC3339 time of the latest (empty when none).
	Compactions    uint64 `json:"compactions"`
	LastCompaction string `json:"last_compaction,omitempty"`
	// ReplayedJobs is the job-record count recovered at startup;
	// RecoveredJobs how many of those were still in flight and were
	// re-driven.
	ReplayedJobs  int `json:"replayed_jobs"`
	RecoveredJobs int `json:"recovered_jobs"`
	// TrackedJobs/TrackedBatches count currently retained records.
	TrackedJobs    int `json:"tracked_jobs"`
	TrackedBatches int `json:"tracked_batches"`
}

// NewHandler exposes a Pool over HTTP/JSON:
//
//	POST /v1/jobs             submit a JobSpec; 200 when served from
//	                          cache, 202 when queued/coalesced
//	GET  /v1/jobs/{id}        poll a job's status (result when done)
//	GET  /v1/jobs/{id}/events SSE progress stream: `progress` events
//	                          with engine snapshots, then one terminal
//	                          `done`/`failed`/`canceled` event carrying
//	                          the full job payload
//	DELETE /v1/jobs/{id}      cancel a queued or running job
//	POST /v1/batch            submit a whole sweep; SSE `point` events
//	                          as points finish, then one `batch` event
//	                          with the ordered aggregate (plain JSON
//	                          aggregate for non-SSE clients)
//	GET  /v1/results/{hash}   cached result lookup by config hash
//	GET  /v1/healthz          liveness + queue/cache statistics,
//	                          snapshot format version and uptime
//	GET  /v1/checkpoints/{digest}  raw warm checkpoint bytes (404 when
//	                          not held); POST /v1/checkpoints/fetch pulls
//	                          a digest from listed peer sources
func NewHandler(p *Pool) http.Handler {
	return NewHandlerInfo(p, ServerInfo{})
}

// ServerInfo is what a server advertises about itself beyond pool
// statistics — the wire fast-path address plus its observability
// surfaces.
type ServerInfo struct {
	// WireAddr is the binary protocol listener to advertise in
	// /v1/healthz (empty = no wire listener).
	WireAddr string
	// Metrics, when non-nil, is served as Prometheus text at
	// GET /metrics (normally the same registry the pool records into).
	Metrics *obs.Registry
	// Tracer, when non-nil, serves Chrome trace-event JSON at
	// GET /v1/jobs/{id}/trace (normally the pool's tracer).
	Tracer *obs.Tracer
}

// NewHandlerInfo is NewHandler with server self-description.
func NewHandlerInfo(p *Pool, info ServerInfo) http.Handler {
	s := &server{pool: p, info: info, start: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.submit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.job)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.events)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.trace)
	mux.HandleFunc("POST /v1/batch", s.batch)
	mux.HandleFunc("GET /v1/results/{hash}", s.result)
	mux.HandleFunc("GET /v1/healthz", s.healthz)
	mux.HandleFunc("GET /v1/checkpoints/{digest}", s.checkpoint)
	mux.HandleFunc("POST /v1/checkpoints/fetch", s.checkpointFetch)
	mux.HandleFunc("GET /metrics", s.metrics)
	return mux
}

type server struct {
	pool  *Pool
	info  ServerInfo
	start time.Time
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	// The header is the fallback trace-context carrier for clients that
	// cannot touch the spec body; an explicit spec field wins.
	if spec.TraceID == "" {
		spec.TraceID = r.Header.Get(TraceHeader)
	}
	st, err := s.pool.Submit(spec)
	switch {
	case err == nil:
	case err == ErrClosed:
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	code := http.StatusAccepted
	if st.State.Terminal() {
		code = http.StatusOK
	}
	writeJSON(w, code, PayloadFor(st))
}

func (s *server) job(w http.ResponseWriter, r *http.Request) {
	st, err := s.pool.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, PayloadFor(st))
}

func (s *server) cancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.pool.Cancel(id) {
		writeError(w, http.StatusConflict, "job %s is unknown or already terminal", id)
		return
	}
	st, err := s.pool.Job(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, PayloadFor(st))
}

func (s *server) result(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	res, ok := s.pool.ResultByHash(hash)
	if !ok {
		writeError(w, http.StatusNotFound, "no cached result for %s", hash)
		return
	}
	writeJSON(w, http.StatusOK, ResultPayload{Hash: hash, Result: res, Metrics: MetricsFor(res)})
}

func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthPayload{
		Status:      "ok",
		Version:     snapshot.FormatVersion,
		Uptime:      time.Since(s.start).Seconds(),
		Stats:       s.pool.Stats(),
		WireAddr:    s.info.WireAddr,
		Checkpoints: s.pool.WarmKeys(),
		Conns:       SharedConnStats(),
	})
}

// TraceHeader carries the trace ID on HTTP submits, for propagation
// across hops that cannot (or prefer not to) rewrite the spec body.
const TraceHeader = "X-Bump-Trace"

// metrics serves the registry in Prometheus text exposition format.
func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	if s.info.Metrics == nil {
		writeError(w, http.StatusNotFound, "metrics are not enabled")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	s.info.Metrics.WriteText(w)
}

// trace serves a job's recorded spans as Chrome trace-event JSON
// (load in chrome://tracing or Perfetto).
func (s *server) trace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.info.Tracer == nil {
		writeError(w, http.StatusNotFound, "tracing is not enabled")
		return
	}
	exp, ok := s.info.Tracer.Export(id, 1, "bumpd")
	if !ok {
		writeError(w, http.StatusNotFound, "no trace for job %s", id)
		return
	}
	writeJSON(w, http.StatusOK, exp)
}

// checkpoint serves a warm checkpoint's raw bytes by digest — the
// transfer path a failover placement uses to avoid re-simulating a
// warmup the dead worker's peers already hold.
func (s *server) checkpoint(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	data, ok := s.pool.WarmCheckpoint(digest)
	if !ok {
		writeError(w, http.StatusNotFound, "no checkpoint %s", digest)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(data)))
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// checkpointFetchRequest asks a server to pull a warm checkpoint from
// one of the listed peer base URLs (tried in order).
type checkpointFetchRequest struct {
	Digest  string   `json:"digest"`
	Sources []string `json:"sources"`
}

// checkpointFetchResponse reports whether the digest is now held
// locally and which source supplied it ("" when it was already local).
type checkpointFetchResponse struct {
	Fetched bool   `json:"fetched"`
	Source  string `json:"source,omitempty"`
}

func (s *server) checkpointFetch(w http.ResponseWriter, r *http.Request) {
	var req checkpointFetchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid fetch request: %v", err)
		return
	}
	if req.Digest == "" {
		writeError(w, http.StatusBadRequest, "missing digest")
		return
	}
	if _, ok := s.pool.WarmCheckpoint(req.Digest); ok {
		writeJSON(w, http.StatusOK, checkpointFetchResponse{Fetched: true})
		return
	}
	for _, src := range req.Sources {
		c := NewClient(src)
		data, ok, err := c.Checkpoint(r.Context(), req.Digest)
		c.Close()
		if err != nil || !ok {
			continue // dead or checkpoint-less peer: try the next source
		}
		if err := s.pool.InstallWarmCheckpoint(req.Digest, data); err != nil {
			writeError(w, http.StatusBadGateway, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, checkpointFetchResponse{Fetched: true, Source: src})
		return
	}
	writeJSON(w, http.StatusOK, checkpointFetchResponse{Fetched: false})
}

// batch executes a whole sweep in one request. SSE clients (Accept:
// text/event-stream) get a `point` event per completed point and a
// terminal `batch` event with the ordered aggregate; other clients get
// the aggregate as one JSON body once every point is terminal.
func (s *server) batch(w http.ResponseWriter, r *http.Request) {
	var spec BatchSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "invalid batch spec: %v", err)
		return
	}
	if !strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		res, err := RunBatch(r.Context(), s.pool, spec, nil)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, res)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	// onPoint runs serialized (RunBatch guarantees one goroutine at a
	// time), so writes to the stream never interleave.
	res, err := RunBatch(r.Context(), s.pool, spec, func(pt BatchPoint) {
		writeSSE(w, fl, "point", pt)
	})
	if err != nil {
		writeSSE(w, fl, "error", map[string]string{"error": err.Error()})
		return
	}
	writeSSE(w, fl, "batch", res)
}

// events streams a job's progress as Server-Sent Events. Each engine
// snapshot arrives as a `progress` event; the stream ends with one
// terminal event named after the final state.
func (s *server) events(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ch, cancelSub, err := s.pool.Subscribe(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	defer cancelSub()
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	for {
		select {
		case pr, open := <-ch:
			if !open {
				// Terminal: emit the final payload and end the stream.
				if st, err := s.pool.Job(id); err == nil {
					writeSSE(w, fl, string(st.State), PayloadFor(st))
				}
				return
			}
			writeSSE(w, fl, "progress", pr)
		case <-r.Context().Done():
			return
		}
	}
}

func writeSSE(w http.ResponseWriter, fl http.Flusher, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	fl.Flush()
}
