package service

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"bump/internal/sim"
)

// longSpec is big enough that it cannot finish before the test reacts
// (cancel, timeout, priority checks) even on a fast machine.
func longSpec() JobSpec {
	s := specFixture()
	s.MeasureCycles = 200_000_000
	return s
}

func newTestPool(t *testing.T, opts Options) *Pool {
	t.Helper()
	if opts.ProgressInterval == 0 {
		opts.ProgressInterval = 5_000 // frequent cancel polls keep shutdown fast
	}
	p := NewPool(opts)
	t.Cleanup(p.Close)
	return p
}

func TestSubmitRunAndResult(t *testing.T) {
	p := newTestPool(t, Options{Workers: 2})
	res, err := p.Run(context.Background(), specFixture())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.Instructions == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	// The pool's result matches a direct sim run of the same config.
	cfg, err := specFixture().Config()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sim.RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DRAM != direct.DRAM || res.Counters != direct.Counters {
		t.Error("pooled run result diverges from direct sim.RunOne")
	}
}

func TestDuplicateSubmissionsCoalesceToOneExecution(t *testing.T) {
	p := newTestPool(t, Options{Workers: 4})
	const clients = 16
	var wg sync.WaitGroup
	results := make([]sim.Result, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = p.Run(context.Background(), specFixture())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i := 1; i < clients; i++ {
		if results[i].DRAM != results[0].DRAM || results[i].Counters != results[0].Counters {
			t.Fatalf("client %d saw a different result", i)
		}
	}
	if st := p.Stats(); st.Executions != 1 {
		t.Fatalf("%d executions for %d identical submissions, want exactly 1 (coalesced+cached)", st.Executions, clients)
	}
}

func TestCachedResultReturnsWithoutRerun(t *testing.T) {
	p := newTestPool(t, Options{Workers: 1})
	if _, err := p.Run(context.Background(), specFixture()); err != nil {
		t.Fatal(err)
	}
	st, err := p.Submit(specFixture())
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || !st.Cached || st.Result == nil {
		t.Fatalf("resubmission after completion: state=%s cached=%v", st.State, st.Cached)
	}
	if stats := p.Stats(); stats.Executions != 1 {
		t.Fatalf("cache hit triggered a re-run: %d executions", stats.Executions)
	}
}

func TestPriorityOrdersQueue(t *testing.T) {
	p := newTestPool(t, Options{Workers: 1})
	// Occupy the single worker so the next two jobs queue up.
	blocker, err := p.Submit(longSpec())
	if err != nil {
		t.Fatal(err)
	}
	low := specFixture()
	low.Seed = 2
	lowSt, err := p.Submit(low)
	if err != nil {
		t.Fatal(err)
	}
	high := specFixture()
	high.Seed = 3
	high.Priority = 10
	highSt, err := p.Submit(high)
	if err != nil {
		t.Fatal(err)
	}
	// Watch both queued jobs; the single worker runs them serially, so
	// whichever signals first (progress event or stream closure) is the
	// one the queue scheduled first.
	chLow, cancelLow, err := p.Subscribe(lowSt.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancelLow()
	chHigh, cancelHigh, err := p.Subscribe(highSt.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancelHigh()
	if !p.Cancel(blocker.ID) {
		t.Fatal("cancel blocker")
	}
	// The high-priority job, submitted second, must run first.
	select {
	case <-chHigh:
	case <-chLow:
		t.Error("low-priority job ran before the high-priority one")
	}
	for _, id := range []string{highSt.ID, lowSt.ID} {
		if st, err := p.Wait(context.Background(), id); err != nil || st.State != StateDone {
			t.Fatalf("job %s: state %v err %v", id, st.State, err)
		}
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	p := newTestPool(t, Options{Workers: 1})
	running, err := p.Submit(longSpec())
	if err != nil {
		t.Fatal(err)
	}
	queued := longSpec()
	queued.Seed = 2
	queuedSt, err := p.Submit(queued)
	if err != nil {
		t.Fatal(err)
	}

	if !p.Cancel(queuedSt.ID) {
		t.Fatal("cancel queued job")
	}
	st, _ := p.Job(queuedSt.ID)
	if st.State != StateCanceled {
		t.Fatalf("queued job state %s after cancel", st.State)
	}

	if !p.Cancel(running.ID) {
		t.Fatal("cancel running job")
	}
	final, err := p.Wait(context.Background(), running.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCanceled {
		t.Fatalf("running job state %s after cancel", final.State)
	}
	if p.Cancel(running.ID) {
		t.Error("cancel of a terminal job must report false")
	}
}

func TestJobTimeoutFails(t *testing.T) {
	p := newTestPool(t, Options{Workers: 1})
	spec := longSpec()
	spec.TimeoutMS = 50
	st, err := p.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final, err := p.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateFailed || final.Error == "" {
		t.Fatalf("timed-out job: state=%s error=%q", final.State, final.Error)
	}
}

func TestCancelFreesWorkerForNextJob(t *testing.T) {
	p := newTestPool(t, Options{Workers: 1})
	running, err := p.Submit(longSpec())
	if err != nil {
		t.Fatal(err)
	}
	p.Cancel(running.ID)
	// The worker must come back and execute a fresh job.
	if _, err := p.Run(context.Background(), specFixture()); err != nil {
		t.Fatalf("run after cancel: %v", err)
	}
}

func TestSubscribeStreamsProgressAndCloses(t *testing.T) {
	p := newTestPool(t, Options{Workers: 1, ProgressInterval: 1_000})
	st, err := p.Submit(specFixture())
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := p.Subscribe(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	var events int
	var last sim.Progress
	for pr := range ch {
		if pr.Cycle < last.Cycle {
			t.Errorf("progress went backwards: %d after %d", pr.Cycle, last.Cycle)
		}
		last = pr
		events++
	}
	if events == 0 {
		t.Error("no progress events before completion")
	}
	final, err := p.Job(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("job state %s after stream closed", final.State)
	}
	// Subscribing to a terminal job yields an already-closed channel.
	ch2, cancel2, err := p.Subscribe(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel2()
	if _, open := <-ch2; open {
		t.Error("subscription to terminal job must start closed")
	}
}

func TestPoolCloseCancelsEverything(t *testing.T) {
	p := NewPool(Options{Workers: 1, ProgressInterval: 5_000})
	running, _ := p.Submit(longSpec())
	queued := longSpec()
	queued.Seed = 2
	queuedSt, _ := p.Submit(queued)
	done := make(chan struct{})
	go func() { p.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close did not return")
	}
	for _, id := range []string{running.ID, queuedSt.ID} {
		st, err := p.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if !st.State.Terminal() {
			t.Errorf("job %s state %s after Close", id, st.State)
		}
	}
	if _, err := p.Submit(specFixture()); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close: %v, want ErrClosed", err)
	}
}

// TestWarmSweepReusesCheckpoint is the warmed-sweep acceptance test: a
// 16-point sweep over a measured parameter (the FR-FCFS row-hit streak
// cap) through a warm-started pool must simulate exactly one warmup and
// restore the shared checkpoint for the other fifteen points —
// measurably less total simulated work than sixteen cold runs.
func TestWarmSweepReusesCheckpoint(t *testing.T) {
	p := newTestPool(t, Options{Workers: 4, WarmStarts: true})
	const points = 16
	base := specFixture()

	ids := make([]string, points)
	for i := 0; i < points; i++ {
		spec := base
		spec.MaxRowHitStreak = i // measured param: 0 (off), 1..15
		st, err := p.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}
	for _, id := range ids {
		st, err := p.Wait(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("job %s: %s (%s)", id, st.State, st.Error)
		}
	}

	st := p.Stats()
	if st.Executions != points {
		t.Fatalf("%d executions for %d distinct configs, want %d", st.Executions, points, points)
	}
	coldWarmup := uint64(points) * base.WarmupCycles
	if st.Warm.WarmupCyclesSimulated >= coldWarmup {
		t.Fatalf("warmed sweep simulated %d warmup cycles, no better than %d cold", st.Warm.WarmupCyclesSimulated, coldWarmup)
	}
	if st.Warm.WarmupCyclesSimulated != base.WarmupCycles {
		t.Errorf("simulated %d warmup cycles, want exactly one shared warmup (%d)", st.Warm.WarmupCyclesSimulated, base.WarmupCycles)
	}
	if st.Warm.Misses != 1 || st.Warm.Hits != points-1 {
		t.Errorf("warm store %d misses / %d hits, want 1 / %d", st.Warm.Misses, st.Warm.Hits, points-1)
	}
	if st.Warm.WarmupCyclesReused != (points-1)*base.WarmupCycles {
		t.Errorf("reused %d warmup cycles, want %d", st.Warm.WarmupCyclesReused, (points-1)*base.WarmupCycles)
	}
}

// TestWarmPoolMatchesColdResult: enabling warm starts never changes a
// job's answer. (Bit-identity of the restore path itself is pinned by
// internal/sim's TestWarmStoreIdenticalConfigBitIdentical and the
// randomized differential test.)
func TestWarmPoolMatchesColdResult(t *testing.T) {
	warm := newTestPool(t, Options{Workers: 1, WarmStarts: true})
	spec := specFixture()
	res, err := warm.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	cold, err := sim.RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DRAM != cold.DRAM || res.Counters != cold.Counters || res.Cycles != cold.Cycles {
		t.Fatal("warm-pool run diverges from cold sim run for an identical config")
	}
}

func TestRetentionEvictsOldTerminalJobs(t *testing.T) {
	p := newTestPool(t, Options{Workers: 1, RetainJobs: 2})
	var ids []string
	for seed := int64(1); seed <= 3; seed++ {
		spec := specFixture()
		spec.Seed = seed
		st, err := p.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Wait(context.Background(), st.ID); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	if _, err := p.Job(ids[0]); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("oldest terminal job must be evicted, got %v", err)
	}
	if _, err := p.Job(ids[2]); err != nil {
		t.Errorf("newest terminal job must be retained: %v", err)
	}
}

// raiseProcs lifts GOMAXPROCS to n for the test (restored afterwards) so
// the parallel engine can engage on single-CPU CI runners. Correctness,
// unlike speedup, does not need real cores.
func raiseProcs(t *testing.T, n int) {
	t.Helper()
	if prev := runtime.GOMAXPROCS(0); prev < n {
		runtime.GOMAXPROCS(n)
		t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
	}
}

// TestParallelTokenBudgetBoundsConcurrency pins the pool's CPU-token
// accounting: two full-cost parallel jobs never hold tokens at once,
// even with idle pool workers, and canceling drains the budget to zero.
func TestParallelTokenBudgetBoundsConcurrency(t *testing.T) {
	raiseProcs(t, 4)
	p := newTestPool(t, Options{Workers: 2})
	tokens := p.Stats().Parallel.Tokens
	if tokens < 2 {
		t.Fatalf("token budget %d, want >= 2 (max of GOMAXPROCS and pool workers)", tokens)
	}

	a := longSpec()
	a.Workers = tokens
	b := longSpec()
	b.Workers = tokens
	b.Seed = 99 // distinct hash: no coalescing
	stA, err := p.Submit(a)
	if err != nil {
		t.Fatal(err)
	}
	stB, err := p.Submit(b)
	if err != nil {
		t.Fatal(err)
	}

	// Both jobs are claimed by workers, but only one can hold its
	// tokens; the budget must plateau at exactly `tokens`.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := p.Stats()
		if st.Running == 2 && st.Parallel.TokensInUse == tokens {
			break
		}
		if st.Parallel.TokensInUse > tokens {
			t.Fatalf("tokens in use %d exceeds budget %d", st.Parallel.TokensInUse, tokens)
		}
		if time.Now().After(deadline) {
			t.Fatalf("budget never plateaued: %+v", st.Parallel)
		}
		time.Sleep(time.Millisecond)
	}

	// Cancel reaches both the executing job and the token-blocked one.
	p.Cancel(stA.ID)
	p.Cancel(stB.ID)
	ctx, cancelWait := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelWait()
	for _, id := range []string{stA.ID, stB.ID} {
		st, err := p.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateCanceled {
			t.Fatalf("job %s: state %s, want canceled", id, st.State)
		}
	}
	if st := p.Stats(); st.Parallel.TokensInUse != 0 {
		t.Fatalf("tokens leaked: %d in use after both jobs finished", st.Parallel.TokensInUse)
	}
}

// TestPoolReportsParallelStats runs one genuinely parallel job through
// the pool and checks the /v1/healthz aggregates populate.
func TestPoolReportsParallelStats(t *testing.T) {
	raiseProcs(t, 4)
	p := newTestPool(t, Options{Workers: 1})
	spec := specFixture()
	spec.Workers = 4
	if _, err := p.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	st := p.Stats().Parallel
	if st.Runs != 1 {
		t.Fatalf("parallel runs = %d, want 1", st.Runs)
	}
	if st.MaxWorkers < 2 {
		t.Fatalf("max workers = %d, want >= 2", st.MaxWorkers)
	}
	if st.Barriers == 0 {
		t.Fatal("no barriers recorded for a parallel run")
	}
	if st.BarriersPerSec <= 0 || st.BarrierStallPct < 0 || st.BarrierStallPct > 100 {
		t.Fatalf("derived rates out of range: %+v", st)
	}
}
