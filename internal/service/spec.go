// Package service turns the batch simulator into a servable subsystem:
// canonical configuration hashing, an in-memory priority job queue with
// duplicate coalescing, a bounded worker pool executing sim runs, and an
// LRU result cache keyed by config hash. cmd/bumpd exposes the pool over
// HTTP/JSON (see api.go); cmd/sweep drives the same Pool API in-process.
package service

import (
	"fmt"

	"bump/internal/scenario"
	"bump/internal/sim"
	"bump/internal/workload"
)

// JobSpec is the wire-format description of one simulation job. It names
// a workload preset and mechanism plus the deltas from the paper's
// Table II defaults, so specs stay small, serialisable and hashable
// (unlike a raw sim.Config, whose Streams hook is code).
type JobSpec struct {
	// Workload is a preset name (e.g. "web-search"); Mechanism is a
	// mechanism name (e.g. "bump", "base-open").
	Workload  string `json:"workload,omitempty"`
	Mechanism string `json:"mechanism"`
	// Scenario names a built-in (or daemon-registered) scenario, and
	// ScenarioSpec carries a full inline spec; either replaces Workload
	// with a multi-phase, multi-tenant composition. ScenarioSpec wins
	// when both are set; the resolved spec is part of the config hash,
	// so two jobs coalesce/cache-hit iff their scenarios agree field
	// for field.
	Scenario     string        `json:"scenario,omitempty"`
	ScenarioSpec scenario.Spec `json:"scenario_spec,omitzero"`
	// Seed defaults to 1, matching sim.DefaultConfig.
	Seed int64 `json:"seed,omitempty"`
	// WarmupCycles/MeasureCycles override the default windows when
	// non-zero.
	WarmupCycles  uint64 `json:"warmup_cycles,omitempty"`
	MeasureCycles uint64 `json:"measure_cycles,omitempty"`

	// ForkAt defers the measured parameters (MaxRowHitStreak) to this
	// absolute cycle; ForkCycles lists mid-measurement cuts where the
	// canonical trunk publishes checkpoint-tree nodes. See
	// sim.Config.ForkAt / sim.Config.ForkCycles.
	ForkAt     uint64   `json:"fork_at,omitempty"`
	ForkCycles []uint64 `json:"fork_cycles,omitempty"`

	// Predictor and controller overrides (zero keeps the default).
	RegionShift          uint `json:"region_shift,omitempty"`
	DensityThreshold     uint `json:"density_threshold,omitempty"`
	MaxRowHitStreak      int  `json:"max_row_hit_streak,omitempty"`
	DisablePrefetcher    bool `json:"disable_prefetcher,omitempty"`
	ForceBlockInterleave bool `json:"force_block_interleave,omitempty"`

	// Priority orders the queue (higher runs first; equal priority is
	// FIFO). TimeoutMS bounds the run's wall-clock time (0 uses the
	// pool default). Both affect scheduling only, never the result, so
	// they are excluded from the config hash.
	Priority  int   `json:"priority,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Workers requests parallel in-run execution (sim.Config.Workers).
	// Results are byte-identical at any value, so like Priority it is a
	// pure resource knob: excluded from the config hash, irrelevant to
	// coalescing and caching, and budgeted by the pool so pool×shard
	// concurrency stays bounded.
	Workers int `json:"workers,omitempty"`
	// TraceID is the distributed-tracing correlation ID, minted at
	// submit (by whichever layer sees the job first) and propagated
	// through every hop — coordinator routing, wire frames, worker
	// pools — so one job's spans share one ID fleet-wide. Pure
	// observability: like Priority it never reaches sim.Config, so it is
	// excluded from the config hash and cannot affect coalescing,
	// caching or results.
	TraceID string `json:"trace_id,omitempty"`
}

// Config resolves the spec to a full simulator configuration.
func (s JobSpec) Config() (sim.Config, error) {
	mechName := s.Mechanism
	if mechName == "" {
		mechName = "bump"
	}
	m, ok := sim.MechanismByName(mechName)
	if !ok {
		return sim.Config{}, fmt.Errorf("service: unknown mechanism %q", s.Mechanism)
	}
	var cfg sim.Config
	switch {
	case s.ScenarioSpec.Enabled() || s.Scenario != "":
		if s.Workload != "" {
			return sim.Config{}, fmt.Errorf("service: workload and scenario are mutually exclusive")
		}
		sc := s.ScenarioSpec
		if !sc.Enabled() {
			cores := sim.DefaultConfig(m, workload.Params{}).Cores
			sc, ok = scenario.ByName(s.Scenario, cores)
			if !ok {
				return sim.Config{}, fmt.Errorf("service: unknown scenario %q", s.Scenario)
			}
		}
		cfg = sim.DefaultScenarioConfig(m, sc)
	default:
		w, ok := workload.ByName(s.Workload)
		if !ok {
			return sim.Config{}, fmt.Errorf("service: unknown workload %q", s.Workload)
		}
		cfg = sim.DefaultConfig(m, w)
	}
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	if s.WarmupCycles != 0 {
		cfg.WarmupCycles = s.WarmupCycles
	}
	if s.MeasureCycles != 0 {
		cfg.MeasureCycles = s.MeasureCycles
	}
	if s.RegionShift != 0 {
		cfg.BuMP.RegionShift = s.RegionShift
	}
	if s.DensityThreshold != 0 {
		cfg.BuMP.DensityThreshold = s.DensityThreshold
	}
	cfg.MaxRowHitStreak = s.MaxRowHitStreak
	cfg.ForkAt = s.ForkAt
	cfg.ForkCycles = s.ForkCycles
	cfg.DisablePrefetcher = s.DisablePrefetcher
	cfg.ForceBlockInterleave = s.ForceBlockInterleave
	cfg.Workers = s.Workers
	if err := cfg.Validate(); err != nil {
		return sim.Config{}, err
	}
	return cfg, nil
}
