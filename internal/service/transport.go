package service

import (
	"context"
	"net"
	"net/http"
	"net/http/httptrace"
	"sync/atomic"
	"time"
)

// sharedTransport is the one pooled HTTP transport behind every Client:
// keep-alives on, enough idle connections per host that a coordinator
// polling and streaming a whole fleet never churns TCP connections.
// Per-client transports would each hold their own idle pool and defeat
// reuse across the registry's many Client instances.
var sharedTransport = &http.Transport{
	Proxy: http.ProxyFromEnvironment,
	DialContext: (&net.Dialer{
		Timeout:   30 * time.Second,
		KeepAlive: 30 * time.Second,
	}).DialContext,
	MaxIdleConns:          512,
	MaxIdleConnsPerHost:   32,
	IdleConnTimeout:       90 * time.Second,
	TLSHandshakeTimeout:   10 * time.Second,
	ExpectContinueTimeout: time.Second,
}

// ConnStats counts HTTP connection reuse process-wide (the transport is
// shared), surfaced in /v1/healthz so operators can see per-request
// connection churn — the overhead the wire fast path exists to remove.
type ConnStats struct {
	Requests uint64 `json:"requests"`
	Dialed   uint64 `json:"dialed"`
	Reused   uint64 `json:"reused"`
}

var (
	connRequests atomic.Uint64
	connDialed   atomic.Uint64
	connReused   atomic.Uint64
)

// SharedConnStats returns cumulative connection-reuse counters for the
// shared transport.
func SharedConnStats() ConnStats {
	return ConnStats{
		Requests: connRequests.Load(),
		Dialed:   connDialed.Load(),
		Reused:   connReused.Load(),
	}
}

// traceConns annotates ctx so the request's connection acquisition is
// counted in SharedConnStats.
func traceConns(ctx context.Context) context.Context {
	return httptrace.WithClientTrace(ctx, &httptrace.ClientTrace{
		GotConn: func(info httptrace.GotConnInfo) {
			connRequests.Add(1)
			if info.Reused {
				connReused.Add(1)
			} else {
				connDialed.Add(1)
			}
		},
	})
}
