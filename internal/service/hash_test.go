package service

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"reflect"
	"testing"

	"bump/internal/sim"
	"bump/internal/workload"
)

func specFixture() JobSpec {
	return JobSpec{
		Workload:      "web-search",
		Mechanism:     "bump",
		WarmupCycles:  20_000,
		MeasureCycles: 50_000,
	}
}

func mustHash(t *testing.T, spec JobSpec) string {
	t.Helper()
	h, err := HashSpec(spec)
	if err != nil {
		t.Fatalf("HashSpec: %v", err)
	}
	return h
}

func TestHashDeterministic(t *testing.T) {
	a := mustHash(t, specFixture())
	b := mustHash(t, specFixture())
	if a != b {
		t.Fatalf("identical specs hash differently: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("hash length %d, want 64 hex chars", len(a))
	}
}

func TestHashSeparatesIdentityFields(t *testing.T) {
	base := mustHash(t, specFixture())
	mutations := map[string]func(*JobSpec){
		"workload":        func(s *JobSpec) { s.Workload = "data-serving" },
		"mechanism":       func(s *JobSpec) { s.Mechanism = "base-open" },
		"seed":            func(s *JobSpec) { s.Seed = 7 },
		"warmup":          func(s *JobSpec) { s.WarmupCycles = 30_000 },
		"measure":         func(s *JobSpec) { s.MeasureCycles = 60_000 },
		"region shift":    func(s *JobSpec) { s.RegionShift = 9 },
		"threshold":       func(s *JobSpec) { s.DensityThreshold = 4 },
		"row-hit streak":  func(s *JobSpec) { s.MaxRowHitStreak = 4 },
		"no prefetcher":   func(s *JobSpec) { s.DisablePrefetcher = true },
		"block interleam": func(s *JobSpec) { s.ForceBlockInterleave = true },
	}
	for name, mutate := range mutations {
		spec := specFixture()
		mutate(&spec)
		if mustHash(t, spec) == base {
			t.Errorf("%s change did not change the hash", name)
		}
	}
}

func TestHashIgnoresSchedulingFields(t *testing.T) {
	base := mustHash(t, specFixture())
	spec := specFixture()
	spec.Priority = 9
	spec.TimeoutMS = 1234
	spec.Workers = 8
	if mustHash(t, spec) != base {
		t.Error("priority/timeout/workers are resource knobs and must not change the hash")
	}
}

func TestHashRejectsStreams(t *testing.T) {
	cfg := sim.DefaultConfig(sim.BuMP, workload.WebSearch())
	cfg.Streams = func(core int) workload.Stream { return nil }
	if _, err := Hash(cfg); !errors.Is(err, ErrNotHashable) {
		t.Fatalf("Hash with Streams: got %v, want ErrNotHashable", err)
	}
}

func TestHashCoversEveryConfigField(t *testing.T) {
	// The canonical encoder walks the config reflectively, so a freshly
	// added field is hashed automatically — but only if it is exported
	// and of an encodable kind. Hashing a default config exercises the
	// full walk and fails loudly on any regression.
	cfg := sim.DefaultConfig(sim.BuMP, workload.WebSearch())
	if _, err := Hash(cfg); err != nil {
		t.Fatalf("default config must be hashable: %v", err)
	}
}

func TestSpecConfigValidation(t *testing.T) {
	bad := specFixture()
	bad.Workload = "no-such-workload"
	if _, err := bad.Config(); err == nil {
		t.Error("unknown workload must fail")
	}
	bad = specFixture()
	bad.Mechanism = "no-such-mechanism"
	if _, err := bad.Config(); err == nil {
		t.Error("unknown mechanism must fail")
	}
	// Defaulted mechanism.
	def := specFixture()
	def.Mechanism = ""
	cfg, err := def.Config()
	if err != nil {
		t.Fatalf("empty mechanism must default: %v", err)
	}
	if cfg.Mechanism != sim.BuMP {
		t.Errorf("default mechanism = %v, want bump", cfg.Mechanism)
	}
}

// referenceCanonical is the fmt-based encoder Hash originally used,
// kept as the test oracle: the pooled allocation-free encoder must stay
// byte-identical to it. Hashes are cache keys — silent encoding drift
// would orphan every cached result without a hashVersion bump.
func referenceCanonical(w io.Writer, v reflect.Value, path string) error {
	switch v.Kind() {
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				return fmt.Errorf("service: unexported config field %s.%s", path, f.Name)
			}
			if err := referenceCanonical(w, v.Field(i), path+"."+f.Name); err != nil {
				return err
			}
		}
		return nil
	case reflect.Func:
		if !v.IsNil() {
			return fmt.Errorf("service: config field %s holds code and cannot be hashed", path)
		}
		return nil
	case reflect.Slice, reflect.Array:
		fmt.Fprintf(w, "%s.len=%d\n", path, v.Len())
		for i := 0; i < v.Len(); i++ {
			if err := referenceCanonical(w, v.Index(i), fmt.Sprintf("%s[%d]", path, i)); err != nil {
				return err
			}
		}
		return nil
	case reflect.Bool, reflect.String,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64:
		fmt.Fprintf(w, "%s=%v\n", path, v.Interface())
		return nil
	default:
		return fmt.Errorf("service: cannot canonically encode %s (kind %s)", path, v.Kind())
	}
}

func TestHashMatchesReferenceEncoding(t *testing.T) {
	specs := []JobSpec{
		specFixture(),
		{Workload: "data-serving", Mechanism: "base-open", WarmupCycles: 1, MeasureCycles: 2, Seed: 42, MaxRowHitStreak: 7},
		{Scenario: "consolidated", Mechanism: "bump", WarmupCycles: 1_000, MeasureCycles: 2_000},
	}
	for _, spec := range specs {
		cfg, err := spec.Config()
		if err != nil {
			t.Fatalf("spec %+v: %v", spec, err)
		}
		h := sha256.New()
		io.WriteString(h, hashVersion)
		if err := referenceCanonical(h, reflect.ValueOf(cfg), "cfg"); err != nil {
			t.Fatal(err)
		}
		want := hex.EncodeToString(h.Sum(nil))
		got, err := Hash(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("spec %+v: pooled encoder diverged from the reference encoding: %s != %s", spec, got, want)
		}
	}
}
