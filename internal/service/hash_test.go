package service

import (
	"errors"
	"testing"

	"bump/internal/sim"
	"bump/internal/workload"
)

func specFixture() JobSpec {
	return JobSpec{
		Workload:      "web-search",
		Mechanism:     "bump",
		WarmupCycles:  20_000,
		MeasureCycles: 50_000,
	}
}

func mustHash(t *testing.T, spec JobSpec) string {
	t.Helper()
	h, err := HashSpec(spec)
	if err != nil {
		t.Fatalf("HashSpec: %v", err)
	}
	return h
}

func TestHashDeterministic(t *testing.T) {
	a := mustHash(t, specFixture())
	b := mustHash(t, specFixture())
	if a != b {
		t.Fatalf("identical specs hash differently: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("hash length %d, want 64 hex chars", len(a))
	}
}

func TestHashSeparatesIdentityFields(t *testing.T) {
	base := mustHash(t, specFixture())
	mutations := map[string]func(*JobSpec){
		"workload":        func(s *JobSpec) { s.Workload = "data-serving" },
		"mechanism":       func(s *JobSpec) { s.Mechanism = "base-open" },
		"seed":            func(s *JobSpec) { s.Seed = 7 },
		"warmup":          func(s *JobSpec) { s.WarmupCycles = 30_000 },
		"measure":         func(s *JobSpec) { s.MeasureCycles = 60_000 },
		"region shift":    func(s *JobSpec) { s.RegionShift = 9 },
		"threshold":       func(s *JobSpec) { s.DensityThreshold = 4 },
		"row-hit streak":  func(s *JobSpec) { s.MaxRowHitStreak = 4 },
		"no prefetcher":   func(s *JobSpec) { s.DisablePrefetcher = true },
		"block interleam": func(s *JobSpec) { s.ForceBlockInterleave = true },
	}
	for name, mutate := range mutations {
		spec := specFixture()
		mutate(&spec)
		if mustHash(t, spec) == base {
			t.Errorf("%s change did not change the hash", name)
		}
	}
}

func TestHashIgnoresSchedulingFields(t *testing.T) {
	base := mustHash(t, specFixture())
	spec := specFixture()
	spec.Priority = 9
	spec.TimeoutMS = 1234
	if mustHash(t, spec) != base {
		t.Error("priority/timeout are scheduling hints and must not change the hash")
	}
}

func TestHashRejectsStreams(t *testing.T) {
	cfg := sim.DefaultConfig(sim.BuMP, workload.WebSearch())
	cfg.Streams = func(core int) workload.Stream { return nil }
	if _, err := Hash(cfg); !errors.Is(err, ErrNotHashable) {
		t.Fatalf("Hash with Streams: got %v, want ErrNotHashable", err)
	}
}

func TestHashCoversEveryConfigField(t *testing.T) {
	// The canonical encoder walks the config reflectively, so a freshly
	// added field is hashed automatically — but only if it is exported
	// and of an encodable kind. Hashing a default config exercises the
	// full walk and fails loudly on any regression.
	cfg := sim.DefaultConfig(sim.BuMP, workload.WebSearch())
	if _, err := Hash(cfg); err != nil {
		t.Fatalf("default config must be hashable: %v", err)
	}
}

func TestSpecConfigValidation(t *testing.T) {
	bad := specFixture()
	bad.Workload = "no-such-workload"
	if _, err := bad.Config(); err == nil {
		t.Error("unknown workload must fail")
	}
	bad = specFixture()
	bad.Mechanism = "no-such-mechanism"
	if _, err := bad.Config(); err == nil {
		t.Error("unknown mechanism must fail")
	}
	// Defaulted mechanism.
	def := specFixture()
	def.Mechanism = ""
	cfg, err := def.Config()
	if err != nil {
		t.Fatalf("empty mechanism must default: %v", err)
	}
	if cfg.Mechanism != sim.BuMP {
		t.Errorf("default mechanism = %v, want bump", cfg.Mechanism)
	}
}
