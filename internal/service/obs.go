package service

import "bump/internal/obs"

// RegisterPoolCollectors adapts the pool's existing stats surfaces —
// PoolStats, CacheStats, WarmStats, ParallelPoolStats and the shared
// transport's ConnStats — as scrape-time collectors on reg, so every
// number /v1/healthz reports is also a Prometheus series. Called by
// NewPool when Options.Metrics is set; the collectors read snapshots
// (Pool.Stats, SharedConnStats), never pool internals, so they take no
// lock the job path contends on beyond the stats snapshot itself.
func RegisterPoolCollectors(reg *obs.Registry, p *Pool) {
	reg.Collect(func(g *obs.Gather) {
		st := p.Stats()
		g.Gauge("bump_pool_workers", "Configured worker-goroutine count.", float64(st.Workers))
		g.Gauge("bump_pool_queued", "Jobs waiting in the priority queue.", float64(st.Queued))
		g.Gauge("bump_pool_running", "Jobs currently executing.", float64(st.Running))
		g.Counter("bump_pool_completed_total", "Jobs that reached a terminal state.", float64(st.Completed))
		g.Counter("bump_pool_executions_total", "Simulation runs actually executed.", float64(st.Executions))
		g.Counter("bump_pool_coalesced_total", "Submissions coalesced onto an in-flight duplicate.", float64(st.Coalesced))

		g.Gauge("bump_cache_entries", "Result-cache entries.", float64(st.Cache.Entries))
		g.Gauge("bump_cache_capacity", "Result-cache capacity.", float64(st.Cache.Capacity))
		g.Counter("bump_cache_hits_total", "Result-cache hits.", float64(st.Cache.Hits))
		g.Counter("bump_cache_misses_total", "Result-cache misses.", float64(st.Cache.Misses))
		g.Counter("bump_cache_evictions_total", "Result-cache evictions.", float64(st.Cache.Evictions))

		g.Counter("bump_warm_hits_total", "Runs started from a restored warm checkpoint.", float64(st.Warm.Hits))
		g.Counter("bump_warm_misses_total", "Runs that simulated their own warmup.", float64(st.Warm.Misses))
		g.Counter("bump_warm_skipped_total", "Runs not warm-cacheable.", float64(st.Warm.Skipped))
		g.Counter("bump_warm_installed_total", "Checkpoints installed from peers.", float64(st.Warm.Installed))
		g.Counter("bump_warm_evicted_total", "Poisoned checkpoints purged after failed restores.", float64(st.Warm.Evicted))
		g.Counter("bump_warm_fork_hits_total", "Runs restored from a checkpoint-tree node past warmup.", float64(st.Warm.ForkHits))
		g.Counter("bump_warm_fork_misses_total", "Checkpoint-tree nodes built by extending the trunk.", float64(st.Warm.ForkMisses))
		g.Counter("bump_warm_cycles_simulated_total", "Cycles simulated, by kind.", float64(st.Warm.WarmupCyclesSimulated), "kind", "warmup")
		g.Counter("bump_warm_cycles_simulated_total", "Cycles simulated, by kind.", float64(st.Warm.TrunkCyclesSimulated), "kind", "trunk")
		g.Counter("bump_warm_cycles_simulated_total", "Cycles simulated, by kind.", float64(st.Warm.BranchCyclesSimulated), "kind", "branch")
		g.Counter("bump_warm_cycles_reused_total", "Cycles satisfied by a checkpoint restore, by kind.", float64(st.Warm.WarmupCyclesReused), "kind", "warmup")
		g.Counter("bump_warm_cycles_reused_total", "Cycles satisfied by a checkpoint restore, by kind.", float64(st.Warm.ForkCyclesReused), "kind", "fork")

		g.Gauge("bump_parallel_tokens", "CPU-token budget bounding pool x shard concurrency.", float64(st.Parallel.Tokens))
		g.Gauge("bump_parallel_tokens_in_use", "CPU tokens held by running jobs.", float64(st.Parallel.TokensInUse))
		g.Counter("bump_parallel_runs_total", "Completed runs that used the parallel engine.", float64(st.Parallel.Runs))
		g.Gauge("bump_parallel_max_workers", "Largest effective shard count observed.", float64(st.Parallel.MaxWorkers))
		g.Counter("bump_parallel_barriers_total", "Epoch barriers across parallel runs.", float64(st.Parallel.Barriers))
		g.Gauge("bump_parallel_barrier_stall_pct", "Share of parallel wall time spent waiting on shards.", st.Parallel.BarrierStallPct)

		conns := SharedConnStats()
		g.Counter("bump_conns_requests_total", "HTTP requests over the shared transport.", float64(conns.Requests))
		g.Counter("bump_conns_dialed_total", "New connections dialed.", float64(conns.Dialed))
		g.Counter("bump_conns_reused_total", "Requests served over a reused connection.", float64(conns.Reused))
	})
}
