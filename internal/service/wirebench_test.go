package service

import (
	"context"
	"encoding/json"
	"net"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"

	"bump/internal/wire"
)

// BenchmarkClientSubmitRoundtrip measures per-call client overhead of
// the two protocols on the hottest endpoint: submitting a spec whose
// result is already cached (born-done), so the round trip is pure
// transport + codec. Run with BENCH_JSON=<path> to materialise the
// comparison as a machine-readable artifact.
func BenchmarkClientSubmitRoundtrip(b *testing.B) {
	pool := NewPool(Options{Workers: 2})
	defer pool.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ws := wire.Serve(l, NewWireHandler(NewPoolWireBackend(pool)))
	defer ws.Close()
	srv := httptest.NewServer(NewHandlerInfo(pool, ServerInfo{WireAddr: l.Addr().String()}))
	defer srv.Close()

	spec := JobSpec{Workload: "web-search", Mechanism: "bump", WarmupCycles: 1_000, MeasureCycles: 2_000}

	// Prime the result cache so every benchmarked submit is born done.
	prime := NewClient(srv.URL)
	st, err := prime.Submit(context.Background(), spec)
	if err != nil {
		b.Fatal(err)
	}
	if fin, err := prime.Wait(context.Background(), st.ID); err != nil || fin.State != StateDone {
		b.Fatalf("prime job: %v %s", err, fin.State)
	}
	prime.Close()

	type sample struct {
		nsPerOp     float64
		allocsPerOp float64
	}
	samples := map[string]sample{}

	run := func(name string, jsonOnly bool) {
		b.Run(name, func(b *testing.B) {
			c := NewClient(srv.URL)
			c.DisableWire = jsonOnly
			defer c.Close()
			// One unmeasured call: connection setup + wire negotiation.
			if st, err := c.Submit(context.Background(), spec); err != nil || st.State != StateDone {
				b.Fatalf("warm call: %v %+v", err, st)
			}
			if !jsonOnly && c.WireStats().Calls == 0 {
				b.Fatal("wire variant did not negotiate onto the wire path")
			}
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err := c.Submit(context.Background(), spec)
				if err != nil {
					b.Fatal(err)
				}
				if st.State != StateDone {
					b.Fatalf("submit not served from cache: %s", st.State)
				}
			}
			b.StopTimer()
			runtime.ReadMemStats(&after)
			samples[name] = sample{
				nsPerOp:     float64(b.Elapsed().Nanoseconds()) / float64(b.N),
				allocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(b.N),
			}
		})
	}
	run("json", true)
	run("wire", false)

	j, w := samples["json"], samples["wire"]
	if j.nsPerOp > 0 && w.nsPerOp > 0 {
		b.ReportMetric(j.nsPerOp/w.nsPerOp, "time-speedup")
		b.ReportMetric(j.allocsPerOp/w.allocsPerOp, "alloc-ratio")
	}
	writeRoundtripBenchJSON(b, j.nsPerOp, j.allocsPerOp, w.nsPerOp, w.allocsPerOp)
}

// writeRoundtripBenchJSON records the JSON-vs-wire comparison as a
// machine-readable artifact when BENCH_JSON names a path (CI uploads it
// per commit, same hook as the simulator throughput bench).
func writeRoundtripBenchJSON(b *testing.B, jsonNs, jsonAllocs, wireNs, wireAllocs float64) {
	path := os.Getenv("BENCH_JSON")
	if path == "" || jsonNs == 0 || wireNs == 0 {
		return
	}
	payload := map[string]any{
		"benchmark": "ClientSubmitRoundtrip",
		"json":      map[string]float64{"ns_per_op": jsonNs, "allocs_per_op": jsonAllocs},
		"wire":      map[string]float64{"ns_per_op": wireNs, "allocs_per_op": wireAllocs},
		"time_speedup": jsonNs / wireNs,
		"alloc_ratio":  jsonAllocs / wireAllocs,
		"gomaxprocs":   runtime.GOMAXPROCS(0),
	}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		b.Fatalf("marshal bench json: %v", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Fatalf("write %s: %v", path, err)
	}
	b.Logf("wrote %s", path)
}
