package service

import (
	"reflect"
	"testing"
)

// TestPlanBatchGroupsByAncestor: submission order groups points by
// their checkpoint-tree ancestor, shallower restore cuts first within a
// structural family, with user priority still the leading key and
// non-cacheable points trailing in their original relative order.
func TestPlanBatchGroupsByAncestor(t *testing.T) {
	base := JobSpec{Workload: "web-search", Mechanism: "bump",
		WarmupCycles: 60_000, MeasureCycles: 120_000}
	deep := base
	deep.MaxRowHitStreak = 3
	deep.ForkAt = 120_000
	deep.ForkCycles = []uint64{120_000}
	deep2 := deep
	deep2.MaxRowHitStreak = 7
	cold := base
	cold.WarmupCycles = 0 // no warm identity

	spec := BatchSpec{Specs: []JobSpec{deep, cold, base, deep2}}
	got := planBatch(spec)
	// Root-cut point (base, index 2) leads its family; the two deep
	// forks follow in submission order; the uncacheable point trails.
	want := []int{2, 0, 3, 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("planBatch order %v, want %v", got, want)
	}

	// Priority outranks grouping: a high-priority deep fork jumps the
	// whole family.
	urgent := deep
	urgent.Priority = 5
	spec = BatchSpec{Specs: []JobSpec{deep, base, urgent}}
	got = planBatch(spec)
	want = []int{2, 1, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("planBatch priority order %v, want %v", got, want)
	}
}
