package service

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"bump/internal/sim"
)

// BatchSpec is the wire format of POST /v1/batch: a whole sweep in one
// request. Points are independent jobs; identical specs coalesce to one
// execution exactly as they would submitted separately.
type BatchSpec struct {
	Specs []JobSpec `json:"specs"`
}

// BatchPoint is one completed point of a batch: its index in the
// submitted spec slice, the worker that served it (cluster mode), and
// the terminal job payload.
type BatchPoint struct {
	Index  int        `json:"index"`
	Worker string     `json:"worker,omitempty"`
	Status JobPayload `json:"status"`
}

// BatchResult aggregates a batch run. Points is ordered by submission
// index — position i is Specs[i]'s outcome — regardless of completion
// order. Failed counts points that did not reach StateDone.
type BatchResult struct {
	Points []BatchPoint `json:"points"`
	Failed int          `json:"failed"`
}

// Results unwraps the per-point run results in submission order,
// failing on the first point that did not complete (naming the worker
// that served it, when known).
func (r BatchResult) Results() ([]JobPayload, error) {
	out := make([]JobPayload, len(r.Points))
	for i, pt := range r.Points {
		if pt.Status.State != StateDone || pt.Status.Result == nil {
			where := ""
			if pt.Worker != "" {
				where = " on " + pt.Worker
			}
			return nil, fmt.Errorf("service: batch point %d%s %s: %s", pt.Index, where, pt.Status.State, pt.Status.Error)
		}
		out[i] = pt.Status
	}
	return out, nil
}

// MaxBatchPoints bounds one batch request (a 16-core design-grid sweep
// is ~72 points; this leaves two orders of magnitude of headroom while
// keeping a malformed request from exhausting memory).
const MaxBatchPoints = 4096

// planBatch returns the submission order for a batch: points are
// grouped by the checkpoint-tree ancestor they restore — the structural
// warm key plus the restore cut — with shallower cuts first within a
// structural family. A sweep whose points fork from a shared trunk is
// therefore dispatched trunk-prefix first: the single-flight warm store
// sees the shallow builders lead and the branches park as waiters,
// instead of an arbitrary point racing to rebuild an ancestor another
// point is already simulating. Points with no warm identity (custom
// streams, zero warmup) keep their relative order at the end. The
// result is a permutation of spec indices; per-point results are still
// reported by original index.
func planBatch(spec BatchSpec) []int {
	type pt struct {
		idx  int
		key  string // structural warm key; "" = not warm-cacheable
		cut  uint64 // restore cut: max(WarmupCycles, ForkAt)
		pri  int    // user priority, preserved as the leading sort key
	}
	pts := make([]pt, len(spec.Specs))
	for i, s := range spec.Specs {
		p := pt{idx: i, pri: s.Priority}
		if cfg, err := s.Config(); err == nil {
			if key, ok := sim.WarmKey(cfg); ok {
				p.key = key
				p.cut = cfg.WarmupCycles
				if cfg.ForkAt > p.cut {
					p.cut = cfg.ForkAt
				}
			}
		}
		pts[i] = p
	}
	sort.SliceStable(pts, func(a, b int) bool {
		pa, pb := pts[a], pts[b]
		if pa.pri != pb.pri {
			return pa.pri > pb.pri
		}
		if (pa.key == "") != (pb.key == "") {
			return pa.key != ""
		}
		if pa.key != pb.key {
			return pa.key < pb.key
		}
		return pa.cut < pb.cut
	})
	order := make([]int, len(pts))
	for i, p := range pts {
		order[i] = p.idx
	}
	return order
}

// RunBatch executes every point of a batch on the pool, invoking
// onPoint (which may be nil) from a single goroutine as each point
// completes, and returns the aggregate in submission order. Duplicate
// specs within the batch coalesce on the pool like any concurrent
// submissions. A canceled ctx abandons the waits (submitted jobs run
// on — they may be coalesced with other clients' submissions) and
// returns with the unfinished points marked failed.
func RunBatch(ctx context.Context, p *Pool, spec BatchSpec, onPoint func(BatchPoint)) (BatchResult, error) {
	if len(spec.Specs) == 0 {
		return BatchResult{}, fmt.Errorf("service: empty batch")
	}
	if len(spec.Specs) > MaxBatchPoints {
		return BatchResult{}, fmt.Errorf("service: batch of %d points exceeds the %d-point limit", len(spec.Specs), MaxBatchPoints)
	}

	res := BatchResult{Points: make([]BatchPoint, len(spec.Specs))}
	// Submit everything up front so the queue sees the whole sweep
	// (coalescing duplicates), then wait per point concurrently.
	// Submission order groups points by shared checkpoint-tree ancestor
	// (see planBatch); results stay indexed by the caller's order.
	ids := make([]string, len(spec.Specs))
	for _, i := range planBatch(spec) {
		st, err := p.Submit(spec.Specs[i])
		if err != nil {
			return BatchResult{}, fmt.Errorf("service: batch point %d: %w", i, err)
		}
		ids[i] = st.ID
	}

	var mu sync.Mutex // serializes onPoint and res updates
	var wg sync.WaitGroup
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := p.Wait(ctx, ids[i])
			if err != nil {
				st = JobStatus{ID: ids[i], State: StateFailed, Error: err.Error()}
			}
			pt := BatchPoint{Index: i, Status: PayloadFor(st)}
			mu.Lock()
			defer mu.Unlock()
			res.Points[i] = pt
			if st.State != StateDone {
				res.Failed++
			}
			if onPoint != nil {
				onPoint(pt)
			}
		}(i)
	}
	wg.Wait()
	return res, ctx.Err()
}
