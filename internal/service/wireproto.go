package service

import (
	"context"
	"errors"
	"net/http"
	"sync/atomic"
	"time"

	"bump/internal/sim"
	"bump/internal/snapshot"
	"bump/internal/wire"
)

// The wire fast path carries the hot endpoints — submit, status/watch,
// result fetch, whole batches — as snapshot-codec bodies inside
// internal/wire frames. Frame types below; every request gets exactly
// one response frame, except the streaming calls (watch, batch) which
// interleave progress/point frames before the final one. Bodies are
// encoded with snapshot.Writer.Any, so the payload layout is the
// canonical codec's and a snapshot.FormatVersion bump implies a
// wire.FormatVersion bump.
const (
	wmSubmit byte = 0x01 // wireJobSpec -> wmStatus | wmErr
	wmJob    byte = 0x02 // wireRef     -> wmStatus | wmErr
	wmResult byte = 0x03 // wireRef     -> wmResultPayload | wmErr
	wmBatch  byte = 0x04 // wireBatchSpec -> wmPoint* then wmBatchDone | wmErr
	wmWatch  byte = 0x05 // wireRef     -> wmProgress* then wmStatus | wmErr

	wmStatus        byte = 0x10
	wmResultPayload byte = 0x11
	wmPoint         byte = 0x12
	wmBatchDone     byte = 0x13
	wmProgress      byte = 0x14
	wmErr           byte = 0x1F
)

// encodeMsg serializes a plain struct as a bare snapshot body.
func encodeMsg(v any) []byte {
	w := snapshot.NewWriter()
	w.Any(v)
	// Copy out: Body aliases the writer's buffer.
	return append([]byte(nil), w.Body()...)
}

// decodeMsg decodes a frame body into ptr, requiring full consumption.
func decodeMsg(body []byte, ptr any) error {
	r := snapshot.NewBodyReader(body)
	r.AnyInto(ptr)
	return r.Finish()
}

// wireRef names a job ID or result hash.
type wireRef struct {
	Ref string
}

// wireJobSpec wraps a spec for Any encoding.
type wireJobSpec struct {
	Spec JobSpec
}

// wireBatchSpec wraps a batch.
type wireBatchSpec struct {
	Specs []JobSpec
}

// wireStatus is JobStatus flattened for the reflective codec: optional
// pointers become presence flags. Metrics are NOT carried — they are a
// deterministic function of the result (PayloadFor), so the client
// rebuilds them and frames stay small.
type wireStatus struct {
	ID          string
	Hash        string
	State       string
	Cached      bool
	Priority    int
	Spec        JobSpec
	HasProgress bool
	Progress    sim.Progress
	HasResult   bool
	Result      sim.Result
	Error       string
}

func toWireStatus(st JobStatus) wireStatus {
	ws := wireStatus{
		ID:       st.ID,
		Hash:     st.Hash,
		State:    string(st.State),
		Cached:   st.Cached,
		Priority: st.Priority,
		Spec:     st.Spec,
		Error:    st.Error,
	}
	if st.Progress != nil {
		ws.HasProgress = true
		ws.Progress = *st.Progress
	}
	if st.Result != nil {
		ws.HasResult = true
		ws.Result = *st.Result
	}
	return ws
}

func (ws wireStatus) status() JobStatus {
	st := JobStatus{
		ID:       ws.ID,
		Hash:     ws.Hash,
		State:    State(ws.State),
		Cached:   ws.Cached,
		Priority: ws.Priority,
		Spec:     ws.Spec,
		Error:    ws.Error,
	}
	if ws.HasProgress {
		pr := ws.Progress
		st.Progress = &pr
	}
	if ws.HasResult {
		r := ws.Result
		st.Result = &r
	}
	return st
}

// wireResultMsg answers a result-by-hash lookup.
type wireResultMsg struct {
	Found  bool
	Hash   string
	Result sim.Result
}

// wirePoint is one completed batch point.
type wirePoint struct {
	Index  int
	Worker string
	Status wireStatus
}

// wireBatchDone closes a batch stream; the client has already
// accumulated the points.
type wireBatchDone struct {
	Failed int
}

// wireErrMsg mirrors APIError across the wire.
type wireErrMsg struct {
	Code    int
	Message string
}

// ---- Backend ----------------------------------------------------------

// WireBackend is what a wire listener serves: the hot service surface,
// implemented by a local Pool (bumpd) or a cluster Coordinator
// (bumpctl). Errors returned as *APIError cross the wire with their
// code; other errors map to 400.
type WireBackend interface {
	WireSubmit(ctx context.Context, spec JobSpec) (JobStatus, error)
	WireJob(ctx context.Context, id string) (JobStatus, error)
	// WireWatch streams progress snapshots to onProgress (serialized,
	// never called after return) and returns the terminal status.
	WireWatch(ctx context.Context, id string, onProgress func(sim.Progress)) (JobStatus, error)
	WireResult(ctx context.Context, hash string) (sim.Result, bool, error)
	// WireBatch runs the whole sweep, streaming completions to onPoint
	// (serialized), and returns the aggregate.
	WireBatch(ctx context.Context, spec BatchSpec, onPoint func(BatchPoint)) (BatchResult, error)
}

// poolBackend adapts a local Pool to the wire surface.
type poolBackend struct {
	p *Pool
}

// NewPoolWireBackend serves a Pool over the wire protocol (bumpd's
// backend; bumpctl uses the cluster Coordinator instead).
func NewPoolWireBackend(p *Pool) WireBackend { return poolBackend{p: p} }

func (b poolBackend) WireSubmit(ctx context.Context, spec JobSpec) (JobStatus, error) {
	return b.p.Submit(spec)
}

func (b poolBackend) WireJob(ctx context.Context, id string) (JobStatus, error) {
	return b.p.Job(id)
}

func (b poolBackend) WireWatch(ctx context.Context, id string, onProgress func(sim.Progress)) (JobStatus, error) {
	ch, cancel, err := b.p.Subscribe(id)
	if err != nil {
		return JobStatus{}, err
	}
	defer cancel()
	for {
		select {
		case <-ctx.Done():
			return JobStatus{}, ctx.Err()
		case pr, ok := <-ch:
			if !ok {
				return b.p.Job(id)
			}
			if onProgress != nil {
				onProgress(pr)
			}
		}
	}
}

func (b poolBackend) WireResult(ctx context.Context, hash string) (sim.Result, bool, error) {
	res, ok := b.p.ResultByHash(hash)
	return res, ok, nil
}

func (b poolBackend) WireBatch(ctx context.Context, spec BatchSpec, onPoint func(BatchPoint)) (BatchResult, error) {
	return RunBatch(ctx, b.p, spec, onPoint)
}

// ---- Server -----------------------------------------------------------

// wireErrCode maps backend errors to the code carried in a wmErr frame,
// mirroring the HTTP handler's status mapping so both protocols fail
// identically.
func wireErrCode(err error) int {
	var apiErr *APIError
	switch {
	case errors.As(err, &apiErr):
		return apiErr.Code
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrUnknownJob):
		return http.StatusNotFound
	default:
		return http.StatusBadRequest
	}
}

// wireIdleTimeout is how long a server-side connection may sit between
// requests before it is dropped (clients re-dial transparently).
const wireIdleTimeout = 5 * time.Minute

// NewWireHandler returns a per-connection handler (for wire.Serve)
// speaking the request/response protocol above against backend.
func NewWireHandler(backend WireBackend) func(*wire.Conn) {
	return func(c *wire.Conn) {
		for {
			c.SetReadDeadline(time.Now().Add(wireIdleTimeout))
			typ, body, err := c.ReadFrame()
			if err != nil {
				return
			}
			c.SetReadDeadline(time.Time{})
			if !serveWireRequest(backend, c, typ, body) {
				return
			}
		}
	}
}

func writeMsg(c *wire.Conn, typ byte, v any) error {
	return c.WriteFrame(typ, encodeMsg(v))
}

func writeWireErr(c *wire.Conn, err error) error {
	msg := err.Error()
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		msg = apiErr.Message
	}
	return writeMsg(c, wmErr, wireErrMsg{Code: wireErrCode(err), Message: msg})
}

// serveWireRequest handles one request frame; false = drop the
// connection (protocol violation or write failure).
func serveWireRequest(backend WireBackend, c *wire.Conn, typ byte, body []byte) bool {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	switch typ {
	case wmSubmit:
		var req wireJobSpec
		if err := decodeMsg(body, &req); err != nil {
			return writeWireErr(c, err) == nil
		}
		st, err := backend.WireSubmit(ctx, req.Spec)
		if err != nil {
			return writeWireErr(c, err) == nil
		}
		return writeMsg(c, wmStatus, toWireStatus(st)) == nil

	case wmJob:
		var req wireRef
		if err := decodeMsg(body, &req); err != nil {
			return writeWireErr(c, err) == nil
		}
		st, err := backend.WireJob(ctx, req.Ref)
		if err != nil {
			return writeWireErr(c, err) == nil
		}
		return writeMsg(c, wmStatus, toWireStatus(st)) == nil

	case wmResult:
		var req wireRef
		if err := decodeMsg(body, &req); err != nil {
			return writeWireErr(c, err) == nil
		}
		res, ok, err := backend.WireResult(ctx, req.Ref)
		if err != nil {
			return writeWireErr(c, err) == nil
		}
		return writeMsg(c, wmResultPayload, wireResultMsg{Found: ok, Hash: req.Ref, Result: res}) == nil

	case wmWatch:
		var req wireRef
		if err := decodeMsg(body, &req); err != nil {
			return writeWireErr(c, err) == nil
		}
		var writeFailed atomic.Bool
		st, err := backend.WireWatch(ctx, req.Ref, func(pr sim.Progress) {
			if writeMsg(c, wmProgress, pr) != nil {
				writeFailed.Store(true)
				cancel() // stop the backend stream; the client is gone
			}
		})
		if writeFailed.Load() {
			return false
		}
		if err != nil {
			return writeWireErr(c, err) == nil
		}
		return writeMsg(c, wmStatus, toWireStatus(st)) == nil

	case wmBatch:
		var req wireBatchSpec
		if err := decodeMsg(body, &req); err != nil {
			return writeWireErr(c, err) == nil
		}
		var writeFailed atomic.Bool
		res, err := backend.WireBatch(ctx, BatchSpec{Specs: req.Specs}, func(pt BatchPoint) {
			wp := wirePoint{Index: pt.Index, Worker: pt.Worker, Status: toWireStatus(pt.Status.JobStatus)}
			if writeMsg(c, wmPoint, wp) != nil {
				writeFailed.Store(true)
				cancel()
			}
		})
		if writeFailed.Load() {
			return false
		}
		if err != nil {
			return writeWireErr(c, err) == nil
		}
		return writeMsg(c, wmBatchDone, wireBatchDone{Failed: res.Failed}) == nil

	default:
		// Unknown request type: answer with an error but keep the
		// connection (forward compatibility for additive request types).
		return writeMsg(c, wmErr, wireErrMsg{Code: http.StatusNotImplemented, Message: "unknown wire request type"}) == nil
	}
}
