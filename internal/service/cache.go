package service

import (
	"container/list"
	"sync"

	"bump/internal/sim"
)

// CacheStats reports result-cache behaviour (exposed via /v1/healthz).
type CacheStats struct {
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// resultCache is an LRU of completed run results keyed by config hash.
// A hit means a previously executed configuration: the service returns
// the stored result without re-running the simulation.
type resultCache struct {
	mu        sync.Mutex
	capacity  int
	order     *list.List // front = most recently used
	entries   map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	hash   string
	result sim.Result
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// get returns the cached result for hash, refreshing its recency.
func (c *resultCache) get(hash string) (sim.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[hash]
	if !ok {
		c.misses++
		return sim.Result{}, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).result, true
}

// put inserts or refreshes a result, evicting the least recently used
// entry past capacity.
func (c *resultCache) put(hash string, r sim.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[hash]; ok {
		el.Value.(*cacheEntry).result = r
		c.order.MoveToFront(el)
		return
	}
	c.entries[hash] = c.order.PushFront(&cacheEntry{hash: hash, result: r})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).hash)
		c.evictions++
	}
}

func (c *resultCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.order.Len(),
		Capacity:  c.capacity,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
