package service

import (
	"context"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"bump/internal/wire"
)

// TestWireConnReusableAfterSlowCall is the deadline-leak regression
// test: a unary wire call arms an absolute request deadline on its
// connection; if that deadline rides the conn back into the pool, any
// reuse after it expires fails its IO — and the failure is masked by a
// silent redial (the reused-conn retry), visible only as Dials > 1. A
// pooled conn must remain usable across an idle gap longer than the
// request timeout, on the same dial.
func TestWireConnReusableAfterSlowCall(t *testing.T) {
	pool := NewPool(Options{Workers: 2})
	defer pool.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := wire.Serve(l, NewWireHandler(NewPoolWireBackend(pool)))
	defer ws.Close()
	srv := httptest.NewServer(NewHandlerInfo(pool, ServerInfo{WireAddr: l.Addr().String()}))
	defer srv.Close()

	spec := JobSpec{Workload: "web-search", Mechanism: "bump", WarmupCycles: 1_000, MeasureCycles: 2_000}
	c := NewClient(srv.URL)
	c.RequestTimeout = 250 * time.Millisecond
	defer c.Close()

	ctx := context.Background()
	if _, err := c.Submit(ctx, spec); err != nil {
		t.Fatal(err)
	}
	if c.WireStats().Calls == 0 {
		t.Fatal("client did not negotiate onto the wire path")
	}

	// Idle past the first call's absolute deadline before reusing.
	time.Sleep(2 * c.RequestTimeout)

	if _, err := c.Submit(ctx, spec); err != nil {
		t.Fatal(err)
	}
	st := c.WireStats()
	if st.Fallbacks != 0 {
		t.Fatalf("wire client fell back to JSON %d times", st.Fallbacks)
	}
	if st.Dials != 1 || st.Reuses < 1 {
		t.Fatalf("dials=%d reuses=%d; the idle gap must reuse the pooled conn, not redial around a stale deadline", st.Dials, st.Reuses)
	}
}
