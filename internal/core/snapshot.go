package core

import (
	"fmt"

	"bump/internal/mem"
	"bump/internal/snapshot"
)

// snapAssoc serializes a set-associative table. Invalid ways collapse to
// a single zero byte (their stale tag/use words are unreachable), so
// semantically equal tables encode identically.
func snapAssoc[V any](w *snapshot.Writer, t *assoc[V], enc func(*snapshot.Writer, V)) {
	w.U32(uint32(t.sets))
	w.U32(uint32(t.ways))
	w.U64(t.tick)
	for i := range t.tags {
		if !t.ok[i] {
			w.Bool(false)
			continue
		}
		w.Bool(true)
		w.U64(t.tags[i])
		w.U64(t.use[i])
		enc(w, t.val[i])
	}
}

func restoreAssoc[V any](r *snapshot.Reader, t *assoc[V], dec func(*snapshot.Reader) V) error {
	sets, ways := r.U32(), r.U32()
	if r.Err() != nil {
		return r.Err()
	}
	if int(sets) != t.sets || int(ways) != t.ways {
		return fmt.Errorf("core: table geometry %dx%d, have %dx%d", sets, ways, t.sets, t.ways)
	}
	t.tick = r.U64()
	var zero V
	for i := range t.tags {
		ok := r.Bool()
		if r.Err() != nil {
			return r.Err()
		}
		t.ok[i] = ok
		if !ok {
			t.tags[i], t.use[i], t.val[i] = 0, 0, zero
			continue
		}
		t.tags[i] = r.U64()
		t.use[i] = r.U64()
		t.val[i] = dec(r)
		if r.Err() == nil && t.setOf(t.tags[i]) != i/t.ways {
			return fmt.Errorf("core: entry %d holds tag %#x belonging to set %d", i, t.tags[i], t.setOf(t.tags[i]))
		}
	}
	return r.Err()
}

func encRDTT(w *snapshot.Writer, e rdttEntry) {
	w.U64(uint64(e.pc))
	w.U32(uint32(e.offset))
	w.U64(e.pattern)
	w.Bool(e.dirty)
}

func decRDTT(r *snapshot.Reader) rdttEntry {
	return rdttEntry{
		pc:      mem.PC(r.U64()),
		offset:  uint(r.U32()),
		pattern: r.U64(),
		dirty:   r.Bool(),
	}
}

// SnapshotTo serializes the predictor's four tables and counters.
func (p *Predictor) SnapshotTo(w *snapshot.Writer) {
	w.Section("predictor")
	w.Any(p.stats)
	snapAssoc(w, p.trigger, encRDTT)
	snapAssoc(w, p.density, encRDTT)
	snapAssoc(w, p.bht, func(w *snapshot.Writer, v uint64) { w.U64(v) })
	snapAssoc(w, p.drt, func(*snapshot.Writer, drtEntry) {})
}

// RestoreFrom replaces the predictor's state with a snapshot's. The
// predictor must be configured with the geometry the snapshot was taken
// from.
func (p *Predictor) RestoreFrom(r *snapshot.Reader) error {
	r.Section("predictor")
	r.AnyInto(&p.stats)
	if err := restoreAssoc(r, p.trigger, decRDTT); err != nil {
		return err
	}
	if err := restoreAssoc(r, p.density, decRDTT); err != nil {
		return err
	}
	if err := restoreAssoc(r, p.bht, func(r *snapshot.Reader) uint64 { return r.U64() }); err != nil {
		return err
	}
	if err := restoreAssoc(r, p.drt, func(*snapshot.Reader) drtEntry { return drtEntry{} }); err != nil {
		return err
	}
	return r.Err()
}
