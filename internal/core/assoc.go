package core

// assoc is a fixed-geometry set-associative table with LRU replacement,
// shared by the RDTT's trigger and density tables, the bulk history table
// and the dirty region table. Keys are uint64 tags (region addresses or
// PC⊕offset signatures); values are small per-entry structs.
type assoc[V any] struct {
	sets int
	ways int
	tags []uint64
	ok   []bool
	val  []V
	use  []uint64
	tick uint64
}

func newAssoc[V any](entries, ways int) *assoc[V] {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("core: table entries must be a positive multiple of ways")
	}
	sets := entries / ways
	if sets&(sets-1) != 0 {
		panic("core: table set count must be a power of two")
	}
	return &assoc[V]{
		sets: sets,
		ways: ways,
		tags: make([]uint64, entries),
		ok:   make([]bool, entries),
		val:  make([]V, entries),
		use:  make([]uint64, entries),
	}
}

func (t *assoc[V]) setOf(tag uint64) int { return int(tag & uint64(t.sets-1)) }

// lookup returns a pointer to tag's value, touching LRU state on hit.
func (t *assoc[V]) lookup(tag uint64) (*V, bool) {
	s := t.setOf(tag)
	for i := s * t.ways; i < (s+1)*t.ways; i++ {
		if t.ok[i] && t.tags[i] == tag {
			t.tick++
			t.use[i] = t.tick
			return &t.val[i], true
		}
	}
	return nil, false
}

// insert places tag with value v, returning the displaced entry (if any)
// so the caller can run its termination logic (RDTT conflicts inform the
// BHT/DRT).
func (t *assoc[V]) insert(tag uint64, v V) (victimTag uint64, victimVal V, displaced bool) {
	s := t.setOf(tag)
	victim := s * t.ways
	for i := s * t.ways; i < (s+1)*t.ways; i++ {
		if t.ok[i] && t.tags[i] == tag {
			// Overwrite in place.
			t.tick++
			t.val[i] = v
			t.use[i] = t.tick
			return 0, victimVal, false
		}
		if !t.ok[i] {
			victim = i
			break
		}
		if t.use[i] < t.use[victim] {
			victim = i
		}
	}
	if t.ok[victim] {
		victimTag, victimVal, displaced = t.tags[victim], t.val[victim], true
	}
	t.tick++
	t.tags[victim] = tag
	t.ok[victim] = true
	t.val[victim] = v
	t.use[victim] = t.tick
	return victimTag, victimVal, displaced
}

// remove invalidates tag, returning its value.
func (t *assoc[V]) remove(tag uint64) (V, bool) {
	var zero V
	s := t.setOf(tag)
	for i := s * t.ways; i < (s+1)*t.ways; i++ {
		if t.ok[i] && t.tags[i] == tag {
			v := t.val[i]
			t.ok[i] = false
			t.val[i] = zero
			return v, true
		}
	}
	return zero, false
}

// len returns the number of valid entries (test/introspection helper).
func (t *assoc[V]) len() int {
	n := 0
	for _, v := range t.ok {
		if v {
			n++
		}
	}
	return n
}
