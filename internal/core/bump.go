// Package core implements the paper's contribution: the BuMP predictor
// (Bulk Memory Access Prediction and Streaming, Section IV).
//
// BuMP sits next to the LLC and watches its access and eviction streams.
// Three structures cooperate:
//
//   - The region density tracking table (RDTT) — a trigger table for
//     regions with a single accessed block plus a density table holding an
//     accessed-block bit vector — measures each cache-resident region's
//     access density and remembers the PC+offset of the access that
//     triggered it.
//   - The bulk history table (BHT) records PC+offset tuples whose regions
//     turned out to be high-density. On an LLC read miss whose PC+offset
//     hits in the BHT, BuMP streams the entire region from DRAM (bulk
//     read).
//   - The dirty region table (DRT) records cache-resident high-density
//     modified regions that left the RDTT. On a dirty LLC eviction that
//     hits an RDTT modified high-density region or the DRT, BuMP eagerly
//     writes back the region's remaining dirty blocks (bulk write).
//
// The predictor is a decision engine only: it consumes LLC events and
// reports "stream this region" / "write this region back". Request
// generation (scanning the LLC for missing or dirty blocks) is done by the
// caller, which owns the LLC — see internal/sim and the public bump
// package's generation helpers.
package core

import (
	"fmt"

	"bump/internal/mem"
)

// Config sizes the predictor (Section IV.D: ~14KB total).
type Config struct {
	// RegionShift is log2 of the region size in bytes (default 10 = 1KB).
	RegionShift uint
	// DensityThreshold is the minimum number of accessed blocks for a
	// region to be labelled high-density (default 8 of 16 = 50%).
	DensityThreshold uint

	TriggerEntries int // 256
	DensityEntries int // 256
	BHTEntries     int // 1024
	DRTEntries     int // 1024
	Ways           int // 16 (all structures are 16-way set-associative)

	// FullRegion disables prediction and bulk-transfers every region on
	// any LLC miss / dirty eviction (the "Full-region" strawman of
	// Fig. 8-10).
	FullRegion bool

	// Footprint stores the trained access pattern in the BHT and
	// streams only the predicted blocks instead of the whole region —
	// the SMS-style alternative the paper argues against (footprints
	// cost more storage per entry and forgo guaranteed whole-row
	// transfers). Exposed as an ablation.
	Footprint bool
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{
		RegionShift:      mem.DefaultRegionShift,
		DensityThreshold: 8,
		TriggerEntries:   256,
		DensityEntries:   256,
		BHTEntries:       1024,
		DRTEntries:       1024,
		Ways:             16,
	}
}

// Validate checks structural parameters.
func (c Config) Validate() error {
	if c.RegionShift <= mem.BlockShift || c.RegionShift > 16 {
		return fmt.Errorf("core: region shift %d out of range", c.RegionShift)
	}
	n := mem.BlocksPerRegion(c.RegionShift)
	if n > 64 {
		return fmt.Errorf("core: regions above 64 blocks unsupported")
	}
	if c.DensityThreshold == 0 || c.DensityThreshold > n {
		return fmt.Errorf("core: threshold %d invalid for %d-block regions", c.DensityThreshold, n)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("core: ways must be positive")
	}
	for _, e := range []int{c.TriggerEntries, c.DensityEntries, c.BHTEntries, c.DRTEntries} {
		if e < c.Ways || e%c.Ways != 0 {
			return fmt.Errorf("core: table size %d incompatible with %d ways", e, c.Ways)
		}
	}
	return nil
}

// StorageBits returns the predictor's total storage in bits, following the
// paper's accounting (Section IV.D: RDTT 2.5KB+3KB, BHT 4.5KB, DRT 4.25KB
// ≈ 14KB for the default configuration).
func (c Config) StorageBits() int {
	blocks := int(mem.BlocksPerRegion(c.RegionShift))
	offBits := 0
	for 1<<offBits < blocks {
		offBits++
	}
	const regionTag = 26 // region address tag bits (40-bit physical space)
	const pcBits = 32    // truncated virtual PC, as in SMS
	trigger := c.TriggerEntries * (regionTag + pcBits + offBits + 1 /*dirty*/ + 1 /*valid*/)
	density := c.DensityEntries * (regionTag + pcBits + offBits + blocks + 1 + 1)
	bht := c.BHTEntries * (pcBits + offBits + 1)
	drt := c.DRTEntries * (regionTag + 1 + 1)
	return trigger + density + bht + drt
}

// Stats counts predictor events.
type Stats struct {
	// Trained regions by classification at termination.
	HighDensityRegions uint64
	LowDensityRegions  uint64
	// BHT activity.
	BHTHits   uint64
	BHTMisses uint64
	// BulkReads counts regions streamed; BulkWrites counts regions
	// eagerly written back.
	BulkReads  uint64
	BulkWrites uint64
	// DRT activity.
	DRTInserts uint64
	DRTHits    uint64
	// Terminations by cause.
	EvictTerminations    uint64
	ConflictTerminations uint64
}

type rdttEntry struct {
	pc      mem.PC
	offset  uint
	pattern uint64 // accessed-block bit vector (bit i = block i of region)
	dirty   bool
}

type drtEntry struct{}

// Predictor is the BuMP engine.
type Predictor struct {
	cfg     Config
	trigger *assoc[rdttEntry]
	density *assoc[rdttEntry]
	bht     *assoc[uint64] // trained footprint pattern (union)
	drt     *assoc[drtEntry]
	stats   Stats
}

// New builds a predictor; it panics on invalid configuration (construction
// is setup-time).
func New(cfg Config) *Predictor {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Predictor{
		cfg:     cfg,
		trigger: newAssoc[rdttEntry](cfg.TriggerEntries, cfg.Ways),
		density: newAssoc[rdttEntry](cfg.DensityEntries, cfg.Ways),
		bht:     newAssoc[uint64](cfg.BHTEntries, cfg.Ways),
		drt:     newAssoc[drtEntry](cfg.DRTEntries, cfg.Ways),
	}
}

// Config returns the configuration.
func (p *Predictor) Config() Config { return p.cfg }

// Stats returns a copy of the counters.
func (p *Predictor) Stats() Stats { return p.stats }

// RegionOf maps a block to its region under the predictor's region size.
func (p *Predictor) RegionOf(b mem.BlockAddr) mem.RegionAddr {
	return b.Region(p.cfg.RegionShift)
}

// signature combines PC and region offset into a BHT tag, mirroring the
// paper's PC,offset indexing (Section IV.B).
func (p *Predictor) signature(pc mem.PC, offset uint) uint64 {
	return uint64(pc)<<4 ^ uint64(offset)
}

func (p *Predictor) popcount(pattern uint64) uint {
	n := uint(0)
	for x := pattern; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func (p *Predictor) isHighDensity(e rdttEntry) bool {
	return p.popcount(e.pattern) >= p.cfg.DensityThreshold
}

// Touch feeds one LLC demand access (hit or miss) into the RDTT
// (Section IV.B, Fig. 7). write marks store-originated accesses, which set
// the region's dirty bit (Section IV.C).
func (p *Predictor) Touch(pc mem.PC, b mem.BlockAddr, write bool) {
	if p.cfg.FullRegion {
		return // the strawman tracks nothing
	}
	region := uint64(p.RegionOf(b))
	off := b.Offset(p.cfg.RegionShift)
	bit := uint64(1) << off

	if e, ok := p.density.lookup(region); ok {
		e.pattern |= bit
		e.dirty = e.dirty || write
		return
	}
	if e, ok := p.trigger.lookup(region); ok {
		// Second distinct access: transfer to the density table.
		ent := *e
		p.trigger.remove(region)
		ent.pattern |= bit
		ent.dirty = ent.dirty || write
		if vTag, vVal, displaced := p.density.insert(region, ent); displaced {
			p.terminate(mem.RegionAddr(vTag), vVal, false)
			p.stats.ConflictTerminations++
		}
		return
	}
	// First access: allocate in the trigger table.
	ent := rdttEntry{pc: pc, offset: off, pattern: bit, dirty: write}
	// Trigger-table conflicts carry no density information; the victim
	// is dropped (it had a single accessed block: low density).
	if _, _, displaced := p.trigger.insert(region, ent); displaced {
		p.stats.LowDensityRegions++
	}
}

// terminate runs the RDTT termination logic for a region leaving the
// density table. evictedDirtyBlock reports whether the terminating LLC
// eviction (if any) was dirty; conflicts pass false.
// It returns whether the region is modified high-density.
func (p *Predictor) terminate(region mem.RegionAddr, e rdttEntry, evictedDirtyBlock bool) (modifiedHigh bool) {
	if p.isHighDensity(e) {
		p.stats.HighDensityRegions++
		sig := p.signature(e.pc, e.offset)
		pattern := e.pattern
		if old, ok := p.bht.lookup(sig); ok {
			pattern |= *old // footprints accumulate across generations
		}
		p.bht.insert(sig, pattern)
		if e.dirty {
			modifiedHigh = true
			if !evictedDirtyBlock {
				// Still cache-resident (conflict) or terminated by a
				// clean eviction: remember it for a later dirty
				// eviction (Section IV.C).
				p.drt.insert(uint64(region), drtEntry{})
				p.stats.DRTInserts++
			}
		}
	} else {
		p.stats.LowDensityRegions++
	}
	return modifiedHigh
}

// ReadMiss consults the BHT on an LLC read miss (Section IV.B). It
// returns true when the predictor wants the whole region streamed from
// memory. The caller is responsible for generating the per-block requests
// (all region blocks not already cached, except the missing block itself).
func (p *Predictor) ReadMiss(pc mem.PC, b mem.BlockAddr) bool {
	stream, _ := p.ReadMissFootprint(pc, b)
	return stream
}

// ReadMissFootprint is ReadMiss plus the predicted block pattern. With
// Config.Footprint the pattern is the trained footprint (bit i = block i
// of the region); otherwise it covers the whole region — the paper's
// design, which guarantees a full-row transfer.
func (p *Predictor) ReadMissFootprint(pc mem.PC, b mem.BlockAddr) (stream bool, pattern uint64) {
	whole := uint64(1)<<mem.BlocksPerRegion(p.cfg.RegionShift) - 1
	if p.cfg.FullRegion {
		p.stats.BulkReads++
		return true, whole
	}
	off := b.Offset(p.cfg.RegionShift)
	if pat, ok := p.bht.lookup(p.signature(pc, off)); ok {
		p.stats.BHTHits++
		p.stats.BulkReads++
		if p.cfg.Footprint {
			return true, *pat
		}
		return true, whole
	}
	p.stats.BHTMisses++
	return false, 0
}

// Evict feeds one LLC eviction into BuMP (RDTT termination and DRT probe).
// It returns true when the predictor wants a bulk writeback of the
// evicted block's region (all remaining dirty blocks of the region).
func (p *Predictor) Evict(b mem.BlockAddr, dirty bool) (bulkWriteback bool) {
	if p.cfg.FullRegion {
		if dirty {
			p.stats.BulkWrites++
			return true
		}
		return false
	}
	region := p.RegionOf(b)
	tag := uint64(region)

	// An eviction inside an active region terminates it.
	if e, ok := p.density.remove(tag); ok {
		p.stats.EvictTerminations++
		modifiedHigh := p.terminate(region, e, dirty)
		if modifiedHigh && dirty {
			p.stats.BulkWrites++
			return true
		}
		return false
	}
	if _, ok := p.trigger.remove(tag); ok {
		// Single-access region: low density by definition.
		p.stats.EvictTerminations++
		p.stats.LowDensityRegions++
		return false
	}

	// Not RDTT-active: probe the DRT for a previously identified
	// high-density modified region.
	if dirty {
		if _, ok := p.drt.remove(tag); ok {
			p.stats.DRTHits++
			p.stats.BulkWrites++
			return true
		}
	}
	return false
}

// TableLens returns the live entry counts (introspection for tests and
// the design-space study).
func (p *Predictor) TableLens() (trigger, density, bht, drt int) {
	return p.trigger.len(), p.density.len(), p.bht.len(), p.drt.len()
}
