package core

import (
	"testing"
	"testing/quick"

	"bump/internal/mem"
)

const shift = mem.DefaultRegionShift

func block(region uint64, off uint) mem.BlockAddr {
	return mem.RegionAddr(region).Block(shift, off)
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config: %v", err)
	}
	for _, mut := range []func(*Config){
		func(c *Config) { c.RegionShift = 6 },
		func(c *Config) { c.RegionShift = 17 },
		func(c *Config) { c.DensityThreshold = 0 },
		func(c *Config) { c.DensityThreshold = 99 },
		func(c *Config) { c.Ways = 0 },
		func(c *Config) { c.BHTEntries = 3 },
	} {
		c := DefaultConfig()
		mut(&c)
		if c.Validate() == nil {
			t.Errorf("config %+v must be invalid", c)
		}
	}
}

func TestStorageBudgetIsRoughly14KB(t *testing.T) {
	// Section IV.D: the default configuration needs ~14KB.
	bits := DefaultConfig().StorageBits()
	kb := float64(bits) / 8 / 1024
	if kb < 10 || kb > 18 {
		t.Errorf("storage = %.1fKB, want ~14KB", kb)
	}
}

func TestAssocTable(t *testing.T) {
	a := newAssoc[int](4, 2) // 2 sets x 2 ways
	if _, ok := a.lookup(0); ok {
		t.Fatal("empty table lookup must miss")
	}
	a.insert(0, 10)
	a.insert(2, 20) // same set (even tags)
	if v, ok := a.lookup(0); !ok || *v != 10 {
		t.Fatal("lookup after insert")
	}
	// Insert a third even tag: LRU (tag 2) is displaced.
	vTag, vVal, displaced := a.insert(4, 40)
	if !displaced || vTag != 2 || vVal != 20 {
		t.Errorf("displacement = %v %d %d", displaced, vTag, vVal)
	}
	// Overwrite in place does not displace.
	if _, _, d := a.insert(0, 11); d {
		t.Error("overwrite must not displace")
	}
	if v, _ := a.lookup(0); *v != 11 {
		t.Error("overwrite value lost")
	}
	if v, ok := a.remove(0); !ok || v != 11 {
		t.Error("remove")
	}
	if a.len() != 1 {
		t.Errorf("len = %d", a.len())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad geometry must panic")
			}
		}()
		newAssoc[int](3, 2)
	}()
}

// touchRegion replays n distinct block accesses to a region with the given
// trigger PC.
func touchRegion(p *Predictor, region uint64, pc mem.PC, n uint) {
	for i := uint(0); i < n; i++ {
		p.Touch(pc, block(region, i), false)
	}
}

func TestHighDensityRegionTrainsBHT(t *testing.T) {
	p := New(DefaultConfig())
	touchRegion(p, 1, 0x400, 12) // 12 >= 8: high density
	p.Evict(block(1, 0), false)
	if p.Stats().HighDensityRegions != 1 {
		t.Fatalf("stats = %+v", p.Stats())
	}
	// Next region first-touched by the same PC at the same offset must
	// trigger a bulk read.
	if !p.ReadMiss(0x400, block(2, 0)) {
		t.Error("trained PC,offset must predict bulk")
	}
	if p.ReadMiss(0x999, block(3, 0)) {
		t.Error("unknown PC must not predict bulk")
	}
	if p.ReadMiss(0x400, block(3, 5)) {
		t.Error("same PC at different offset must not predict bulk")
	}
	st := p.Stats()
	if st.BHTHits != 1 || st.BHTMisses != 2 || st.BulkReads != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLowDensityRegionDoesNotTrain(t *testing.T) {
	p := New(DefaultConfig())
	touchRegion(p, 1, 0x400, 3) // 3 < 8: low density
	p.Evict(block(1, 0), false)
	if p.Stats().LowDensityRegions != 1 {
		t.Errorf("stats = %+v", p.Stats())
	}
	if p.ReadMiss(0x400, block(2, 0)) {
		t.Error("low-density trigger must not train the BHT")
	}
}

func TestOffsetMisalignmentHandled(t *testing.T) {
	// A software object starting at block 3 of its region trains
	// PC,offset=3; prediction must fire for a miss at offset 3 only.
	p := New(DefaultConfig())
	for i := uint(3); i < 16; i++ { // 13 blocks from offset 3
		p.Touch(0x400, block(1, i), false)
	}
	p.Evict(block(1, 3), false)
	if !p.ReadMiss(0x400, block(2, 3)) {
		t.Error("offset-3 trigger must predict at offset 3")
	}
	if p.ReadMiss(0x400, block(2, 0)) {
		t.Error("offset-0 miss must not match offset-3 training")
	}
}

func TestSingleAccessRegionIsLowDensity(t *testing.T) {
	p := New(DefaultConfig())
	p.Touch(0x400, block(1, 0), false)
	p.Evict(block(1, 0), false)
	st := p.Stats()
	if st.LowDensityRegions != 1 || st.HighDensityRegions != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDirtyEvictionTriggersBulkWriteback(t *testing.T) {
	p := New(DefaultConfig())
	for i := uint(0); i < 10; i++ {
		p.Touch(0x500, block(1, i), true) // stores
	}
	if !p.Evict(block(1, 0), true) {
		t.Error("dirty eviction in modified high-density region must bulk-writeback")
	}
	if p.Stats().BulkWrites != 1 {
		t.Errorf("stats = %+v", p.Stats())
	}
}

func TestCleanEvictionDefersToDRT(t *testing.T) {
	p := New(DefaultConfig())
	for i := uint(0); i < 10; i++ {
		p.Touch(0x500, block(1, i), true)
	}
	// Clean eviction terminates the region without an eager writeback
	// but records it in the DRT.
	if p.Evict(block(1, 0), false) {
		t.Error("clean eviction must not bulk-writeback")
	}
	if p.Stats().DRTInserts != 1 {
		t.Errorf("stats = %+v", p.Stats())
	}
	// The later dirty eviction hits the DRT.
	if !p.Evict(block(1, 2), true) {
		t.Error("dirty eviction must hit the DRT")
	}
	if p.Stats().DRTHits != 1 {
		t.Errorf("stats = %+v", p.Stats())
	}
	// The DRT entry is consumed.
	if p.Evict(block(1, 3), true) {
		t.Error("DRT entry must be invalidated after use")
	}
}

func TestCleanRegionNeverBulkWrites(t *testing.T) {
	p := New(DefaultConfig())
	touchRegion(p, 1, 0x400, 12) // reads only
	if p.Evict(block(1, 0), true) {
		t.Error("region without stores must not bulk-writeback")
	}
	if p.Stats().DRTInserts != 0 {
		t.Error("clean region must not enter the DRT")
	}
}

func TestDensityTableConflictTerminatesToDRTAndBHT(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TriggerEntries = 16
	cfg.DensityEntries = 16 // single set: 17th active region conflicts
	cfg.Ways = 16
	p := New(cfg)
	// Activate 16 modified high-density regions.
	for r := uint64(0); r < 16; r++ {
		for i := uint(0); i < 9; i++ {
			p.Touch(mem.PC(0x400+r), block(r, i), true)
		}
	}
	// A 17th region displaces the LRU (region 0): conflict termination.
	p.Touch(0x999, block(100, 0), false)
	p.Touch(0x999, block(100, 1), false)
	if p.Stats().ConflictTerminations != 1 {
		t.Fatalf("stats = %+v", p.Stats())
	}
	if p.Stats().DRTInserts != 1 {
		t.Errorf("conflict-terminated modified region must enter DRT: %+v", p.Stats())
	}
	// Region 0 is still cache-resident; its dirty eviction hits the DRT.
	if !p.Evict(block(0, 5), true) {
		t.Error("DRT must catch the conflict-terminated region")
	}
	// And its trigger PC,offset is trained.
	if !p.ReadMiss(0x400, block(200, 0)) {
		t.Error("conflict termination must still train the BHT")
	}
}

func TestFullRegionMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FullRegion = true
	p := New(cfg)
	if !p.ReadMiss(0x1, block(1, 0)) {
		t.Error("full-region must always bulk read")
	}
	if !p.Evict(block(1, 0), true) {
		t.Error("full-region must always bulk write on dirty eviction")
	}
	if p.Evict(block(1, 0), false) {
		t.Error("full-region must not bulk write on clean eviction")
	}
	p.Touch(0x1, block(1, 0), true) // must be a no-op
	tr, de, bh, dr := p.TableLens()
	if tr+de+bh+dr != 0 {
		t.Error("full-region mode must not populate tables")
	}
}

func TestThresholdBoundary(t *testing.T) {
	p := New(DefaultConfig())
	touchRegion(p, 1, 0x400, 8) // exactly at the threshold
	p.Evict(block(1, 0), false)
	if p.Stats().HighDensityRegions != 1 {
		t.Error("8 of 16 blocks (50%) must classify as high-density")
	}
	p2 := New(DefaultConfig())
	touchRegion(p2, 1, 0x400, 7)
	p2.Evict(block(1, 0), false)
	if p2.Stats().HighDensityRegions != 0 {
		t.Error("7 of 16 blocks must classify as low-density")
	}
}

func TestRepeatedTouchesCountOnce(t *testing.T) {
	p := New(DefaultConfig())
	// 20 accesses to only 2 distinct blocks: density 2, low.
	for i := 0; i < 10; i++ {
		p.Touch(0x400, block(1, 0), false)
		p.Touch(0x400, block(1, 1), false)
	}
	p.Evict(block(1, 0), false)
	if p.Stats().HighDensityRegions != 0 {
		t.Error("pattern bits must deduplicate repeated accesses")
	}
}

func TestSmallerRegionAndThreshold(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RegionShift = 9 // 512B = 8 blocks
	cfg.DensityThreshold = 4
	p := New(cfg)
	b0 := mem.RegionAddr(1).Block(9, 0)
	for i := uint(0); i < 5; i++ {
		p.Touch(0x400, mem.RegionAddr(1).Block(9, i), false)
	}
	p.Evict(b0, false)
	if p.Stats().HighDensityRegions != 1 {
		t.Error("5 of 8 blocks must be high-density at threshold 4")
	}
	if !p.ReadMiss(0x400, mem.RegionAddr(2).Block(9, 0)) {
		t.Error("prediction must work at 512B regions")
	}
}

// Property: the predictor never reports a bulk writeback for a clean
// eviction, and table occupancy never exceeds configured capacity.
func TestPredictorInvariantsProperty(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TriggerEntries = 32
	cfg.DensityEntries = 32
	cfg.BHTEntries = 64
	cfg.DRTEntries = 64
	cfg.Ways = 16
	f := func(ops []uint32) bool {
		p := New(cfg)
		for _, op := range ops {
			region := uint64(op>>8) % 64
			off := uint(op>>2) % 16
			pc := mem.PC(0x400 + uint64(op>>20)%8)
			b := block(region, off)
			switch op % 4 {
			case 0:
				p.Touch(pc, b, false)
			case 1:
				p.Touch(pc, b, true)
			case 2:
				p.ReadMiss(pc, b)
			case 3:
				if p.Evict(b, op&4 == 0) && op&4 != 0 {
					return false // bulk writeback on clean eviction
				}
			}
			tr, de, bh, dr := p.TableLens()
			if tr > cfg.TriggerEntries || de > cfg.DensityEntries || bh > cfg.BHTEntries || dr > cfg.DRTEntries {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFootprintVariant(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Footprint = true
	p := New(cfg)
	// Train a sparse-but-dense-enough pattern: blocks 0..7 only.
	for i := uint(0); i < 8; i++ {
		p.Touch(0x400, block(1, i), false)
	}
	p.Evict(block(1, 0), false)
	stream, pattern := p.ReadMissFootprint(0x400, block(2, 0))
	if !stream {
		t.Fatal("trained signature must stream")
	}
	if pattern != 0xFF {
		t.Errorf("pattern = %#x, want 0xFF (trained footprint)", pattern)
	}
	// Without Footprint the pattern covers the whole region.
	p2 := New(DefaultConfig())
	for i := uint(0); i < 8; i++ {
		p2.Touch(0x400, block(1, i), false)
	}
	p2.Evict(block(1, 0), false)
	_, whole := p2.ReadMissFootprint(0x400, block(2, 0))
	if whole != 0xFFFF {
		t.Errorf("whole-region pattern = %#x, want 0xFFFF", whole)
	}
}

func TestFootprintAccumulatesAcrossGenerations(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Footprint = true
	p := New(cfg)
	// Generation 1: blocks 0..7. Generation 2 (same signature): 8..15
	// with trigger offset 0... must keep offset-0 trigger: touch block 0
	// then 8..15.
	for i := uint(0); i < 8; i++ {
		p.Touch(0x400, block(1, i), false)
	}
	p.Evict(block(1, 0), false)
	p.Touch(0x400, block(2, 0), false)
	for i := uint(8); i < 16; i++ {
		p.Touch(0x400, block(2, i), false)
	}
	p.Evict(block(2, 0), false)
	_, pattern := p.ReadMissFootprint(0x400, block(3, 0))
	if pattern != 0xFFFF {
		t.Errorf("accumulated pattern = %#x, want 0xFFFF", pattern)
	}
}

func TestFullRegionFootprintIsWholeRegion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FullRegion = true
	p := New(cfg)
	stream, pattern := p.ReadMissFootprint(0x1, block(1, 0))
	if !stream || pattern != 0xFFFF {
		t.Errorf("full-region: stream=%v pattern=%#x", stream, pattern)
	}
}
