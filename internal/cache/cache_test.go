package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bump/internal/mem"
)

func TestNewValidation(t *testing.T) {
	for _, tc := range []struct{ bytes, ways int }{
		{0, 1},        // zero sets
		{100, 1},      // not block multiple
		{64 * 3, 1},   // 3 sets, not power of two
		{64 * 16, 0},  // zero ways
		{64 * 16, -1}, // negative ways
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) should panic", tc.bytes, tc.ways)
				}
			}()
			New(tc.bytes, tc.ways)
		}()
	}
	c := New(4<<20, 16)
	if c.Sets() != 4<<20/64/16 || c.Ways() != 16 {
		t.Errorf("geometry = %d sets x %d ways", c.Sets(), c.Ways())
	}
}

func TestFillLookupHitMiss(t *testing.T) {
	c := New(64*8, 2) // 4 sets, 2 ways
	b := mem.BlockAddr(5)
	if c.Lookup(b, true) != nil {
		t.Fatal("lookup on empty cache must miss")
	}
	c.Fill(b, 0x400, 1, false)
	l := c.Lookup(b, true)
	if l == nil || l.Block != b || !l.Valid {
		t.Fatal("fill then lookup must hit")
	}
	if l.PC != 0x400 || l.Core != 1 {
		t.Error("line metadata lost")
	}
	st := c.Stats()
	if st.Lookups != 2 || st.Hits != 1 || st.Misses != 1 || st.Fills != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUReplacement(t *testing.T) {
	c := New(64*2, 2) // 1 set, 2 ways
	c.Fill(0, 0, 0, false)
	c.Fill(1, 0, 0, false)
	c.Lookup(0, true) // make 1 the LRU
	_, ev := c.Fill(2, 0, 0, false)
	if !ev.Valid || ev.Line.Block != 1 {
		t.Errorf("expected eviction of block 1, got %+v", ev)
	}
	if !c.Contains(0) || !c.Contains(2) || c.Contains(1) {
		t.Error("wrong residency after replacement")
	}
}

func TestProbeDoesNotDisturbState(t *testing.T) {
	c := New(64*2, 2)
	c.Fill(0, 0, 0, false)
	c.Fill(1, 0, 0, false)
	before := c.Stats()
	c.Lookup(0, false) // probe must not promote or count
	after := c.Stats()
	if before != after {
		t.Error("probe changed statistics")
	}
	// Block 0 must still be LRU: fill evicts it.
	_, ev := c.Fill(2, 0, 0, false)
	if !ev.Valid || ev.Line.Block != 0 {
		t.Errorf("probe promoted block 0: eviction = %+v", ev)
	}
}

func TestDirtyEvictionAccounting(t *testing.T) {
	c := New(64*2, 1) // 2 sets, direct-mapped
	l, _ := c.Fill(0, 0, 0, false)
	l.Dirty = true
	_, ev := c.Fill(2, 0, 0, false) // same set (2 mod 2 == 0)
	if !ev.Valid || !ev.Line.Dirty {
		t.Fatalf("expected dirty eviction, got %+v", ev)
	}
	if st := c.Stats(); st.DirtyEvicts != 1 || st.Evictions != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRefillKeepsDirtyBit(t *testing.T) {
	c := New(64*4, 2)
	l, _ := c.Fill(3, 0, 0, false)
	l.Dirty = true
	l2, ev := c.Fill(3, 0x99, 2, true)
	if ev.Valid {
		t.Error("refill of resident block must not evict")
	}
	if !l2.Dirty {
		t.Error("refill lost the dirty bit")
	}
}

func TestPrefetchUseAccounting(t *testing.T) {
	c := New(64*2, 1)
	c.Fill(0, 0, 0, true) // prefetched
	c.Fill(1, 0, 0, true) // prefetched, other set
	c.Lookup(0, true)     // demand touches block 0
	c.Invalidate(0)
	c.Invalidate(1)
	st := c.Stats()
	if st.PrefetchUsed != 1 {
		t.Errorf("PrefetchUsed = %d, want 1", st.PrefetchUsed)
	}
	if st.PrefetchUnused != 1 {
		t.Errorf("PrefetchUnused = %d, want 1", st.PrefetchUnused)
	}
	// A second demand hit must not double-count PrefetchUsed.
	c.Fill(2, 0, 0, true)
	c.Lookup(2, true)
	c.Lookup(2, true)
	if st := c.Stats(); st.PrefetchUsed != 2 {
		t.Errorf("PrefetchUsed = %d, want 2", st.PrefetchUsed)
	}
}

func TestCleanBlock(t *testing.T) {
	c := New(64*4, 2)
	l, _ := c.Fill(7, 0, 0, false)
	l.Dirty = true
	if !c.CleanBlock(7) {
		t.Error("CleanBlock must report dirty")
	}
	if c.CleanBlock(7) {
		t.Error("second CleanBlock must report clean")
	}
	if c.CleanBlock(1234) {
		t.Error("CleanBlock on absent block must be false")
	}
}

func TestRegionScans(t *testing.T) {
	const shift = mem.DefaultRegionShift
	c := New(1<<20, 16)
	r := mem.RegionAddr(9)
	// Fill blocks 0,2,4 of region 9; dirty 2 and 4.
	for _, i := range []uint{0, 2, 4} {
		l, _ := c.Fill(r.Block(shift, i), 0, 0, false)
		if i != 0 {
			l.Dirty = true
		}
	}
	dirty := c.DirtyBlocksInRegion(r, shift)
	if len(dirty) != 2 || dirty[0] != r.Block(shift, 2) || dirty[1] != r.Block(shift, 4) {
		t.Errorf("dirty = %v", dirty)
	}
	missing := c.MissingBlocksInRegion(r, shift, r.Block(shift, 1))
	// 16 blocks, 3 resident, 1 excluded (block 1 is absent but excluded).
	if len(missing) != 12 {
		t.Errorf("missing = %d blocks, want 12", len(missing))
	}
	for _, b := range missing {
		if c.Contains(b) {
			t.Errorf("missing list contains resident block %#x", uint64(b))
		}
		if b == r.Block(shift, 1) {
			t.Error("excluded block present in missing list")
		}
	}
}

// Property: residency never exceeds capacity and a filled block is always
// immediately resident.
func TestCapacityInvariantProperty(t *testing.T) {
	f := func(seed int64, raw []uint16) bool {
		c := New(64*32, 4) // 8 sets x 4 ways
		rng := rand.New(rand.NewSource(seed))
		resident := 0
		for _, r := range raw {
			b := mem.BlockAddr(r % 128)
			switch rng.Intn(3) {
			case 0:
				was := c.Contains(b)
				_, ev := c.Fill(b, 0, 0, false)
				if !c.Contains(b) {
					return false
				}
				if !was && !ev.Valid {
					resident++
				}
				if was && ev.Valid {
					return false // refill must not evict
				}
			case 1:
				c.Lookup(b, true)
			case 2:
				if _, ok := c.Invalidate(b); ok {
					resident--
				}
			}
			if resident > 32 || resident < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMSHRTable(t *testing.T) {
	tb := NewMSHRTable(2)
	if tb.Cap() != 2 || tb.Len() != 0 || tb.Full() {
		t.Fatal("fresh table state wrong")
	}
	m, merged, ok := tb.Allocate(10, true, 100)
	if !ok || merged || m.Block != 10 || !m.Demand {
		t.Fatalf("first allocate: m=%+v merged=%v ok=%v", m, merged, ok)
	}
	m2, merged, ok := tb.Allocate(10, false, 101)
	if !ok || !merged || m2 != m || len(m.Waiters) != 2 {
		t.Fatal("merge failed")
	}
	if !m.Demand {
		t.Error("demand flag lost on merge")
	}
	tb.Allocate(11, false, 0)
	if _, _, ok := tb.Allocate(12, true, 0); ok {
		t.Error("allocation must fail when full")
	}
	if tb.Stalls != 1 || tb.Allocs != 2 || tb.Merges != 1 {
		t.Errorf("counters: %+v", tb)
	}
	if e, ok := tb.Complete(10); !ok || len(e.Waiters) != 2 {
		t.Error("complete lost waiters")
	}
	if _, ok := tb.Complete(10); ok {
		t.Error("double complete must fail")
	}
	if tb.Len() != 1 {
		t.Errorf("Len = %d, want 1", tb.Len())
	}
}

func TestMSHRPrefetchUpgrade(t *testing.T) {
	tb := NewMSHRTable(4)
	m, _, _ := tb.Allocate(5, false, 0) // prefetch, no waiter token
	if m.Demand || len(m.Waiters) != 0 {
		t.Fatal("prefetch entry should have no demand/waiters")
	}
	tb.Allocate(5, true, 7)
	if !m.Demand {
		t.Error("demand merge must upgrade the entry")
	}
}

func TestMSHRCapValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewMSHRTable(0)
}
