package cache

import "bump/internal/mem"

// MSHR is one miss-status holding register: an outstanding fill and the
// demand accesses coalesced onto it.
type MSHR struct {
	Block mem.BlockAddr
	// Demand reports whether any waiter is a demand access (a pure
	// prefetch MSHR can be upgraded when a demand access merges).
	Demand bool
	// Waiters are opaque tokens (the simulator stores continuation IDs).
	Waiters []uint64
}

// MSHRTable tracks outstanding misses with a bounded number of entries,
// modelling the 10 L1-D MSHRs of Table II and the LLC's fill queue.
type MSHRTable struct {
	cap     int
	entries map[mem.BlockAddr]*MSHR
	// pool recycles completed entries (and their Waiters backing arrays)
	// so steady-state miss traffic allocates nothing.
	pool []*MSHR

	// Allocs counts successful allocations; Merges counts accesses
	// coalesced onto an existing entry; Stalls counts rejected
	// allocations (structure full).
	Allocs uint64
	Merges uint64
	Stalls uint64
}

// NewMSHRTable creates a table with the given capacity.
func NewMSHRTable(capacity int) *MSHRTable {
	if capacity <= 0 {
		panic("cache: MSHR capacity must be positive")
	}
	return &MSHRTable{cap: capacity, entries: make(map[mem.BlockAddr]*MSHR, capacity)}
}

// Cap returns the capacity.
func (t *MSHRTable) Cap() int { return t.cap }

// Len returns the number of outstanding entries.
func (t *MSHRTable) Len() int { return len(t.entries) }

// Full reports whether a new allocation would be rejected.
func (t *MSHRTable) Full() bool { return len(t.entries) >= t.cap }

// Lookup returns the outstanding entry for block b, if any.
func (t *MSHRTable) Lookup(b mem.BlockAddr) (*MSHR, bool) {
	e, ok := t.entries[b]
	return e, ok
}

// Allocate records a miss on block b. If an entry already exists the
// request merges onto it and merged == true. If the table is full and no
// entry exists, ok == false and the caller must retry later.
func (t *MSHRTable) Allocate(b mem.BlockAddr, demand bool, waiter uint64) (m *MSHR, merged, ok bool) {
	if e, exists := t.entries[b]; exists {
		t.Merges++
		e.Demand = e.Demand || demand
		e.Waiters = append(e.Waiters, waiter)
		return e, true, true
	}
	if t.Full() {
		t.Stalls++
		return nil, false, false
	}
	var e *MSHR
	if n := len(t.pool); n > 0 {
		e = t.pool[n-1]
		t.pool = t.pool[:n-1]
		e.Block, e.Demand, e.Waiters = b, demand, e.Waiters[:0]
	} else {
		e = &MSHR{Block: b, Demand: demand}
	}
	if waiter != 0 {
		e.Waiters = append(e.Waiters, waiter)
	}
	t.entries[b] = e
	t.Allocs++
	return e, false, true
}

// Complete removes and returns the entry for block b when its fill
// arrives. Returns false if no entry is outstanding.
func (t *MSHRTable) Complete(b mem.BlockAddr) (*MSHR, bool) {
	e, ok := t.entries[b]
	if !ok {
		return nil, false
	}
	delete(t.entries, b)
	return e, true
}

// Release returns a completed entry to the table's pool for reuse. The
// caller must be finished with the entry and its Waiters slice; callers
// that retain completed entries simply skip Release and let the GC have
// them.
func (t *MSHRTable) Release(e *MSHR) { t.pool = append(t.pool, e) }
