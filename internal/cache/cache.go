// Package cache implements the set-associative caches of the simulated
// CMP: per-core L1-D caches and the shared, banked last-level cache (LLC).
//
// The cache is a pure state container — lookup, fill, eviction, dirty
// tracking, LRU replacement — with no notion of time. Latency, banking
// conflicts and MSHR occupancy are imposed by the simulator driving it.
// Each line carries the metadata BuMP and the statistics need: the PC that
// triggered the fill, whether the fill was a prefetch/bulk transfer, and
// whether a demand access referenced it after the fill (overfetch
// accounting, Fig. 8).
package cache

import (
	"fmt"

	"bump/internal/mem"
)

// Line is one cache block's bookkeeping state.
type Line struct {
	Block mem.BlockAddr
	Valid bool
	Dirty bool
	// Prefetched marks lines filled by a prefetcher or bulk transfer
	// rather than a demand miss.
	Prefetched bool
	// Referenced marks lines touched by a demand access since fill;
	// a Prefetched line evicted with Referenced == false is overfetch.
	Referenced bool
	// PC is the instruction that triggered the fill (demand) or the
	// bulk trigger instruction (bulk fills).
	PC mem.PC
	// Core is the originating core of the fill.
	Core int
	// Cleaned marks lines whose dirty data was written back eagerly
	// (VWQ / BuMP bulk writes) while staying resident; re-dirtying such
	// a line means the eager writeback was premature (Fig. 8's "extra
	// writebacks").
	Cleaned bool

	lastUse uint64
}

// Eviction describes the victim displaced by a fill.
type Eviction struct {
	// Valid reports whether a valid line was displaced.
	Valid bool
	// Line is a copy of the displaced line's state.
	Line Line
}

// Stats aggregates the cache's event counters.
type Stats struct {
	Lookups     uint64
	Hits        uint64
	Misses      uint64
	Fills       uint64
	Evictions   uint64
	DirtyEvicts uint64
	// PrefetchUnused counts prefetched/bulk lines evicted without any
	// demand reference (overfetch at the LLC level).
	PrefetchUnused uint64
	// PrefetchUsed counts prefetched/bulk lines that a demand access hit.
	PrefetchUsed uint64
}

// Cache is a set-associative, write-back, write-allocate cache with LRU
// replacement.
type Cache struct {
	sets  int
	ways  int
	lines []Line // sets*ways, set-major
	tick  uint64
	stats Stats
}

// New builds a cache of totalBytes capacity with the given associativity.
// totalBytes must be a multiple of ways*mem.BlockBytes and the resulting
// set count must be a power of two (matching real indexing hardware).
func New(totalBytes, ways int) *Cache {
	if ways <= 0 {
		panic("cache: ways must be positive")
	}
	blocks := totalBytes / mem.BlockBytes
	if blocks*mem.BlockBytes != totalBytes {
		panic("cache: size must be a multiple of the block size")
	}
	sets := blocks / ways
	if sets == 0 || sets*ways != blocks {
		panic("cache: size must be a multiple of ways*blockBytes")
	}
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d must be a power of two", sets))
	}
	return &Cache{sets: sets, ways: ways, lines: make([]Line, sets*ways)}
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) setOf(b mem.BlockAddr) int { return int(uint64(b) & uint64(c.sets-1)) }

func (c *Cache) set(b mem.BlockAddr) []Line {
	s := c.setOf(b)
	return c.lines[s*c.ways : (s+1)*c.ways]
}

// Lookup finds the line holding block b. When touch is true the access
// updates LRU state, marks the line Referenced, and counts in hit/miss
// statistics; probe-only lookups (touch == false) leave all state intact.
// The returned pointer stays valid until the next fill in the same set.
func (c *Cache) Lookup(b mem.BlockAddr, touch bool) *Line {
	set := c.set(b)
	if touch {
		c.stats.Lookups++
	}
	for i := range set {
		if set[i].Valid && set[i].Block == b {
			if touch {
				c.stats.Hits++
				c.tick++
				set[i].lastUse = c.tick
				if set[i].Prefetched && !set[i].Referenced {
					c.stats.PrefetchUsed++
				}
				set[i].Referenced = true
			}
			return &set[i]
		}
	}
	if touch {
		c.stats.Misses++
	}
	return nil
}

// Contains reports whether block b is resident, without touching any state.
func (c *Cache) Contains(b mem.BlockAddr) bool { return c.Lookup(b, false) != nil }

// Fill inserts block b, evicting the LRU line of its set if necessary, and
// returns the new line plus the eviction record. Filling a block that is
// already resident refreshes its metadata but keeps its dirty bit.
func (c *Cache) Fill(b mem.BlockAddr, pc mem.PC, core int, prefetched bool) (*Line, Eviction) {
	set := c.set(b)
	c.stats.Fills++
	// Already resident: refresh.
	for i := range set {
		if set[i].Valid && set[i].Block == b {
			c.tick++
			set[i].lastUse = c.tick
			return &set[i], Eviction{}
		}
	}
	victim := 0
	for i := range set {
		if !set[i].Valid {
			victim = i
			break
		}
		if set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	var ev Eviction
	if set[victim].Valid {
		ev = Eviction{Valid: true, Line: set[victim]}
		c.noteEvict(&set[victim])
	}
	c.tick++
	set[victim] = Line{Block: b, Valid: true, PC: pc, Core: core, Prefetched: prefetched, lastUse: c.tick}
	return &set[victim], ev
}

func (c *Cache) noteEvict(l *Line) {
	c.stats.Evictions++
	if l.Dirty {
		c.stats.DirtyEvicts++
	}
	if l.Prefetched && !l.Referenced {
		c.stats.PrefetchUnused++
	}
}

// Invalidate removes block b, returning a copy of the removed line. Used
// for eager writeback mechanisms that clean or remove blocks out of band.
func (c *Cache) Invalidate(b mem.BlockAddr) (Line, bool) {
	set := c.set(b)
	for i := range set {
		if set[i].Valid && set[i].Block == b {
			c.noteEvict(&set[i])
			l := set[i]
			set[i] = Line{}
			return l, true
		}
	}
	return Line{}, false
}

// CleanBlock clears the dirty bit of block b if resident, returning whether
// the block was dirty. Eager writeback (VWQ, BuMP bulk writes) uses this to
// write back blocks without evicting them.
func (c *Cache) CleanBlock(b mem.BlockAddr) (wasDirty bool) {
	if l := c.Lookup(b, false); l != nil && l.Dirty {
		l.Dirty = false
		l.Cleaned = true
		return true
	}
	return false
}

// DirtyBlocksInRegion returns the resident dirty blocks of region r in
// ascending block order. BuMP's writeback generation logic and VWQ's
// adjacent-block search both scan the LLC this way.
func (c *Cache) DirtyBlocksInRegion(r mem.RegionAddr, regionShift uint) []mem.BlockAddr {
	return c.AppendDirtyBlocksInRegion(nil, r, regionShift)
}

// AppendDirtyBlocksInRegion is DirtyBlocksInRegion into a caller-supplied
// buffer (typically a reused scratch slice), avoiding a per-scan
// allocation on the bulk-writeback path.
func (c *Cache) AppendDirtyBlocksInRegion(dst []mem.BlockAddr, r mem.RegionAddr, regionShift uint) []mem.BlockAddr {
	n := mem.BlocksPerRegion(regionShift)
	for i := uint(0); i < n; i++ {
		b := r.Block(regionShift, i)
		if l := c.Lookup(b, false); l != nil && l.Dirty {
			dst = append(dst, b)
		}
	}
	return dst
}

// MissingBlocksInRegion returns region r's blocks that are not resident, in
// ascending order, excluding the block `except` (the demand trigger).
// BuMP's access generation logic uses it to build a bulk read.
func (c *Cache) MissingBlocksInRegion(r mem.RegionAddr, regionShift uint, except mem.BlockAddr) []mem.BlockAddr {
	return c.AppendMissingBlocksInRegion(nil, r, regionShift, except)
}

// AppendMissingBlocksInRegion is MissingBlocksInRegion into a
// caller-supplied buffer (typically a reused scratch slice), avoiding a
// per-scan allocation on the bulk-read generation path.
func (c *Cache) AppendMissingBlocksInRegion(dst []mem.BlockAddr, r mem.RegionAddr, regionShift uint, except mem.BlockAddr) []mem.BlockAddr {
	n := mem.BlocksPerRegion(regionShift)
	for i := uint(0); i < n; i++ {
		b := r.Block(regionShift, i)
		if b == except {
			continue
		}
		if c.Lookup(b, false) == nil {
			dst = append(dst, b)
		}
	}
	return dst
}
