package cache

import (
	"fmt"
	"sort"

	"bump/internal/mem"
	"bump/internal/snapshot"
)

// Line flag bits in the snapshot encoding.
const (
	lineValid      = 1 << 0
	lineDirty      = 1 << 1
	linePrefetched = 1 << 2
	lineReferenced = 1 << 3
	lineCleaned    = 1 << 4
)

// SnapshotTo serializes the cache: geometry (validated on restore), LRU
// clock, statistics, and every line. Invalid lines collapse to a single
// zero flag byte, so semantically equal caches encode identically.
func (c *Cache) SnapshotTo(w *snapshot.Writer) {
	w.Section("cache")
	w.U32(uint32(c.sets))
	w.U32(uint32(c.ways))
	w.U64(c.tick)
	w.Any(c.stats)
	for i := range c.lines {
		l := &c.lines[i]
		if !l.Valid {
			w.U8(0)
			continue
		}
		var flags uint8 = lineValid
		if l.Dirty {
			flags |= lineDirty
		}
		if l.Prefetched {
			flags |= linePrefetched
		}
		if l.Referenced {
			flags |= lineReferenced
		}
		if l.Cleaned {
			flags |= lineCleaned
		}
		w.U8(flags)
		w.U64(uint64(l.Block))
		w.U64(uint64(l.PC))
		w.I64(int64(l.Core))
		w.U64(l.lastUse)
	}
}

// RestoreFrom replaces the cache's state with a snapshot's. The target
// cache must have the same geometry the snapshot was taken from.
func (c *Cache) RestoreFrom(r *snapshot.Reader) error {
	r.Section("cache")
	sets, ways := r.U32(), r.U32()
	if r.Err() != nil {
		return r.Err()
	}
	if int(sets) != c.sets || int(ways) != c.ways {
		return fmt.Errorf("cache: snapshot geometry %dx%d, cache is %dx%d", sets, ways, c.sets, c.ways)
	}
	c.tick = r.U64()
	r.AnyInto(&c.stats)
	for i := range c.lines {
		flags := r.U8()
		if r.Err() != nil {
			return r.Err()
		}
		if flags&lineValid == 0 {
			if flags != 0 {
				return fmt.Errorf("cache: invalid line with non-zero flags %#x", flags)
			}
			c.lines[i] = Line{}
			continue
		}
		c.lines[i] = Line{
			Block:      mem.BlockAddr(r.U64()),
			Valid:      true,
			Dirty:      flags&lineDirty != 0,
			Prefetched: flags&linePrefetched != 0,
			Referenced: flags&lineReferenced != 0,
			Cleaned:    flags&lineCleaned != 0,
			PC:         mem.PC(r.U64()),
			Core:       int(r.I64()),
			lastUse:    r.U64(),
		}
		// A resident line must live in the set its address indexes, or
		// lookups would silently miss it after restore.
		if r.Err() == nil && c.setOf(c.lines[i].Block) != i/c.ways {
			return fmt.Errorf("cache: line %d holds block %#x belonging to set %d", i, uint64(c.lines[i].Block), c.setOf(c.lines[i].Block))
		}
	}
	return r.Err()
}

// SnapshotTo serializes the MSHR table: capacity (validated), counters,
// and the outstanding entries in ascending block order (the pool of
// recycled entries is transient and skipped).
func (t *MSHRTable) SnapshotTo(w *snapshot.Writer) {
	w.Section("mshr")
	w.U32(uint32(t.cap))
	w.U64(t.Allocs)
	w.U64(t.Merges)
	w.U64(t.Stalls)
	blocks := make([]mem.BlockAddr, 0, len(t.entries))
	for b := range t.entries {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	w.U32(uint32(len(blocks)))
	for _, b := range blocks {
		e := t.entries[b]
		w.U64(uint64(b))
		w.Bool(e.Demand)
		w.U32(uint32(len(e.Waiters)))
		for _, tok := range e.Waiters {
			w.U64(tok)
		}
	}
}

// RestoreFrom replaces the table's outstanding entries with a
// snapshot's.
func (t *MSHRTable) RestoreFrom(r *snapshot.Reader) error {
	r.Section("mshr")
	capGot := r.U32()
	if r.Err() != nil {
		return r.Err()
	}
	if int(capGot) != t.cap {
		return fmt.Errorf("cache: MSHR capacity %d, table has %d", capGot, t.cap)
	}
	t.Allocs = r.U64()
	t.Merges = r.U64()
	t.Stalls = r.U64()
	n := r.Len(8 + 1 + 4)
	if r.Err() != nil {
		return r.Err()
	}
	if n > t.cap {
		return fmt.Errorf("cache: %d outstanding MSHRs exceed capacity %d", n, t.cap)
	}
	t.entries = make(map[mem.BlockAddr]*MSHR, n)
	t.pool = nil
	for i := 0; i < n; i++ {
		b := mem.BlockAddr(r.U64())
		e := &MSHR{Block: b, Demand: r.Bool()}
		nw := r.Len(8)
		if r.Err() != nil {
			return r.Err()
		}
		e.Waiters = make([]uint64, nw)
		for j := range e.Waiters {
			e.Waiters[j] = r.U64()
		}
		if _, dup := t.entries[b]; dup {
			return fmt.Errorf("cache: duplicate MSHR for block %#x", uint64(b))
		}
		t.entries[b] = e
	}
	return r.Err()
}
