package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeed builds a valid single-segment log image holding recs.
func fuzzSeed(recs ...[]byte) []byte {
	out := make([]byte, headerLen)
	copy(out, magic)
	binary.LittleEndian.PutUint16(out[len(magic):], FormatVersion)
	for _, r := range recs {
		var frame [frameLen]byte
		binary.LittleEndian.PutUint32(frame[:], uint32(len(r)))
		binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(r))
		out = append(out, frame[:]...)
		out = append(out, r...)
	}
	return out
}

// FuzzWALOpen throws arbitrary bytes at a segment file: Open must never
// panic, torn-write/truncated-tail images must be rejected cleanly
// (healed or errored), and whatever Open accepts must reopen to the
// identical record sequence (truncation healing is idempotent).
func FuzzWALOpen(f *testing.F) {
	valid := fuzzSeed([]byte("alpha"), []byte("beta-beta"), nil, make([]byte, 300))
	f.Add(valid)
	f.Add(valid[:len(valid)-1])              // torn mid-body
	f.Add(valid[:len(valid)-310])            // torn mid-frame
	f.Add(valid[:headerLen])                 // header only
	f.Add(valid[:3])                         // short header
	f.Add([]byte{})                          // empty file
	flipped := append([]byte(nil), valid...) // CRC mismatch in tail record
	flipped[len(flipped)-1] ^= 0xA5
	f.Add(flipped)
	lying := fuzzSeed([]byte("x"))
	binary.LittleEndian.PutUint32(lying[headerLen:], 0xFFFFFFFF) // huge length claim
	f.Add(lying)
	foreign := append([]byte(nil), valid...)
	foreign[0] = 'Z'
	f.Add(foreign)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, segName(1))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		var first [][]byte
		l, err := Open(dir, Options{NoSync: true}, func(rec []byte) error {
			first = append(first, append([]byte(nil), rec...))
			return nil
		})
		if err != nil {
			return // rejected cleanly
		}
		l.Close()
		var second [][]byte
		l2, err := Open(dir, Options{NoSync: true}, func(rec []byte) error {
			second = append(second, append([]byte(nil), rec...))
			return nil
		})
		if err != nil {
			t.Fatalf("accepted once, rejected on reopen: %v", err)
		}
		defer l2.Close()
		if len(first) != len(second) {
			t.Fatalf("replay not idempotent: %d then %d records", len(first), len(second))
		}
		for i := range first {
			if string(first[i]) != string(second[i]) {
				t.Fatalf("record %d differs across reopen", i)
			}
		}
	})
}
