// Package wal implements an append-only, CRC-framed, versioned,
// segmented write-ahead log — the durability layer under the cluster
// coordinator's job/fleet state (internal/cluster.Store).
//
// Layout: a directory of numbered segment files
//
//	wal-00000001.log, wal-00000002.log, ...
//
// each beginning with an 10-byte header
//
//	magic "BUMPWAL\x00" (8B) | format version (u16, little-endian)
//
// followed by a sequence of framed records
//
//	payload length (u32) | CRC32-IEEE of payload (u32) | payload
//
// Payloads are opaque to this package; the owner layers its own record
// typing (and its checkpoint/reset convention) on top.
//
// The format follows the internal/snapshot codec's canons: little-
// endian, explicit version in the header (readers reject any other
// version — logs are regenerable, there is no migration path), CRC
// verified before a payload is handed out, and every length validated
// against the bytes actually present so corrupt input yields an error,
// never a panic or an unbounded allocation.
//
// Crash tolerance: a torn or truncated tail — the expected artifact of
// dying mid-write — is healed on Open by truncating the final segment
// back to its last complete, CRC-valid record. Corruption anywhere
// *before* the tail is real data loss and surfaces as an error.
// Compact starts a fresh segment with a caller-supplied checkpoint
// record and deletes the older segments, bounding replay work.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

const (
	// FormatVersion identifies the WAL byte layout. Bump it on any
	// change to the segment header or record framing.
	FormatVersion = 1

	magic     = "BUMPWAL\x00"
	headerLen = len(magic) + 2
	frameLen  = 8 // u32 length + u32 CRC
)

// Options tunes a Log. Zero values pick production defaults.
type Options struct {
	// SegmentBytes is the rotation threshold: an append that lands on a
	// segment already this large opens the next segment first
	// (default 4MB).
	SegmentBytes int64
	// NoSync skips the per-append fsync. Crash durability then depends
	// on the OS page cache; the format stays torn-tail-safe either way.
	NoSync bool
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}

// Stats snapshots a log's shape for observability (/v1/healthz).
type Stats struct {
	// Segments is the live segment-file count; SizeBytes their total
	// size.
	Segments  int
	SizeBytes int64
	// Replayed counts records delivered by Open's replay; Appended
	// counts records written since Open.
	Replayed uint64
	Appended uint64
	// TornTail reports that Open healed a torn or truncated final
	// record by truncating the last segment.
	TornTail bool
	// Compactions counts Compact calls since Open; LastCompaction is
	// the wall-clock time of the latest (zero when none).
	Compactions    uint64
	LastCompaction time.Time
}

// Log is an open write-ahead log. Methods are safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       *os.File
	seg     uint64 // index of the open (last) segment
	segSize int64
	segs    []uint64 // live segment indices, ascending
	stats   Stats
	closed  bool
}

func segName(idx uint64) string { return fmt.Sprintf("wal-%08d.log", idx) }

// Open opens (creating if necessary) the log in dir, replaying every
// surviving record to replay in write order before returning. A torn or
// truncated tail in the final segment is truncated away (replay sees
// records up to the last complete one); corruption in any earlier
// segment is an error. replay may be nil to skip delivery (records are
// still validated).
func Open(dir string, opts Options, replay func(rec []byte) error) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []uint64
	for _, e := range entries {
		var idx uint64
		if n, err := fmt.Sscanf(e.Name(), "wal-%d.log", &idx); n == 1 && err == nil && e.Name() == segName(idx) {
			segs = append(segs, idx)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })

	l := &Log{dir: dir, opts: opts, segs: segs}
	for i, idx := range segs {
		last := i == len(segs)-1
		size, err := l.replaySegment(idx, last, replay)
		if err != nil {
			return nil, err
		}
		if last {
			l.seg, l.segSize = idx, size
		}
		l.stats.SizeBytes += size
	}
	l.stats.Segments = len(segs)

	if len(segs) == 0 {
		if err := l.openSegmentLocked(1); err != nil {
			return nil, err
		}
	} else {
		f, err := os.OpenFile(filepath.Join(dir, segName(l.seg)), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.f = f
	}
	return l, nil
}

// replaySegment validates one segment and delivers its records. For the
// final segment a torn tail is healed by truncating the file to the
// last complete record; for earlier segments any damage is fatal.
// Returns the segment's (post-truncation) size.
func (l *Log) replaySegment(idx uint64, last bool, replay func([]byte) error) (int64, error) {
	path := filepath.Join(l.dir, segName(idx))
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	torn := func(off int, why string) (int64, error) {
		if !last {
			return 0, fmt.Errorf("wal: segment %s: %s at offset %d (not the final segment — records lost)", segName(idx), why, off)
		}
		l.stats.TornTail = true
		if err := os.Truncate(path, int64(off)); err != nil {
			return 0, fmt.Errorf("wal: heal torn tail of %s: %w", segName(idx), err)
		}
		return int64(off), nil
	}
	if len(data) < headerLen {
		return torn(0, "short header")
	}
	if string(data[:len(magic)]) != magic {
		return 0, fmt.Errorf("wal: segment %s: bad magic", segName(idx))
	}
	if v := binary.LittleEndian.Uint16(data[len(magic):]); v != FormatVersion {
		return 0, fmt.Errorf("wal: segment %s: format version %d, this build reads %d", segName(idx), v, FormatVersion)
	}
	off := headerLen
	for off < len(data) {
		if len(data)-off < frameLen {
			return torn(off, "torn record frame")
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		wantCRC := binary.LittleEndian.Uint32(data[off+4:])
		if len(data)-off-frameLen < n {
			return torn(off, "truncated record body")
		}
		payload := data[off+frameLen : off+frameLen+n]
		if crc32.ChecksumIEEE(payload) != wantCRC {
			return torn(off, "record CRC mismatch")
		}
		if replay != nil {
			if err := replay(payload); err != nil {
				return 0, fmt.Errorf("wal: replay record at %s+%d: %w", segName(idx), off, err)
			}
		}
		l.stats.Replayed++
		off += frameLen + n
	}
	return int64(off), nil
}

// openSegmentLocked creates segment idx, writes its header, and makes
// it the append target.
func (l *Log) openSegmentLocked(idx uint64) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segName(idx)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var hdr [headerLen]byte
	copy(hdr[:], magic)
	binary.LittleEndian.PutUint16(hdr[len(magic):], FormatVersion)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if l.f != nil {
		l.f.Close()
	}
	l.f = f
	l.seg = idx
	l.segSize = int64(headerLen)
	l.segs = append(l.segs, idx)
	l.stats.Segments = len(l.segs)
	l.stats.SizeBytes += int64(headerLen)
	return nil
}

// Append durably writes one record. The record is framed, written, and
// (unless NoSync) fsynced before Append returns; rotation to a new
// segment happens first when the current one is past SegmentBytes.
func (l *Log) Append(rec []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	if l.segSize >= l.opts.SegmentBytes {
		if err := l.openSegmentLocked(l.seg + 1); err != nil {
			return err
		}
	}
	return l.appendLocked(rec)
}

func (l *Log) appendLocked(rec []byte) error {
	buf := make([]byte, frameLen+len(rec))
	binary.LittleEndian.PutUint32(buf, uint32(len(rec)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(rec))
	copy(buf[frameLen:], rec)
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if !l.opts.NoSync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
	}
	l.segSize += int64(len(buf))
	l.stats.SizeBytes += int64(len(buf))
	l.stats.Appended++
	return nil
}

// Compact bounds replay work: it starts a fresh segment whose first
// record is checkpoint (the owner's full-state record; replay treats it
// as a reset) and deletes every older segment. A crash between the
// checkpoint write and the deletions is safe — replay simply walks the
// stale prefix before hitting the checkpoint record that resets it.
func (l *Log) Compact(checkpoint []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	if err := l.openSegmentLocked(l.seg + 1); err != nil {
		return err
	}
	if err := l.appendLocked(checkpoint); err != nil {
		return err
	}
	// Drop every segment but the one just opened.
	keep := l.segs[len(l.segs)-1]
	for _, idx := range l.segs[:len(l.segs)-1] {
		path := filepath.Join(l.dir, segName(idx))
		if fi, err := os.Stat(path); err == nil {
			l.stats.SizeBytes -= fi.Size()
		}
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("wal: compact: %w", err)
		}
	}
	l.segs = []uint64{keep}
	l.stats.Segments = 1
	l.stats.Compactions++
	l.stats.LastCompaction = time.Now()
	return nil
}

// Stats snapshots the log's shape.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Close syncs and closes the active segment. Further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if !l.opts.NoSync {
		l.f.Sync()
	}
	return l.f.Close()
}
