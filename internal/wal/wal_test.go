package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

func openCollect(t *testing.T, dir string, opts Options) (*Log, [][]byte) {
	t.Helper()
	var recs [][]byte
	l, err := Open(dir, opts, func(rec []byte) error {
		recs = append(recs, append([]byte(nil), rec...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l, recs
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, _ := openCollect(t, dir, Options{})
	want := [][]byte{[]byte("one"), []byte(""), []byte("three-3"), make([]byte, 4096)}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Appended != uint64(len(want)) || st.Segments != 1 {
		t.Fatalf("stats after append: %+v", st)
	}
	l.Close()

	_, got := openCollect(t, dir, Options{})
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Fatalf("record %d: %q != %q", i, got[i], want[i])
		}
	}
}

func TestWALSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, _ := openCollect(t, dir, Options{SegmentBytes: 256, NoSync: true})
	rec := make([]byte, 100)
	for i := 0; i < 10; i++ {
		rec[0] = byte(i)
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Segments < 3 {
		t.Fatalf("no rotation: %+v", st)
	}
	l.Close()
	_, got := openCollect(t, dir, Options{SegmentBytes: 256})
	if len(got) != 10 {
		t.Fatalf("replayed %d records across segments, want 10", len(got))
	}
	for i, r := range got {
		if r[0] != byte(i) {
			t.Fatalf("record %d out of order", i)
		}
	}
}

func TestWALCompactDeletesOldSegmentsAndResets(t *testing.T) {
	dir := t.TempDir()
	l, _ := openCollect(t, dir, Options{SegmentBytes: 128, NoSync: true})
	for i := 0; i < 20; i++ {
		if err := l.Append([]byte(fmt.Sprintf("pre-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Compact([]byte("checkpoint")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("post")); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Segments != 1 && st.Segments != 2 {
		t.Fatalf("compaction left %d segments", st.Segments)
	}
	if st.Compactions != 1 || st.LastCompaction.IsZero() {
		t.Fatalf("compaction stats: %+v", st)
	}
	l.Close()

	files, _ := os.ReadDir(dir)
	if len(files) > 2 {
		t.Fatalf("%d segment files survive compaction", len(files))
	}
	_, got := openCollect(t, dir, Options{})
	if len(got) != 2 || string(got[0]) != "checkpoint" || string(got[1]) != "post" {
		t.Fatalf("post-compaction replay: %q", got)
	}
}

// TestWALTornTailRecovery pins the acceptance criterion: a torn or
// truncated tail recovers to the last complete record, and the healed
// log accepts new appends that survive another reopen.
func TestWALTornTailRecovery(t *testing.T) {
	cuts := []struct {
		name string
		cut  func(data []byte) []byte
	}{
		{"mid-frame", func(d []byte) []byte { return d[:len(d)-3] }},
		{"mid-body", func(d []byte) []byte { return d[:len(d)-10] }},
		{"frame-only", func(d []byte) []byte { return d[:len(d)-20] }},
		{"corrupt-crc", func(d []byte) []byte { d[len(d)-1] ^= 0xFF; return d }},
	}
	for _, tc := range cuts {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l, _ := openCollect(t, dir, Options{})
			for i := 0; i < 3; i++ {
				if err := l.Append([]byte(fmt.Sprintf("rec-%d-padding-padding", i))); err != nil {
					t.Fatal(err)
				}
			}
			l.Close()
			path := filepath.Join(dir, segName(1))
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.cut(data), 0o644); err != nil {
				t.Fatal(err)
			}

			l2, got := openCollect(t, dir, Options{})
			if len(got) != 2 {
				t.Fatalf("replayed %d records after torn tail, want the 2 complete ones", len(got))
			}
			if !l2.Stats().TornTail {
				t.Fatal("healed log does not report its torn tail")
			}
			if err := l2.Append([]byte("after-heal")); err != nil {
				t.Fatal(err)
			}
			l2.Close()
			_, again := openCollect(t, dir, Options{})
			if len(again) != 3 || string(again[2]) != "after-heal" {
				t.Fatalf("append after heal lost: %q", again)
			}
		})
	}
}

// TestWALCorruptionBeforeTailIsFatal: damage that is not a tail artifact
// is data loss and must error, not silently truncate.
func TestWALCorruptionBeforeTailIsFatal(t *testing.T) {
	dir := t.TempDir()
	l, _ := openCollect(t, dir, Options{SegmentBytes: 64, NoSync: true})
	for i := 0; i < 8; i++ {
		if err := l.Append(make([]byte, 40)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Corrupt the first (non-final) segment's record body.
	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	os.WriteFile(path, data, 0o644)
	if _, err := Open(dir, Options{}, nil); err == nil {
		t.Fatal("corruption in a non-final segment must be fatal")
	}
}

func TestWALRejectsForeignFormat(t *testing.T) {
	for name, mutate := range map[string]func([]byte){
		"bad-magic":   func(h []byte) { h[0] = 'X' },
		"bad-version": func(h []byte) { binary.LittleEndian.PutUint16(h[len(magic):], FormatVersion+1) },
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			hdr := make([]byte, headerLen)
			copy(hdr, magic)
			binary.LittleEndian.PutUint16(hdr[len(magic):], FormatVersion)
			mutate(hdr)
			os.WriteFile(filepath.Join(dir, segName(1)), hdr, 0o644)
			if _, err := Open(dir, Options{}, nil); err == nil {
				t.Fatal("foreign header must be rejected")
			}
		})
	}
}

// TestWALLyingLengthPrefix: a length field claiming more bytes than the
// file holds is a torn tail (bounded by real file size), never an
// allocation amplifier or a panic.
func TestWALLyingLengthPrefix(t *testing.T) {
	dir := t.TempDir()
	l, _ := openCollect(t, dir, Options{})
	l.Append([]byte("good"))
	l.Close()
	path := filepath.Join(dir, segName(1))
	frame := make([]byte, frameLen)
	binary.LittleEndian.PutUint32(frame, 1<<31) // 2GB claim
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(nil))
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.Write(frame)
	f.Close()
	_, got := openCollect(t, dir, Options{})
	if len(got) != 1 || string(got[0]) != "good" {
		t.Fatalf("lying length prefix: replayed %q", got)
	}
}
