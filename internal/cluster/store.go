package cluster

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"bump/internal/service"
	"bump/internal/sim"
	"bump/internal/wal"
)

// Store is the coordinator's durable truth: job records, batch
// membership and fleet lifecycle, held in memory and (when opened with
// a data directory) persisted through an append-only WAL. Every
// mutation is logged before it is visible; a coordinator restarted on
// the same directory replays the log and carries on. Opened without a
// directory the store is memory-only — same semantics, no durability —
// which is what embedded coordinators (sweep -server w1,w2) use.
//
// Record encoding: one type byte ('J' job, 'B' batch, 'W' worker,
// 'C' checkpoint) followed by the record's canonical JSON. Mutations
// are whole-record upserts, so replay is a pure "last write wins" fold;
// a checkpoint record carries the entire folded state and resets it,
// which is what lets wal.Log.Compact bound replay work.
type Store struct {
	mu  sync.Mutex
	log *wal.Log

	jobs    map[string]*JobRecord
	batches map[string]*BatchRecord
	workers map[string]WorkerRecord // keyed by URL
	jobSeq  uint64                  // coordinator-local job ID counter
	bseq    uint64                  // batch ID counter

	compactEvery  uint64
	sinceCompact  uint64
	replayedJobs  int
	recoveredJobs int
}

// JobRecord is one tracked job. ID is the client-visible identifier,
// assigned by the coordinator and stable across worker failover and
// coordinator restarts; Worker/Local name the current assignment.
type JobRecord struct {
	ID    string          `json:"id"`
	Spec  service.JobSpec `json:"spec"`
	Key   string          `json:"key"`
	State service.State   `json:"state"`
	// Worker is the serving worker's registry ID, Local its job ID on
	// that worker. Empty while the job awaits (re-)placement.
	Worker string `json:"worker,omitempty"`
	Local  string `json:"local,omitempty"`
	// Terminal outcome.
	Hash   string      `json:"hash,omitempty"`
	Cached bool        `json:"cached,omitempty"`
	Result *sim.Result `json:"result,omitempty"`
	Error  string      `json:"error,omitempty"`
	// Batch/Index link a batch point back to its sweep.
	Batch string `json:"batch,omitempty"`
	Index int    `json:"index,omitempty"`
}

// BatchRecord is one tracked sweep: the full spec list plus the job ID
// of every point already placed ("" until its job record exists).
type BatchRecord struct {
	ID    string            `json:"id"`
	Specs []service.JobSpec `json:"specs"`
	Jobs  []string          `json:"jobs"`
}

// WorkerRecord persists fleet membership and lifecycle so a restarted
// coordinator knows its fleet before the first heartbeat arrives.
type WorkerRecord struct {
	ID        string    `json:"id"`
	URL       string    `json:"url"`
	Lifecycle Lifecycle `json:"lifecycle"`
}

// storeState is the checkpoint payload: the whole folded state.
type storeState struct {
	JobSeq  uint64         `json:"job_seq"`
	Bseq    uint64         `json:"batch_seq"`
	Workers []WorkerRecord `json:"workers"`
	Jobs    []JobRecord    `json:"jobs"`
	Batches []BatchRecord  `json:"batches"`
}

const (
	recJob        = 'J'
	recBatch      = 'B'
	recWorker     = 'W'
	recCheckpoint = 'C'
)

// StoreOptions tunes durability. Zero values pick defaults.
type StoreOptions struct {
	// Dir is the WAL directory; empty means memory-only.
	Dir string
	// WAL tunes segment rotation and fsync.
	WAL wal.Options
	// CompactEvery writes a checkpoint record and drops old segments
	// after this many appends (default 512).
	CompactEvery uint64
}

// OpenStore opens (or creates) the store, replaying any existing WAL.
func OpenStore(opts StoreOptions) (*Store, error) {
	s := &Store{
		jobs:         make(map[string]*JobRecord),
		batches:      make(map[string]*BatchRecord),
		workers:      make(map[string]WorkerRecord),
		compactEvery: opts.CompactEvery,
	}
	if s.compactEvery == 0 {
		s.compactEvery = 512
	}
	if opts.Dir == "" {
		return s, nil
	}
	log, err := wal.Open(opts.Dir, opts.WAL, s.fold)
	if err != nil {
		return nil, err
	}
	s.log = log
	s.replayedJobs = len(s.jobs)
	for _, j := range s.jobs {
		if !j.State.Terminal() {
			s.recoveredJobs++
		}
	}
	// Collapse the replayed history into one checkpoint so every
	// restart starts from a compact log.
	if err := s.compactLocked(); err != nil {
		log.Close()
		return nil, err
	}
	return s, nil
}

// fold applies one replayed WAL record to the in-memory state.
func (s *Store) fold(rec []byte) error {
	if len(rec) == 0 {
		return fmt.Errorf("cluster: empty WAL record")
	}
	body := rec[1:]
	switch rec[0] {
	case recJob:
		var j JobRecord
		if err := json.Unmarshal(body, &j); err != nil {
			return fmt.Errorf("cluster: job record: %w", err)
		}
		s.jobs[j.ID] = &j
		var n uint64
		if _, err := fmt.Sscanf(j.ID, "c%d", &n); err == nil && n > s.jobSeq {
			s.jobSeq = n
		}
	case recBatch:
		var b BatchRecord
		if err := json.Unmarshal(body, &b); err != nil {
			return fmt.Errorf("cluster: batch record: %w", err)
		}
		s.batches[b.ID] = &b
		var n uint64
		if _, err := fmt.Sscanf(b.ID, "b%d", &n); err == nil && n > s.bseq {
			s.bseq = n
		}
	case recWorker:
		var w WorkerRecord
		if err := json.Unmarshal(body, &w); err != nil {
			return fmt.Errorf("cluster: worker record: %w", err)
		}
		s.workers[w.URL] = w
	case recCheckpoint:
		var st storeState
		if err := json.Unmarshal(body, &st); err != nil {
			return fmt.Errorf("cluster: checkpoint record: %w", err)
		}
		s.jobs = make(map[string]*JobRecord, len(st.Jobs))
		s.batches = make(map[string]*BatchRecord, len(st.Batches))
		s.workers = make(map[string]WorkerRecord, len(st.Workers))
		for i := range st.Jobs {
			j := st.Jobs[i]
			s.jobs[j.ID] = &j
		}
		for i := range st.Batches {
			b := st.Batches[i]
			s.batches[b.ID] = &b
		}
		for _, w := range st.Workers {
			s.workers[w.URL] = w
		}
		s.jobSeq = st.JobSeq
		s.bseq = st.Bseq
	default:
		return fmt.Errorf("cluster: unknown WAL record type %#x", rec[0])
	}
	return nil
}

// appendLocked logs one typed record. Compaction is NOT triggered here:
// checkpoints snapshot the in-memory state, so the caller must apply its
// mutation first and then call maybeCompactLocked — compacting before
// the apply would write a checkpoint missing the record just appended
// and then delete that record with the old segments.
func (s *Store) appendLocked(kind byte, v any) error {
	if s.log == nil {
		return nil
	}
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if err := s.log.Append(append([]byte{kind}, body...)); err != nil {
		return err
	}
	s.sinceCompact++
	return nil
}

// maybeCompactLocked checkpoints on the configured cadence.
func (s *Store) maybeCompactLocked() error {
	if s.log == nil || s.sinceCompact < s.compactEvery {
		return nil
	}
	return s.compactLocked()
}

// compactLocked checkpoints the folded state and drops old segments.
// Terminal jobs stay in the checkpoint (they answer pre-crash status
// queries); the bounded retention applied by the coordinator keeps the
// set from growing without limit.
func (s *Store) compactLocked() error {
	if s.log == nil {
		return nil
	}
	st := storeState{JobSeq: s.jobSeq, Bseq: s.bseq}
	for _, j := range s.jobs {
		st.Jobs = append(st.Jobs, *j)
	}
	for _, b := range s.batches {
		st.Batches = append(st.Batches, *b)
	}
	for _, w := range s.workers {
		st.Workers = append(st.Workers, w)
	}
	// Canonical order: checkpoints of equal state are byte-identical.
	sort.Slice(st.Jobs, func(i, j int) bool { return st.Jobs[i].ID < st.Jobs[j].ID })
	sort.Slice(st.Batches, func(i, j int) bool { return st.Batches[i].ID < st.Batches[j].ID })
	sort.Slice(st.Workers, func(i, j int) bool { return st.Workers[i].URL < st.Workers[j].URL })
	body, err := json.Marshal(st)
	if err != nil {
		return err
	}
	if err := s.log.Compact(append([]byte{recCheckpoint}, body...)); err != nil {
		return err
	}
	s.sinceCompact = 0
	return nil
}

// NextJobID mints a coordinator-scoped job ID ("c00000001"). The
// counter survives restarts via the WAL, so IDs never collide with
// pre-crash jobs.
func (s *Store) NextJobID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobSeq++
	return fmt.Sprintf("c%08d", s.jobSeq)
}

// NextBatchID mints a batch ID ("b00000001").
func (s *Store) NextBatchID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bseq++
	return fmt.Sprintf("b%08d", s.bseq)
}

// PutJob durably upserts a job record.
func (s *Store) PutJob(j JobRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendLocked(recJob, j); err != nil {
		return err
	}
	cp := j
	s.jobs[j.ID] = &cp
	return s.maybeCompactLocked()
}

// Job returns a copy of a job record.
func (s *Store) Job(id string) (JobRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobRecord{}, false
	}
	return *j, true
}

// Jobs returns copies of all job records, ordered by ID.
func (s *Store) Jobs() []JobRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobRecord, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, *j)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// DropJobs removes terminal job records (retention enforcement). Jobs
// linked to a still-tracked batch are kept regardless, so a recovered
// batch can always rebuild its aggregate.
func (s *Store) DropJobs(ids []string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	dropped := false
	for _, id := range ids {
		j, ok := s.jobs[id]
		if !ok || !j.State.Terminal() {
			continue
		}
		if j.Batch != "" {
			if _, live := s.batches[j.Batch]; live {
				continue
			}
		}
		delete(s.jobs, id)
		dropped = true
	}
	if !dropped {
		return nil
	}
	// Deletion has no incremental record type; fold it into the next
	// checkpoint immediately (cheap at retention cadence).
	return s.compactLocked()
}

// SetBatchJob durably links batch point index i to its job record. The
// read-modify-write happens under the store lock, so concurrent point
// placements never lose each other's links.
func (s *Store) SetBatchJob(batchID string, i int, jobID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.batches[batchID]
	if !ok {
		return fmt.Errorf("cluster: unknown batch %q", batchID)
	}
	if i < 0 || i >= len(b.Jobs) {
		return fmt.Errorf("cluster: batch %s has no point %d", batchID, i)
	}
	b.Jobs[i] = jobID
	if err := s.appendLocked(recBatch, *b); err != nil {
		return err
	}
	return s.maybeCompactLocked()
}

// DropBatch removes a batch record and every job record linked to it
// (retention enforcement for completed sweeps).
func (s *Store) DropBatch(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.batches[id]
	if !ok {
		return nil
	}
	for _, jid := range b.Jobs {
		if jid != "" {
			delete(s.jobs, jid)
		}
	}
	delete(s.batches, id)
	// Deletion has no incremental record type; fold it into the next
	// checkpoint immediately (cheap at retention cadence).
	return s.compactLocked()
}

// PutBatch durably upserts a batch record.
func (s *Store) PutBatch(b BatchRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendLocked(recBatch, b); err != nil {
		return err
	}
	cp := b
	cp.Specs = append([]service.JobSpec(nil), b.Specs...)
	cp.Jobs = append([]string(nil), b.Jobs...)
	s.batches[b.ID] = &cp
	return s.maybeCompactLocked()
}

// Batch returns a copy of a batch record.
func (s *Store) Batch(id string) (BatchRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.batches[id]
	if !ok {
		return BatchRecord{}, false
	}
	cp := *b
	cp.Specs = append([]service.JobSpec(nil), b.Specs...)
	cp.Jobs = append([]string(nil), b.Jobs...)
	return cp, true
}

// Batches returns copies of all batch records, ordered by ID.
func (s *Store) Batches() []BatchRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]BatchRecord, 0, len(s.batches))
	for _, b := range s.batches {
		cp := *b
		cp.Specs = append([]service.JobSpec(nil), b.Specs...)
		cp.Jobs = append([]string(nil), b.Jobs...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// PutWorker durably upserts a fleet-membership record.
func (s *Store) PutWorker(w WorkerRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendLocked(recWorker, w); err != nil {
		return err
	}
	s.workers[w.URL] = w
	return s.maybeCompactLocked()
}

// FleetWorkers returns the persisted fleet, ordered by worker ID.
func (s *Store) FleetWorkers() []WorkerRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]WorkerRecord, 0, len(s.workers))
	for _, w := range s.workers {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// StoreStats reports durability state for /v1/healthz.
type StoreStats struct {
	WAL           wal.Stats
	Durable       bool
	Jobs, Batches int
	ReplayedJobs  int
	RecoveredJobs int
}

// Stats snapshots the store.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StoreStats{
		Durable:       s.log != nil,
		Jobs:          len(s.jobs),
		Batches:       len(s.batches),
		ReplayedJobs:  s.replayedJobs,
		RecoveredJobs: s.recoveredJobs,
	}
	if s.log != nil {
		st.WAL = s.log.Stats()
	}
	return st
}

// Close closes the underlying WAL (no final checkpoint: Close must be
// indistinguishable from a crash so recovery is exercised on every
// restart path, not only the unlucky ones).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	return s.log.Close()
}
