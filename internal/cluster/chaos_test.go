package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"bump/internal/chaos"
	"bump/internal/chaos/faultserver"
	"bump/internal/service"
	"bump/internal/snapshot"
)

// fastRegistry is the probe tuning shared by the chaos tests: quick
// rounds, two strikes, short backoff.
func fastRegistry() RegistryOptions {
	return RegistryOptions{
		ProbeInterval:  50 * time.Millisecond,
		ProbeTimeout:   5 * time.Second,
		FailAfter:      2,
		BackoffBase:    50 * time.Millisecond,
		BackoffMax:     200 * time.Millisecond,
		PollInterval:   10 * time.Millisecond,
		RequestTimeout: 5 * time.Second,
	}
}

func waitUntil(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.After(timeout)
	for !cond() {
		select {
		case <-deadline:
			t.Fatal(msg)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestChaosCoordinatorCrashRestartMidSweep is the durability acceptance
// test: a coordinator is killed mid-sweep and restarted on the same data
// directory. The restarted coordinator must answer every pre-crash job
// ID, pick the in-flight work back up, and deliver a final aggregate
// byte-identical to the single-node path.
func TestChaosCoordinatorCrashRestartMidSweep(t *testing.T) {
	fleet := newTestFleet(t, 3, service.Options{Workers: 1, WarmStarts: true})
	urls := make([]string, len(fleet))
	for i, w := range fleet {
		urls[i] = w.srv.URL
	}
	dir := t.TempDir()
	mk := func() *Coordinator {
		coord, err := New(context.Background(), Options{Workers: urls, DataDir: dir, Registry: fastRegistry()})
		if err != nil {
			t.Fatal(err)
		}
		return coord
	}

	c1 := mk()
	c1Closed := false
	closeC1 := func() {
		if !c1Closed {
			c1Closed = true
			c1.Close()
		}
	}
	defer closeC1()
	front1 := httptest.NewServer(c1.Handler())
	defer front1.Close()
	client1 := service.NewClient(front1.URL)

	// A solo job big enough to still be running when the coordinator
	// dies: its ID must survive the crash too.
	solo := sweepSpec("data-serving", 0)
	solo.WarmupCycles = 50_000
	solo.MeasureCycles = 5_000_000
	soloSt, err := client1.Submit(context.Background(), solo)
	if err != nil {
		t.Fatal(err)
	}

	const points = 16
	specs := make([]service.JobSpec, points)
	for i := range specs {
		specs[i] = sweepSpec("web-search", i)
		specs[i].WarmupCycles = 50_000
		specs[i].MeasureCycles = 500_000
	}
	batchID, err := c1.StartBatch(service.BatchSpec{Specs: specs})
	if err != nil {
		t.Fatal(err)
	}

	// Kill once the sweep is genuinely mid-flight: some points terminal,
	// the rest placed or running.
	terminalPoints := func() int {
		n := 0
		for _, j := range c1.Store().Jobs() {
			if j.Batch == batchID && j.State.Terminal() {
				n++
			}
		}
		return n
	}
	waitUntil(t, 30*time.Second, func() bool { return terminalPoints() >= 2 },
		"sweep never got going before the kill deadline")
	if terminalPoints() == points {
		t.Fatal("sweep finished before the coordinator could be killed — enlarge the specs")
	}
	var preIDs []string
	for _, j := range c1.Store().Jobs() {
		preIDs = append(preIDs, j.ID)
	}
	closeC1() // crash-equivalent: no final checkpoint, drivers die mid-flight
	front1.Close()

	c2 := mk()
	t.Cleanup(c2.Close)
	front2 := httptest.NewServer(c2.Handler())
	t.Cleanup(front2.Close)
	client2 := service.NewClient(front2.URL)
	client2.PollInterval = 10 * time.Millisecond

	// The replay is visible in /v1/healthz durability stats.
	h := c2.Health()
	if h.WAL == nil || !h.WAL.Durable {
		t.Fatal("restarted coordinator reports no WAL")
	}
	if h.WAL.ReplayedRecords == 0 || h.WAL.ReplayedJobs == 0 {
		t.Fatalf("restarted coordinator replayed nothing: %+v", h.WAL)
	}
	if h.WAL.RecoveredJobs == 0 {
		t.Fatalf("no in-flight jobs recovered despite a mid-sweep crash: %+v", h.WAL)
	}

	// Every pre-crash job ID is still answerable.
	for _, id := range preIDs {
		if _, err := client2.Job(context.Background(), id); err != nil {
			t.Fatalf("pre-crash job %s unanswerable after restart: %v", id, err)
		}
	}

	// The solo job and the whole sweep run to completion under the
	// restarted coordinator.
	fin, err := client2.Wait(context.Background(), soloSt.ID)
	if err != nil || fin.State != service.StateDone || fin.Result == nil {
		t.Fatalf("solo job after restart: %v %+v", err, fin)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	res, err := c2.WaitBatch(ctx, batchID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || len(res.Points) != points {
		t.Fatalf("recovered sweep: %d points, %d failed", len(res.Points), res.Failed)
	}

	// GET /v1/batch/{id} agrees the sweep is done.
	br, err := http.Get(front2.URL + "/v1/batch/" + batchID)
	if err != nil {
		t.Fatal(err)
	}
	defer br.Body.Close()
	var bst BatchStatusPayload
	if err := json.NewDecoder(br.Body).Decode(&bst); err != nil {
		t.Fatal(err)
	}
	if br.StatusCode != http.StatusOK || !bst.Done || bst.Pending != 0 {
		t.Fatalf("batch status after recovery: code=%d %+v", br.StatusCode, bst)
	}

	// The crash must not have cost correctness: byte-identical to the
	// single-node path.
	ref := singleNodeReference(t, specs)
	for i, pt := range res.Points {
		if pt.Status.Result == nil {
			t.Fatalf("recovered point %d has no result: %+v", i, pt.Status.JobStatus)
		}
		if got := resultJSON(t, *pt.Status.Result); got != ref[i] {
			t.Errorf("point %d: recovered sweep diverges from single-node", i)
		}
	}
}

// TestChaosHeartbeatRevivesDroppedWorker cuts the coordinator→worker
// link at the TCP level until the worker is struck out, then shows a
// single heartbeat readmits it immediately — no waiting out the probe
// backoff — and traffic flows again.
func TestChaosHeartbeatRevivesDroppedWorker(t *testing.T) {
	w := newTestFleet(t, 1, service.Options{Workers: 1, WarmStarts: true})[0]
	px := chaos.NewProxy(t, w.srv.URL)

	reg := fastRegistry()
	reg.ProbeInterval = time.Hour // manual rounds only
	reg.BackoffBase = time.Minute // backoff alone cannot readmit in test time
	reg.BackoffMax = time.Minute
	coord, err := New(context.Background(), Options{Workers: []string{px.URL()}, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	if !coord.Registry().Routable("w0") {
		t.Fatal("worker not admitted through a healthy proxy")
	}

	px.Drop(true)
	coord.Registry().ProbeOnce(context.Background())
	coord.Registry().ProbeOnce(context.Background())
	if coord.Registry().Up("w0") {
		t.Fatal("worker survived a dead link")
	}

	// Link restored, but the worker sits in minutes of probe backoff —
	// only its own heartbeat can bring it back now.
	px.Drop(false)
	coord.Registry().ProbeOnce(context.Background())
	if coord.Registry().Up("w0") {
		t.Fatal("backoff ignored: down worker readmitted by a probe round")
	}
	front := httptest.NewServer(coord.Handler())
	t.Cleanup(front.Close)
	client := service.NewClient(front.URL)
	client.PollInterval = 10 * time.Millisecond
	resp, err := client.Register(context.Background(), service.RegisterRequest{URL: px.URL(), Version: snapshot.FormatVersion})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != "w0" || resp.State != string(WorkerUp) {
		t.Fatalf("heartbeat response: %+v", resp)
	}
	if !coord.Registry().Routable("w0") {
		t.Fatal("heartbeat did not readmit the worker")
	}

	st, err := client.Submit(context.Background(), sweepSpec("web-search", 0))
	if err != nil {
		t.Fatal(err)
	}
	fin, err := client.Wait(context.Background(), st.ID)
	if err != nil || fin.State != service.StateDone {
		t.Fatalf("job through revived worker: %v %+v", err, fin)
	}
}

// TestChaosDrainCordonLifecycle drives the admin verbs over HTTP:
// cordon diverts new placements immediately (in-flight work untouched,
// reversible), drain ejects only after the last in-flight job settles,
// and every transition is observable in /v1/cluster.
func TestChaosDrainCordonLifecycle(t *testing.T) {
	fleet := newTestFleet(t, 2, service.Options{Workers: 2, WarmStarts: true})
	coord := newTestCoordinator(t, fleet)
	front := httptest.NewServer(coord.Handler())
	t.Cleanup(front.Close)
	client := service.NewClient(front.URL)
	client.PollInterval = 10 * time.Millisecond

	verb := func(name, worker string) (WorkerInfo, int) {
		t.Helper()
		body, _ := json.Marshal(map[string]string{"worker": worker})
		resp, err := http.Post(front.URL+"/v1/cluster/"+name, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var info WorkerInfo
		json.NewDecoder(resp.Body).Decode(&info)
		return info, resp.StatusCode
	}
	lifecycleOf := func(workerID string) Lifecycle {
		t.Helper()
		resp, err := http.Get(front.URL + "/v1/cluster")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var top ClusterPayload
		if err := json.NewDecoder(resp.Body).Decode(&top); err != nil {
			t.Fatal(err)
		}
		for _, w := range top.Workers {
			if w.ID == workerID {
				return w.Lifecycle
			}
		}
		t.Fatalf("worker %s missing from /v1/cluster", workerID)
		return ""
	}
	submitTo := func(spec service.JobSpec) (service.JobStatus, string) {
		t.Helper()
		st, err := client.Submit(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		_, wid, err := SplitJobID(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		return st, wid
	}

	// The worker that owns this workload's warm key.
	key, _, err := RouteKey(sweepSpec("web-search", 0))
	if err != nil {
		t.Fatal(err)
	}
	ownerID, ok := coord.Registry().Resolve(coord.Registry().Ring().Owner(key))
	if !ok {
		t.Fatal("ring owner not in registry")
	}
	otherID := "w0"
	if ownerID == "w0" {
		otherID = "w1"
	}

	// Cordon: placements divert off the owner at once.
	if info, code := verb("cordon", ownerID); code != http.StatusOK || info.Lifecycle != LifecycleCordoned {
		t.Fatalf("cordon: code=%d %+v", code, info)
	}
	if lc := lifecycleOf(ownerID); lc != LifecycleCordoned {
		t.Fatalf("/v1/cluster shows %s, want cordoned", lc)
	}
	st1, wid := submitTo(sweepSpec("web-search", 1))
	if wid != otherID {
		t.Fatalf("cordoned owner %s still took a placement (job %s)", ownerID, st1.ID)
	}

	// Uncordon: the owner's keys come home.
	if info, code := verb("uncordon", ownerID); code != http.StatusOK || info.Lifecycle != LifecycleActive {
		t.Fatalf("uncordon: code=%d %+v", code, info)
	}
	st2, wid := submitTo(sweepSpec("web-search", 2))
	if wid != ownerID {
		t.Fatalf("uncordoned owner %s not routed to (job went to %s)", ownerID, wid)
	}
	for _, id := range []string{st1.ID, st2.ID} {
		if fin, err := client.Wait(context.Background(), id); err != nil || fin.State != service.StateDone {
			t.Fatalf("job %s: %v", id, err)
		}
	}

	// Drain with work in flight: draining until the job settles, then
	// ejected; new placements divert meanwhile.
	long := sweepSpec("web-search", 3)
	long.MeasureCycles = 200_000_000
	stLong, wid := submitTo(long)
	if wid != ownerID {
		t.Fatalf("long job landed on %s, want owner %s", wid, ownerID)
	}
	if info, code := verb("drain", ownerID); code != http.StatusOK || info.Lifecycle != LifecycleDraining {
		t.Fatalf("drain with in-flight work: code=%d %+v (must wait, not eject)", code, info)
	}
	if _, wid := submitTo(sweepSpec("web-search", 4)); wid != ownerID {
		// expected: draining workers take no new placements
	} else {
		t.Fatalf("draining owner %s took a new placement", ownerID)
	}
	if _, err := client.Cancel(context.Background(), stLong.ID); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 10*time.Second, func() bool { return lifecycleOf(ownerID) == LifecycleEjected },
		"drained worker not ejected after its last in-flight job settled")

	// Drain of an idle worker ejects immediately.
	waitUntil(t, 10*time.Second, func() bool {
		info, _ := coord.Registry().InfoFor(otherID)
		return info.Lifecycle == LifecycleActive && coord.Registry().Routable(otherID)
	}, "other worker not routable before idle drain")
	// Let its in-flight counter settle (drivers decrement just after the
	// client sees the terminal state).
	waitUntil(t, 10*time.Second, func() bool {
		coord.mu.Lock()
		defer coord.mu.Unlock()
		return coord.inflight[otherID] == 0
	}, "other worker never went idle")
	if info, code := verb("drain", otherID); code != http.StatusOK || info.Lifecycle != LifecycleEjected {
		t.Fatalf("idle drain: code=%d %+v (must eject immediately)", code, info)
	}
}

// TestChaosFleetToleratesFaultyWorkers seeds the fleet with two healthy
// workers, one that answers every request with an HTML 500 and one that
// hangs connections open (both from the shared faultserver vocabulary):
// the registry must hold both out of routing and the sweep must complete
// correctly on the survivors.
func TestChaosFleetToleratesFaultyWorkers(t *testing.T) {
	fleet := newTestFleet(t, 2, service.Options{Workers: 2, WarmStarts: true})
	sick := faultserver.New(t, faultserver.NonJSON500())
	hung := faultserver.New(t, faultserver.Hung())

	reg := fastRegistry()
	reg.ProbeInterval = time.Hour
	reg.ProbeTimeout = 200 * time.Millisecond // bound the hung probe
	reg.FailAfter = 1
	reg.BackoffBase = time.Minute
	reg.BackoffMax = time.Minute
	coord, err := New(context.Background(), Options{
		Workers:  []string{fleet[0].srv.URL, fleet[1].srv.URL, sick.URL, hung.URL},
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)

	top := coord.Topology()
	if top.Status != "degraded" || top.Up != 2 || top.Total != 4 {
		t.Fatalf("topology with faulty workers: %+v", top)
	}

	specs := make([]service.JobSpec, 6)
	for i := range specs {
		specs[i] = sweepSpec("web-search", i)
	}
	res, err := coord.Batch(context.Background(), service.BatchSpec{Specs: specs}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("%d failed points with faulty workers in the fleet", res.Failed)
	}
	ref := singleNodeReference(t, specs)
	for i, pt := range res.Points {
		if got := resultJSON(t, *pt.Status.Result); got != ref[i] {
			t.Errorf("point %d diverges from single-node with faulty workers present", i)
		}
	}
}

// TestChaosWireSeverFallsBackToJSON cuts the binary wire link between a
// client and its worker while a job is in flight: every pooled wire
// connection dies and new dials are refused. The client must fall back
// to HTTP/JSON transparently — the job is not lost, polling completes
// it, and the cached result stays reachable.
func TestChaosWireSeverFallsBackToJSON(t *testing.T) {
	w := newWireFleet(t, 1, service.Options{Workers: 1, WarmStarts: true})[0]
	proxy := chaos.NewTCPProxy(t, w.wire.Addr().String())

	client := service.NewClient(w.srv.URL)
	client.WireAddr = proxy.Addr() // pin the faultable front, skip negotiation
	client.PollInterval = 10 * time.Millisecond
	t.Cleanup(func() { client.Close() })

	spec := sweepSpec("web-search", 0)
	spec.MeasureCycles = 2_000_000 // long enough to outlive the sever
	st, err := client.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if ws := client.WireStats(); ws.Calls == 0 {
		t.Fatalf("submit did not use the wire path: %+v", ws)
	}

	// Sever: close the live pooled connections and refuse new ones.
	proxy.Drop(true)

	fin, err := client.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatalf("wait across a severed wire link: %v", err)
	}
	if fin.State != service.StateDone || fin.Result == nil {
		t.Fatalf("job lost after wire sever: %s (%s)", fin.State, fin.Error)
	}
	ws := client.WireStats()
	if ws.Fallbacks == 0 {
		t.Errorf("severed wire link never fell back to JSON: %+v", ws)
	}

	// The result is still served (over JSON) by hash.
	res, ok, err := client.ResultByHash(context.Background(), fin.Hash)
	if err != nil || !ok {
		t.Fatalf("ResultByHash after sever: ok=%v err=%v", ok, err)
	}
	if resultJSON(t, res) != resultJSON(t, *fin.Result) {
		t.Error("post-sever hash lookup diverges from the job result")
	}

	// Restore the link: the client recovers the wire path after its
	// retry window instead of staying demoted forever.
	proxy.Drop(false)
	callsBefore := client.WireStats().Calls
	deadline := time.After(10 * time.Second)
	for client.WireStats().Calls == callsBefore {
		if _, err := client.Job(context.Background(), st.ID); err != nil {
			t.Fatal(err)
		}
		select {
		case <-deadline:
			t.Fatal("client never re-negotiated onto the restored wire link")
		case <-time.After(50 * time.Millisecond):
		}
	}
}
