package cluster

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"bump/internal/service"
	"bump/internal/snapshot"
)

// WorkerState is a worker's admission status in the registry.
type WorkerState string

const (
	// WorkerUnknown: not yet successfully probed; never routed to.
	WorkerUnknown WorkerState = "unknown"
	// WorkerUp: healthy and routable.
	WorkerUp WorkerState = "up"
	// WorkerDown: ejected after consecutive probe/request failures;
	// re-probed with exponential backoff and readmitted on success.
	WorkerDown WorkerState = "down"
	// WorkerIncompatible: healthy but speaking a different snapshot
	// format version. Warm checkpoints and cached results keyed under
	// one format version are meaningless under another, so such workers
	// are never routed to; they are still probed, so an in-place upgrade
	// readmits them.
	WorkerIncompatible WorkerState = "incompatible"
)

// RegistryOptions tunes health probing and ejection. Zero values pick
// production defaults.
type RegistryOptions struct {
	// ProbeInterval paces the periodic /v1/healthz round (default 2s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds each probe request (default: ProbeInterval).
	ProbeTimeout time.Duration
	// FailAfter is the consecutive-failure count that ejects a worker
	// (default 3). Router-reported request failures count like probe
	// failures, so a dead worker is ejected by the traffic it drops, not
	// only by the next probe round.
	FailAfter int
	// BackoffBase/BackoffMax shape the readmission probe backoff of a
	// down worker: base doubles per failed readmission probe up to max
	// (defaults 1s and 30s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// FormatVersion is the snapshot format this coordinator requires of
	// its workers (default snapshot.FormatVersion — the version this
	// binary was built with).
	FormatVersion int
	// RequestTimeout and PollInterval configure the per-worker
	// service.Client (defaults: client defaults).
	RequestTimeout time.Duration
	PollInterval   time.Duration
}

func (o RegistryOptions) withDefaults() RegistryOptions {
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 2 * time.Second
	}
	if o.ProbeTimeout <= 0 {
		// Floor the default at 2s: a busy worker (every core simulating)
		// can take tens of milliseconds to answer, and a short probe
		// timeout would misread load as death.
		o.ProbeTimeout = max(o.ProbeInterval, 2*time.Second)
	}
	if o.FailAfter <= 0 {
		o.FailAfter = 3
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = time.Second
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 30 * time.Second
	}
	if o.FormatVersion == 0 {
		o.FormatVersion = snapshot.FormatVersion
	}
	return o
}

// Worker is one registered bumpd backend.
type Worker struct {
	// ID is the stable short name ("w0", "w1", …) used in ring placement
	// and namespaced job IDs; URL is the backend base URL.
	ID  string
	URL string
	// Client is the configured API client for this worker.
	Client *service.Client

	// Mutable probe state, guarded by the registry mutex.
	state   WorkerState
	fails   int
	backoff time.Duration
	retryAt time.Time
	lastErr string
	health  service.HealthPayload
	probed  time.Time
}

// WorkerInfo is a worker's exported status snapshot (served by
// /v1/cluster).
type WorkerInfo struct {
	ID    string      `json:"id"`
	URL   string      `json:"url"`
	State WorkerState `json:"state"`
	// Version and Uptime echo the worker's last successful health probe.
	Version int     `json:"version,omitempty"`
	Uptime  float64 `json:"uptime_s,omitempty"`
	// Fails is the current consecutive-failure count; LastError the most
	// recent probe or request error.
	Fails    int     `json:"fails,omitempty"`
	LastErr  string  `json:"last_error,omitempty"`
	ProbeAge float64 `json:"probe_age_s,omitempty"`
	// Stats is the worker pool's statistics at the last probe — per-
	// worker warm-hit and cache counters live here.
	Stats service.PoolStats `json:"stats"`
}

// Registry tracks a fixed fleet of workers, probing /v1/healthz
// periodically: healthy matching-version workers are admitted, failing
// ones ejected after FailAfter consecutive failures and re-probed with
// exponential backoff until they recover.
type Registry struct {
	opts    RegistryOptions
	workers []*Worker
	byID    map[string]*Worker
	byURL   map[string]*Worker
	ring    *Ring

	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

// NewRegistry builds a registry over the worker URLs (IDs are assigned
// "w0".."wN-1" in order) and starts the probe loop. Workers start in
// WorkerUnknown and are not routable until their first successful
// probe — call ProbeOnce to admit the initial fleet synchronously.
func NewRegistry(urls []string, opts RegistryOptions) (*Registry, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("cluster: no workers configured")
	}
	opts = opts.withDefaults()
	r := &Registry{
		opts:  opts,
		byID:  make(map[string]*Worker, len(urls)),
		byURL: make(map[string]*Worker, len(urls)),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	ringURLs := make([]string, len(urls))
	for i, url := range urls {
		url = strings.TrimSpace(strings.TrimRight(url, "/"))
		if url == "" {
			return nil, fmt.Errorf("cluster: empty worker URL at position %d", i)
		}
		c := service.NewClient(url)
		c.RequestTimeout = opts.RequestTimeout
		c.PollInterval = opts.PollInterval
		w := &Worker{
			ID:     fmt.Sprintf("w%d", i),
			URL:    url,
			Client: c,
			state:  WorkerUnknown,
		}
		if _, dup := r.byURL[w.URL]; dup {
			return nil, fmt.Errorf("cluster: duplicate worker URL %s", w.URL)
		}
		r.workers = append(r.workers, w)
		r.byID[w.ID] = w
		r.byURL[w.URL] = w
		ringURLs[i] = w.URL
	}
	// The ring spans the whole fleet (not just the currently-up subset)
	// and is keyed by worker *URL*, the worker's stable identity: a
	// bouncing worker does not reshuffle its neighbours' keys, its own
	// keys come home when it readmits, and restarting the coordinator
	// with a reordered or shrunk -workers list keeps every surviving
	// worker's warm checkpoints addressable (positional IDs like "w0"
	// would remap nearly all keys on any fleet-list edit).
	r.ring = NewRing(ringURLs, 0)
	go r.probeLoop()
	return r, nil
}

// Close stops the probe loop.
func (r *Registry) Close() {
	r.mu.Lock()
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	r.mu.Unlock()
	<-r.done
}

// Ring returns the fleet's consistent-hash ring.
func (r *Registry) Ring() *Ring { return r.ring }

// Worker resolves a worker ID.
func (r *Registry) Worker(id string) (*Worker, bool) {
	w, ok := r.byID[id]
	return w, ok
}

// Workers returns the fleet in registration order.
func (r *Registry) Workers() []*Worker { return append([]*Worker(nil), r.workers...) }

// Up reports whether a worker is currently admitted.
func (r *Registry) Up(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.byID[id]
	return ok && w.state == WorkerUp
}

// UpCount returns the number of admitted workers.
func (r *Registry) UpCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, w := range r.workers {
		if w.state == WorkerUp {
			n++
		}
	}
	return n
}

// Info snapshots every worker's status in registration order.
func (r *Registry) Info() []WorkerInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	infos := make([]WorkerInfo, len(r.workers))
	for i, w := range r.workers {
		info := WorkerInfo{
			ID:      w.ID,
			URL:     w.URL,
			State:   w.state,
			Fails:   w.fails,
			LastErr: w.lastErr,
			Stats:   w.health.Stats,
			Version: w.health.Version,
			Uptime:  w.health.Uptime,
		}
		if !w.probed.IsZero() {
			info.ProbeAge = now.Sub(w.probed).Seconds()
		}
		infos[i] = info
	}
	return infos
}

// ReportFailure records a request-level failure against a worker (the
// router calls this when a submit/wait fails): it counts toward the
// same consecutive-failure ejection threshold as a failed probe, so
// traffic ejects a dead worker faster than the probe cadence would.
func (r *Registry) ReportFailure(id string, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.byID[id]; ok {
		r.recordFailureLocked(w, err)
	}
}

// probeLoop drives the periodic health round until Close.
func (r *Registry) probeLoop() {
	defer close(r.done)
	t := time.NewTicker(r.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.ProbeOnce(context.Background())
		}
	}
}

// ProbeOnce runs one probe round: every due worker is health-checked
// concurrently and its admission state updated. Down workers are only
// probed once their backoff expires.
func (r *Registry) ProbeOnce(ctx context.Context) {
	r.mu.Lock()
	now := time.Now()
	var due []*Worker
	for _, w := range r.workers {
		if w.state == WorkerDown && now.Before(w.retryAt) {
			continue
		}
		due = append(due, w)
	}
	r.mu.Unlock()

	var wg sync.WaitGroup
	for _, w := range due {
		wg.Add(1)
		go func(w *Worker) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, r.opts.ProbeTimeout)
			defer cancel()
			h, err := w.Client.Health(pctx)
			r.mu.Lock()
			defer r.mu.Unlock()
			w.probed = time.Now()
			if err != nil {
				r.recordFailureLocked(w, err)
				return
			}
			w.health = h
			w.fails = 0
			w.backoff = 0
			w.lastErr = ""
			if h.Version != r.opts.FormatVersion {
				w.state = WorkerIncompatible
				w.lastErr = fmt.Sprintf("snapshot format version %d, coordinator requires %d", h.Version, r.opts.FormatVersion)
				return
			}
			w.state = WorkerUp
		}(w)
	}
	wg.Wait()
}

// recordFailureLocked applies one failure: bump the consecutive count,
// eject at the threshold, and push the readmission probe out by the
// (doubling) backoff.
func (r *Registry) recordFailureLocked(w *Worker, err error) {
	w.fails++
	w.lastErr = err.Error()
	if w.state == WorkerDown || w.fails >= r.opts.FailAfter {
		w.state = WorkerDown
		if w.backoff == 0 {
			w.backoff = r.opts.BackoffBase
		} else if w.backoff < r.opts.BackoffMax {
			w.backoff = min(2*w.backoff, r.opts.BackoffMax)
		}
		w.retryAt = time.Now().Add(w.backoff)
	}
}
