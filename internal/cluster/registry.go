package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"bump/internal/service"
	"bump/internal/snapshot"
)

// WorkerState is a worker's health/admission status in the registry.
type WorkerState string

const (
	// WorkerUnknown: not yet successfully probed; never routed to.
	WorkerUnknown WorkerState = "unknown"
	// WorkerUp: healthy and routable.
	WorkerUp WorkerState = "up"
	// WorkerDown: ejected after consecutive probe/request failures;
	// re-probed with exponential backoff and readmitted on success (a
	// heartbeat registration readmits immediately).
	WorkerDown WorkerState = "down"
	// WorkerIncompatible: healthy but speaking a different snapshot
	// format version. Warm checkpoints and cached results keyed under
	// one format version are meaningless under another, so such workers
	// are never routed to; they are still probed, so an in-place upgrade
	// readmits them.
	WorkerIncompatible WorkerState = "incompatible"
)

// Lifecycle is a worker's administrative state, orthogonal to health: a
// worker takes new placements only when it is both healthy (WorkerUp)
// and LifecycleActive.
type Lifecycle string

const (
	// LifecycleActive: normal service.
	LifecycleActive Lifecycle = "active"
	// LifecycleCordoned: no new placements; in-flight jobs run on.
	// Reversible via uncordon.
	LifecycleCordoned Lifecycle = "cordoned"
	// LifecycleDraining: no new placements; ejected automatically once
	// the coordinator's last in-flight job on it completes.
	LifecycleDraining Lifecycle = "draining"
	// LifecycleEjected: removed from service by a completed drain. Its
	// warm-affinity keys remap down the ring sequence. A fresh
	// heartbeat registration revives it to LifecycleActive.
	LifecycleEjected Lifecycle = "ejected"
)

// routable reports whether the lifecycle admits new placements.
func (l Lifecycle) routable() bool { return l == "" || l == LifecycleActive }

// RegistryOptions tunes health probing and ejection. Zero values pick
// production defaults.
type RegistryOptions struct {
	// ProbeInterval paces the periodic /v1/healthz round (default 2s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds each probe request (default: ProbeInterval).
	ProbeTimeout time.Duration
	// FailAfter is the consecutive-failure count that ejects a worker
	// (default 3). Router-reported request failures count like probe
	// failures, so a dead worker is ejected by the traffic it drops, not
	// only by the next probe round.
	FailAfter int
	// BackoffBase/BackoffMax shape the readmission probe backoff of a
	// down worker: base doubles per failed readmission probe up to max
	// (defaults 1s and 30s). Each wait is jittered by up to +25% so a
	// fleet-wide blip does not synchronize every worker's readmission
	// probe into one thundering herd.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// FormatVersion is the snapshot format this coordinator requires of
	// its workers (default snapshot.FormatVersion — the version this
	// binary was built with).
	FormatVersion int
	// RequestTimeout and PollInterval configure the per-worker
	// service.Client (defaults: client defaults).
	RequestTimeout time.Duration
	PollInterval   time.Duration
	// DisableWire pins every per-worker client to HTTP/JSON even against
	// workers that advertise a wire listener (cross-protocol comparison
	// runs, debugging).
	DisableWire bool
}

func (o RegistryOptions) withDefaults() RegistryOptions {
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 2 * time.Second
	}
	if o.ProbeTimeout <= 0 {
		// Floor the default at 2s: a busy worker (every core simulating)
		// can take tens of milliseconds to answer, and a short probe
		// timeout would misread load as death.
		o.ProbeTimeout = max(o.ProbeInterval, 2*time.Second)
	}
	if o.FailAfter <= 0 {
		o.FailAfter = 3
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = time.Second
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 30 * time.Second
	}
	if o.FormatVersion == 0 {
		o.FormatVersion = snapshot.FormatVersion
	}
	return o
}

// Worker is one registered bumpd backend.
type Worker struct {
	// ID is the stable short name ("w0", "w1", …) used in namespaced
	// job IDs; URL is the backend base URL and the worker's ring
	// identity.
	ID  string
	URL string
	// Client is the configured API client for this worker.
	Client *service.Client

	// Mutable probe/lifecycle state, guarded by the registry mutex.
	state     WorkerState
	lifecycle Lifecycle
	fails     int
	backoff   time.Duration
	retryAt   time.Time
	lastErr   string
	health    service.HealthPayload
	probed    time.Time
	beat      time.Time // last heartbeat registration
	// wireAddr is the worker's advertised binary fast-path listener;
	// checkpoints the warm-checkpoint digests it can serve. Both refresh
	// from probes and heartbeats.
	wireAddr    string
	checkpoints map[string]struct{}
}

// WorkerInfo is a worker's exported status snapshot (served by
// /v1/cluster).
type WorkerInfo struct {
	ID    string      `json:"id"`
	URL   string      `json:"url"`
	State WorkerState `json:"state"`
	// Lifecycle is the administrative state
	// (active|cordoned|draining|ejected).
	Lifecycle Lifecycle `json:"lifecycle"`
	// Version and Uptime echo the worker's last successful health probe.
	Version int     `json:"version,omitempty"`
	Uptime  float64 `json:"uptime_s,omitempty"`
	// Fails is the current consecutive-failure count; LastError the most
	// recent probe or request error.
	Fails    int     `json:"fails,omitempty"`
	LastErr  string  `json:"last_error,omitempty"`
	ProbeAge float64 `json:"probe_age_s,omitempty"`
	// HeartbeatAge is seconds since the last self-registration
	// heartbeat (absent for workers that never registered themselves).
	HeartbeatAge float64 `json:"heartbeat_age_s,omitempty"`
	// WireAddr is the worker's advertised binary fast-path listener;
	// Checkpoints counts the warm-checkpoint digests it advertises.
	WireAddr    string `json:"wire_addr,omitempty"`
	Checkpoints int    `json:"checkpoints,omitempty"`
	// Stats is the worker pool's statistics at the last probe — per-
	// worker warm-hit and cache counters live here.
	Stats service.PoolStats `json:"stats"`
}

// Registry tracks the worker fleet. Membership is dynamic: workers are
// seeded from a static list and/or register themselves via heartbeats
// (POST /v1/cluster/register). Each worker's /v1/healthz is probed
// periodically; healthy matching-version workers are admitted, failing
// ones ejected after FailAfter consecutive failures and re-probed with
// jittered exponential backoff until they recover.
type Registry struct {
	opts RegistryOptions

	mu      sync.Mutex
	workers []*Worker
	byID    map[string]*Worker
	byURL   map[string]*Worker
	ring    *Ring
	nextID  int

	stop chan struct{}
	done chan struct{}
}

// NewRegistry builds a registry over the (possibly empty) seed worker
// URLs and starts the probe loop. Seeded workers start in WorkerUnknown
// and are not routable until their first successful probe — call
// ProbeOnce to admit the initial fleet synchronously. An empty seed
// list is valid: workers join via heartbeat self-registration.
func NewRegistry(urls []string, opts RegistryOptions) (*Registry, error) {
	opts = opts.withDefaults()
	r := &Registry{
		opts:  opts,
		byID:  make(map[string]*Worker),
		byURL: make(map[string]*Worker),
		ring:  NewRing(nil, 0),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	for i, url := range urls {
		if strings.TrimSpace(url) == "" {
			return nil, fmt.Errorf("cluster: empty worker URL at position %d", i)
		}
		if _, err := r.Add(url, ""); err != nil {
			return nil, err
		}
	}
	go r.probeLoop()
	return r, nil
}

// Add registers a worker URL under the given ID (minted when empty) in
// state WorkerUnknown, rebuilding the ring. The ring is keyed by worker
// *URL*, the worker's stable identity: a bouncing worker does not
// reshuffle its neighbours' keys, its own keys come home when it
// readmits, and restarting the coordinator with a reordered or shrunk
// fleet keeps every surviving worker's warm checkpoints addressable
// (positional IDs like "w0" would remap nearly all keys on any
// fleet-list edit).
func (r *Registry) Add(url, id string) (*Worker, error) {
	url = strings.TrimSpace(strings.TrimRight(url, "/"))
	if url == "" {
		return nil, fmt.Errorf("cluster: empty worker URL")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byURL[url]; dup {
		return nil, fmt.Errorf("cluster: duplicate worker URL %s", url)
	}
	if id == "" {
		id = fmt.Sprintf("w%d", r.nextID)
	}
	if _, dup := r.byID[id]; dup {
		return nil, fmt.Errorf("cluster: duplicate worker ID %s", id)
	}
	var n int
	if _, err := fmt.Sscanf(id, "w%d", &n); err == nil && n >= r.nextID {
		r.nextID = n + 1
	}
	c := service.NewClient(url)
	c.RequestTimeout = r.opts.RequestTimeout
	c.PollInterval = r.opts.PollInterval
	c.DisableWire = r.opts.DisableWire
	w := &Worker{
		ID:        id,
		URL:       url,
		Client:    c,
		state:     WorkerUnknown,
		lifecycle: LifecycleActive,
	}
	r.workers = append(r.workers, w)
	r.byID[w.ID] = w
	r.byURL[w.URL] = w
	r.rebuildRingLocked()
	return w, nil
}

// rebuildRingLocked rebuilds the consistent-hash ring over the whole
// fleet (lifecycle filtering happens at pick time via the Sequence
// walk, so an ejected worker's keys remap to its ring successors
// without disturbing anyone else's).
func (r *Registry) rebuildRingLocked() {
	urls := make([]string, len(r.workers))
	for i, w := range r.workers {
		urls[i] = w.URL
	}
	r.ring = NewRing(urls, 0)
}

// Register handles one heartbeat self-registration: an unknown URL
// joins the fleet immediately (admitted without waiting for a probe
// round — the heartbeat itself is evidence of life), a known one has
// its health refreshed, and an ejected one is revived to
// LifecycleActive. changed reports a membership or lifecycle change the
// caller should persist.
func (r *Registry) Register(req service.RegisterRequest) (info WorkerInfo, changed bool, err error) {
	url := strings.TrimSpace(strings.TrimRight(req.URL, "/"))
	r.mu.Lock()
	w, ok := r.byURL[url]
	r.mu.Unlock()
	if !ok {
		if w, err = r.Add(url, ""); err != nil {
			// Racing registrations of the same URL: the loser reads the
			// winner's entry.
			r.mu.Lock()
			w, ok = r.byURL[url]
			r.mu.Unlock()
			if !ok {
				return WorkerInfo{}, false, err
			}
		} else {
			changed = true
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	w.beat = now
	w.probed = now
	w.fails = 0
	w.backoff = 0
	w.lastErr = ""
	w.health.Version = req.Version
	w.setAdvertsLocked(req.WireAddr, req.Checkpoints)
	if req.Version == r.opts.FormatVersion {
		w.state = WorkerUp
	} else {
		w.state = WorkerIncompatible
		w.lastErr = fmt.Sprintf("snapshot format version %d, coordinator requires %d", req.Version, r.opts.FormatVersion)
	}
	if w.lifecycle == LifecycleEjected {
		w.lifecycle = LifecycleActive
		changed = true
	}
	return r.infoLocked(w, now), changed, nil
}

// Close stops the probe loop.
func (r *Registry) Close() {
	r.mu.Lock()
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	r.mu.Unlock()
	<-r.done
}

// Ring returns the fleet's current consistent-hash ring (immutable;
// rebuilt on membership changes).
func (r *Registry) Ring() *Ring {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring
}

// Worker resolves a worker ID.
func (r *Registry) Worker(id string) (*Worker, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.byID[id]
	return w, ok
}

// WorkerByURL resolves a worker URL.
func (r *Registry) WorkerByURL(url string) (*Worker, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.byURL[url]
	return w, ok
}

// Workers returns the fleet in registration order.
func (r *Registry) Workers() []*Worker {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Worker(nil), r.workers...)
}

// Up reports whether a worker is currently health-admitted (it may
// still be unroutable by lifecycle; see Routable).
func (r *Registry) Up(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.byID[id]
	return ok && w.state == WorkerUp
}

// Routable reports whether a worker takes new placements: healthy AND
// lifecycle-active.
func (r *Registry) Routable(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.byID[id]
	return ok && w.state == WorkerUp && w.lifecycle.routable()
}

// UpCount returns the number of health-admitted workers.
func (r *Registry) UpCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, w := range r.workers {
		if w.state == WorkerUp {
			n++
		}
	}
	return n
}

// Lifecycle returns a worker's administrative state.
func (r *Registry) Lifecycle(id string) (Lifecycle, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.byID[id]
	if !ok {
		return "", false
	}
	return w.lifecycle, true
}

// SetLifecycle moves a worker to an administrative state, returning its
// updated info.
func (r *Registry) SetLifecycle(id string, lc Lifecycle) (WorkerInfo, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.byID[id]
	if !ok {
		return WorkerInfo{}, fmt.Errorf("cluster: unknown worker %q", id)
	}
	w.lifecycle = lc
	return r.infoLocked(w, time.Now()), nil
}

// Resolve maps a worker ID or URL to its ID.
func (r *Registry) Resolve(idOrURL string) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.byID[idOrURL]; ok {
		return w.ID, true
	}
	if w, ok := r.byURL[strings.TrimRight(idOrURL, "/")]; ok {
		return w.ID, true
	}
	return "", false
}

func (r *Registry) infoLocked(w *Worker, now time.Time) WorkerInfo {
	info := WorkerInfo{
		ID:        w.ID,
		URL:       w.URL,
		State:     w.state,
		Lifecycle: w.lifecycle,
		Fails:     w.fails,
		LastErr:   w.lastErr,
		Stats:     w.health.Stats,
		Version:   w.health.Version,
		Uptime:    w.health.Uptime,
	}
	if info.Lifecycle == "" {
		info.Lifecycle = LifecycleActive
	}
	if !w.probed.IsZero() {
		info.ProbeAge = now.Sub(w.probed).Seconds()
	}
	if !w.beat.IsZero() {
		info.HeartbeatAge = now.Sub(w.beat).Seconds()
	}
	info.WireAddr = w.wireAddr
	info.Checkpoints = len(w.checkpoints)
	return info
}

// setAdvertsLocked refreshes a worker's wire-listener and checkpoint
// advertisements (from a probe or heartbeat), under the registry mutex.
func (w *Worker) setAdvertsLocked(wireAddr string, checkpoints []string) {
	w.wireAddr = wireAddr
	if len(checkpoints) == 0 {
		w.checkpoints = nil
		return
	}
	set := make(map[string]struct{}, len(checkpoints))
	for _, k := range checkpoints {
		set[k] = struct{}{}
	}
	w.checkpoints = set
}

// Holds reports whether a worker advertises checkpoint digest key.
func (r *Registry) Holds(id, key string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.byID[id]
	if !ok {
		return false
	}
	_, held := w.checkpoints[key]
	return held
}

// MarkHolds records that a worker now serves checkpoint digest key
// (after a successful transfer), ahead of its next heartbeat/probe
// re-advertising it.
func (r *Registry) MarkHolds(id, key string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.byID[id]
	if !ok {
		return
	}
	if w.checkpoints == nil {
		w.checkpoints = make(map[string]struct{})
	}
	w.checkpoints[key] = struct{}{}
}

// HoldersOf returns the base URLs of health-admitted workers
// advertising checkpoint digest key, excluding worker ID exclude.
// Lifecycle is ignored: a cordoned or draining worker can still serve a
// checkpoint transfer.
func (r *Registry) HoldersOf(key, exclude string) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var urls []string
	for _, w := range r.workers {
		if w.ID == exclude || w.state != WorkerUp {
			continue
		}
		if _, held := w.checkpoints[key]; held {
			urls = append(urls, w.URL)
		}
	}
	return urls
}

// CheckpointKeys returns every checkpoint digest advertised by any
// health-admitted worker, sorted.
func (r *Registry) CheckpointKeys() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	set := make(map[string]struct{})
	for _, w := range r.workers {
		if w.state != WorkerUp {
			continue
		}
		for k := range w.checkpoints {
			set[k] = struct{}{}
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// InfoFor snapshots one worker's status.
func (r *Registry) InfoFor(id string) (WorkerInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.byID[id]
	if !ok {
		return WorkerInfo{}, false
	}
	return r.infoLocked(w, time.Now()), true
}

// Info snapshots every worker's status in registration order.
func (r *Registry) Info() []WorkerInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	infos := make([]WorkerInfo, len(r.workers))
	for i, w := range r.workers {
		infos[i] = r.infoLocked(w, now)
	}
	return infos
}

// ReportFailure records a request-level failure against a worker (the
// router calls this when a submit/wait fails): it counts toward the
// same consecutive-failure ejection threshold as a failed probe, so
// traffic ejects a dead worker faster than the probe cadence would.
func (r *Registry) ReportFailure(id string, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.byID[id]; ok {
		r.recordFailureLocked(w, err)
	}
}

// probeLoop drives the periodic health round until Close.
func (r *Registry) probeLoop() {
	defer close(r.done)
	t := time.NewTicker(r.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.ProbeOnce(context.Background())
		}
	}
}

// ProbeOnce runs one probe round: every due worker is health-checked
// concurrently and its admission state updated. Down workers are only
// probed once their backoff expires; ejected workers are skipped (a
// heartbeat revives them).
func (r *Registry) ProbeOnce(ctx context.Context) {
	r.mu.Lock()
	now := time.Now()
	var due []*Worker
	for _, w := range r.workers {
		if w.lifecycle == LifecycleEjected {
			continue
		}
		if w.state == WorkerDown && now.Before(w.retryAt) {
			continue
		}
		due = append(due, w)
	}
	r.mu.Unlock()

	var wg sync.WaitGroup
	for _, w := range due {
		wg.Add(1)
		go func(w *Worker) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, r.opts.ProbeTimeout)
			defer cancel()
			h, err := w.Client.Health(pctx)
			r.mu.Lock()
			defer r.mu.Unlock()
			w.probed = time.Now()
			if err != nil {
				r.recordFailureLocked(w, err)
				return
			}
			w.health = h
			w.setAdvertsLocked(h.WireAddr, h.Checkpoints)
			w.fails = 0
			w.backoff = 0
			w.lastErr = ""
			if h.Version != r.opts.FormatVersion {
				w.state = WorkerIncompatible
				w.lastErr = fmt.Sprintf("snapshot format version %d, coordinator requires %d", h.Version, r.opts.FormatVersion)
				return
			}
			w.state = WorkerUp
		}(w)
	}
	wg.Wait()
}

// recordFailureLocked applies one failure: bump the consecutive count,
// eject at the threshold, and push the readmission probe out by the
// (doubling) backoff plus a random jitter of up to +25%. Without the
// jitter a fleet-wide blip (switch reboot, coordinated deploy) leaves
// every worker on the same backoff schedule and each retry round
// arrives as one synchronized thundering herd of readmission probes.
func (r *Registry) recordFailureLocked(w *Worker, err error) {
	w.fails++
	w.lastErr = err.Error()
	if w.state == WorkerDown || w.fails >= r.opts.FailAfter {
		w.state = WorkerDown
		if w.backoff == 0 {
			w.backoff = r.opts.BackoffBase
		} else if w.backoff < r.opts.BackoffMax {
			w.backoff = min(2*w.backoff, r.opts.BackoffMax)
		}
		jitter := time.Duration(rand.Int63n(int64(w.backoff)/4 + 1))
		w.retryAt = time.Now().Add(w.backoff + jitter)
	}
}
