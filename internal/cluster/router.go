package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"bump/internal/service"
	"bump/internal/sim"
)

// RouteKey returns a spec's affinity key. Warm-cacheable configurations
// key by sim.WarmKey — the structural digest shared by every point of a
// measured-parameter sweep — so the whole sweep pins to one worker and
// its WarmStore simulates the warmup once. Everything else keys by the
// full config hash, which still pins duplicate submissions (and their
// result-cache hits) to one worker. warm reports which case applied.
func RouteKey(spec service.JobSpec) (key string, warm bool, err error) {
	cfg, err := spec.Config()
	if err != nil {
		return "", false, err
	}
	if wk, ok := sim.WarmKey(cfg); ok {
		return wk, true, nil
	}
	hash, err := service.Hash(cfg)
	if err != nil {
		return "", false, err
	}
	return hash, false, nil
}

// Router executes jobs against the fleet: consistent-hash placement by
// affinity key, then failover down the key's preference sequence when a
// worker fails mid-flight. Re-execution on the next worker is safe
// because results are a deterministic function of the configuration.
type Router struct {
	reg *Registry
	// Prefetch, when set, runs after a worker is picked and before the
	// spec is submitted to it: the coordinator uses it to pull the key's
	// warm checkpoint onto a failover placement from a peer that still
	// holds it, so the new worker restores instead of re-simulating the
	// warmup. Must be best-effort and bounded: a slow or failing
	// prefetch only delays the submit, never fails it.
	Prefetch func(ctx context.Context, w *Worker, key string)
}

// NewRouter returns a router over the registry's fleet.
func NewRouter(reg *Registry) *Router { return &Router{reg: reg} }

// ErrNoWorkers is returned when no admitted worker remains to try.
var ErrNoWorkers = errors.New("cluster: no healthy workers")

// pick returns the first routable, untried worker in the key's
// preference sequence (the ring is keyed by worker URL; tried is keyed
// by worker ID). Routable means healthy AND lifecycle-active: cordoned,
// draining and ejected workers take no new placements, so a drained
// worker's warm-affinity keys remap to its ring successors here.
func (rt *Router) pick(key string, tried map[string]bool) (*Worker, bool) {
	for _, url := range rt.reg.Ring().Sequence(key) {
		w, ok := rt.reg.WorkerByURL(url)
		if !ok || tried[w.ID] || !rt.reg.Routable(w.ID) {
			continue
		}
		return w, true
	}
	return nil, false
}

// clientFault reports whether an error is the caller's own fault (bad
// spec → 4xx), where failing over to another worker would only repeat
// the rejection. Worker-side trouble (transport errors, 5xx, a lost job
// ID after a restart → 404) stays retryable.
func clientFault(err error) bool {
	var apiErr *service.APIError
	if !errors.As(err, &apiErr) {
		return false
	}
	return apiErr.Code == http.StatusBadRequest
}

// Submit places a spec on the key's preference sequence with failover:
// each worker-side submit failure strikes the worker (counting toward
// ejection) and moves down the ring. tried accumulates struck worker
// IDs so a caller retrying after a later failure (e.g. a lost wait)
// never resubmits to a worker it already gave up on; pass nil to start
// fresh. The returned status carries the worker-local job ID.
func (rt *Router) Submit(ctx context.Context, key string, spec service.JobSpec, tried map[string]bool) (service.JobStatus, *Worker, error) {
	if tried == nil {
		tried = make(map[string]bool)
	}
	var lastErr error
	for {
		if err := ctx.Err(); err != nil {
			return service.JobStatus{}, nil, err
		}
		w, ok := rt.pick(key, tried)
		if !ok {
			if lastErr != nil {
				return service.JobStatus{}, nil, fmt.Errorf("cluster: all workers failed, last: %w", lastErr)
			}
			return service.JobStatus{}, nil, ErrNoWorkers
		}
		if rt.Prefetch != nil {
			rt.Prefetch(ctx, w, key)
		}
		st, err := w.Client.Submit(ctx, spec)
		switch {
		case err == nil:
			return st, w, nil
		case ctx.Err() != nil:
			return service.JobStatus{}, nil, ctx.Err()
		case clientFault(err):
			return service.JobStatus{}, nil, err
		}
		// Worker-side failure: strike it, move down the sequence.
		rt.reg.ReportFailure(w.ID, err)
		tried[w.ID] = true
		lastErr = err
	}
}

// Run executes one spec with affinity routing and failover, returning
// the terminal status (its ID namespaced "jNNN@worker") and the worker
// that served it. A worker lost *after* submit (wait fails, job gone)
// is struck like a failed submit and the job re-executes on the next
// worker in the sequence — safe because results are a deterministic
// function of the configuration.
func (rt *Router) Run(ctx context.Context, spec service.JobSpec) (service.JobStatus, string, error) {
	key, _, err := RouteKey(spec)
	if err != nil {
		return service.JobStatus{}, "", err
	}
	tried := make(map[string]bool)
	for {
		st, w, err := rt.Submit(ctx, key, spec, tried)
		if err != nil {
			return service.JobStatus{}, "", err
		}
		if !st.State.Terminal() {
			st, err = w.Client.Wait(ctx, st.ID)
		}
		if err == nil {
			st.ID = JoinJobID(st.ID, w.ID)
			return st, w.ID, nil
		}
		if ctx.Err() != nil {
			return service.JobStatus{}, "", ctx.Err()
		}
		rt.reg.ReportFailure(w.ID, err)
		tried[w.ID] = true
	}
}

// JoinJobID namespaces a worker-local job ID with its worker:
// "j00000001" on w2 becomes "j00000001@w2". Clients treat job IDs as
// opaque, so namespaced IDs flow through the /v1 protocol unchanged.
func JoinJobID(jobID, workerID string) string {
	return jobID + "@" + workerID
}

// SplitJobID undoes JoinJobID.
func SplitJobID(id string) (jobID, workerID string, err error) {
	for i := len(id) - 1; i >= 0; i-- {
		if id[i] == '@' {
			if i == 0 || i == len(id)-1 {
				break
			}
			return id[:i], id[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("cluster: job ID %q carries no worker suffix", id)
}
