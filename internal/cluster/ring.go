// Package cluster federates a fleet of bumpd workers behind one
// coordinator: a health-checked worker registry, a consistent-hash ring
// that routes jobs by warm-affinity key (so sweep points sharing a
// warmup trajectory land on the worker already holding the checkpoint),
// submit/retry-with-failover execution, proxied SSE progress, and a
// batch API for whole sweeps. cmd/bumpctl serves it over the same /v1
// wire protocol as a single worker, so existing clients work unchanged.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// Ring is a consistent-hash ring mapping affinity keys to workers.
// Each worker owns `replicas` pseudo-random points on a uint64 circle;
// a key routes to the first point at or after its own hash. The map is
// deterministic (pure function of the member set), spreads keys evenly
// for modest replica counts, and moves only the departed worker's keys
// when membership changes — exactly the stability warm-checkpoint
// affinity needs.
type Ring struct {
	points  []ringPoint // sorted by hash
	members []string
}

type ringPoint struct {
	hash   uint64
	worker string
}

// DefaultReplicas is the virtual-node count per worker. 128 keeps the
// max/min load ratio under ~1.3 for small fleets.
const DefaultReplicas = 128

// NewRing builds a ring over the given worker IDs. replicas <= 0 picks
// DefaultReplicas.
func NewRing(workers []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{
		points:  make([]ringPoint, 0, len(workers)*replicas),
		members: append([]string(nil), workers...),
	}
	for _, w := range workers {
		for i := 0; i < replicas; i++ {
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], uint64(i))
			r.points = append(r.points, ringPoint{hash: ringHash(w, buf[:]), worker: w})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on worker ID so the ring is deterministic even under
		// (astronomically unlikely) 64-bit hash collisions.
		return r.points[i].worker < r.points[j].worker
	})
	return r
}

// ringHash hashes a worker/virtual-node or key to its ring position.
// SHA-256 (truncated) rather than a fast non-cryptographic hash: ring
// placement is computed once per worker and once per job, and uniform
// dispersion matters more than speed here.
func ringHash(s string, extra []byte) uint64 {
	h := sha256.New()
	h.Write([]byte(s))
	if extra != nil {
		h.Write([]byte{0})
		h.Write(extra)
	}
	var sum [sha256.Size]byte
	return binary.LittleEndian.Uint64(h.Sum(sum[:0]))
}

// Members returns the worker IDs the ring was built over.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Owner returns the worker a key routes to, or "" for an empty ring.
func (r *Ring) Owner(key string) string {
	seq := r.Sequence(key)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}

// Sequence returns every member in preference order for a key: the
// owner first, then each distinct worker encountered walking the ring
// clockwise. Failover tries workers in this order, so a key's backup
// assignment is as deterministic as its primary.
func (r *Ring) Sequence(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	kh := ringHash(key, nil)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= kh })
	seq := make([]string, 0, len(r.members))
	seen := make(map[string]bool, len(r.members))
	for i := 0; i < len(r.points) && len(seq) < len(r.members); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.worker] {
			seen[p.worker] = true
			seq = append(seq, p.worker)
		}
	}
	return seq
}
