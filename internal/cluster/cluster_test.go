package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bump/internal/service"
	"bump/internal/sim"
	"bump/internal/wire"
)

// testWorker is one in-process bumpd: a real warm-started pool behind a
// real HTTP server, optionally with a binary wire listener.
type testWorker struct {
	pool *service.Pool
	srv  *httptest.Server
	wire *wire.Server // nil unless built by newWireFleet
}

func newTestFleet(t *testing.T, n int, opts service.Options) []*testWorker {
	t.Helper()
	if opts.ProgressInterval == 0 {
		opts.ProgressInterval = 5_000
	}
	fleet := make([]*testWorker, n)
	for i := range fleet {
		p := service.NewPool(opts)
		srv := httptest.NewServer(service.NewHandler(p))
		t.Cleanup(func() {
			srv.Close()
			p.Close()
		})
		fleet[i] = &testWorker{pool: p, srv: srv}
	}
	return fleet
}

// newWireFleet builds workers that also serve the binary wire protocol
// and advertise its address in /v1/healthz, so coordinator worker
// clients negotiate onto it. Kept separate from newTestFleet: the chaos
// tests proxy worker HTTP traffic and must not be silently bypassed by
// a negotiated side channel.
func newWireFleet(t *testing.T, n int, opts service.Options) []*testWorker {
	t.Helper()
	if opts.ProgressInterval == 0 {
		opts.ProgressInterval = 5_000
	}
	fleet := make([]*testWorker, n)
	for i := range fleet {
		p := service.NewPool(opts)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ws := wire.Serve(l, service.NewWireHandler(service.NewPoolWireBackend(p)))
		srv := httptest.NewServer(service.NewHandlerInfo(p, service.ServerInfo{WireAddr: l.Addr().String()}))
		t.Cleanup(func() {
			srv.Close()
			ws.Close()
			p.Close()
		})
		fleet[i] = &testWorker{pool: p, srv: srv, wire: ws}
	}
	return fleet
}

func newTestCoordinator(t *testing.T, fleet []*testWorker) *Coordinator {
	t.Helper()
	urls := make([]string, len(fleet))
	for i, w := range fleet {
		urls[i] = w.srv.URL
	}
	coord, err := New(context.Background(), Options{
		Workers: urls,
		Registry: RegistryOptions{
			ProbeInterval:  50 * time.Millisecond,
			ProbeTimeout:   5 * time.Second,
			FailAfter:      2,
			BackoffBase:    50 * time.Millisecond,
			BackoffMax:     200 * time.Millisecond,
			PollInterval:   10 * time.Millisecond,
			RequestTimeout: 5 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	if up := coord.Registry().UpCount(); up != len(fleet) {
		t.Fatalf("%d/%d workers up after initial probe", up, len(fleet))
	}
	return coord
}

// sweepSpec is one warmed measured-parameter sweep point.
func sweepSpec(workload string, streak int) service.JobSpec {
	return service.JobSpec{
		Workload:        workload,
		Mechanism:       "bump",
		WarmupCycles:    20_000,
		MeasureCycles:   50_000,
		MaxRowHitStreak: streak,
	}
}

// resultJSON canonicalizes a result for byte-identity comparison.
func resultJSON(t *testing.T, r sim.Result) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// singleNodeReference runs the same batch on one warm-started local
// pool — the baseline the cluster must match byte for byte.
func singleNodeReference(t *testing.T, specs []service.JobSpec) []string {
	t.Helper()
	p := service.NewPool(service.Options{Workers: 2, WarmStarts: true, ProgressInterval: 5_000})
	defer p.Close()
	res, err := service.RunBatch(context.Background(), p, service.BatchSpec{Specs: specs}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref := make([]string, len(res.Points))
	for i, pt := range res.Points {
		if pt.Status.State != service.StateDone || pt.Status.Result == nil {
			t.Fatalf("reference point %d: %s (%s)", i, pt.Status.State, pt.Status.Error)
		}
		ref[i] = resultJSON(t, *pt.Status.Result)
	}
	return ref
}

// TestClusterE2EWarmAffinitySweep is the tentpole acceptance test: a
// warmed measured-parameter sweep dispatched through the coordinator to
// three warm-started workers must
//
//   - pin every point of a structural config group to one worker
//     (consistent-hash affinity on the warm key),
//   - simulate exactly one warmup per distinct structural config
//     fleet-wide (the affinity is what makes the WarmStore pay off),
//   - produce results byte-identical to the single-node path, and
//   - serve a second identical sweep entirely from worker result caches
//     (zero additional executions).
func TestClusterE2EWarmAffinitySweep(t *testing.T) {
	fleet := newTestFleet(t, 3, service.Options{Workers: 2, WarmStarts: true})
	coord := newTestCoordinator(t, fleet)

	// Two structural config groups (distinct workloads) × 8 measured-
	// parameter points (row-hit streak caps) each.
	groups := []string{"web-search", "media-streaming"}
	const perGroup = 8
	var specs []service.JobSpec
	for _, wl := range groups {
		for streak := 0; streak < perGroup; streak++ {
			specs = append(specs, sweepSpec(wl, streak))
		}
	}
	const warmupCycles = 20_000

	res, err := coord.Batch(context.Background(), service.BatchSpec{Specs: specs}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("%d failed points: %+v", res.Failed, res.Points)
	}

	// Warm-affinity: every point of a group landed on the same worker.
	for g, wl := range groups {
		workers := map[string]bool{}
		for i := g * perGroup; i < (g+1)*perGroup; i++ {
			workers[res.Points[i].Worker] = true
		}
		if len(workers) != 1 {
			t.Errorf("group %q spread across workers %v, want exactly one (warm affinity)", wl, workers)
		}
	}

	// Exactly one warmup per structural config group, fleet-wide.
	var misses, simulated uint64
	for _, w := range fleet {
		st := w.pool.Stats()
		misses += st.Warm.Misses
		simulated += st.Warm.WarmupCyclesSimulated
	}
	if misses != uint64(len(groups)) {
		t.Errorf("fleet simulated %d warmups, want exactly %d (one per structural config)", misses, len(groups))
	}
	if simulated != uint64(len(groups))*warmupCycles {
		t.Errorf("fleet simulated %d warmup cycles, want %d", simulated, len(groups)*warmupCycles)
	}

	// Byte-identical to the single-node warmed path.
	ref := singleNodeReference(t, specs)
	for i, pt := range res.Points {
		if got := resultJSON(t, *pt.Status.Result); got != ref[i] {
			t.Errorf("point %d (%s on %s): cluster result diverges from single-node", i, specs[i].Workload, pt.Worker)
		}
	}

	// Second pass: pure cache hits, zero new executions, same bytes.
	execsBefore := make([]uint64, len(fleet))
	for i, w := range fleet {
		execsBefore[i] = w.pool.Stats().Executions
	}
	res2, err := coord.Batch(context.Background(), service.BatchSpec{Specs: specs}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Failed != 0 {
		t.Fatalf("second pass: %d failed points", res2.Failed)
	}
	for i, w := range fleet {
		if got := w.pool.Stats().Executions; got != execsBefore[i] {
			t.Errorf("worker %d executed %d new jobs on the second pass, want 0 (result cache)", i, got-execsBefore[i])
		}
	}
	for i, pt := range res2.Points {
		if !pt.Status.Cached {
			t.Errorf("second-pass point %d not served from cache", i)
		}
		if got := resultJSON(t, *pt.Status.Result); got != ref[i] {
			t.Errorf("second-pass point %d diverges from first pass", i)
		}
	}
}

// TestClusterE2EFailoverMidSweep kills the affinity worker while its
// sweep is in flight: the coordinator must strike it out, fail the
// in-flight points over to the next worker on the ring, and still
// deliver a complete, byte-identical sweep.
func TestClusterE2EFailoverMidSweep(t *testing.T) {
	fleet := newTestFleet(t, 3, service.Options{Workers: 1, WarmStarts: true})
	coord := newTestCoordinator(t, fleet)

	const points = 16
	specs := make([]service.JobSpec, points)
	for i := range specs {
		specs[i] = sweepSpec("web-search", i)
		specs[i].WarmupCycles = 50_000
		specs[i].MeasureCycles = 500_000
	}

	// Find the worker the sweep pins to.
	key, warm, err := RouteKey(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !warm {
		t.Fatal("sweep spec must be warm-cacheable")
	}
	ownerURL := coord.Registry().Ring().Owner(key) // the ring is keyed by worker URL
	var owner *testWorker
	var ownerID string
	for i, w := range fleet {
		if w.srv.URL == ownerURL {
			owner = w
			ownerID = fmt.Sprintf("w%d", i)
		}
	}
	if owner == nil {
		t.Fatalf("owner %q not found", ownerURL)
	}

	done := make(chan struct{})
	var res service.BatchResult
	go func() {
		defer close(done)
		res, err = coord.Batch(context.Background(), service.BatchSpec{Specs: specs}, nil)
	}()

	// Wait until the owner has completed at least one point, then kill
	// it mid-sweep.
	killDeadline := time.After(30 * time.Second)
	for owner.pool.Stats().Completed == 0 {
		select {
		case <-killDeadline:
			t.Fatal("owner never started completing points")
		case <-done:
			t.Fatal("sweep finished before the worker could be killed — enlarge the specs")
		case <-time.After(time.Millisecond):
		}
	}

	// The owner's completed warmup published a checkpoint it now
	// advertises in healthz. Drive probe + replication rounds until a
	// peer holds a copy, so the failover placement restores the warmup
	// instead of re-simulating it.
	repDeadline := time.After(10 * time.Second)
	for len(coord.Registry().HoldersOf(key, ownerID)) == 0 {
		coord.Registry().ProbeOnce(context.Background())
		coord.ReplicateOnce(context.Background())
		select {
		case <-repDeadline:
			t.Fatal("checkpoint never replicated off the owner")
		case <-done:
			t.Fatal("sweep finished before replication — enlarge the specs")
		case <-time.After(5 * time.Millisecond):
		}
	}

	owner.srv.CloseClientConnections()
	owner.srv.Close()

	<-done
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("%d failed points after failover: %+v", res.Failed, res.Points)
	}
	failedOver := 0
	for _, pt := range res.Points {
		if pt.Worker != ownerID {
			failedOver++
		}
	}
	if failedOver == 0 {
		t.Error("no point failed over off the killed worker")
	}

	// The dead worker is ejected from the topology.
	deadline := time.After(5 * time.Second)
	for coord.Registry().Up(ownerID) {
		select {
		case <-deadline:
			t.Fatal("killed worker still admitted")
		case <-time.After(5 * time.Millisecond):
		}
	}

	// Checkpoint transfer made the failover warm: the surviving workers
	// restored the replicated checkpoint instead of re-simulating the
	// warmup — zero warmup cycles simulated anywhere but the owner.
	var installed uint64
	for i, w := range fleet {
		if w == owner {
			continue
		}
		st := w.pool.Stats()
		if st.Warm.WarmupCyclesSimulated != 0 {
			t.Errorf("worker %d re-simulated %d warmup cycles despite a transferred checkpoint", i, st.Warm.WarmupCyclesSimulated)
		}
		installed += st.Warm.Installed
	}
	if installed == 0 {
		t.Error("no worker installed a transferred checkpoint")
	}

	// Results are still byte-identical to the single-node path.
	ref := singleNodeReference(t, specs)
	for i, pt := range res.Points {
		if got := resultJSON(t, *pt.Status.Result); got != ref[i] {
			t.Errorf("point %d (on %s): failover sweep diverges from single-node", i, pt.Worker)
		}
	}
}

// TestClusterWireProtocol pins that a stock service.Client — written
// for a single bumpd — works against the coordinator unchanged: submit,
// poll, SSE events, result-by-hash, health.
func TestClusterWireProtocol(t *testing.T) {
	fleet := newTestFleet(t, 3, service.Options{Workers: 2, WarmStarts: true})
	coord := newTestCoordinator(t, fleet)
	front := httptest.NewServer(coord.Handler())
	t.Cleanup(front.Close)
	client := service.NewClient(front.URL)
	client.PollInterval = 10 * time.Millisecond

	spec := sweepSpec("web-search", 0)
	spec.MeasureCycles = 5_000_000 // long enough for a live SSE stream
	st, err := client.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, workerID, err := SplitJobID(st.ID); err != nil || !coord.Registry().Up(workerID) {
		t.Fatalf("job ID %q must name an admitted worker (err %v)", st.ID, err)
	}

	// SSE through the proxy: progress events, then a terminal event
	// whose payload carries the namespaced ID.
	var progress int
	var terminal service.JobPayload
	err = client.Events(context.Background(), st.ID, func(ev service.Event) error {
		switch {
		case ev.Name == "progress":
			progress++
		case ev.Terminal():
			if err := json.Unmarshal(ev.Data, &terminal); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if progress == 0 {
		t.Error("no progress events proxied")
	}
	if terminal.ID != st.ID || terminal.State != service.StateDone {
		t.Fatalf("terminal event %+v, want done for %s", terminal.JobStatus, st.ID)
	}
	if terminal.Metrics == nil {
		t.Error("terminal payload missing derived metrics")
	}

	// Poll and result-by-hash (fleet-wide lookup).
	fin, err := client.Wait(context.Background(), st.ID)
	if err != nil || fin.State != service.StateDone {
		t.Fatalf("wait: %v %s", err, fin.State)
	}
	res, ok, err := client.ResultByHash(context.Background(), fin.Hash)
	if err != nil || !ok {
		t.Fatalf("ResultByHash: ok=%v err=%v", ok, err)
	}
	if resultJSON(t, res) != resultJSON(t, *fin.Result) {
		t.Error("hash lookup returned a different result")
	}

	// Aggregated health speaks the worker schema.
	h, err := client.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Stats.Executions == 0 || h.Version == 0 {
		t.Errorf("aggregated health: %+v", h)
	}

	// Cancel via the proxy.
	long := sweepSpec("data-serving", 0)
	long.MeasureCycles = 200_000_000
	lst, err := client.Submit(context.Background(), long)
	if err != nil {
		t.Fatal(err)
	}
	if cst, err := client.Cancel(context.Background(), lst.ID); err != nil || cst.State == service.StateDone {
		t.Fatalf("cancel: %+v %v", cst, err)
	}
	fin, err = client.Wait(context.Background(), lst.ID)
	if err != nil || fin.State != service.StateCanceled {
		t.Fatalf("canceled job: %v %s", err, fin.State)
	}
}

// TestClusterBatchHTTP drives POST /v1/batch over HTTP in both content
// negotiations: SSE per-point streaming and plain JSON aggregate.
func TestClusterBatchHTTP(t *testing.T) {
	fleet := newTestFleet(t, 2, service.Options{Workers: 2, WarmStarts: true})
	coord := newTestCoordinator(t, fleet)
	front := httptest.NewServer(coord.Handler())
	t.Cleanup(front.Close)
	client := service.NewClient(front.URL)
	client.PollInterval = 10 * time.Millisecond

	specs := make([]service.JobSpec, 6)
	for i := range specs {
		specs[i] = sweepSpec("web-search", i)
	}

	// SSE path via the client.
	var pointEvents int
	res, err := client.Batch(context.Background(), service.BatchSpec{Specs: specs}, func(pt service.BatchPoint) {
		pointEvents++
	})
	if err != nil {
		t.Fatal(err)
	}
	if pointEvents != len(specs) {
		t.Errorf("%d point events, want %d", pointEvents, len(specs))
	}
	if len(res.Points) != len(specs) || res.Failed != 0 {
		t.Fatalf("batch aggregate: %d points, %d failed", len(res.Points), res.Failed)
	}
	for i, pt := range res.Points {
		if pt.Index != i || pt.Status.Result == nil || pt.Worker == "" {
			t.Fatalf("point %d out of order or incomplete: %+v", i, pt)
		}
		if pt.Status.Spec.MaxRowHitStreak != specs[i].MaxRowHitStreak {
			t.Errorf("point %d carries spec for streak %d, want %d", i, pt.Status.Spec.MaxRowHitStreak, specs[i].MaxRowHitStreak)
		}
	}

	// Plain JSON path.
	body, _ := json.Marshal(service.BatchSpec{Specs: specs})
	resp, err := http.Post(front.URL+"/v1/batch", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var agg service.BatchResult
	if err := json.NewDecoder(resp.Body).Decode(&agg); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(agg.Points) != len(specs) || agg.Failed != 0 {
		t.Fatalf("JSON batch: status %d, %d points, %d failed", resp.StatusCode, len(agg.Points), agg.Failed)
	}

	// Topology endpoint.
	tr, err := http.Get(front.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	var top ClusterPayload
	if err := json.NewDecoder(tr.Body).Decode(&top); err != nil {
		t.Fatal(err)
	}
	if top.Status != "ok" || top.Up != 2 || top.Total != 2 || len(top.Workers) != 2 {
		t.Fatalf("topology: %+v", top)
	}
	var execs uint64
	for _, w := range top.Workers {
		execs += w.Stats.Executions
	}
	if execs == 0 {
		t.Error("topology carries no per-worker execution stats")
	}
}

// TestClusterE2ECrossProtocolSweep runs the same sweep through the
// coordinator over both protocols — HTTP/JSON (wire disabled) and the
// negotiated binary wire path — and requires the results to be
// byte-identical to each other and to the single-node reference. The
// coordinator's own worker hops must negotiate onto wire too.
func TestClusterE2ECrossProtocolSweep(t *testing.T) {
	fleet := newWireFleet(t, 3, service.Options{Workers: 2, WarmStarts: true})
	coord := newTestCoordinator(t, fleet)
	front := httptest.NewServer(coord.Handler())
	t.Cleanup(front.Close)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wireSrv := wire.Serve(l, service.NewWireHandler(coord))
	t.Cleanup(wireSrv.Close)
	coord.SetWireAddr(l.Addr().String())

	groups := []string{"web-search", "media-streaming"}
	const perGroup = 4
	var specs []service.JobSpec
	for _, wl := range groups {
		for streak := 0; streak < perGroup; streak++ {
			specs = append(specs, sweepSpec(wl, streak))
		}
	}

	jsonClient := service.NewClient(front.URL)
	jsonClient.DisableWire = true
	jsonClient.PollInterval = 10 * time.Millisecond
	wireClient := service.NewClient(front.URL)
	wireClient.PollInterval = 10 * time.Millisecond
	t.Cleanup(func() { jsonClient.Close(); wireClient.Close() })

	jres, err := jsonClient.Batch(context.Background(), service.BatchSpec{Specs: specs}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wres, err := wireClient.Batch(context.Background(), service.BatchSpec{Specs: specs}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if jres.Failed != 0 || wres.Failed != 0 {
		t.Fatalf("failed points: json=%d wire=%d", jres.Failed, wres.Failed)
	}
	if ws := wireClient.WireStats(); ws.Calls == 0 {
		t.Fatalf("wire client never used the binary path: %+v", ws)
	}
	if js := jsonClient.WireStats(); js.Calls != 0 {
		t.Fatalf("DisableWire client made %d wire calls", js.Calls)
	}

	// Coordinator→worker hops negotiated onto wire (workers advertise it
	// in healthz, DisableWire was not set on the registry).
	var workerWire uint64
	for _, wk := range coord.Registry().Workers() {
		workerWire += wk.Client.WireStats().Calls
	}
	if workerWire == 0 {
		t.Error("coordinator worker clients never negotiated onto the wire path")
	}

	// Byte-identity: wire == JSON == single-node, point for point.
	ref := singleNodeReference(t, specs)
	for i := range specs {
		j := resultJSON(t, *jres.Points[i].Status.Result)
		w := resultJSON(t, *wres.Points[i].Status.Result)
		if j != ref[i] {
			t.Errorf("point %d: JSON path diverges from single-node", i)
		}
		if w != j {
			t.Errorf("point %d: wire path diverges from JSON path", i)
		}
	}

	// Single-job round trip over wire: submit, poll, result-by-hash all
	// match the JSON view of the same job.
	st, err := wireClient.Submit(context.Background(), sweepSpec("web-search", 0))
	if err != nil {
		t.Fatal(err)
	}
	fin, err := wireClient.Wait(context.Background(), st.ID)
	if err != nil || fin.State != service.StateDone {
		t.Fatalf("wire wait: %v %s", err, fin.State)
	}
	jfin, err := jsonClient.Job(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if resultJSON(t, *fin.Result) != resultJSON(t, *jfin.Result) {
		t.Error("wire and JSON views of one job disagree")
	}
	res, ok, err := wireClient.ResultByHash(context.Background(), fin.Hash)
	if err != nil || !ok {
		t.Fatalf("wire ResultByHash: ok=%v err=%v", ok, err)
	}
	if resultJSON(t, res) != resultJSON(t, *fin.Result) {
		t.Error("wire hash lookup returned a different result")
	}
}
