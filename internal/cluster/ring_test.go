package cluster

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	ks := make([]string, n)
	for i := range ks {
		ks[i] = fmt.Sprintf("key-%d", i)
	}
	return ks
}

func TestRingDeterministicAndComplete(t *testing.T) {
	members := []string{"w0", "w1", "w2"}
	a := NewRing(members, 0)
	b := NewRing(members, 0)
	for _, k := range keys(200) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner of %q differs across identically-built rings", k)
		}
		seq := a.Sequence(k)
		if len(seq) != len(members) {
			t.Fatalf("sequence for %q has %d workers, want %d", k, len(seq), len(members))
		}
		if seq[0] != a.Owner(k) {
			t.Fatalf("sequence head %q != owner %q", seq[0], a.Owner(k))
		}
		seen := map[string]bool{}
		for _, w := range seq {
			if seen[w] {
				t.Fatalf("sequence for %q repeats worker %q", k, w)
			}
			seen[w] = true
		}
	}
}

// TestRingMinimalReshuffle: adding a worker moves only the keys the new
// worker takes over; every other key keeps its owner. This is the
// property that keeps warm checkpoints where they are when the fleet
// changes.
func TestRingMinimalReshuffle(t *testing.T) {
	small := NewRing([]string{"w0", "w1", "w2"}, 0)
	big := NewRing([]string{"w0", "w1", "w2", "w3"}, 0)
	moved := 0
	for _, k := range keys(2000) {
		ownerBig := big.Owner(k)
		if ownerBig == "w3" {
			moved++
			continue
		}
		if got := small.Owner(k); got != ownerBig {
			t.Fatalf("key %q owned by %q in 3-ring but %q in 4-ring (non-w3 keys must not move)", k, got, ownerBig)
		}
	}
	if moved == 0 {
		t.Fatal("new worker took no keys")
	}
}

func TestRingBalance(t *testing.T) {
	members := []string{"w0", "w1", "w2"}
	r := NewRing(members, 0)
	counts := map[string]int{}
	const n = 9000
	for _, k := range keys(n) {
		counts[r.Owner(k)]++
	}
	for _, w := range members {
		// Perfect balance is n/3; require every worker within ~2x of it
		// in both directions (consistent hashing with 128 replicas is
		// comfortably tighter than this).
		if counts[w] < n/6 || counts[w] > n/2 {
			t.Errorf("worker %s owns %d of %d keys — badly unbalanced (%v)", w, counts[w], n, counts)
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	empty := NewRing(nil, 0)
	if got := empty.Owner("k"); got != "" {
		t.Fatalf("empty ring owner %q", got)
	}
	one := NewRing([]string{"solo"}, 0)
	for _, k := range keys(10) {
		if one.Owner(k) != "solo" {
			t.Fatal("single-member ring must own every key")
		}
	}
}

func TestSplitJobID(t *testing.T) {
	job, worker, err := SplitJobID(JoinJobID("j00000042", "w7"))
	if err != nil || job != "j00000042" || worker != "w7" {
		t.Fatalf("round trip: %q %q %v", job, worker, err)
	}
	for _, bad := range []string{"", "plain", "@w0", "j1@", "@"} {
		if _, _, err := SplitJobID(bad); err == nil {
			t.Errorf("SplitJobID(%q) must fail", bad)
		}
	}
}
