package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"bump/internal/obs"
	"bump/internal/service"
)

// newObsFleet builds workers with metrics registries and tracers wired
// through both the pool and the HTTP handler, so /metrics and
// /v1/jobs/{id}/trace are live on every worker.
func newObsFleet(t *testing.T, n int) []*testWorker {
	t.Helper()
	fleet := make([]*testWorker, n)
	for i := range fleet {
		metrics := obs.NewRegistry()
		tracer := obs.NewTracer(0)
		p := service.NewPool(service.Options{
			Workers:          2,
			WarmStarts:       true,
			ProgressInterval: 5_000,
			Metrics:          metrics,
			Tracer:           tracer,
		})
		srv := httptest.NewServer(service.NewHandlerInfo(p, service.ServerInfo{
			Metrics: metrics,
			Tracer:  tracer,
		}))
		t.Cleanup(func() {
			srv.Close()
			p.Close()
		})
		fleet[i] = &testWorker{pool: p, srv: srv}
	}
	return fleet
}

// scrape GETs a /metrics endpoint and parses the exposition into
// series -> value (one entry per unique name+labels line).
func scrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("scrape %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape %s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("scrape %s: content type %q", url, ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	series := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("scrape %s: malformed line %q", url, line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("scrape %s: bad value in %q: %v", url, line, err)
		}
		series[line[:sp]] = v
	}
	return series
}

// assertMonotone checks that every cumulative series (counters and
// histogram _count/_sum) present in two ordered scrapes never decreased.
func assertMonotone(t *testing.T, earlier, later map[string]float64, label string) {
	t.Helper()
	cumulative := func(name string) bool {
		base := name
		if i := strings.IndexByte(name, '{'); i >= 0 {
			base = name[:i]
		}
		return strings.HasSuffix(base, "_total") ||
			strings.HasSuffix(base, "_count") || strings.HasSuffix(base, "_sum")
	}
	for name, was := range earlier {
		if !cumulative(name) {
			continue
		}
		now, ok := later[name]
		if !ok {
			t.Errorf("%s: series %s disappeared between scrapes", label, name)
			continue
		}
		if now < was {
			t.Errorf("%s: series %s went backwards: %v -> %v", label, name, was, now)
		}
	}
}

// TestClusterE2EMetricsAndTrace drives a warmed sweep through a
// coordinator with the full observability surface enabled, scraping
// /metrics on a worker and the coordinator mid-sweep and after it
// (asserting the key series exist and every counter is monotone), then
// submits one tracked job and checks the stitched trace: coordinator
// routing spans and worker execution spans under one trace ID.
func TestClusterE2EMetricsAndTrace(t *testing.T) {
	fleet := newObsFleet(t, 2)
	urls := make([]string, len(fleet))
	for i, w := range fleet {
		urls[i] = w.srv.URL
	}
	metrics := obs.NewRegistry()
	tracer := obs.NewTracer(0)
	coord, err := New(context.Background(), Options{
		Workers: urls,
		Registry: RegistryOptions{
			ProbeInterval:  50 * time.Millisecond,
			ProbeTimeout:   5 * time.Second,
			FailAfter:      2,
			BackoffBase:    50 * time.Millisecond,
			BackoffMax:     200 * time.Millisecond,
			PollInterval:   10 * time.Millisecond,
			RequestTimeout: 5 * time.Second,
		},
		Metrics: metrics,
		Tracer:  tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	front := httptest.NewServer(coord.Handler())
	t.Cleanup(front.Close)

	workerURL := fleet[0].srv.URL
	preWorker := scrape(t, workerURL)
	preCoord := scrape(t, front.URL)

	var specs []service.JobSpec
	for streak := 0; streak < 4; streak++ {
		specs = append(specs, sweepSpec("web-search", streak))
	}
	done := make(chan error, 1)
	go func() {
		res, err := coord.Batch(context.Background(), service.BatchSpec{Specs: specs}, nil)
		if err == nil && res.Failed != 0 {
			err = fmt.Errorf("%d failed points", res.Failed)
		}
		done <- err
	}()

	// Mid-sweep scrapes: both endpoints must stay serveable and monotone
	// while jobs are in flight.
	midWorker, midCoord := preWorker, preCoord
	for running := true; running; {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			running = false
		case <-time.After(20 * time.Millisecond):
			w := scrape(t, workerURL)
			c := scrape(t, front.URL)
			assertMonotone(t, midWorker, w, "worker mid-sweep")
			assertMonotone(t, midCoord, c, "coordinator mid-sweep")
			midWorker, midCoord = w, c
		}
	}
	postWorker := scrape(t, workerURL)
	postCoord := scrape(t, front.URL)
	assertMonotone(t, midWorker, postWorker, "worker final")
	assertMonotone(t, midCoord, postCoord, "coordinator final")

	// The sweep landed on one of the two workers; the fleet-wide sums
	// must show the executions and phase timings.
	otherWorker := scrape(t, fleet[1].srv.URL)
	sum := func(series string) float64 { return postWorker[series] + otherWorker[series] }
	if got := sum("bump_pool_executions_total"); got < float64(len(specs)) {
		t.Errorf("fleet bump_pool_executions_total = %v, want >= %d", got, len(specs))
	}
	if got := sum(`bump_sim_phase_seconds_count{phase="measure"}`); got < float64(len(specs)) {
		t.Errorf(`fleet bump_sim_phase_seconds_count{phase="measure"} = %v, want >= %d`, got, len(specs))
	}
	for _, series := range []string{
		"bump_pool_workers", "bump_cache_entries", "bump_warm_hits_total",
		`bump_warm_cycles_simulated_total{kind="warmup"}`,
		"bump_parallel_tokens", "bump_conns_requests_total",
	} {
		if _, ok := postWorker[series]; !ok {
			t.Errorf("worker /metrics missing %s", series)
		}
	}
	if got := postCoord["bump_cluster_workers_up"]; got != 2 {
		t.Errorf("bump_cluster_workers_up = %v, want 2", got)
	}
	for _, series := range []string{
		"bump_wal_durable", `bump_cluster_jobs{state="done"}`,
		"bump_cluster_inflight", "bump_wire_calls_total",
	} {
		if _, ok := postCoord[series]; !ok {
			t.Errorf("coordinator /metrics missing %s", series)
		}
	}

	// One tracked solo job, submitted over HTTP, then its stitched trace.
	body, err := json.Marshal(sweepSpec("media-streaming", 3))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(front.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var payload service.JobPayload
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(front.URL + "/v1/jobs/" + payload.ID)
		if err != nil {
			t.Fatal(err)
		}
		var st service.JobPayload
		err = json.NewDecoder(r.Body).Decode(&st)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			if st.State != service.StateDone {
				t.Fatalf("job %s: %s (%s)", payload.ID, st.State, st.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s", payload.ID, st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The await span lands when the driver observes the terminal state,
	// which may trail our poll by a beat.
	var exp *obs.TraceExport
	names := map[string]int{}
	for time.Now().Before(deadline) {
		r, err := http.Get(front.URL + "/v1/jobs/" + payload.ID + "/trace")
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(r.Body)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if exp, err = obs.ParseExport(data); err != nil {
			t.Fatalf("trace parse: %v", err)
		}
		names = map[string]int{}
		for _, ev := range exp.TraceEvents {
			if ev.Phase != "M" {
				names[ev.Name] = ev.Pid
			}
		}
		if _, ok := names["await"]; ok {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	traceID, _ := exp.Metadata["trace_id"].(string)
	if traceID == "" {
		t.Fatal("trace export carries no trace_id metadata")
	}
	for _, ev := range exp.TraceEvents {
		if ev.Phase == "M" {
			continue
		}
		if got, _ := ev.Args["trace_id"].(string); got != traceID {
			t.Errorf("event %q carries trace_id %q, want %q", ev.Name, got, traceID)
		}
	}
	for _, want := range []struct {
		name string
		pid  int
	}{
		{"route", 1}, {"await", 1}, // coordinator timeline
		{"queue", 2}, {"execute", 2}, {"warmup", 2}, {"measure", 2}, // worker timeline
	} {
		if pid, ok := names[want.name]; !ok {
			t.Errorf("stitched trace missing span %q (have %v)", want.name, names)
		} else if pid != want.pid {
			t.Errorf("span %q on pid %d, want %d", want.name, pid, want.pid)
		}
	}
}
