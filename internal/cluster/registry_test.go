package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"bump/internal/service"
	"bump/internal/snapshot"
)

// fakeWorker is a controllable /v1/healthz endpoint.
type fakeWorker struct {
	srv     *httptest.Server
	failing atomic.Bool
	version atomic.Int64
	probes  atomic.Int64
}

func newFakeWorker(t *testing.T) *fakeWorker {
	t.Helper()
	f := &fakeWorker{}
	f.version.Store(snapshot.FormatVersion)
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/healthz" {
			http.NotFound(w, r)
			return
		}
		f.probes.Add(1)
		if f.failing.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(service.HealthPayload{
			Status:  "ok",
			Version: int(f.version.Load()),
			Uptime:  1,
		})
	}))
	t.Cleanup(f.srv.Close)
	return f
}

// newManualRegistry builds a registry whose periodic loop is effectively
// parked (huge interval) so tests drive rounds via ProbeOnce.
func newManualRegistry(t *testing.T, opts RegistryOptions, urls ...string) *Registry {
	t.Helper()
	opts.ProbeInterval = time.Hour
	if opts.ProbeTimeout == 0 {
		opts.ProbeTimeout = 2 * time.Second
	}
	r, err := NewRegistry(urls, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func TestRegistryAdmitsHealthyWorkers(t *testing.T) {
	a, b := newFakeWorker(t), newFakeWorker(t)
	r := newManualRegistry(t, RegistryOptions{}, a.srv.URL, b.srv.URL)
	if r.UpCount() != 0 {
		t.Fatal("workers must start unrouted before the first probe")
	}
	r.ProbeOnce(context.Background())
	if r.UpCount() != 2 {
		t.Fatalf("up=%d after probe, want 2", r.UpCount())
	}
	for _, info := range r.Info() {
		if info.State != WorkerUp || info.Version != snapshot.FormatVersion {
			t.Fatalf("worker %s: %+v", info.ID, info)
		}
	}
}

func TestRegistryEjectsAfterConsecutiveFailuresAndReadmits(t *testing.T) {
	a := newFakeWorker(t)
	r := newManualRegistry(t, RegistryOptions{
		FailAfter:   2,
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
	}, a.srv.URL)
	r.ProbeOnce(context.Background())
	if !r.Up("w0") {
		t.Fatal("healthy worker not admitted")
	}

	a.failing.Store(true)
	r.ProbeOnce(context.Background())
	if !r.Up("w0") {
		t.Fatal("one failure must not eject (FailAfter=2)")
	}
	r.ProbeOnce(context.Background())
	if r.Up("w0") {
		t.Fatal("worker must be ejected after 2 consecutive failures")
	}

	// While in backoff, probe rounds skip the worker entirely.
	before := a.probes.Load()
	r.ProbeOnce(context.Background())
	if a.probes.Load() != before {
		t.Fatal("down worker probed before its backoff expired")
	}

	// After backoff, a recovered worker is readmitted.
	a.failing.Store(false)
	time.Sleep(30 * time.Millisecond)
	r.ProbeOnce(context.Background())
	if !r.Up("w0") {
		t.Fatal("recovered worker not readmitted after backoff")
	}
	if info := r.Info()[0]; info.Fails != 0 || info.LastErr != "" {
		t.Fatalf("readmitted worker keeps stale failure state: %+v", info)
	}
}

// TestRegistryRejectsMixedFormatVersions: a worker whose snapshot
// format version differs is held out of routing (warm checkpoints are
// not portable across versions) but readmitted after an in-place
// upgrade.
func TestRegistryRejectsMixedFormatVersions(t *testing.T) {
	a := newFakeWorker(t)
	a.version.Store(int64(snapshot.FormatVersion + 1))
	r := newManualRegistry(t, RegistryOptions{}, a.srv.URL)
	r.ProbeOnce(context.Background())
	if r.Up("w0") {
		t.Fatal("mixed-format-version worker must not be admitted")
	}
	info := r.Info()[0]
	if info.State != WorkerIncompatible || info.LastErr == "" {
		t.Fatalf("state %s, lastErr %q; want incompatible with reason", info.State, info.LastErr)
	}

	a.version.Store(snapshot.FormatVersion)
	r.ProbeOnce(context.Background())
	if !r.Up("w0") {
		t.Fatal("upgraded worker must be readmitted")
	}
}

// TestRegistryReportFailureEjects: request-level failures reported by
// the router count toward ejection like probe failures, so traffic
// ejects a dead worker between probe rounds.
func TestRegistryReportFailureEjects(t *testing.T) {
	a := newFakeWorker(t)
	r := newManualRegistry(t, RegistryOptions{FailAfter: 2, BackoffBase: time.Minute}, a.srv.URL)
	r.ProbeOnce(context.Background())
	r.ReportFailure("w0", context.DeadlineExceeded)
	r.ReportFailure("w0", context.DeadlineExceeded)
	if r.Up("w0") {
		t.Fatal("reported request failures must eject the worker")
	}
}

// TestRegistryFleetValidation: an empty seed fleet is valid (workers
// join via heartbeat self-registration), but blank and duplicate URLs
// stay rejected.
func TestRegistryFleetValidation(t *testing.T) {
	r, err := NewRegistry(nil, RegistryOptions{ProbeInterval: time.Hour})
	if err != nil {
		t.Fatalf("empty seed fleet must be valid (self-registration): %v", err)
	}
	defer r.Close()
	if n := len(r.Workers()); n != 0 {
		t.Fatalf("empty fleet has %d workers", n)
	}
	if _, err := NewRegistry([]string{"http://ok", " "}, RegistryOptions{}); err == nil {
		t.Fatal("blank worker URL must be rejected")
	}
	if _, err := NewRegistry([]string{"http://ok", "http://ok/"}, RegistryOptions{}); err == nil {
		t.Fatal("duplicate worker URL must be rejected")
	}
}

// TestRegistryHeartbeatRegistration: a heartbeat admits an unknown
// worker immediately (no probe round needed), refreshes a known one,
// and revives an ejected one.
func TestRegistryHeartbeatRegistration(t *testing.T) {
	r := newManualRegistry(t, RegistryOptions{})
	info, changed, err := r.Register(service.RegisterRequest{URL: "http://w:8344/", Version: snapshot.FormatVersion})
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("first registration must report a membership change")
	}
	if info.State != WorkerUp || info.Lifecycle != LifecycleActive {
		t.Fatalf("registered worker: %+v", info)
	}
	if !r.Routable(info.ID) {
		t.Fatal("heartbeat-registered worker must be routable")
	}
	if r.Ring().Owner("some-key") != "http://w:8344" {
		t.Fatal("registered worker missing from the ring")
	}

	// Re-registration of the same URL (trailing slash and all): no change.
	again, changed, err := r.Register(service.RegisterRequest{URL: "http://w:8344", Version: snapshot.FormatVersion})
	if err != nil {
		t.Fatal(err)
	}
	if changed || again.ID != info.ID {
		t.Fatalf("re-registration minted a new identity: %+v changed=%v", again, changed)
	}

	// A version-skewed heartbeat registers but is held out of routing.
	skew, _, err := r.Register(service.RegisterRequest{URL: "http://skew:8344", Version: snapshot.FormatVersion + 1})
	if err != nil {
		t.Fatal(err)
	}
	if skew.State != WorkerIncompatible || r.Routable(skew.ID) {
		t.Fatalf("version-skewed worker routable: %+v", skew)
	}

	// Revival: ejected workers come back active on their next beat.
	if _, err := r.SetLifecycle(info.ID, LifecycleEjected); err != nil {
		t.Fatal(err)
	}
	if r.Routable(info.ID) {
		t.Fatal("ejected worker must not be routable")
	}
	revived, changed, err := r.Register(service.RegisterRequest{URL: "http://w:8344", Version: snapshot.FormatVersion})
	if err != nil {
		t.Fatal(err)
	}
	if !changed || revived.Lifecycle != LifecycleActive || !r.Routable(info.ID) {
		t.Fatalf("heartbeat did not revive ejected worker: %+v changed=%v", revived, changed)
	}
}

// TestRegistryLifecycleGatesRouting: cordon/drain stop new placements
// without touching health state; uncordon restores routing.
func TestRegistryLifecycleGatesRouting(t *testing.T) {
	a := newFakeWorker(t)
	r := newManualRegistry(t, RegistryOptions{}, a.srv.URL)
	r.ProbeOnce(context.Background())
	if !r.Routable("w0") {
		t.Fatal("healthy active worker must be routable")
	}
	for _, lc := range []Lifecycle{LifecycleCordoned, LifecycleDraining, LifecycleEjected} {
		if _, err := r.SetLifecycle("w0", lc); err != nil {
			t.Fatal(err)
		}
		if r.Routable("w0") {
			t.Fatalf("%s worker must not be routable", lc)
		}
		if lc != LifecycleEjected && !r.Up("w0") {
			t.Fatalf("%s must not change health admission", lc)
		}
	}
	if _, err := r.SetLifecycle("w0", LifecycleActive); err != nil {
		t.Fatal(err)
	}
	if !r.Routable("w0") {
		t.Fatal("uncordoned worker must be routable again")
	}
}

// TestRegistryBackoffJitter: readmission backoff deadlines are jittered
// so a fleet that died together does not retry in one synchronized
// thundering herd.
func TestRegistryBackoffJitter(t *testing.T) {
	r := newManualRegistry(t, RegistryOptions{FailAfter: 1, BackoffBase: time.Minute, BackoffMax: time.Minute})
	for i := 0; i < 16; i++ {
		if _, err := r.Add(fmt.Sprintf("http://w%d:8344", i), ""); err != nil {
			t.Fatal(err)
		}
	}
	r.mu.Lock()
	for _, w := range r.workers {
		r.recordFailureLocked(w, context.DeadlineExceeded)
	}
	deadlines := make(map[time.Time]bool)
	for _, w := range r.workers {
		if w.retryAt.IsZero() {
			t.Fatal("failed worker has no retry deadline")
		}
		deadlines[w.retryAt] = true
	}
	r.mu.Unlock()
	if len(deadlines) < 2 {
		t.Fatal("all 16 backoff deadlines identical: no jitter applied")
	}
}

// TestRegistryRingStableAcrossFleetEdits: the ring is keyed by worker
// URL, so restarting a coordinator with a reordered or shrunk -workers
// list keeps every surviving worker's keys (and therefore its warm
// checkpoints and cached results) in place. Positional IDs would remap
// nearly everything on any fleet-list edit.
func TestRegistryRingStableAcrossFleetEdits(t *testing.T) {
	mk := func(urls ...string) *Registry {
		r, err := NewRegistry(urls, RegistryOptions{ProbeInterval: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(r.Close)
		return r
	}
	const a, b, c = "http://a:8344", "http://b:8344", "http://c:8344"
	before := mk(a, b, c)
	after := mk(c, b) // a decommissioned, survivors reordered

	moved := 0
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("warmkey-%d", i)
		owner := before.Ring().Owner(k)
		if owner == a {
			moved++ // must redistribute; anywhere is fine
			continue
		}
		if got := after.Ring().Owner(k); got != owner {
			t.Fatalf("key %q moved from %s to %s across a fleet edit that kept its owner", k, owner, got)
		}
	}
	if moved == 0 {
		t.Fatal("decommissioned worker owned no keys — test is vacuous")
	}
}
