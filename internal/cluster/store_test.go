package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"bump/internal/service"
	"bump/internal/wal"
)

func openTestStore(t *testing.T, dir string, opts StoreOptions) *Store {
	t.Helper()
	opts.Dir = dir
	s, err := OpenStore(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStoreDurableRoundTrip: every record kind — jobs (terminal and in
// flight), batch membership, fleet lifecycle — plus the ID counters
// survive a close/reopen cycle on the same directory.
func TestStoreDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, StoreOptions{})
	if err := s.PutWorker(WorkerRecord{ID: "w0", URL: "http://a:8344", Lifecycle: LifecycleDraining}); err != nil {
		t.Fatal(err)
	}

	doneID := s.NextJobID()
	done := JobRecord{ID: doneID, Spec: sweepSpec("web-search", 1), Key: "k1",
		State: service.StateDone, Worker: "w0", Hash: "h1", Cached: true}
	if err := s.PutJob(done); err != nil {
		t.Fatal(err)
	}
	liveID := s.NextJobID()
	live := JobRecord{ID: liveID, Spec: sweepSpec("web-search", 2), Key: "k1",
		State: service.StateRunning, Worker: "w0", Local: "j7"}
	if err := s.PutJob(live); err != nil {
		t.Fatal(err)
	}

	bid := s.NextBatchID()
	b := BatchRecord{ID: bid, Specs: []service.JobSpec{sweepSpec("web-search", 2), sweepSpec("web-search", 3)}, Jobs: make([]string, 2)}
	if err := s.PutBatch(b); err != nil {
		t.Fatal(err)
	}
	if err := s.SetBatchJob(bid, 0, liveID); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openTestStore(t, dir, StoreOptions{})
	defer s2.Close()
	got, ok := s2.Job(doneID)
	if !ok || got.State != service.StateDone || got.Hash != "h1" || !got.Cached || got.Worker != "w0" {
		t.Fatalf("terminal job after reopen: ok=%v %+v", ok, got)
	}
	got, ok = s2.Job(liveID)
	if !ok || got.State != service.StateRunning || got.Local != "j7" {
		t.Fatalf("in-flight job after reopen: ok=%v %+v", ok, got)
	}
	gb, ok := s2.Batch(bid)
	if !ok || len(gb.Specs) != 2 || gb.Jobs[0] != liveID || gb.Jobs[1] != "" {
		t.Fatalf("batch after reopen: ok=%v %+v", ok, gb)
	}
	fleet := s2.FleetWorkers()
	if len(fleet) != 1 || fleet[0].ID != "w0" || fleet[0].Lifecycle != LifecycleDraining {
		t.Fatalf("fleet after reopen: %+v", fleet)
	}

	// The counters resume past every persisted ID — no collisions with
	// pre-crash jobs.
	if next := s2.NextJobID(); next != "c00000003" {
		t.Fatalf("job counter resumed at %s, want c00000003", next)
	}
	if next := s2.NextBatchID(); next != "b00000002" {
		t.Fatalf("batch counter resumed at %s, want b00000002", next)
	}

	st := s2.Stats()
	if !st.Durable || st.ReplayedJobs != 2 || st.RecoveredJobs != 1 {
		t.Fatalf("reopen stats: %+v", st)
	}
	if st.WAL.Replayed == 0 {
		t.Fatal("reopen replayed no WAL records")
	}
}

// TestStoreMemoryOnly: with no directory the store keeps identical
// semantics, just without durability.
func TestStoreMemoryOnly(t *testing.T) {
	s, err := OpenStore(StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id := s.NextJobID()
	if err := s.PutJob(JobRecord{ID: id, State: service.StateQueued}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Job(id); !ok {
		t.Fatal("memory-only store lost a job")
	}
	if st := s.Stats(); st.Durable {
		t.Fatal("memory-only store claims durability")
	}
}

// TestStoreSetBatchJobConcurrent: concurrent point placements link into
// the same batch record without losing each other's writes (the
// read-modify-write is under the store lock).
func TestStoreSetBatchJobConcurrent(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, StoreOptions{})
	const n = 32
	specs := make([]service.JobSpec, n)
	for i := range specs {
		specs[i] = sweepSpec("web-search", i)
	}
	bid := s.NextBatchID()
	if err := s.PutBatch(BatchRecord{ID: bid, Specs: specs, Jobs: make([]string, n)}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := s.NextJobID()
			if err := s.PutJob(JobRecord{ID: id, State: service.StateQueued, Batch: bid, Index: i}); err != nil {
				t.Error(err)
				return
			}
			if err := s.SetBatchJob(bid, i, id); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	s.Close()

	s2 := openTestStore(t, dir, StoreOptions{})
	defer s2.Close()
	b, ok := s2.Batch(bid)
	if !ok {
		t.Fatal("batch lost across reopen")
	}
	for i, jid := range b.Jobs {
		if jid == "" {
			t.Fatalf("point %d link lost", i)
		}
		j, okj := s2.Job(jid)
		if !okj || j.Batch != bid || j.Index != i {
			t.Fatalf("point %d links to %q: ok=%v %+v", i, jid, okj, j)
		}
	}
}

// TestStoreRetention: DropJobs removes only terminal solo jobs — live
// jobs and points of still-tracked batches are immune — and DropBatch
// takes a batch and its points out together. Both survive reopen.
func TestStoreRetention(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, StoreOptions{})
	soloDone := JobRecord{ID: s.NextJobID(), State: service.StateDone}
	soloLive := JobRecord{ID: s.NextJobID(), State: service.StateRunning}
	bid := s.NextBatchID()
	point := JobRecord{ID: s.NextJobID(), State: service.StateDone, Batch: bid, Index: 0}
	for _, j := range []JobRecord{soloDone, soloLive, point} {
		if err := s.PutJob(j); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.PutBatch(BatchRecord{ID: bid, Specs: []service.JobSpec{sweepSpec("web-search", 0)}, Jobs: []string{point.ID}}); err != nil {
		t.Fatal(err)
	}

	if err := s.DropJobs([]string{soloDone.ID, soloLive.ID, point.ID}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Job(soloDone.ID); ok {
		t.Fatal("terminal solo job survived DropJobs")
	}
	if _, ok := s.Job(soloLive.ID); !ok {
		t.Fatal("DropJobs removed a non-terminal job")
	}
	if _, ok := s.Job(point.ID); !ok {
		t.Fatal("DropJobs removed a point of a live batch")
	}

	if err := s.DropBatch(bid); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Batch(bid); ok {
		t.Fatal("batch survived DropBatch")
	}
	if _, ok := s.Job(point.ID); ok {
		t.Fatal("batch point survived DropBatch")
	}
	s.Close()

	s2 := openTestStore(t, dir, StoreOptions{})
	defer s2.Close()
	if _, ok := s2.Job(soloDone.ID); ok {
		t.Fatal("dropped job resurrected by replay")
	}
	if _, ok := s2.Batch(bid); ok {
		t.Fatal("dropped batch resurrected by replay")
	}
	if _, ok := s2.Job(soloLive.ID); !ok {
		t.Fatal("live job lost across reopen")
	}
}

// TestStoreCompactionBoundsReplay: the checkpoint cadence keeps both the
// on-disk segment count and the records replayed at the next open small,
// no matter how many mutations the log has absorbed.
func TestStoreCompactionBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, StoreOptions{CompactEvery: 8, WAL: wal.Options{SegmentBytes: 4096}})
	const n = 100
	for i := 0; i < n; i++ {
		id := s.NextJobID()
		if err := s.PutJob(JobRecord{ID: id, Spec: sweepSpec("web-search", i), State: service.StateDone}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.WAL.Compactions == 0 {
		t.Fatal("no compaction despite CompactEvery=8")
	}
	if st.WAL.Segments > 3 {
		t.Fatalf("%d live segments after compaction", st.WAL.Segments)
	}
	s.Close()

	s2 := openTestStore(t, dir, StoreOptions{CompactEvery: 8})
	defer s2.Close()
	if got := len(s2.Jobs()); got != n {
		t.Fatalf("%d jobs after reopen, want %d", got, n)
	}
	// Replay work is bounded by the checkpoint: one checkpoint record
	// plus at most CompactEvery tail records.
	if r := s2.Stats().WAL.Replayed; r > 16 {
		t.Fatalf("reopen replayed %d records; compaction is not bounding replay", r)
	}
}

// TestStoreTornTailHealed: a torn final record (the classic crash during
// append) is truncated away on open; every complete record survives.
func TestStoreTornTailHealed(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, StoreOptions{})
	ids := make([]string, 3)
	for i := range ids {
		ids[i] = s.NextJobID()
		if err := s.PutJob(JobRecord{ID: ids[i], State: service.StateDone, Hash: fmt.Sprintf("h%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments: %v", err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openTestStore(t, dir, StoreOptions{})
	defer s2.Close()
	for _, id := range ids {
		if _, ok := s2.Job(id); !ok {
			t.Fatalf("complete record %s lost healing the torn tail", id)
		}
	}
	if !s2.Stats().WAL.TornTail {
		t.Fatal("torn tail not reported in stats")
	}
}
