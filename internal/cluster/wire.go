package cluster

import (
	"context"
	"errors"
	"net/http"
	"time"

	"bump/internal/obs"
	"bump/internal/service"
	"bump/internal/sim"
)

// This file carries the coordinator's protocol-independent request
// cores — shared by the HTTP handlers and the binary wire backend so
// both paths run identical logic — plus the checkpoint transfer
// machinery (prefetch-on-failover and background replication).

// coerceAPIError maps any worker/coordinator error onto an APIError so
// both protocols report the same code: API errors pass through,
// transport failures become 502 (the HTTP proxyError mapping).
func coerceAPIError(err error) error {
	var apiErr *service.APIError
	if errors.As(err, &apiErr) {
		return err
	}
	return &service.APIError{Code: http.StatusBadGateway, Message: err.Error()}
}

// SubmitJob routes a spec to its affinity worker, records the job
// durably under a coordinator-minted ID, and spawns its driver — the
// protocol-independent core of POST /v1/jobs. Errors are *service.
// APIError with the same codes the HTTP handler serves.
func (c *Coordinator) SubmitJob(ctx context.Context, spec service.JobSpec) (service.JobStatus, error) {
	key, _, err := RouteKey(spec)
	if err != nil {
		return service.JobStatus{}, &service.APIError{Code: http.StatusBadRequest, Message: err.Error()}
	}
	// Mint the fleet-wide trace ID before placement so the worker's
	// spans share it; the coordinator ID does not exist yet, so the
	// route span is recorded retroactively below (spans carry explicit
	// start/end times).
	if c.tracer != nil && spec.TraceID == "" {
		spec.TraceID = obs.NewTraceID()
	}
	routeT0 := time.Now()
	st, wk, err := c.router.Submit(ctx, key, spec, nil)
	switch {
	case errors.Is(err, ErrNoWorkers):
		return service.JobStatus{}, &service.APIError{Code: http.StatusServiceUnavailable, Message: err.Error()}
	case err != nil:
		return service.JobStatus{}, coerceAPIError(err)
	}
	id := JoinJobID(c.store.NextJobID(), wk.ID)
	if c.tracer != nil {
		c.tracer.Begin(id, spec.TraceID)
		c.noteKeyJob(key, id)
		c.span(id, "route", routeT0, time.Now(),
			obs.SpanArg{Key: "worker", Val: wk.ID},
			obs.SpanArg{Key: "key", Val: key})
	}
	rec := JobRecord{ID: id, Spec: spec, Key: key, Hash: st.Hash, State: st.State}
	if st.State.Terminal() {
		applyStatus(&rec, st)
		rec.Worker = wk.ID
		if err := c.store.PutJob(rec); err != nil {
			return service.JobStatus{}, &service.APIError{Code: http.StatusInternalServerError, Message: err.Error()}
		}
		c.retireJob(id)
		st.ID = id
		return st, nil
	}
	rec.Worker, rec.Local = wk.ID, st.ID
	if err := c.store.PutJob(rec); err != nil {
		return service.JobStatus{}, &service.APIError{Code: http.StatusInternalServerError, Message: err.Error()}
	}
	c.mu.Lock()
	c.inflight[wk.ID]++
	c.mu.Unlock()
	c.wg.Add(1)
	go c.drive(id)
	st.ID = id
	return st, nil
}

// JobByID answers a status query — live from the assigned worker when
// reachable, from the store otherwise — the core of GET /v1/jobs/{id}.
func (c *Coordinator) JobByID(ctx context.Context, id string) (service.JobStatus, error) {
	if rec, ok := c.store.Job(id); ok {
		if !rec.State.Terminal() && rec.Worker != "" {
			if wk, okw := c.reg.Worker(rec.Worker); okw {
				if st, err := wk.Client.Job(ctx, rec.Local); err == nil {
					st.ID = rec.ID
					return st, nil
				}
			}
			// Worker unreachable: the stored view stands in; the driver
			// is re-routing behind the scenes.
		}
		return statusFromRecord(rec), nil
	}
	wk, jobID, err := c.resolve(id)
	if err != nil {
		return service.JobStatus{}, &service.APIError{Code: http.StatusNotFound, Message: err.Error()}
	}
	st, err := wk.Client.Job(ctx, jobID)
	if err != nil {
		return service.JobStatus{}, coerceAPIError(err)
	}
	st.ID = JoinJobID(st.ID, wk.ID)
	return st, nil
}

// ResultFleet looks a cached result up across the admitted fleet — the
// core of GET /v1/results/{hash}.
func (c *Coordinator) ResultFleet(ctx context.Context, hash string) (sim.Result, bool, error) {
	for _, wk := range c.reg.Workers() {
		if !c.reg.Up(wk.ID) {
			continue
		}
		res, ok, err := wk.Client.ResultByHash(ctx, hash)
		if err != nil || !ok {
			continue
		}
		return res, true, nil
	}
	return sim.Result{}, false, nil
}

// ---- WireBackend ------------------------------------------------------

// The coordinator serves the binary wire protocol directly (bumpctl
// -wire-addr): the same tracked-job semantics as the HTTP surface.
var _ service.WireBackend = (*Coordinator)(nil)

func (c *Coordinator) WireSubmit(ctx context.Context, spec service.JobSpec) (service.JobStatus, error) {
	return c.SubmitJob(ctx, spec)
}

func (c *Coordinator) WireJob(ctx context.Context, id string) (service.JobStatus, error) {
	return c.JobByID(ctx, id)
}

func (c *Coordinator) WireResult(ctx context.Context, hash string) (sim.Result, bool, error) {
	return c.ResultFleet(ctx, hash)
}

func (c *Coordinator) WireBatch(ctx context.Context, spec service.BatchSpec, onPoint func(service.BatchPoint)) (service.BatchResult, error) {
	id, err := c.StartBatch(spec)
	if err != nil {
		return service.BatchResult{}, &service.APIError{Code: http.StatusBadRequest, Message: err.Error()}
	}
	return c.WaitBatch(ctx, id, onPoint)
}

// WireWatch follows a tracked job to its terminal state, proxying
// worker progress. A job mid-failover (unplaced, or its worker just
// died) is re-polled on the retry cadence rather than erroring: the
// driver is re-placing it behind the scenes.
func (c *Coordinator) WireWatch(ctx context.Context, id string, onProgress func(sim.Progress)) (service.JobStatus, error) {
	for {
		rec, ok := c.store.Job(id)
		if !ok {
			// Legacy namespaced ID ("jNNN@wK"): proxy the worker directly.
			wk, jobID, err := c.resolve(id)
			if err != nil {
				return service.JobStatus{}, &service.APIError{Code: http.StatusNotFound, Message: err.Error()}
			}
			st, err := wk.Client.Watch(ctx, jobID, onProgress)
			if err != nil {
				return service.JobStatus{}, coerceAPIError(err)
			}
			st.ID = JoinJobID(st.ID, wk.ID)
			return st, nil
		}
		if rec.State.Terminal() {
			return statusFromRecord(rec), nil
		}
		if rec.Worker != "" {
			if wk, okw := c.reg.Worker(rec.Worker); okw {
				if st, err := wk.Client.Watch(ctx, rec.Local, onProgress); err == nil {
					st.ID = rec.ID
					return st, nil
				}
				// Worker lost mid-watch: fall through to re-poll; the
				// driver fails the job over and the record converges.
			}
		}
		select {
		case <-ctx.Done():
			return service.JobStatus{}, ctx.Err()
		case <-c.ctx.Done():
			return service.JobStatus{}, c.ctx.Err()
		case <-time.After(c.opts.RetryInterval):
		}
	}
}

// ---- Checkpoint transfer ----------------------------------------------

// prefetchTimeout bounds one checkpoint transfer ahead of a submit —
// generous against warm checkpoints of tens of MB, small against the
// warmup simulation the transfer replaces.
const prefetchTimeout = 15 * time.Second

// defaultReplicaTargets is how many leading routable ring successors
// ReplicateOnce keeps supplied per digest when Options.Replicas is
// unset: the second is exactly the failover target if the first (the
// affinity owner) dies.
const defaultReplicaTargets = 2

// replicateMemo is how long a (worker, digest) replication attempt is
// remembered before it may be retried.
const replicateMemo = 30 * time.Second

// prefetchCheckpoint is the Router.Prefetch hook: if the picked worker
// does not hold key's warm checkpoint but an admitted peer does, ask
// the worker to fetch it before the spec lands — a failover placement
// then restores the warmup instead of re-simulating it. Best-effort:
// any failure just means the worker warms up the slow way.
func (c *Coordinator) prefetchCheckpoint(ctx context.Context, w *Worker, key string) {
	if c.reg.Holds(w.ID, key) {
		return
	}
	sources := c.reg.HoldersOf(key, w.ID)
	if len(sources) == 0 {
		return
	}
	fctx, cancel := context.WithTimeout(ctx, prefetchTimeout)
	defer cancel()
	t0 := time.Now()
	if ok, err := w.Client.FetchCheckpoint(fctx, key, sources); err == nil && ok {
		c.reg.MarkHolds(w.ID, key)
		c.spanForKey(key, "checkpoint.prefetch", t0, time.Now(),
			obs.SpanArg{Key: "worker", Val: w.ID},
			obs.SpanArg{Key: "digest", Val: key})
	}
}

// ReplicateOnce pushes every advertised warm-checkpoint digest —
// warmup-end roots and mid-measurement checkpoint-tree nodes are
// indistinguishable here, both being content-addressed blobs — onto the
// first Options.Replicas routable workers of its ring sequence, so the
// digest's failover target already holds the warm state before the
// owner dies. Returns the number of successful transfers.
func (c *Coordinator) ReplicateOnce(ctx context.Context) int {
	fetched := 0
	now := time.Now()
	for _, key := range c.reg.CheckpointKeys() {
		placed := 0
		for _, url := range c.reg.Ring().Sequence(key) {
			if placed >= c.opts.Replicas {
				break
			}
			w, ok := c.reg.WorkerByURL(url)
			if !ok || !c.reg.Routable(w.ID) {
				continue
			}
			placed++
			if c.reg.Holds(w.ID, key) {
				continue
			}
			memo := w.ID + "\x00" + key
			c.mu.Lock()
			last, tried := c.replicated[memo]
			if !tried || now.Sub(last) >= replicateMemo {
				c.replicated[memo] = now
				tried = false
			}
			c.mu.Unlock()
			if tried {
				continue
			}
			sources := c.reg.HoldersOf(key, w.ID)
			if len(sources) == 0 {
				continue
			}
			fctx, cancel := context.WithTimeout(ctx, prefetchTimeout)
			t0 := time.Now()
			ok2, err := w.Client.FetchCheckpoint(fctx, key, sources)
			cancel()
			if err == nil && ok2 {
				c.reg.MarkHolds(w.ID, key)
				c.spanForKey(key, "checkpoint.replicate", t0, time.Now(),
					obs.SpanArg{Key: "worker", Val: w.ID},
					obs.SpanArg{Key: "digest", Val: key})
				fetched++
			}
		}
	}
	return fetched
}

// replicateLoop runs ReplicateOnce on the probe cadence, so a fresh
// checkpoint is replicated to its failover target within roughly one
// probe round of first being advertised.
func (c *Coordinator) replicateLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.reg.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-t.C:
			c.ReplicateOnce(c.ctx)
		}
	}
}
