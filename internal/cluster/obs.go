package cluster

import (
	"net/http"
	"time"

	"bump/internal/obs"
	"bump/internal/service"
)

// This file is the coordinator's observability surface: scrape-time
// collectors adapting fleet/WAL/wire statistics onto a metrics
// registry, the coordinator-side span helpers, and the stitched
// GET /v1/jobs/{id}/trace handler that merges a worker's spans onto the
// coordinator's routing timeline under one trace ID.

// registerCollectors adapts the coordinator's existing stats surfaces
// (Topology, Store.Stats, per-worker client WireStats, in-flight
// assignment counts) as scrape-time collectors. Called by New when
// Options.Metrics is set.
func (c *Coordinator) registerCollectors(reg *obs.Registry) {
	reg.Collect(func(g *obs.Gather) {
		top := c.Topology()
		g.Gauge("bump_cluster_workers_up", "Admitted workers currently up.", float64(top.Up))
		g.Gauge("bump_cluster_workers_total", "Workers in the registry.", float64(top.Total))
		g.Gauge("bump_cluster_tracked_jobs", "Retained coordinator job records.", float64(top.Jobs))
		g.Gauge("bump_cluster_tracked_batches", "Retained sweep records.", float64(top.Batches))
		g.Gauge("bump_cluster_uptime_seconds", "Coordinator uptime.", top.Uptime)

		states := make(map[service.State]int)
		for _, j := range c.store.Jobs() {
			states[j.State]++
		}
		for _, st := range []service.State{
			service.StateQueued, service.StateRunning, service.StateDone,
			service.StateFailed, service.StateCanceled,
		} {
			g.Gauge("bump_cluster_jobs", "Tracked jobs by state.", float64(states[st]), "state", string(st))
		}

		c.mu.Lock()
		inflight := 0
		for _, n := range c.inflight {
			inflight += n
		}
		c.mu.Unlock()
		g.Gauge("bump_cluster_inflight", "Jobs currently assigned to workers.", float64(inflight))

		st := c.store.Stats()
		durable := 0.0
		if st.Durable {
			durable = 1
		}
		g.Gauge("bump_wal_durable", "1 when the coordinator writes a WAL.", durable)
		g.Gauge("bump_wal_segments", "Live WAL segment files.", float64(st.WAL.Segments))
		g.Gauge("bump_wal_size_bytes", "Total WAL bytes on disk.", float64(st.WAL.SizeBytes))
		g.Counter("bump_wal_replayed_records_total", "WAL records replayed at startup.", float64(st.WAL.Replayed))
		g.Counter("bump_wal_appended_records_total", "WAL records appended since startup.", float64(st.WAL.Appended))
		g.Counter("bump_wal_compactions_total", "Checkpoint compactions.", float64(st.WAL.Compactions))

		var ws service.WireStats
		for _, wk := range c.reg.Workers() {
			s := wk.Client.WireStats()
			ws.Calls += s.Calls
			ws.Fallbacks += s.Fallbacks
			ws.Dials += s.Dials
			ws.Reuses += s.Reuses
		}
		g.Counter("bump_wire_calls_total", "Binary fast-path calls to workers.", float64(ws.Calls))
		g.Counter("bump_wire_fallbacks_total", "Wire calls that fell back to HTTP/JSON.", float64(ws.Fallbacks))
		g.Counter("bump_wire_dials_total", "Wire connections dialed to workers.", float64(ws.Dials))
		g.Counter("bump_wire_reuses_total", "Wire connections reused from the pool.", float64(ws.Reuses))
	})
}

// span records one interval on a tracked job (no-op without a tracer).
func (c *Coordinator) span(jobID, name string, start, end time.Time, args ...obs.SpanArg) {
	if c.tracer != nil {
		c.tracer.Span(jobID, name, start, end, args...)
	}
}

// instant records a point event on a tracked job.
func (c *Coordinator) instant(jobID, name string, args ...obs.SpanArg) {
	if c.tracer != nil {
		c.tracer.Instant(jobID, name, time.Now(), args...)
	}
}

// noteKeyJob remembers which tracked job last routed under a warm key,
// so the checkpoint transfer machinery (prefetch hooks, the background
// replicator) — which sees keys, not jobs — can attach its spans to the
// job that motivated the transfer.
func (c *Coordinator) noteKeyJob(key, jobID string) {
	if c.tracer == nil || key == "" {
		return
	}
	c.mu.Lock()
	c.keyJobs[key] = jobID
	c.mu.Unlock()
}

// spanForKey records a span on the job last routed under key (dropped
// when no traced job claimed the key).
func (c *Coordinator) spanForKey(key, name string, start, end time.Time, args ...obs.SpanArg) {
	if c.tracer == nil {
		return
	}
	c.mu.Lock()
	jobID, ok := c.keyJobs[key]
	c.mu.Unlock()
	if !ok {
		return
	}
	c.tracer.Span(jobID, name, start, end, args...)
}

// metrics serves the coordinator's registry as Prometheus text.
func (c *Coordinator) metrics(w http.ResponseWriter, r *http.Request) {
	if c.opts.Metrics == nil {
		writeError(w, http.StatusNotFound, "metrics are not enabled")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	c.opts.Metrics.WriteText(w)
}

// trace serves a tracked job's stitched timeline: the coordinator's own
// routing/failover/transfer spans (pid 1) plus the assigned worker's
// spans (pid 2), re-homed under one trace ID. Worker fetch is
// best-effort: a dead worker still yields the coordinator-side view.
func (c *Coordinator) trace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if c.tracer == nil {
		writeError(w, http.StatusNotFound, "tracing is not enabled")
		return
	}
	exp, ok := c.tracer.Export(id, 1, "bumpctl")
	if !ok {
		writeError(w, http.StatusNotFound, "no trace for job %s", id)
		return
	}
	if rec, okr := c.store.Job(id); okr && rec.Worker != "" && rec.Local != "" {
		if wk, okw := c.reg.Worker(rec.Worker); okw {
			if data, err := wk.Client.JobTrace(r.Context(), rec.Local); err == nil {
				if wexp, perr := obs.ParseExport(data); perr == nil {
					exp.Merge(wexp, 2, "worker "+wk.ID)
				}
			}
		}
	}
	writeJSON(w, http.StatusOK, exp)
}
