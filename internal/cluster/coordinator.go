package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"bump/internal/service"
	"bump/internal/snapshot"
)

// Options configures a Coordinator.
type Options struct {
	// Workers are the backend bumpd base URLs (at least one).
	Workers []string
	// Registry tunes probing/ejection (zero value: defaults).
	Registry RegistryOptions
	// BatchConcurrency bounds in-flight points per batch (default 64;
	// execution parallelism is bounded by the workers' own pools, this
	// only caps coordinator-side goroutines and open polls).
	BatchConcurrency int
}

// Coordinator federates the fleet behind the single-worker /v1 API plus
// cluster-only endpoints (/v1/cluster topology, /v1/batch sweeps).
type Coordinator struct {
	reg    *Registry
	router *Router
	opts   Options
	start  time.Time
}

// New builds a coordinator over the worker URLs and runs one synchronous
// probe round so a healthy fleet is routable before New returns.
func New(ctx context.Context, opts Options) (*Coordinator, error) {
	reg, err := NewRegistry(opts.Workers, opts.Registry)
	if err != nil {
		return nil, err
	}
	if opts.BatchConcurrency <= 0 {
		opts.BatchConcurrency = 64
	}
	reg.ProbeOnce(ctx)
	return &Coordinator{
		reg:    reg,
		router: NewRouter(reg),
		opts:   opts,
		start:  time.Now(),
	}, nil
}

// Close stops the health probe loop.
func (c *Coordinator) Close() { c.reg.Close() }

// Registry exposes the worker registry (topology, stats, probing).
func (c *Coordinator) Registry() *Registry { return c.reg }

// Run executes one spec through the cluster: affinity-routed, failing
// over to the next worker in the key's preference sequence on worker
// loss. The Go-API twin of POST /v1/jobs + wait.
func (c *Coordinator) Run(ctx context.Context, spec service.JobSpec) (service.JobStatus, error) {
	st, _, err := c.router.Run(ctx, spec)
	return st, err
}

// Batch executes a whole sweep across the fleet: every point routed by
// its own affinity key, completions streamed to onPoint (serialized;
// may be nil) as they land, aggregate returned in submission order.
func (c *Coordinator) Batch(ctx context.Context, spec service.BatchSpec, onPoint func(service.BatchPoint)) (service.BatchResult, error) {
	if len(spec.Specs) == 0 {
		return service.BatchResult{}, fmt.Errorf("cluster: empty batch")
	}
	if len(spec.Specs) > service.MaxBatchPoints {
		return service.BatchResult{}, fmt.Errorf("cluster: batch of %d points exceeds the %d-point limit", len(spec.Specs), service.MaxBatchPoints)
	}
	res := service.BatchResult{Points: make([]service.BatchPoint, len(spec.Specs))}
	sem := make(chan struct{}, c.opts.BatchConcurrency)
	var mu sync.Mutex // serializes onPoint and res updates
	var wg sync.WaitGroup
	for i, s := range spec.Specs {
		wg.Add(1)
		go func(i int, s service.JobSpec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			st, worker, err := c.router.Run(ctx, s)
			if err != nil {
				st = service.JobStatus{State: service.StateFailed, Error: err.Error()}
			}
			pt := service.BatchPoint{Index: i, Worker: worker, Status: service.PayloadFor(st)}
			mu.Lock()
			defer mu.Unlock()
			res.Points[i] = pt
			if st.State != service.StateDone {
				res.Failed++
			}
			if onPoint != nil {
				onPoint(pt)
			}
		}(i, s)
	}
	wg.Wait()
	return res, ctx.Err()
}

// ClusterPayload is served by GET /v1/cluster: coordinator identity and
// per-worker topology, admission state and statistics.
type ClusterPayload struct {
	Status string `json:"status"`
	// Version is the snapshot format version this coordinator requires
	// of workers; Uptime is coordinator uptime in seconds.
	Version int     `json:"version"`
	Uptime  float64 `json:"uptime_s"`
	// Up of Total workers are currently admitted.
	Up      int          `json:"up"`
	Total   int          `json:"total"`
	Workers []WorkerInfo `json:"workers"`
}

// Topology snapshots the cluster for /v1/cluster.
func (c *Coordinator) Topology() ClusterPayload {
	infos := c.reg.Info()
	up := 0
	for _, w := range infos {
		if w.State == WorkerUp {
			up++
		}
	}
	status := "ok"
	switch {
	case up == 0:
		status = "down"
	case up < len(infos):
		status = "degraded"
	}
	return ClusterPayload{
		Status:  status,
		Version: c.reg.opts.FormatVersion,
		Uptime:  time.Since(c.start).Seconds(),
		Up:      up,
		Total:   len(infos),
		Workers: infos,
	}
}

// Health aggregates the fleet into the single-worker health shape, so
// existing /v1/healthz clients read cluster-wide statistics unchanged.
func (c *Coordinator) Health() service.HealthPayload {
	top := c.Topology()
	h := service.HealthPayload{
		Status:  top.Status,
		Version: snapshot.FormatVersion,
		Uptime:  top.Uptime,
	}
	for _, w := range top.Workers {
		if w.State != WorkerUp {
			continue
		}
		s := w.Stats
		h.Stats.Workers += s.Workers
		h.Stats.Queued += s.Queued
		h.Stats.Running += s.Running
		h.Stats.Completed += s.Completed
		h.Stats.Executions += s.Executions
		h.Stats.Coalesced += s.Coalesced
		h.Stats.Cache.Entries += s.Cache.Entries
		h.Stats.Cache.Capacity += s.Cache.Capacity
		h.Stats.Cache.Hits += s.Cache.Hits
		h.Stats.Cache.Misses += s.Cache.Misses
		h.Stats.Cache.Evictions += s.Cache.Evictions
		h.Stats.Warm.Hits += s.Warm.Hits
		h.Stats.Warm.Misses += s.Warm.Misses
		h.Stats.Warm.Skipped += s.Warm.Skipped
		h.Stats.Warm.WarmupCyclesSimulated += s.Warm.WarmupCyclesSimulated
		h.Stats.Warm.WarmupCyclesReused += s.Warm.WarmupCyclesReused
	}
	return h
}

// Handler exposes the coordinator over HTTP. The /v1/jobs* routes speak
// the exact single-worker wire protocol (job IDs are namespaced
// "jNNN@wK" but remain opaque strings to clients); /v1/cluster and
// /v1/batch are the cluster-level additions.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", c.submit)
	mux.HandleFunc("GET /v1/jobs/{id}", c.job)
	mux.HandleFunc("DELETE /v1/jobs/{id}", c.cancelJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", c.events)
	mux.HandleFunc("POST /v1/batch", c.batch)
	mux.HandleFunc("GET /v1/results/{hash}", c.result)
	mux.HandleFunc("GET /v1/healthz", c.healthz)
	mux.HandleFunc("GET /v1/cluster", c.cluster)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// proxyError maps a worker-call failure onto the coordinator's own
// response: API errors pass through their status code (worker identity
// already embedded in the message); transport failures become 502.
func proxyError(w http.ResponseWriter, err error) {
	var apiErr *service.APIError
	if errors.As(err, &apiErr) {
		writeError(w, apiErr.Code, "%s", apiErr.Message)
		return
	}
	writeError(w, http.StatusBadGateway, "%v", err)
}

// submit routes a job to its affinity worker (failing over on submit
// errors) and returns the worker's response with a namespaced job ID —
// the same 200/202 semantics as a single worker.
func (c *Coordinator) submit(w http.ResponseWriter, r *http.Request) {
	var spec service.JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	key, _, err := RouteKey(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st, wk, err := c.router.Submit(r.Context(), key, spec, nil)
	switch {
	case errors.Is(err, ErrNoWorkers):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		proxyError(w, err)
		return
	}
	st.ID = JoinJobID(st.ID, wk.ID)
	code := http.StatusAccepted
	if st.State.Terminal() {
		code = http.StatusOK
	}
	writeJSON(w, code, service.PayloadFor(st))
}

// resolve parses a namespaced job ID and returns its worker.
func (c *Coordinator) resolve(id string) (*Worker, string, error) {
	jobID, workerID, err := SplitJobID(id)
	if err != nil {
		return nil, "", err
	}
	wk, ok := c.reg.Worker(workerID)
	if !ok {
		return nil, "", fmt.Errorf("cluster: unknown worker %q in job ID %q", workerID, id)
	}
	return wk, jobID, nil
}

func (c *Coordinator) job(w http.ResponseWriter, r *http.Request) {
	wk, jobID, err := c.resolve(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	st, err := wk.Client.Job(r.Context(), jobID)
	if err != nil {
		proxyError(w, err)
		return
	}
	st.ID = JoinJobID(st.ID, wk.ID)
	writeJSON(w, http.StatusOK, service.PayloadFor(st))
}

func (c *Coordinator) cancelJob(w http.ResponseWriter, r *http.Request) {
	wk, jobID, err := c.resolve(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	st, err := wk.Client.Cancel(r.Context(), jobID)
	if err != nil {
		proxyError(w, err)
		return
	}
	st.ID = JoinJobID(st.ID, wk.ID)
	writeJSON(w, http.StatusOK, service.PayloadFor(st))
}

// events proxies a worker's SSE progress stream: progress events pass
// through verbatim; terminal job payloads get their ID re-namespaced so
// the stream a client sees is indistinguishable from a single worker's.
func (c *Coordinator) events(w http.ResponseWriter, r *http.Request) {
	wk, jobID, err := c.resolve(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	started := false
	startStream := func() {
		h := w.Header()
		h.Set("Content-Type", "text/event-stream")
		h.Set("Cache-Control", "no-cache")
		h.Set("Connection", "keep-alive")
		w.WriteHeader(http.StatusOK)
		fl.Flush()
		started = true
	}
	err = wk.Client.Events(r.Context(), jobID, func(ev service.Event) error {
		if !started {
			startStream()
		}
		data := ev.Data
		if service.State(ev.Name).Terminal() {
			var p service.JobPayload
			if err := json.Unmarshal(ev.Data, &p); err == nil {
				p.ID = JoinJobID(p.ID, wk.ID)
				if re, err := json.Marshal(p); err == nil {
					data = re
				}
			}
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Name, data)
		fl.Flush()
		return nil
	})
	if err == nil || r.Context().Err() != nil {
		return
	}
	// The worker failed, not the client: strike it so ejection does not
	// wait for the next probe round, and tell the client the stream
	// broke (a silent end is indistinguishable from a worker that never
	// emitted its terminal event).
	c.reg.ReportFailure(wk.ID, err)
	if !started {
		proxyError(w, err)
		return
	}
	data, _ := json.Marshal(map[string]string{"error": err.Error()})
	fmt.Fprintf(w, "event: error\ndata: %s\n\n", data)
	fl.Flush()
}

// batch runs a whole sweep through the cluster; wire-compatible with
// the single-worker /v1/batch (SSE or JSON aggregate), with each point
// additionally naming the worker that served it.
func (c *Coordinator) batch(w http.ResponseWriter, r *http.Request) {
	var spec service.BatchSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "invalid batch spec: %v", err)
		return
	}
	if !strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		res, err := c.Batch(r.Context(), spec, nil)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, res)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	writeEvent := func(name string, v any) {
		data, err := json.Marshal(v)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, data)
		fl.Flush()
	}
	res, err := c.Batch(r.Context(), spec, func(pt service.BatchPoint) {
		writeEvent("point", pt)
	})
	if err != nil {
		writeEvent("error", map[string]string{"error": err.Error()})
		return
	}
	writeEvent("batch", res)
}

// result looks a cached result up across the fleet: the affinity worker
// cannot be derived from the hash alone (hashes cover measured
// parameters, warm keys do not), so admitted workers are asked in turn.
func (c *Coordinator) result(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	for _, wk := range c.reg.Workers() {
		if !c.reg.Up(wk.ID) {
			continue
		}
		res, ok, err := wk.Client.ResultByHash(r.Context(), hash)
		if err != nil || !ok {
			continue
		}
		writeJSON(w, http.StatusOK, service.ResultPayload{Hash: hash, Result: res, Metrics: service.MetricsFor(res)})
		return
	}
	writeError(w, http.StatusNotFound, "no cached result for %s", hash)
}

func (c *Coordinator) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Health())
}

func (c *Coordinator) cluster(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Topology())
}
