package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"bump/internal/obs"
	"bump/internal/service"
	"bump/internal/snapshot"
	"bump/internal/wal"
)

// Options configures a Coordinator.
type Options struct {
	// Workers are the seed backend bumpd base URLs. May be empty:
	// workers can also join (and rejoin) the fleet by heartbeating
	// POST /v1/cluster/register (bumpd -coordinator).
	Workers []string
	// Registry tunes probing/ejection (zero value: defaults).
	Registry RegistryOptions
	// BatchConcurrency bounds in-flight points across batches (default
	// 64; execution parallelism is bounded by the workers' own pools,
	// this only caps coordinator-side goroutines and open polls).
	BatchConcurrency int
	// DataDir is the WAL directory for durable coordinator state; empty
	// means memory-only (embedded coordinators, tests). With a data dir,
	// a coordinator restarted on the same directory replays its log,
	// re-answers every pre-crash job ID, and re-drives unfinished work.
	DataDir string
	// WAL tunes segment rotation and fsync; CompactEvery the checkpoint
	// cadence (see StoreOptions).
	WAL          wal.Options
	CompactEvery uint64
	// RetainJobs bounds retained terminal solo-job records;
	// RetainBatches bounds retained completed sweeps (with their point
	// jobs). Defaults 4096 and 64.
	RetainJobs    int
	RetainBatches int
	// RetryInterval paces placement retries while no worker is routable
	// (default 250ms). A job is never failed for lack of workers — it
	// waits out the outage.
	RetryInterval time.Duration
	// Replicas is how many leading routable ring successors the
	// background replicator keeps supplied per advertised checkpoint
	// digest — warm roots and checkpoint-tree nodes alike (default 2:
	// the owner plus its exact failover target). Larger fleets sweeping
	// deep fork trees can raise it to survive multi-worker loss at the
	// cost of proportional transfer traffic.
	Replicas int
	// Metrics, when non-nil, gets the coordinator's collectors (fleet
	// topology, job states, WAL, aggregated worker wire stats) and is
	// served at GET /metrics.
	Metrics *obs.Registry
	// Tracer, when non-nil, records coordinator-side spans (route,
	// await, failover, checkpoint prefetch/replicate) per tracked job;
	// GET /v1/jobs/{id}/trace stitches the assigned worker's spans onto
	// them under one trace ID.
	Tracer *obs.Tracer
	// Logger receives structured fleet/job lifecycle events (failovers,
	// registrations, ejections) with job and trace IDs attached. Nil
	// discards them.
	Logger *slog.Logger
}

// Coordinator federates the fleet behind the single-worker /v1 API plus
// cluster-only endpoints (/v1/cluster topology and admin verbs,
// /v1/batch sweeps). Every accepted job and sweep is recorded in the
// Store before the client hears about it; per-job driver goroutines
// carry each one to a terminal state, failing over across workers and
// surviving coordinator restarts (drivers are respawned from the WAL).
type Coordinator struct {
	reg    *Registry
	router *Router
	store  *Store
	opts   Options
	start  time.Time

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	sem    chan struct{} // batch point concurrency

	mu          sync.Mutex
	batches     map[string]*batchEntry
	inflight    map[string]int // worker ID -> jobs assigned to it
	soloRetain  []string
	batchRetain []string

	// wireAddr is the coordinator's own advertised binary listener (set
	// via SetWireAddr before serving traffic; surfaced in /v1/healthz).
	wireAddr string
	// replicated memoizes replication attempts (worker ID + digest) so
	// ReplicateOnce does not re-ask a worker that already fetched or
	// failed this round cadence.
	replicated map[string]time.Time

	// tracer records coordinator-side spans; keyJobs maps a warm key to
	// the traced job that last routed under it, so checkpoint-transfer
	// spans (keyed by digest, not job) land on the right timeline.
	tracer  *obs.Tracer
	keyJobs map[string]string
	log     *slog.Logger
}

// New builds a coordinator: opens (and replays) the store, seeds the
// registry from persisted fleet membership plus opts.Workers, runs one
// synchronous probe round so a healthy fleet is routable before New
// returns, and respawns drivers for every job that was in flight when
// the previous coordinator died.
func New(ctx context.Context, opts Options) (*Coordinator, error) {
	if opts.BatchConcurrency <= 0 {
		opts.BatchConcurrency = 64
	}
	if opts.RetryInterval <= 0 {
		opts.RetryInterval = 250 * time.Millisecond
	}
	if opts.RetainJobs <= 0 {
		opts.RetainJobs = 4096
	}
	if opts.RetainBatches <= 0 {
		opts.RetainBatches = 64
	}
	if opts.Replicas <= 0 {
		opts.Replicas = defaultReplicaTargets
	}
	store, err := OpenStore(StoreOptions{Dir: opts.DataDir, WAL: opts.WAL, CompactEvery: opts.CompactEvery})
	if err != nil {
		return nil, err
	}
	reg, err := NewRegistry(nil, opts.Registry)
	if err != nil {
		store.Close()
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			reg.Close()
			store.Close()
		}
	}()
	// Persisted membership first: its worker IDs are referenced by
	// recovered job records and must win any ID assignment race with the
	// seed list.
	for _, wr := range store.FleetWorkers() {
		w, err := reg.Add(wr.URL, wr.ID)
		if err != nil {
			return nil, err
		}
		if wr.Lifecycle != "" && wr.Lifecycle != LifecycleActive {
			reg.SetLifecycle(w.ID, wr.Lifecycle)
		}
	}
	for _, url := range opts.Workers {
		if _, found := reg.WorkerByURL(strings.TrimSpace(strings.TrimRight(url, "/"))); found {
			continue
		}
		w, err := reg.Add(url, "")
		if err != nil {
			return nil, err
		}
		if err := store.PutWorker(WorkerRecord{ID: w.ID, URL: w.URL, Lifecycle: LifecycleActive}); err != nil {
			return nil, err
		}
	}
	reg.ProbeOnce(ctx)
	rctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		reg:        reg,
		router:     NewRouter(reg),
		store:      store,
		opts:       opts,
		start:      time.Now(),
		ctx:        rctx,
		cancel:     cancel,
		sem:        make(chan struct{}, opts.BatchConcurrency),
		batches:    make(map[string]*batchEntry),
		inflight:   make(map[string]int),
		replicated: make(map[string]time.Time),
		tracer:     opts.Tracer,
		keyJobs:    make(map[string]string),
		log:        opts.Logger,
	}
	if c.log == nil {
		c.log = slog.New(slog.DiscardHandler)
	}
	if opts.Metrics != nil {
		c.registerCollectors(opts.Metrics)
	}
	// Failover checkpoint transfer: before a spec lands on a worker that
	// does not hold its warm checkpoint, pull it from a peer that does.
	c.router.Prefetch = c.prefetchCheckpoint
	c.recover()
	c.wg.Add(1)
	go c.replicateLoop()
	ok = true
	return c, nil
}

// SetWireAddr records the coordinator's advertised binary listener for
// /v1/healthz. Call before serving traffic.
func (c *Coordinator) SetWireAddr(addr string) { c.wireAddr = addr }

// Close stops the drivers, probe loop and store. Deliberately
// crash-equivalent for the WAL (no final checkpoint): unfinished jobs
// stay non-terminal on disk and are re-driven by the next coordinator
// on this data directory.
func (c *Coordinator) Close() {
	c.cancel()
	c.wg.Wait()
	c.reg.Close()
	c.store.Close()
}

// Registry exposes the worker registry (topology, stats, probing).
func (c *Coordinator) Registry() *Registry { return c.reg }

// Store exposes the durable job/fleet store.
func (c *Coordinator) Store() *Store { return c.store }

// recover respawns the driver goroutines for every non-terminal job and
// every unplaced batch point found in the replayed store. A job still
// assigned to a live worker is simply re-awaited (and, because worker
// pools coalesce by config hash, even a re-submission would attach to
// the in-flight execution rather than re-run it); a job on a dead or
// departed worker re-routes through the ordinary failover path.
func (c *Coordinator) recover() {
	batches := c.store.Batches()
	linked := make(map[string]bool)
	for _, b := range batches {
		for _, jid := range b.Jobs {
			if jid != "" {
				linked[jid] = true
			}
		}
	}
	for _, j := range c.store.Jobs() {
		if j.State.Terminal() {
			continue
		}
		if j.Batch != "" && !linked[j.ID] {
			// The previous coordinator died between writing this point's
			// job record and linking it into the batch; the point will be
			// re-placed under a fresh record, so retire the orphan.
			j.State = service.StateFailed
			j.Error = "orphaned by coordinator crash during placement"
			c.store.PutJob(j)
			continue
		}
		if j.Worker != "" {
			c.mu.Lock()
			c.inflight[j.Worker]++
			c.mu.Unlock()
		}
		if j.Batch == "" {
			c.wg.Add(1)
			go c.drive(j.ID)
		}
	}
	for _, b := range batches {
		be := newBatchEntry(len(b.Specs))
		for _, jid := range b.Jobs {
			if jid == "" {
				continue
			}
			if rec, ok := c.store.Job(jid); ok && rec.State.Terminal() {
				be.fold(c.toPoint(rec))
			}
		}
		c.mu.Lock()
		c.batches[b.ID] = be
		c.mu.Unlock()
		if be.finished() {
			c.retireBatch(b.ID)
			continue
		}
		for i, jid := range b.Jobs {
			if jid != "" {
				if rec, ok := c.store.Job(jid); ok && rec.State.Terminal() {
					continue
				}
			}
			c.wg.Add(1)
			go c.drivePoint(b.ID, i)
		}
	}
}

// statusFromRecord rebuilds the client-visible status from a stored
// record (used for terminal answers and while a job awaits placement).
func statusFromRecord(rec JobRecord) service.JobStatus {
	return service.JobStatus{
		ID:       rec.ID,
		Hash:     rec.Hash,
		State:    rec.State,
		Cached:   rec.Cached,
		Priority: rec.Spec.Priority,
		Spec:     rec.Spec,
		Result:   rec.Result,
		Error:    rec.Error,
	}
}

// applyStatus folds a worker's terminal status into the record.
func applyStatus(rec *JobRecord, st service.JobStatus) {
	rec.State = st.State
	rec.Hash = st.Hash
	rec.Cached = st.Cached
	rec.Result = st.Result
	rec.Error = st.Error
}

func (c *Coordinator) toPoint(rec JobRecord) service.BatchPoint {
	var worker string
	if w, ok := c.reg.Worker(rec.Worker); ok {
		worker = w.ID
	}
	return service.BatchPoint{Index: rec.Index, Worker: worker, Status: service.PayloadFor(statusFromRecord(rec))}
}

// drive carries one solo job to a terminal state.
func (c *Coordinator) drive(id string) {
	defer c.wg.Done()
	c.driveJob(id)
}

// driveJob is the tracked-job state machine: place (or re-place) the
// spec on the key's ring sequence, await the worker, and persist the
// terminal outcome. Worker-side failures strike the worker and fail
// over; an empty fleet is waited out (struck workers become eligible
// again once the registry readmits them). Re-execution after failover
// is safe because results are a deterministic function of the
// configuration — and a re-submission to a worker still running the job
// coalesces onto the in-flight execution by config hash.
func (c *Coordinator) driveJob(id string) {
	tried := make(map[string]bool)
	for {
		rec, ok := c.store.Job(id)
		if !ok || c.ctx.Err() != nil {
			return
		}
		if rec.State.Terminal() {
			c.finish(rec, false)
			return
		}
		if rec.Worker == "" {
			if c.tracer != nil {
				// Begin is idempotent; recovered and batch-point jobs get
				// their ID minted here, and the worker receives it in the
				// spec so both sides' spans share one trace.
				rec.Spec.TraceID = c.tracer.Begin(id, rec.Spec.TraceID)
				c.noteKeyJob(rec.Key, id)
			}
			routeT0 := time.Now()
			st, wk, err := c.router.Submit(c.ctx, rec.Key, rec.Spec, tried)
			switch {
			case errors.Is(err, ErrNoWorkers):
				tried = make(map[string]bool)
				select {
				case <-c.ctx.Done():
					return
				case <-time.After(c.opts.RetryInterval):
				}
				continue
			case err != nil:
				if c.ctx.Err() != nil {
					return
				}
				// Client fault (or every worker rejecting the spec):
				// failing over further would only repeat the rejection.
				rec.State = service.StateFailed
				rec.Error = err.Error()
				c.log.Warn("job failed at placement", "job", id,
					"trace", rec.Spec.TraceID, "error", err)
				c.finish(rec, true)
				return
			}
			c.span(id, "route", routeT0, time.Now(),
				obs.SpanArg{Key: "worker", Val: wk.ID},
				obs.SpanArg{Key: "key", Val: rec.Key})
			c.log.Debug("job placed", "job", id, "trace", rec.Spec.TraceID,
				"worker", wk.ID, "key", rec.Key)
			// A cancel may have landed while the job was unplaced; don't
			// resurrect it.
			if cur, ok := c.store.Job(id); ok && cur.State.Terminal() {
				wk.Client.Cancel(c.ctx, st.ID)
				c.finish(cur, false)
				return
			}
			rec.Hash = st.Hash
			if st.State.Terminal() {
				applyStatus(&rec, st)
				rec.Worker = wk.ID
				c.finish(rec, true)
				return
			}
			rec.State, rec.Worker, rec.Local = st.State, wk.ID, st.ID
			c.store.PutJob(rec)
			c.mu.Lock()
			c.inflight[wk.ID]++
			c.mu.Unlock()
			continue
		}
		// Assigned: await the worker's verdict.
		wk, okw := c.reg.Worker(rec.Worker)
		var st service.JobStatus
		var err error
		awaitT0 := time.Now()
		if okw {
			st, err = wk.Client.Wait(c.ctx, rec.Local)
		} else {
			err = fmt.Errorf("cluster: worker %s left the registry", rec.Worker)
		}
		if c.ctx.Err() != nil {
			return
		}
		if err == nil {
			c.span(id, "await", awaitT0, time.Now(),
				obs.SpanArg{Key: "worker", Val: rec.Worker})
			applyStatus(&rec, st)
			c.markUnassigned(rec.Worker)
			c.finish(rec, true)
			return
		}
		c.instant(id, "failover",
			obs.SpanArg{Key: "worker", Val: rec.Worker},
			obs.SpanArg{Key: "error", Val: err.Error()})
		c.log.Warn("job failing over", "job", id, "trace", rec.Spec.TraceID,
			"worker", rec.Worker, "error", err)
		if okw {
			c.reg.ReportFailure(wk.ID, err)
			tried[wk.ID] = true
		}
		prev := rec.Worker
		rec.Worker, rec.Local = "", ""
		rec.State = service.StateQueued
		c.store.PutJob(rec)
		c.markUnassigned(prev)
	}
}

// markUnassigned decrements a worker's in-flight count; a draining
// worker whose count hits zero is ejected (that is drain's completion
// condition).
func (c *Coordinator) markUnassigned(workerID string) {
	if workerID == "" {
		return
	}
	c.mu.Lock()
	c.inflight[workerID]--
	n := c.inflight[workerID]
	if n <= 0 {
		delete(c.inflight, workerID)
	}
	c.mu.Unlock()
	if n > 0 {
		return
	}
	if lc, ok := c.reg.Lifecycle(workerID); ok && lc == LifecycleDraining {
		c.eject(workerID)
	}
}

func (c *Coordinator) eject(workerID string) {
	info, err := c.reg.SetLifecycle(workerID, LifecycleEjected)
	if err == nil {
		c.store.PutWorker(WorkerRecord{ID: info.ID, URL: info.URL, Lifecycle: LifecycleEjected})
		c.log.Info("worker ejected", "worker", info.ID, "url", info.URL)
	}
}

// finish settles a terminal record: persist it (unless the caller
// already did), deliver it to its batch tracker, and enroll it in the
// bounded retention window.
func (c *Coordinator) finish(rec JobRecord, persist bool) {
	if persist {
		c.store.PutJob(rec)
	}
	if rec.Batch != "" {
		c.mu.Lock()
		be := c.batches[rec.Batch]
		c.mu.Unlock()
		if be != nil {
			be.fold(c.toPoint(rec))
			if be.finished() {
				c.retireBatch(rec.Batch)
			}
		}
		return
	}
	c.retireJob(rec.ID)
}

// retireJob enforces solo-job retention: beyond RetainJobs (plus slack,
// so the compaction each eviction triggers is amortized) the oldest
// terminal records are dropped.
func (c *Coordinator) retireJob(id string) {
	var drop []string
	c.mu.Lock()
	c.soloRetain = append(c.soloRetain, id)
	if slack := c.opts.RetainJobs + c.opts.RetainJobs/8 + 1; len(c.soloRetain) > slack {
		n := len(c.soloRetain) - c.opts.RetainJobs
		drop = append(drop, c.soloRetain[:n]...)
		c.soloRetain = append(c.soloRetain[:0], c.soloRetain[n:]...)
	}
	c.mu.Unlock()
	if len(drop) > 0 {
		c.store.DropJobs(drop)
	}
}

// retireBatch enforces sweep retention: completed batches beyond
// RetainBatches are dropped with their point jobs.
func (c *Coordinator) retireBatch(id string) {
	var drop []string
	c.mu.Lock()
	c.batchRetain = append(c.batchRetain, id)
	for len(c.batchRetain) > c.opts.RetainBatches {
		old := c.batchRetain[0]
		c.batchRetain = c.batchRetain[1:]
		delete(c.batches, old)
		drop = append(drop, old)
	}
	c.mu.Unlock()
	for _, old := range drop {
		c.store.DropBatch(old)
	}
}

// batchEntry is the in-memory completion tracker for one sweep.
type batchEntry struct {
	n    int
	mu   sync.Mutex
	comp []service.BatchPoint // completion order
	rem  int
	subs map[int]chan service.BatchPoint
	next int
	done chan struct{}
}

func newBatchEntry(n int) *batchEntry {
	return &batchEntry{n: n, rem: n, subs: make(map[int]chan service.BatchPoint), done: make(chan struct{})}
}

// fold records one completed point and fans it out. Subscriber channels
// are buffered for the whole batch and each point arrives exactly once,
// so the sends never block.
func (b *batchEntry) fold(pt service.BatchPoint) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.comp = append(b.comp, pt)
	for _, ch := range b.subs {
		ch <- pt
	}
	b.rem--
	if b.rem == 0 {
		close(b.done)
	}
}

func (b *batchEntry) finished() bool {
	select {
	case <-b.done:
		return true
	default:
		return false
	}
}

// subscribe returns a channel replaying every already-completed point
// and then live completions, plus a cancel func.
func (b *batchEntry) subscribe() (<-chan service.BatchPoint, func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ch := make(chan service.BatchPoint, b.n)
	for _, pt := range b.comp {
		ch <- pt
	}
	id := b.next
	b.next++
	b.subs[id] = ch
	return ch, func() {
		b.mu.Lock()
		delete(b.subs, id)
		b.mu.Unlock()
	}
}

// Run executes one spec through the cluster: affinity-routed, failing
// over to the next worker in the key's preference sequence on worker
// loss. The Go-API twin of POST /v1/jobs + wait (untracked: callers
// that want durability submit over HTTP).
func (c *Coordinator) Run(ctx context.Context, spec service.JobSpec) (service.JobStatus, error) {
	st, _, err := c.router.Run(ctx, spec)
	return st, err
}

// StartBatch durably registers a sweep and spawns its point drivers.
// The batch record (full spec list) hits the WAL before any placement,
// so a coordinator crash mid-sweep recovers the whole sweep — placed
// points by their job records, unplaced ones from the spec list.
func (c *Coordinator) StartBatch(spec service.BatchSpec) (string, error) {
	if len(spec.Specs) == 0 {
		return "", fmt.Errorf("cluster: empty batch")
	}
	if len(spec.Specs) > service.MaxBatchPoints {
		return "", fmt.Errorf("cluster: batch of %d points exceeds the %d-point limit", len(spec.Specs), service.MaxBatchPoints)
	}
	id := c.store.NextBatchID()
	rec := BatchRecord{ID: id, Specs: spec.Specs, Jobs: make([]string, len(spec.Specs))}
	if err := c.store.PutBatch(rec); err != nil {
		return "", err
	}
	be := newBatchEntry(len(spec.Specs))
	c.mu.Lock()
	c.batches[id] = be
	c.mu.Unlock()
	for i := range spec.Specs {
		c.wg.Add(1)
		go c.drivePoint(id, i)
	}
	return id, nil
}

// drivePoint places one batch point (creating its job record and
// linking it into the batch on first placement) and drives it to a
// terminal state under the batch concurrency semaphore.
func (c *Coordinator) drivePoint(batchID string, i int) {
	defer c.wg.Done()
	select {
	case c.sem <- struct{}{}:
	case <-c.ctx.Done():
		return
	}
	defer func() { <-c.sem }()
	b, ok := c.store.Batch(batchID)
	if !ok {
		return
	}
	id := b.Jobs[i]
	if id == "" {
		id = c.store.NextJobID()
		rec := JobRecord{ID: id, Spec: b.Specs[i], State: service.StateQueued, Batch: batchID, Index: i}
		key, _, err := RouteKey(b.Specs[i])
		if err != nil {
			rec.State = service.StateFailed
			rec.Error = err.Error()
		}
		rec.Key = key
		if err := c.store.PutJob(rec); err != nil {
			rec.State = service.StateFailed
			rec.Error = err.Error()
			c.finish(rec, false)
			return
		}
		c.store.SetBatchJob(batchID, i, id)
		if rec.State.Terminal() {
			c.finish(rec, false)
			return
		}
	}
	c.driveJob(id)
}

// batchResult assembles a sweep's aggregate from the store: points in
// submission order, pending counting the not-yet-terminal ones.
func (c *Coordinator) batchResult(id string) (res service.BatchResult, ok bool, pending int) {
	b, ok := c.store.Batch(id)
	if !ok {
		return service.BatchResult{}, false, 0
	}
	res.Points = make([]service.BatchPoint, len(b.Specs))
	for i, jid := range b.Jobs {
		res.Points[i] = service.BatchPoint{Index: i}
		if jid == "" {
			pending++
			continue
		}
		rec, okj := c.store.Job(jid)
		if !okj {
			pending++
			continue
		}
		res.Points[i] = c.toPoint(rec)
		switch {
		case !rec.State.Terminal():
			pending++
		case rec.State != service.StateDone:
			res.Failed++
		}
	}
	return res, true, pending
}

// WaitBatch streams a tracked sweep's completions to onPoint
// (serialized; may be nil) until every point is terminal or ctx
// expires, then returns the aggregate in submission order.
func (c *Coordinator) WaitBatch(ctx context.Context, id string, onPoint func(service.BatchPoint)) (service.BatchResult, error) {
	c.mu.Lock()
	be := c.batches[id]
	c.mu.Unlock()
	if be == nil {
		res, ok, pending := c.batchResult(id)
		if !ok {
			return service.BatchResult{}, fmt.Errorf("cluster: unknown batch %q", id)
		}
		if pending > 0 {
			return res, fmt.Errorf("cluster: batch %s has no live tracker", id)
		}
		if onPoint != nil {
			for _, pt := range res.Points {
				onPoint(pt)
			}
		}
		return res, nil
	}
	ch, cancelSub := be.subscribe()
	defer cancelSub()
	for got := 0; got < be.n; got++ {
		select {
		case pt := <-ch:
			if onPoint != nil {
				onPoint(pt)
			}
		case <-ctx.Done():
			res, _, _ := c.batchResult(id)
			return res, ctx.Err()
		case <-c.ctx.Done():
			res, _, _ := c.batchResult(id)
			return res, c.ctx.Err()
		}
	}
	res, _, _ := c.batchResult(id)
	return res, ctx.Err()
}

// Batch executes a whole sweep across the fleet: every point routed by
// its own affinity key, completions streamed to onPoint (serialized;
// may be nil) as they land, aggregate returned in submission order. The
// sweep is durably tracked — with a DataDir it survives coordinator
// restarts.
func (c *Coordinator) Batch(ctx context.Context, spec service.BatchSpec, onPoint func(service.BatchPoint)) (service.BatchResult, error) {
	id, err := c.StartBatch(spec)
	if err != nil {
		return service.BatchResult{}, err
	}
	return c.WaitBatch(ctx, id, onPoint)
}

// ClusterPayload is served by GET /v1/cluster: coordinator identity and
// per-worker topology, admission state, lifecycle and statistics.
type ClusterPayload struct {
	Status string `json:"status"`
	// Version is the snapshot format version this coordinator requires
	// of workers; Uptime is coordinator uptime in seconds.
	Version int     `json:"version"`
	Uptime  float64 `json:"uptime_s"`
	// Up of Total workers are currently admitted.
	Up      int          `json:"up"`
	Total   int          `json:"total"`
	Workers []WorkerInfo `json:"workers"`
	// Jobs/Batches count currently tracked (retained) records.
	Jobs    int `json:"tracked_jobs"`
	Batches int `json:"tracked_batches"`
}

// Topology snapshots the cluster for /v1/cluster.
func (c *Coordinator) Topology() ClusterPayload {
	infos := c.reg.Info()
	up := 0
	for _, w := range infos {
		if w.State == WorkerUp {
			up++
		}
	}
	status := "ok"
	switch {
	case up == 0:
		status = "down"
	case up < len(infos):
		status = "degraded"
	}
	st := c.store.Stats()
	return ClusterPayload{
		Status:  status,
		Version: c.reg.opts.FormatVersion,
		Uptime:  time.Since(c.start).Seconds(),
		Up:      up,
		Total:   len(infos),
		Workers: infos,
		Jobs:    st.Jobs,
		Batches: st.Batches,
	}
}

// Health aggregates the fleet into the single-worker health shape (so
// existing /v1/healthz clients read cluster-wide statistics unchanged)
// plus the coordinator's own durability stats.
func (c *Coordinator) Health() service.HealthPayload {
	top := c.Topology()
	h := service.HealthPayload{
		Status:  top.Status,
		Version: snapshot.FormatVersion,
		Uptime:  top.Uptime,
	}
	for _, w := range top.Workers {
		if w.State != WorkerUp {
			continue
		}
		s := w.Stats
		h.Stats.Workers += s.Workers
		h.Stats.Queued += s.Queued
		h.Stats.Running += s.Running
		h.Stats.Completed += s.Completed
		h.Stats.Executions += s.Executions
		h.Stats.Coalesced += s.Coalesced
		h.Stats.Cache.Entries += s.Cache.Entries
		h.Stats.Cache.Capacity += s.Cache.Capacity
		h.Stats.Cache.Hits += s.Cache.Hits
		h.Stats.Cache.Misses += s.Cache.Misses
		h.Stats.Cache.Evictions += s.Cache.Evictions
		h.Stats.Warm.Hits += s.Warm.Hits
		h.Stats.Warm.Misses += s.Warm.Misses
		h.Stats.Warm.Skipped += s.Warm.Skipped
		h.Stats.Warm.WarmupCyclesSimulated += s.Warm.WarmupCyclesSimulated
		h.Stats.Warm.WarmupCyclesReused += s.Warm.WarmupCyclesReused
		h.Stats.Warm.Installed += s.Warm.Installed
	}
	h.WireAddr = c.wireAddr
	h.Conns = service.SharedConnStats()
	st := c.store.Stats()
	ws := &service.WALStats{
		Durable:         st.Durable,
		Segments:        st.WAL.Segments,
		SizeBytes:       st.WAL.SizeBytes,
		ReplayedRecords: st.WAL.Replayed,
		AppendedRecords: st.WAL.Appended,
		TornTailHealed:  st.WAL.TornTail,
		Compactions:     st.WAL.Compactions,
		ReplayedJobs:    st.ReplayedJobs,
		RecoveredJobs:   st.RecoveredJobs,
		TrackedJobs:     st.Jobs,
		TrackedBatches:  st.Batches,
	}
	if !st.WAL.LastCompaction.IsZero() {
		ws.LastCompaction = st.WAL.LastCompaction.UTC().Format(time.RFC3339)
	}
	h.WAL = ws
	return h
}

// Handler exposes the coordinator over HTTP. The /v1/jobs* routes speak
// the exact single-worker wire protocol (job IDs are coordinator-minted
// but remain opaque strings to clients); /v1/cluster and /v1/batch are
// the cluster-level additions, including the admin verbs
// register/cordon/uncordon/drain.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", c.submit)
	mux.HandleFunc("GET /v1/jobs/{id}", c.job)
	mux.HandleFunc("DELETE /v1/jobs/{id}", c.cancelJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", c.events)
	mux.HandleFunc("POST /v1/batch", c.batch)
	mux.HandleFunc("GET /v1/batch/{id}", c.batchStatus)
	mux.HandleFunc("GET /v1/results/{hash}", c.result)
	mux.HandleFunc("GET /v1/healthz", c.healthz)
	mux.HandleFunc("GET /v1/cluster", c.cluster)
	mux.HandleFunc("POST /v1/cluster/register", c.register)
	mux.HandleFunc("POST /v1/cluster/cordon", c.lifecycleVerb(LifecycleCordoned))
	mux.HandleFunc("POST /v1/cluster/uncordon", c.lifecycleVerb(LifecycleActive))
	mux.HandleFunc("POST /v1/cluster/drain", c.drain)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", c.trace)
	mux.HandleFunc("GET /metrics", c.metrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// proxyError maps a worker-call failure onto the coordinator's own
// response: API errors pass through their status code (worker identity
// already embedded in the message); transport failures become 502.
func proxyError(w http.ResponseWriter, err error) {
	var apiErr *service.APIError
	if errors.As(err, &apiErr) {
		writeError(w, apiErr.Code, "%s", apiErr.Message)
		return
	}
	writeError(w, http.StatusBadGateway, "%v", err)
}

// submit routes a job to its affinity worker (failing over on submit
// errors), records it durably, spawns its driver, and returns the
// worker's response under the coordinator-minted job ID — the same
// 200/202 semantics as a single worker. The ID is persisted before the
// client sees it, so it stays answerable across a coordinator restart.
func (c *Coordinator) submit(w http.ResponseWriter, r *http.Request) {
	var spec service.JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	if spec.TraceID == "" {
		spec.TraceID = r.Header.Get(service.TraceHeader)
	}
	st, err := c.SubmitJob(r.Context(), spec)
	if err != nil {
		proxyError(w, err)
		return
	}
	code := http.StatusAccepted
	if st.State.Terminal() {
		code = http.StatusOK
	}
	writeJSON(w, code, service.PayloadFor(st))
}

// resolve parses a legacy namespaced job ID ("jNNN@wK", minted by
// Router.Run) and returns its worker.
func (c *Coordinator) resolve(id string) (*Worker, string, error) {
	jobID, workerID, err := SplitJobID(id)
	if err != nil {
		return nil, "", err
	}
	wk, ok := c.reg.Worker(workerID)
	if !ok {
		return nil, "", fmt.Errorf("cluster: unknown worker %q in job ID %q", workerID, id)
	}
	return wk, jobID, nil
}

func (c *Coordinator) job(w http.ResponseWriter, r *http.Request) {
	st, err := c.JobByID(r.Context(), r.PathValue("id"))
	if err != nil {
		proxyError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, service.PayloadFor(st))
}

func (c *Coordinator) cancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if rec, ok := c.store.Job(id); ok {
		if rec.State.Terminal() {
			writeError(w, http.StatusConflict, "job %s is unknown or already terminal", id)
			return
		}
		if rec.Worker != "" {
			if wk, okw := c.reg.Worker(rec.Worker); okw {
				st, err := wk.Client.Cancel(r.Context(), rec.Local)
				if err != nil {
					proxyError(w, err)
					return
				}
				st.ID = rec.ID
				writeJSON(w, http.StatusOK, service.PayloadFor(st))
				return
			}
		}
		// Unplaced: settle it directly; the driver observes the terminal
		// record and stands down.
		rec.State = service.StateCanceled
		if err := c.store.PutJob(rec); err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, service.PayloadFor(statusFromRecord(rec)))
		return
	}
	wk, jobID, err := c.resolve(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	st, err := wk.Client.Cancel(r.Context(), jobID)
	if err != nil {
		proxyError(w, err)
		return
	}
	st.ID = JoinJobID(st.ID, wk.ID)
	writeJSON(w, http.StatusOK, service.PayloadFor(st))
}

// events streams a job's progress as SSE. For tracked jobs the worker's
// stream is proxied with terminal payload IDs rewritten to the
// coordinator's; already-terminal jobs get their single terminal event
// straight from the store.
func (c *Coordinator) events(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	fl, flOK := w.(http.Flusher)
	if !flOK {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	startStream := func() {
		h := w.Header()
		h.Set("Content-Type", "text/event-stream")
		h.Set("Cache-Control", "no-cache")
		h.Set("Connection", "keep-alive")
		w.WriteHeader(http.StatusOK)
		fl.Flush()
	}
	var wk *Worker
	var local string
	var mapID func(p *service.JobPayload)
	if rec, ok := c.store.Job(id); ok {
		if rec.State.Terminal() {
			startStream()
			data, err := json.Marshal(service.PayloadFor(statusFromRecord(rec)))
			if err == nil {
				fmt.Fprintf(w, "event: %s\ndata: %s\n\n", rec.State, data)
				fl.Flush()
			}
			return
		}
		if rec.Worker == "" {
			writeError(w, http.StatusServiceUnavailable, "job %s awaits placement; retry", id)
			return
		}
		wkk, okw := c.reg.Worker(rec.Worker)
		if !okw {
			writeError(w, http.StatusBadGateway, "worker %s unavailable", rec.Worker)
			return
		}
		wk, local = wkk, rec.Local
		mapID = func(p *service.JobPayload) { p.ID = id }
	} else {
		var err error
		wk, local, err = c.resolve(id)
		if err != nil {
			writeError(w, http.StatusNotFound, "%v", err)
			return
		}
		mapID = func(p *service.JobPayload) { p.ID = JoinJobID(p.ID, wk.ID) }
	}
	started := false
	err := wk.Client.Events(r.Context(), local, func(ev service.Event) error {
		if !started {
			startStream()
			started = true
		}
		data := ev.Data
		if service.State(ev.Name).Terminal() {
			var p service.JobPayload
			if err := json.Unmarshal(ev.Data, &p); err == nil {
				mapID(&p)
				if re, err := json.Marshal(p); err == nil {
					data = re
				}
			}
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Name, data)
		fl.Flush()
		return nil
	})
	if err == nil || r.Context().Err() != nil {
		return
	}
	// The worker failed, not the client: strike it so ejection does not
	// wait for the next probe round, and tell the client the stream
	// broke (a silent end is indistinguishable from a worker that never
	// emitted its terminal event).
	c.reg.ReportFailure(wk.ID, err)
	if !started {
		proxyError(w, err)
		return
	}
	data, _ := json.Marshal(map[string]string{"error": err.Error()})
	fmt.Fprintf(w, "event: error\ndata: %s\n\n", data)
	fl.Flush()
}

// batch runs a whole sweep through the cluster; wire-compatible with
// the single-worker /v1/batch (SSE or JSON aggregate), with each point
// additionally naming the worker that served it.
func (c *Coordinator) batch(w http.ResponseWriter, r *http.Request) {
	var spec service.BatchSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "invalid batch spec: %v", err)
		return
	}
	if !strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		res, err := c.Batch(r.Context(), spec, nil)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, res)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	id, err := c.StartBatch(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	writeEvent := func(name string, v any) {
		data, err := json.Marshal(v)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, data)
		fl.Flush()
	}
	// Announce the durable ID first: a client watching a sweep can
	// requery GET /v1/batch/{id} after a coordinator restart.
	writeEvent("batch-start", map[string]string{"id": id})
	res, err := c.WaitBatch(r.Context(), id, func(pt service.BatchPoint) {
		writeEvent("point", pt)
	})
	if err != nil {
		writeEvent("error", map[string]string{"error": err.Error()})
		return
	}
	writeEvent("batch", res)
}

// BatchStatusPayload is served by GET /v1/batch/{id}: sweep progress
// and the (possibly partial) aggregate, rebuildable across restarts.
type BatchStatusPayload struct {
	ID      string              `json:"id"`
	Done    bool                `json:"done"`
	Pending int                 `json:"pending"`
	Result  service.BatchResult `json:"result"`
}

func (c *Coordinator) batchStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	res, ok, pending := c.batchResult(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown batch %q", id)
		return
	}
	writeJSON(w, http.StatusOK, BatchStatusPayload{ID: id, Done: pending == 0, Pending: pending, Result: res})
}

// result looks a cached result up across the fleet: the affinity worker
// cannot be derived from the hash alone (hashes cover measured
// parameters, warm keys do not), so admitted workers are asked in turn.
func (c *Coordinator) result(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	res, ok, err := c.ResultFleet(r.Context(), hash)
	if err != nil {
		proxyError(w, err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, "no cached result for %s", hash)
		return
	}
	writeJSON(w, http.StatusOK, service.ResultPayload{Hash: hash, Result: res, Metrics: service.MetricsFor(res)})
}

func (c *Coordinator) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Health())
}

func (c *Coordinator) cluster(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Topology())
}

// register handles a worker heartbeat (POST /v1/cluster/register):
// unknown URLs join the fleet, known ones refresh their health, ejected
// ones are revived. Membership changes are persisted so the fleet
// survives coordinator restarts.
func (c *Coordinator) register(w http.ResponseWriter, r *http.Request) {
	var req service.RegisterRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid register request: %v", err)
		return
	}
	if strings.TrimSpace(req.URL) == "" {
		writeError(w, http.StatusBadRequest, "register: url required")
		return
	}
	info, changed, err := c.reg.Register(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if changed {
		if err := c.store.PutWorker(WorkerRecord{ID: info.ID, URL: info.URL, Lifecycle: info.Lifecycle}); err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		c.log.Info("worker registered", "worker", info.ID, "url", info.URL,
			"lifecycle", info.Lifecycle)
	}
	writeJSON(w, http.StatusOK, service.RegisterResponse{
		ID:        info.ID,
		State:     string(info.State),
		Lifecycle: string(info.Lifecycle),
	})
}

// workerParam extracts the target worker (ID or URL) from an admin verb
// request body {"worker": "..."}.
func (c *Coordinator) workerParam(w http.ResponseWriter, r *http.Request) (string, bool) {
	var req struct {
		Worker string `json:"worker"`
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request: %v", err)
		return "", false
	}
	id, ok := c.reg.Resolve(req.Worker)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown worker %q", req.Worker)
		return "", false
	}
	return id, true
}

// lifecycleVerb implements cordon/uncordon: an immediate, reversible
// lifecycle flip. Cordoned workers take no new placements from the
// instant the verb returns; their in-flight jobs run on.
func (c *Coordinator) lifecycleVerb(lc Lifecycle) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id, ok := c.workerParam(w, r)
		if !ok {
			return
		}
		info, err := c.reg.SetLifecycle(id, lc)
		if err != nil {
			writeError(w, http.StatusNotFound, "%v", err)
			return
		}
		if err := c.store.PutWorker(WorkerRecord{ID: info.ID, URL: info.URL, Lifecycle: info.Lifecycle}); err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		c.log.Info("worker lifecycle set", "worker", info.ID, "lifecycle", lc)
		writeJSON(w, http.StatusOK, info)
	}
}

// drain marks a worker draining (no new placements) and ejects it once
// its last coordinator-tracked in-flight job completes; with nothing in
// flight the ejection is immediate. Its warm-affinity keys remap down
// the ring sequence.
func (c *Coordinator) drain(w http.ResponseWriter, r *http.Request) {
	id, ok := c.workerParam(w, r)
	if !ok {
		return
	}
	info, err := c.reg.SetLifecycle(id, LifecycleDraining)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	if err := c.store.PutWorker(WorkerRecord{ID: info.ID, URL: info.URL, Lifecycle: LifecycleDraining}); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	c.log.Info("worker draining", "worker", info.ID)
	c.mu.Lock()
	idle := c.inflight[id] == 0
	c.mu.Unlock()
	if idle {
		c.eject(id)
	}
	if cur, okc := c.reg.InfoFor(id); okc {
		info = cur
	}
	writeJSON(w, http.StatusOK, info)
}
