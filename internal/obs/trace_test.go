package obs

import (
	"encoding/json"
	"testing"
	"time"
)

func TestTracerExport(t *testing.T) {
	tr := NewTracer(8)
	id := tr.Begin("j1", "")
	if len(id) != 16 {
		t.Fatalf("trace ID %q, want 16 hex chars", id)
	}
	if again := tr.Begin("j1", "ffff000011112222"); again != id {
		t.Fatalf("Begin not idempotent: %q then %q", id, again)
	}

	base := time.Unix(1000, 0)
	tr.Span("j1", "queue", base, base.Add(5*time.Millisecond))
	tr.Span("j1", "measure", base.Add(5*time.Millisecond), base.Add(105*time.Millisecond), SpanArg{"cycles", 400000})
	tr.Instant("j1", "failover", base.Add(50*time.Millisecond), SpanArg{"worker", "w2"})
	tr.Span("unknown", "dropped", base, base) // evicted/untracked: no panic

	exp, ok := tr.Export("j1", 1, "bumpd")
	if !ok {
		t.Fatal("Export: job missing")
	}
	if exp.Metadata["trace_id"] != id {
		t.Fatalf("metadata trace_id = %v, want %s", exp.Metadata["trace_id"], id)
	}
	// process_name metadata + 3 spans.
	if len(exp.TraceEvents) != 4 {
		t.Fatalf("events = %d, want 4", len(exp.TraceEvents))
	}
	if exp.TraceEvents[0].Phase != "M" {
		t.Fatalf("first event phase %q, want metadata", exp.TraceEvents[0].Phase)
	}
	q := exp.TraceEvents[1]
	if q.Name != "queue" || q.Phase != "X" || q.Dur != 5000 {
		t.Fatalf("queue span = %+v", q)
	}
	if q.Args["trace_id"] != id {
		t.Fatalf("span missing trace_id arg: %+v", q.Args)
	}
	if exp.TraceEvents[3].Phase != "i" {
		t.Fatalf("instant phase = %q, want i", exp.TraceEvents[3].Phase)
	}

	// The export round-trips through JSON (the HTTP handler path).
	data, err := json.Marshal(exp)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseExport(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.TraceEvents) != len(exp.TraceEvents) {
		t.Fatalf("round trip lost events: %d != %d", len(back.TraceEvents), len(exp.TraceEvents))
	}

	// Merge re-homes the other export's events under a new pid and
	// drops its metadata in favor of a fresh process_name.
	coord := NewTracer(8)
	coord.Begin("c1", id)
	coord.Span("c1", "route", base, base.Add(time.Millisecond))
	cexp, _ := coord.Export("c1", 1, "bumpctl")
	cexp.Merge(back, 2, "worker w1")
	var workerEvents int
	for _, ev := range cexp.TraceEvents {
		if ev.Pid == 2 && ev.Phase != "M" {
			workerEvents++
			if ev.Args["trace_id"] != id {
				t.Fatalf("merged span lost trace_id: %+v", ev)
			}
		}
	}
	if workerEvents != 3 {
		t.Fatalf("merged worker events = %d, want 3", workerEvents)
	}
}

func TestTracerEviction(t *testing.T) {
	tr := NewTracer(2)
	tr.Begin("j1", "")
	tr.Begin("j2", "")
	tr.Begin("j3", "") // evicts j1
	if _, ok := tr.TraceID("j1"); ok {
		t.Fatal("j1 survived eviction")
	}
	if _, ok := tr.TraceID("j3"); !ok {
		t.Fatal("j3 missing")
	}
	tr.Span("j1", "late", time.Now(), time.Now()) // dropped, no panic
	if _, ok := tr.Export("j1", 1, "x"); ok {
		t.Fatal("evicted job exported")
	}
}
