package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestConcurrentUpdates hammers one counter, gauge and histogram from
// many goroutines; run under -race this is the data-race gate, and the
// final counts must be exact (no lost updates).
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("bump_test_ops_total", "ops")
	g := r.Gauge("bump_test_depth", "depth")
	h := r.Histogram("bump_test_latency_seconds", "latency", []float64{0.01, 0.1, 1})

	const goroutines = 16
	const perG = 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < perG; k++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(k%3) * 0.05)
				if k%100 == 0 {
					var sb strings.Builder
					if err := r.WriteText(&sb); err != nil {
						t.Error(err)
					}
				}
			}
		}(i)
	}
	wg.Wait()

	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := g.Value(); got != goroutines*perG {
		t.Fatalf("gauge = %v, want %d", got, goroutines*perG)
	}
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
}

// TestHistogramBucketBoundaries pins the le semantics: a value equal to
// an upper bound lands in that bucket (cumulative counts include it),
// values beyond the last bound land only in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("bump_test_hist", "", []float64{1, 2, 5})

	for _, v := range []float64{0, 1, 1.5, 2, 2.0001, 5, 100} {
		h.Observe(v)
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`bump_test_hist_bucket{le="1"} 2`,    // 0, 1
		`bump_test_hist_bucket{le="2"} 4`,    // + 1.5, 2
		`bump_test_hist_bucket{le="5"} 6`,    // + 2.0001, 5
		`bump_test_hist_bucket{le="+Inf"} 7`, // + 100
		`bump_test_hist_count 7`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if h.Sum() != 111.5001 {
		t.Errorf("sum = %v, want 111.5001", h.Sum())
	}
}

// TestExpositionGolden pins the full text exposition byte-for-byte:
// family ordering (sorted by name), HELP/TYPE headers, label rendering,
// histogram series shape, and collector samples merged under static
// families.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("bump_jobs_total", "Jobs submitted.", "state", "done").Add(3)
	r.Counter("bump_jobs_total", "Jobs submitted.", "state", "failed").Add(1)
	r.Gauge("bump_queue_depth", "Queued jobs.").Set(2)
	h := r.Histogram("bump_phase_seconds", "Phase latency.", []float64{0.1, 1}, "phase", "warmup")
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)
	r.Collect(func(g *Gather) {
		g.Gauge("bump_workers_alive", "Live workers.", 3)
		g.Counter("bump_jobs_total", "Jobs submitted.", 9, "state", "routed")
	})

	const want = `# HELP bump_jobs_total Jobs submitted.
# TYPE bump_jobs_total counter
bump_jobs_total{state="done"} 3
bump_jobs_total{state="failed"} 1
bump_jobs_total{state="routed"} 9
# HELP bump_phase_seconds Phase latency.
# TYPE bump_phase_seconds histogram
bump_phase_seconds_bucket{phase="warmup",le="0.1"} 1
bump_phase_seconds_bucket{phase="warmup",le="1"} 2
bump_phase_seconds_bucket{phase="warmup",le="+Inf"} 3
bump_phase_seconds_sum{phase="warmup"} 3.55
bump_phase_seconds_count{phase="warmup"} 3
# HELP bump_queue_depth Queued jobs.
# TYPE bump_queue_depth gauge
bump_queue_depth 2
# HELP bump_workers_alive Live workers.
# TYPE bump_workers_alive gauge
bump_workers_alive 3
`
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

// TestRegistrationConflict pins the conflict rules: re-registering a
// name under a different kind panics (static path), and collector
// samples that collide with a registered family of a different kind
// are dropped and counted, never emitted.
func TestRegistrationConflict(t *testing.T) {
	r := NewRegistry()
	r.Counter("bump_conflict_total", "")

	func() {
		defer func() {
			if recover() == nil {
				t.Error("re-registering a counter as a gauge did not panic")
			}
		}()
		r.Gauge("bump_conflict_total", "")
	}()

	// Same name and kind is idempotent, not a conflict.
	a := r.Counter("bump_conflict_total", "")
	b := r.Counter("bump_conflict_total", "")
	if a != b {
		t.Error("same name+kind+labels returned distinct counters")
	}

	r.Collect(func(g *Gather) {
		g.Gauge("bump_conflict_total", "", 1) // kind conflict: dropped
		g.Counter("bump_ok_total", "", 2)
	})
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "bump_conflict_total 1") {
		t.Errorf("conflicting collector sample was emitted:\n%s", out)
	}
	if !strings.Contains(out, "bump_ok_total 2") {
		t.Errorf("clean collector sample missing:\n%s", out)
	}
	if r.Conflicts() != 1 {
		t.Errorf("Conflicts() = %d, want 1", r.Conflicts())
	}
}

// TestLabelEscaping pins label-value escaping of backslash, quote and
// newline.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("bump_esc_total", "", "path", "a\\b\"c\nd").Inc()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `bump_esc_total{path="a\\b\"c\nd"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Errorf("escaped label missing %q:\n%s", want, sb.String())
	}
}
