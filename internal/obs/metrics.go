// Package obs is the unified observability layer: an
// allocation-conscious metrics registry with Prometheus text exposition
// (served at GET /metrics by bumpd and bumpctl), and a per-job span
// recorder exporting Chrome trace-event JSON (served at
// GET /v1/jobs/{id}/trace).
//
// Hot paths touch only atomics: Counter.Add, Gauge.Set and
// Histogram.Observe never allocate and never take the registry lock.
// The lock guards registration and scrape-time family assembly only.
// Stats that already live elsewhere (PoolStats, WarmStats, WireStats,
// WALStats, ...) are adapted as Collectors — scrape-time callbacks that
// emit samples without duplicating state on the job path.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is a metric family's Prometheus type.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Counter is a monotonically increasing integer. Safe for concurrent
// use; Add/Inc are single atomic ops.
type Counter struct {
	labels string
	v      atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down. Safe for concurrent use.
type Gauge struct {
	labels string
	bits   atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by delta (CAS loop).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Bounds are upper
// bucket edges (ascending); an implicit +Inf bucket catches the rest.
// Observe is lock-free: one binary search plus three atomic updates.
type Histogram struct {
	labels string
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last = +Inf overflow
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. v <= le
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DurationBuckets is the default phase-latency bucket layout, in
// seconds: 1ms to ~2min, roughly ×3 per step.
var DurationBuckets = []float64{0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 120}

// family groups every metric sharing one name (one kind, any number of
// distinct label sets) under a single HELP/TYPE header.
type family struct {
	name     string
	help     string
	kind     Kind
	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
}

// Registry holds metric families and scrape-time collectors.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	collectors []Collector
	conflicts  atomic.Uint64 // collector samples dropped over kind conflicts
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// renderLabels turns alternating key/value pairs into a canonical
// `{k="v",...}` string (empty for no labels). Panics on an odd count:
// label sets are compile-time shapes, not data.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: labels must be key/value pairs")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// familyLocked finds or creates a family; a name registered under a
// different kind is a programming error and panics.
func (r *Registry) familyLocked(name, help string, k Kind) *family {
	if f, ok := r.families[name]; ok {
		if f.kind != k {
			panic(fmt.Sprintf("obs: metric %q already registered as %s, cannot re-register as %s", name, f.kind, k))
		}
		return f
	}
	f := &family{name: name, help: help, kind: k}
	r.families[name] = f
	return f
}

// Counter registers (or returns the existing) counter for name and the
// given label pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, KindCounter)
	for _, c := range f.counters {
		if c.labels == ls {
			return c
		}
	}
	c := &Counter{labels: ls}
	f.counters = append(f.counters, c)
	return c
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, KindGauge)
	for _, g := range f.gauges {
		if g.labels == ls {
			return g
		}
	}
	g := &Gauge{labels: ls}
	f.gauges = append(f.gauges, g)
	return g
}

// Histogram registers (or returns the existing) histogram with the
// given upper bucket bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if len(bounds) == 0 {
		bounds = DurationBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds must be strictly ascending", name))
		}
	}
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, KindHistogram)
	for _, h := range f.hists {
		if h.labels == ls {
			return h
		}
	}
	h := &Histogram{labels: ls, bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	f.hists = append(f.hists, h)
	return h
}

// Collector emits point-in-time samples at scrape time — the adapter
// hook for stats that already live elsewhere (PoolStats, WALStats,
// WireStats, ...). Collectors run under the registry lock and must not
// call back into the registry.
type Collector func(g *Gather)

// Collect registers a scrape-time collector.
func (r *Registry) Collect(c Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, c)
}

// Conflicts returns how many collector samples were dropped because
// their name was already registered under a different kind.
func (r *Registry) Conflicts() uint64 { return r.conflicts.Load() }

// sample is one collector-emitted value.
type sample struct {
	labels string
	value  float64
}

// gfamily is a scrape-time family of collector samples.
type gfamily struct {
	name    string
	help    string
	kind    Kind
	samples []sample
	seen    map[string]int // labels -> index, duplicates overwrite
}

// Gather accumulates collector samples during one scrape.
type Gather struct {
	reg  *Registry
	fams map[string]*gfamily
}

func (g *Gather) emit(name, help string, k Kind, v float64, labels []string) {
	// A collector may not redefine a statically registered family's
	// kind, nor an earlier collector's: drop and count, never corrupt
	// the exposition.
	if f, ok := g.reg.families[name]; ok && f.kind != k {
		g.reg.conflicts.Add(1)
		return
	}
	gf, ok := g.fams[name]
	if !ok {
		gf = &gfamily{name: name, help: help, kind: k, seen: make(map[string]int)}
		g.fams[name] = gf
	} else if gf.kind != k {
		g.reg.conflicts.Add(1)
		return
	}
	ls := renderLabels(labels)
	if i, dup := gf.seen[ls]; dup {
		gf.samples[i].value = v
		return
	}
	gf.seen[ls] = len(gf.samples)
	gf.samples = append(gf.samples, sample{labels: ls, value: v})
}

// Counter emits one counter sample.
func (g *Gather) Counter(name, help string, v float64, labels ...string) {
	g.emit(name, help, KindCounter, v, labels)
}

// Gauge emits one gauge sample.
func (g *Gather) Gauge(name, help string, v float64, labels ...string) {
	g.emit(name, help, KindGauge, v, labels)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders the full registry — static metrics plus collector
// samples — in the Prometheus text exposition format, families sorted
// by name for a deterministic scrape.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	gath := &Gather{reg: r, fams: make(map[string]*gfamily)}
	for _, c := range r.collectors {
		c(gath)
	}
	names := make([]string, 0, len(r.families)+len(gath.fams))
	for n := range r.families {
		names = append(names, n)
	}
	for n := range gath.fams {
		if _, dup := r.families[n]; !dup {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	var b strings.Builder
	for _, n := range names {
		if f, ok := r.families[n]; ok {
			writeFamily(&b, f)
			if gf, also := gath.fams[n]; also {
				writeSamples(&b, gf, false)
			}
			continue
		}
		writeSamples(&b, gath.fams[n], true)
	}
	r.mu.Unlock()
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHeader(b *strings.Builder, name, help string, k Kind) {
	if help != "" {
		b.WriteString("# HELP ")
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(help)
		b.WriteByte('\n')
	}
	b.WriteString("# TYPE ")
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(k.String())
	b.WriteByte('\n')
}

func writeFamily(b *strings.Builder, f *family) {
	writeHeader(b, f.name, f.help, f.kind)
	for _, c := range f.counters {
		b.WriteString(f.name)
		b.WriteString(c.labels)
		b.WriteByte(' ')
		b.WriteString(strconv.FormatUint(c.Value(), 10))
		b.WriteByte('\n')
	}
	for _, g := range f.gauges {
		b.WriteString(f.name)
		b.WriteString(g.labels)
		b.WriteByte(' ')
		b.WriteString(formatFloat(g.Value()))
		b.WriteByte('\n')
	}
	for _, h := range f.hists {
		writeHistogram(b, f.name, h)
	}
}

// writeHistogram renders the cumulative _bucket series plus _sum and
// _count. The le label is appended to the histogram's own labels.
func writeHistogram(b *strings.Builder, name string, h *Histogram) {
	withLE := func(le string) string {
		if h.labels == "" {
			return `{le="` + le + `"}`
		}
		return h.labels[:len(h.labels)-1] + `,le="` + le + `"}`
	}
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		b.WriteString(name)
		b.WriteString("_bucket")
		b.WriteString(withLE(formatFloat(bound)))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatUint(cum, 10))
		b.WriteByte('\n')
	}
	cum += h.counts[len(h.bounds)].Load()
	b.WriteString(name)
	b.WriteString("_bucket")
	b.WriteString(withLE("+Inf"))
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(cum, 10))
	b.WriteByte('\n')

	b.WriteString(name)
	b.WriteString("_sum")
	b.WriteString(h.labels)
	b.WriteByte(' ')
	b.WriteString(formatFloat(h.Sum()))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_count")
	b.WriteString(h.labels)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(h.Count(), 10))
	b.WriteByte('\n')
}

// writeSamples renders a collector family; header=false when a static
// family of the same name already wrote HELP/TYPE.
func writeSamples(b *strings.Builder, gf *gfamily, header bool) {
	if header {
		writeHeader(b, gf.name, gf.help, gf.kind)
	}
	for _, s := range gf.samples {
		b.WriteString(gf.name)
		b.WriteString(s.labels)
		b.WriteByte(' ')
		b.WriteString(formatFloat(s.value))
		b.WriteByte('\n')
	}
}
