package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the daemons' structured logger: text for humans on a
// terminal, JSON for log shippers, level parsed from the -log-level
// flag. The returned logger is what cmd/bumpd and cmd/bumpctl hand to
// slog.SetDefault and to the cluster coordinator.
func NewLogger(w io.Writer, level string, json bool) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	if json {
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return slog.New(slog.NewTextHandler(w, opts)), nil
}

// ParseLevel maps a -log-level flag value onto a slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}
