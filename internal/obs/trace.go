package obs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"sync"
	"time"
)

// NewTraceID mints a 16-hex-char trace ID. Trace IDs are minted once at
// submit (client, worker pool, or coordinator — whichever sees the job
// first) and propagated unchanged across every hop: the JobSpec field,
// the X-Bump-Trace HTTP header, and the wire protocol's v2 job frames.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero ID
		// still traces, it just won't be unique.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// SpanArg is one key/value annotation on a span.
type SpanArg struct {
	Key string
	Val any
}

// span is one recorded interval (or instant, when End equals Start).
type span struct {
	name       string
	start, end time.Time
	instant    bool
	args       []SpanArg
}

// jobTrace is the per-job span log.
type jobTrace struct {
	traceID string
	spans   []span
}

// Tracer records spans per job ID, bounded to the most recent maxJobs
// jobs (oldest evicted first). Safe for concurrent use; recording is a
// short critical section, never on the simulator's event loop.
type Tracer struct {
	mu    sync.Mutex
	max   int
	jobs  map[string]*jobTrace
	order []string
}

// NewTracer returns a tracer retaining spans for up to maxJobs jobs
// (default 512 when maxJobs <= 0).
func NewTracer(maxJobs int) *Tracer {
	if maxJobs <= 0 {
		maxJobs = 512
	}
	return &Tracer{max: maxJobs, jobs: make(map[string]*jobTrace)}
}

// Begin registers a job under a trace ID (idempotent; an empty traceID
// mints one). Returns the job's trace ID.
func (t *Tracer) Begin(jobID, traceID string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if jt, ok := t.jobs[jobID]; ok {
		return jt.traceID
	}
	if traceID == "" {
		traceID = NewTraceID()
	}
	for len(t.order) >= t.max {
		delete(t.jobs, t.order[0])
		t.order = t.order[1:]
	}
	t.jobs[jobID] = &jobTrace{traceID: traceID}
	t.order = append(t.order, jobID)
	return traceID
}

// TraceID returns the trace ID for a tracked job.
func (t *Tracer) TraceID(jobID string) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	jt, ok := t.jobs[jobID]
	if !ok {
		return "", false
	}
	return jt.traceID, true
}

// Span records one completed interval on a job. Unknown job IDs are
// dropped (the job was evicted or never traced).
func (t *Tracer) Span(jobID, name string, start, end time.Time, args ...SpanArg) {
	t.mu.Lock()
	defer t.mu.Unlock()
	jt, ok := t.jobs[jobID]
	if !ok {
		return
	}
	jt.spans = append(jt.spans, span{name: name, start: start, end: end, args: args})
}

// Instant records a point event on a job.
func (t *Tracer) Instant(jobID, name string, at time.Time, args ...SpanArg) {
	t.mu.Lock()
	defer t.mu.Unlock()
	jt, ok := t.jobs[jobID]
	if !ok {
		return
	}
	jt.spans = append(jt.spans, span{name: name, start: at, end: at, instant: true, args: args})
}

// TraceEvent is one Chrome trace-event JSON object (the
// chrome://tracing "X"/"i"/"M" event shapes).
type TraceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"` // microseconds since the unix epoch
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// TraceExport is the chrome://tracing JSON object format.
type TraceExport struct {
	TraceEvents     []TraceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	Metadata        map[string]any `json:"metadata,omitempty"`
}

func micros(t time.Time) float64 { return float64(t.UnixNano()) / 1e3 }

// Export renders a job's spans as a Chrome trace, on the given pid with
// the given process name. Returns false for unknown jobs.
func (t *Tracer) Export(jobID string, pid int, process string) (*TraceExport, bool) {
	t.mu.Lock()
	jt, ok := t.jobs[jobID]
	if !ok {
		t.mu.Unlock()
		return nil, false
	}
	spans := append([]span(nil), jt.spans...)
	traceID := jt.traceID
	t.mu.Unlock()

	exp := &TraceExport{
		DisplayTimeUnit: "ms",
		Metadata:        map[string]any{"trace_id": traceID, "job_id": jobID},
		TraceEvents:     make([]TraceEvent, 0, len(spans)+1),
	}
	exp.TraceEvents = append(exp.TraceEvents, processName(pid, process))
	for _, s := range spans {
		ev := TraceEvent{
			Name:  s.name,
			Phase: "X",
			Ts:    micros(s.start),
			Dur:   micros(s.end) - micros(s.start),
			Pid:   pid,
			Tid:   1,
		}
		if s.instant {
			ev.Phase = "i"
			ev.Dur = 0
			ev.Scope = "p"
		}
		if len(s.args) > 0 {
			ev.Args = make(map[string]any, len(s.args)+1)
			for _, a := range s.args {
				ev.Args[a.Key] = a.Val
			}
		}
		if ev.Args == nil {
			ev.Args = map[string]any{}
		}
		ev.Args["trace_id"] = traceID
		exp.TraceEvents = append(exp.TraceEvents, ev)
	}
	return exp, true
}

// processName builds the chrome://tracing metadata event naming a pid.
func processName(pid int, name string) TraceEvent {
	return TraceEvent{
		Name:  "process_name",
		Phase: "M",
		Pid:   pid,
		Tid:   1,
		Args:  map[string]any{"name": name},
	}
}

// Merge appends another export's events onto exp, re-homing them to pid
// under the given process name — the coordinator uses it to stitch a
// worker's spans onto its own routing/failover timeline.
func (exp *TraceExport) Merge(other *TraceExport, pid int, process string) {
	exp.TraceEvents = append(exp.TraceEvents, processName(pid, process))
	for _, ev := range other.TraceEvents {
		if ev.Phase == "M" {
			continue // re-homed below our own process_name
		}
		ev.Pid = pid
		exp.TraceEvents = append(exp.TraceEvents, ev)
	}
}

// ParseExport decodes a Chrome trace export produced by Export.
func ParseExport(data []byte) (*TraceExport, error) {
	var exp TraceExport
	if err := json.Unmarshal(data, &exp); err != nil {
		return nil, err
	}
	return &exp, nil
}
