// Package faultserver provides fault-injecting HTTP test servers:
// workers that answer with non-JSON 500s, hang connections open, or
// dribble SSE forever. It is the shared chaos vocabulary of the service
// and cluster test suites (imports only the standard library, so any
// package may use it without cycles).
package faultserver

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// Handler is a fault-injecting request handler. Handlers that hang
// must select on stop, which New closes at test cleanup before the
// server shuts down (a client disconnect alone does not cancel the
// request context while a request body sits unread).
type Handler func(w http.ResponseWriter, r *http.Request, stop <-chan struct{})

// New starts a server running h, wired for clean shutdown: the stop
// channel closes before the server does (cleanups run LIFO).
func New(t testing.TB, h Handler) *httptest.Server {
	t.Helper()
	stop := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h(w, r, stop)
	}))
	t.Cleanup(srv.Close)
	t.Cleanup(func() { close(stop) })
	return srv
}

// NonJSON500 answers every request with an HTML 500 — the classic
// exploding-proxy body that must not leak into client error messages.
func NonJSON500() Handler {
	return func(w http.ResponseWriter, r *http.Request, _ <-chan struct{}) {
		w.Header().Set("Content-Type", "text/html")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprint(w, "<html>proxy exploded</html>")
	}
}

// JSONError answers every request with a well-formed API error.
func JSONError(code int, msg string) Handler {
	return func(w http.ResponseWriter, r *http.Request, _ <-chan struct{}) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		fmt.Fprintf(w, `{"error":%q}`, msg)
	}
}

// Garbage200 answers 200 with a body that is not JSON.
func Garbage200() Handler {
	return func(w http.ResponseWriter, r *http.Request, _ <-chan struct{}) {
		fmt.Fprint(w, "these are not the bytes you are looking for")
	}
}

// Hung accepts requests and never answers (until client disconnect or
// test end) — the failure mode that wedges naive clients forever.
func Hung() Handler {
	return func(w http.ResponseWriter, r *http.Request, stop <-chan struct{}) {
		select {
		case <-r.Context().Done():
		case <-stop:
		}
	}
}

// SlowSSE streams progress events forever at the given interval — an
// events endpoint that never reaches a terminal event.
func SlowSSE(interval time.Duration) Handler {
	return func(w http.ResponseWriter, r *http.Request, stop <-chan struct{}) {
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		for i := 0; ; i++ {
			select {
			case <-r.Context().Done():
				return
			case <-stop:
				return
			case <-time.After(interval):
			}
			fmt.Fprintf(w, "event: progress\ndata: {\"Cycle\":%d}\n\n", i)
			fl.Flush()
		}
	}
}
