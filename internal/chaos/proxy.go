// Package chaos provides controllable network-fault injection for
// cluster tests: a reverse proxy whose link can be cut, restored or
// slowed at runtime, standing between a coordinator and a worker (or a
// worker's heartbeat and its coordinator). Imports only the standard
// library so it can never cycle with the packages under test.
package chaos

import (
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"sync/atomic"
	"testing"
	"time"
)

// Proxy forwards HTTP traffic to a target, with runtime-switchable
// faults: Drop severs every new connection at the TCP level (a dead
// host, not a polite 5xx), Delay adds fixed latency to each request.
type Proxy struct {
	srv   *httptest.Server
	drop  atomic.Bool
	delay atomic.Int64 // nanoseconds
}

// NewProxy starts a proxy in front of target (a base URL).
func NewProxy(t testing.TB, target string) *Proxy {
	t.Helper()
	u, err := url.Parse(target)
	if err != nil {
		t.Fatalf("chaos: bad proxy target %q: %v", target, err)
	}
	p := &Proxy{}
	rp := httputil.NewSingleHostReverseProxy(u)
	rp.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
		w.WriteHeader(http.StatusBadGateway)
	}
	p.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if d := time.Duration(p.delay.Load()); d > 0 {
			select {
			case <-time.After(d):
			case <-r.Context().Done():
				return
			}
		}
		if p.drop.Load() {
			// Sever the connection without a response: indistinguishable
			// from a host that died.
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
					return
				}
			}
			panic(http.ErrAbortHandler)
		}
		rp.ServeHTTP(w, r)
	}))
	t.Cleanup(p.srv.Close)
	return p
}

// URL is the proxy's front address — hand this to the component whose
// link should be faultable.
func (p *Proxy) URL() string { return p.srv.URL }

// Drop cuts (true) or restores (false) the link.
func (p *Proxy) Drop(on bool) { p.drop.Store(on) }

// Delay sets the per-request added latency (0 restores full speed).
func (p *Proxy) Delay(d time.Duration) { p.delay.Store(int64(d)) }
