package chaos

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestChaosProxyDropDelayRestore: the proxy passes traffic through
// verbatim, severs it at the TCP level under Drop, adds fixed latency
// under Delay, and recovers fully when the faults are lifted.
func TestChaosProxyDropDelayRestore(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "pong")
	}))
	t.Cleanup(backend.Close)
	px := NewProxy(t, backend.URL)

	get := func() (string, error) {
		resp, err := http.Get(px.URL() + "/ping")
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return string(b), err
	}

	if body, err := get(); err != nil || body != "pong" {
		t.Fatalf("pass-through: %q %v", body, err)
	}

	px.Drop(true)
	if _, err := get(); err == nil {
		t.Fatal("dropped link answered a request")
	}

	px.Drop(false)
	px.Delay(30 * time.Millisecond)
	start := time.Now()
	if body, err := get(); err != nil || body != "pong" {
		t.Fatalf("delayed link: %q %v", body, err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("request took %s, want >= 30ms of injected latency", elapsed)
	}

	px.Delay(0)
	if body, err := get(); err != nil || body != "pong" {
		t.Fatalf("restored link: %q %v", body, err)
	}
}
