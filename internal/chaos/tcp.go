package chaos

import (
	"io"
	"net"
	"sync"
	"testing"
)

// TCPProxy forwards raw TCP to a target address — the binary wire
// protocol's equivalent of Proxy. Drop(true) closes every live
// connection and refuses new ones, so a pooled wire client sees its
// persistent connections die mid-stream, not a polite error frame.
type TCPProxy struct {
	l      net.Listener
	target string

	mu    sync.Mutex
	drop  bool
	conns map[net.Conn]struct{}
	done  bool
}

// NewTCPProxy starts a TCP proxy in front of target ("host:port").
func NewTCPProxy(t testing.TB, target string) *TCPProxy {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("chaos: tcp proxy listen: %v", err)
	}
	p := &TCPProxy{l: l, target: target, conns: make(map[net.Conn]struct{})}
	go p.accept()
	t.Cleanup(p.Close)
	return p
}

// Addr is the proxy's front address — dial this instead of the target.
func (p *TCPProxy) Addr() string { return p.l.Addr().String() }

// Drop cuts (true) or restores (false) the link. Cutting severs every
// live proxied connection immediately.
func (p *TCPProxy) Drop(on bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.drop = on
	if on {
		for c := range p.conns {
			c.Close()
		}
		clear(p.conns)
	}
}

// Close stops the proxy and severs everything.
func (p *TCPProxy) Close() {
	p.mu.Lock()
	if p.done {
		p.mu.Unlock()
		return
	}
	p.done = true
	for c := range p.conns {
		c.Close()
	}
	clear(p.conns)
	p.mu.Unlock()
	p.l.Close()
}

func (p *TCPProxy) accept() {
	for {
		client, err := p.l.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.drop || p.done {
			p.mu.Unlock()
			client.Close()
			continue
		}
		p.mu.Unlock()
		backend, err := net.Dial("tcp", p.target)
		if err != nil {
			client.Close()
			continue
		}
		p.track(client, backend)
		go p.pipe(client, backend)
		go p.pipe(backend, client)
	}
}

func (p *TCPProxy) track(conns ...net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.drop || p.done {
		for _, c := range conns {
			c.Close()
		}
		return
	}
	for _, c := range conns {
		p.conns[c] = struct{}{}
	}
}

func (p *TCPProxy) pipe(dst, src net.Conn) {
	io.Copy(dst, src)
	dst.Close()
	src.Close()
	p.mu.Lock()
	delete(p.conns, dst)
	delete(p.conns, src)
	p.mu.Unlock()
}
