package writeback

import (
	"testing"

	"bump/internal/mem"
)

type fakeLLC map[mem.BlockAddr]bool

func (f fakeLLC) ProbeDirty(b mem.BlockAddr) bool { return f[b] }

func TestDefaultConfig(t *testing.T) {
	if Default().Adjacent != 3 {
		t.Error("paper configuration probes 3 adjacent blocks")
	}
}

func TestOnDirtyEvictFindsAdjacentDirty(t *testing.T) {
	v := Default()
	llc := fakeLLC{101: true, 103: true, 104: true}
	got := v.OnDirtyEvict(100, llc)
	// Probes 101,102,103: 101 and 103 dirty; 104 is out of reach.
	if len(got) != 2 || got[0] != 101 || got[1] != 103 {
		t.Errorf("got %v", got)
	}
	if v.Probes != 3 || v.Scheduled != 2 {
		t.Errorf("Probes=%d Scheduled=%d", v.Probes, v.Scheduled)
	}
}

func TestOnDirtyEvictNoneDirty(t *testing.T) {
	v := Default()
	if got := v.OnDirtyEvict(100, fakeLLC{}); got != nil {
		t.Errorf("got %v", got)
	}
	if v.Scheduled != 0 {
		t.Error("nothing scheduled")
	}
}

func TestValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(0)
}
