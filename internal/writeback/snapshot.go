package writeback

import (
	"fmt"

	"bump/internal/snapshot"
)

// SnapshotTo serializes the VWQ's counters (its only mutable state).
func (v *VWQ) SnapshotTo(w *snapshot.Writer) {
	w.Section("vwq")
	w.U32(uint32(v.Adjacent))
	w.U64(v.Probes)
	w.U64(v.Scheduled)
}

// RestoreFrom replaces the VWQ's counters with a snapshot's.
func (v *VWQ) RestoreFrom(r *snapshot.Reader) error {
	r.Section("vwq")
	adj := r.U32()
	if r.Err() != nil {
		return r.Err()
	}
	if int(adj) != v.Adjacent {
		return fmt.Errorf("writeback: snapshot adjacency %d, VWQ has %d", adj, v.Adjacent)
	}
	v.Probes = r.U64()
	v.Scheduled = r.U64()
	return r.Err()
}
