// Package writeback implements the eager-writeback baseline the paper
// compares against: a Virtual Write Queue-style mechanism (Stuecheli et
// al. [45]) that, on a dirty LLC eviction, looks up a small number of
// adjacent cache blocks and schedules their writebacks together so they
// coalesce into the same DRAM row (Section II.C, V.A: "generates eager
// writeback requests for three adjacent cache blocks upon a dirty LLC
// eviction").
package writeback

import "bump/internal/mem"

// DirtyProber abstracts the LLC lookups VWQ performs: it reports and
// clears the dirty state of a block without evicting it. The concrete
// implementation is the simulator's LLC.
type DirtyProber interface {
	// ProbeDirty returns whether b is resident and dirty.
	ProbeDirty(b mem.BlockAddr) bool
}

// VWQ is the eager-writeback engine.
type VWQ struct {
	// Adjacent is the number of neighbouring blocks probed on each side
	// search (paper: 3 adjacent blocks total).
	Adjacent int

	// Probes counts LLC lookups performed; Scheduled counts eager
	// writebacks generated.
	Probes    uint64
	Scheduled uint64
}

// New returns a VWQ probing the given number of adjacent blocks.
func New(adjacent int) *VWQ {
	if adjacent <= 0 {
		panic("writeback: adjacent must be positive")
	}
	return &VWQ{Adjacent: adjacent}
}

// Default returns the paper's 3-adjacent-block configuration.
func Default() *VWQ { return New(3) }

// OnDirtyEvict reacts to a dirty eviction of block b: it probes the
// Adjacent blocks following b (wrapping is unnecessary — the next blocks
// of the same DRAM row) and returns those found dirty, which the caller
// must clean and write back along with b.
func (v *VWQ) OnDirtyEvict(b mem.BlockAddr, llc DirtyProber) []mem.BlockAddr {
	var out []mem.BlockAddr
	for i := 1; i <= v.Adjacent; i++ {
		nb := b + mem.BlockAddr(i)
		v.Probes++
		if llc.ProbeDirty(nb) {
			out = append(out, nb)
		}
	}
	v.Scheduled += uint64(len(out))
	return out
}
