package memctrl

import (
	"fmt"

	"bump/internal/dram"
	"bump/internal/event"
	"bump/internal/mem"
)

// Policy selects the row-buffer management policy (paper Section V.A).
type Policy uint8

const (
	// OpenRow keeps rows open after an access and FR-FCFS prioritises
	// row hits (Base-open, SMS, VWQ and BuMP configurations).
	OpenRow Policy = iota
	// CloseRow precharges after every access (Base-close); banks are
	// always closed so scheduling degenerates to FCFS.
	CloseRow
)

func (p Policy) String() string {
	if p == OpenRow {
		return "open-row"
	}
	return "close-row"
}

// Config parameterises the controller.
type Config struct {
	Policy     Policy
	Interleave Interleave
	// RegionShift is the log2 region size for RegionInterleave.
	RegionShift uint
	// QueueDepth bounds the FR-FCFS scheduling window per channel
	// (Table II: 64-entry transaction/command queues).
	QueueDepth int
	// WriteHighWatermark starts a write drain when the write queue
	// reaches this occupancy; WriteLowWatermark stops it.
	WriteHighWatermark int
	WriteLowWatermark  int
	// ClockRatio is CPU cycles per DRAM command-clock cycle
	// (2.5GHz / 800MHz ≈ 3).
	ClockRatio uint64
	// MaxRowHitStreak caps consecutive row-hit-first picks per channel
	// before the scheduler reverts to oldest-first once, bounding the
	// unfairness open-row FR-FCFS can cause (the Section VI discussion
	// of fairness-aware policies). 0 disables the cap.
	MaxRowHitStreak int
}

// DefaultConfig returns the paper's controller configuration for the given
// policy/interleave combination.
func DefaultConfig(p Policy, il Interleave) Config {
	return Config{
		Policy:             p,
		Interleave:         il,
		RegionShift:        mem.DefaultRegionShift,
		QueueDepth:         64,
		WriteHighWatermark: 48,
		WriteLowWatermark:  16,
		ClockRatio:         3,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.QueueDepth <= 0 {
		return fmt.Errorf("memctrl: queue depth must be positive")
	}
	if c.ClockRatio == 0 {
		return fmt.Errorf("memctrl: clock ratio must be positive")
	}
	if c.WriteLowWatermark < 0 || c.WriteHighWatermark <= c.WriteLowWatermark {
		return fmt.Errorf("memctrl: watermarks %d/%d invalid", c.WriteHighWatermark, c.WriteLowWatermark)
	}
	return nil
}

// Completion reports a finished DRAM transaction to the owner (the LLC).
type Completion struct {
	Req     mem.Request
	Done    uint64 // CPU cycle of data completion
	Outcome dram.RowOutcome
}

// Stats aggregates controller-level counters.
type Stats struct {
	Reads           uint64
	Writes          uint64
	ReadQueueDelay  uint64 // total CPU cycles reads waited before issue
	WriteQueueDelay uint64
	WriteDrains     uint64
	// MaxQueue tracks the deepest read-queue occupancy observed.
	MaxQueue int
}

// txn is one pooled in-flight transaction. Slots live in the
// controller's slab from Enqueue until completion delivery (or issue,
// when no Handler is registered); next is the free-list link.
type txn struct {
	req mem.Request
	loc dram.Loc
	arr uint64 // arrival (CPU cycles)
	// outcome is filled at issue time and carried to the completion event.
	outcome dram.RowOutcome
	next    int32
}

type channelQueue struct {
	reads    []int32 // txn slab indices, arrival order
	writes   []int32
	draining bool
	// hitStreak counts consecutive row-hit-first picks (for
	// MaxRowHitStreak).
	hitStreak int
	// decideFree is the next CPU cycle this channel may issue a command.
	decideFree uint64
	kickArmed  bool
}

// Controller is the processor-side memory controller front end.
type Controller struct {
	cfg    Config
	mapper *Mapper
	dram   *dram.DRAM
	eng    event.Sink
	queues []channelQueue
	stats  Stats

	txns    []txn
	freeTxn int32

	// Handler receives every completion. Must be set before use.
	Handler func(Completion)
}

// Closure-free event handlers (event.Handler): the receiver rides in
// obj, the channel or transaction-slot index in a0. They are registered
// with the event package so pending kicks/completions survive a
// checkpoint.
var kickH, completeH event.Handler

func init() {
	kickH = event.RegisterHandler("memctrl.kick", func(obj any, ch, _ uint64) {
		c := obj.(*Controller)
		c.queues[ch].kickArmed = false
		c.issue(int(ch))
	})
	completeH = event.RegisterHandler("memctrl.complete", func(obj any, idx, _ uint64) {
		obj.(*Controller).complete(int32(idx))
	})
}

// New wires a controller to a DRAM device and an event sink (the engine
// itself, or a shard-aware port when the simulator runs parallel).
func New(cfg Config, d *dram.DRAM, eng event.Sink) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mapper, err := NewMapper(cfg.Interleave, d.Config(), cfg.RegionShift)
	if err != nil {
		return nil, err
	}
	return &Controller{
		cfg:     cfg,
		mapper:  mapper,
		dram:    d,
		eng:     eng,
		queues:  make([]channelQueue, d.Config().Channels),
		freeTxn: -1,
	}, nil
}

func (c *Controller) allocTxn() int32 {
	if c.freeTxn >= 0 {
		idx := c.freeTxn
		c.freeTxn = c.txns[idx].next
		return idx
	}
	c.txns = append(c.txns, txn{})
	return int32(len(c.txns) - 1)
}

func (c *Controller) releaseTxn(idx int32) {
	c.txns[idx].next = c.freeTxn
	c.freeTxn = idx
}

// Mapper exposes the address mapper (the Ideal oracle uses it).
func (c *Controller) Mapper() *Mapper { return c.mapper }

// Stats returns a copy of the counters.
func (c *Controller) Stats() Stats { return c.stats }

// SetMaxRowHitStreak rebinds the fairness cap mid-run. The cap is
// consulted only at scheduler pick time, so rebinding at an event
// boundary is exact: checkpoint-tree forking builds the controller with
// the canonical (zero) cap, restores shared trunk state, then binds the
// swept value at the fork cycle.
func (c *Controller) SetMaxRowHitStreak(n int) { c.cfg.MaxRowHitStreak = n }

// QueueLen returns the total queued transactions (reads+writes) across
// channels; the simulator uses it for backpressure decisions.
func (c *Controller) QueueLen() int {
	n := 0
	for i := range c.queues {
		n += len(c.queues[i].reads) + len(c.queues[i].writes)
	}
	return n
}

// Enqueue accepts a transaction. The queue is unbounded (overflow models
// the LLC's miss queue backing up) but the FR-FCFS window only examines
// the first QueueDepth entries.
func (c *Controller) Enqueue(req mem.Request) {
	loc := c.mapper.Map(req.Addr.Block())
	q := &c.queues[loc.Channel]
	idx := c.allocTxn()
	t := &c.txns[idx]
	t.req, t.loc, t.arr = req, loc, c.eng.Now()
	if req.Op == mem.MemWrite {
		q.writes = append(q.writes, idx)
	} else {
		q.reads = append(q.reads, idx)
		if len(q.reads) > c.stats.MaxQueue {
			c.stats.MaxQueue = len(q.reads)
		}
	}
	c.kick(loc.Channel)
}

// kick arms the channel's next scheduling decision. Decisions are always
// asynchronous (at least the current cycle's end), so requests enqueued
// together are all visible to one FR-FCFS pick.
func (c *Controller) kick(ch int) {
	q := &c.queues[ch]
	if q.kickArmed {
		return
	}
	q.kickArmed = true
	at := c.eng.Now()
	if at < q.decideFree {
		at = q.decideFree
	}
	c.eng.Post(at, kickH, c, uint64(ch), 0)
}

// pickFRFCFS returns the index of the transaction to issue from list under
// FR-FCFS: the oldest row hit within the scheduling window, else the
// oldest. A row-hit streak cap (if configured) periodically forces the
// oldest transaction for fairness. Returns -1 for an empty list.
func (c *Controller) pickFRFCFS(q *channelQueue, list []int32) int {
	if len(list) == 0 {
		return -1
	}
	window := len(list)
	if window > c.cfg.QueueDepth {
		window = c.cfg.QueueDepth
	}
	if c.cfg.Policy == OpenRow {
		if c.cfg.MaxRowHitStreak > 0 && q.hitStreak >= c.cfg.MaxRowHitStreak {
			q.hitStreak = 0
			return 0
		}
		for i := 0; i < window; i++ {
			if c.dram.Outcome(c.txns[list[i]].loc) == dram.RowHit {
				q.hitStreak++
				return i
			}
		}
	}
	q.hitStreak = 0
	return 0
}

func (c *Controller) issue(ch int) {
	q := &c.queues[ch]
	now := c.eng.Now()

	// Write drain hysteresis.
	if q.draining {
		if len(q.writes) <= c.cfg.WriteLowWatermark {
			q.draining = false
		}
	} else if len(q.writes) >= c.cfg.WriteHighWatermark {
		q.draining = true
		c.stats.WriteDrains++
	}

	var list *[]int32
	switch {
	case q.draining && len(q.writes) > 0:
		list = &q.writes
	case len(q.reads) > 0:
		list = &q.reads
	case len(q.writes) > 0:
		list = &q.writes
	default:
		return // idle; next Enqueue kicks us
	}

	i := c.pickFRFCFS(q, *list)
	idx := (*list)[i]
	*list = append((*list)[:i], (*list)[i+1:]...)
	t := &c.txns[idx]

	ratio := c.cfg.ClockRatio
	memNow := int64(now / ratio)
	doneMem, outcome := c.dram.Access(t.req.Op, t.loc, memNow, c.cfg.Policy == CloseRow)
	done := uint64(doneMem)*ratio + (ratio - 1)

	if t.req.Op == mem.MemWrite {
		c.stats.Writes++
		c.stats.WriteQueueDelay += now - t.arr
	} else {
		c.stats.Reads++
		c.stats.ReadQueueDelay += now - t.arr
	}

	// The channel can issue its next command once this burst's slot on
	// the command pipeline passes (one burst time).
	q.decideFree = now + uint64(c.dram.Config().Timing.TBurst)*ratio

	if c.Handler != nil {
		t.outcome = outcome
		c.eng.Post(done, completeH, c, uint64(idx), 0)
	} else {
		c.releaseTxn(idx)
	}

	if len(q.reads)+len(q.writes) > 0 {
		c.kick(ch)
	}
}

// complete delivers a finished transaction to the Handler. The slot is
// released before the callback so re-entrant Enqueues can reuse it.
func (c *Controller) complete(idx int32) {
	t := &c.txns[idx]
	cp := Completion{Req: t.req, Done: c.eng.Now(), Outcome: t.outcome}
	c.releaseTxn(idx)
	c.Handler(cp)
}
