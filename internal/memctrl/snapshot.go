package memctrl

import (
	"fmt"

	"bump/internal/dram"
	"bump/internal/mem"
	"bump/internal/snapshot"
)

// SnapshotTo serializes the controller: the transaction slab (preserved
// index-for-index, because pending completion events address slots by
// index), the free list in pop order, the per-channel queues and
// scheduler state, and the counters. Free slots carry no payload, so
// semantically equal controllers encode identically.
func (c *Controller) SnapshotTo(w *snapshot.Writer) {
	w.Section("memctrl")
	w.U32(uint32(len(c.queues)))
	w.U32(uint32(len(c.txns)))

	free := make([]bool, len(c.txns))
	var freeOrder []int32
	for idx := c.freeTxn; idx >= 0; idx = c.txns[idx].next {
		free[idx] = true
		freeOrder = append(freeOrder, idx)
	}
	for i := range c.txns {
		w.Bool(free[i])
		if free[i] {
			continue
		}
		t := &c.txns[i]
		writeRequest(w, t.req)
		w.U32(uint32(t.loc.Channel))
		w.U32(uint32(t.loc.Rank))
		w.U32(uint32(t.loc.Bank))
		w.U64(t.loc.Row)
		w.U64(t.arr)
		w.U8(uint8(t.outcome))
	}
	w.U32(uint32(len(freeOrder)))
	for _, idx := range freeOrder {
		w.U32(uint32(idx))
	}

	for i := range c.queues {
		q := &c.queues[i]
		w.U32(uint32(len(q.reads)))
		for _, idx := range q.reads {
			w.U32(uint32(idx))
		}
		w.U32(uint32(len(q.writes)))
		for _, idx := range q.writes {
			w.U32(uint32(idx))
		}
		w.Bool(q.draining)
		w.I64(int64(q.hitStreak))
		w.U64(q.decideFree)
		w.Bool(q.kickArmed)
	}
	w.Any(c.stats)
}

// RestoreFrom replaces the controller's state with a snapshot's.
func (c *Controller) RestoreFrom(r *snapshot.Reader) error {
	r.Section("memctrl")
	nq, nt := r.U32(), r.U32()
	if r.Err() != nil {
		return r.Err()
	}
	if int(nq) != len(c.queues) {
		return fmt.Errorf("memctrl: snapshot has %d channels, controller has %d", nq, len(c.queues))
	}
	if uint64(nt) > uint64(r.Remaining()) { // each slot is >= 1 byte
		return fmt.Errorf("memctrl: transaction slab length %d exceeds snapshot", nt)
	}

	dcfg := c.dram.Config()
	txns := make([]txn, nt)
	free := make([]bool, nt)
	for i := range txns {
		isFree := r.Bool()
		if r.Err() != nil {
			return r.Err()
		}
		free[i] = isFree
		txns[i].next = -1
		if isFree {
			continue
		}
		req, err := readRequest(r)
		if err != nil {
			return err
		}
		loc := dram.Loc{
			Channel: int(r.U32()),
			Rank:    int(r.U32()),
			Bank:    int(r.U32()),
			Row:     r.U64(),
		}
		if r.Err() != nil {
			return r.Err()
		}
		if loc.Channel >= dcfg.Channels || loc.Rank >= dcfg.RanksPerChannel || loc.Bank >= dcfg.BanksPerRank {
			return fmt.Errorf("memctrl: transaction %d location %+v outside organisation", i, loc)
		}
		txns[i].req, txns[i].loc = req, loc
		txns[i].arr = r.U64()
		out := r.U8()
		if out > uint8(dram.RowConflict) {
			return fmt.Errorf("memctrl: bad row outcome %d", out)
		}
		txns[i].outcome = dram.RowOutcome(out)
	}

	nFree := r.Len(4)
	if r.Err() != nil {
		return r.Err()
	}
	freeTxn := int32(-1)
	var tail int32 = -1
	linked := make([]bool, len(txns))
	for i := 0; i < nFree; i++ {
		idx := r.U32()
		if r.Err() != nil {
			return r.Err()
		}
		if int(idx) >= len(txns) || !free[idx] || linked[idx] {
			return fmt.Errorf("memctrl: bad free-list index %d", idx)
		}
		linked[idx] = true
		if tail < 0 {
			freeTxn = int32(idx)
		} else {
			txns[tail].next = int32(idx)
		}
		tail = int32(idx)
	}
	nMarkedFree := 0
	for _, f := range free {
		if f {
			nMarkedFree++
		}
	}
	if nFree != nMarkedFree {
		return fmt.Errorf("memctrl: free list covers %d slots, %d marked free", nFree, nMarkedFree)
	}

	queues := make([]channelQueue, len(c.queues))
	readIdxList := func() ([]int32, error) {
		n := r.Len(4)
		if r.Err() != nil {
			return nil, r.Err()
		}
		out := make([]int32, n)
		for i := range out {
			idx := r.U32()
			if r.Err() != nil {
				return nil, r.Err()
			}
			if int(idx) >= len(txns) || free[idx] {
				return nil, fmt.Errorf("memctrl: queue references transaction %d (free or out of range)", idx)
			}
			out[i] = int32(idx)
		}
		return out, nil
	}
	for i := range queues {
		var err error
		if queues[i].reads, err = readIdxList(); err != nil {
			return err
		}
		if queues[i].writes, err = readIdxList(); err != nil {
			return err
		}
		queues[i].draining = r.Bool()
		queues[i].hitStreak = int(r.I64())
		queues[i].decideFree = r.U64()
		queues[i].kickArmed = r.Bool()
	}
	r.AnyInto(&c.stats)
	if err := r.Err(); err != nil {
		return err
	}

	c.txns = txns
	c.freeTxn = freeTxn
	c.queues = queues
	return nil
}

func writeRequest(w *snapshot.Writer, req mem.Request) {
	w.U8(uint8(req.Op))
	w.U8(uint8(req.Kind))
	w.U64(uint64(req.Addr))
	w.U64(uint64(req.PC))
	w.I64(int64(req.Core))
	w.Bool(req.Bulk)
	w.U64(req.BulkGroup)
	w.U64(req.Issue)
}

func readRequest(r *snapshot.Reader) (mem.Request, error) {
	var req mem.Request
	op, kind := r.U8(), r.U8()
	if r.Err() != nil {
		return req, r.Err()
	}
	if op > uint8(mem.MemWrite) || kind > uint8(mem.ReadPrefetch) {
		return req, fmt.Errorf("memctrl: bad request op/kind %d/%d", op, kind)
	}
	req.Op, req.Kind = mem.MemOp(op), mem.ReadKind(kind)
	req.Addr = mem.Addr(r.U64())
	req.PC = mem.PC(r.U64())
	req.Core = int(r.I64())
	req.Bulk = r.Bool()
	req.BulkGroup = r.U64()
	req.Issue = r.U64()
	return req, r.Err()
}
