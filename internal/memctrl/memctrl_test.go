package memctrl

import (
	"testing"
	"testing/quick"

	"bump/internal/dram"
	"bump/internal/event"
	"bump/internal/mem"
)

func TestMapperValidation(t *testing.T) {
	cfg := dram.DefaultConfig()
	if _, err := NewMapper(BlockInterleave, cfg, mem.DefaultRegionShift); err != nil {
		t.Fatalf("default mapper: %v", err)
	}
	bad := cfg
	bad.Channels = 3
	if _, err := NewMapper(BlockInterleave, bad, mem.DefaultRegionShift); err == nil {
		t.Error("non-power-of-two channels must fail")
	}
	// A region larger than the row must fail.
	if _, err := NewMapper(RegionInterleave, cfg, 14); err == nil {
		t.Error("16KB region in 8KB row must fail")
	}
	if _, err := NewMapper(Interleave(9), cfg, 10); err == nil {
		t.Error("unknown interleave must fail")
	}
}

func TestBlockInterleaveSpreadsConsecutiveBlocks(t *testing.T) {
	m, err := NewMapper(BlockInterleave, dram.DefaultConfig(), mem.DefaultRegionShift)
	if err != nil {
		t.Fatal(err)
	}
	l0 := m.Map(0)
	l1 := m.Map(1)
	if l0.Channel == l1.Channel {
		t.Error("consecutive blocks must alternate channels under block interleave")
	}
	// Blocks 0 and 2 share a channel but differ in bank.
	l2 := m.Map(2)
	if l2.Channel != l0.Channel || l2.Bank == l0.Bank {
		t.Errorf("block 2: %+v vs block 0: %+v", l2, l0)
	}
}

func TestRegionInterleaveKeepsRegionInOneRow(t *testing.T) {
	const shift = mem.DefaultRegionShift
	m, err := NewMapper(RegionInterleave, dram.DefaultConfig(), shift)
	if err != nil {
		t.Fatal(err)
	}
	r := mem.RegionAddr(12345)
	first := m.Map(r.Block(shift, 0))
	for i := uint(1); i < mem.BlocksPerRegion(shift); i++ {
		if loc := m.Map(r.Block(shift, i)); loc != first {
			t.Fatalf("block %d of region maps to %+v, want %+v", i, loc, first)
		}
	}
	// Consecutive regions land on different channels.
	next := m.Map((r + 1).Block(shift, 0))
	if next.Channel == first.Channel {
		t.Error("consecutive regions must alternate channels")
	}
}

// Property: mapped locations are always within the organisation's bounds,
// and blocks that share a (channel,rank,bank,row) under SameRow are
// reflexive/symmetric.
func TestMapperBoundsProperty(t *testing.T) {
	cfg := dram.DefaultConfig()
	for _, il := range []Interleave{BlockInterleave, RegionInterleave} {
		m, err := NewMapper(il, cfg, mem.DefaultRegionShift)
		if err != nil {
			t.Fatal(err)
		}
		f := func(raw uint64) bool {
			b := mem.BlockAddr(raw % (1 << 34))
			loc := m.Map(b)
			if loc.Channel < 0 || loc.Channel >= cfg.Channels {
				return false
			}
			if loc.Rank < 0 || loc.Rank >= cfg.RanksPerChannel {
				return false
			}
			if loc.Bank < 0 || loc.Bank >= cfg.BanksPerRank {
				return false
			}
			return m.SameRow(b, b)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v: %v", il, err)
		}
	}
}

// Property: under RegionInterleave, any two blocks of the same region are
// in the same row; the row then holds exactly rowBytes/regionBytes regions.
func TestRegionRowCapacityProperty(t *testing.T) {
	const shift = mem.DefaultRegionShift
	cfg := dram.DefaultConfig()
	m, _ := NewMapper(RegionInterleave, cfg, shift)
	f := func(raw uint64, i, j uint8) bool {
		r := mem.RegionAddr(raw % (1 << 24))
		n := mem.BlocksPerRegion(shift)
		bi := r.Block(shift, uint(i)%n)
		bj := r.Block(shift, uint(j)%n)
		return m.SameRow(bi, bj)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func defaultController(t *testing.T, p Policy, il Interleave) (*Controller, *dram.DRAM, *event.Engine) {
	t.Helper()
	eng := event.New()
	d := dram.New(dram.DefaultConfig())
	c, err := New(DefaultConfig(p, il), d, eng)
	if err != nil {
		t.Fatal(err)
	}
	return c, d, eng
}

func TestControllerConfigValidation(t *testing.T) {
	eng := event.New()
	d := dram.New(dram.DefaultConfig())
	bad := DefaultConfig(OpenRow, BlockInterleave)
	bad.QueueDepth = 0
	if _, err := New(bad, d, eng); err == nil {
		t.Error("zero queue depth must fail")
	}
	bad = DefaultConfig(OpenRow, BlockInterleave)
	bad.ClockRatio = 0
	if _, err := New(bad, d, eng); err == nil {
		t.Error("zero clock ratio must fail")
	}
	bad = DefaultConfig(OpenRow, BlockInterleave)
	bad.WriteHighWatermark = 1
	bad.WriteLowWatermark = 5
	if _, err := New(bad, d, eng); err == nil {
		t.Error("inverted watermarks must fail")
	}
}

func TestSingleReadCompletes(t *testing.T) {
	c, d, eng := defaultController(t, OpenRow, RegionInterleave)
	var got []Completion
	c.Handler = func(cp Completion) { got = append(got, cp) }
	c.Enqueue(mem.Request{Op: mem.MemRead, Addr: 0x10000, PC: 0x400})
	eng.Drain()
	if len(got) != 1 {
		t.Fatalf("completions = %d", len(got))
	}
	if got[0].Outcome != dram.RowClosed {
		t.Errorf("outcome = %v", got[0].Outcome)
	}
	if got[0].Done == 0 {
		t.Error("completion time must be positive")
	}
	if d.Stats().ReadBursts != 1 {
		t.Error("dram must see one read")
	}
	if c.Stats().Reads != 1 {
		t.Error("controller read count")
	}
}

func TestFRFCFSPrioritisesRowHits(t *testing.T) {
	c, d, eng := defaultController(t, OpenRow, RegionInterleave)
	var order []mem.Addr
	c.Handler = func(cp Completion) { order = append(order, cp.Req.Addr) }

	// Open a row with block 0 of region 0, then enqueue: a conflict
	// (same bank, different row) and a row hit (same region). The hit
	// must complete first despite arriving later.
	c.Enqueue(mem.Request{Op: mem.MemRead, Addr: 0})
	eng.Drain()
	conflictAddr := func() mem.Addr {
		// Find an address mapping to the same bank, different row.
		base := c.Mapper().Map(0)
		for b := mem.BlockAddr(16); b < 1<<20; b += 16 {
			if loc := c.Mapper().Map(b); loc.Channel == base.Channel && loc.Rank == base.Rank && loc.Bank == base.Bank && loc.Row != base.Row {
				return b.Addr()
			}
		}
		t.Fatal("no conflicting address found")
		return 0
	}()
	c.Enqueue(mem.Request{Op: mem.MemRead, Addr: conflictAddr})
	c.Enqueue(mem.Request{Op: mem.MemRead, Addr: 64}) // block 1 of region 0: row hit
	eng.Drain()
	if len(order) != 3 {
		t.Fatalf("completions = %d", len(order))
	}
	if order[1] != 64 {
		t.Errorf("row hit should complete before conflict: order = %v", order)
	}
	if d.Stats().RowHits == 0 {
		t.Error("expected at least one row hit")
	}
}

func TestCloseRowNeverHits(t *testing.T) {
	c, d, eng := defaultController(t, CloseRow, BlockInterleave)
	c.Handler = func(Completion) {}
	for i := 0; i < 16; i++ {
		c.Enqueue(mem.Request{Op: mem.MemRead, Addr: mem.Addr(i * 64)})
	}
	eng.Drain()
	if hits := d.Stats().RowHits; hits != 0 {
		t.Errorf("close-row policy produced %d row hits", hits)
	}
}

func TestOpenRowSequentialRegionHits(t *testing.T) {
	c, d, eng := defaultController(t, OpenRow, RegionInterleave)
	c.Handler = func(Completion) {}
	// All 16 blocks of one region, enqueued together: 1 activation + 15 hits.
	for i := 0; i < 16; i++ {
		c.Enqueue(mem.Request{Op: mem.MemRead, Addr: mem.Addr(i * 64)})
	}
	eng.Drain()
	s := d.Stats()
	if s.Activations != 1 {
		t.Errorf("activations = %d, want 1", s.Activations)
	}
	if s.RowHits != 15 {
		t.Errorf("row hits = %d, want 15", s.RowHits)
	}
}

func TestWriteDrainHysteresis(t *testing.T) {
	c, _, eng := defaultController(t, OpenRow, RegionInterleave)
	var reads, writes int
	c.Handler = func(cp Completion) {
		if cp.Req.Op == mem.MemWrite {
			writes++
		} else {
			reads++
		}
	}
	// Fill one channel's write queue past the high watermark (even
	// region indices all map to channel 0 under region interleave);
	// writes must drain even while reads keep arriving.
	for i := 0; i < 50; i++ {
		c.Enqueue(mem.Request{Op: mem.MemWrite, Addr: mem.Addr(i * 2048)})
	}
	for i := 0; i < 10; i++ {
		c.Enqueue(mem.Request{Op: mem.MemRead, Addr: mem.Addr(1 << 30)})
	}
	eng.Drain()
	if writes != 50 || reads != 10 {
		t.Errorf("writes=%d reads=%d", writes, reads)
	}
	if c.Stats().WriteDrains == 0 {
		t.Error("expected a write drain episode")
	}
}

func TestReadsPreferredOverIdleWrites(t *testing.T) {
	c, _, eng := defaultController(t, OpenRow, RegionInterleave)
	var order []mem.MemOp
	c.Handler = func(cp Completion) { order = append(order, cp.Req.Op) }
	// Below the high watermark, a read arriving with writes queued is
	// served ahead of the backlog... but the first write may already be
	// in flight; assert the read does not finish last.
	c.Enqueue(mem.Request{Op: mem.MemWrite, Addr: 0})
	c.Enqueue(mem.Request{Op: mem.MemWrite, Addr: 2048})
	c.Enqueue(mem.Request{Op: mem.MemRead, Addr: 4096})
	eng.Drain()
	if order[len(order)-1] == mem.MemRead {
		t.Errorf("read starved behind idle writes: %v", order)
	}
}

func TestQueueLenAndDelayAccounting(t *testing.T) {
	c, _, eng := defaultController(t, OpenRow, RegionInterleave)
	c.Handler = func(Completion) {}
	for i := 0; i < 100; i++ {
		c.Enqueue(mem.Request{Op: mem.MemRead, Addr: mem.Addr(i) * 1024 * 64})
	}
	if c.QueueLen() == 0 {
		t.Error("queue should hold pending transactions")
	}
	eng.Drain()
	if c.QueueLen() != 0 {
		t.Error("queue must drain")
	}
	st := c.Stats()
	if st.Reads != 100 {
		t.Errorf("reads = %d", st.Reads)
	}
	if st.ReadQueueDelay == 0 {
		t.Error("queue delay must accumulate under load")
	}
	if st.MaxQueue < 50 {
		t.Errorf("MaxQueue = %d", st.MaxQueue)
	}
}

// Property: every enqueued transaction completes exactly once, regardless
// of op mix and address pattern.
func TestCompletionConservationProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		eng := event.New()
		d := dram.New(dram.DefaultConfig())
		c, err := New(DefaultConfig(OpenRow, RegionInterleave), d, eng)
		if err != nil {
			return false
		}
		var completed int
		c.Handler = func(Completion) { completed++ }
		for _, r := range raw {
			op := mem.MemRead
			if r&1 != 0 {
				op = mem.MemWrite
			}
			c.Enqueue(mem.Request{Op: op, Addr: mem.Addr(r) * mem.BlockBytes})
		}
		eng.Drain()
		return completed == len(raw) && c.QueueLen() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRowHitStreakCap(t *testing.T) {
	// With a cap of 2, a long run of row hits must be broken up by
	// oldest-first picks. Construct: open row A, then queue many hits
	// to A plus one old conflict transaction; with the cap the conflict
	// completes before all hits, without it the hits all go first.
	run := func(cap int) (conflictPos int) {
		eng := event.New()
		d := dram.New(dram.DefaultConfig())
		cfg := DefaultConfig(OpenRow, RegionInterleave)
		cfg.MaxRowHitStreak = cap
		c, err := New(cfg, d, eng)
		if err != nil {
			t.Fatal(err)
		}
		var order []mem.Addr
		c.Handler = func(cp Completion) { order = append(order, cp.Req.Addr) }
		c.Enqueue(mem.Request{Op: mem.MemRead, Addr: 0})
		eng.Drain()
		// Conflicting address: same bank, different row.
		base := c.Mapper().Map(0)
		var conflict mem.Addr
		for b := mem.BlockAddr(16); b < 1<<22; b += 16 {
			if loc := c.Mapper().Map(b); loc.Channel == base.Channel && loc.Rank == base.Rank && loc.Bank == base.Bank && loc.Row != base.Row {
				conflict = b.Addr()
				break
			}
		}
		c.Enqueue(mem.Request{Op: mem.MemRead, Addr: conflict})
		for i := 1; i < 10; i++ {
			c.Enqueue(mem.Request{Op: mem.MemRead, Addr: mem.Addr(i * 64)}) // row hits
		}
		eng.Drain()
		for i, a := range order {
			if a == conflict {
				return i
			}
		}
		t.Fatal("conflict transaction never completed")
		return -1
	}
	uncapped := run(0)
	capped := run(2)
	if capped >= uncapped {
		t.Errorf("cap must promote the starved transaction: pos %d (capped) vs %d (uncapped)", capped, uncapped)
	}
}
