// Package memctrl implements the processor-side memory controller: DRAM
// address mapping (the paper's block- and region-interleaved schemes),
// per-channel transaction queues, and FR-FCFS scheduling in open-row and
// close-row variants (Rixner et al. [41], paper Section IV.D and V.A).
package memctrl

import (
	"fmt"
	"math/bits"

	"bump/internal/dram"
	"bump/internal/mem"
)

// Interleave selects the DRAM address-mapping scheme.
type Interleave uint8

const (
	// BlockInterleave distributes consecutive cache blocks across
	// channels, then banks, then ranks (Base-close's scheme:
	// Row:ColumnHigh:Rank:Bank:Channel:ColumnLow:ByteOffset with a
	// block-sized ColumnLow+ByteOffset). It maximises channel/rank/bank
	// parallelism for sequential streams.
	BlockInterleave Interleave = iota
	// RegionInterleave keeps each BuMP region (1KB by default) in a
	// single DRAM row and distributes consecutive regions across
	// channels/banks/ranks (BuMP's and Base-open's scheme, with
	// ColumnLow covering the region offset).
	RegionInterleave
)

func (i Interleave) String() string {
	if i == BlockInterleave {
		return "block"
	}
	return "region"
}

// Mapper decodes physical block addresses into DRAM locations.
type Mapper struct {
	interleave  Interleave
	regionShift uint

	chanBits, rankBits, bankBits int
	channels, ranks, banks       int
	rowBlocks                    int // blocks per row
	unitBits                     int // block bits consumed below the channel field
	colHighBits                  int
}

// NewMapper builds a mapper for the given DRAM organisation. All dimension
// counts must be powers of two. For RegionInterleave the region (2^shift
// bytes) must fit in a row.
func NewMapper(il Interleave, cfg dram.Config, regionShift uint) (*Mapper, error) {
	for _, d := range []struct {
		name string
		n    int
	}{{"channels", cfg.Channels}, {"ranks", cfg.RanksPerChannel}, {"banks", cfg.BanksPerRank}} {
		if d.n&(d.n-1) != 0 {
			return nil, fmt.Errorf("memctrl: %s (%d) must be a power of two", d.name, d.n)
		}
	}
	rowBlocks := cfg.RowBytes / mem.BlockBytes
	m := &Mapper{
		interleave:  il,
		regionShift: regionShift,
		chanBits:    bits.TrailingZeros(uint(cfg.Channels)),
		rankBits:    bits.TrailingZeros(uint(cfg.RanksPerChannel)),
		bankBits:    bits.TrailingZeros(uint(cfg.BanksPerRank)),
		channels:    cfg.Channels,
		ranks:       cfg.RanksPerChannel,
		banks:       cfg.BanksPerRank,
		rowBlocks:   rowBlocks,
	}
	switch il {
	case BlockInterleave:
		m.unitBits = 0
	case RegionInterleave:
		regionBlocks := 1 << (regionShift - mem.BlockShift)
		if regionBlocks > rowBlocks {
			return nil, fmt.Errorf("memctrl: region (%d blocks) exceeds row (%d blocks)", regionBlocks, rowBlocks)
		}
		m.unitBits = int(regionShift - mem.BlockShift)
	default:
		return nil, fmt.Errorf("memctrl: unknown interleave %d", il)
	}
	m.colHighBits = bits.TrailingZeros(uint(rowBlocks)) - m.unitBits
	if m.colHighBits < 0 {
		return nil, fmt.Errorf("memctrl: row smaller than interleave unit")
	}
	return m, nil
}

// Map decodes block address b.
//
// Bit layout (LSB first above the block offset):
//
//	[unit offset | channel | bank | rank | columnHigh | row]
//
// where the unit is one block (BlockInterleave) or one region
// (RegionInterleave). With RegionInterleave every block of a region shares
// (channel, rank, bank, row): a bulk transfer is guaranteed to be a single
// row activation plus row-buffer hits.
func (m *Mapper) Map(b mem.BlockAddr) dram.Loc {
	x := uint64(b)
	x >>= uint(m.unitBits) // unit offset stays within the row
	ch := int(x & uint64(m.channels-1))
	x >>= uint(m.chanBits)
	bank := int(x & uint64(m.banks-1))
	x >>= uint(m.bankBits)
	rank := int(x & uint64(m.ranks-1))
	x >>= uint(m.rankBits)
	x >>= uint(m.colHighBits) // columnHigh selects the unit within the row
	return dram.Loc{Channel: ch, Rank: rank, Bank: bank, Row: x}
}

// Channels returns the channel count.
func (m *Mapper) Channels() int { return m.channels }

// SameRow reports whether two blocks land in the same bank and row.
func (m *Mapper) SameRow(a, b mem.BlockAddr) bool {
	la, lb := m.Map(a), m.Map(b)
	return la == lb
}
