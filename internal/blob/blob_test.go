package blob

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// key returns a valid 64-hex digest deterministically derived from i.
func key(i int) string {
	return fmt.Sprintf("%064x", i+1)
}

func mustOpen(t *testing.T, dir string, max int64) *Store {
	t.Helper()
	s, err := Open(dir, max)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestPutGetRoundtrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 1<<20)
	data := []byte("checkpoint bytes")
	if err := s.Put(key(0), data); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key(0), data); err != nil {
		t.Fatal(err) // idempotent re-put
	}
	got, ok := s.Get(key(0))
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("get: ok=%v %q", ok, got)
	}
	if _, ok := s.Get(key(1)); ok {
		t.Fatal("missing key reported present")
	}
	if err := s.Put("../escape", data); err == nil {
		t.Fatal("path-metacharacter key accepted")
	}
	st := s.Stats()
	if st.Blobs != 1 || st.Puts != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestFetchSingleFlight: concurrent fetches of the same missing digest
// run the fill exactly once; everyone gets the same bytes.
func TestFetchSingleFlight(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 1<<20)
	var fills atomic.Int64
	gate := make(chan struct{})
	data := []byte("filled once")

	const callers = 16
	var wg sync.WaitGroup
	errs := make([]error, callers)
	got := make([][]byte, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = s.Fetch(key(0), func() ([]byte, error) {
				fills.Add(1)
				<-gate // hold the leader so everyone else piles up
				return data, nil
			})
		}(i)
	}
	// Let waiters accumulate on the in-flight fill, then release it.
	for s.Stats().FillsCoalesced == 0 {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if n := fills.Load(); n != 1 {
		t.Fatalf("fill ran %d times, want 1 (single-flight)", n)
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil || !bytes.Equal(got[i], data) {
			t.Fatalf("caller %d: %v %q", i, errs[i], got[i])
		}
	}
}

// TestFetchLeaderFailureHandsOver: a failed fill doesn't poison the
// key — the error goes to the leader, and a later fetch fills fresh.
func TestFetchLeaderFailureHandsOver(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 1<<20)
	if _, err := s.Fetch(key(0), func() ([]byte, error) {
		return nil, fmt.Errorf("source unreachable")
	}); err == nil {
		t.Fatal("fill failure swallowed")
	}
	data := []byte("second try")
	got, err := s.Fetch(key(0), func() ([]byte, error) { return data, nil })
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("retry fetch: %v %q", err, got)
	}
}

// TestEvictionSparesStreamingReader: evicting a blob mid-transfer must
// not yank the file out from under the open reader — the blob goes
// logically dead immediately but its bytes stream to completion, and
// the file is deleted only on Close.
func TestEvictionSparesStreamingReader(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 100)
	big := bytes.Repeat([]byte{0xAA}, 80)
	if err := s.Put(key(0), big); err != nil {
		t.Fatal(err)
	}

	rc, size, ok := s.Open(key(0))
	if !ok || size != int64(len(big)) {
		t.Fatalf("open: ok=%v size=%d", ok, size)
	}
	// Read half, then force an eviction of key(0) by exceeding the
	// budget with a newer blob.
	half := make([]byte, 40)
	if _, err := io.ReadFull(rc, half); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key(1), bytes.Repeat([]byte{0xBB}, 60)); err != nil {
		t.Fatal(err)
	}

	// key(0) is logically gone (miss for new readers, off the budget)...
	if _, ok := s.Get(key(0)); ok {
		t.Fatal("evicted blob still served to new readers")
	}
	if st := s.Stats(); st.Bytes > 100 || st.Evictions == 0 {
		t.Fatalf("budget not reclaimed under streaming reader: %+v", st)
	}
	// ...but the in-flight stream completes with intact bytes.
	rest, err := io.ReadAll(rc)
	if err != nil || !bytes.Equal(append(half, rest...), big) {
		t.Fatalf("stream corrupted by eviction: %v (%d bytes)", err, len(rest))
	}
	if _, err := os.Stat(filepath.Join(dir, key(0))); err != nil {
		t.Fatal("blob file deleted while a reader held it")
	}
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, key(0))); !os.IsNotExist(err) {
		t.Fatalf("deferred delete did not run on Close: %v", err)
	}
}

// TestReopenRebuildsIndex: a restart re-indexes the directory — every
// live blob is served again, torn temp files are swept, and the LRU
// budget still holds.
func TestReopenRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 1<<20)
	blobs := map[string][]byte{}
	for i := 0; i < 5; i++ {
		blobs[key(i)] = bytes.Repeat([]byte{byte(i)}, 100+i)
		if err := s.Put(key(i), blobs[key(i)]); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	// A torn temp file and a stray non-digest file from a crash.
	os.WriteFile(filepath.Join(dir, "tmp-123456"), []byte("torn"), 0o644)
	os.WriteFile(filepath.Join(dir, "not-a-digest"), []byte("stray"), 0o644)

	s2 := mustOpen(t, dir, 1<<20)
	keys := s2.Keys()
	if len(keys) != 5 {
		t.Fatalf("reopened index has %d blobs, want 5 (%v)", len(keys), keys)
	}
	for k, want := range blobs {
		got, ok := s2.Get(k)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("blob %s after reopen: ok=%v", k, ok)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "tmp-123456")); !os.IsNotExist(err) {
		t.Fatal("torn temp file not swept on reopen")
	}

	// Reopen under a tighter budget: the index must evict down to fit.
	s2.Close()
	s3 := mustOpen(t, dir, 250)
	if st := s3.Stats(); st.Bytes > 250 || st.Blobs >= 5 {
		t.Fatalf("reopen did not enforce the budget: %+v", st)
	}
	for _, k := range s3.Keys() {
		if got, ok := s3.Get(k); !ok || !bytes.Equal(got, blobs[k]) {
			t.Fatalf("surviving blob %s unreadable after budget reopen", k)
		}
	}
}

// TestLRUEvictionOrder: the coldest blob goes first; touching a blob
// with Get refreshes it.
func TestLRUEvictionOrder(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 250)
	for i := 0; i < 2; i++ {
		if err := s.Put(key(i), bytes.Repeat([]byte{1}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	s.Get(key(0)) // key(0) is now warmer than key(1)
	if err := s.Put(key(2), bytes.Repeat([]byte{2}, 100)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key(1)); ok {
		t.Fatal("cold blob survived eviction")
	}
	for _, k := range []string{key(0), key(2)} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("warm blob %s evicted", k)
		}
	}
}

// TestConcurrentPutGetChurn hammers overlapping keys under the race
// detector; invariants (budget, no panics, served bytes intact) hold.
func TestConcurrentPutGetChurn(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 2_000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := key(i % 10)
				want := strings.Repeat("x", 100+i%10)
				s.Put(k, []byte(want))
				if got, ok := s.Get(k); ok && len(got) != len(want) {
					t.Errorf("blob %s: %d bytes, want %d", k, len(got), len(want))
				}
			}
		}(g)
	}
	wg.Wait()
	if st := s.Stats(); st.Bytes > 2_000 {
		t.Fatalf("budget exceeded: %+v", st)
	}
}
