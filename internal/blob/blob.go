// Package blob is a content-addressed, size-bounded checkpoint store:
// immutable blobs named by their digest (warm keys are hex
// snapshot-derived structural digests), written atomically
// (temp-file + rename), evicted LRU under a byte budget with
// ref-counted GC — a blob still streaming to a peer is logically
// evicted immediately but physically deleted only when its last reader
// closes — and rebuilt from the directory on restart.
//
// The store backs sim.WarmStore (it satisfies sim.WarmBackend), giving
// warm checkpoints a life beyond one process: a restarted or failover
// worker serves GET /v1/checkpoints/{digest} from here instead of
// re-simulating the warmup.
package blob

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Stats is a point-in-time view of the store.
type Stats struct {
	Blobs          int    `json:"blobs"`
	Bytes          int64  `json:"bytes"`
	Capacity       int64  `json:"capacity"`
	Hits           uint64 `json:"hits"`
	Misses         uint64 `json:"misses"`
	Puts           uint64 `json:"puts"`
	Evictions      uint64 `json:"evictions"`
	FillsCoalesced uint64 `json:"fills_coalesced"`
}

// entry tracks one blob. dead marks a logically evicted blob whose
// file lingers only for in-flight readers; its bytes are already off
// the budget.
type entry struct {
	size int64
	refs int
	dead bool
	seq  uint64
}

// Store is the content-addressed blob directory.
type Store struct {
	dir string
	max int64

	mu      sync.Mutex
	entries map[string]*entry
	bytes   int64
	clock   uint64
	filling map[string]chan struct{}
	stats   Stats
	closed  bool
}

// DefaultCapacity bounds the store when Open is given no budget: 1 GiB.
const DefaultCapacity = 1 << 30

// Open creates or reopens a blob directory, rebuilding the index from
// the files on disk (oldest-modified = coldest for LRU purposes) and
// sweeping any torn temp files from a previous crash.
func Open(dir string, maxBytes int64) (*Store, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultCapacity
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("blob: %w", err)
	}
	s := &Store{
		dir:     dir,
		max:     maxBytes,
		entries: make(map[string]*entry),
		filling: make(map[string]chan struct{}),
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("blob: %w", err)
	}
	type onDisk struct {
		key  string
		size int64
		mod  int64
	}
	var found []onDisk
	for _, de := range ents {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		if strings.HasPrefix(name, "tmp-") {
			os.Remove(filepath.Join(dir, name)) // torn write from a crash
			continue
		}
		if !validKey(name) {
			continue
		}
		fi, err := de.Info()
		if err != nil {
			continue
		}
		found = append(found, onDisk{key: name, size: fi.Size(), mod: fi.ModTime().UnixNano()})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mod < found[j].mod })
	for _, f := range found {
		s.clock++
		s.entries[f.key] = &entry{size: f.size, seq: s.clock}
		s.bytes += f.size
	}
	s.evictLocked("")
	return s, nil
}

// validKey accepts lowercase-hex digest names (warm keys are 64 hex
// chars; shorter digests are tolerated, path metacharacters are not).
func validKey(key string) bool {
	if len(key) < 8 || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) path(key string) string { return filepath.Join(s.dir, key) }

// Put stores data under key (idempotent: blobs are immutable, a
// re-put of a live key is a no-op). The write is atomic — temp file in
// the same directory, then rename — so readers never see a torn blob.
func (s *Store) Put(key string, data []byte) error {
	if !validKey(key) {
		return fmt.Errorf("blob: invalid key %q", key)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("blob: store closed")
	}
	if e, ok := s.entries[key]; ok {
		if e.dead {
			// Logically evicted but the file survives for a reader:
			// resurrect it instead of racing its deferred delete.
			e.dead = false
			s.bytes += e.size
			s.clock++
			e.seq = s.clock
			s.stats.Puts++
			s.evictLocked(key)
		}
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()

	tmp, err := os.CreateTemp(s.dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("blob: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("blob: write %s: %w", key, fmt.Errorf("%v; %v", werr, cerr))
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("blob: %w", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[key]; ok && !e.dead {
		return nil // concurrent identical put won the race
	}
	s.clock++
	s.entries[key] = &entry{size: int64(len(data)), seq: s.clock}
	s.bytes += int64(len(data))
	s.stats.Puts++
	s.evictLocked(key)
	return nil
}

// evictLocked enforces the byte budget, LRU first. Blobs with open
// readers are marked dead (off the budget, unreachable for new Gets)
// and their files deleted when the last reader closes. keep is never
// evicted (the blob just inserted).
func (s *Store) evictLocked(keep string) {
	for s.bytes > s.max {
		victim := ""
		var ve *entry
		for k, e := range s.entries {
			if k == keep || e.dead {
				continue
			}
			if ve == nil || e.seq < ve.seq {
				victim, ve = k, e
			}
		}
		if ve == nil {
			return
		}
		s.bytes -= ve.size
		s.stats.Evictions++
		if ve.refs > 0 {
			ve.dead = true // deferred delete: a transfer is streaming it
			continue
		}
		delete(s.entries, victim)
		os.Remove(s.path(victim))
	}
}

// decRefLocked releases one reader reference, completing a deferred
// eviction when the last reader of a dead blob closes.
func (s *Store) decRefLocked(key string, e *entry) {
	e.refs--
	if e.refs == 0 && e.dead {
		if cur, ok := s.entries[key]; ok && cur == e {
			delete(s.entries, key)
		}
		os.Remove(s.path(key))
	}
}

// dropLocked removes a live entry whose file turned out to be
// unreadable (deleted or corrupted out of band).
func (s *Store) dropLocked(key string, e *entry) {
	if cur, ok := s.entries[key]; ok && cur == e {
		delete(s.entries, key)
		if !e.dead {
			s.bytes -= e.size
		}
	}
	os.Remove(s.path(key))
}

// Delete removes a blob out of LRU order — the warm store's poisoning
// path: bytes whose restore failed must not satisfy any future Get. A
// blob still streaming to a reader is marked dead and its file removed
// when the last reader closes, like an eviction.
func (s *Store) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok || e.dead {
		return
	}
	s.bytes -= e.size
	if e.refs > 0 {
		e.dead = true
		return
	}
	delete(s.entries, key)
	os.Remove(s.path(key))
}

// Get returns the blob's bytes.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	e, ok := s.entries[key]
	if !ok || e.dead {
		s.stats.Misses++
		s.mu.Unlock()
		return nil, false
	}
	e.refs++
	s.clock++
	e.seq = s.clock
	s.mu.Unlock()

	data, err := os.ReadFile(s.path(key))

	s.mu.Lock()
	defer s.mu.Unlock()
	s.decRefLocked(key, e)
	if err != nil {
		s.stats.Misses++
		s.dropLocked(key, e)
		return nil, false
	}
	s.stats.Hits++
	return data, true
}

// Open returns a streaming reader over the blob, holding a reference
// that defers eviction's file delete until Close.
func (s *Store) Open(key string) (io.ReadCloser, int64, bool) {
	s.mu.Lock()
	e, ok := s.entries[key]
	if !ok || e.dead {
		s.stats.Misses++
		s.mu.Unlock()
		return nil, 0, false
	}
	e.refs++
	s.clock++
	e.seq = s.clock
	s.mu.Unlock()

	f, err := os.Open(s.path(key))
	if err != nil {
		s.mu.Lock()
		s.stats.Misses++
		s.decRefLocked(key, e)
		s.dropLocked(key, e)
		s.mu.Unlock()
		return nil, 0, false
	}
	s.mu.Lock()
	s.stats.Hits++
	s.mu.Unlock()
	return &blobReader{f: f, s: s, key: key, e: e}, e.size, true
}

type blobReader struct {
	f    *os.File
	s    *Store
	key  string
	e    *entry
	once sync.Once
}

func (r *blobReader) Read(p []byte) (int, error) { return r.f.Read(p) }

func (r *blobReader) Close() error {
	err := r.f.Close()
	r.once.Do(func() {
		r.s.mu.Lock()
		r.s.decRefLocked(r.key, r.e)
		r.s.mu.Unlock()
	})
	return err
}

// Fetch returns the blob, invoking fill at most once across concurrent
// callers of the same missing key (single-flight); waiters block on the
// leader and then read the stored blob.
func (s *Store) Fetch(key string, fill func() ([]byte, error)) ([]byte, error) {
	for {
		if data, ok := s.Get(key); ok {
			return data, nil
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return nil, fmt.Errorf("blob: store closed")
		}
		if ch, busy := s.filling[key]; busy {
			s.stats.FillsCoalesced++
			s.mu.Unlock()
			<-ch
			continue // leader done: hit the store, or take over on its failure
		}
		ch := make(chan struct{})
		s.filling[key] = ch
		s.mu.Unlock()

		data, err := fill()
		if err == nil {
			err = s.Put(key, data)
		}
		s.mu.Lock()
		delete(s.filling, key)
		s.mu.Unlock()
		close(ch)
		if err != nil {
			return nil, err
		}
		return data, nil
	}
}

// Keys lists live blob digests, sorted.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.entries))
	for k, e := range s.entries {
		if !e.dead {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Stats returns cumulative counters plus the live blob census.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Capacity = s.max
	st.Bytes = s.bytes
	for _, e := range s.entries {
		if !e.dead {
			st.Blobs++
		}
	}
	return st
}

// Close marks the store closed; blobs stay on disk for the next Open.
func (s *Store) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}
