// Package energy implements the paper's energy-modelling framework
// (Section V.A, Table III): event-based dynamic energy plus time-based
// static power for cores, LLC, NOC, memory controller and DRAM.
//
// The paper's headline metrics come straight from this model:
//   - server energy breakdown (Fig. 1),
//   - memory energy per access split into Activation and Burst/IO
//     (Fig. 9, 11, 13),
//   - LLC/NOC energy overheads (Fig. 12).
package energy

// Params holds the per-event energies and static powers of Table III.
// Energies are joules; powers are watts.
type Params struct {
	CPUFreqHz float64

	// Core: dynamic power scales with IPC relative to the reference
	// (peak) IPC of the 3-way core, following the paper's methodology of
	// scaling published dynamic-power measurements by the IPC ratio.
	// CoreIdleFrac is the fraction of peak dynamic power burned even
	// when stalled (clocking, fetch, speculation) — a stalled OoO core
	// is not power-gated.
	CorePeakDynamicW float64
	CorePeakIPC      float64
	CoreIdleFrac     float64
	CoreLeakageW     float64

	// LLC per-operation energies and total leakage.
	LLCReadJ    float64
	LLCWriteJ   float64
	LLCLeakageW float64

	// NOC: per-message energies calibrated so peak traffic matches the
	// 55mW peak dynamic power; constant leakage.
	NOCControlJ float64
	NOCDataJ    float64
	NOCPCExtraJ float64
	NOCLeakageW float64

	// Memory controller: dynamic power at the reference bandwidth,
	// charged per byte transferred.
	MCDynamicWAtRef float64
	MCRefBandwidth  float64 // bytes/second

	// DRAM (per Table III, per 2GB rank and 64-byte transfer).
	DRAMActivationJ float64
	DRAMReadJ       float64
	DRAMWriteJ      float64
	DRAMReadIOJ     float64
	DRAMWriteIOJ    float64
	DRAMBackgroundW float64 // per rank
	Ranks           int
}

// DefaultParams returns Table III's values for the simulated 16-core CMP
// with 2 channels x 4 ranks.
func DefaultParams() Params {
	return Params{
		CPUFreqHz:        2.5e9,
		CorePeakDynamicW: 0.700,
		CorePeakIPC:      1.5,
		CoreIdleFrac:     0.35,
		CoreLeakageW:     0.070,
		LLCReadJ:         0.63e-9,
		LLCWriteJ:        0.70e-9,
		LLCLeakageW:      0.750,
		NOCControlJ:      0.05e-9,
		NOCDataJ:         0.20e-9,
		NOCPCExtraJ:      0.05e-9,
		NOCLeakageW:      0.030,
		MCDynamicWAtRef:  0.250,
		MCRefBandwidth:   12.8e9,
		DRAMActivationJ:  29.7e-9,
		DRAMReadJ:        8.1e-9,
		DRAMWriteJ:       8.4e-9,
		// Read termination weighted over ranks: 1/4 of reads terminate
		// on the target rank (1.5nJ), 3/4 on the other ranks of the
		// channel (RRead, 3.8nJ).
		DRAMReadIOJ:     3.2e-9,
		DRAMWriteIOJ:    4.6e-9,
		DRAMBackgroundW: 0.655, // midpoint of the 540-770mW range
		Ranks:           8,
	}
}

// Inputs are the event counts and elapsed time of one measured run.
type Inputs struct {
	Cycles       uint64
	Cores        int
	Instructions uint64 // committed instructions across all cores

	LLCReads  uint64 // lookups serviced (reads/probes that return data)
	LLCWrites uint64 // fills + write updates

	NOCControl uint64
	NOCData    uint64
	NOCPC      uint64

	DRAMActivations uint64
	DRAMReads       uint64
	DRAMWrites      uint64
}

// Breakdown is the energy of one run, in joules, split the way the
// paper's figures need.
type Breakdown struct {
	CoreDynamic float64
	CoreLeakage float64
	LLCDynamic  float64
	LLCLeakage  float64
	NOCDynamic  float64
	NOCLeakage  float64
	MCDynamic   float64

	DRAMActivation float64
	DRAMBurst      float64
	DRAMIO         float64
	DRAMBackground float64
}

// Memory returns total DRAM energy (Fig. 1's "Memory" component).
func (b Breakdown) Memory() float64 {
	return b.DRAMActivation + b.DRAMBurst + b.DRAMIO + b.DRAMBackground
}

// MemoryDynamic returns DRAM energy excluding background (the per-access
// energy the paper optimises in Fig. 9/11/13: Activation + Burst/IO).
func (b Breakdown) MemoryDynamic() float64 {
	return b.DRAMActivation + b.DRAMBurst + b.DRAMIO
}

// BurstIO returns the Burst + I/O component shown in Fig. 9/13.
func (b Breakdown) BurstIO() float64 { return b.DRAMBurst + b.DRAMIO }

// Cores returns total core energy.
func (b Breakdown) Cores() float64 { return b.CoreDynamic + b.CoreLeakage }

// LLC returns total LLC energy.
func (b Breakdown) LLC() float64 { return b.LLCDynamic + b.LLCLeakage }

// NOC returns total NOC energy.
func (b Breakdown) NOC() float64 { return b.NOCDynamic + b.NOCLeakage }

// Total returns whole-server energy.
func (b Breakdown) Total() float64 {
	return b.Cores() + b.LLC() + b.NOC() + b.MCDynamic + b.Memory()
}

// Model evaluates Params over run Inputs.
type Model struct {
	P Params
}

// NewModel returns a model over the default parameters.
func NewModel() Model { return Model{P: DefaultParams()} }

// Compute turns event counts into the energy breakdown.
func (m Model) Compute(in Inputs) Breakdown {
	p := m.P
	seconds := float64(in.Cycles) / p.CPUFreqHz

	var b Breakdown

	// Cores: dynamic scaled by achieved IPC over the reference IPC,
	// with an idle-activity floor.
	if in.Cycles > 0 && in.Cores > 0 {
		ipcPerCore := float64(in.Instructions) / float64(in.Cycles) / float64(in.Cores)
		util := p.CoreIdleFrac + (1-p.CoreIdleFrac)*ipcPerCore/p.CorePeakIPC
		if util > 1 {
			util = 1
		}
		b.CoreDynamic = p.CorePeakDynamicW * util * seconds * float64(in.Cores)
	}
	b.CoreLeakage = p.CoreLeakageW * seconds * float64(in.Cores)

	b.LLCDynamic = float64(in.LLCReads)*p.LLCReadJ + float64(in.LLCWrites)*p.LLCWriteJ
	b.LLCLeakage = p.LLCLeakageW * seconds

	b.NOCDynamic = float64(in.NOCControl)*p.NOCControlJ +
		float64(in.NOCData)*p.NOCDataJ +
		float64(in.NOCPC)*p.NOCPCExtraJ
	b.NOCLeakage = p.NOCLeakageW * seconds

	bytes := float64(in.DRAMReads+in.DRAMWrites) * 64
	b.MCDynamic = p.MCDynamicWAtRef * (bytes / p.MCRefBandwidth) // W * s at ref BW

	b.DRAMActivation = float64(in.DRAMActivations) * p.DRAMActivationJ
	b.DRAMBurst = float64(in.DRAMReads)*p.DRAMReadJ + float64(in.DRAMWrites)*p.DRAMWriteJ
	b.DRAMIO = float64(in.DRAMReads)*p.DRAMReadIOJ + float64(in.DRAMWrites)*p.DRAMWriteIOJ
	b.DRAMBackground = p.DRAMBackgroundW * float64(p.Ranks) * seconds
	return b
}

// PerAccess returns the paper's "memory energy per access" metric:
// dynamic DRAM energy (activation + burst + I/O) divided by DRAM accesses.
func (m Model) PerAccess(in Inputs) (total, activation, burstIO float64) {
	b := m.Compute(in)
	n := float64(in.DRAMReads + in.DRAMWrites)
	if n == 0 {
		return 0, 0, 0
	}
	return b.MemoryDynamic() / n, b.DRAMActivation / n, b.BurstIO() / n
}
