package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol*math.Abs(b)+1e-18 }

func TestZeroInputs(t *testing.T) {
	m := NewModel()
	b := m.Compute(Inputs{})
	if b.Total() != 0 {
		t.Errorf("zero inputs must give zero energy, got %v", b.Total())
	}
	tot, act, bio := m.PerAccess(Inputs{})
	if tot != 0 || act != 0 || bio != 0 {
		t.Error("PerAccess on zero accesses must be zero")
	}
}

func TestActivationIsRoughly3xBurst(t *testing.T) {
	// Section II.B: "a page activation consumes 3x more energy than a
	// transfer". Check the Table III constants preserve that ratio.
	p := DefaultParams()
	ratio := p.DRAMActivationJ / (p.DRAMReadJ + p.DRAMReadIOJ)
	if ratio < 2.5 || ratio > 3.6 {
		t.Errorf("activation/transfer ratio = %v, want ~3", ratio)
	}
}

func TestDRAMEnergyAccounting(t *testing.T) {
	m := NewModel()
	in := Inputs{
		Cycles:          2_500_000, // 1ms at 2.5GHz
		DRAMActivations: 100,
		DRAMReads:       300,
		DRAMWrites:      100,
	}
	b := m.Compute(in)
	p := m.P
	if !almost(b.DRAMActivation, 100*p.DRAMActivationJ, 1e-12) {
		t.Errorf("activation energy = %v", b.DRAMActivation)
	}
	wantBurst := 300*p.DRAMReadJ + 100*p.DRAMWriteJ
	if !almost(b.DRAMBurst, wantBurst, 1e-12) {
		t.Errorf("burst = %v want %v", b.DRAMBurst, wantBurst)
	}
	wantIO := 300*p.DRAMReadIOJ + 100*p.DRAMWriteIOJ
	if !almost(b.DRAMIO, wantIO, 1e-12) {
		t.Errorf("io = %v want %v", b.DRAMIO, wantIO)
	}
	// Background: 8 ranks * 0.655W * 1ms.
	wantBkg := 8 * 0.655 * 1e-3
	if !almost(b.DRAMBackground, wantBkg, 1e-9) {
		t.Errorf("background = %v want %v", b.DRAMBackground, wantBkg)
	}
	if !almost(b.Memory(), b.DRAMActivation+b.DRAMBurst+b.DRAMIO+b.DRAMBackground, 1e-12) {
		t.Error("Memory() must sum components")
	}
}

func TestPerAccess(t *testing.T) {
	m := NewModel()
	in := Inputs{DRAMActivations: 50, DRAMReads: 100}
	tot, act, bio := m.PerAccess(in)
	p := m.P
	wantAct := 50 * p.DRAMActivationJ / 100
	wantBio := p.DRAMReadJ + p.DRAMReadIOJ
	if !almost(act, wantAct, 1e-12) || !almost(bio, wantBio, 1e-12) {
		t.Errorf("act=%v bio=%v", act, bio)
	}
	if !almost(tot, act+bio, 1e-12) {
		t.Error("total must be act+burstio")
	}
}

func TestCoreDynamicScalesWithIPC(t *testing.T) {
	m := NewModel()
	p := m.P
	base := Inputs{Cycles: 1_000_000, Cores: 16, Instructions: 16_000_000} // IPC 1/core
	half := base
	half.Instructions = 8_000_000 // IPC 0.5/core
	bb, hb := m.Compute(base), m.Compute(half)
	if hb.CoreDynamic >= bb.CoreDynamic {
		t.Errorf("core dynamic must grow with IPC: %v vs %v", hb.CoreDynamic, bb.CoreDynamic)
	}
	// The idle floor keeps a stalled core burning CoreIdleFrac of peak.
	idle := base
	idle.Instructions = 0
	ib := m.Compute(idle)
	seconds := float64(idle.Cycles) / p.CPUFreqHz
	wantIdle := p.CorePeakDynamicW * p.CoreIdleFrac * seconds * 16
	if !almost(ib.CoreDynamic, wantIdle, 1e-9) {
		t.Errorf("idle dynamic = %v, want %v", ib.CoreDynamic, wantIdle)
	}
	// Utilisation saturates at the reference IPC.
	over := base
	over.Instructions = 16 * 10_000_000 // IPC 10 > reference
	ob := m.Compute(over)
	wantPeak := p.CorePeakDynamicW * seconds * 16
	if !almost(ob.CoreDynamic, wantPeak, 1e-9) {
		t.Errorf("saturated dynamic = %v, want %v", ob.CoreDynamic, wantPeak)
	}
}

func TestLeakageScalesWithTime(t *testing.T) {
	m := NewModel()
	a := m.Compute(Inputs{Cycles: 1000, Cores: 16})
	b := m.Compute(Inputs{Cycles: 2000, Cores: 16})
	for _, pair := range [][2]float64{
		{a.CoreLeakage, b.CoreLeakage},
		{a.LLCLeakage, b.LLCLeakage},
		{a.NOCLeakage, b.NOCLeakage},
		{a.DRAMBackground, b.DRAMBackground},
	} {
		if !almost(pair[1], 2*pair[0], 1e-9) {
			t.Errorf("static energy must double with time: %v -> %v", pair[0], pair[1])
		}
	}
}

func TestMemoryDominatesServerEnergy(t *testing.T) {
	// Fig. 1: memory is 48-62% of server energy for a memory-bound
	// 16-core server. Sanity-check the constants with representative
	// activity: 16 cores, IPC ~0.5, ~1 DRAM access per 700 instructions,
	// 20% row-buffer hit ratio.
	m := NewModel()
	cycles := uint64(10_000_000)
	instr := uint64(16 * 5_000_000)
	accesses := instr / 700
	in := Inputs{
		Cycles:          cycles,
		Cores:           16,
		Instructions:    instr,
		LLCReads:        accesses * 4,
		LLCWrites:       accesses * 2,
		NOCControl:      accesses * 4,
		NOCData:         accesses * 4,
		DRAMActivations: accesses * 8 / 10,
		DRAMReads:       accesses * 7 / 10,
		DRAMWrites:      accesses * 3 / 10,
	}
	b := m.Compute(in)
	frac := b.Memory() / b.Total()
	if frac < 0.35 || frac > 0.75 {
		t.Errorf("memory fraction of server energy = %.2f, want roughly 0.48-0.62", frac)
	}
}

// Property: energy is monotone — adding events never decreases any
// component or the total.
func TestMonotoneProperty(t *testing.T) {
	m := NewModel()
	f := func(c1, c2, a1, a2, r1, r2, w1, w2 uint32) bool {
		in1 := Inputs{
			Cycles: uint64(c1), Cores: 16, Instructions: uint64(c1),
			DRAMActivations: uint64(a1), DRAMReads: uint64(r1), DRAMWrites: uint64(w1),
		}
		in2 := Inputs{
			Cycles: uint64(c1) + uint64(c2), Cores: 16, Instructions: uint64(c1),
			DRAMActivations: uint64(a1) + uint64(a2),
			DRAMReads:       uint64(r1) + uint64(r2),
			DRAMWrites:      uint64(w1) + uint64(w2),
		}
		b1, b2 := m.Compute(in1), m.Compute(in2)
		return b2.DRAMActivation >= b1.DRAMActivation &&
			b2.DRAMBurst >= b1.DRAMBurst &&
			b2.DRAMIO >= b1.DRAMIO &&
			b2.DRAMBackground >= b1.DRAMBackground &&
			b2.Memory() >= b1.Memory()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
