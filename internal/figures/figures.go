// Package figures regenerates every table and figure of the paper's
// evaluation (Figs. 1-3, 5, 8-13 and Tables I, IV) from simulator runs.
// Fig. 4 is an illustration (the inverted-index data structure), Figs. 6-7
// are design diagrams, and Tables II-III are the configuration constants
// encoded in sim.DefaultConfig and energy.DefaultParams.
//
// A Runner caches simulation results so figures that share configurations
// (e.g. Figs. 9, 10 and 13) reuse runs; independent runs execute in
// parallel across CPUs.
package figures

import (
	"fmt"
	"runtime"
	"sync"

	"bump/internal/sim"
	"bump/internal/stats"
	"bump/internal/workload"
)

// Options parameterise a figure regeneration pass.
type Options struct {
	// Seed is the base deterministic seed.
	Seed int64
	// WarmupCycles/MeasureCycles override the simulation windows
	// (0 keeps sim.DefaultConfig's values).
	WarmupCycles  uint64
	MeasureCycles uint64
	// Workloads defaults to the paper's six.
	Workloads []workload.Params
}

func (o Options) workloads() []workload.Params {
	if len(o.Workloads) > 0 {
		return o.Workloads
	}
	return workload.All()
}

// Runner executes and caches simulation runs.
type Runner struct {
	opts Options

	mu    sync.Mutex
	cache map[runKey]sim.Result
}

type runKey struct {
	mech      sim.Mechanism
	workload  string
	regShift  uint
	threshold uint
	raw       bool // prefetcher disabled (characterisation runs)
}

// NewRunner builds a Runner.
func NewRunner(opts Options) *Runner {
	return &Runner{opts: opts, cache: make(map[runKey]sim.Result)}
}

func (r *Runner) config(m sim.Mechanism, w workload.Params) sim.Config {
	cfg := sim.DefaultConfig(m, w)
	cfg.Seed = r.opts.Seed + 1
	if r.opts.WarmupCycles > 0 {
		cfg.WarmupCycles = r.opts.WarmupCycles
	}
	if r.opts.MeasureCycles > 0 {
		cfg.MeasureCycles = r.opts.MeasureCycles
	}
	return cfg
}

// Run returns the (cached) result for mechanism m on workload w.
func (r *Runner) Run(m sim.Mechanism, w workload.Params) sim.Result {
	return r.runCfg(r.config(m, w))
}

// RunProfile returns the characterisation run for workload w: the
// open-row baseline with prefetching disabled, so the demand-traffic
// density profile (Figs. 3/5, Table I, Ideal) is not distorted by
// prefetch absorption.
func (r *Runner) RunProfile(w workload.Params) sim.Result {
	cfg := r.config(sim.BaseOpen, w)
	cfg.DisablePrefetcher = true
	return r.runCfg(cfg)
}

// PrefillProfiles warms the characterisation-run cache in parallel.
func (r *Runner) PrefillProfiles() {
	var cfgs []sim.Config
	for _, w := range r.opts.workloads() {
		cfg := r.config(sim.BaseOpen, w)
		cfg.DisablePrefetcher = true
		cfgs = append(cfgs, cfg)
	}
	r.prefill(cfgs)
}

// RunVariant returns the result for a BuMP variant with a custom region
// shift and density threshold (Fig. 11).
func (r *Runner) RunVariant(w workload.Params, regionShift, threshold uint) sim.Result {
	cfg := r.config(sim.BuMP, w)
	cfg.BuMP.RegionShift = regionShift
	cfg.BuMP.DensityThreshold = threshold
	return r.runCfg(cfg)
}

func keyOf(cfg sim.Config) runKey {
	return runKey{
		mech:      cfg.Mechanism,
		workload:  cfg.Workload.Name,
		regShift:  cfg.BuMP.RegionShift,
		threshold: cfg.BuMP.DensityThreshold,
		raw:       cfg.DisablePrefetcher,
	}
}

func (r *Runner) runCfg(cfg sim.Config) sim.Result {
	k := keyOf(cfg)
	r.mu.Lock()
	if res, ok := r.cache[k]; ok {
		r.mu.Unlock()
		return res
	}
	r.mu.Unlock()
	res, err := sim.RunOne(cfg)
	if err != nil {
		panic(fmt.Sprintf("figures: run %v/%s failed: %v", cfg.Mechanism, cfg.Workload.Name, err))
	}
	r.mu.Lock()
	r.cache[k] = res
	r.mu.Unlock()
	return res
}

// prefill executes the given configurations in parallel, warming the
// cache. A counting semaphore caps in-flight simulations at the CPU
// count (GOMAXPROCS respects user/cgroup limits), so large sweeps
// (Fig. 11's 72-configuration grid, multi-seed runs) never oversubscribe
// the machine.
func (r *Runner) prefill(cfgs []sim.Config) {
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for _, cfg := range cfgs {
		r.mu.Lock()
		_, cached := r.cache[keyOf(cfg)]
		r.mu.Unlock()
		if cached {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(cfg sim.Config) {
			defer func() { <-sem; wg.Done() }()
			r.runCfg(cfg)
		}(cfg)
	}
	wg.Wait()
}

// PrefillMechanisms warms the cache for the given mechanisms over all
// workloads, in parallel.
func (r *Runner) PrefillMechanisms(ms ...sim.Mechanism) {
	var cfgs []sim.Config
	for _, w := range r.opts.workloads() {
		for _, m := range ms {
			cfgs = append(cfgs, r.config(m, w))
		}
	}
	r.prefill(cfgs)
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// Fig1 regenerates Figure 1: server energy breakdown on the baseline
// system, per workload, with the memory component split into activation,
// burst&IO and background.
func (r *Runner) Fig1() *stats.Table {
	r.PrefillMechanisms(sim.BaseOpen)
	t := stats.NewTable(
		"Figure 1. Energy consumption of a many-core server (Base-open)",
		"workload", "cores", "LLC", "NOC", "mem-ctrl", "memory",
		"mem-ACT", "mem-BR&IO", "mem-BKG")
	for _, w := range r.opts.workloads() {
		b := r.Run(sim.BaseOpen, w).Energy
		tot := b.Total()
		t.AddRow(w.Name,
			pct(b.Cores()/tot), pct(b.LLC()/tot), pct(b.NOC()/tot),
			pct(b.MCDynamic/tot), pct(b.Memory()/tot),
			pct(b.DRAMActivation/tot), pct(b.BurstIO()/tot),
			pct(b.DRAMBackground/tot))
	}
	return t
}

// Fig2 regenerates Figure 2: DRAM row-buffer hit ratio of Base (open),
// SMS, VWQ and the Ideal system.
func (r *Runner) Fig2() *stats.Table {
	r.PrefillMechanisms(sim.BaseOpen, sim.SMSOnly, sim.VWQOnly)
	r.PrefillProfiles()
	t := stats.NewTable(
		"Figure 2. DRAM row buffer hit ratio of various systems",
		"workload", "Base", "SMS", "VWQ", "Ideal")
	for _, w := range r.opts.workloads() {
		base := r.Run(sim.BaseOpen, w)
		t.AddRow(w.Name,
			pct(base.RowHitRatio()),
			pct(r.Run(sim.SMSOnly, w).RowHitRatio()),
			pct(r.Run(sim.VWQOnly, w).RowHitRatio()),
			pct(r.RunProfile(w).Profile.IdealHitRatio()))
	}
	return t
}

// Fig3 regenerates Figure 3: DRAM accesses broken into load-triggered
// reads, store-triggered reads and writes.
func (r *Runner) Fig3() *stats.Table {
	r.PrefillProfiles()
	t := stats.NewTable(
		"Figure 3. DRAM accesses broken down into reads and writes",
		"workload", "loads", "store-reads", "writes")
	for _, w := range r.opts.workloads() {
		p := r.RunProfile(w).Profile
		tot := p.Accesses()
		t.AddRow(w.Name,
			pct(stats.Ratio(p.LoadReads, tot)),
			pct(stats.Ratio(p.StoreReads, tot)),
			pct(stats.Ratio(p.Writes, tot)))
	}
	return t
}

// Fig5 regenerates Figure 5: region access density for 1KB regions,
// reads (R) and writes (W) split into low/medium/high density classes.
func (r *Runner) Fig5() *stats.Table {
	r.PrefillProfiles()
	t := stats.NewTable(
		"Figure 5. Region access density (1KB regions)",
		"workload", "R-low", "R-med", "R-high", "W-low", "W-med", "W-high")
	for _, w := range r.opts.workloads() {
		p := r.RunProfile(w).Profile
		rTot := p.ReadsByClass[0] + p.ReadsByClass[1] + p.ReadsByClass[2]
		wTot := p.WritesByClass[0] + p.WritesByClass[1] + p.WritesByClass[2]
		t.AddRow(w.Name,
			pct(stats.Ratio(p.ReadsByClass[sim.LowDensity], rTot)),
			pct(stats.Ratio(p.ReadsByClass[sim.MediumDensity], rTot)),
			pct(stats.Ratio(p.ReadsByClass[sim.HighDensity], rTot)),
			pct(stats.Ratio(p.WritesByClass[sim.LowDensity], wTot)),
			pct(stats.Ratio(p.WritesByClass[sim.MediumDensity], wTot)),
			pct(stats.Ratio(p.WritesByClass[sim.HighDensity], wTot)))
	}
	return t
}

// Table1 regenerates Table I: fraction of a high-density region's blocks
// modified after its first dirty LLC eviction.
func (r *Runner) Table1() *stats.Table {
	r.PrefillProfiles()
	t := stats.NewTable(
		"Table I. Blocks modified after the region's first dirty eviction",
		"workload", "late-modified")
	for _, w := range r.opts.workloads() {
		t.AddRow(w.Name, pct(r.RunProfile(w).Profile.LateWriteFraction()))
	}
	return t
}

// Fig8 regenerates Figure 8: BuMP's prediction accuracy for DRAM reads
// (coverage + overfetch) and DRAM writes (coverage + extra writebacks),
// against the Full-region strawman.
func (r *Runner) Fig8() *stats.Table {
	r.PrefillMechanisms(sim.FullRegion, sim.BuMP)
	t := stats.NewTable(
		"Figure 8. Prediction accuracy for DRAM reads and writes",
		"workload", "system", "rd-predicted", "rd-overfetch", "wr-predicted", "wr-extra")
	for _, w := range r.opts.workloads() {
		for _, m := range []sim.Mechanism{sim.FullRegion, sim.BuMP} {
			res := r.Run(m, w)
			t.AddRow(w.Name, m.String(),
				pct(res.ReadCoverage()), pct(res.ReadOverfetch()),
				pct(res.WriteCoverage()), pct(res.ExtraWritebacks()))
		}
	}
	return t
}

// Fig9 regenerates Figure 9: memory energy per access of Base-close,
// Base-open, Full-region and BuMP, normalised to Base-close, split into
// activation and burst/IO.
func (r *Runner) Fig9() *stats.Table {
	r.PrefillMechanisms(sim.BaseClose, sim.BaseOpen, sim.FullRegion, sim.BuMP)
	t := stats.NewTable(
		"Figure 9. Memory energy per access (normalised to Base-close)",
		"workload", "system", "total", "activation", "burst/IO")
	for _, w := range r.opts.workloads() {
		ref := r.Run(sim.BaseClose, w).EPATotal
		for _, m := range []sim.Mechanism{sim.BaseClose, sim.BaseOpen, sim.FullRegion, sim.BuMP} {
			res := r.Run(m, w)
			t.AddRow(w.Name, m.String(),
				pct(res.EPATotal/ref), pct(res.EPAActivation/ref), pct(res.EPABurstIO/ref))
		}
	}
	return t
}

// Fig10 regenerates Figure 10: system performance improvement over
// Base-close for Base-open, Full-region and BuMP.
func (r *Runner) Fig10() *stats.Table {
	r.PrefillMechanisms(sim.BaseClose, sim.BaseOpen, sim.FullRegion, sim.BuMP)
	t := stats.NewTable(
		"Figure 10. Performance improvement over Base-close",
		"workload", "Base-open", "Full-region", "BuMP")
	for _, w := range r.opts.workloads() {
		ref := r.Run(sim.BaseClose, w).IPC()
		row := []interface{}{w.Name}
		for _, m := range []sim.Mechanism{sim.BaseOpen, sim.FullRegion, sim.BuMP} {
			row = append(row, fmt.Sprintf("%+.1f%%", 100*stats.Speedup(ref, r.Run(m, w).IPC())))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig11 regenerates Figure 11: memory energy-per-access improvement over
// Base-open for BuMP variants across region sizes (512B, 1KB, 2KB) and
// density thresholds (25, 50, 75, 100% of the region's blocks), averaged
// over the workloads.
func (r *Runner) Fig11() *stats.Table {
	r.PrefillMechanisms(sim.BaseOpen)
	var cfgs []sim.Config
	for _, shift := range []uint{9, 10, 11} {
		for _, p := range []uint{25, 50, 75, 100} {
			for _, w := range r.opts.workloads() {
				cfg := r.config(sim.BuMP, w)
				cfg.BuMP.RegionShift = shift
				cfg.BuMP.DensityThreshold = threshold(shift, p)
				cfgs = append(cfgs, cfg)
			}
		}
	}
	r.prefill(cfgs)

	t := stats.NewTable(
		"Figure 11. Energy-per-access improvement vs region size and threshold",
		"region", "thr-25%", "thr-50%", "thr-75%", "thr-100%")
	for _, shift := range []uint{9, 10, 11} {
		row := []interface{}{fmt.Sprintf("%dB", 1<<shift)}
		for _, p := range []uint{25, 50, 75, 100} {
			var imps []float64
			for _, w := range r.opts.workloads() {
				base := r.Run(sim.BaseOpen, w).EPATotal
				v := r.RunVariant(w, shift, threshold(shift, p)).EPATotal
				imps = append(imps, stats.Improvement(base, v))
			}
			row = append(row, pct(stats.Mean(imps)))
		}
		t.AddRow(row...)
	}
	return t
}

// threshold converts a percentage to a block-count threshold for a region
// shift.
func threshold(shift, pct uint) uint {
	blocks := uint(1) << (shift - 6)
	thr := blocks * pct / 100
	if thr == 0 {
		thr = 1
	}
	return thr
}

// Fig12 regenerates Figure 12: BuMP's LLC and NOC traffic and energy,
// normalised to the baseline.
func (r *Runner) Fig12() *stats.Table {
	r.PrefillMechanisms(sim.BaseOpen, sim.BuMP)
	t := stats.NewTable(
		"Figure 12. BuMP's LLC and NOC overheads (normalised to Base-open)",
		"workload", "LLC-traffic", "LLC-energy", "NOC-traffic", "NOC-energy")
	for _, w := range r.opts.workloads() {
		base := r.Run(sim.BaseOpen, w)
		bmp := r.Run(sim.BuMP, w)
		// Normalise per committed instruction: BuMP changes run speed,
		// so raw counts are not comparable across runs.
		norm := func(b, v uint64, bi, vi uint64) float64 {
			if b == 0 || vi == 0 || bi == 0 {
				return 0
			}
			return (float64(v) / float64(vi)) / (float64(b) / float64(bi))
		}
		t.AddRow(w.Name,
			fmt.Sprintf("%.2fx", norm(base.LLCTraffic(), bmp.LLCTraffic(), base.Instructions, bmp.Instructions)),
			fmt.Sprintf("%.2fx", norm(uint64(base.Energy.LLCDynamic*1e15), uint64(bmp.Energy.LLCDynamic*1e15), base.Instructions, bmp.Instructions)),
			fmt.Sprintf("%.2fx", norm(base.NOCTrafficBytes(), bmp.NOCTrafficBytes(), base.Instructions, bmp.Instructions)),
			fmt.Sprintf("%.2fx", norm(uint64(base.Energy.NOCDynamic*1e15), uint64(bmp.Energy.NOCDynamic*1e15), base.Instructions, bmp.Instructions)))
	}
	return t
}

// Fig13 regenerates Figure 13: row-buffer hit ratio and memory energy per
// access (normalised to Base-close) averaged across workloads, for all
// seven systems.
func (r *Runner) Fig13() *stats.Table {
	ms := sim.Mechanisms()
	r.PrefillMechanisms(ms...)
	t := stats.NewTable(
		"Figure 13. Comparison between BuMP and other systems (mean over workloads)",
		"system", "row-hit", "energy/access", "activation", "burst/IO")
	var refEPA []float64
	for _, w := range r.opts.workloads() {
		refEPA = append(refEPA, r.Run(sim.BaseClose, w).EPATotal)
	}
	for _, m := range ms {
		var hits, epas, acts, bios []float64
		for i, w := range r.opts.workloads() {
			res := r.Run(m, w)
			hits = append(hits, res.RowHitRatio())
			epas = append(epas, res.EPATotal/refEPA[i])
			acts = append(acts, res.EPAActivation/refEPA[i])
			bios = append(bios, res.EPABurstIO/refEPA[i])
		}
		t.AddRow(m.String(), pct(stats.Mean(hits)), pct(stats.Mean(epas)),
			pct(stats.Mean(acts)), pct(stats.Mean(bios)))
	}
	// The Ideal bar: all locality within region residencies exploited.
	r.PrefillProfiles()
	var hits, epas []float64
	for i, w := range r.opts.workloads() {
		raw := r.RunProfile(w)
		hits = append(hits, raw.Profile.IdealHitRatio())
		// Ideal energy: one activation per generation, every access a
		// single burst.
		accesses := float64(raw.Profile.Accesses())
		if accesses == 0 {
			continue
		}
		actJ := float64(raw.Profile.IdealActivations()) * 29.7e-9 / accesses
		bioJ := raw.EPABurstIO
		epas = append(epas, (actJ+bioJ)/refEPA[i])
	}
	t.AddRow("ideal", pct(stats.Mean(hits)), pct(stats.Mean(epas)), "-", "-")
	return t
}

// Table4 regenerates Table IV: BuMP's row-buffer hit ratio per workload.
func (r *Runner) Table4() *stats.Table {
	r.PrefillMechanisms(sim.BuMP)
	t := stats.NewTable(
		"Table IV. BuMP's DRAM row buffer hit ratio",
		"workload", "row-hit")
	for _, w := range r.opts.workloads() {
		t.AddRow(w.Name, pct(r.Run(sim.BuMP, w).RowHitRatio()))
	}
	return t
}

// All regenerates every figure/table in paper order.
func (r *Runner) All() []*stats.Table {
	return []*stats.Table{
		r.Fig1(), r.Fig2(), r.Fig3(), r.Fig5(), r.Table1(),
		r.Fig8(), r.Fig9(), r.Fig10(), r.Fig11(), r.Fig12(),
		r.Fig13(), r.Table4(),
	}
}
