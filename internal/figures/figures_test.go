package figures

import (
	"strings"
	"testing"

	"bump/internal/workload"
)

// fastOpts keeps figure tests quick: two contrasting workloads and short
// windows.
func fastOpts() Options {
	return Options{
		Seed:          7,
		WarmupCycles:  250_000,
		MeasureCycles: 500_000,
		Workloads:     []workload.Params{workload.WebSearch(), workload.DataServing()},
	}
}

func TestRunnerCaches(t *testing.T) {
	r := NewRunner(fastOpts())
	a := r.Run(0, workload.WebSearch()) // BaseClose
	b := r.Run(0, workload.WebSearch())
	if a.DRAM != b.DRAM {
		t.Error("cached result must be identical")
	}
	if len(r.cache) != 1 {
		t.Errorf("cache size = %d, want 1", len(r.cache))
	}
}

func wantColumns(t *testing.T, s string, cols ...string) {
	t.Helper()
	for _, c := range cols {
		if !strings.Contains(s, c) {
			t.Errorf("missing column/value %q in:\n%s", c, s)
		}
	}
}

func TestFig2Shape(t *testing.T) {
	r := NewRunner(fastOpts())
	s := r.Fig2().String()
	wantColumns(t, s, "Base", "SMS", "VWQ", "Ideal", "web-search", "data-serving")
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, sep, 2 workloads
		t.Errorf("Fig2 rows = %d:\n%s", len(lines), s)
	}
}

func TestFig3SumsToOne(t *testing.T) {
	r := NewRunner(fastOpts())
	res := r.Run(1, workload.WebSearch()) // BaseOpen
	p := res.Profile
	tot := p.LoadReads + p.StoreReads + p.Writes
	if tot != p.Accesses() {
		t.Errorf("mix components %d != accesses %d", tot, p.Accesses())
	}
}

func TestFig8And9And10Render(t *testing.T) {
	r := NewRunner(fastOpts())
	wantColumns(t, r.Fig8().String(), "full-region", "bump", "rd-predicted", "wr-predicted")
	wantColumns(t, r.Fig9().String(), "base-close", "base-open", "activation", "burst/IO")
	wantColumns(t, r.Fig10().String(), "Base-open", "Full-region", "BuMP")
}

func TestFig13IncludesAllSystemsAndIdeal(t *testing.T) {
	r := NewRunner(fastOpts())
	s := r.Fig13().String()
	wantColumns(t, s, "base-close", "base-open", "sms", "vwq", "sms+vwq", "full-region", "bump", "ideal")
}

func TestTable1AndTable4(t *testing.T) {
	r := NewRunner(fastOpts())
	wantColumns(t, r.Table1().String(), "late-modified", "web-search")
	wantColumns(t, r.Table4().String(), "row-hit", "data-serving")
}

func TestFig1EnergyFractions(t *testing.T) {
	r := NewRunner(fastOpts())
	s := r.Fig1().String()
	wantColumns(t, s, "cores", "memory", "mem-ACT", "mem-BKG")
}

func TestFig12Overheads(t *testing.T) {
	r := NewRunner(fastOpts())
	s := r.Fig12().String()
	wantColumns(t, s, "LLC-traffic", "NOC-energy")
}

func TestThresholdHelper(t *testing.T) {
	if threshold(10, 50) != 8 {
		t.Errorf("1KB@50%% = %d, want 8", threshold(10, 50))
	}
	if threshold(9, 25) != 2 {
		t.Errorf("512B@25%% = %d, want 2", threshold(9, 25))
	}
	if threshold(9, 1) != 1 {
		t.Error("threshold floors at 1")
	}
	if threshold(11, 100) != 32 {
		t.Errorf("2KB@100%% = %d, want 32", threshold(11, 100))
	}
}

func TestFig11SmallGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("design-space grid is slow")
	}
	opts := fastOpts()
	opts.Workloads = []workload.Params{workload.WebSearch()}
	opts.MeasureCycles = 300_000
	r := NewRunner(opts)
	s := r.Fig11().String()
	wantColumns(t, s, "512B", "1024B", "2048B", "thr-50%")
}
