// Package dram models DDR3 main memory at the bank/rank/channel level:
// row-buffer state, command timing constraints (tRCD, tRP, tCAS, tRAS,
// tWR, tWTR, tRTP, tRRD, tFAW), data-bus occupancy, and the event counts
// the energy model consumes (activations, read/write bursts, busy time).
//
// The model is transaction-level with exact bank-state timing: the memory
// controller picks a transaction and calls Access, which computes when the
// needed commands (PRE, ACT, RD/WR) can legally issue given the bank's and
// rank's history, advances the state, and returns the data completion
// time. There is no per-cycle ticking, so simulation cost is O(1) per
// transaction. All times in this package are in *memory* clock cycles
// (800MHz for DDR3-1600); the controller converts to CPU cycles.
package dram

import (
	"fmt"

	"bump/internal/mem"
)

// Timing holds the DDR3 command timing constraints in memory cycles.
// Values for DDR3-1600 follow the paper's Table II.
type Timing struct {
	TCAS   int64 // read command to first data
	TRCD   int64 // activate to read/write
	TRP    int64 // precharge to activate
	TRAS   int64 // activate to precharge (minimum row-open time)
	TRC    int64 // activate to activate, same bank
	TWR    int64 // end of write data to precharge
	TWTR   int64 // end of write data to read command, same rank
	TRTP   int64 // read command to precharge
	TRRD   int64 // activate to activate, same rank
	TFAW   int64 // window for at most four activates per rank
	TCWL   int64 // write command to first data
	TBurst int64 // data burst duration (BL8 = 4 memory cycles)
}

// DDR3_1600 returns the DDR3-1600 timing used throughout the paper
// (Table II: 11-11-11-28, tRC 39, tWR 12, tWTR 6, tRTP 6, tRRD 5, tFAW 24).
func DDR3_1600() Timing {
	return Timing{
		TCAS: 11, TRCD: 11, TRP: 11, TRAS: 28, TRC: 39,
		TWR: 12, TWTR: 6, TRTP: 6, TRRD: 5, TFAW: 24,
		TCWL: 8, TBurst: 4,
	}
}

// Config describes the memory organisation (Table II: 2 DDR3-1600
// channels, 4 ranks per channel, 8 banks per rank, 8KB row buffer).
type Config struct {
	Channels        int
	RanksPerChannel int
	BanksPerRank    int
	RowBytes        int
	Timing          Timing

	// TREFI is the refresh interval in memory cycles (DDR3: 7.8us =
	// 6240 cycles at 800MHz); TRFC is the refresh cycle time (2Gbit
	// devices: 160ns = 128 cycles). A refresh closes every bank of the
	// rank and blocks it for TRFC. Zero TREFI disables refresh.
	TREFI int64
	TRFC  int64
}

// DefaultConfig returns the paper's memory organisation.
func DefaultConfig() Config {
	return Config{
		Channels:        2,
		RanksPerChannel: 4,
		BanksPerRank:    8,
		RowBytes:        8192,
		Timing:          DDR3_1600(),
		TREFI:           6240,
		TRFC:            128,
	}
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.Channels <= 0 || c.RanksPerChannel <= 0 || c.BanksPerRank <= 0 {
		return fmt.Errorf("dram: organisation must be positive, got %d/%d/%d", c.Channels, c.RanksPerChannel, c.BanksPerRank)
	}
	if c.RowBytes < mem.BlockBytes || c.RowBytes&(c.RowBytes-1) != 0 {
		return fmt.Errorf("dram: row size %d must be a power-of-two multiple of the block size", c.RowBytes)
	}
	return nil
}

// Loc is a fully decoded DRAM location.
type Loc struct {
	Channel int
	Rank    int
	Bank    int
	Row     uint64
}

// RowOutcome classifies how an access found the row buffer (Fig. 2 and
// Table IV report the hit ratio over these outcomes).
type RowOutcome uint8

const (
	// RowHit: the bank had the target row open.
	RowHit RowOutcome = iota
	// RowClosed: the bank was precharged (activation required).
	RowClosed
	// RowConflict: another row was open (precharge + activation).
	RowConflict
)

func (o RowOutcome) String() string {
	switch o {
	case RowHit:
		return "hit"
	case RowClosed:
		return "closed"
	default:
		return "conflict"
	}
}

type bank struct {
	open     bool
	row      uint64
	actReady int64 // earliest next ACT (tRC from previous ACT, tRP after PRE)
	rwReady  int64 // earliest next RD/WR (tRCD after ACT)
	preReady int64 // earliest next PRE (tRAS, tWR, tRTP constraints)
}

type rank struct {
	lastAct  int64    // for tRRD
	actTimes [4]int64 // rolling window for tFAW
	actIdx   int
	// wrDataEnd is the end of the most recent write data burst, for tWTR.
	wrDataEnd int64
	// refDone is the end of the most recent refresh; refCount is the
	// number of refreshes performed so far (refresh k occurs at
	// k*TREFI).
	refDone  int64
	refCount int64
}

type channel struct {
	banks []bank
	ranks []rank
	// dataFree is the first cycle the shared data bus is free.
	dataFree int64
}

// Stats carries the DRAM event counts the energy model needs.
type Stats struct {
	Activations  uint64
	ReadBursts   uint64
	WriteBursts  uint64
	RowHits      uint64
	RowClosed    uint64
	RowConflicts uint64
	// Refreshes counts rank refresh operations performed.
	Refreshes uint64
	// BusyCycles approximates rank-active time (between ACT and PRE) for
	// active-standby background power. We charge TRAS per activation.
	BusyCycles uint64
}

// Accesses returns the total read+write bursts.
func (s Stats) Accesses() uint64 { return s.ReadBursts + s.WriteBursts }

// HitRatio returns the row-buffer hit ratio.
func (s Stats) HitRatio() float64 {
	total := s.RowHits + s.RowClosed + s.RowConflicts
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}

// DRAM is the device-level memory model.
type DRAM struct {
	cfg      Config
	channels []channel
	stats    Stats
}

// New builds a DRAM model from cfg; panics on invalid configuration
// (construction happens at simulator setup, not in request paths).
func New(cfg Config) *DRAM {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	d := &DRAM{cfg: cfg, channels: make([]channel, cfg.Channels)}
	// farPast keeps initial rank history from imposing tRRD/tFAW/tWTR on
	// the first accesses.
	const farPast = int64(-1) << 40
	for i := range d.channels {
		d.channels[i].banks = make([]bank, cfg.RanksPerChannel*cfg.BanksPerRank)
		d.channels[i].ranks = make([]rank, cfg.RanksPerChannel)
		for r := range d.channels[i].ranks {
			rk := &d.channels[i].ranks[r]
			rk.lastAct = farPast
			rk.wrDataEnd = farPast
			for j := range rk.actTimes {
				rk.actTimes[j] = farPast
			}
		}
	}
	return d
}

// Config returns the configuration.
func (d *DRAM) Config() Config { return d.cfg }

// Stats returns a copy of the accumulated event counts.
func (d *DRAM) Stats() Stats { return d.stats }

// Banks returns the total bank count across all channels.
func (d *DRAM) Banks() int {
	return d.cfg.Channels * d.cfg.RanksPerChannel * d.cfg.BanksPerRank
}

func (d *DRAM) bankOf(loc Loc) (*channel, *rank, *bank) {
	ch := &d.channels[loc.Channel]
	return ch, &ch.ranks[loc.Rank], &ch.banks[loc.Rank*d.cfg.BanksPerRank+loc.Bank]
}

// Outcome reports, without side effects, how an access to loc at this
// moment would find the row buffer. The FR-FCFS scheduler uses it to
// prioritise row hits.
func (d *DRAM) Outcome(loc Loc) RowOutcome {
	_, _, b := d.bankOf(loc)
	switch {
	case b.open && b.row == loc.Row:
		return RowHit
	case b.open:
		return RowConflict
	default:
		return RowClosed
	}
}

// OpenRow returns the open row of loc's bank, if any.
func (d *DRAM) OpenRow(loc Loc) (row uint64, open bool) {
	_, _, b := d.bankOf(loc)
	return b.row, b.open
}

func max64(vals ...int64) int64 {
	m := vals[0]
	for _, v := range vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// activate issues ACT at the earliest legal time >= at and returns the
// issue time.
func (d *DRAM) activate(ch *channel, rk *rank, b *bank, loc Loc, at int64) int64 {
	t := d.cfg.Timing
	// tFAW: at most 4 ACTs per rank in any TFAW window.
	fawReady := rk.actTimes[rk.actIdx] + t.TFAW
	actAt := max64(at, b.actReady, rk.lastAct+t.TRRD, fawReady)
	rk.actTimes[rk.actIdx] = actAt
	rk.actIdx = (rk.actIdx + 1) % len(rk.actTimes)
	rk.lastAct = actAt
	b.open = true
	b.row = loc.Row
	b.actReady = actAt + t.TRC
	b.rwReady = actAt + t.TRCD
	b.preReady = actAt + t.TRAS
	d.stats.Activations++
	d.stats.BusyCycles += uint64(t.TRAS)
	return actAt
}

// refresh retires any refreshes due at or before `now` on loc's rank:
// all banks of the rank are precharged and the rank is unavailable for
// TRFC. Refreshes the simulator "slept through" are coalesced.
func (d *DRAM) refresh(ch *channel, rk *rank, loc Loc, now int64) {
	if d.cfg.TREFI <= 0 {
		return
	}
	due := now / d.cfg.TREFI
	if due <= rk.refCount {
		return
	}
	// Close every bank of the rank; the refresh starts when the rank's
	// in-progress row activity allows and occupies TRFC.
	start := now
	base := loc.Rank * d.cfg.BanksPerRank
	for i := 0; i < d.cfg.BanksPerRank; i++ {
		bk := &ch.banks[base+i]
		if bk.open {
			preAt := max64(start, bk.preReady)
			bk.open = false
			bk.actReady = max64(bk.actReady, preAt+d.cfg.Timing.TRP)
			if bk.actReady > start {
				start = bk.actReady
			}
		}
	}
	rk.refDone = start + d.cfg.TRFC
	// Catch up the counter in one step: long-idle ranks do not replay
	// every missed refresh individually.
	d.stats.Refreshes += uint64(due - rk.refCount)
	rk.refCount = due
	for i := 0; i < d.cfg.BanksPerRank; i++ {
		bk := &ch.banks[base+i]
		bk.actReady = max64(bk.actReady, rk.refDone)
	}
}

// Access performs one read or write burst to loc, arriving at memory-cycle
// `now`. It returns the cycle at which the data transfer completes and the
// row-buffer outcome. When autoPrecharge is true the bank is closed after
// the access (close-row policy); otherwise the row stays open.
func (d *DRAM) Access(op mem.MemOp, loc Loc, now int64, autoPrecharge bool) (done int64, outcome RowOutcome) {
	t := d.cfg.Timing
	ch, rk, b := d.bankOf(loc)

	d.refresh(ch, rk, loc, now)
	outcome = d.Outcome(loc)
	switch outcome {
	case RowHit:
		d.stats.RowHits++
	case RowClosed:
		d.stats.RowClosed++
		d.activate(ch, rk, b, loc, now)
	case RowConflict:
		d.stats.RowConflicts++
		preAt := max64(now, b.preReady)
		b.open = false
		b.actReady = max64(b.actReady, preAt+t.TRP)
		d.activate(ch, rk, b, loc, preAt+t.TRP)
	}

	// Earliest command issue given bank readiness.
	cmdAt := max64(now, b.rwReady)
	if op == mem.MemRead {
		// tWTR: read command must wait after the end of write data on
		// the same rank.
		cmdAt = max64(cmdAt, rk.wrDataEnd+t.TWTR)
	}
	// Data bus: the burst [dataStart, dataStart+TBurst) must not overlap
	// the previous burst on this channel.
	lat := t.TCAS
	if op == mem.MemWrite {
		lat = t.TCWL
	}
	if cmdAt+lat < ch.dataFree {
		cmdAt = ch.dataFree - lat
	}
	dataStart := cmdAt + lat
	dataEnd := dataStart + t.TBurst
	ch.dataFree = dataEnd

	if op == mem.MemRead {
		d.stats.ReadBursts++
		// A precharge after a read must respect tRTP.
		b.preReady = max64(b.preReady, cmdAt+t.TRTP)
	} else {
		d.stats.WriteBursts++
		rk.wrDataEnd = dataEnd
		// A precharge after a write must respect write recovery.
		b.preReady = max64(b.preReady, dataEnd+t.TWR)
	}
	// Back-to-back column commands to the same bank are limited by the
	// data bus, which ch.dataFree already enforces.
	b.rwReady = max64(b.rwReady, cmdAt+t.TBurst)

	if autoPrecharge {
		preAt := max64(b.preReady, cmdAt)
		b.open = false
		b.actReady = max64(b.actReady, preAt+t.TRP)
	}
	return dataEnd, outcome
}

// PrechargeAll force-closes every bank (used between measurement phases).
func (d *DRAM) PrechargeAll(now int64) {
	t := d.cfg.Timing
	for c := range d.channels {
		ch := &d.channels[c]
		for i := range ch.banks {
			b := &ch.banks[i]
			if b.open {
				preAt := max64(now, b.preReady)
				b.open = false
				b.actReady = max64(b.actReady, preAt+t.TRP)
			}
		}
	}
}
